# Empty compiler generated dependencies file for oltp_forecast.
# This may be replaced when dependencies are built.
