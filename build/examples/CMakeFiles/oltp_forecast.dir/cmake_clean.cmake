file(REMOVE_RECURSE
  "CMakeFiles/oltp_forecast.dir/oltp_forecast.cpp.o"
  "CMakeFiles/oltp_forecast.dir/oltp_forecast.cpp.o.d"
  "oltp_forecast"
  "oltp_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
