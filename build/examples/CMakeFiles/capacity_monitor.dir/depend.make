# Empty dependencies file for capacity_monitor.
# This may be replaced when dependencies are built.
