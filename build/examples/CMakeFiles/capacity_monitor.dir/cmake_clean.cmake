file(REMOVE_RECURSE
  "CMakeFiles/capacity_monitor.dir/capacity_monitor.cpp.o"
  "CMakeFiles/capacity_monitor.dir/capacity_monitor.cpp.o.d"
  "capacity_monitor"
  "capacity_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
