# Empty dependencies file for olap_capacity_planning.
# This may be replaced when dependencies are built.
