file(REMOVE_RECURSE
  "CMakeFiles/olap_capacity_planning.dir/olap_capacity_planning.cpp.o"
  "CMakeFiles/olap_capacity_planning.dir/olap_capacity_planning.cpp.o.d"
  "olap_capacity_planning"
  "olap_capacity_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_capacity_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
