# Empty dependencies file for growth_projection.
# This may be replaced when dependencies are built.
