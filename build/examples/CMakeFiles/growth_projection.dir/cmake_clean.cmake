file(REMOVE_RECURSE
  "CMakeFiles/growth_projection.dir/growth_projection.cpp.o"
  "CMakeFiles/growth_projection.dir/growth_projection.cpp.o.d"
  "growth_projection"
  "growth_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/growth_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
