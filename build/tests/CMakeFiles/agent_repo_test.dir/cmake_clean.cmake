file(REMOVE_RECURSE
  "CMakeFiles/agent_repo_test.dir/agent/agent_test.cc.o"
  "CMakeFiles/agent_repo_test.dir/agent/agent_test.cc.o.d"
  "CMakeFiles/agent_repo_test.dir/repo/csv_test.cc.o"
  "CMakeFiles/agent_repo_test.dir/repo/csv_test.cc.o.d"
  "CMakeFiles/agent_repo_test.dir/repo/model_store_test.cc.o"
  "CMakeFiles/agent_repo_test.dir/repo/model_store_test.cc.o.d"
  "CMakeFiles/agent_repo_test.dir/repo/repository_test.cc.o"
  "CMakeFiles/agent_repo_test.dir/repo/repository_test.cc.o.d"
  "agent_repo_test"
  "agent_repo_test.pdb"
  "agent_repo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_repo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
