
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/agent/agent_test.cc" "tests/CMakeFiles/agent_repo_test.dir/agent/agent_test.cc.o" "gcc" "tests/CMakeFiles/agent_repo_test.dir/agent/agent_test.cc.o.d"
  "/root/repo/tests/repo/csv_test.cc" "tests/CMakeFiles/agent_repo_test.dir/repo/csv_test.cc.o" "gcc" "tests/CMakeFiles/agent_repo_test.dir/repo/csv_test.cc.o.d"
  "/root/repo/tests/repo/model_store_test.cc" "tests/CMakeFiles/agent_repo_test.dir/repo/model_store_test.cc.o" "gcc" "tests/CMakeFiles/agent_repo_test.dir/repo/model_store_test.cc.o.d"
  "/root/repo/tests/repo/repository_test.cc" "tests/CMakeFiles/agent_repo_test.dir/repo/repository_test.cc.o" "gcc" "tests/CMakeFiles/agent_repo_test.dir/repo/repository_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
