# Empty dependencies file for agent_repo_test.
# This may be replaced when dependencies are built.
