
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math/distributions_test.cc" "tests/CMakeFiles/math_test.dir/math/distributions_test.cc.o" "gcc" "tests/CMakeFiles/math_test.dir/math/distributions_test.cc.o.d"
  "/root/repo/tests/math/fft_test.cc" "tests/CMakeFiles/math_test.dir/math/fft_test.cc.o" "gcc" "tests/CMakeFiles/math_test.dir/math/fft_test.cc.o.d"
  "/root/repo/tests/math/matrix_test.cc" "tests/CMakeFiles/math_test.dir/math/matrix_test.cc.o" "gcc" "tests/CMakeFiles/math_test.dir/math/matrix_test.cc.o.d"
  "/root/repo/tests/math/optimize_test.cc" "tests/CMakeFiles/math_test.dir/math/optimize_test.cc.o" "gcc" "tests/CMakeFiles/math_test.dir/math/optimize_test.cc.o.d"
  "/root/repo/tests/math/polynomial_test.cc" "tests/CMakeFiles/math_test.dir/math/polynomial_test.cc.o" "gcc" "tests/CMakeFiles/math_test.dir/math/polynomial_test.cc.o.d"
  "/root/repo/tests/math/vec_test.cc" "tests/CMakeFiles/math_test.dir/math/vec_test.cc.o" "gcc" "tests/CMakeFiles/math_test.dir/math/vec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
