file(REMOVE_RECURSE
  "CMakeFiles/tsa_test.dir/tsa/acf_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/acf_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/boxcox_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/boxcox_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/calendar_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/calendar_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/decompose_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/decompose_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/difference_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/difference_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/fourier_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/fourier_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/interpolate_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/interpolate_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/metrics_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/metrics_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/rolling_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/rolling_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/seasonality_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/seasonality_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/stationarity_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/stationarity_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/stl_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/stl_test.cc.o.d"
  "CMakeFiles/tsa_test.dir/tsa/timeseries_test.cc.o"
  "CMakeFiles/tsa_test.dir/tsa/timeseries_test.cc.o.d"
  "tsa_test"
  "tsa_test.pdb"
  "tsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
