
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tsa/acf_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/acf_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/acf_test.cc.o.d"
  "/root/repo/tests/tsa/boxcox_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/boxcox_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/boxcox_test.cc.o.d"
  "/root/repo/tests/tsa/calendar_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/calendar_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/calendar_test.cc.o.d"
  "/root/repo/tests/tsa/decompose_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/decompose_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/decompose_test.cc.o.d"
  "/root/repo/tests/tsa/difference_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/difference_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/difference_test.cc.o.d"
  "/root/repo/tests/tsa/fourier_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/fourier_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/fourier_test.cc.o.d"
  "/root/repo/tests/tsa/interpolate_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/interpolate_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/interpolate_test.cc.o.d"
  "/root/repo/tests/tsa/metrics_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/metrics_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/metrics_test.cc.o.d"
  "/root/repo/tests/tsa/rolling_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/rolling_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/rolling_test.cc.o.d"
  "/root/repo/tests/tsa/seasonality_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/seasonality_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/seasonality_test.cc.o.d"
  "/root/repo/tests/tsa/stationarity_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/stationarity_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/stationarity_test.cc.o.d"
  "/root/repo/tests/tsa/stl_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/stl_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/stl_test.cc.o.d"
  "/root/repo/tests/tsa/timeseries_test.cc" "tests/CMakeFiles/tsa_test.dir/tsa/timeseries_test.cc.o" "gcc" "tests/CMakeFiles/tsa_test.dir/tsa/timeseries_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
