file(REMOVE_RECURSE
  "CMakeFiles/models_test.dir/models/arima_property_test.cc.o"
  "CMakeFiles/models_test.dir/models/arima_property_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/arima_spec_test.cc.o"
  "CMakeFiles/models_test.dir/models/arima_spec_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/arima_test.cc.o"
  "CMakeFiles/models_test.dir/models/arima_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/auto_arima_test.cc.o"
  "CMakeFiles/models_test.dir/models/auto_arima_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/baselines_test.cc.o"
  "CMakeFiles/models_test.dir/models/baselines_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/dshw_test.cc.o"
  "CMakeFiles/models_test.dir/models/dshw_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/ets_test.cc.o"
  "CMakeFiles/models_test.dir/models/ets_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/kalman_test.cc.o"
  "CMakeFiles/models_test.dir/models/kalman_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/regression_test.cc.o"
  "CMakeFiles/models_test.dir/models/regression_test.cc.o.d"
  "CMakeFiles/models_test.dir/models/tbats_test.cc.o"
  "CMakeFiles/models_test.dir/models/tbats_test.cc.o.d"
  "models_test"
  "models_test.pdb"
  "models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
