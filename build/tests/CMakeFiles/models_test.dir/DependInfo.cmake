
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/models/arima_property_test.cc" "tests/CMakeFiles/models_test.dir/models/arima_property_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/arima_property_test.cc.o.d"
  "/root/repo/tests/models/arima_spec_test.cc" "tests/CMakeFiles/models_test.dir/models/arima_spec_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/arima_spec_test.cc.o.d"
  "/root/repo/tests/models/arima_test.cc" "tests/CMakeFiles/models_test.dir/models/arima_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/arima_test.cc.o.d"
  "/root/repo/tests/models/auto_arima_test.cc" "tests/CMakeFiles/models_test.dir/models/auto_arima_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/auto_arima_test.cc.o.d"
  "/root/repo/tests/models/baselines_test.cc" "tests/CMakeFiles/models_test.dir/models/baselines_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/baselines_test.cc.o.d"
  "/root/repo/tests/models/dshw_test.cc" "tests/CMakeFiles/models_test.dir/models/dshw_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/dshw_test.cc.o.d"
  "/root/repo/tests/models/ets_test.cc" "tests/CMakeFiles/models_test.dir/models/ets_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/ets_test.cc.o.d"
  "/root/repo/tests/models/kalman_test.cc" "tests/CMakeFiles/models_test.dir/models/kalman_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/kalman_test.cc.o.d"
  "/root/repo/tests/models/regression_test.cc" "tests/CMakeFiles/models_test.dir/models/regression_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/regression_test.cc.o.d"
  "/root/repo/tests/models/tbats_test.cc" "tests/CMakeFiles/models_test.dir/models/tbats_test.cc.o" "gcc" "tests/CMakeFiles/models_test.dir/models/tbats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
