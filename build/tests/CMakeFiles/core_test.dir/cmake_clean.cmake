file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/candidate_gen_test.cc.o"
  "CMakeFiles/core_test.dir/core/candidate_gen_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/capacity_test.cc.o"
  "CMakeFiles/core_test.dir/core/capacity_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/drift_test.cc.o"
  "CMakeFiles/core_test.dir/core/drift_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/ensemble_test.cc.o"
  "CMakeFiles/core_test.dir/core/ensemble_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/monitor_test.cc.o"
  "CMakeFiles/core_test.dir/core/monitor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/report_json_test.cc.o"
  "CMakeFiles/core_test.dir/core/report_json_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/selector_test.cc.o"
  "CMakeFiles/core_test.dir/core/selector_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/shock_detect_test.cc.o"
  "CMakeFiles/core_test.dir/core/shock_detect_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/split_test.cc.o"
  "CMakeFiles/core_test.dir/core/split_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
