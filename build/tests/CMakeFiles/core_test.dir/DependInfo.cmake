
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/candidate_gen_test.cc" "tests/CMakeFiles/core_test.dir/core/candidate_gen_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/candidate_gen_test.cc.o.d"
  "/root/repo/tests/core/capacity_test.cc" "tests/CMakeFiles/core_test.dir/core/capacity_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/capacity_test.cc.o.d"
  "/root/repo/tests/core/drift_test.cc" "tests/CMakeFiles/core_test.dir/core/drift_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/drift_test.cc.o.d"
  "/root/repo/tests/core/ensemble_test.cc" "tests/CMakeFiles/core_test.dir/core/ensemble_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ensemble_test.cc.o.d"
  "/root/repo/tests/core/monitor_test.cc" "tests/CMakeFiles/core_test.dir/core/monitor_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/monitor_test.cc.o.d"
  "/root/repo/tests/core/report_json_test.cc" "tests/CMakeFiles/core_test.dir/core/report_json_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/report_json_test.cc.o.d"
  "/root/repo/tests/core/selector_test.cc" "tests/CMakeFiles/core_test.dir/core/selector_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/selector_test.cc.o.d"
  "/root/repo/tests/core/shock_detect_test.cc" "tests/CMakeFiles/core_test.dir/core/shock_detect_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/shock_detect_test.cc.o.d"
  "/root/repo/tests/core/split_test.cc" "tests/CMakeFiles/core_test.dir/core/split_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/split_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/capplan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
