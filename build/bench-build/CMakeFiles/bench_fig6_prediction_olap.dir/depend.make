# Empty dependencies file for bench_fig6_prediction_olap.
# This may be replaced when dependencies are built.
