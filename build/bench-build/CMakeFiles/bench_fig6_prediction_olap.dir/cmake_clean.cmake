file(REMOVE_RECURSE
  "../bench/bench_fig6_prediction_olap"
  "../bench/bench_fig6_prediction_olap.pdb"
  "CMakeFiles/bench_fig6_prediction_olap.dir/fig6_prediction_olap.cc.o"
  "CMakeFiles/bench_fig6_prediction_olap.dir/fig6_prediction_olap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_prediction_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
