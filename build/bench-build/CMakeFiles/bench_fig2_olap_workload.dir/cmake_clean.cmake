file(REMOVE_RECURSE
  "../bench/bench_fig2_olap_workload"
  "../bench/bench_fig2_olap_workload.pdb"
  "CMakeFiles/bench_fig2_olap_workload.dir/fig2_olap_workload.cc.o"
  "CMakeFiles/bench_fig2_olap_workload.dir/fig2_olap_workload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_olap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
