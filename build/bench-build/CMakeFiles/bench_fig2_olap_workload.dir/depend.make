# Empty dependencies file for bench_fig2_olap_workload.
# This may be replaced when dependencies are built.
