# Empty dependencies file for bench_fig3_oltp_workload.
# This may be replaced when dependencies are built.
