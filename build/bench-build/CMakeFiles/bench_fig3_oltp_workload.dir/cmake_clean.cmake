file(REMOVE_RECURSE
  "../bench/bench_fig3_oltp_workload"
  "../bench/bench_fig3_oltp_workload.pdb"
  "CMakeFiles/bench_fig3_oltp_workload.dir/fig3_oltp_workload.cc.o"
  "CMakeFiles/bench_fig3_oltp_workload.dir/fig3_oltp_workload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_oltp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
