# Empty dependencies file for bench_fig7_prediction_oltp.
# This may be replaced when dependencies are built.
