file(REMOVE_RECURSE
  "../bench/bench_fig7_prediction_oltp"
  "../bench/bench_fig7_prediction_oltp.pdb"
  "CMakeFiles/bench_fig7_prediction_oltp.dir/fig7_prediction_oltp.cc.o"
  "CMakeFiles/bench_fig7_prediction_oltp.dir/fig7_prediction_oltp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_prediction_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
