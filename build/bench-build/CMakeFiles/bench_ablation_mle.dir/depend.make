# Empty dependencies file for bench_ablation_mle.
# This may be replaced when dependencies are built.
