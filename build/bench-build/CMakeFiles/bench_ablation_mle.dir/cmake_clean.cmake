file(REMOVE_RECURSE
  "../bench/bench_ablation_mle"
  "../bench/bench_ablation_mle.pdb"
  "CMakeFiles/bench_ablation_mle.dir/ablation_mle.cc.o"
  "CMakeFiles/bench_ablation_mle.dir/ablation_mle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
