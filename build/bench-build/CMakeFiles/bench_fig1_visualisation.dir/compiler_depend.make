# Empty compiler generated dependencies file for bench_fig1_visualisation.
# This may be replaced when dependencies are built.
