# Empty compiler generated dependencies file for bench_table2b_oltp.
# This may be replaced when dependencies are built.
