file(REMOVE_RECURSE
  "../bench/bench_table2b_oltp"
  "../bench/bench_table2b_oltp.pdb"
  "CMakeFiles/bench_table2b_oltp.dir/table2b_oltp.cc.o"
  "CMakeFiles/bench_table2b_oltp.dir/table2b_oltp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2b_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
