# Empty compiler generated dependencies file for bench_ablation_autoarima.
# This may be replaced when dependencies are built.
