file(REMOVE_RECURSE
  "../bench/bench_ablation_autoarima"
  "../bench/bench_ablation_autoarima.pdb"
  "CMakeFiles/bench_ablation_autoarima.dir/ablation_autoarima.cc.o"
  "CMakeFiles/bench_ablation_autoarima.dir/ablation_autoarima.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_autoarima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
