file(REMOVE_RECURSE
  "../bench/bench_fig8_dashboard"
  "../bench/bench_fig8_dashboard.pdb"
  "CMakeFiles/bench_fig8_dashboard.dir/fig8_dashboard.cc.o"
  "CMakeFiles/bench_fig8_dashboard.dir/fig8_dashboard.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
