# Empty compiler generated dependencies file for bench_model_counts.
# This may be replaced when dependencies are built.
