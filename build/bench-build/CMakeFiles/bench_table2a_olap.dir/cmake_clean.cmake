file(REMOVE_RECURSE
  "../bench/bench_table2a_olap"
  "../bench/bench_table2a_olap.pdb"
  "CMakeFiles/bench_table2a_olap.dir/table2a_olap.cc.o"
  "CMakeFiles/bench_table2a_olap.dir/table2a_olap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2a_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
