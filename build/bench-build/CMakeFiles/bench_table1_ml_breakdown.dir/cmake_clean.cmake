file(REMOVE_RECURSE
  "../bench/bench_table1_ml_breakdown"
  "../bench/bench_table1_ml_breakdown.pdb"
  "CMakeFiles/bench_table1_ml_breakdown.dir/table1_ml_breakdown.cc.o"
  "CMakeFiles/bench_table1_ml_breakdown.dir/table1_ml_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ml_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
