# Empty compiler generated dependencies file for bench_table1_ml_breakdown.
# This may be replaced when dependencies are built.
