file(REMOVE_RECURSE
  "../bench/bench_perf_models"
  "../bench/bench_perf_models.pdb"
  "CMakeFiles/bench_perf_models.dir/perf_models.cc.o"
  "CMakeFiles/bench_perf_models.dir/perf_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
