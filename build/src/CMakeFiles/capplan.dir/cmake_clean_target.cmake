file(REMOVE_RECURSE
  "libcapplan.a"
)
