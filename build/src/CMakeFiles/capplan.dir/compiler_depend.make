# Empty compiler generated dependencies file for capplan.
# This may be replaced when dependencies are built.
