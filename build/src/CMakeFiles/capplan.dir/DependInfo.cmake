
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/agent.cc" "src/CMakeFiles/capplan.dir/agent/agent.cc.o" "gcc" "src/CMakeFiles/capplan.dir/agent/agent.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/capplan.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/capplan.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/capplan.dir/common/status.cc.o" "gcc" "src/CMakeFiles/capplan.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/capplan.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/capplan.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/candidate_gen.cc" "src/CMakeFiles/capplan.dir/core/candidate_gen.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/candidate_gen.cc.o.d"
  "/root/repo/src/core/capacity.cc" "src/CMakeFiles/capplan.dir/core/capacity.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/capacity.cc.o.d"
  "/root/repo/src/core/drift.cc" "src/CMakeFiles/capplan.dir/core/drift.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/drift.cc.o.d"
  "/root/repo/src/core/ensemble.cc" "src/CMakeFiles/capplan.dir/core/ensemble.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/ensemble.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/CMakeFiles/capplan.dir/core/monitor.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/monitor.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/capplan.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/report_json.cc" "src/CMakeFiles/capplan.dir/core/report_json.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/report_json.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/CMakeFiles/capplan.dir/core/selector.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/selector.cc.o.d"
  "/root/repo/src/core/shock_detect.cc" "src/CMakeFiles/capplan.dir/core/shock_detect.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/shock_detect.cc.o.d"
  "/root/repo/src/core/split.cc" "src/CMakeFiles/capplan.dir/core/split.cc.o" "gcc" "src/CMakeFiles/capplan.dir/core/split.cc.o.d"
  "/root/repo/src/math/distributions.cc" "src/CMakeFiles/capplan.dir/math/distributions.cc.o" "gcc" "src/CMakeFiles/capplan.dir/math/distributions.cc.o.d"
  "/root/repo/src/math/fft.cc" "src/CMakeFiles/capplan.dir/math/fft.cc.o" "gcc" "src/CMakeFiles/capplan.dir/math/fft.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/CMakeFiles/capplan.dir/math/matrix.cc.o" "gcc" "src/CMakeFiles/capplan.dir/math/matrix.cc.o.d"
  "/root/repo/src/math/optimize.cc" "src/CMakeFiles/capplan.dir/math/optimize.cc.o" "gcc" "src/CMakeFiles/capplan.dir/math/optimize.cc.o.d"
  "/root/repo/src/math/polynomial.cc" "src/CMakeFiles/capplan.dir/math/polynomial.cc.o" "gcc" "src/CMakeFiles/capplan.dir/math/polynomial.cc.o.d"
  "/root/repo/src/math/vec.cc" "src/CMakeFiles/capplan.dir/math/vec.cc.o" "gcc" "src/CMakeFiles/capplan.dir/math/vec.cc.o.d"
  "/root/repo/src/models/arima.cc" "src/CMakeFiles/capplan.dir/models/arima.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/arima.cc.o.d"
  "/root/repo/src/models/arima_spec.cc" "src/CMakeFiles/capplan.dir/models/arima_spec.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/arima_spec.cc.o.d"
  "/root/repo/src/models/auto_arima.cc" "src/CMakeFiles/capplan.dir/models/auto_arima.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/auto_arima.cc.o.d"
  "/root/repo/src/models/baselines.cc" "src/CMakeFiles/capplan.dir/models/baselines.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/baselines.cc.o.d"
  "/root/repo/src/models/dshw.cc" "src/CMakeFiles/capplan.dir/models/dshw.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/dshw.cc.o.d"
  "/root/repo/src/models/ets.cc" "src/CMakeFiles/capplan.dir/models/ets.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/ets.cc.o.d"
  "/root/repo/src/models/kalman.cc" "src/CMakeFiles/capplan.dir/models/kalman.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/kalman.cc.o.d"
  "/root/repo/src/models/regression.cc" "src/CMakeFiles/capplan.dir/models/regression.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/regression.cc.o.d"
  "/root/repo/src/models/tbats.cc" "src/CMakeFiles/capplan.dir/models/tbats.cc.o" "gcc" "src/CMakeFiles/capplan.dir/models/tbats.cc.o.d"
  "/root/repo/src/repo/csv.cc" "src/CMakeFiles/capplan.dir/repo/csv.cc.o" "gcc" "src/CMakeFiles/capplan.dir/repo/csv.cc.o.d"
  "/root/repo/src/repo/model_store.cc" "src/CMakeFiles/capplan.dir/repo/model_store.cc.o" "gcc" "src/CMakeFiles/capplan.dir/repo/model_store.cc.o.d"
  "/root/repo/src/repo/repository.cc" "src/CMakeFiles/capplan.dir/repo/repository.cc.o" "gcc" "src/CMakeFiles/capplan.dir/repo/repository.cc.o.d"
  "/root/repo/src/tsa/acf.cc" "src/CMakeFiles/capplan.dir/tsa/acf.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/acf.cc.o.d"
  "/root/repo/src/tsa/boxcox.cc" "src/CMakeFiles/capplan.dir/tsa/boxcox.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/boxcox.cc.o.d"
  "/root/repo/src/tsa/calendar.cc" "src/CMakeFiles/capplan.dir/tsa/calendar.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/calendar.cc.o.d"
  "/root/repo/src/tsa/decompose.cc" "src/CMakeFiles/capplan.dir/tsa/decompose.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/decompose.cc.o.d"
  "/root/repo/src/tsa/difference.cc" "src/CMakeFiles/capplan.dir/tsa/difference.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/difference.cc.o.d"
  "/root/repo/src/tsa/fourier.cc" "src/CMakeFiles/capplan.dir/tsa/fourier.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/fourier.cc.o.d"
  "/root/repo/src/tsa/interpolate.cc" "src/CMakeFiles/capplan.dir/tsa/interpolate.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/interpolate.cc.o.d"
  "/root/repo/src/tsa/metrics.cc" "src/CMakeFiles/capplan.dir/tsa/metrics.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/metrics.cc.o.d"
  "/root/repo/src/tsa/rolling.cc" "src/CMakeFiles/capplan.dir/tsa/rolling.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/rolling.cc.o.d"
  "/root/repo/src/tsa/seasonality.cc" "src/CMakeFiles/capplan.dir/tsa/seasonality.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/seasonality.cc.o.d"
  "/root/repo/src/tsa/stationarity.cc" "src/CMakeFiles/capplan.dir/tsa/stationarity.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/stationarity.cc.o.d"
  "/root/repo/src/tsa/stl.cc" "src/CMakeFiles/capplan.dir/tsa/stl.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/stl.cc.o.d"
  "/root/repo/src/tsa/timeseries.cc" "src/CMakeFiles/capplan.dir/tsa/timeseries.cc.o" "gcc" "src/CMakeFiles/capplan.dir/tsa/timeseries.cc.o.d"
  "/root/repo/src/workload/cluster.cc" "src/CMakeFiles/capplan.dir/workload/cluster.cc.o" "gcc" "src/CMakeFiles/capplan.dir/workload/cluster.cc.o.d"
  "/root/repo/src/workload/events.cc" "src/CMakeFiles/capplan.dir/workload/events.cc.o" "gcc" "src/CMakeFiles/capplan.dir/workload/events.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/CMakeFiles/capplan.dir/workload/scenario.cc.o" "gcc" "src/CMakeFiles/capplan.dir/workload/scenario.cc.o.d"
  "/root/repo/src/workload/transactions.cc" "src/CMakeFiles/capplan.dir/workload/transactions.cc.o" "gcc" "src/CMakeFiles/capplan.dir/workload/transactions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
