#!/usr/bin/env python3
"""Metric-name linter for the observability layer (stdlib only).

Cross-checks the metric names registered in the C++ sources against the
catalogue tables in the docs (the CATALOGUES list below), in both
directions:

  1. every `capplan_*` string literal under src/ must follow the naming
     rules (snake_case starting with a letter, no double underscore, no
     trailing underscore; counters end in `_total`, everything else carries
     a unit suffix such as `_ms`, `_seconds`, `_bytes`, `_ratio`);
  2. every name found in src/ must have a catalogue row in one of the docs;
  3. every catalogue row must correspond to a name actually registered in
     src/ — the docs may not advertise metrics that do not exist;
  4. the "Exemplar-bearing histograms" table in docs/observability.md must
     agree with the golden scrape fixture tools/testdata/golden_scrape.prom
     (captured from the real exporter): every histogram the docs claim
     carries exemplars must show one on a `_bucket` line in the fixture,
     and the fixture may not carry exemplars on undocumented histograms.

Usage: tools/check_metrics.py            (from the repository root)
Exits 1 with one line per violation, 0 when the catalogues are consistent.
"""

import re
import sys
from pathlib import Path

CATALOGUES = (Path("docs/observability.md"), Path("docs/serving.md"),
              Path("docs/storage.md"), Path("docs/scaling.md"),
              Path("docs/robustness.md"), Path("docs/selection.md"))
SRC_DIR = Path("src")

# A metric name inside a C++ string literal.
SRC_METRIC_RE = re.compile(r'"(capplan_[A-Za-z0-9_]*)"')
# A catalogue row: first cell of a table row, name in backticks.
DOC_METRIC_RE = re.compile(r"^\|\s*`(capplan_[A-Za-z0-9_]*)`\s*\|", re.MULTILINE)

# The exemplar contract: the table under this heading in observability.md
# vs the exporter's actual output, captured in the golden fixture.
EXEMPLAR_DOC = Path("docs/observability.md")
EXEMPLAR_HEADING = "#### Exemplar-bearing histograms"
EXEMPLAR_FIXTURE = Path("tools/testdata/golden_scrape.prom")
# A cumulative-bucket sample carrying an OpenMetrics exemplar.
FIXTURE_EXEMPLAR_RE = re.compile(
    r"^(capplan_[A-Za-z0-9_]*)_bucket\{[^}]*\} \S+ # \{[^}]*\} \S+$",
    re.MULTILINE)

VALID_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
# `_state` marks an enum-valued gauge (e.g. capplan_health_state: 0 healthy,
# 1 degraded, 2 critical); `_count` a unit-less sample count gauge.
UNIT_SUFFIXES = ("_total", "_ms", "_seconds", "_bytes", "_ratio", "_state",
                 "_count")


def naming_errors(name: str, where: str) -> list:
    errors = []
    if not VALID_NAME_RE.fullmatch(name):
        errors.append(f"{where}: {name}: not lowercase snake_case")
    if "__" in name:
        errors.append(f"{where}: {name}: double underscore")
    if name.endswith("_"):
        errors.append(f"{where}: {name}: trailing underscore")
    if not name.endswith(UNIT_SUFFIXES):
        errors.append(f"{where}: {name}: counters must end in _total, other "
                      f"metrics need a unit suffix {UNIT_SUFFIXES}")
    return errors


def metrics_in_sources() -> dict:
    """name -> first `file:line` that registers it."""
    found = {}
    for path in sorted(SRC_DIR.rglob("*.cc")) + sorted(SRC_DIR.rglob("*.h")):
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            for name in SRC_METRIC_RE.findall(line):
                found.setdefault(name, f"{path}:{lineno}")
    return found


def documented_exemplar_histograms() -> set:
    """Names in the exemplar table: heading to the next heading line."""
    text = EXEMPLAR_DOC.read_text(encoding="utf-8")
    start = text.find(EXEMPLAR_HEADING)
    if start < 0:
        return set()
    section = text[start + len(EXEMPLAR_HEADING):]
    next_heading = re.search(r"^#{1,6} ", section, re.MULTILINE)
    if next_heading:
        section = section[:next_heading.start()]
    return set(DOC_METRIC_RE.findall(section))


def exemplar_errors() -> list:
    documented = documented_exemplar_histograms()
    if not documented:
        return [f"{EXEMPLAR_DOC}: no '{EXEMPLAR_HEADING}' table found"]
    if not EXEMPLAR_FIXTURE.is_file():
        return [f"{EXEMPLAR_FIXTURE}: golden scrape fixture missing"]
    exported = set(FIXTURE_EXEMPLAR_RE.findall(
        EXEMPLAR_FIXTURE.read_text(encoding="utf-8")))
    errors = []
    for name in sorted(documented - exported):
        errors.append(f"{EXEMPLAR_DOC}: {name}: documented as "
                      f"exemplar-bearing but no bucket in {EXEMPLAR_FIXTURE} "
                      f"carries an exemplar")
    for name in sorted(exported - documented):
        errors.append(f"{EXEMPLAR_FIXTURE}: {name}: exports exemplars but is "
                      f"missing from the '{EXEMPLAR_HEADING}' table in "
                      f"{EXEMPLAR_DOC}")
    return errors


def main() -> int:
    missing = [c for c in CATALOGUES if not c.is_file()]
    if missing or not SRC_DIR.is_dir():
        print(f"run from the repository root (missing "
              f"{', '.join(map(str, missing)) or SRC_DIR}/)", file=sys.stderr)
        return 2

    src_metrics = metrics_in_sources()
    doc_metrics = {}  # name -> catalogue file that lists it
    for catalogue in CATALOGUES:
        for name in DOC_METRIC_RE.findall(
                catalogue.read_text(encoding="utf-8")):
            doc_metrics.setdefault(name, catalogue)

    errors = []
    for name, where in sorted(src_metrics.items()):
        errors.extend(naming_errors(name, where))
        if name not in doc_metrics:
            errors.append(f"{where}: {name}: missing from the catalogues in "
                          f"{' and '.join(map(str, CATALOGUES))}")
    for name in sorted(set(doc_metrics) - set(src_metrics)):
        errors.append(f"{doc_metrics[name]}: {name}: catalogued but never "
                      f"registered in {SRC_DIR}/")
    errors.extend(exemplar_errors())

    for line in errors:
        print(line, file=sys.stderr)
    print(f"checked {len(src_metrics)} registered metrics against "
          f"{len(doc_metrics)} catalogue rows "
          f"(+ {len(documented_exemplar_histograms())} exemplar histograms "
          f"against the golden scrape): "
          f"{'OK' if not errors else f'{len(errors)} violations'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
