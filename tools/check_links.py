#!/usr/bin/env python3
"""Markdown link checker for the repo docs (stdlib only).

Verifies that every relative link target in the given Markdown files exists
on disk and that every intra-document anchor (#section) matches a heading,
using GitHub's heading-slug rules. External http(s)/mailto links are not
fetched — CI must stay hermetic — but their syntax is still parsed.

Usage: tools/check_links.py README.md DESIGN.md docs/*.md
Exits 1 with one line per broken link, 0 when everything resolves.
"""

import re
import sys
from pathlib import Path

# Inline links [text](target); images ![alt](target) match the same shape.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(md_text: str) -> set:
    slugs = set()
    counts = {}
    for heading in HEADING_RE.findall(strip_code_blocks(md_text)):
        slug = github_slug(heading)
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def strip_code_blocks(md_text: str) -> str:
    """Remove fenced code blocks so example links/headings are not checked."""
    return re.sub(r"```.*?```", "", md_text, flags=re.DOTALL)


def check_file(path: Path, repo_root: Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    own_anchors = anchors_of(text)
    for target in LINK_RE.findall(strip_code_blocks(text)):
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            if target[1:] not in own_anchors:
                errors.append(f"{path}: broken anchor {target}")
            continue
        ref, _, anchor = target.partition("#")
        dest = (path.parent / ref).resolve()
        try:
            dest.relative_to(repo_root)
        except ValueError:
            errors.append(f"{path}: link escapes the repository: {target}")
            continue
        if not dest.exists():
            errors.append(f"{path}: missing target {target}")
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in anchors_of(dest.read_text(encoding="utf-8")):
                errors.append(f"{path}: missing anchor #{anchor} in {ref}")
    return errors


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    repo_root = Path.cwd().resolve()
    errors = []
    checked = 0
    for arg in argv[1:]:
        path = Path(arg)
        if not path.is_file():
            errors.append(f"{arg}: no such file")
            continue
        checked += 1
        errors.extend(check_file(path, repo_root))
    for line in errors:
        print(line, file=sys.stderr)
    print(f"checked {checked} files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
