#ifndef CAPPLAN_BENCH_TABLE2_COMMON_H_
#define CAPPLAN_BENCH_TABLE2_COMMON_H_

// Shared evaluation routine for the Table 2 reproductions: for one hourly
// metric series, run the paper's three techniques (ARIMA, SARIMAX,
// SARIMAX+FFT+Exog), each selecting its best model by test RMSE over the
// correlogram-pruned §6.3 grid, and report the winning model per family.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/candidate_gen.h"
#include "core/selector.h"
#include "core/shock_detect.h"
#include "core/split.h"
#include "models/baselines.h"
#include "tsa/acf.h"
#include "tsa/interpolate.h"
#include "tsa/seasonality.h"

namespace capplan::bench {

struct FamilyResult {
  std::string family_label;
  std::string spec;
  tsa::AccuracyReport accuracy;
  std::size_t evaluated = 0;
  std::size_t succeeded = 0;
};

inline std::optional<std::vector<FamilyResult>> EvaluateThreeFamilies(
    const tsa::TimeSeries& hourly, std::size_t n_threads = 8,
    int max_lag = 30) {
  auto filled = tsa::LinearInterpolate(hourly);
  if (!filled.ok()) return std::nullopt;
  auto split = core::ApplySplit(*filled);
  if (!split.ok()) {
    std::fprintf(stderr, "split failed: %s\n",
                 split.status().ToString().c_str());
    return std::nullopt;
  }
  const std::vector<double>& train = split->first.values();
  const std::vector<double>& test = split->second.values();

  // Data understanding shared by the seasonal families.
  std::vector<std::size_t> significant;
  {
    auto pacf = tsa::Pacf(train, static_cast<std::size_t>(max_lag));
    if (pacf.ok()) significant = tsa::SignificantLags(*pacf, train.size());
  }
  // Fourier regressors for every detected season (with the D=0 corner of
  // the grid these give deterministic-seasonality + ARMA-error models).
  std::vector<double> fourier_periods;
  {
    auto seasons = tsa::DetectSeasonality(train);
    if (seasons.ok() && seasons->size() >= 2) {
      for (const auto& s : *seasons) {
        fourier_periods.push_back(static_cast<double>(s.period));
      }
    }
  }
  core::ShockDetector detector;
  std::vector<core::DetectedShock> shocks;
  if (auto detected = detector.Detect(train); detected.ok()) {
    shocks = *detected;
  }
  const auto exog_train = core::ShockDetector::PulseColumns(shocks, 0,
                                                            train.size());
  const auto exog_test =
      core::ShockDetector::PulseColumns(shocks, train.size(), test.size());

  core::ModelSelector::Options sel_opts;
  sel_opts.n_threads = n_threads;
  core::ModelSelector selector(sel_opts);

  std::vector<FamilyResult> out;
  // Accuracy floor: the seasonal-naive baseline (M-competition style).
  if (auto baseline = models::SeasonalNaiveForecast(train, 24, test.size());
      baseline.ok()) {
    if (auto acc = tsa::MeasureAccuracy(test, baseline->mean); acc.ok()) {
      FamilyResult r;
      r.family_label = "SeasonalNaive (floor)";
      r.spec = "";
      r.accuracy = *acc;
      r.evaluated = 1;
      r.succeeded = 1;
      out.push_back(std::move(r));
    }
  }
  struct FamilyDef {
    core::Technique technique;
    const char* label;
  };
  const FamilyDef families[] = {
      {core::Technique::kArima, "ARIMA"},
      {core::Technique::kSarimax, "SARIMAX"},
      {core::Technique::kSarimaxFftExog, "SARIMAX FFT Exogenous"},
  };
  for (const auto& fam : families) {
    core::CandidateGenerator::Options gen_opts;
    gen_opts.max_lag = max_lag;
    gen_opts.season = 24;
    gen_opts.n_shock_columns = shocks.size();
    gen_opts.fourier_periods = fourier_periods;
    core::CandidateGenerator gen(gen_opts);
    auto candidates = gen.GeneratePruned(fam.technique, significant);
    auto sel = selector.Select(train, test, candidates, exog_train, exog_test);
    if (!sel.ok()) {
      std::fprintf(stderr, "%s selection failed: %s\n", fam.label,
                   sel.status().ToString().c_str());
      continue;
    }
    FamilyResult r;
    r.family_label = fam.label;
    r.spec = sel->best.candidate.spec.ToString();
    if (!sel->best.candidate.fourier.empty()) r.spec += "+FFT";
    if (sel->best.candidate.n_exog > 0) {
      r.spec += "+exog(" + std::to_string(sel->best.candidate.n_exog) + ")";
    }
    r.accuracy = sel->best.accuracy;
    r.evaluated = sel->evaluated;
    r.succeeded = sel->succeeded;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace capplan::bench

#endif  // CAPPLAN_BENCH_TABLE2_COMMON_H_
