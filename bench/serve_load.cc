// Query-server load gate for the CI bench-smoke step. Two phases against a
// real socket server:
//
//   1. Steady state — 8 closed-loop keep-alive clients hammer a small query
//      set over a static view. Records req/s and merged p50/p99 latency and
//      gates on the answer-cache hit ratio (>= 0.9: a small hot query set
//      must be served almost entirely from cache).
//   2. Overload — max_inflight is squeezed to 4 under a deliberately slow
//      handler and 16 clients; the gate demands demonstrable 429 shedding
//      AND continued 200 service (admission control degrades, not collapses).
//
// Writes BENCH_serve.json and exits non-zero when either gate fails.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "serve/estate_view.h"
#include "serve/handlers.h"
#include "serve/http_client.h"
#include "serve/http_server.h"

using namespace capplan;
using namespace capplan::serve;

namespace {

constexpr int kClients = 8;
constexpr int kRequestsPerClient = 400;
constexpr double kHitRatioGate = 0.9;
constexpr int kOverloadClients = 16;
constexpr int kOverloadRequests = 25;

std::shared_ptr<EstateView> SyntheticView() {
  auto view = std::make_shared<EstateView>();
  view->now_epoch = 1000000;
  view->tick = 1;
  for (int i = 0; i < 4; ++i) {
    InstanceStatus s;
    s.instance = "cdbm01" + std::to_string(i);
    s.metric = "cpu";
    s.key = s.instance + "/cpu";
    s.threshold = 80.0;
    s.has_forecast = true;
    for (int h = 0; h < 24; ++h) {
      s.forecast.mean.push_back(50.0 + 1.5 * h + i);
      s.forecast.lower.push_back(45.0 + 1.5 * h + i);
      s.forecast.upper.push_back(55.0 + 1.5 * h + i);
    }
    s.forecast_start_epoch = 1000000;
    s.forecast_step_seconds = 3600;
    s.spec = "HES a=0.2";
    for (int h = 0; h < 8; ++h) s.recent.push_back(40.0 + h + i);
    s.recent_start_epoch = 1000000 - 8 * 3600;
    view->instances.push_back(std::move(s));
  }
  std::sort(view->instances.begin(), view->instances.end(),
            [](const InstanceStatus& a, const InstanceStatus& b) {
              return a.key < b.key;
            });
  return view;
}

std::vector<std::string> Targets(const EstateView& view) {
  std::vector<std::string> targets;
  for (const auto& s : view.instances) {
    const std::string qs = "instance=" + s.instance + "&metric=" + s.metric;
    targets.push_back("/v1/forecast?" + qs);
    targets.push_back("/v1/breach?" + qs);
    targets.push_back("/v1/headroom?" + qs + "&capacity=200");
  }
  targets.push_back("/v1/estate");
  return targets;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  std::sort(sorted->begin(), sorted->end());
  const double rank = p * static_cast<double>(sorted->size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted)[lo] * (1.0 - frac) + (*sorted)[hi] * frac;
}

}  // namespace

int main() {
  // ---- Phase 1: steady-state throughput + cache hit ratio ----------------
  ViewChannel channel;
  channel.Publish(SyntheticView());
  EstateQueryHandler handler(&channel);

  HttpServerConfig config;
  config.worker_threads = 4;
  HttpServer server(
      [&handler](const HttpRequest& r) { return handler.Handle(r); }, config);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "serve_load: server failed to start\n");
    return 2;
  }
  const auto targets = Targets(*channel.Get());

  std::atomic<std::uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(kClients);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([c, &server, &targets, &errors, &latencies] {
        HttpClient client;
        if (!client.Connect("127.0.0.1", server.port()).ok()) {
          errors.fetch_add(kRequestsPerClient);
          return;
        }
        latencies[c].reserve(kRequestsPerClient);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const auto& target = targets[(c + i) % targets.size()];
          const auto r0 = std::chrono::steady_clock::now();
          auto resp = client.Get(target);
          const auto r1 = std::chrono::steady_clock::now();
          if (!resp.ok() || resp->status != 200) {
            errors.fetch_add(1);
            continue;
          }
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(r1 - r0).count());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.Stop();

  std::vector<double> merged;
  for (const auto& per : latencies) {
    merged.insert(merged.end(), per.begin(), per.end());
  }
  const double total = static_cast<double>(merged.size());
  const double rps = elapsed_s > 0.0 ? total / elapsed_s : 0.0;
  const double p50 = Percentile(&merged, 0.50);
  const double p99 = Percentile(&merged, 0.99);
  const std::uint64_t hits = handler.cache().hits();
  const std::uint64_t misses = handler.cache().misses();
  const double hit_ratio =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  const bool cache_pass = hit_ratio >= kHitRatioGate && errors.load() == 0;

  // ---- Phase 2: overload shedding ----------------------------------------
  HttpServerConfig tight;
  tight.worker_threads = 4;
  tight.max_inflight = 4;
  HttpServer slow(
      [&handler](const HttpRequest& r) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        return handler.Handle(r);
      },
      tight);
  if (!slow.Start().ok()) {
    std::fprintf(stderr, "serve_load: overload server failed to start\n");
    return 2;
  }
  std::atomic<std::uint64_t> ok_200{0};
  std::atomic<std::uint64_t> shed_429{0};
  std::atomic<std::uint64_t> other{0};
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kOverloadClients; ++c) {
      threads.emplace_back([c, &slow, &targets, &ok_200, &shed_429, &other] {
        HttpClient client;
        if (!client.Connect("127.0.0.1", slow.port()).ok()) {
          other.fetch_add(kOverloadRequests);
          return;
        }
        for (int i = 0; i < kOverloadRequests; ++i) {
          auto resp = client.Get(targets[(c + i) % targets.size()]);
          if (!resp.ok()) {
            other.fetch_add(1);
          } else if (resp->status == 200) {
            ok_200.fetch_add(1);
          } else if (resp->status == 429) {
            shed_429.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const HttpServerStats slow_stats = slow.Stats();
  slow.Stop();
  const bool overload_pass =
      shed_429.load() > 0 && ok_200.load() > 0 && other.load() == 0;

  const bool pass = cache_pass && overload_pass;

  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.String("bench", "serve_load");
  w.Integer("clients", kClients);
  w.Integer("requests", static_cast<long long>(total));
  w.Number("elapsed_s", elapsed_s);
  w.Number("requests_per_second", rps);
  w.Number("latency_p50_ms", p50);
  w.Number("latency_p99_ms", p99);
  w.Integer("cache_hits", static_cast<long long>(hits));
  w.Integer("cache_misses", static_cast<long long>(misses));
  w.Number("cache_hit_ratio", hit_ratio);
  w.Number("cache_hit_ratio_gate", kHitRatioGate);
  w.Integer("overload_clients", kOverloadClients);
  w.Integer("overload_200", static_cast<long long>(ok_200.load()));
  w.Integer("overload_429", static_cast<long long>(shed_429.load()));
  w.Integer("overload_other", static_cast<long long>(other.load()));
  w.Integer("overload_throttled_stat",
            static_cast<long long>(slow_stats.throttled));
  w.Bool("cache_pass", cache_pass);
  w.Bool("overload_pass", overload_pass);
  w.Bool("pass", pass);
  w.EndObject();
  const std::string json = w.Take();
  std::ofstream("BENCH_serve.json") << json << "\n";

  std::printf("%s\n", json.c_str());
  std::printf("\nserve load: %.0f req/s, p50 %.3f ms, p99 %.3f ms, "
              "cache hit ratio %.3f (gate %.2f); overload %llu x 200 / "
              "%llu x 429 -> %s\n",
              rps, p50, p99, hit_ratio, kHitRatioGate,
              static_cast<unsigned long long>(ok_200.load()),
              static_cast<unsigned long long>(shed_429.load()),
              pass ? "OK" : "GATE FAILED");
  return pass ? 0 : 1;
}
