// Ablation: exhaustive grid selection (the paper's method) vs stepwise
// auto-ARIMA (Hyndman-Khandakar-style hill climbing). Compares models
// evaluated, wall time and the test RMSE achieved on both experiment
// workloads, and cross-checks the ranking with rolling-origin evaluation.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/candidate_gen.h"
#include "core/selector.h"
#include "core/split.h"
#include "models/auto_arima.h"
#include "tsa/interpolate.h"
#include "tsa/metrics.h"
#include "tsa/rolling.h"

using namespace capplan;

int main() {
  std::printf("=== Ablation: exhaustive grid vs stepwise auto-ARIMA ===\n\n");
  struct Case {
    const char* label;
    workload::WorkloadScenario scenario;
    const char* key;
  };
  const Case cases[] = {
      {"OLAP cdbm011/cpu", workload::WorkloadScenario::Olap(), "cdbm011/cpu"},
      {"OLTP cdbm011/logical_iops", workload::WorkloadScenario::Oltp(),
       "cdbm011/logical_iops"},
  };
  for (const auto& c : cases) {
    auto data = bench::CollectExperiment(c.scenario, 42);
    const auto& series = data.hourly.at(c.key);
    auto filled = tsa::LinearInterpolate(series);
    if (!filled.ok()) continue;
    auto split = core::ApplySplit(*filled);
    if (!split.ok()) continue;
    const auto& train = split->first.values();
    const auto& test = split->second.values();
    std::printf("--- %s ---\n", c.label);

    // Exhaustive SARIMAX grid.
    {
      core::CandidateGenerator gen;
      core::ModelSelector::Options sel_opts;
      sel_opts.n_threads = 8;
      sel_opts.keep_top = 1;
      core::ModelSelector selector(sel_opts);
      const auto t0 = std::chrono::steady_clock::now();
      auto sel = selector.Select(train, test,
                                 gen.Generate(core::Technique::kSarimax));
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      if (sel.ok()) {
        std::printf("grid:       %4zu models, %6.2fs, best %-22s RMSE %.4g\n",
                    sel->evaluated, secs,
                    sel->best.candidate.spec.ToString().c_str(),
                    sel->best.accuracy.rmse);
      }
    }
    // Stepwise auto-ARIMA.
    {
      models::AutoArimaOptions opts;
      opts.season = 24;
      const auto t0 = std::chrono::steady_clock::now();
      auto out = models::AutoArima(train, opts);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      if (out.ok()) {
        auto fc = out->model.Predict(test.size());
        double rmse = -1.0;
        if (fc.ok()) {
          if (auto r = tsa::Rmse(test, fc->mean); r.ok()) rmse = *r;
        }
        std::printf("auto-arima: %4zu models, %6.2fs, best %-22s RMSE %.4g\n",
                    out->models_evaluated, secs,
                    out->spec.ToString().c_str(), rmse);
      } else {
        std::printf("auto-arima failed: %s\n",
                    out.status().ToString().c_str());
      }
    }
    // Rolling-origin cross-check of the auto-ARIMA pick.
    {
      tsa::RollingOptions ropts;
      ropts.min_train = train.size() > 400 ? train.size() - 24 * 8 : 300;
      ropts.horizon = 24;
      ropts.stride = 48;
      ropts.max_origins = 4;
      auto rolling = tsa::RollingEvaluate(
          filled->values(),
          [](const std::vector<double>& tr, std::size_t h)
              -> Result<std::vector<double>> {
            models::AutoArimaOptions opts;
            opts.season = 24;
            CAPPLAN_ASSIGN_OR_RETURN(models::AutoArimaOutcome out,
                                     models::AutoArima(tr, opts));
            CAPPLAN_ASSIGN_OR_RETURN(models::Forecast fc,
                                     out.model.Predict(h));
            return fc.mean;
          },
          ropts);
      if (rolling.ok()) {
        std::printf(
            "rolling (%zu origins): mean RMSE %.4g, mean MAPA %.2f%%\n",
            rolling->origins_succeeded, rolling->mean_accuracy.rmse,
            rolling->mean_accuracy.mapa);
      }
    }
    std::printf("\n");
  }
  return 0;
}
