// Sharded-estate gate for the CI bench-smoke step: the shard layer and the
// batched refit queues must hold up at estate scale before anyone trusts
// the 100k-series budget in docs/scaling.md. Three gates:
//
//   1. Scale smoke: 100k series ingested one week deep through 8 shard-local
//      tiered stores (keys routed by the service's consistent hash), with
//      the live-accuracy guardrail scoring every sample as the estate would
//      (docs/robustness.md), gated on sustained samples/s and on process
//      peak RSS against the scaling guide's memory budget.
//   2. Refit throughput: a 4-shard estate with batched refit queues must
//      sustain an aggregate refits/s floor through a full
//      tick -> drain cycle (64 series, HES branch).
//   3. Batch amortization: on the Fourier-bearing branch, draining a shard
//      queue in batches must reuse Fourier design computations across the
//      series of a batch (cache hits > 0). Series whose detected season
//      sets differ build different designs, so the reuse ratio depends on
//      estate homogeneity — the ratio is reported, the existence of reuse
//      is gated.
//
// Writes BENCH_shard.json and exits non-zero when any gate fails.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "quality/guardrail.h"
#include "service/estate_service.h"
#include "service/shard.h"
#include "store/tiered_store.h"
#include "workload/cluster.h"
#include "workload/scenario.h"

using namespace capplan;

namespace {

// Gate 1: 100k series, one week of hourly samples each.
constexpr std::size_t kScaleSeries = 100000;
constexpr std::size_t kScaleSamplesPerSeries = 168;
constexpr std::size_t kScaleShards = 8;
constexpr double kMinScaleSamplesPerSec = 5e5;
// docs/scaling.md budget: ~134 MB of raw values plus hot-ring slack, key
// index and allocator overhead lands well under 1.5 GB; anything above
// means per-series overhead regressed.
constexpr long kMaxPeakRssKb = 1536L * 1024L;

// Gate 2: aggregate batched-refit throughput on the HES branch.
constexpr int kRefitInstances = 32;  // x2 metrics = 64 series
constexpr double kMinRefitsPerSec = 10.0;

// Gate 3: Fourier design reuse inside one batch drain.
constexpr int kFourierInstances = 16;

constexpr std::int64_t kStartEpoch = 1577836800;  // 2020-01-01

long PeakRssKb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Gate 1. Synthetic but shaped values (cheap to generate at 100k-series
// scale); what is under test is the shard routing plus the store layer's
// per-series overhead — now including one guardrail Score call per sample,
// exactly what the estate's tick path spends with live scoring enabled.
struct ScaleResult {
  double samples_per_sec = 0.0;
  std::size_t total_samples = 0;
  std::size_t samples_scored = 0;
  long peak_rss_kb = 0;
};

ScaleResult RunScaleSmoke() {
  ScaleResult result;
  std::vector<store::TieredStore> shards;
  shards.reserve(kScaleShards);
  for (std::size_t i = 0; i < kScaleShards; ++i) {
    shards.emplace_back(store::TieredStoreOptions{});
  }
  // One live-accuracy tracker per series, as the estate keeps per watch.
  std::vector<quality::LiveAccuracyTracker> trackers(kScaleSeries);
  const auto t0 = std::chrono::steady_clock::now();
  std::string key;
  for (std::size_t s = 0; s < kScaleSeries; ++s) {
    key = "est" + std::to_string(s / 3) + "/m" + std::to_string(s % 3);
    store::TieredStore& shard = shards[service::ShardOf(key, kScaleShards)];
    store::SeriesStore& series =
        shard.GetOrCreate(key, kStartEpoch, tsa::Frequency::kHourly);
    const double base = 20.0 + static_cast<double>(s % 60);
    quality::LiveAccuracyTracker& tracker = trackers[s];
    for (std::size_t h = 0; h < kScaleSamplesPerSeries; ++h) {
      const double value = base + static_cast<double>((h * 7 + s) % 24);
      series.Append(value);
      // Score against a flat "forecast" a few percent off the series base:
      // the tracker walks its window and detector just as in production.
      tracker.Score(value, base + 11.5);
      ++result.samples_scored;
    }
  }
  const double secs = Seconds(t0);
  result.total_samples = kScaleSeries * kScaleSamplesPerSeries;
  result.samples_per_sec = static_cast<double>(result.total_samples) / secs;
  result.peak_rss_kb = PeakRssKb();
  return result;
}

service::EstateServiceConfig ShardConfig(std::size_t n_shards,
                                         std::size_t batch_size) {
  service::EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 4;
  config.warmup_days = 42;
  config.n_shards = n_shards;
  config.refit_batch_size = batch_size;
  return config;
}

// Gate 2: one full tick -> drain cycle over 64 series on 4 shards; every
// initial fit is due on the first tick, so the cycle is a pure measure of
// batched dispatch + pool fit throughput.
struct RefitResult {
  double refits_per_sec = 0.0;
  std::size_t refits = 0;
  std::size_t batches = 0;
};

RefitResult RunRefitThroughput() {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = kRefitInstances;
  workload::ClusterSimulator cluster(scenario, 7, kStartEpoch);
  std::vector<service::WatchConfig> watches;
  for (int i = 0; i < kRefitInstances; ++i) {
    watches.emplace_back(i, workload::Metric::kCpu, 1e9);
    watches.emplace_back(i, workload::Metric::kMemory, 1e12);
  }
  service::EstateService svc(&cluster, std::move(watches), ShardConfig(4, 8));
  if (!svc.Start().ok()) return {};

  const auto t0 = std::chrono::steady_clock::now();
  if (!svc.Tick().ok() || !svc.DrainRefits().ok()) return {};
  const double secs = Seconds(t0);

  RefitResult result;
  result.refits = svc.telemetry().refits_succeeded.value();
  for (const auto& st : svc.telemetry().shards) {
    result.batches += st.refit_batches;
  }
  result.refits_per_sec = static_cast<double>(result.refits) / secs;
  return result;
}

// Gate 3: the Fourier-bearing branch through the batched queue. Every
// series in a batch shares the same window geometry, so all but the first
// hit the batch session's design-column cache.
struct FourierResult {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

FourierResult RunFourierAmortization() {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = kFourierInstances;
  workload::ClusterSimulator cluster(scenario, 11, kStartEpoch);
  std::vector<service::WatchConfig> watches;
  for (int i = 0; i < kFourierInstances; ++i) {
    watches.emplace_back(i, workload::Metric::kCpu, 1e9);
  }
  auto config = ShardConfig(2, 8);
  config.pipeline.technique = core::Technique::kSarimaxFftExog;
  config.pipeline.max_lag = 2;  // tiny grid: this gate measures reuse
  service::EstateService svc(&cluster, std::move(watches), config);
  if (!svc.Start().ok()) return {};
  if (!svc.Tick().ok() || !svc.DrainRefits().ok()) return {};

  FourierResult result;
  for (const auto& st : svc.telemetry().shards) {
    result.hits += st.fourier_hits.value();
    result.misses += st.fourier_misses.value();
  }
  return result;
}

}  // namespace

int main() {
  const ScaleResult scale = RunScaleSmoke();
  const RefitResult refit = RunRefitThroughput();
  const FourierResult fourier = RunFourierAmortization();

  const bool scale_ingest_pass =
      scale.samples_per_sec >= kMinScaleSamplesPerSec;
  const bool rss_pass =
      scale.peak_rss_kb > 0 && scale.peak_rss_kb <= kMaxPeakRssKb;
  const bool refit_pass = refit.refits_per_sec >= kMinRefitsPerSec &&
                          refit.refits == 2u * kRefitInstances;
  const bool fourier_pass = fourier.misses > 0 && fourier.hits > 0;
  const bool pass = scale_ingest_pass && rss_pass && refit_pass &&
                    fourier_pass;

  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.String("bench", "shard");
  w.Integer("scale_series", static_cast<long long>(kScaleSeries));
  w.Integer("scale_samples", static_cast<long long>(scale.total_samples));
  w.Integer("scale_samples_scored",
            static_cast<long long>(scale.samples_scored));
  w.Number("scale_samples_per_sec", scale.samples_per_sec);
  w.Number("min_scale_samples_per_sec", kMinScaleSamplesPerSec);
  w.Bool("scale_ingest_pass", scale_ingest_pass);
  w.Integer("peak_rss_kb", static_cast<long long>(scale.peak_rss_kb));
  w.Integer("max_peak_rss_kb", static_cast<long long>(kMaxPeakRssKb));
  w.Bool("rss_pass", rss_pass);
  w.Integer("refits", static_cast<long long>(refit.refits));
  w.Integer("refit_batches", static_cast<long long>(refit.batches));
  w.Number("refits_per_sec", refit.refits_per_sec);
  w.Number("min_refits_per_sec", kMinRefitsPerSec);
  w.Bool("refit_pass", refit_pass);
  w.Integer("fourier_hits", static_cast<long long>(fourier.hits));
  w.Integer("fourier_misses", static_cast<long long>(fourier.misses));
  w.Bool("fourier_pass", fourier_pass);
  w.Bool("pass", pass);
  w.EndObject();
  const std::string json = w.Take();
  std::ofstream("BENCH_shard.json") << json << "\n";

  std::printf("%s\n", json.c_str());
  std::printf(
      "\nshard: %zu series ingested+scored at %.2fM samples/s (gate %.1fM) "
      "%s; "
      "peak RSS %.0f MB (gate %.0f MB) %s\n"
      "refit: %zu refits in %zu batches at %.1f/s (gate %.0f/s) %s\n"
      "fourier: %llu hits / %llu misses (gate: reuse > 0) %s\n",
      kScaleSeries, scale.samples_per_sec / 1e6,
      kMinScaleSamplesPerSec / 1e6, scale_ingest_pass ? "OK" : "FAIL",
      static_cast<double>(scale.peak_rss_kb) / 1024.0,
      static_cast<double>(kMaxPeakRssKb) / 1024.0, rss_pass ? "OK" : "FAIL",
      refit.refits, refit.batches, refit.refits_per_sec, kMinRefitsPerSec,
      refit_pass ? "OK" : "FAIL",
      static_cast<unsigned long long>(fourier.hits),
      static_cast<unsigned long long>(fourier.misses),
      fourier_pass ? "OK" : "FAIL");
  return pass ? 0 : 1;
}
