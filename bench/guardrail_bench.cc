// Live-scoring overhead gate: LiveAccuracyTracker::Score runs once per
// ingested hourly actual on the estate's shard tick path, so it has to be
// cheap enough to leave on for every series. The 100k-series ingest gate in
// shard_bench budgets 2000 ns/sample (the 0.5M samples/s floor); live
// scoring may spend at most 3% of that — 60 ns per Score call. This harness
// times a long scoring stream over a pool of trackers (min-of-N reps is
// robust to scheduler noise), writes BENCH_guardrail.json for the CI
// bench-smoke step, and exits non-zero when the per-sample cost exceeds the
// budget.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "quality/guardrail.h"

using namespace capplan;

namespace {

constexpr int kReps = 7;
constexpr std::size_t kTrackers = 1024;   // spread across a working set
constexpr std::size_t kSamples = 2000000;  // per rep, round-robin
// 3% of the 2000 ns/sample implied by shard_bench's 0.5M samples/s floor.
constexpr double kBudgetNsPerSample = 60.0;

// One rep: kSamples Score calls round-robin over the tracker pool, fed a
// realistic accurate stream (daily-cycle actuals, forecasts a few percent
// off) so the Page-Hinkley branch stays on its common no-alarm path.
double RunOnceNsPerSample(std::vector<quality::LiveAccuracyTracker>* pool) {
  double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kSamples; ++i) {
    quality::LiveAccuracyTracker& tracker = (*pool)[i % kTrackers];
    const double phase =
        static_cast<double>(i % 24) * (2.0 * M_PI / 24.0);
    const double actual = 50.0 + 12.0 * std::sin(phase);
    const double predicted = actual * (1.0 + 0.03 * ((i % 5) - 2) / 2.0);
    sink += tracker.Score(actual, predicted).abs_pct_error;
  }
  const auto t1 = std::chrono::steady_clock::now();
  // Keep the loop's result observable so the calls cannot be elided.
  if (!std::isfinite(sink)) std::fprintf(stderr, "sink overflow\n");
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(kSamples);
}

}  // namespace

int main() {
  std::vector<quality::LiveAccuracyTracker> pool(kTrackers);
  (void)RunOnceNsPerSample(&pool);  // warm: page in code, fill the windows

  double ns_per_sample = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double ns = RunOnceNsPerSample(&pool);
    ns_per_sample = rep == 0 ? ns : std::min(ns_per_sample, ns);
  }
  std::uint64_t alarms = 0;
  for (const auto& tracker : pool) alarms += tracker.alarms();

  const bool pass = ns_per_sample < kBudgetNsPerSample;

  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.String("bench", "guardrail");
  w.Integer("trackers", static_cast<long long>(kTrackers));
  w.Integer("samples_per_rep", static_cast<long long>(kSamples));
  w.Integer("reps", kReps);
  w.Number("ns_per_sample_min", ns_per_sample);
  w.Number("budget_ns_per_sample", kBudgetNsPerSample);
  w.Integer("alarms", static_cast<long long>(alarms));
  w.Bool("pass", pass);
  w.EndObject();
  const std::string json = w.Take();
  std::ofstream("BENCH_guardrail.json") << json << "\n";

  std::printf("%s\n", json.c_str());
  std::printf("\nguardrail: %zu trackers, %zu samples/rep: "
              "%.1f ns/Score (budget %.0f ns = 3%% of the ingest "
              "sample budget) %s\n",
              kTrackers, kSamples, ns_per_sample, kBudgetNsPerSample,
              pass ? "OK" : "OVER BUDGET");
  return pass ? 0 : 1;
}
