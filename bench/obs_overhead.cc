// Observability overhead gate: the tracing spans wired through the selector
// grid (selector.select / prepare / grid / one span per candidate) and the
// flight recorder's wide events + histogram exemplars must stay cheap enough
// to leave enabled in production. This harness times the same 44-candidate
// SARIMAX selection under two instrumentation axes — spans off/on, and
// per-candidate wide-event emission with exemplar capture vs plain histogram
// observation — alternating configurations and keeping the minimum of each
// (min-of-N is robust to scheduler noise), writes BENCH_obs_overhead.json
// for the CI bench-smoke step, and exits non-zero when either overhead
// exceeds the 3% budget.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <vector>

#include "common/json_writer.h"
#include "core/candidate_gen.h"
#include "core/selector.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

using namespace capplan;

namespace {

constexpr int kReps = 7;
constexpr double kBudgetPct = 3.0;

std::vector<double> SeasonalSeries(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 50.0 + 12.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  return y;
}

double RunOnceMs(const std::vector<double>& train,
                 const std::vector<double>& test,
                 const std::vector<core::ModelCandidate>& candidates) {
  core::ModelSelector::Options opts;
  opts.n_threads = 2;
  core::ModelSelector selector(opts);
  const auto t0 = std::chrono::steady_clock::now();
  auto sel = selector.Select(train, test, candidates);
  const auto t1 = std::chrono::steady_clock::now();
  if (!sel.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 sel.status().ToString().c_str());
    std::exit(2);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// Same selection workload, plus the flight-recorder hot path once per
// candidate: one wide event (key + two attrs) and one exemplar-carrying
// histogram observation — the shape ApplyOutcome and the serve handler
// execute per unit of work. With `instrumented` false the loop records the
// plain histogram observation only, which is the pre-flight-recorder
// baseline the overhead is measured against.
double RunOnceEventsMs(const std::vector<double>& train,
                       const std::vector<double>& test,
                       const std::vector<core::ModelCandidate>& candidates,
                       obs::Histogram* hist, bool instrumented) {
  core::ModelSelector::Options opts;
  opts.n_threads = 2;
  core::ModelSelector selector(opts);
  obs::EventLog& events = obs::EventLog::Instance();
  const auto t0 = std::chrono::steady_clock::now();
  auto sel = selector.Select(train, test, candidates);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double ms = 0.25 * static_cast<double>(i % 16);
    if (instrumented) {
      obs::WideEvent ev;
      ev.kind = obs::WideEventKind::kRefit;
      ev.set_key("bench/candidate");
      ev.AddAttr("index", static_cast<double>(i));
      ev.AddAttr("wall_ms", ms);
      const std::uint64_t id = events.Emit(ev);
      hist->ObserveWithExemplar(ms, /*span_id=*/i + 1, id);
    } else {
      hist->Observe(ms);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (!sel.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 sel.status().ToString().c_str());
    std::exit(2);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto y = SeasonalSeries(1008, 9);
  const std::vector<double> train(y.begin(), y.end() - 24);
  const std::vector<double> test(y.end() - 24, y.end());
  core::CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 2;  // 44 candidates: CI-sized, same span sites as 660
  core::CandidateGenerator gen(gen_opts);
  const auto candidates = gen.Generate(core::Technique::kSarimax);

  obs::Tracer& tracer = obs::Tracer::Instance();
  tracer.Disable();
  tracer.Clear();
  obs::EventLog& events = obs::EventLog::Instance();
  events.Disable();
  events.Clear();

  // Warm both configurations (page in code, populate allocator caches).
  (void)RunOnceMs(train, test, candidates);
  tracer.Enable();
  (void)RunOnceMs(train, test, candidates);
  std::size_t spans_per_run = tracer.Drain().size();
  tracer.Disable();

  // Axis 1: trace spans off vs on around the selector grid.
  double off_ms = 0.0, on_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = RunOnceMs(train, test, candidates);
    tracer.Enable();
    const double on = RunOnceMs(train, test, candidates);
    tracer.Clear();
    tracer.Disable();
    off_ms = rep == 0 ? off : std::min(off_ms, off);
    on_ms = rep == 0 ? on : std::min(on_ms, on);
  }

  // Axis 2: wide-event emission + exemplar capture vs plain observation.
  obs::MetricsRegistry registry;
  obs::Histogram hist =
      registry.GetHistogram("bench_obs_candidate_ms", {}, {},
                            "per-candidate latency (bench harness)");
  const std::size_t events_per_run = candidates.size();
  // Enable once and warm the ring before timing: the per-thread ring is
  // allocated lazily on the first emission, and that one-time setup cost is
  // not what the steady-state gate is about.
  events.Enable();
  (void)RunOnceEventsMs(train, test, candidates, &hist,
                        /*instrumented=*/true);
  double ev_off_ms = 0.0, ev_on_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = RunOnceEventsMs(train, test, candidates, &hist,
                                       /*instrumented=*/false);
    const double on = RunOnceEventsMs(train, test, candidates, &hist,
                                      /*instrumented=*/true);
    ev_off_ms = rep == 0 ? off : std::min(ev_off_ms, off);
    ev_on_ms = rep == 0 ? on : std::min(ev_on_ms, on);
  }
  events.Clear();
  events.Disable();

  const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
  const double events_overhead_pct =
      (ev_on_ms - ev_off_ms) / ev_off_ms * 100.0;
  const bool pass =
      overhead_pct < kBudgetPct && events_overhead_pct < kBudgetPct;

  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.String("bench", "obs_overhead");
  w.Integer("grid_candidates", static_cast<long long>(candidates.size()));
  w.Integer("reps", kReps);
  w.Integer("spans_per_run", static_cast<long long>(spans_per_run));
  w.Number("spans_off_min_ms", off_ms);
  w.Number("spans_on_min_ms", on_ms);
  w.Number("overhead_pct", overhead_pct);
  w.Integer("events_per_run", static_cast<long long>(events_per_run));
  w.Number("events_off_min_ms", ev_off_ms);
  w.Number("events_on_min_ms", ev_on_ms);
  w.Number("events_overhead_pct", events_overhead_pct);
  w.Number("budget_pct", kBudgetPct);
  w.Bool("pass", pass);
  w.EndObject();
  const std::string json = w.Take();
  std::ofstream("BENCH_obs_overhead.json") << json << "\n";

  std::printf("%s\n", json.c_str());
  std::printf("\nselector grid (%zu candidates, %zu spans/run): "
              "spans off %.2f ms, on %.2f ms -> %.2f%% overhead; "
              "wide events + exemplars (%zu events/run): off %.2f ms, "
              "on %.2f ms -> %.2f%% overhead (budget %.0f%%) %s\n",
              candidates.size(), spans_per_run, off_ms, on_ms, overhead_pct,
              events_per_run, ev_off_ms, ev_on_ms, events_overhead_pct,
              kBudgetPct, pass ? "OK" : "OVER BUDGET");
  return pass ? 0 : 1;
}
