// Observability overhead gate: the tracing spans wired through the selector
// grid (selector.select / prepare / grid / one span per candidate) must stay
// cheap enough to leave enabled in production. This harness times the same
// 44-candidate SARIMAX selection with spans off and on, alternating the two
// configurations and keeping the minimum of each (min-of-N is robust to
// scheduler noise), writes BENCH_obs_overhead.json for the CI bench-smoke
// step, and exits non-zero when the overhead exceeds the 3% budget.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <vector>

#include "common/json_writer.h"
#include "core/candidate_gen.h"
#include "core/selector.h"
#include "obs/trace.h"

using namespace capplan;

namespace {

constexpr int kReps = 7;
constexpr double kBudgetPct = 3.0;

std::vector<double> SeasonalSeries(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 50.0 + 12.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  return y;
}

double RunOnceMs(const std::vector<double>& train,
                 const std::vector<double>& test,
                 const std::vector<core::ModelCandidate>& candidates) {
  core::ModelSelector::Options opts;
  opts.n_threads = 2;
  core::ModelSelector selector(opts);
  const auto t0 = std::chrono::steady_clock::now();
  auto sel = selector.Select(train, test, candidates);
  const auto t1 = std::chrono::steady_clock::now();
  if (!sel.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 sel.status().ToString().c_str());
    std::exit(2);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  const auto y = SeasonalSeries(1008, 9);
  const std::vector<double> train(y.begin(), y.end() - 24);
  const std::vector<double> test(y.end() - 24, y.end());
  core::CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 2;  // 44 candidates: CI-sized, same span sites as 660
  core::CandidateGenerator gen(gen_opts);
  const auto candidates = gen.Generate(core::Technique::kSarimax);

  obs::Tracer& tracer = obs::Tracer::Instance();
  tracer.Disable();
  tracer.Clear();

  // Warm both configurations (page in code, populate allocator caches).
  (void)RunOnceMs(train, test, candidates);
  tracer.Enable();
  (void)RunOnceMs(train, test, candidates);
  std::size_t spans_per_run = tracer.Drain().size();
  tracer.Disable();

  double off_ms = 0.0, on_ms = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = RunOnceMs(train, test, candidates);
    tracer.Enable();
    const double on = RunOnceMs(train, test, candidates);
    tracer.Clear();
    tracer.Disable();
    off_ms = rep == 0 ? off : std::min(off_ms, off);
    on_ms = rep == 0 ? on : std::min(on_ms, on);
  }

  const double overhead_pct = (on_ms - off_ms) / off_ms * 100.0;
  const bool pass = overhead_pct < kBudgetPct;

  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.String("bench", "obs_overhead");
  w.Integer("grid_candidates", static_cast<long long>(candidates.size()));
  w.Integer("reps", kReps);
  w.Integer("spans_per_run", static_cast<long long>(spans_per_run));
  w.Number("spans_off_min_ms", off_ms);
  w.Number("spans_on_min_ms", on_ms);
  w.Number("overhead_pct", overhead_pct);
  w.Number("budget_pct", kBudgetPct);
  w.Bool("pass", pass);
  w.EndObject();
  const std::string json = w.Take();
  std::ofstream("BENCH_obs_overhead.json") << json << "\n";

  std::printf("%s\n", json.c_str());
  std::printf("\nselector grid (%zu candidates, %zu spans/run): "
              "spans off %.2f ms, on %.2f ms -> %.2f%% overhead "
              "(budget %.0f%%) %s\n",
              candidates.size(), spans_per_run, off_ms, on_ms, overhead_pct,
              kBudgetPct, pass ? "OK" : "OVER BUDGET");
  return pass ? 0 : 1;
}
