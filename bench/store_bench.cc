// Tiered-store gate for the CI bench-smoke step: the compressed store must
// earn its keep before the estate scales toward 100k series. Two hard gates,
// both measured on the workloads the store actually holds:
//
//   1. Compression: sealed gorilla blocks over simulator OLAP/OLTP hourly
//      traces — quantized the way real collectors quantize (integer IOPS,
//      quarter-percent CPU, integer MB) — must be >= 5x smaller than the
//      raw doubles.
//   2. Ingest: appending through the hot ring with sealing enabled must
//      sustain >= 1M samples/s (min-of-N, robust to scheduler noise).
//
// Writes BENCH_store.json and exits non-zero when either gate fails.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "store/tiered_store.h"
#include "workload/cluster.h"
#include "workload/scenario.h"

using namespace capplan;

namespace {

constexpr int kReps = 5;
constexpr double kMinCompressionRatio = 5.0;
constexpr double kMinIngestPerSec = 1e6;
constexpr std::int64_t kStartEpoch = 1577836800;  // 2020-01-01
constexpr int kDays = 60;

// Quantize like the collectors do: CPU to quarter percents, memory to whole
// MB, and the logical-IO rate to whole IOs per second (the simulator's field
// is an hourly rate; AWR-style collectors report it as integer IOPS). Raw
// simulator output is continuous; no agent reports it that way.
double Quantize(workload::Metric metric, double v) {
  if (metric == workload::Metric::kCpu) return std::round(v * 4.0) / 4.0;
  if (metric == workload::Metric::kLogicalIops) return std::round(v / 3600.0);
  return std::round(v);
}

struct Trace {
  std::string key;
  std::vector<double> values;
};

std::vector<Trace> SimulatorTraces() {
  std::vector<Trace> traces;
  for (const auto& scenario : {workload::WorkloadScenario::Olap(),
                               workload::WorkloadScenario::Oltp()}) {
    workload::ClusterSimulator cluster(scenario, 1234, kStartEpoch);
    const int instances = std::min(scenario.n_instances, 8);
    for (int inst = 0; inst < instances; ++inst) {
      for (workload::Metric metric :
           {workload::Metric::kCpu, workload::Metric::kLogicalIops,
            workload::Metric::kMemory}) {
        Trace t;
        t.key = scenario.name + "/" + std::to_string(inst) + "/" +
                workload::MetricName(metric);
        for (int h = 0; h < 24 * kDays; ++h) {
          t.values.push_back(Quantize(
              metric, cluster.SampleAt(inst, kStartEpoch + h * 3600)
                          .Get(metric)));
        }
        traces.push_back(std::move(t));
      }
    }
  }
  return traces;
}

}  // namespace

int main() {
  const std::vector<Trace> traces = SimulatorTraces();
  std::size_t total_samples = 0;
  for (const auto& t : traces) total_samples += t.values.size();

  // Gate 1: compression ratio over fully sealed traces.
  store::TieredStore sealed_store{store::TieredStoreOptions{}};
  for (const auto& t : traces) {
    store::SeriesStore& series =
        sealed_store.GetOrCreate(t.key, kStartEpoch, tsa::Frequency::kHourly);
    for (double v : t.values) series.Append(v);
  }
  sealed_store.SealAll();
  const double ratio = sealed_store.stats().compression_ratio();
  const auto sealed_bytes = sealed_store.stats().sealed_bytes;
  const auto raw_bytes = sealed_store.stats().sealed_raw_bytes;

  // Gate 2: ingest throughput through the hot ring with sealing on. Each
  // rep appends every trace into a fresh store; keep the fastest rep.
  double best_per_sec = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    store::TieredStore store{store::TieredStoreOptions{}};
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& t : traces) {
      store::SeriesStore& series =
          store.GetOrCreate(t.key, kStartEpoch, tsa::Frequency::kHourly);
      for (double v : t.values) series.Append(v);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    best_per_sec =
        std::max(best_per_sec, static_cast<double>(total_samples) / secs);
  }

  const bool ratio_pass = ratio >= kMinCompressionRatio;
  const bool ingest_pass = best_per_sec >= kMinIngestPerSec;
  const bool pass = ratio_pass && ingest_pass;

  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.String("bench", "store");
  w.Integer("series", static_cast<long long>(traces.size()));
  w.Integer("samples", static_cast<long long>(total_samples));
  w.Integer("raw_bytes", static_cast<long long>(raw_bytes));
  w.Integer("sealed_bytes", static_cast<long long>(sealed_bytes));
  w.Number("compression_ratio", ratio);
  w.Number("min_compression_ratio", kMinCompressionRatio);
  w.Bool("compression_pass", ratio_pass);
  w.Number("ingest_samples_per_sec", best_per_sec);
  w.Number("min_ingest_samples_per_sec", kMinIngestPerSec);
  w.Bool("ingest_pass", ingest_pass);
  w.Bool("pass", pass);
  w.EndObject();
  const std::string json = w.Take();
  std::ofstream("BENCH_store.json") << json << "\n";

  std::printf("%s\n", json.c_str());
  std::printf("\nstore: %zu series, %zu samples -> %.1fx compression "
              "(gate %.0fx) %s; ingest %.2fM samples/s (gate %.0fM) %s\n",
              traces.size(), total_samples, ratio, kMinCompressionRatio,
              ratio_pass ? "OK" : "FAIL", best_per_sec / 1e6,
              kMinIngestPerSec / 1e6, ingest_pass ? "OK" : "FAIL");
  return pass ? 0 : 1;
}
