// TBATS lattice pruning gate: the pruned selection path (short-budget
// prefits rank the lattice, survivors get the oracle's full-budget rescore)
// must spend at most half the innovations-filter passes of the exhaustive
// oracle while picking the *identical* configuration — the PR 2 fast-path
// contract extended to the TBATS branch. Filter passes are counted by the
// process-wide TbatsModel::TotalFilterRuns() counter, one per objective
// evaluation, so the ratio is deterministic and scheduler-independent.
//
// A second gate bounds the FFT period router itself: routing must cost less
// than 5% of the lattice selection it feeds, so period detection never eats
// into the refit budget. Writes BENCH_lattice.json for the CI bench-smoke
// step and exits non-zero when either gate fails.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/json_writer.h"
#include "core/lattice/period_router.h"
#include "core/lattice/tbats_lattice.h"
#include "models/tbats.h"

using namespace capplan;

namespace {

constexpr double kMinFilterRunRatio = 2.0;   // oracle runs / pruned runs
constexpr double kMaxRoutingFraction = 0.05;  // routing ms / selection ms

core::lattice::TbatsLatticeOptions LatticeOptions(bool prune) {
  core::lattice::TbatsLatticeOptions opts;
  opts.model.max_harmonics = 2;
  opts.model.max_fit_iterations = 200;
  opts.prune = prune;
  opts.n_threads = 8;
  return opts;
}

std::vector<double> SyntheticDailyWeekly() {
  std::mt19937 rng(19);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> x(24 * 7 * 6);
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double td = static_cast<double>(t);
    x[t] = 40.0 + 10.0 * std::sin(2.0 * M_PI * td / 24.0) +
           6.0 * std::sin(2.0 * M_PI * td / 168.0) + dist(rng);
  }
  return x;
}

struct SeriesResult {
  std::string name;
  std::size_t n_periods = 0;
  double routing_ms = 0.0;
  std::uint64_t oracle_runs = 0;
  std::uint64_t pruned_runs = 0;
  double pruned_select_ms = 0.0;
  bool same_selection = false;
  std::string spec;
};

bool RunSeries(const std::string& name, const std::vector<double>& values,
               SeriesResult* out) {
  out->name = name;

  core::lattice::PeriodRouter router(core::lattice::RouterOptions{});
  const auto routed = router.Route(values);
  out->routing_ms = routed.routing_ms;
  out->n_periods = routed.seasons.size();
  std::vector<double> periods;
  for (const auto& s : routed.seasons) {
    periods.push_back(static_cast<double>(s.period));
  }
  if (periods.empty()) {
    std::fprintf(stderr, "%s: no seasonal periods routed\n", name.c_str());
    return false;
  }

  const std::uint64_t runs0 = models::TbatsModel::TotalFilterRuns();
  auto oracle = core::lattice::TbatsLattice(LatticeOptions(false))
                    .Select(values, periods);
  const std::uint64_t runs1 = models::TbatsModel::TotalFilterRuns();
  auto pruned = core::lattice::TbatsLattice(LatticeOptions(true))
                    .Select(values, periods);
  const std::uint64_t runs2 = models::TbatsModel::TotalFilterRuns();
  if (!oracle.ok() || !pruned.ok()) {
    std::fprintf(stderr, "%s: selection failed: %s / %s\n", name.c_str(),
                 oracle.ok() ? "ok" : oracle.status().ToString().c_str(),
                 pruned.ok() ? "ok" : pruned.status().ToString().c_str());
    return false;
  }
  out->oracle_runs = runs1 - runs0;
  out->pruned_runs = runs2 - runs1;
  out->pruned_select_ms = pruned->profile.total_ms;
  out->spec = pruned->model.config().ToString();
  out->same_selection =
      oracle->model.config().ToString() == pruned->model.config().ToString() &&
      std::fabs(oracle->aic - pruned->aic) < 1e-9;
  return true;
}

}  // namespace

int main() {
  std::printf("=== TBATS lattice pruning + period-routing gates ===\n");
  std::vector<std::pair<std::string, std::vector<double>>> series;
  series.emplace_back("synthetic 24+168", SyntheticDailyWeekly());
  auto olap = bench::CollectExperiment(workload::WorkloadScenario::Olap(), 42);
  series.emplace_back("OLAP cdbm011/cpu",
                      olap.hourly.at("cdbm011/cpu").values());
  auto oltp = bench::CollectExperiment(workload::WorkloadScenario::Oltp(), 77);
  series.emplace_back("OLTP cdbm011/cpu",
                      oltp.hourly.at("cdbm011/cpu").values());

  std::vector<SeriesResult> results;
  std::uint64_t oracle_total = 0, pruned_total = 0;
  bool all_same = true, all_ok = true;
  double worst_routing_fraction = 0.0;
  for (const auto& [name, values] : series) {
    SeriesResult r;
    if (!RunSeries(name, values, &r)) {
      all_ok = false;
      continue;
    }
    oracle_total += r.oracle_runs;
    pruned_total += r.pruned_runs;
    all_same = all_same && r.same_selection;
    const double fraction =
        r.pruned_select_ms > 0.0 ? r.routing_ms / r.pruned_select_ms : 0.0;
    worst_routing_fraction = std::max(worst_routing_fraction, fraction);
    std::printf(
        "%-18s: %zu periods routed in %6.2f ms; filter runs %8llu oracle / "
        "%8llu pruned (%.2fx); selection %s, %s\n",
        r.name.c_str(), r.n_periods, r.routing_ms,
        static_cast<unsigned long long>(r.oracle_runs),
        static_cast<unsigned long long>(r.pruned_runs),
        r.pruned_runs > 0
            ? static_cast<double>(r.oracle_runs) /
                  static_cast<double>(r.pruned_runs)
            : 0.0,
        r.spec.c_str(), r.same_selection ? "oracle-equal" : "DIVERGED");
    results.push_back(r);
  }

  const double run_ratio =
      pruned_total > 0
          ? static_cast<double>(oracle_total) / static_cast<double>(pruned_total)
          : 0.0;
  const bool ratio_pass = run_ratio >= kMinFilterRunRatio;
  const bool routing_pass = worst_routing_fraction < kMaxRoutingFraction;
  const bool pass = all_ok && all_same && ratio_pass && routing_pass;

  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.String("bench", "lattice");
  w.Integer("series", static_cast<long long>(results.size()));
  w.Integer("oracle_filter_runs", static_cast<long long>(oracle_total));
  w.Integer("pruned_filter_runs", static_cast<long long>(pruned_total));
  w.Number("filter_run_ratio", run_ratio);
  w.Number("min_filter_run_ratio", kMinFilterRunRatio);
  w.Bool("selections_oracle_equal", all_same);
  w.Number("worst_routing_fraction", worst_routing_fraction);
  w.Number("max_routing_fraction", kMaxRoutingFraction);
  w.Bool("pass", pass);
  w.EndObject();
  const std::string json = w.Take();
  std::ofstream("BENCH_lattice.json") << json << "\n";
  std::printf("%s\n", json.c_str());

  std::printf(
      "\nlattice: %.2fx fewer filter runs (gate >= %.1fx), selections %s, "
      "routing <= %.2f%% of selection (gate < %.0f%%) %s\n",
      run_ratio, kMinFilterRunRatio,
      all_same ? "oracle-equal" : "DIVERGED", 100.0 * worst_routing_fraction,
      100.0 * kMaxRoutingFraction, pass ? "OK" : "FAILED");
  return pass ? 0 : 1;
}
