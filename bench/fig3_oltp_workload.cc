// Reproduces paper Figure 3: key metrics of the complicated OLTP workload
// (Experiment Two): trend from +50 users/day, twice-daily logon surges
// (multiple seasonality) and 6-hourly backup shocks in logical IOPS.

#include <cstdio>

#include "bench_util.h"
#include "math/vec.h"

using namespace capplan;

int main() {
  std::printf("=== Figure 3: Key Metrics - Experiment Two (OLTP) ===\n");
  const auto scenario = workload::WorkloadScenario::Oltp();
  std::printf(
      "workload: %.0f base users, +%.0f users/day (trend),\n"
      "surges: 1000 users @07:00 for 4h and 1000 users @09:00 for 1h,\n"
      "RMAN backup every 6h (shock)\n\n",
      scenario.base_users, scenario.user_growth_per_day);

  auto data = bench::CollectExperiment(scenario, 42);
  for (const auto& inst : data.instances) {
    for (const char* metric : {"cpu", "memory", "logical_iops"}) {
      const auto& series = data.hourly.at(inst + "/" + metric);
      const auto& v = series.values();
      std::printf("--- %s/%s ---\n", inst.c_str(), metric);
      // Trend check: mean of first week vs last week.
      const std::size_t week = 168;
      std::vector<double> first(v.begin(), v.begin() + week);
      std::vector<double> last(v.end() - week, v.end());
      std::printf("first-week mean %.4g -> last-week mean %.4g "
                  "(growth x%.2f)\n",
                  math::Mean(first), math::Mean(last),
                  math::Mean(last) / math::Mean(first));
      std::vector<double> tail(v.end() - 48, v.end());
      bench::PrintAsciiSeries("last 48 hours:", tail, 48);
      std::printf("\n");
    }
  }
  std::printf(
      "Note the large periodic spikes in logical_iops every 6 hours (the\n"
      "backup shock of Figure 3c) and the 07:00-11:00 surge plateau.\n");
  return 0;
}
