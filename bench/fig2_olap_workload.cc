// Reproduces paper Figure 2: key metrics of the OLAP workload (Experiment
// One) across both cluster instances, plus the Figure 5 topology header.

#include <cstdio>

#include "bench_util.h"
#include "math/vec.h"

using namespace capplan;

int main() {
  std::printf("=== Figure 2: Key Metrics - Experiment One (OLAP) ===\n");
  std::printf(
      "Topology (Figure 5): N-tier - load generator -> application server\n"
      "-> 2-node clustered database {cdbm011, cdbm012}, load balanced\n\n");
  const auto scenario = workload::WorkloadScenario::Olap();
  std::printf("workload: %d OLAP users, growth %.1f users/day, "
              "nightly backup on node 1\n\n",
              static_cast<int>(scenario.base_users),
              scenario.user_growth_per_day);

  auto data = bench::CollectExperiment(scenario, 42);
  for (const auto& inst : data.instances) {
    for (const char* metric : {"cpu", "memory", "logical_iops"}) {
      const auto& series = data.hourly.at(inst + "/" + metric);
      const auto& v = series.values();
      std::printf("--- %s/%s: %zu hourly observations ---\n", inst.c_str(),
                  metric, v.size());
      std::printf("min %.4g  mean %.4g  max %.4g  stddev %.4g\n",
                  math::Min(v), math::Mean(v), math::Max(v), math::StdDev(v));
      // Last 3 days to show the daily pattern (one row per 2 hours).
      std::vector<double> tail(v.end() - 72, v.end());
      bench::PrintAsciiSeries("last 72 hours:", tail, 36);
      std::printf("\n");
    }
  }
  return 0;
}
