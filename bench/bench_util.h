#ifndef CAPPLAN_BENCH_BENCH_UTIL_H_
#define CAPPLAN_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harnesses: build the simulated
// two-node cluster experiment data (the substitution for the paper's Oracle
// testbed) and format tables/series for stdout.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "agent/agent.h"
#include "repo/repository.h"
#include "tsa/timeseries.h"
#include "workload/cluster.h"

namespace capplan::bench {

// Hourly series for every (instance, metric) of a scenario, via the full
// agent -> repository path. 44 days so the 1008-hour Table-1 window fits.
struct ExperimentData {
  std::vector<std::string> instances;
  std::map<std::string, tsa::TimeSeries> hourly;  // key: "cdbm011/cpu"
};

inline ExperimentData CollectExperiment(const workload::WorkloadScenario& sc,
                                        std::uint64_t seed, int days = 44) {
  ExperimentData data;
  workload::ClusterSimulator sim(sc, seed);
  agent::MonitoringAgent agent(&sim);
  repo::MetricsRepository repository;
  for (int inst = 0; inst < sim.n_instances(); ++inst) {
    data.instances.push_back(sim.InstanceName(inst));
    for (auto metric : {workload::Metric::kCpu, workload::Metric::kMemory,
                        workload::Metric::kLogicalIops}) {
      auto raw = agent.CollectDays(inst, metric, days);
      if (!raw.ok()) {
        std::fprintf(stderr, "collect failed: %s\n",
                     raw.status().ToString().c_str());
        continue;
      }
      const std::string key = repo::MetricsRepository::KeyFor(
          sim.InstanceName(inst), metric);
      if (auto st = repository.Ingest(key, *raw); !st.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
        continue;
      }
      data.hourly.emplace(key, *repository.Hourly(key));
    }
  }
  return data;
}

// Simple fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const int w = i < widths_.size() ? widths_[i] : 12;
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%-*s", w, cells[i].c_str());
      line += buf;
      line += "  ";
    }
    std::printf("%s\n", line.c_str());
  }

  void Rule() const {
    int total = 0;
    for (int w : widths_) total += w + 2;
    std::printf("%s\n", std::string(static_cast<std::size_t>(total), '-')
                            .c_str());
  }

 private:
  std::vector<int> widths_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// ASCII sparkline-style chart: one row per bucket, bar length proportional
// to the value. Good enough to eyeball the figures' shapes in a terminal.
inline void PrintAsciiSeries(const std::string& title,
                             const std::vector<double>& values,
                             std::size_t max_rows = 48, int width = 60) {
  std::printf("%s\n", title.c_str());
  if (values.empty()) return;
  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi > lo ? hi - lo : 1.0;
  const std::size_t step =
      values.size() > max_rows ? values.size() / max_rows : 1;
  for (std::size_t i = 0; i < values.size(); i += step) {
    const int bar = static_cast<int>((values[i] - lo) / span * width);
    std::printf("%6zu | %-*s %.6g\n", i, width,
                std::string(static_cast<std::size_t>(bar), '#').c_str(),
                values[i]);
  }
}

}  // namespace capplan::bench

#endif  // CAPPLAN_BENCH_BENCH_UTIL_H_
