// Reproduces paper Table 1: Machine Learning Breakdown and Observations —
// the train/test/prediction split per forecast granularity, for both the
// SARIMAX and HES techniques.

#include <cstdio>

#include "bench_util.h"
#include "core/split.h"

using namespace capplan;

int main() {
  std::printf("=== Table 1: Machine Learning Breakdown and Observations ===\n\n");
  bench::TablePrinter table({16, 6, 10, 9, 14});
  table.Row({"Forecast", "Obs", "Train Set", "Test Set", "Prediction"});
  table.Rule();
  struct Row {
    const char* technique;
    tsa::Frequency freq;
    const char* horizon_label;
  };
  const Row rows[] = {
      {"SARIMAX Hourly", tsa::Frequency::kHourly, "24 (Hours)"},
      {"SARIMAX Daily", tsa::Frequency::kDaily, "7 (days)"},
      {"SARIMAX Weekly", tsa::Frequency::kWeekly, "4 (Weeks)"},
      {"HES Hourly", tsa::Frequency::kHourly, "24 (Hours)"},
      {"HES Daily", tsa::Frequency::kDaily, "7 (days)"},
      {"HES Weekly", tsa::Frequency::kWeekly, "4 (Weeks)"},
  };
  for (const auto& row : rows) {
    auto policy = core::SplitFor(row.freq);
    if (!policy.ok()) continue;
    table.Row({row.technique, std::to_string(policy->observations),
               std::to_string(policy->train), std::to_string(policy->test),
               row.horizon_label});
  }
  std::printf(
      "\nGranularity guidance follows the Makridakis competitions: an\n"
      "effective hourly forecast needs ~700+ hourly points (~29 days).\n");
  return 0;
}
