// Figure 8 stand-in: the production monitoring view. The paper shows a
// proprietary UI offering a model choice (HES vs SARIMAX) per instance and
// charting the prediction; this bench renders the same information as a
// terminal dashboard driven by core::MonitoringService — per watched
// metric: the active model, its held-out accuracy, and the threshold
// prognosis, with the one-week staleness policy deciding refits.

#include <cstdio>

#include "bench_util.h"
#include "core/monitor.h"
#include "tsa/calendar.h"

using namespace capplan;

int main() {
  std::printf("=== Figure 8 (stand-in): estate monitoring dashboard ===\n\n");
  workload::ClusterSimulator cluster(workload::WorkloadScenario::Oltp(), 77);
  agent::MonitoringAgent agent(&cluster);
  repo::MetricsRepository metrics;
  repo::ModelRepository registry;

  std::vector<core::WatchSpec> watches;
  for (int inst = 0; inst < cluster.n_instances(); ++inst) {
    // The memory threshold is set just above the growing estate's current
    // level so the trend-driven early warning fires on the busier node —
    // the paper's "performance problem that begins weeks earlier" scenario.
    for (auto [metric, threshold] :
         {std::pair{workload::Metric::kCpu, 90.0},
          std::pair{workload::Metric::kMemory, 8450.0},
          std::pair{workload::Metric::kLogicalIops, 6.0e6}}) {
      auto raw = agent.CollectDays(inst, metric, 44);
      if (!raw.ok()) continue;
      const std::string key = repo::MetricsRepository::KeyFor(
          cluster.InstanceName(inst), metric);
      if (!metrics.Ingest(key, *raw).ok()) continue;
      watches.push_back({key, threshold});
    }
  }

  core::PipelineOptions pipeline_opts;
  pipeline_opts.technique = core::Technique::kAuto;  // HES vs SARIMAX choice
  pipeline_opts.max_lag = 6;
  pipeline_opts.n_threads = 8;
  core::MonitoringService service(&metrics, &registry, pipeline_opts);

  const std::int64_t now =
      workload::kExperimentStartEpoch + 44LL * 86400;
  auto results = service.Evaluate(watches, now);
  if (!results.ok()) {
    std::fprintf(stderr, "evaluate failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  std::printf("as of %s UTC\n\n", tsa::FormatTimestamp(now).c_str());
  bench::TablePrinter table({24, 40, 8, 26});
  table.Row({"series", "active model", "MAPE%", "threshold prognosis"});
  table.Rule();
  for (const auto& r : *results) {
    if (!r.status.ok()) {
      table.Row({r.key, "ERROR: " + r.status.ToString(), "", ""});
      continue;
    }
    std::string prognosis = "ok (24h clear)";
    if (r.breach.mean_breach) {
      prognosis = "BREACH in " +
                  tsa::FormatDuration(r.breach.mean_breach_epoch - now);
    } else if (r.breach.upper_breach) {
      prognosis = "warn (upper bound) in " +
                  tsa::FormatDuration(r.breach.upper_breach_epoch - now);
    }
    table.Row({r.key, r.model_spec, bench::Fmt(r.test_mape, 1), prognosis});
  }
  table.Rule();
  std::printf("\nmodels in registry: %zu (refit policy: 1 week or RMSE "
              "degradation)\n",
              registry.size());

  // Selector profiling panel: where the refits' grid time actually went.
  core::SelectorProfile total;
  std::size_t refits = 0;
  for (const auto& r : *results) {
    if (!r.refitted || r.selector_profile.candidates == 0) continue;
    ++refits;
    const core::SelectorProfile& p = r.selector_profile;
    total.candidates += p.candidates;
    total.succeeded += p.succeeded;
    total.pruned += p.pruned;
    total.failed += p.failed;
    total.deadline_skipped += p.deadline_skipped;
    total.warm_hits += p.warm_hits;
    total.transform_groups += p.transform_groups;
    total.rescored += p.rescored;
    total.prepare_ms += p.prepare_ms;
    total.grid_ms += p.grid_ms;
    total.rescore_ms += p.rescore_ms;
    total.total_ms += p.total_ms;
  }
  if (refits > 0) {
    std::printf("\nselector profile (%zu grid refit%s):\n", refits,
                refits == 1 ? "" : "s");
    std::printf("  candidates   %6zu  (ok %zu, pruned %zu, failed %zu, "
                "deadline-skipped %zu)\n",
                total.candidates, total.succeeded, total.pruned, total.failed,
                total.deadline_skipped);
    std::printf("  warm starts  %6zu  transform groups %zu  rescored %zu\n",
                total.warm_hits, total.transform_groups, total.rescored);
    std::printf("  time (ms)    prepare %.1f | grid %.1f | rescore %.1f | "
                "total %.1f\n",
                total.prepare_ms, total.grid_ms, total.rescore_ms,
                total.total_ms);
  }
  return 0;
}
