// Reproduces the paper's Section 6.3 model-space accounting:
//   ARIMA                     180 models per instance  (360 over 2 nodes)
//   SARIMAX                   660 models per instance (1320 over 2 nodes)
//   SARIMAX + Exog + Fourier  666 models per instance (1332 over 2 nodes)
//   > 6000 models across the two experiments
// and Section 9's extrapolation to a four-node cluster (~24000 models),
// plus the correlogram-pruning reduction on real workload data.

#include <cstdio>

#include "bench_util.h"
#include "core/candidate_gen.h"
#include "tsa/acf.h"
#include "tsa/interpolate.h"

using namespace capplan;

int main() {
  std::printf("=== Section 6.3: Experimental Model Counts ===\n\n");
  core::CandidateGenerator gen;

  const struct {
    core::Technique technique;
    const char* label;
  } families[] = {
      {core::Technique::kArima, "ARIMA p,d,q"},
      {core::Technique::kSarimax, "SARIMAX p,d,q,P,D,Q,F"},
      {core::Technique::kSarimaxFftExog,
       "SARIMAX + Exogenous(4) + Fourier(2)"},
  };
  std::size_t per_instance_total = 0;
  bench::TablePrinter table({38, 14, 14, 10});
  table.Row({"Family", "per instance", "2 instances", "expected"});
  table.Rule();
  for (const auto& fam : families) {
    const std::size_t n = gen.Generate(fam.technique).size();
    per_instance_total += n;
    table.Row({fam.label, std::to_string(n), std::to_string(2 * n),
               std::to_string(
                   core::CandidateGenerator::ExpectedCount(fam.technique))});
  }
  table.Rule();
  const std::size_t two_experiments = 2 * 2 * per_instance_total;
  std::printf("total per instance:            %zu\n", per_instance_total);
  std::printf("two-node cluster:              %zu\n", 2 * per_instance_total);
  std::printf("two experiments, two nodes:    %zu  (paper: 'over 6000')\n",
              two_experiments);
  std::printf("four-node cluster extrapolation: %zu  (paper Section 9: "
              "'nearly 24000')\n\n",
              4 * per_instance_total * 2 * 2);

  // Correlogram pruning on the real (simulated) OLAP CPU series.
  std::printf("=== Correlogram pruning (the paper's tuning step) ===\n");
  auto data = bench::CollectExperiment(workload::WorkloadScenario::Olap(), 42);
  const auto& series = data.hourly.at("cdbm011/cpu");
  auto filled = tsa::LinearInterpolate(series);
  if (filled.ok()) {
    auto pacf = tsa::Pacf(filled->values(), 30);
    if (pacf.ok()) {
      const auto lags = tsa::SignificantLags(*pacf, filled->size());
      std::printf("significant PACF lags (out of 30):");
      for (auto l : lags) std::printf(" %zu", l);
      std::printf("\n");
      for (const auto& fam : families) {
        const std::size_t full = gen.Generate(fam.technique).size();
        const std::size_t pruned =
            gen.GeneratePruned(fam.technique, lags).size();
        std::printf("%-38s %4zu -> %4zu models (%.0f%% reduction)\n",
                    fam.label, full, pruned,
                    100.0 * (1.0 - static_cast<double>(pruned) /
                                       static_cast<double>(full)));
      }
    }
  }
  return 0;
}
