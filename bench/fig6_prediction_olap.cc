// Reproduces paper Figure 6: prediction charts comparing the three ARIMA
// techniques on the OLAP workload's CPU metric (instance cdbm011). Prints
// the training tail, the held-out actuals and each family's 24-hour
// prediction as aligned CSV columns plus an ASCII overview.

#include <cstdio>

#include "bench_util.h"
#include "core/candidate_gen.h"
#include "core/selector.h"
#include "core/shock_detect.h"
#include "core/split.h"
#include "tsa/acf.h"
#include "tsa/interpolate.h"

using namespace capplan;

int main() {
  std::printf("=== Figure 6: Prediction Charts, 3 Techniques (OLAP CPU) ===\n");
  auto data = bench::CollectExperiment(workload::WorkloadScenario::Olap(), 42);
  const auto& series = data.hourly.at("cdbm011/cpu");

  auto filled = tsa::LinearInterpolate(series);
  if (!filled.ok()) return 1;
  auto split = core::ApplySplit(*filled);
  if (!split.ok()) return 1;
  const auto& train = split->first.values();
  const auto& test = split->second.values();

  // Correlogram-pruned selection per family.
  std::vector<std::size_t> significant;
  if (auto pacf = tsa::Pacf(train, 30); pacf.ok()) {
    significant = tsa::SignificantLags(*pacf, train.size());
  }
  core::ShockDetector detector;
  std::vector<core::DetectedShock> shocks;
  if (auto d = detector.Detect(train); d.ok()) shocks = *d;
  const auto exog_train =
      core::ShockDetector::PulseColumns(shocks, 0, train.size());
  const auto exog_test =
      core::ShockDetector::PulseColumns(shocks, train.size(), test.size());

  core::ModelSelector::Options sel_opts;
  sel_opts.n_threads = 8;
  sel_opts.keep_top = 3;
  core::ModelSelector selector(sel_opts);
  struct FamilyRun {
    const char* label;
    core::Technique technique;
    std::vector<double> prediction;
    std::string spec;
  };
  std::vector<FamilyRun> runs = {
      {"ARIMA", core::Technique::kArima, {}, ""},
      {"SARIMAX", core::Technique::kSarimax, {}, ""},
      {"SARIMAX+FFT+Exog", core::Technique::kSarimaxFftExog, {}, ""},
  };
  for (auto& run : runs) {
    core::CandidateGenerator::Options gen_opts;
    gen_opts.n_shock_columns = shocks.size();
    gen_opts.fourier_periods = {};  // single season in Experiment One
    core::CandidateGenerator gen(gen_opts);
    auto sel = selector.Select(train, test,
                               gen.GeneratePruned(run.technique, significant),
                               exog_train, exog_test);
    if (!sel.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", run.label,
                   sel.status().ToString().c_str());
      continue;
    }
    run.prediction = sel->best.test_forecast.mean;
    run.spec = sel->best.candidate.spec.ToString();
    std::printf("%s best model: %s (test RMSE %.3f)\n", run.label,
                run.spec.c_str(), sel->best.accuracy.rmse);
  }

  // Aligned CSV: the last 48 training hours (blue region of the figure),
  // then the 24 test hours with actuals + all three prediction lines
  // (yellow region).
  std::printf("\nhour,phase,actual,arima,sarimax,sarimax_fft_exog\n");
  const std::size_t tail = 48;
  for (std::size_t i = train.size() - tail; i < train.size(); ++i) {
    std::printf("%zu,train,%.3f,,,\n", i, train[i]);
  }
  for (std::size_t h = 0; h < test.size(); ++h) {
    std::printf("%zu,predict,%.3f", train.size() + h, test[h]);
    for (const auto& run : runs) {
      if (h < run.prediction.size()) {
        std::printf(",%.3f", run.prediction[h]);
      } else {
        std::printf(",");
      }
    }
    std::printf("\n");
  }

  for (const auto& run : runs) {
    if (!run.prediction.empty()) {
      bench::PrintAsciiSeries(std::string("\n") + run.label +
                                  " 24h prediction:",
                              run.prediction, 24);
    }
  }
  return 0;
}
