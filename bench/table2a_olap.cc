// Reproduces paper Table 2(a): Experiment Results - OLAP. For every
// (instance, metric) of the simulated Experiment One workload, the best
// model of each technique family (ARIMA, SARIMAX, SARIMAX+FFT+Exogenous) is
// selected by test RMSE and its accuracy reported.
//
// Expected shape (the paper's claims): all three families capture the daily
// pattern; the seasonal families reduce RMSE vs plain ARIMA, with
// SARIMAX+FFT+Exog the most accurate overall, and the largest jump on
// Logical IOPS where the seasonal component dominates.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "table2_common.h"

using namespace capplan;

int main() {
  std::printf("=== Table 2(a): Experiment Results - OLAP ===\n\n");
  auto data = bench::CollectExperiment(workload::WorkloadScenario::Olap(), 42);

  bench::TablePrinter table({34, 13, 14, 10, 10, 9});
  table.Row({"Forecast Model", "Metric", "RMSE", "MAPE %", "MAPA %",
             "Instance"});
  table.Rule();

  struct MetricDef {
    const char* key;
    const char* label;
  };
  const MetricDef metrics[] = {
      {"cpu", "CPU"}, {"memory", "Memory"}, {"logical_iops", "Logical IOPS"}};

  int fam_wins = 0, comparisons = 0;
  for (const auto& metric : metrics) {
    for (const auto& inst : data.instances) {
      const auto& series = data.hourly.at(inst + "/" + metric.key);
      auto results = bench::EvaluateThreeFamilies(series);
      if (!results) continue;
      double best_rmse = 1e300;
      double arima_rmse = 1e300;
      for (const auto& r : *results) {
        table.Row({r.family_label + " " + r.spec, metric.label,
                   bench::Fmt(r.accuracy.rmse,
                              r.accuracy.rmse > 1000 ? 1 : 3),
                   bench::Fmt(r.accuracy.mape, 2),
                   bench::Fmt(r.accuracy.mapa, 2), inst});
        if (r.family_label.find("floor") == std::string::npos) {
          best_rmse = std::min(best_rmse, r.accuracy.rmse);
        }
        if (r.family_label == "ARIMA") arima_rmse = r.accuracy.rmse;
      }
      table.Rule();
      ++comparisons;
      if (best_rmse < arima_rmse) ++fam_wins;
    }
  }
  std::printf(
      "\nSeasonal families (SARIMAX / SARIMAX+FFT+Exog) win %d of %d\n"
      "instance-metric cells (paper: seasonal component gives a significant\n"
      "jump in accuracy, SARIMAX FFT Exogenous consistently most accurate).\n",
      fam_wins, comparisons);
  return 0;
}
