// Ablation: conditional-sum-of-squares vs exact-likelihood (Kalman filter)
// estimation for the ARIMA refinement stage — fit quality, forecast
// accuracy and cost on the OLAP CPU workload. The paper's accuracy
// comparisons use CSS-style fitting (the Python default for speed); this
// bench quantifies what exact MLE would change.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/split.h"
#include "models/arima.h"
#include "tsa/interpolate.h"
#include "tsa/metrics.h"

using namespace capplan;

int main() {
  std::printf("=== Ablation: CSS vs exact-likelihood (Kalman) fitting ===\n\n");
  auto data = bench::CollectExperiment(workload::WorkloadScenario::Olap(), 42);
  const auto& series = data.hourly.at("cdbm011/cpu");
  auto filled = tsa::LinearInterpolate(series);
  if (!filled.ok()) return 1;
  auto split = core::ApplySplit(*filled);
  if (!split.ok()) return 1;
  const auto& train = split->first.values();
  const auto& test = split->second.values();

  const models::ArimaSpec specs[] = {
      {1, 0, 1, 0, 0, 0, 0},
      {2, 1, 2, 0, 0, 0, 0},
      {1, 0, 1, 0, 1, 1, 24},
      {2, 1, 1, 1, 1, 1, 24},
  };
  std::printf("%-22s %-6s %12s %12s %10s\n", "spec", "method", "sigma2",
              "test RMSE", "fit ms");
  for (const auto& spec : specs) {
    for (auto method : {models::ArimaModel::Method::kCss,
                        models::ArimaModel::Method::kMle}) {
      models::ArimaModel::Options opts;
      opts.method = method;
      const auto t0 = std::chrono::steady_clock::now();
      auto m = models::ArimaModel::Fit(train, spec, opts);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (!m.ok()) {
        std::printf("%-22s %-6s fit failed: %s\n", spec.ToString().c_str(),
                    method == models::ArimaModel::Method::kCss ? "CSS"
                                                               : "MLE",
                    m.status().ToString().c_str());
        continue;
      }
      double rmse = -1.0;
      if (auto fc = m->Predict(test.size()); fc.ok()) {
        if (auto r = tsa::Rmse(test, fc->mean); r.ok()) rmse = *r;
      }
      std::printf("%-22s %-6s %12.5f %12.4f %10.1f\n",
                  spec.ToString().c_str(),
                  method == models::ArimaModel::Method::kCss ? "CSS" : "MLE",
                  m->summary().sigma2, rmse, ms);
    }
  }
  std::printf(
      "\nExpected shape: MLE and CSS agree closely on these long (984-obs)\n"
      "training windows; MLE costs more per fit. Exact likelihood matters\n"
      "for short series, which is why the library offers both. Seasonal\n"
      "specs whose state dimension exceeds the exact-initialization limit\n"
      "(r > 12) automatically fall back to CSS refinement, so their two\n"
      "rows coincide.\n");
  return 0;
}
