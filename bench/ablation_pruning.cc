// Ablation: exhaustive grid vs correlogram-pruned grid (the paper's
// Section 6.3/9 tuning claim). Measures candidate counts, wall time and the
// best test RMSE each strategy achieves on the OLAP CPU series; pruning
// should cut the search by an order of magnitude at negligible accuracy
// cost.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/candidate_gen.h"
#include "core/selector.h"
#include "core/split.h"
#include "tsa/acf.h"
#include "tsa/interpolate.h"

using namespace capplan;

int main() {
  std::printf("=== Ablation: exhaustive vs correlogram-pruned selection ===\n");
  auto data = bench::CollectExperiment(workload::WorkloadScenario::Olap(), 42);
  const auto& series = data.hourly.at("cdbm012/cpu");
  auto filled = tsa::LinearInterpolate(series);
  if (!filled.ok()) return 1;
  auto split = core::ApplySplit(*filled);
  if (!split.ok()) return 1;
  const auto& train = split->first.values();
  const auto& test = split->second.values();

  std::vector<std::size_t> significant;
  if (auto pacf = tsa::Pacf(train, 30); pacf.ok()) {
    significant = tsa::SignificantLags(*pacf, train.size());
  }

  core::CandidateGenerator gen;
  core::ModelSelector selector(core::ModelSelector::Options{8, 3});

  struct Run {
    const char* label;
    std::vector<core::ModelCandidate> candidates;
  };
  Run runs[] = {
      {"exhaustive SARIMAX grid", gen.Generate(core::Technique::kSarimax)},
      {"pruned SARIMAX grid",
       gen.GeneratePruned(core::Technique::kSarimax, significant)},
  };
  double rmse_exhaustive = 0.0;
  for (const auto& run : runs) {
    const auto t0 = std::chrono::steady_clock::now();
    auto sel = selector.Select(train, test, run.candidates);
    const auto t1 = std::chrono::steady_clock::now();
    if (!sel.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", run.label,
                   sel.status().ToString().c_str());
      continue;
    }
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();
    std::printf(
        "%-26s: %4zu candidates (%zu fitted) in %6.2fs -> best %s "
        "RMSE %.4f\n",
        run.label, sel->evaluated, sel->succeeded, secs,
        sel->best.candidate.spec.ToString().c_str(),
        sel->best.accuracy.rmse);
    if (run.label[0] == 'e') {
      rmse_exhaustive = sel->best.accuracy.rmse;
    } else if (rmse_exhaustive > 0.0) {
      std::printf(
          "pruned-vs-exhaustive RMSE ratio: %.3f (1.0 = no accuracy loss)\n",
          sel->best.accuracy.rmse / rmse_exhaustive);
    }
  }
  return 0;
}
