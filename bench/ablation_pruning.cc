// Ablation: two pruning layers of the selection search.
//
// Part 1 — grid pruning: exhaustive grid vs correlogram-pruned grid (the
// paper's Section 6.3/9 tuning claim). Measures candidate counts, wall time
// and the best test RMSE each strategy achieves on the OLAP CPU series;
// pruning should cut the search by an order of magnitude at negligible
// accuracy cost.
//
// Part 2 — early-abort pruning: the selector's fast-path flag that stops a
// candidate's test-window scoring once its running squared-error sum
// provably exceeds the current top-k bound. Same winner, fewer full
// psi-weight interval expansions.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/candidate_gen.h"
#include "core/selector.h"
#include "core/split.h"
#include "tsa/acf.h"
#include "tsa/interpolate.h"

using namespace capplan;

namespace {

double RunSelection(const char* label, const core::ModelSelector& selector,
                    const std::vector<double>& train,
                    const std::vector<double>& test,
                    const std::vector<core::ModelCandidate>& candidates) {
  const auto t0 = std::chrono::steady_clock::now();
  auto sel = selector.Select(train, test, candidates);
  const auto t1 = std::chrono::steady_clock::now();
  if (!sel.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 sel.status().ToString().c_str());
    return 0.0;
  }
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  std::printf(
      "%-34s: %4zu candidates (%zu fitted, %zu early-aborted) in %6.2fs -> "
      "best %s RMSE %.4f\n",
      label, sel->evaluated, sel->succeeded, sel->pruned, secs,
      sel->best.candidate.spec.ToString().c_str(), sel->best.accuracy.rmse);
  return sel->best.accuracy.rmse;
}

}  // namespace

int main() {
  std::printf("=== Ablation: grid pruning and early-abort pruning ===\n");
  auto data = bench::CollectExperiment(workload::WorkloadScenario::Olap(), 42);
  const auto& series = data.hourly.at("cdbm012/cpu");
  auto filled = tsa::LinearInterpolate(series);
  if (!filled.ok()) return 1;
  auto split = core::ApplySplit(*filled);
  if (!split.ok()) return 1;
  const auto& train = split->first.values();
  const auto& test = split->second.values();

  std::vector<std::size_t> significant;
  if (auto pacf = tsa::Pacf(train, 30); pacf.ok()) {
    significant = tsa::SignificantLags(*pacf, train.size());
  }

  core::CandidateGenerator gen;
  core::ModelSelector::Options sel_opts;
  sel_opts.n_threads = 8;
  sel_opts.keep_top = 3;
  core::ModelSelector selector(sel_opts);

  std::printf("\n--- Part 1: exhaustive vs correlogram-pruned grid ---\n");
  const auto exhaustive = gen.Generate(core::Technique::kSarimax);
  const auto pruned =
      gen.GeneratePruned(core::Technique::kSarimax, significant);
  const double rmse_exhaustive =
      RunSelection("exhaustive SARIMAX grid", selector, train, test,
                   exhaustive);
  const double rmse_pruned = RunSelection("pruned SARIMAX grid", selector,
                                          train, test, pruned);
  if (rmse_exhaustive > 0.0 && rmse_pruned > 0.0) {
    std::printf(
        "pruned-vs-exhaustive RMSE ratio: %.3f (1.0 = no accuracy loss)\n",
        rmse_pruned / rmse_exhaustive);
  }

  std::printf("\n--- Part 2: early-abort scoring on the exhaustive grid ---\n");
  core::ModelSelector::Options abort_off = sel_opts;
  abort_off.early_abort = false;
  core::ModelSelector::Options abort_on = sel_opts;
  abort_on.early_abort = true;
  const double rmse_off =
      RunSelection("fast path, early-abort OFF",
                   core::ModelSelector(abort_off), train, test, exhaustive);
  const double rmse_on =
      RunSelection("fast path, early-abort ON",
                   core::ModelSelector(abort_on), train, test, exhaustive);
  if (rmse_off > 0.0 && rmse_on > 0.0) {
    std::printf("early-abort RMSE ratio: %.6f (must be 1.0: same winner)\n",
                rmse_on / rmse_off);
  }
  return 0;
}
