// Reproduces paper Table 2(b): Experiment Results - OLTP. Same grid as
// Table 2(a) but on the complicated Experiment Two workload (trend,
// multiple seasonality from the twice-daily surges, 6-hourly backup shocks).
//
// Expected shape: the exogenous shock regressors and Fourier terms let
// SARIMAX+FFT+Exog stay accurate despite trend + multiple seasonality +
// shocks; plain ARIMA degrades most.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "table2_common.h"

using namespace capplan;

int main() {
  std::printf("=== Table 2(b): Experiment Results - OLTP ===\n\n");
  auto data = bench::CollectExperiment(workload::WorkloadScenario::Oltp(), 42);

  bench::TablePrinter table({34, 13, 14, 10, 10, 9});
  table.Row({"Forecast Model", "Metric", "RMSE", "MAPE %", "MAPA %",
             "Instance"});
  table.Rule();

  struct MetricDef {
    const char* key;
    const char* label;
  };
  const MetricDef metrics[] = {
      {"cpu", "CPU"}, {"memory", "Memory"}, {"logical_iops", "Logical IOPS"}};

  int fft_wins = 0, comparisons = 0;
  for (const auto& metric : metrics) {
    for (const auto& inst : data.instances) {
      const auto& series = data.hourly.at(inst + "/" + metric.key);
      auto results = bench::EvaluateThreeFamilies(series);
      if (!results) continue;
      double best_rmse = 1e300;
      double fft_rmse = 1e300;
      for (const auto& r : *results) {
        table.Row({r.family_label + " " + r.spec, metric.label,
                   bench::Fmt(r.accuracy.rmse,
                              r.accuracy.rmse > 1000 ? 1 : 3),
                   bench::Fmt(r.accuracy.mape, 2),
                   bench::Fmt(r.accuracy.mapa, 2), inst});
        if (r.family_label.find("floor") == std::string::npos) {
          best_rmse = std::min(best_rmse, r.accuracy.rmse);
        }
        if (r.family_label == "SARIMAX FFT Exogenous") {
          fft_rmse = r.accuracy.rmse;
        }
      }
      table.Rule();
      ++comparisons;
      // Ties count: when the simulator's shocks are exactly periodic, the
      // seasonal differencing of a SARIMA spec absorbs them and the
      // exogenous deterministic part cancels analytically, producing
      // bit-identical forecasts.
      if (fft_rmse <= best_rmse * 1.0001) ++fft_wins;
    }
  }
  std::printf(
      "\nSARIMAX FFT Exogenous is best-or-tied in %d of %d instance-metric\n"
      "cells on the complex workload (paper: 'consistently more accurate\n"
      "... maintains accuracy when we add multiple seasonality and\n"
      "shocks'). Exact ties arise because the simulated shocks are\n"
      "perfectly periodic and hence also absorbable by seasonal\n"
      "differencing; real workloads drift, which is where the exogenous\n"
      "terms pull ahead.\n",
      fft_wins, comparisons);
  return 0;
}
