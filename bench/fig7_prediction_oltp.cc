// Reproduces paper Figure 7: prediction charts using SARIMAX with exogenous
// variables and Fourier terms on the OLTP workload, for CPU, Memory and
// Logical IOPS (instance cdbm011). The prediction line must grow with the
// trend, track the 07:00/09:00 surge seasonality and reproduce the backup
// spikes in logical IOPS.

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"

using namespace capplan;

int main() {
  std::printf(
      "=== Figure 7: SARIMAX + Exogenous + Fourier Predictions (OLTP) ===\n");
  auto data = bench::CollectExperiment(workload::WorkloadScenario::Oltp(), 42);

  for (const char* metric : {"cpu", "memory", "logical_iops"}) {
    const auto& series = data.hourly.at(std::string("cdbm011/") + metric);
    core::PipelineOptions opts;
    opts.technique = core::Technique::kSarimaxFftExog;
    opts.n_threads = 8;
    core::Pipeline pipeline(opts);
    auto report = pipeline.Run(series);
    if (!report.ok()) {
      std::fprintf(stderr, "%s pipeline failed: %s\n", metric,
                   report.status().ToString().c_str());
      continue;
    }
    std::printf("\n--- cdbm011/%s ---\n", metric);
    std::printf("chosen model: %s | test RMSE %.4g | MAPA %.2f%%\n",
                report->chosen_spec.c_str(), report->test_accuracy.rmse,
                report->test_accuracy.mapa);
    std::printf("detected shocks: %zu (transients discarded: %zu)\n",
                report->shocks.size(), report->transient_spikes_discarded);
    for (const auto& s : report->shocks) {
      std::printf("  shock @ phase %zu (period %zu, duration %zu, "
                  "%d occurrences, magnitude %.4g)\n",
                  s.phase, s.period, s.duration, s.occurrences, s.magnitude);
    }
    std::printf("hour,mean,lower,upper\n");
    for (std::size_t h = 0; h < report->forecast.mean.size(); ++h) {
      std::printf("%zu,%.4f,%.4f,%.4f\n", h, report->forecast.mean[h],
                  report->forecast.lower[h], report->forecast.upper[h]);
    }
    bench::PrintAsciiSeries("prediction (orange line):",
                            report->forecast.mean, 24);
  }
  return 0;
}
