// Reproduces paper Figure 1: visualising time series data.
//   (a) ACF/PACF correlogram over 30 lags with the white-noise band
//   (b) seasonal decomposition (trend / seasonal / residual)
//   (c) the effect of differencing on stationarity (ADF before/after)

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "tsa/acf.h"
#include "tsa/decompose.h"
#include "tsa/difference.h"
#include "tsa/stationarity.h"
#include "workload/scenario.h"

using namespace capplan;

namespace {

void PrintCorrelogram(const char* title, const std::vector<double>& corr,
                      double band) {
  std::printf("\n%s (|band| = %.3f)\n", title, band);
  for (std::size_t k = 0; k < corr.size(); ++k) {
    const int mid = 30;
    const int pos = mid + static_cast<int>(corr[k] * mid);
    std::string line(61, ' ');
    line[static_cast<std::size_t>(mid)] = '|';
    const std::size_t mark =
        static_cast<std::size_t>(std::clamp(pos, 0, 60));
    line[mark] = '*';
    const char sig =
        std::fabs(corr[k]) > band ? 'S' : ' ';
    std::printf("lag %2zu %c %s % .3f\n", k + 1, sig, line.c_str(), corr[k]);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 1: Visualising Time Series Data ===\n");
  std::printf("Series: OLAP workload, instance cdbm011, CPU (hourly)\n");

  auto data = bench::CollectExperiment(workload::WorkloadScenario::Olap(), 42);
  const auto& series = data.hourly.at("cdbm011/cpu");
  const std::vector<double>& x = series.values();

  // (a) Correlogram.
  const double band = tsa::WhiteNoiseBand(x.size());
  auto acf = tsa::Acf(x, 30);
  auto pacf = tsa::Pacf(x, 30);
  if (acf.ok()) {
    std::vector<double> lags(acf->begin() + 1, acf->end());
    PrintCorrelogram("(a) Autocorrelation function (ACF), 30 lags", lags,
                     band);
    const auto sig = tsa::SignificantLags(lags, x.size());
    std::printf("significant ACF lags:");
    for (auto l : sig) std::printf(" %zu", l);
    std::printf("\n");
  }
  if (pacf.ok()) {
    PrintCorrelogram("(a) Partial autocorrelation function (PACF)", *pacf,
                     band);
  }

  // (b) Decomposition.
  auto dec = tsa::SeasonalDecompose(x, 24, tsa::DecomposeKind::kAdditive);
  if (dec.ok()) {
    std::printf("\n(b) Seasonal decomposition (period=24)\n");
    std::printf("hour-of-day seasonal indices:\n");
    for (std::size_t p = 0; p < 24; ++p) {
      std::printf("  h%02zu % 8.3f\n", p, dec->seasonal_indices[p]);
    }
    auto traits = tsa::MeasureTraits(x, 24);
    if (traits.ok()) {
      std::printf("trend strength    = %.3f\n", traits->trend_strength);
      std::printf("seasonal strength = %.3f\n", traits->seasonal_strength);
    }
  }

  // (c) Differencing.
  auto adf_raw = tsa::AdfTest(x);
  const auto diffed = tsa::Difference(x, 1);
  auto adf_diff = tsa::AdfTest(diffed);
  std::printf("\n(c) Differencing and stationarity (ADF test)\n");
  if (adf_raw.ok()) {
    std::printf("raw series:   ADF stat % .3f, p-value %.3f -> %s\n",
                adf_raw->statistic, adf_raw->p_value,
                adf_raw->reject_unit_root() ? "stationary" : "non-stationary");
  }
  if (adf_diff.ok()) {
    std::printf("d=1 series:   ADF stat % .3f, p-value %.3f -> %s\n",
                adf_diff->statistic, adf_diff->p_value,
                adf_diff->reject_unit_root() ? "stationary"
                                             : "non-stationary");
  }
  auto rec = tsa::RecommendDifferencing(x);
  if (rec.ok()) std::printf("recommended d = %d\n", *rec);
  return 0;
}
