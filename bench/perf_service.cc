// Estate service throughput (google-benchmark): steady-state scheduler
// ticks/sec at varying estate sizes, with refits running on the shared pool.
// The fit_threads sweep shows the concurrency win of dispatching refits onto
// the pool instead of fitting inline: with one worker the drain serialises
// every fit, with many workers they overlap (on multi-core hosts).
//
// Each iteration runs a day of 6-hour ticks against a short staleness policy
// (12 h) so every key is refit twice per simulated day — a deliberately
// refit-heavy steady state.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "service/estate_service.h"
#include "workload/scenario.h"

namespace {

using namespace capplan;

constexpr std::int64_t kHour = 3600;

void BM_EstateServiceSteadyState(benchmark::State& state) {
  const int n_instances = static_cast<int>(state.range(0));
  const std::size_t fit_threads = static_cast<std::size_t>(state.range(1));
  constexpr int kTicksPerIteration = 4;  // one simulated day

  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = n_instances;
  workload::ClusterSimulator cluster(scenario, 11);
  std::vector<service::WatchConfig> watches;
  for (int instance = 0; instance < n_instances; ++instance) {
    watches.push_back({instance, workload::Metric::kCpu, 1e9});
  }

  service::EstateServiceConfig config;
  config.tick_seconds = 6 * kHour;
  config.fit_threads = fit_threads;
  config.pipeline.technique = core::Technique::kHes;
  config.staleness.max_age_seconds = 12 * kHour;     // refit twice a day
  config.staleness.rmse_degradation_factor = 1e9;    // age-driven only
  config.warmup_days = 42;

  service::EstateService svc(&cluster, watches, config);
  if (!svc.Start().ok()) {
    state.SkipWithError("service failed to start");
    return;
  }

  std::int64_t ticks = 0;
  for (auto _ : state) {
    for (int i = 0; i < kTicksPerIteration; ++i) {
      auto report = svc.Tick();
      if (!report.ok()) {
        state.SkipWithError(report.status().ToString().c_str());
        return;
      }
      ++ticks;
    }
    // Drain inside the timed region: ticks/sec includes the refit work the
    // iteration generated, so the fit_threads sweep is honest.
    if (!svc.DrainRefits().ok()) {
      state.SkipWithError("drain failed");
      return;
    }
  }

  state.counters["ticks/s"] =
      benchmark::Counter(static_cast<double>(ticks), benchmark::Counter::kIsRate);
  state.counters["refits"] =
      static_cast<double>(svc.telemetry().refits_succeeded);
  state.counters["fit_ms_mean"] = svc.telemetry().fit_stage.mean_ms();
  state.counters["fit_ms_p50"] = svc.telemetry().fit_stage.p50_ms();
  state.counters["fit_ms_p99"] = svc.telemetry().fit_stage.p99_ms();
}

BENCHMARK(BM_EstateServiceSteadyState)
    ->ArgNames({"instances", "fit_threads"})
    ->Args({10, 1})
    ->Args({10, 8})
    ->Args({50, 1})
    ->Args({50, 8})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

BENCHMARK_MAIN();
