// Performance benchmarks (google-benchmark): model-fitting throughput and
// the parallel-selection speedup the paper reports ("Gains are also
// achieved by parallel processing the models", Section 9).

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/candidate_gen.h"
#include "core/selector.h"
#include "models/arima.h"
#include "models/ets.h"
#include "obs/trace.h"
#include "tsa/acf.h"
#include "tsa/fourier.h"
#include "math/fft.h"

namespace {

using namespace capplan;

std::vector<double> SeasonalSeries(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 50.0 + 12.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  return y;
}

void BM_ArimaFit(benchmark::State& state) {
  const auto y = SeasonalSeries(984, 1);
  const models::ArimaSpec spec{static_cast<int>(state.range(0)), 1, 1,
                               0,  0, 0, 0};
  for (auto _ : state) {
    auto m = models::ArimaModel::Fit(y, spec);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ArimaFit)->Arg(1)->Arg(5)->Arg(13)->Arg(27);

void BM_SarimaFit(benchmark::State& state) {
  const auto y = SeasonalSeries(984, 2);
  const models::ArimaSpec spec{static_cast<int>(state.range(0)), 1, 1,
                               1,  1, 1, 24};
  for (auto _ : state) {
    auto m = models::ArimaModel::Fit(y, spec);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_SarimaFit)->Arg(1)->Arg(13);

void BM_ArimaForecast(benchmark::State& state) {
  const auto y = SeasonalSeries(984, 3);
  auto m = models::ArimaModel::Fit(y, models::ArimaSpec{2, 1, 1, 1, 1, 1, 24});
  if (!m.ok()) {
    state.SkipWithError("fit failed");
    return;
  }
  for (auto _ : state) {
    auto fc = m->Predict(24);
    benchmark::DoNotOptimize(fc);
  }
}
BENCHMARK(BM_ArimaForecast);

void BM_EtsFit(benchmark::State& state) {
  const auto y = SeasonalSeries(984, 4);
  for (auto _ : state) {
    auto m = models::EtsModel::Fit(y, models::HoltWinters(24));
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_EtsFit);

void BM_AcfPacf(benchmark::State& state) {
  const auto y = SeasonalSeries(static_cast<std::size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto a = tsa::Acf(y, 30);
    auto p = tsa::Pacf(y, 30);
    benchmark::DoNotOptimize(a);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_AcfPacf)->Arg(984)->Arg(4096);

void BM_Fft(benchmark::State& state) {
  const auto y = SeasonalSeries(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    auto p = math::Periodogram(y);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_Fft)->Arg(1008)->Arg(1024)->Arg(8192);

// Parallel grid selection: the paper's parallel-processing gain. Thread
// count is the benchmark argument; candidates are a small SARIMA slice.
void BM_ParallelSelection(benchmark::State& state) {
  const auto y = SeasonalSeries(1008, 7);
  const std::vector<double> train(y.begin(), y.end() - 24);
  const std::vector<double> test(y.end() - 24, y.end());
  core::CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 3;  // 66 candidates
  core::CandidateGenerator gen(gen_opts);
  const auto candidates = gen.Generate(core::Technique::kSarimax);
  for (auto _ : state) {
    core::ModelSelector::Options opts;
    opts.n_threads = static_cast<std::size_t>(state.range(0));
    core::ModelSelector selector(opts);
    auto sel = selector.Select(train, test, candidates);
    benchmark::DoNotOptimize(sel);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(candidates.size()));
}
BENCHMARK(BM_ParallelSelection)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

// The ISSUE-2 tentpole measurement: the paper-sized 660-candidate SARIMAX
// grid, evaluated by the serial un-cached oracle path vs the fast path
// (shared transforms + warm starts + early abort). arg0 selects the path
// (0 = oracle, 1 = fast), arg1 the thread count, arg2 whether the obs
// tracing spans around every candidate are live (the <3% overhead budget
// that keeps them safe to leave in production; bench_obs_overhead asserts
// it). Iterations are pinned to 1 because a single oracle sweep already
// takes tens of seconds.
void BM_SarimaxGrid660(benchmark::State& state) {
  const auto y = SeasonalSeries(1008, 8);
  const std::vector<double> train(y.begin(), y.end() - 24);
  const std::vector<double> test(y.end() - 24, y.end());
  core::CandidateGenerator gen;  // max_lag 30 -> the paper's 660 grid
  const auto candidates = gen.Generate(core::Technique::kSarimax);
  const bool fast = state.range(0) != 0;
  const bool traced = state.range(2) != 0;
  if (traced) obs::Tracer::Instance().Enable();
  std::size_t pruned = 0;
  std::size_t succeeded = 0;
  std::size_t spans = 0;
  for (auto _ : state) {
    core::ModelSelector::Options opts;
    opts.n_threads = static_cast<std::size_t>(state.range(1));
    opts.shared_transforms = fast;
    opts.warm_start = fast;
    opts.early_abort = fast;
    core::ModelSelector selector(opts);
    auto sel = selector.Select(train, test, candidates);
    if (!sel.ok()) {
      state.SkipWithError("selection failed");
      return;
    }
    pruned = sel->pruned;
    succeeded = sel->succeeded;
    benchmark::DoNotOptimize(sel);
    if (traced) spans += obs::Tracer::Instance().Drain().size();
  }
  if (traced) {
    obs::Tracer::Instance().Disable();
    obs::Tracer::Instance().Clear();
  }
  state.SetLabel(std::string(fast ? "fast" : "oracle") +
                 (traced ? "+trace" : ""));
  state.counters["candidates"] = static_cast<double>(candidates.size());
  state.counters["fitted"] = static_cast<double>(succeeded);
  state.counters["early_aborted"] = static_cast<double>(pruned);
  if (traced) state.counters["spans"] = static_cast<double>(spans);
}
BENCHMARK(BM_SarimaxGrid660)
    ->Args({0, 1, 0})  // baseline: serial, un-cached
    ->Args({1, 1, 0})  // fast path, single thread (algorithmic gain only)
    ->Args({1, 8, 0})  // fast path, parallel (the shipping configuration)
    ->Args({1, 8, 1})  // shipping configuration with tracing spans live
    ->Iterations(1)
    ->Unit(benchmark::kSecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Tiny-grid variant of the same comparison; finishes in well under a minute
// even in debug builds, so CI's bench-smoke step runs it on every push
// (--benchmark_filter=SmallGrid).
void BM_SmallGridFastPath(benchmark::State& state) {
  const auto y = SeasonalSeries(1008, 9);
  const std::vector<double> train(y.begin(), y.end() - 24);
  const std::vector<double> test(y.end() - 24, y.end());
  core::CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 2;  // 44 candidates
  core::CandidateGenerator gen(gen_opts);
  const auto candidates = gen.Generate(core::Technique::kSarimax);
  const bool fast = state.range(0) != 0;
  for (auto _ : state) {
    core::ModelSelector::Options opts;
    opts.n_threads = 2;
    opts.shared_transforms = fast;
    opts.warm_start = fast;
    opts.early_abort = fast;
    core::ModelSelector selector(opts);
    auto sel = selector.Select(train, test, candidates);
    if (!sel.ok()) {
      state.SkipWithError("selection failed");
      return;
    }
    benchmark::DoNotOptimize(sel);
  }
  state.SetLabel(fast ? "fast" : "oracle");
}
BENCHMARK(BM_SmallGridFastPath)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
