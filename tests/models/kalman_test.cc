#include "models/kalman.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "math/matrix.h"
#include "models/arima.h"

namespace capplan::models {
namespace {

std::vector<double> SimulateArma(std::size_t n,
                                 const std::vector<double>& phi,
                                 const std::vector<double>& theta,
                                 unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  const std::size_t burn = 300;
  std::vector<double> x(n + burn, 0.0), a(n + burn, 0.0);
  for (std::size_t t = 0; t < n + burn; ++t) {
    a[t] = dist(rng);
    double v = a[t];
    for (std::size_t i = 1; i <= phi.size() && i <= t; ++i) {
      v += phi[i - 1] * x[t - i];
    }
    for (std::size_t j = 1; j <= theta.size() && j <= t; ++j) {
      v += theta[j - 1] * a[t - j];
    }
    x[t] = v;
  }
  return {x.begin() + burn, x.end()};
}

// Direct multivariate-normal log-likelihood from the theoretical ARMA
// autocovariance matrix (O(n^3); only for small n).
double DirectMvnLogLik(const std::vector<double>& w,
                       const std::vector<double>& phi,
                       const std::vector<double>& theta, double sigma2) {
  const std::size_t n = w.size();
  const auto gamma = ArmaAutocovariances(phi, theta, n - 1);
  math::Matrix cov(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cov(i, j) = sigma2 * gamma[static_cast<std::size_t>(
                               std::llabs(static_cast<long long>(i) -
                                          static_cast<long long>(j)))];
    }
  }
  auto l = math::CholeskyFactor(cov);
  EXPECT_TRUE(l.ok());
  // log det = 2 sum log L_ii; quadratic form via forward solve.
  double logdet = 0.0;
  for (std::size_t i = 0; i < n; ++i) logdet += std::log((*l)(i, i));
  logdet *= 2.0;
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = w[i];
    for (std::size_t k = 0; k < i; ++k) v -= (*l)(i, k) * z[k];
    z[i] = v / (*l)(i, i);
  }
  double quad = 0.0;
  for (double v : z) quad += v * v;
  return -0.5 * (static_cast<double>(n) * std::log(2.0 * M_PI) + logdet +
                 quad);
}

TEST(KalmanTest, MatchesDirectMvnForAr1) {
  const std::vector<double> phi{0.6};
  const auto y = SimulateArma(60, phi, {}, 1);
  auto kl = ArmaKalmanLikelihood(y, phi, {});
  ASSERT_TRUE(kl.ok());
  const double direct = DirectMvnLogLik(y, phi, {}, kl->sigma2);
  EXPECT_NEAR(kl->log_likelihood, direct, 0.05);
}

TEST(KalmanTest, MatchesDirectMvnForArma11) {
  const std::vector<double> phi{0.5};
  const std::vector<double> theta{0.3};
  const auto y = SimulateArma(50, phi, theta, 2);
  auto kl = ArmaKalmanLikelihood(y, phi, theta);
  ASSERT_TRUE(kl.ok());
  const double direct = DirectMvnLogLik(y, phi, theta, kl->sigma2);
  EXPECT_NEAR(kl->log_likelihood, direct, 0.05);
}

TEST(KalmanTest, MatchesDirectMvnForMa2) {
  const std::vector<double> theta{0.4, 0.2};
  const auto y = SimulateArma(50, {}, theta, 3);
  auto kl = ArmaKalmanLikelihood(y, {}, theta);
  ASSERT_TRUE(kl.ok());
  const double direct = DirectMvnLogLik(y, {}, theta, kl->sigma2);
  EXPECT_NEAR(kl->log_likelihood, direct, 0.05);
}

TEST(KalmanTest, WhiteNoiseSigmaRecovered) {
  std::mt19937 rng(4);
  std::normal_distribution<double> dist(0.0, 2.0);
  std::vector<double> y(2000);
  for (auto& v : y) v = dist(rng);
  auto kl = ArmaKalmanLikelihood(y, {}, {});
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(kl->sigma2, 4.0, 0.4);
}

TEST(KalmanTest, TrueParametersBeatWrongOnes) {
  const std::vector<double> phi{0.7};
  const auto y = SimulateArma(1000, phi, {}, 5);
  auto right = ArmaKalmanLikelihood(y, {0.7}, {});
  auto wrong = ArmaKalmanLikelihood(y, {-0.3}, {});
  ASSERT_TRUE(right.ok());
  ASSERT_TRUE(wrong.ok());
  EXPECT_GT(right->log_likelihood, wrong->log_likelihood + 50.0);
}

TEST(KalmanTest, InnovationsAreWhiteUnderTrueModel) {
  const std::vector<double> phi{0.8};
  const auto y = SimulateArma(3000, phi, {}, 6);
  auto kl = ArmaKalmanLikelihood(y, phi, {});
  ASSERT_TRUE(kl.ok());
  // Standardized innovations should be serially uncorrelated.
  const auto& v = kl->innovations;
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double num = 0.0, den = 0.0;
  for (std::size_t t = 1; t < v.size(); ++t) {
    num += (v[t] - mean) * (v[t - 1] - mean);
  }
  for (double x : v) den += (x - mean) * (x - mean);
  EXPECT_LT(std::fabs(num / den), 0.06);
}

TEST(KalmanTest, DiffusePathForLargeStateDimension) {
  // Seasonal-scale lag vector (r > 12) exercises the diffuse branch.
  std::vector<double> ar(24, 0.0);
  ar[23] = 0.5;  // seasonal AR at lag 24
  const auto y = SimulateArma(600, ar, {}, 7);
  auto kl = ArmaKalmanLikelihood(y, ar, {});
  ASSERT_TRUE(kl.ok());
  EXPECT_TRUE(std::isfinite(kl->log_likelihood));
  EXPECT_NEAR(kl->sigma2, 1.0, 0.2);
}

TEST(KalmanTest, RejectsEmptyInput) {
  EXPECT_FALSE(ArmaKalmanLikelihood({}, {0.5}, {}).ok());
}

TEST(AutocovarianceTest, Ar1ClosedForm) {
  // gamma(k) = phi^k / (1 - phi^2) for unit innovation variance.
  const double phi = 0.6;
  const auto gamma = ArmaAutocovariances({phi}, {}, 5);
  for (std::size_t k = 0; k <= 5; ++k) {
    EXPECT_NEAR(gamma[k],
                std::pow(phi, static_cast<double>(k)) / (1.0 - phi * phi),
                1e-9);
  }
}

TEST(AutocovarianceTest, Ma1ClosedForm) {
  // gamma(0) = 1 + theta^2, gamma(1) = theta, gamma(k>1) = 0.
  const double theta = 0.4;
  const auto gamma = ArmaAutocovariances({}, {theta}, 3);
  EXPECT_NEAR(gamma[0], 1.0 + theta * theta, 1e-12);
  EXPECT_NEAR(gamma[1], theta, 1e-12);
  EXPECT_NEAR(gamma[2], 0.0, 1e-12);
}

TEST(MleFitTest, MleRefinementRecoversAr1) {
  const auto y = SimulateArma(2000, {0.7}, {}, 8);
  ArimaModel::Options opts;
  opts.method = ArimaModel::Method::kMle;
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0}, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->ar_coefficients()[0], 0.7, 0.05);
}

TEST(MleFitTest, MleAndCssAgreeOnLongSeries) {
  const auto y = SimulateArma(4000, {0.5}, {0.3}, 9);
  ArimaModel::Options mle;
  mle.method = ArimaModel::Method::kMle;
  auto m_mle = ArimaModel::Fit(y, ArimaSpec{1, 0, 1, 0, 0, 0, 0}, mle);
  auto m_css = ArimaModel::Fit(y, ArimaSpec{1, 0, 1, 0, 0, 0, 0});
  ASSERT_TRUE(m_mle.ok());
  ASSERT_TRUE(m_css.ok());
  EXPECT_NEAR(m_mle->ar_coefficients()[0], m_css->ar_coefficients()[0],
              0.05);
  EXPECT_NEAR(m_mle->ma_coefficients()[0], m_css->ma_coefficients()[0],
              0.08);
}

}  // namespace
}  // namespace capplan::models
