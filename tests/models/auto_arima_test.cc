#include "models/auto_arima.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "tsa/metrics.h"

namespace capplan::models {
namespace {

std::vector<double> Ar1(std::size_t n, double phi, double mean,
                        unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(n, mean);
  for (std::size_t t = 1; t < n; ++t) {
    x[t] = mean + phi * (x[t - 1] - mean) + dist(rng);
  }
  return x;
}

TEST(AutoArimaTest, FindsLowOrderForAr1) {
  auto out = AutoArima(Ar1(1500, 0.7, 20.0, 1));
  ASSERT_TRUE(out.ok());
  // The AR(1) structure should be found with a small total order.
  EXPECT_GE(out->spec.p, 1);
  EXPECT_LE(out->spec.p + out->spec.q, 4);
  EXPECT_GT(out->models_evaluated, 3u);
}

TEST(AutoArimaTest, ChoosesDifferencingForRandomWalk) {
  std::mt19937 rng(2);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(800, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t) x[t] = x[t - 1] + dist(rng);
  auto out = AutoArima(x);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->spec.d, 1);
}

TEST(AutoArimaTest, SeasonalSearchFindsSeasonalStructure) {
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> x(24 * 40);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 30.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  AutoArimaOptions opts;
  opts.season = 24;
  auto out = AutoArima(x, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->spec.is_seasonal());
  // The selected model forecasts the pattern well.
  auto fc = out->model.Predict(24);
  ASSERT_TRUE(fc.ok());
  std::vector<double> expected(24);
  for (std::size_t h = 0; h < 24; ++h) {
    expected[h] = 30.0 + 10.0 * std::sin(2.0 * M_PI *
                                         static_cast<double>(x.size() + h) /
                                         24.0);
  }
  auto rmse = tsa::Rmse(expected, fc->mean);
  ASSERT_TRUE(rmse.ok());
  EXPECT_LT(*rmse, 2.0);
}

TEST(AutoArimaTest, EvaluatesFarFewerModelsThanTheGrid) {
  // The point of the stepwise search (paper Section 9's tuning): orders of
  // magnitude fewer fits than the exhaustive 660-model grid.
  auto out = AutoArima(Ar1(1000, 0.5, 0.0, 4));
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->models_evaluated, 80u);
}

TEST(AutoArimaTest, BicOptionSelectsSmallerModel) {
  const auto y = Ar1(2000, 0.6, 0.0, 5);
  AutoArimaOptions aic_opts;
  AutoArimaOptions bic_opts;
  bic_opts.use_bic = true;
  auto aic = AutoArima(y, aic_opts);
  auto bic = AutoArima(y, bic_opts);
  ASSERT_TRUE(aic.ok());
  ASSERT_TRUE(bic.ok());
  EXPECT_LE(bic->spec.NumCoefficients(), aic->spec.NumCoefficients() + 1);
}

TEST(AutoArimaTest, RejectsShortSeries) {
  EXPECT_FALSE(AutoArima(std::vector<double>(10, 1.0)).ok());
}

TEST(AutoArimaTest, CriterionMatchesWinnerSummary) {
  auto out = AutoArima(Ar1(600, 0.4, 5.0, 6));
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->criterion, out->model.summary().aic);
}

}  // namespace
}  // namespace capplan::models
