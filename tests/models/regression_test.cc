#include "models/regression.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "tsa/metrics.h"

namespace capplan::models {
namespace {

TEST(OlsTest, RecoversLineCoefficients) {
  std::vector<double> x(50), y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 3.0 + 2.0 * x[i];
  }
  auto fit = OlsRegression({x}, y);
  ASSERT_TRUE(fit.ok());
  ASSERT_EQ(fit->beta.size(), 2u);
  EXPECT_NEAR(fit->beta[0], 3.0, 1e-9);
  EXPECT_NEAR(fit->beta[1], 2.0, 1e-9);
  EXPECT_NEAR(fit->sse, 0.0, 1e-9);
}

TEST(OlsTest, InterceptOnlyIsMean) {
  auto fit = OlsRegression({}, {1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->beta[0], 2.5, 1e-12);
}

TEST(OlsTest, ResidualsOrthogonalToRegressors) {
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(200), y(200);
  for (std::size_t i = 0; i < 200; ++i) {
    x[i] = dist(rng);
    y[i] = 1.0 + 0.5 * x[i] + dist(rng);
  }
  auto fit = OlsRegression({x}, y);
  ASSERT_TRUE(fit.ok());
  double dot = 0.0;
  for (std::size_t i = 0; i < 200; ++i) dot += fit->residuals[i] * x[i];
  EXPECT_NEAR(dot, 0.0, 1e-8);
}

TEST(OlsTest, RejectsBadShapes) {
  EXPECT_FALSE(OlsRegression({{1.0, 2.0}}, {1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(OlsRegression({}, {}).ok());
  EXPECT_FALSE(OlsRegression({}, {1.0}, /*intercept=*/false).ok());
}

std::vector<double> MakePulse(std::size_t n, std::size_t period,
                              std::size_t phase) {
  std::vector<double> col(n, 0.0);
  for (std::size_t t = phase; t < n; t += period) col[t] = 1.0;
  return col;
}

TEST(SarimaxTest, RecoverShockCoefficient) {
  // AR(1) noise + pulse shocks of magnitude 30 every 24 steps.
  std::mt19937 rng(5);
  std::normal_distribution<double> dist(0.0, 1.0);
  const std::size_t n = 24 * 40;
  std::vector<double> eta(n, 0.0);
  for (std::size_t t = 1; t < n; ++t) {
    eta[t] = 0.5 * eta[t - 1] + dist(rng);
  }
  const auto pulse = MakePulse(n, 24, 0);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 10.0 + 30.0 * pulse[t] + eta[t];
  }
  auto m = SarimaxModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0}, {pulse}, {});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->beta().size(), 2u);
  EXPECT_NEAR(m->beta()[0], 10.0, 0.5);   // intercept
  EXPECT_NEAR(m->beta()[1], 30.0, 1.0);   // shock effect
}

TEST(SarimaxTest, ForecastAppliesFutureShocks) {
  const std::size_t n = 24 * 30;
  const auto pulse = MakePulse(n, 24, 12);
  std::mt19937 rng(7);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 5.0 + 20.0 * pulse[t] + dist(rng);
  }
  auto m = SarimaxModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0}, {pulse}, {});
  ASSERT_TRUE(m.ok());
  // Future window starts at t = n: the pulse fires at (n + h) % 24 == 12.
  std::vector<double> future_pulse(24, 0.0);
  for (std::size_t h = 0; h < 24; ++h) {
    if ((n + h) % 24 == 12) future_pulse[h] = 1.0;
  }
  auto fc = m->Predict(24, {future_pulse});
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 0; h < 24; ++h) {
    const double expected = 5.0 + 20.0 * future_pulse[h];
    EXPECT_NEAR(fc->mean[h], expected, 1.5) << "h=" << h;
  }
}

TEST(SarimaxTest, FourierCapturesSeasonality) {
  std::mt19937 rng(11);
  std::normal_distribution<double> dist(0.0, 0.5);
  const std::size_t n = 24 * 35;
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 40.0 +
           10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  auto m = SarimaxModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0}, {},
                             {{24.0, 2}});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(24, {});
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 0; h < 24; ++h) {
    const double expected =
        40.0 + 10.0 * std::sin(2.0 * M_PI *
                               static_cast<double>(n + h) / 24.0);
    EXPECT_NEAR(fc->mean[h], expected, 1.5) << "h=" << h;
  }
}

TEST(SarimaxTest, CachedFourierFitIsBitwiseIdentical) {
  std::mt19937 rng(17);
  std::normal_distribution<double> dist(0.0, 0.5);
  const std::size_t n = 24 * 35;
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 40.0 +
           10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  const std::vector<tsa::FourierSpec> fourier = {{24.0, 2}};
  const ArimaSpec spec{1, 0, 0, 0, 0, 0, 0};

  tsa::FourierTermCache cache;
  auto plain = SarimaxModel::Fit(y, spec, {}, fourier);
  auto cached = SarimaxModel::Fit(y, spec, {}, fourier, {}, &cache);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cache.misses(), 1u);

  // A second cached fit of another series with the same design hits.
  std::vector<double> y2 = y;
  for (auto& v : y2) v += 1.0;
  auto cached2 = SarimaxModel::Fit(y2, spec, {}, fourier, {}, &cache);
  ASSERT_TRUE(cached2.ok());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // The cache must not change a single bit of the result.
  auto fc_plain = plain->Predict(24, {});
  auto fc_cached = cached->Predict(24, {});
  ASSERT_TRUE(fc_plain.ok());
  ASSERT_TRUE(fc_cached.ok());
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_EQ(fc_plain->mean[h], fc_cached->mean[h]) << h;
    EXPECT_EQ(fc_plain->lower[h], fc_cached->lower[h]) << h;
    EXPECT_EQ(fc_plain->upper[h], fc_cached->upper[h]) << h;
  }
}

TEST(SarimaxTest, MultipleSeasonalityViaTwoFourierSpecs) {
  std::mt19937 rng(13);
  std::normal_distribution<double> dist(0.0, 0.5);
  const std::size_t n = 168 * 8;
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 30.0 +
           6.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           9.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 168.0) +
           dist(rng);
  }
  auto m = SarimaxModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0}, {},
                             {{24.0, 2}, {168.0, 2}});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(48, {});
  ASSERT_TRUE(fc.ok());
  double max_err = 0.0;
  for (std::size_t h = 0; h < 48; ++h) {
    const double expected =
        30.0 + 6.0 * std::sin(2.0 * M_PI * static_cast<double>(n + h) / 24.0) +
        9.0 * std::sin(2.0 * M_PI * static_cast<double>(n + h) / 168.0);
    max_err = std::max(max_err, std::fabs(fc->mean[h] - expected));
  }
  EXPECT_LT(max_err, 2.0);
}

TEST(SarimaxTest, PredictValidatesExogShape) {
  const std::size_t n = 24 * 20;
  const auto pulse = MakePulse(n, 24, 0);
  std::vector<double> y(n, 1.0);
  for (std::size_t t = 0; t < n; ++t) y[t] += pulse[t] + 0.001 * t;
  auto m = SarimaxModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0}, {pulse}, {});
  ASSERT_TRUE(m.ok());
  // Wrong column count.
  EXPECT_FALSE(m->Predict(10, {}).ok());
  // Wrong horizon length.
  EXPECT_FALSE(m->Predict(10, {std::vector<double>(5, 0.0)}).ok());
}

TEST(SarimaxTest, PureArimaPathViaEmptyRegressors) {
  std::mt19937 rng(17);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(600);
  double prev = 0.0;
  for (auto& v : y) {
    prev = 0.6 * prev + dist(rng);
    v = prev + 20.0;
  }
  auto m = SarimaxModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0}, {}, {});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(10, {});
  ASSERT_TRUE(fc.ok());
  EXPECT_NEAR(fc->mean.back(), 20.0, 1.5);
}

TEST(SarimaxTest, IntervalsContainMostOutcomes) {
  // Coverage sanity check: refit on half, verify ~95% of held-out points in
  // the 95% band.
  std::mt19937 rng(19);
  std::normal_distribution<double> dist(0.0, 1.0);
  const std::size_t n = 800;
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 15.0 + dist(rng);
  }
  const std::size_t n_train = n - 100;
  std::vector<double> train(y.begin(), y.begin() + n_train);
  std::vector<double> test(y.begin() + n_train, y.end());
  auto m = SarimaxModel::Fit(train, ArimaSpec{0, 0, 0, 0, 0, 0, 0}, {}, {});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(100, {}, 0.95);
  ASSERT_TRUE(fc.ok());
  int inside = 0;
  for (std::size_t h = 0; h < 100; ++h) {
    if (test[h] >= fc->lower[h] && test[h] <= fc->upper[h]) ++inside;
  }
  EXPECT_GE(inside, 85);
}

}  // namespace
}  // namespace capplan::models
