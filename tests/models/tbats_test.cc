#include "models/tbats.h"

#include <algorithm>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "tsa/metrics.h"

namespace capplan::models {
namespace {

std::vector<double> SeasonalSeries(std::size_t n, double period, double amp,
                                   double base, double slope, double noise,
                                   unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, noise);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = base + slope * static_cast<double>(t) +
           amp * std::sin(2.0 * M_PI * static_cast<double>(t) / period);
    if (noise > 0.0) y[t] += dist(rng);
  }
  return y;
}

TEST(TbatsConfigTest, ToStringAndParamCount) {
  TbatsConfig cfg;
  cfg.use_boxcox = true;
  cfg.use_trend = true;
  cfg.use_damping = true;
  cfg.arma_p = 1;
  cfg.arma_q = 1;
  cfg.seasons = {{24.0, 3}};
  const std::string s = cfg.ToString();
  EXPECT_NE(s.find("boxcox=y"), std::string::npos);
  EXPECT_NE(s.find("24:3"), std::string::npos);
  // alpha + beta + phi + 2*gamma + p + q + lambda = 8.
  EXPECT_EQ(cfg.NumParams(), 8u);
}

TEST(TbatsFitTest, SingleSeasonForecast) {
  const auto y = SeasonalSeries(24 * 20, 24.0, 8.0, 50.0, 0.0, 0.3, 1);
  TbatsConfig cfg;
  cfg.use_trend = false;
  cfg.seasons = {{24.0, 2}};
  auto m = TbatsModel::FitConfig(y, cfg);
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(24);
  ASSERT_TRUE(fc.ok());
  double max_err = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    const double expected =
        50.0 + 8.0 * std::sin(2.0 * M_PI *
                              static_cast<double>(y.size() + h) / 24.0);
    max_err = std::max(max_err, std::fabs(fc->mean[h] - expected));
  }
  EXPECT_LT(max_err, 3.0);
}

TEST(TbatsFitTest, TrendCaptured) {
  const auto y = SeasonalSeries(24 * 15, 24.0, 5.0, 20.0, 0.1, 0.3, 2);
  TbatsConfig cfg;
  cfg.use_trend = true;
  cfg.seasons = {{24.0, 2}};
  auto m = TbatsModel::FitConfig(y, cfg);
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(48);
  ASSERT_TRUE(fc.ok());
  // Forecast should keep growing roughly at the trend rate.
  const double growth = fc->mean[47] - fc->mean[0];
  EXPECT_NEAR(growth, 0.1 * 47.0, 2.5);
}

TEST(TbatsFitTest, NonIntegerPeriodSupported) {
  // TBATS's trigonometric representation handles non-integer seasons, which
  // integer-lag SARIMA cannot (the paper's motivation for TBATS).
  const auto y = SeasonalSeries(500, 24.5, 6.0, 30.0, 0.0, 0.2, 3);
  TbatsConfig cfg;
  cfg.use_trend = false;
  cfg.seasons = {{24.5, 2}};
  auto m = TbatsModel::FitConfig(y, cfg);
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(24);
  ASSERT_TRUE(fc.ok());
  double max_err = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    const double expected =
        30.0 + 6.0 * std::sin(2.0 * M_PI *
                              static_cast<double>(y.size() + h) / 24.5);
    max_err = std::max(max_err, std::fabs(fc->mean[h] - expected));
  }
  EXPECT_LT(max_err, 2.5);
}

TEST(TbatsFitTest, RejectsBadSeasonSpecs) {
  const auto y = SeasonalSeries(100, 10.0, 1.0, 5.0, 0.0, 0.1, 4);
  TbatsConfig cfg;
  cfg.seasons = {{1.0, 1}};
  EXPECT_FALSE(TbatsModel::FitConfig(y, cfg).ok());
  cfg.seasons = {{10.0, 5}};  // 2k >= period
  EXPECT_FALSE(TbatsModel::FitConfig(y, cfg).ok());
  cfg.seasons = {{10.0, 0}};
  EXPECT_FALSE(TbatsModel::FitConfig(y, cfg).ok());
}

TEST(TbatsFitTest, RejectsShortSeries) {
  TbatsConfig cfg;
  EXPECT_FALSE(TbatsModel::FitConfig({1, 2, 3}, cfg).ok());
}

TEST(TbatsLatticeTest, SelectsByAicAndForecastsWell) {
  const auto y = SeasonalSeries(24 * 15, 24.0, 8.0, 60.0, 0.05, 0.4, 5);
  TbatsModel::Options opts;
  opts.max_harmonics = 2;
  opts.try_boxcox = false;  // keep the test fast
  opts.try_damping = false;
  opts.max_fit_iterations = 250;
  auto m = TbatsModel::Fit(y, {24.0}, opts);
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(24);
  ASSERT_TRUE(fc.ok());
  std::vector<double> expected(24);
  for (std::size_t h = 0; h < 24; ++h) {
    const double t = static_cast<double>(y.size() + h);
    expected[h] = 60.0 + 0.05 * t + 8.0 * std::sin(2.0 * M_PI * t / 24.0);
  }
  auto rmse = tsa::Rmse(expected, fc->mean);
  ASSERT_TRUE(rmse.ok());
  EXPECT_LT(*rmse, 3.0);
}

TEST(TbatsPredictTest, IntervalsWidenAndBracketMean) {
  const auto y = SeasonalSeries(24 * 12, 24.0, 5.0, 40.0, 0.0, 0.5, 6);
  TbatsConfig cfg;
  cfg.use_trend = false;
  cfg.seasons = {{24.0, 1}};
  auto m = TbatsModel::FitConfig(y, cfg);
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(30);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 0; h < 30; ++h) {
    EXPECT_LE(fc->lower[h], fc->mean[h]);
    EXPECT_GE(fc->upper[h], fc->mean[h]);
  }
  EXPECT_GT(fc->upper[29] - fc->lower[29], fc->upper[0] - fc->lower[0]);
}

TEST(TbatsPredictTest, UnfittedModelRejected) {
  const auto y = SeasonalSeries(24 * 12, 24.0, 5.0, 40.0, 0.0, 0.5, 7);
  TbatsConfig cfg;
  cfg.seasons = {{24.0, 1}};
  auto m = TbatsModel::FitConfig(y, cfg);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->Predict(0).ok());
}

TEST(TbatsBoxCoxTest, PositiveDataWithBoxCoxStaysPositive) {
  // Multiplicative-looking data: Box-Cox arm should produce positive
  // forecasts with asymmetric intervals.
  std::mt19937 rng(8);
  std::normal_distribution<double> dist(0.0, 0.05);
  std::vector<double> y(24 * 12);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 100.0 * std::exp(0.3 * std::sin(2.0 * M_PI *
                                           static_cast<double>(t) / 24.0) +
                            dist(rng));
  }
  TbatsConfig cfg;
  cfg.use_boxcox = true;
  cfg.use_trend = false;
  cfg.seasons = {{24.0, 2}};
  auto m = TbatsModel::FitConfig(y, cfg);
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(24);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_GE(fc->lower[h], 0.0);
    EXPECT_GT(fc->mean[h], 0.0);
  }
}

}  // namespace
}  // namespace capplan::models
