#include "models/dshw.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "models/ets.h"
#include "tsa/metrics.h"

namespace capplan::models {
namespace {

// Hourly series with daily (24) and weekly (168) additive cycles.
std::vector<double> DualSeasonSeries(std::size_t n, double daily_amp,
                                     double weekly_amp, double slope,
                                     double noise, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, noise);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    y[t] = 100.0 + slope * static_cast<double>(t) +
           daily_amp * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           weekly_amp * std::sin(2.0 * M_PI * static_cast<double>(t) / 168.0);
    if (noise > 0.0) y[t] += dist(rng);
  }
  return y;
}

TEST(DshwTest, ForecastTracksBothSeasons) {
  const auto y = DualSeasonSeries(168 * 8, 8.0, 12.0, 0.0, 0.5, 1);
  auto m = DshwModel::Fit(y, 24, 168);
  ASSERT_TRUE(m.ok()) << m.status();
  auto fc = m->Predict(168);
  ASSERT_TRUE(fc.ok());
  double max_err = 0.0;
  for (std::size_t h = 0; h < 168; ++h) {
    const double t = static_cast<double>(y.size() + h);
    const double expected =
        100.0 + 8.0 * std::sin(2.0 * M_PI * t / 24.0) +
        12.0 * std::sin(2.0 * M_PI * t / 168.0);
    max_err = std::max(max_err, std::fabs(fc->mean[h] - expected));
  }
  EXPECT_LT(max_err, 4.0);
}

TEST(DshwTest, BeatsSingleSeasonHoltWintersOnDualData) {
  // The whole point of the double-seasonal extension (paper challenge C3).
  const auto y = DualSeasonSeries(168 * 8, 6.0, 14.0, 0.0, 0.5, 2);
  const std::size_t n_train = y.size() - 168;
  const std::vector<double> train(y.begin(), y.begin() + n_train);
  const std::vector<double> test(y.begin() + n_train, y.end());

  auto dshw = DshwModel::Fit(train, 24, 168);
  ASSERT_TRUE(dshw.ok());
  auto hw = EtsModel::Fit(train, HoltWinters(24));
  ASSERT_TRUE(hw.ok());

  auto fc_d = dshw->Predict(168);
  auto fc_h = hw->Predict(168);
  ASSERT_TRUE(fc_d.ok());
  ASSERT_TRUE(fc_h.ok());
  auto rmse_d = tsa::Rmse(test, fc_d->mean);
  auto rmse_h = tsa::Rmse(test, fc_h->mean);
  ASSERT_TRUE(rmse_d.ok());
  ASSERT_TRUE(rmse_h.ok());
  EXPECT_LT(*rmse_d, 0.6 * *rmse_h);
}

TEST(DshwTest, TrendExtrapolated) {
  const auto y = DualSeasonSeries(168 * 6, 5.0, 8.0, 0.05, 0.3, 3);
  auto m = DshwModel::Fit(y, 24, 168);
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(192);
  ASSERT_TRUE(fc.ok());
  // Compare the same day-of-week one week apart so both seasonal cycles
  // cancel: the difference is pure trend, ~0.05 * 168.
  double day1 = 0.0, day8 = 0.0;
  for (std::size_t h = 0; h < 24; ++h) day1 += fc->mean[h];
  for (std::size_t h = 168; h < 192; ++h) day8 += fc->mean[h];
  EXPECT_NEAR((day8 - day1) / 24.0, 0.05 * 168.0, 3.0);
}

TEST(DshwTest, ParametersInBounds) {
  const auto y = DualSeasonSeries(168 * 5, 4.0, 6.0, 0.0, 1.0, 4);
  auto m = DshwModel::Fit(y, 24, 168);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->alpha(), 0.0);
  EXPECT_LT(m->alpha(), 1.0);
  EXPECT_GE(m->beta(), 0.0);
  EXPECT_LT(m->beta(), 0.51);
  EXPECT_GT(m->gamma1(), 0.0);
  EXPECT_GT(m->gamma2(), 0.0);
  EXPECT_GT(m->phi(), -1.0);
  EXPECT_LT(m->phi(), 1.0);
}

TEST(DshwTest, ValidatesPeriods) {
  const std::vector<double> y(500, 1.0);
  EXPECT_FALSE(DshwModel::Fit(y, 24, 100).ok());  // not a multiple
  EXPECT_FALSE(DshwModel::Fit(y, 24, 24).ok());   // equal
  EXPECT_FALSE(DshwModel::Fit(y, 1, 24).ok());    // degenerate period1
  // Too short: needs 2*168 + 24 = 360 observations.
  const std::vector<double> short_y(300, 1.0);
  EXPECT_FALSE(DshwModel::Fit(short_y, 24, 168).ok());
}

TEST(DshwTest, PredictValidation) {
  const auto y = DualSeasonSeries(168 * 5, 4.0, 6.0, 0.0, 0.5, 5);
  auto m = DshwModel::Fit(y, 24, 168);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->Predict(0).ok());
  EXPECT_FALSE(m->Predict(5, 1.5).ok());
  DshwModel unfitted;
  EXPECT_FALSE(unfitted.Predict(5).ok());
}

TEST(DshwTest, IntervalsWidenWithHorizon) {
  const auto y = DualSeasonSeries(168 * 6, 5.0, 7.0, 0.0, 1.0, 6);
  auto m = DshwModel::Fit(y, 24, 168);
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(100);
  ASSERT_TRUE(fc.ok());
  EXPECT_GT(fc->upper[99] - fc->lower[99], fc->upper[0] - fc->lower[0]);
}

TEST(DshwTest, FixedParametersPath) {
  const auto y = DualSeasonSeries(168 * 5, 4.0, 6.0, 0.0, 0.5, 7);
  DshwModel::Options opts;
  opts.optimize = false;
  opts.alpha = 0.25;
  opts.ar1_adjustment = false;
  auto m = DshwModel::Fit(y, 24, 168, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->alpha(), 0.25);
  EXPECT_DOUBLE_EQ(m->phi(), 0.0);
}

}  // namespace
}  // namespace capplan::models
