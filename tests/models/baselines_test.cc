#include "models/baselines.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "tsa/metrics.h"

namespace capplan::models {
namespace {

TEST(NaiveForecastTest, RepeatsLastValue) {
  auto fc = NaiveForecast({1, 2, 3, 7}, 5);
  ASSERT_TRUE(fc.ok());
  for (double v : fc->mean) EXPECT_DOUBLE_EQ(v, 7.0);
  // Intervals widen like sqrt(h).
  const double w1 = fc->upper[0] - fc->lower[0];
  const double w4 = fc->upper[3] - fc->lower[3];
  EXPECT_NEAR(w4 / w1, 2.0, 1e-9);
}

TEST(SeasonalNaiveForecastTest, RepeatsLastSeason) {
  // Two seasons of period 3: last season is {4, 5, 6}.
  auto fc = SeasonalNaiveForecast({1, 2, 3, 4, 5, 6}, 3, 6);
  ASSERT_TRUE(fc.ok());
  EXPECT_DOUBLE_EQ(fc->mean[0], 4.0);
  EXPECT_DOUBLE_EQ(fc->mean[1], 5.0);
  EXPECT_DOUBLE_EQ(fc->mean[2], 6.0);
  EXPECT_DOUBLE_EQ(fc->mean[3], 4.0);
  EXPECT_DOUBLE_EQ(fc->mean[5], 6.0);
}

TEST(DriftForecastTest, ExtendsTheLine) {
  // Perfect line: drift forecast continues it exactly.
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) y[i] = 2.0 * static_cast<double>(i);
  auto fc = DriftForecast(y, 3);
  ASSERT_TRUE(fc.ok());
  EXPECT_NEAR(fc->mean[0], 20.0, 1e-9);
  EXPECT_NEAR(fc->mean[2], 24.0, 1e-9);
}

TEST(MeanForecastTest, FlatAtTheMean) {
  auto fc = MeanForecast({2, 4, 6}, 2);
  ASSERT_TRUE(fc.ok());
  EXPECT_DOUBLE_EQ(fc->mean[0], 4.0);
  EXPECT_DOUBLE_EQ(fc->mean[1], 4.0);
}

TEST(BaselineTest, ArgumentValidation) {
  EXPECT_FALSE(NaiveForecast({}, 3).ok());
  EXPECT_FALSE(NaiveForecast({1, 2}, 0).ok());
  EXPECT_FALSE(NaiveForecast({1, 2}, 3, 1.5).ok());
  EXPECT_FALSE(SeasonalNaiveForecast({1, 2}, 5, 3).ok());
  EXPECT_FALSE(DriftForecast({1}, 3).ok());
}

TEST(NaiveScaleTest, KnownValue) {
  // |2-1| + |3-2| + |4-3| = 3 over 3 terms.
  auto s = NaiveScale({1, 2, 3, 4}, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 1.0);
  // Seasonal scale with period 2: |3-1| + |4-2| = 4 over 2.
  auto s2 = NaiveScale({1, 2, 3, 4}, 2);
  ASSERT_TRUE(s2.ok());
  EXPECT_DOUBLE_EQ(*s2, 2.0);
}

TEST(NaiveScaleTest, RejectsDegenerate) {
  EXPECT_FALSE(NaiveScale({1, 2}, 5).ok());
  EXPECT_FALSE(NaiveScale({3, 3, 3}, 1).ok());  // zero scale
}

TEST(MaseTest, ScaledInterpretation) {
  // Forecast MAE 0.5 against naive scale 1.0 -> MASE 0.5 (beats naive).
  auto mase = tsa::Mase({10, 11}, {10.5, 10.5}, 1.0);
  ASSERT_TRUE(mase.ok());
  EXPECT_DOUBLE_EQ(*mase, 0.5);
  EXPECT_FALSE(tsa::Mase({1, 2}, {1, 2}, 0.0).ok());
}

TEST(BaselineComparisonTest, SeasonalNaiveBeatsNaiveOnSeasonalData) {
  std::mt19937 rng(5);
  std::normal_distribution<double> dist(0.0, 0.3);
  std::vector<double> y(24 * 20);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 20.0 + 8.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  const std::size_t n_train = y.size() - 24;
  const std::vector<double> train(y.begin(), y.begin() + n_train);
  const std::vector<double> test(y.begin() + n_train, y.end());
  auto naive = NaiveForecast(train, 24);
  auto snaive = SeasonalNaiveForecast(train, 24, 24);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(snaive.ok());
  auto rmse_naive = tsa::Rmse(test, naive->mean);
  auto rmse_snaive = tsa::Rmse(test, snaive->mean);
  ASSERT_TRUE(rmse_naive.ok());
  ASSERT_TRUE(rmse_snaive.ok());
  EXPECT_LT(*rmse_snaive, 0.3 * *rmse_naive);
}

TEST(BaselineComparisonTest, MaseOfSeasonalNaiveNearOne) {
  // By construction, the seasonal naive forecast has MASE ~ 1 against its
  // own in-sample scale on stationary seasonal data.
  std::mt19937 rng(6);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(24 * 30);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 20.0 + 8.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  const std::size_t n_train = y.size() - 24;
  const std::vector<double> train(y.begin(), y.begin() + n_train);
  const std::vector<double> test(y.begin() + n_train, y.end());
  auto scale = NaiveScale(train, 24);
  auto fc = SeasonalNaiveForecast(train, 24, 24);
  ASSERT_TRUE(scale.ok());
  ASSERT_TRUE(fc.ok());
  auto mase = tsa::Mase(test, fc->mean, *scale);
  ASSERT_TRUE(mase.ok());
  EXPECT_NEAR(*mase, 1.0, 0.4);
}

}  // namespace
}  // namespace capplan::models
