// Parameterized property tests for the ARIMA engine: coefficient recovery
// across the (p, q) plane, forecast/interval invariants, and consistency
// between the psi-weight variance expansion and empirical forecast errors.

#include <cmath>
#include <random>
#include <tuple>

#include <gtest/gtest.h>

#include "math/polynomial.h"
#include "models/arima.h"
#include "tsa/metrics.h"

namespace capplan::models {
namespace {

std::vector<double> SimulateArma(std::size_t n,
                                 const std::vector<double>& phi,
                                 const std::vector<double>& theta,
                                 unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  const std::size_t burn = 300;
  std::vector<double> x(n + burn, 0.0);
  std::vector<double> a(n + burn, 0.0);
  for (std::size_t t = 0; t < n + burn; ++t) {
    a[t] = dist(rng);
    double v = a[t];
    for (std::size_t i = 1; i <= phi.size() && i <= t; ++i) {
      v += phi[i - 1] * x[t - i];
    }
    for (std::size_t j = 1; j <= theta.size() && j <= t; ++j) {
      v += theta[j - 1] * a[t - j];
    }
    x[t] = v;
  }
  return {x.begin() + burn, x.end()};
}

// ---------------------------------------------------------------------
// Coefficient recovery across a sweep of true ARMA processes.

struct RecoveryCase {
  std::vector<double> phi;
  std::vector<double> theta;
  unsigned seed;
};

class ArimaRecoveryTest : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(ArimaRecoveryTest, RecoversTrueCoefficients) {
  const auto& c = GetParam();
  const auto y = SimulateArma(6000, c.phi, c.theta, c.seed);
  const ArimaSpec spec{static_cast<int>(c.phi.size()), 0,
                       static_cast<int>(c.theta.size()), 0, 0, 0, 0};
  auto m = ArimaModel::Fit(y, spec);
  ASSERT_TRUE(m.ok()) << m.status();
  for (std::size_t i = 0; i < c.phi.size(); ++i) {
    EXPECT_NEAR(m->ar_coefficients()[i], c.phi[i], 0.12)
        << "phi[" << i << "]";
  }
  for (std::size_t j = 0; j < c.theta.size(); ++j) {
    EXPECT_NEAR(m->ma_coefficients()[j], c.theta[j], 0.15)
        << "theta[" << j << "]";
  }
  // Innovation variance ~ 1.
  EXPECT_NEAR(m->summary().sigma2, 1.0, 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArimaRecoveryTest,
    ::testing::Values(RecoveryCase{{0.5}, {}, 11},
                      RecoveryCase{{-0.6}, {}, 12},
                      RecoveryCase{{0.9}, {}, 13},
                      RecoveryCase{{0.6, -0.2}, {}, 14},
                      RecoveryCase{{1.2, -0.5}, {}, 15},
                      RecoveryCase{{}, {0.5}, 16},
                      RecoveryCase{{}, {-0.4}, 17},
                      RecoveryCase{{}, {0.5, 0.3}, 18},
                      RecoveryCase{{0.7}, {0.3}, 19},
                      RecoveryCase{{0.4, 0.2}, {0.5}, 20}));

// ---------------------------------------------------------------------
// Forecast invariants across specs.

class ArimaSpecInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ArimaSpecInvariantTest, ForecastWellFormed) {
  const auto [p, d, q] = GetParam();
  const auto y = SimulateArma(800, {0.5}, {0.3}, 42);
  // Integrate d times so differencing has something to do.
  std::vector<double> z = y;
  for (int i = 0; i < d; ++i) {
    double acc = 0.0;
    for (auto& v : z) {
      acc += v;
      v = acc;
    }
  }
  auto m = ArimaModel::Fit(z, ArimaSpec{p, d, q, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok()) << m.status();
  auto fc = m->Predict(12, 0.9);
  ASSERT_TRUE(fc.ok());
  ASSERT_EQ(fc->mean.size(), 12u);
  for (std::size_t h = 0; h < 12; ++h) {
    EXPECT_TRUE(std::isfinite(fc->mean[h]));
    EXPECT_LE(fc->lower[h], fc->mean[h]);
    EXPECT_GE(fc->upper[h], fc->mean[h]);
  }
  // Interval width is non-decreasing.
  for (std::size_t h = 1; h < 12; ++h) {
    EXPECT_GE(fc->upper[h] - fc->lower[h],
              fc->upper[h - 1] - fc->lower[h - 1] - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArimaSpecInvariantTest,
    ::testing::Combine(::testing::Values(0, 1, 3),
                       ::testing::Values(0, 1),
                       ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------
// Psi-weight variance expansion matches empirical forecast error spread.

TEST(ArimaVarianceProperty, PsiExpansionMatchesEmpiricalErrors) {
  // Fit an AR(1) on a long realization, then measure empirical h-step
  // forecast errors over many origins and compare with the model's
  // theoretical interval standard deviation.
  const double phi = 0.7;
  const auto y = SimulateArma(6000, {phi}, {}, 7);
  const std::vector<double> train(y.begin(), y.begin() + 3000);
  auto m = ArimaModel::Fit(train, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  const double est_phi = m->ar_coefficients()[0];
  const double sigma2 = m->summary().sigma2;
  for (std::size_t h : {1u, 3u, 6u}) {
    // Theoretical forecast variance of AR(1): sigma2 * sum phi^{2j}.
    double var = 0.0;
    for (std::size_t j = 0; j < h; ++j) {
      var += std::pow(est_phi, 2.0 * static_cast<double>(j));
    }
    var *= sigma2;
    // Empirical h-step errors using the fitted coefficient.
    double ss = 0.0;
    std::size_t count = 0;
    const double mu = m->mean();
    for (std::size_t t = 3000; t + h < y.size(); t += 7) {
      const double pred =
          mu + std::pow(est_phi, static_cast<double>(h)) * (y[t] - mu);
      const double e = y[t + h] - pred;
      ss += e * e;
      ++count;
    }
    const double empirical = ss / static_cast<double>(count);
    EXPECT_NEAR(empirical / var, 1.0, 0.2) << "h=" << h;
  }
}

// ---------------------------------------------------------------------
// The fitted model's psi-weights agree with the closed form for AR(1).

TEST(ArimaVarianceProperty, PsiWeightsOfFittedModel) {
  const auto y = SimulateArma(4000, {0.6}, {}, 9);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  const auto psi =
      math::PsiWeights(m->ar_coefficients(), m->ma_coefficients(), 6);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_NEAR(psi[j],
                std::pow(m->ar_coefficients()[0],
                         static_cast<double>(j)),
                1e-12);
  }
}

// ---------------------------------------------------------------------
// Seasonal sweep: SARIMA handles several periods.

class SarimaPeriodTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SarimaPeriodTest, TracksSeasonAtAnyPeriod) {
  const std::size_t period = GetParam();
  std::mt19937 rng(static_cast<unsigned>(period));
  std::normal_distribution<double> dist(0.0, 0.4);
  std::vector<double> y(period * 30);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 10.0 +
           4.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                          static_cast<double>(period)) +
           dist(rng);
  }
  auto m = ArimaModel::Fit(
      y, ArimaSpec{0, 0, 0, 0, 1, 1, period});
  ASSERT_TRUE(m.ok()) << m.status();
  auto fc = m->Predict(period);
  ASSERT_TRUE(fc.ok());
  std::vector<double> expected(period);
  for (std::size_t h = 0; h < period; ++h) {
    expected[h] = 10.0 + 4.0 * std::sin(2.0 * M_PI *
                                        static_cast<double>(y.size() + h) /
                                        static_cast<double>(period));
  }
  auto rmse = tsa::Rmse(expected, fc->mean);
  ASSERT_TRUE(rmse.ok());
  EXPECT_LT(*rmse, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Periods, SarimaPeriodTest,
                         ::testing::Values(4, 7, 12, 24, 52));

}  // namespace
}  // namespace capplan::models
