#include "models/arima_spec.h"

#include <gtest/gtest.h>

namespace capplan::models {
namespace {

TEST(ArimaSpecTest, ToStringNonSeasonal) {
  ArimaSpec s{2, 1, 1, 0, 0, 0, 0};
  EXPECT_EQ(s.ToString(), "(2,1,1)");
}

TEST(ArimaSpecTest, ToStringSeasonal) {
  ArimaSpec s{13, 1, 2, 1, 1, 1, 24};
  EXPECT_EQ(s.ToString(), "(13,1,2)(1,1,1,24)");
}

TEST(ArimaSpecTest, NumCoefficients) {
  ArimaSpec s{2, 1, 1, 1, 0, 1, 24};
  EXPECT_EQ(s.NumCoefficients(), 5u);
}

TEST(ArimaSpecTest, SeasonalFlag) {
  EXPECT_TRUE((ArimaSpec{1, 0, 0, 1, 0, 0, 24}).is_seasonal());
  EXPECT_TRUE((ArimaSpec{1, 0, 0, 0, 1, 0, 24}).is_seasonal());
  EXPECT_FALSE((ArimaSpec{1, 0, 0, 0, 0, 0, 0}).is_seasonal());
  // Seasonal period set but no seasonal orders: not seasonal.
  EXPECT_FALSE((ArimaSpec{1, 0, 0, 0, 0, 0, 24}).is_seasonal());
}

TEST(ArimaSpecTest, ValidityRules) {
  EXPECT_TRUE((ArimaSpec{1, 1, 1, 1, 1, 1, 24}).IsValid());
  EXPECT_TRUE((ArimaSpec{0, 0, 0, 0, 0, 0, 0}).IsValid());
  // Negative orders.
  EXPECT_FALSE((ArimaSpec{-1, 0, 0, 0, 0, 0, 0}).IsValid());
  // Too much differencing.
  EXPECT_FALSE((ArimaSpec{1, 2, 1, 0, 2, 0, 24}).IsValid());
  // Seasonal orders without a season.
  EXPECT_FALSE((ArimaSpec{1, 0, 0, 1, 0, 0, 0}).IsValid());
  // Season of one is meaningless.
  EXPECT_FALSE((ArimaSpec{1, 0, 0, 1, 0, 0, 1}).IsValid());
}

TEST(ArimaSpecTest, ParseRoundTripsToString) {
  const ArimaSpec plain{2, 1, 1, 0, 0, 0, 0};
  const ArimaSpec seasonal{13, 1, 2, 1, 1, 1, 24};
  auto p = ParseArimaSpec(plain.ToString());
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(*p, plain);
  auto s = ParseArimaSpec(seasonal.ToString());
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(*s, seasonal);
}

TEST(ArimaSpecTest, ParseIgnoresPipelineDecoration) {
  auto s = ParseArimaSpec("(1,0,1)(0,1,1,24)+FFT+exog(2)");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(*s, (ArimaSpec{1, 0, 1, 0, 1, 1, 24}));
}

TEST(ArimaSpecTest, ParseRejectsNonArimaStrings) {
  // The model store holds free-form spec strings for other families; the
  // warm-hint recovery path must get a clean failure for them.
  EXPECT_FALSE(ParseArimaSpec("HES(alpha=0.2)").ok());
  EXPECT_FALSE(ParseArimaSpec("").ok());
  EXPECT_FALSE(ParseArimaSpec("(1,2)").ok());
  // Parses but is not a valid spec (negative order).
  EXPECT_FALSE(ParseArimaSpec("(-1,0,0)").ok());
}

TEST(ArimaSpecTest, Equality) {
  ArimaSpec a{1, 1, 1, 0, 0, 0, 0};
  ArimaSpec b{1, 1, 1, 0, 0, 0, 0};
  ArimaSpec c{2, 1, 1, 0, 0, 0, 0};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace capplan::models
