#include "models/ets.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "tsa/metrics.h"

namespace capplan::models {
namespace {

TEST(EtsSpecTest, ToStringForms) {
  EXPECT_EQ(SimpleExponentialSmoothing().ToString(), "ETS(A,N,N)");
  EXPECT_EQ(HoltLinearTrend().ToString(), "ETS(A,A,N)");
  EXPECT_EQ(HoltLinearTrend(true).ToString(), "ETS(A,Ad,N)");
  EXPECT_EQ(HoltWinters(24).ToString(), "ETS(A,A,A) m=24");
  EXPECT_EQ(HoltWinters(24, true).ToString(), "ETS(A,A,M) m=24");
}

TEST(EtsSpecTest, Validity) {
  EXPECT_TRUE(SimpleExponentialSmoothing().IsValid());
  EXPECT_FALSE(HoltWinters(1).IsValid());
}

TEST(EtsSpecTest, ParamCounts) {
  EXPECT_EQ(SimpleExponentialSmoothing().NumParams(), 1u);
  EXPECT_EQ(HoltLinearTrend().NumParams(), 2u);
  EXPECT_EQ(HoltLinearTrend(true).NumParams(), 3u);
  EXPECT_EQ(HoltWinters(12).NumParams(), 3u);
}

TEST(SesTest, ForecastIsFlat) {
  std::mt19937 rng(1);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(300);
  for (auto& v : y) v = 25.0 + dist(rng);
  auto m = EtsModel::Fit(y, SimpleExponentialSmoothing());
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(10);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 1; h < 10; ++h) {
    EXPECT_DOUBLE_EQ(fc->mean[h], fc->mean[0]);
  }
  EXPECT_NEAR(fc->mean[0], 25.0, 1.0);
}

TEST(SesTest, TracksLevelShift) {
  std::vector<double> y(200, 10.0);
  for (std::size_t t = 100; t < 200; ++t) y[t] = 30.0;
  auto m = EtsModel::Fit(y, SimpleExponentialSmoothing());
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(5);
  ASSERT_TRUE(fc.ok());
  EXPECT_NEAR(fc->mean[0], 30.0, 1.0);
}

TEST(HoltTest, ExtrapolatesLinearTrend) {
  std::vector<double> y(150);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 5.0 + 0.8 * static_cast<double>(t);
  }
  auto m = EtsModel::Fit(y, HoltLinearTrend());
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(10);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 0; h < 10; ++h) {
    const double expected = 5.0 + 0.8 * static_cast<double>(y.size() + h);
    EXPECT_NEAR(fc->mean[h], expected, 0.5) << "h=" << h;
  }
}

TEST(HoltTest, DampedTrendFlattens) {
  std::vector<double> y(150);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 5.0 + 0.8 * static_cast<double>(t);
  }
  auto damped = EtsModel::Fit(y, HoltLinearTrend(true));
  ASSERT_TRUE(damped.ok());
  auto fc = damped->Predict(100);
  ASSERT_TRUE(fc.ok());
  // Damped growth over long horizons is strictly below the linear line.
  const double linear = 5.0 + 0.8 * static_cast<double>(y.size() + 99);
  EXPECT_LT(fc->mean.back(), linear);
  // Increments shrink with horizon.
  const double inc_early = fc->mean[1] - fc->mean[0];
  const double inc_late = fc->mean[99] - fc->mean[98];
  EXPECT_LT(inc_late, inc_early);
}

TEST(HoltWintersTest, AdditiveSeasonalForecast) {
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(0.0, 0.3);
  const std::size_t m = 24;
  std::vector<double> y(m * 30);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 50.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                                  static_cast<double>(m)) +
           dist(rng);
  }
  auto model = EtsModel::Fit(y, HoltWinters(m));
  ASSERT_TRUE(model.ok());
  auto fc = model->Predict(m);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 0; h < m; ++h) {
    const double expected =
        50.0 + 10.0 * std::sin(2.0 * M_PI *
                               static_cast<double>(y.size() + h) /
                               static_cast<double>(m));
    EXPECT_NEAR(fc->mean[h], expected, 1.5) << "h=" << h;
  }
}

TEST(HoltWintersTest, TrendAndSeasonTogether) {
  const std::size_t m = 12;
  std::vector<double> y(m * 30);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 20.0 + 0.2 * static_cast<double>(t) +
           5.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                          static_cast<double>(m));
  }
  auto model = EtsModel::Fit(y, HoltWinters(m));
  ASSERT_TRUE(model.ok());
  auto fc = model->Predict(2 * m);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 0; h < 2 * m; ++h) {
    const double t = static_cast<double>(y.size() + h);
    const double expected =
        20.0 + 0.2 * t + 5.0 * std::sin(2.0 * M_PI * t /
                                        static_cast<double>(m));
    EXPECT_NEAR(fc->mean[h], expected, 2.0) << "h=" << h;
  }
}

TEST(HoltWintersTest, MultiplicativeHandlesProportionalSeason) {
  const std::size_t m = 12;
  std::vector<double> y(m * 25);
  for (std::size_t t = 0; t < y.size(); ++t) {
    const double level = 100.0 + 0.5 * static_cast<double>(t);
    y[t] = level * (1.0 + 0.3 * std::sin(2.0 * M_PI *
                                         static_cast<double>(t) /
                                         static_cast<double>(m)));
  }
  auto model = EtsModel::Fit(y, HoltWinters(m, /*multiplicative=*/true));
  ASSERT_TRUE(model.ok());
  auto fc = model->Predict(m);
  ASSERT_TRUE(fc.ok());
  auto rmse = tsa::Rmse(
      std::vector<double>(m, 0.0),
      std::vector<double>(m, 0.0));  // placeholder to keep helper used
  (void)rmse;
  for (std::size_t h = 0; h < m; ++h) {
    const double t = static_cast<double>(y.size() + h);
    const double expected =
        (100.0 + 0.5 * t) *
        (1.0 + 0.3 * std::sin(2.0 * M_PI * t / static_cast<double>(m)));
    EXPECT_NEAR(fc->mean[h], expected, 0.12 * expected) << "h=" << h;
  }
}

TEST(EtsFitTest, ParametersStayInBounds) {
  std::mt19937 rng(5);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(200);
  for (auto& v : y) v = dist(rng);
  auto m = EtsModel::Fit(y, HoltLinearTrend(true));
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->alpha(), 0.0);
  EXPECT_LT(m->alpha(), 1.0);
  EXPECT_GE(m->beta(), 0.0);
  EXPECT_LE(m->beta(), m->alpha() + 1e-9);
  EXPECT_GE(m->phi(), 0.8);
  EXPECT_LE(m->phi(), 0.995);
}

TEST(EtsFitTest, FixedParametersRespected) {
  std::vector<double> y(100);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = static_cast<double>(t % 7);
  }
  EtsModel::Options opts;
  opts.optimize = false;
  opts.alpha = 0.42;
  auto m = EtsModel::Fit(y, SimpleExponentialSmoothing(), opts);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->alpha(), 0.42);
}

TEST(EtsFitTest, RejectsShortSeries) {
  EXPECT_FALSE(EtsModel::Fit({1.0, 2.0}, SimpleExponentialSmoothing()).ok());
  EXPECT_FALSE(
      EtsModel::Fit(std::vector<double>(20, 1.0), HoltWinters(24)).ok());
}

TEST(EtsForecastTest, IntervalsWidenWithHorizon) {
  std::mt19937 rng(7);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(300);
  for (auto& v : y) v = 10.0 + dist(rng);
  auto m = EtsModel::Fit(y, SimpleExponentialSmoothing());
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(30);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 1; h < 30; ++h) {
    EXPECT_GE(fc->upper[h] - fc->lower[h],
              fc->upper[h - 1] - fc->lower[h - 1] - 1e-9);
  }
}

TEST(EtsForecastTest, RejectsBadArgs) {
  std::vector<double> y(50, 1.0);
  for (std::size_t t = 0; t < y.size(); ++t) y[t] += 0.01 * t;
  auto m = EtsModel::Fit(y, SimpleExponentialSmoothing());
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->Predict(0).ok());
  EXPECT_FALSE(m->Predict(5, 1.5).ok());
}

TEST(EtsSimulatedIntervalsTest, MatchAnalyticForSes) {
  std::mt19937 rng(21);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(400);
  for (auto& v : y) v = 30.0 + dist(rng);
  auto m = EtsModel::Fit(y, SimpleExponentialSmoothing());
  ASSERT_TRUE(m.ok());
  auto analytic = m->Predict(10, 0.95);
  auto simulated = m->PredictSimulated(10, 0.95, 5000, 7);
  ASSERT_TRUE(analytic.ok());
  ASSERT_TRUE(simulated.ok());
  for (std::size_t h = 0; h < 10; ++h) {
    EXPECT_NEAR(simulated->mean[h], analytic->mean[h], 0.15) << "h=" << h;
    const double w_a = analytic->upper[h] - analytic->lower[h];
    const double w_s = simulated->upper[h] - simulated->lower[h];
    EXPECT_NEAR(w_s / w_a, 1.0, 0.12) << "h=" << h;
  }
}

TEST(EtsSimulatedIntervalsTest, DeterministicForFixedSeed) {
  std::vector<double> y(200);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 10.0 + 0.05 * static_cast<double>(t);
  }
  auto m = EtsModel::Fit(y, HoltLinearTrend());
  ASSERT_TRUE(m.ok());
  auto a = m->PredictSimulated(5, 0.9, 500, 13);
  auto b = m->PredictSimulated(5, 0.9, 500, 13);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t h = 0; h < 5; ++h) {
    EXPECT_DOUBLE_EQ(a->mean[h], b->mean[h]);
    EXPECT_DOUBLE_EQ(a->lower[h], b->lower[h]);
  }
}

TEST(EtsSimulatedIntervalsTest, SeasonalPathsFollowPattern) {
  const std::size_t m = 12;
  std::mt19937 rng(23);
  std::normal_distribution<double> dist(0.0, 0.3);
  std::vector<double> y(m * 25);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 50.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) /
                                  static_cast<double>(m)) +
           dist(rng);
  }
  auto model = EtsModel::Fit(y, HoltWinters(m));
  ASSERT_TRUE(model.ok());
  auto sim = model->PredictSimulated(m, 0.95, 2000, 3);
  ASSERT_TRUE(sim.ok());
  for (std::size_t h = 0; h < m; ++h) {
    const double expected =
        50.0 + 10.0 * std::sin(2.0 * M_PI *
                               static_cast<double>(y.size() + h) /
                               static_cast<double>(m));
    EXPECT_NEAR(sim->mean[h], expected, 1.5) << "h=" << h;
    EXPECT_LT(sim->lower[h], sim->mean[h]);
    EXPECT_GT(sim->upper[h], sim->mean[h]);
  }
}

TEST(EtsSimulatedIntervalsTest, ValidatesArguments) {
  std::vector<double> y(100, 5.0);
  for (std::size_t t = 0; t < y.size(); ++t) y[t] += 0.01 * t;
  auto m = EtsModel::Fit(y, SimpleExponentialSmoothing());
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->PredictSimulated(0).ok());
  EXPECT_FALSE(m->PredictSimulated(5, 0.95, 10).ok());  // too few paths
  EXPECT_FALSE(m->PredictSimulated(5, 2.0).ok());
}

TEST(EtsResidualTest, FittedPlusResidualEqualsObservation) {
  std::mt19937 rng(9);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(150);
  for (auto& v : y) v = 5.0 + dist(rng);
  auto m = EtsModel::Fit(y, HoltLinearTrend());
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->fitted().size(), y.size());
  ASSERT_EQ(m->residuals().size(), y.size());
  for (std::size_t t = 0; t < y.size(); ++t) {
    EXPECT_NEAR(m->fitted()[t] + m->residuals()[t], y[t], 1e-9);
  }
}

}  // namespace
}  // namespace capplan::models
