#include "models/arima.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "math/polynomial.h"
#include "tsa/metrics.h"

namespace capplan::models {
namespace {

std::vector<double> SimulateArma(std::size_t n,
                                 const std::vector<double>& phi,
                                 const std::vector<double>& theta,
                                 double mean, unsigned seed,
                                 double sigma = 1.0) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, sigma);
  const std::size_t burn = 200;
  std::vector<double> x(n + burn, mean);
  std::vector<double> a(n + burn, 0.0);
  for (std::size_t t = 0; t < n + burn; ++t) {
    a[t] = dist(rng);
    double v = mean + a[t];
    for (std::size_t i = 1; i <= phi.size() && i <= t; ++i) {
      v += phi[i - 1] * (x[t - i] - mean);
    }
    for (std::size_t j = 1; j <= theta.size() && j <= t; ++j) {
      v += theta[j - 1] * a[t - j];
    }
    x[t] = v;
  }
  return {x.begin() + burn, x.end()};
}

TEST(ArimaFitTest, RecoverAr1Coefficient) {
  const auto y = SimulateArma(3000, {0.7}, {}, 10.0, 1);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->ar_coefficients().size(), 1u);
  EXPECT_NEAR(m->ar_coefficients()[0], 0.7, 0.05);
  EXPECT_NEAR(m->mean(), 10.0, 0.5);
  EXPECT_NEAR(m->summary().sigma2, 1.0, 0.1);
}

TEST(ArimaFitTest, RecoverAr2Coefficients) {
  const auto y = SimulateArma(4000, {0.5, -0.3}, {}, 0.0, 2);
  auto m = ArimaModel::Fit(y, ArimaSpec{2, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->ar_coefficients()[0], 0.5, 0.05);
  EXPECT_NEAR(m->ar_coefficients()[1], -0.3, 0.05);
}

TEST(ArimaFitTest, RecoverMa1Coefficient) {
  const auto y = SimulateArma(4000, {}, {0.6}, 0.0, 3);
  auto m = ArimaModel::Fit(y, ArimaSpec{0, 0, 1, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->ma_coefficients().size(), 1u);
  EXPECT_NEAR(m->ma_coefficients()[0], 0.6, 0.07);
}

TEST(ArimaFitTest, RecoverArma11) {
  const auto y = SimulateArma(5000, {0.6}, {0.4}, 5.0, 4);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 1, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->ar_coefficients()[0], 0.6, 0.08);
  EXPECT_NEAR(m->ma_coefficients()[0], 0.4, 0.1);
}

TEST(ArimaFitTest, IntegratedSeriesViaD1) {
  // Random walk with AR(1) increments.
  const auto inc = SimulateArma(2000, {0.5}, {}, 0.2, 5);
  std::vector<double> y(inc.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < inc.size(); ++i) {
    acc += inc[i];
    y[i] = acc;
  }
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 1, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->ar_coefficients()[0], 0.5, 0.08);
}

TEST(ArimaFitTest, WhiteNoiseSpecZeroZeroZero) {
  const auto y = SimulateArma(500, {}, {}, 3.0, 6);
  auto m = ArimaModel::Fit(y, ArimaSpec{0, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(5);
  ASSERT_TRUE(fc.ok());
  for (double v : fc->mean) EXPECT_NEAR(v, 3.0, 0.3);
}

TEST(ArimaFitTest, RejectsInvalidSpec) {
  const auto y = SimulateArma(100, {}, {}, 0.0, 7);
  EXPECT_FALSE(ArimaModel::Fit(y, ArimaSpec{-1, 0, 0, 0, 0, 0, 0}).ok());
}

TEST(ArimaFitTest, RejectsTooShortSeries) {
  const auto y = SimulateArma(15, {}, {}, 0.0, 8);
  EXPECT_FALSE(ArimaModel::Fit(y, ArimaSpec{5, 1, 2, 0, 0, 0, 0}).ok());
}

TEST(ArimaFitTest, FittedCoefficientsAlwaysStationaryInvertible) {
  // Even on pathological inputs the stored model must be stable.
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(300);
  double level = 100.0;
  for (auto& v : y) {
    level *= 1.01;  // explosive growth
    v = level + dist(rng);
  }
  auto m = ArimaModel::Fit(y, ArimaSpec{2, 0, 1, 0, 0, 0, 0});
  if (m.ok()) {
    EXPECT_TRUE(math::IsStationary(m->ar_coefficients()));
  }
}

TEST(ArimaForecastTest, Ar1ConvergesToMean) {
  const auto y = SimulateArma(3000, {0.8}, {}, 50.0, 10);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(200);
  ASSERT_TRUE(fc.ok());
  EXPECT_NEAR(fc->mean.back(), 50.0, 2.0);
}

TEST(ArimaForecastTest, IntervalsWidenWithHorizon) {
  const auto y = SimulateArma(1000, {0.5}, {}, 0.0, 11);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(20);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 1; h < 20; ++h) {
    const double w_prev = fc->upper[h - 1] - fc->lower[h - 1];
    const double w_curr = fc->upper[h] - fc->lower[h];
    EXPECT_GE(w_curr, w_prev - 1e-9);
  }
}

TEST(ArimaForecastTest, IntervalWidthMatchesSigmaAtHorizonOne) {
  const auto y = SimulateArma(2000, {}, {}, 0.0, 12);
  auto m = ArimaModel::Fit(y, ArimaSpec{0, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(1, 0.95);
  ASSERT_TRUE(fc.ok());
  const double half = 0.5 * (fc->upper[0] - fc->lower[0]);
  EXPECT_NEAR(half, 1.96 * std::sqrt(m->summary().sigma2), 0.01);
}

TEST(ArimaForecastTest, IntervalLevelsNest) {
  const auto y = SimulateArma(800, {0.4}, {}, 0.0, 13);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  auto fc80 = m->Predict(10, 0.80);
  auto fc99 = m->Predict(10, 0.99);
  ASSERT_TRUE(fc80.ok());
  ASSERT_TRUE(fc99.ok());
  for (std::size_t h = 0; h < 10; ++h) {
    EXPECT_LT(fc99->lower[h], fc80->lower[h]);
    EXPECT_GT(fc99->upper[h], fc80->upper[h]);
  }
}

TEST(ArimaForecastTest, RandomWalkForecastIsFlat) {
  std::mt19937 rng(14);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(1000, 0.0);
  for (std::size_t t = 1; t < y.size(); ++t) y[t] = y[t - 1] + dist(rng);
  auto m = ArimaModel::Fit(y, ArimaSpec{0, 1, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(10);
  ASSERT_TRUE(fc.ok());
  for (double v : fc->mean) EXPECT_NEAR(v, y.back(), 1e-9);
}

TEST(ArimaForecastTest, RejectsBadArgs) {
  const auto y = SimulateArma(300, {0.3}, {}, 0.0, 15);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->Predict(0).ok());
  EXPECT_FALSE(m->Predict(5, 0.0).ok());
  EXPECT_FALSE(m->Predict(5, 1.0).ok());
}

TEST(SarimaTest, SeasonalPatternForecast) {
  // Strong period-12 seasonal series + noise; SARIMA(0,0,0)(0,1,1,12)
  // should track the pattern.
  std::mt19937 rng(16);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> y(12 * 40);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 20.0 + 8.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 12.0) +
           dist(rng);
  }
  auto m = ArimaModel::Fit(y, ArimaSpec{0, 0, 0, 0, 1, 1, 12});
  ASSERT_TRUE(m.ok());
  auto fc = m->Predict(12);
  ASSERT_TRUE(fc.ok());
  for (std::size_t h = 0; h < 12; ++h) {
    const double expected =
        20.0 + 8.0 * std::sin(2.0 * M_PI *
                              static_cast<double>(y.size() + h) / 12.0);
    EXPECT_NEAR(fc->mean[h], expected, 1.2) << "h=" << h;
  }
}

TEST(SarimaTest, SeasonalBeatsNonSeasonalOnSeasonalData) {
  // The paper's core Table-2 observation in miniature.
  std::mt19937 rng(17);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(24 * 45);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 50.0 + 15.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  const std::size_t n_train = y.size() - 24;
  const std::vector<double> train(y.begin(), y.begin() + n_train);
  const std::vector<double> test(y.begin() + n_train, y.end());

  auto plain = ArimaModel::Fit(train, ArimaSpec{2, 1, 1, 0, 0, 0, 0});
  auto seasonal = ArimaModel::Fit(train, ArimaSpec{1, 0, 1, 0, 1, 1, 24});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(seasonal.ok());
  auto fc_plain = plain->Predict(24);
  auto fc_seasonal = seasonal->Predict(24);
  ASSERT_TRUE(fc_plain.ok());
  ASSERT_TRUE(fc_seasonal.ok());
  auto rmse_plain = tsa::Rmse(test, fc_plain->mean);
  auto rmse_seasonal = tsa::Rmse(test, fc_seasonal->mean);
  ASSERT_TRUE(rmse_plain.ok());
  ASSERT_TRUE(rmse_seasonal.ok());
  EXPECT_LT(*rmse_seasonal, *rmse_plain);
}

TEST(ArimaFittedValuesTest, TracksObservations) {
  const auto y = SimulateArma(600, {0.7}, {}, 10.0, 18, 0.3);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  const auto fitted = m->FittedValues();
  ASSERT_EQ(fitted.size(), y.size());
  auto rmse = tsa::Rmse(y, fitted);
  ASSERT_TRUE(rmse.ok());
  EXPECT_LT(*rmse, 0.5);  // close to the innovation scale
}

TEST(ArimaSummaryTest, AicFiniteAndOrdersModels) {
  const auto y = SimulateArma(1500, {0.6}, {}, 0.0, 19);
  auto right = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  auto over = ArimaModel::Fit(y, ArimaSpec{8, 0, 2, 0, 0, 0, 0});
  ASSERT_TRUE(right.ok());
  ASSERT_TRUE(over.ok());
  EXPECT_TRUE(std::isfinite(right->summary().aic));
  // AIC should prefer (or at least not be much worse than) the true order.
  EXPECT_LT(right->summary().aic, over->summary().aic + 5.0);
}

TEST(CssResidualTest, WhiteNoiseResidualsForTrueModel) {
  const auto y = SimulateArma(2000, {0.7}, {}, 0.0, 20);
  auto m = ArimaModel::Fit(y, ArimaSpec{1, 0, 0, 0, 0, 0, 0});
  ASSERT_TRUE(m.ok());
  // Residuals of a correctly specified model are approximately white.
  const auto& res = m->residuals();
  std::vector<double> tail(res.begin() + 10, res.end());
  double mean = 0.0;
  for (double v : tail) mean += v;
  mean /= static_cast<double>(tail.size());
  EXPECT_NEAR(mean, 0.0, 0.1);
  // Lag-1 autocorrelation near zero.
  double num = 0.0, den = 0.0;
  for (std::size_t t = 1; t < tail.size(); ++t) {
    num += (tail[t] - mean) * (tail[t - 1] - mean);
  }
  for (double v : tail) den += (v - mean) * (v - mean);
  EXPECT_LT(std::fabs(num / den), 0.08);
}

}  // namespace
}  // namespace capplan::models
