#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/estate_service.h"
#include "service/shard.h"
#include "workload/scenario.h"

// Chaos scenarios for the sharded estate: a crash with a batched refit
// mid-flight, and a shard-count resize between runs. The invariants under
// test are the scaling guide's promises — key routing is stable across
// restarts, queued-but-unfinished refits re-dispatch exactly once (no
// orphaned queue entries, no duplicate alerts), and a resized layout falls
// back to a full re-poll instead of serving a half-matched segment set.

namespace capplan::service {
namespace {

class ShardChaosTest : public ::testing::Test {};

workload::WorkloadScenario TestScenario(int n_instances) {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = n_instances;
  return scenario;
}

EstateServiceConfig FastConfig(const std::string& name, std::size_t n_shards) {
  EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 2;
  config.warmup_days = 42;
  config.n_shards = n_shards;
  config.state_dir = ::testing::TempDir() + "/shard_chaos_" + name;
  std::filesystem::remove_all(config.state_dir);
  return config;
}

std::vector<WatchConfig> CpuWatches(int n_instances, double threshold) {
  std::vector<WatchConfig> watches;
  for (int i = 0; i < n_instances; ++i) {
    watches.emplace_back(i, workload::Metric::kCpu, threshold);
  }
  return watches;
}

// Crash with batched refits still on the pool: the queued keys were
// in_flight in their shard schedulers and the queue is deliberately not
// persisted, so recovery must re-dispatch every unfinished key exactly once
// — no orphaned queue entries, no key fit twice, no alert raised twice.
TEST_F(ShardChaosTest, KillMidBatchRefitRedispatchesWithoutOrphans) {
  const auto scenario = TestScenario(8);
  workload::ClusterSimulator cluster(scenario, 7);
  // Threshold 0.01: every completed forecast raises a breach alert, which
  // is what makes duplicated refits visible.
  const auto watches = CpuWatches(8, 0.01);
  auto config = FastConfig("midbatch", 4);
  config.refit_batch_size = 4;
  config.snapshot_every_ticks = 0;  // journal-only recovery
  // One pool worker: the batches dispatched by the first tick cannot all
  // finish before that tick's non-blocking collect, so the crash below is
  // guaranteed to land with refits still in flight.
  config.fit_threads = 1;

  std::vector<std::size_t> healthy_routing;
  std::int64_t healthy_now = 0;
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    for (const auto& key : service.keys()) {
      healthy_routing.push_back(service.ShardOfKey(key));
    }
    // The first tick queues all 8 initial fits and hands them to the pool
    // in batches. Crash (scope exit) before any outcome is collected: the
    // batch jobs' results are never applied or journaled.
    ASSERT_TRUE(service.Tick().ok());
    EXPECT_GT(service.in_flight_refits(), 0u);
    EXPECT_EQ(service.RefitQueueDepth(), 0u);
    EXPECT_EQ(service.telemetry().refits_succeeded.value(), 0u);
    healthy_now = service.now();
  }

  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.now(), healthy_now);

  // Consistent hashing: the recovered service routes every key to the same
  // shard the crashed one did.
  const auto& keys = recovered.keys();
  ASSERT_EQ(keys.size(), healthy_routing.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(recovered.ShardOfKey(keys[i]), healthy_routing[i]) << keys[i];
    EXPECT_EQ(recovered.ShardOfKey(keys[i]), ShardOf(keys[i], 4)) << keys[i];
  }

  // The schedule is whole and clean: every key present, nothing stuck
  // in_flight (the crash dropped the dispatch), nothing orphaned on a
  // refit queue.
  EXPECT_EQ(recovered.schedule_size(), keys.size());
  for (const auto& entry : recovered.ScheduleEntries()) {
    EXPECT_FALSE(entry.in_flight) << entry.key;
    EXPECT_FALSE(entry.quarantined) << entry.key;
  }
  EXPECT_EQ(recovered.RefitQueueDepth(), 0u);
  EXPECT_EQ(recovered.in_flight_refits(), 0u);

  // Resuming re-dispatches the lost refits; each succeeds exactly once and
  // each breach alert is raised exactly once.
  ASSERT_TRUE(recovered.Tick().ok());
  ASSERT_TRUE(recovered.DrainRefits().ok());
  EXPECT_EQ(recovered.telemetry().refits_succeeded.value(), keys.size());
  EXPECT_EQ(recovered.RefitQueueDepth(), 0u);
  ASSERT_TRUE(recovered.Tick().ok());  // breach scan over the new forecasts
  EXPECT_EQ(recovered.ActiveAlerts().size(), keys.size());
  EXPECT_EQ(recovered.telemetry().alerts_raised.value(), keys.size());

  // Another cycle must not re-fit fresh models or re-raise live alerts.
  ASSERT_TRUE(recovered.Tick().ok());
  ASSERT_TRUE(recovered.DrainRefits().ok());
  EXPECT_EQ(recovered.telemetry().refits_succeeded.value(), keys.size());
  EXPECT_EQ(recovered.telemetry().alerts_raised.value(), keys.size());
  EXPECT_EQ(recovered.ActiveAlerts().size(), keys.size());
  std::filesystem::remove_all(config.state_dir);
}

// Changing n_shards between runs remaps keys, so the per-shard segment
// directories no longer match their shards' watch sets. Recovery must
// notice (layout check) and fall back to the full re-poll rather than load
// another shard's series — the rebalance rule in docs/scaling.md.
TEST_F(ShardChaosTest, ShardCountResizeFallsBackToFullRepoll) {
  const auto scenario = TestScenario(6);
  workload::ClusterSimulator cluster(scenario, 7);
  const auto watches = CpuWatches(6, 95.0);
  auto config = FastConfig("resize", 2);

  std::int64_t healthy_now = 0;
  std::vector<std::size_t> healthy_sizes;
  std::vector<std::string> all_keys;
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    all_keys = service.keys();
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
    ASSERT_TRUE(service.Checkpoint().ok());
    healthy_now = service.now();
    for (const auto& key : service.keys()) {
      const auto* hourly = service.FindHourly(key);
      ASSERT_NE(hourly, nullptr);
      healthy_sizes.push_back(hourly->size());
    }
  }
  // Every shard that owns keys flushed its own segment directory. Routing
  // is a pure function of (key, n_shards), so the owners are computable
  // without the (destroyed) service.
  for (std::size_t shard = 0; shard < 2; ++shard) {
    bool owns_any = false;
    for (const auto& key : all_keys) {
      owns_any = owns_any || ShardOf(key, 2) == shard;
    }
    if (owns_any) {
      EXPECT_TRUE(std::filesystem::exists(
          config.state_dir + "/shard_" + std::to_string(shard) +
          "/raw.capseg"));
    }
  }

  // Reopen the same state with twice the shards. The old segment layout is
  // unusable for the new partition; the estate state (clock, schedule,
  // registry) still recovers from the journal and the history is re-polled.
  auto resized = config;
  resized.n_shards = 4;
  EstateService recovered(&cluster, watches, resized);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.n_shards(), 4u);
  EXPECT_EQ(recovered.now(), healthy_now);
  EXPECT_EQ(recovered.schedule_size(), watches.size());
  const auto& keys = recovered.keys();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(recovered.ShardOfKey(keys[i]), ShardOf(keys[i], 4));
    const auto* hourly = recovered.FindHourly(keys[i]);
    ASSERT_NE(hourly, nullptr) << keys[i];
    EXPECT_EQ(hourly->size(), healthy_sizes[i]) << keys[i];
  }
  // The resized estate keeps operating, and its next checkpoint writes the
  // new four-directory layout.
  ASSERT_TRUE(recovered.Tick().ok());
  ASSERT_TRUE(recovered.DrainRefits().ok());
  ASSERT_TRUE(recovered.Checkpoint().ok());
  for (std::size_t shard = 0; shard < 4; ++shard) {
    if (!recovered.ShardKeys(shard).empty()) {
      EXPECT_TRUE(std::filesystem::exists(
          config.state_dir + "/shard_" + std::to_string(shard) +
          "/raw.capseg"));
    }
  }
  std::filesystem::remove_all(config.state_dir);
}

}  // namespace
}  // namespace capplan::service
