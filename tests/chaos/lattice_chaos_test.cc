#include <cmath>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/pipeline.h"
#include "service/estate_service.h"
#include "workload/scenario.h"

// Chaos scenarios for the multi-seasonality selection subsystem. The two
// fault sites have deliberately different blast radii:
//
//   * `selector.periods` is absorbed inside the period router — the
//     selection continues on the single-season path at full strength; it
//     must NOT enter the degradation ladder.
//   * `pipeline.tbats` fails the TBATS branch itself — under
//     degrade_on_failure it rides the normal full -> HES -> SES -> naive
//     ladder, like any other branch failure.
//
// Both behaviours must also be replayable across a service kill/Recover.

namespace capplan::service {
namespace {

class LatticeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

tsa::TimeSeries MakeMultiSeasonalSeries(unsigned seed, std::size_t n = 1100) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double td = static_cast<double>(t);
    v[t] = 60.0 + 12.0 * std::sin(2.0 * M_PI * td / 24.0) +
           6.0 * std::sin(2.0 * M_PI * td / 168.0) + dist(rng);
  }
  return tsa::TimeSeries("cdbm011/cpu", 0, tsa::Frequency::kHourly, v);
}

core::PipelineOptions LadderOptions(core::Technique technique) {
  core::PipelineOptions opts;
  opts.technique = technique;
  opts.max_lag = 4;
  opts.n_threads = 4;
  opts.degrade_on_failure = true;
  return opts;
}

void ExpectFiniteForecast(const core::PipelineReport& report) {
  ASSERT_FALSE(report.forecast.mean.empty());
  for (std::size_t h = 0; h < report.forecast.mean.size(); ++h) {
    EXPECT_TRUE(std::isfinite(report.forecast.mean[h])) << "h=" << h;
  }
}

TEST_F(LatticeChaosTest, CleanMultiSeasonalSeriesRoutesBothPeriods) {
  const auto series = MakeMultiSeasonalSeries(1);
  auto report = core::Pipeline(LadderOptions(core::Technique::kSarimaxFftExog))
                    .Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->multiple_seasonality);
  EXPECT_FALSE(report->period_detection_fallback);
  EXPECT_GE(report->seasons.size(), 2u);
  EXPECT_EQ(report->degradation, core::DegradationLevel::kFull);
}

TEST_F(LatticeChaosTest, PeriodsFaultFallsToSingleSeasonNotLadder) {
  const auto series = MakeMultiSeasonalSeries(2);
  ScopedFault fault("selector.periods", FaultPlan::FailForever());
  auto report = core::Pipeline(LadderOptions(core::Technique::kSarimaxFftExog))
                    .Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  // The router absorbed the fault: no detected seasons, single-season
  // selection — but selection itself ran at full strength, so the report is
  // NOT degraded and the ladder was never entered.
  EXPECT_TRUE(report->period_detection_fallback);
  EXPECT_TRUE(report->seasons.empty());
  EXPECT_FALSE(report->multiple_seasonality);
  EXPECT_EQ(report->degradation, core::DegradationLevel::kFull);
  EXPECT_TRUE(report->degradation_reason.empty());
  ExpectFiniteForecast(*report);
}

TEST_F(LatticeChaosTest, TbatsFaultRidesLadderToHesRung) {
  const auto series = MakeMultiSeasonalSeries(3);
  ScopedFault fault("pipeline.tbats", FaultPlan::FailForever());
  auto report =
      core::Pipeline(LadderOptions(core::Technique::kTbats)).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, core::DegradationLevel::kHesOnly);
  EXPECT_EQ(report->chosen_family, core::Technique::kHes);
  EXPECT_FALSE(report->degradation_reason.empty());
  ExpectFiniteForecast(*report);
}

TEST_F(LatticeChaosTest, TbatsHesAndSesFaultsRideLadderToBaseline) {
  const auto series = MakeMultiSeasonalSeries(4);
  ScopedFault tbats("pipeline.tbats", FaultPlan::FailForever());
  ScopedFault hes("pipeline.hes", FaultPlan::FailForever());
  ScopedFault ses("pipeline.ses", FaultPlan::FailForever());
  auto report =
      core::Pipeline(LadderOptions(core::Technique::kTbats)).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, core::DegradationLevel::kBaseline);
  EXPECT_NE(report->chosen_spec.find("naive"), std::string::npos);
  ExpectFiniteForecast(*report);
}

TEST_F(LatticeChaosTest, TbatsFaultLadderOffFailsFast) {
  const auto series = MakeMultiSeasonalSeries(5);
  ScopedFault fault("pipeline.tbats", FaultPlan::FailForever());
  core::PipelineOptions opts = LadderOptions(core::Technique::kTbats);
  opts.degrade_on_failure = false;
  EXPECT_FALSE(core::Pipeline(opts).Run(series).ok());
}

TEST_F(LatticeChaosTest, AutoSelectionSurvivesTbatsFaultWithoutLadder) {
  // Under kAuto the TBATS branch is one competitor among several; its fault
  // just removes it from the race and a healthy family still wins cleanly.
  const auto series = MakeMultiSeasonalSeries(6);
  ScopedFault fault("pipeline.tbats", FaultPlan::FailForever());
  auto report =
      core::Pipeline(LadderOptions(core::Technique::kAuto)).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, core::DegradationLevel::kFull);
  EXPECT_NE(report->chosen_family, core::Technique::kTbats);
  ExpectFiniteForecast(*report);
}

// ---- Service-level replay: both fault behaviours survive kill/Recover. ----

workload::WorkloadScenario TestScenario() {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = 2;
  return scenario;
}

EstateServiceConfig FastConfig() {
  EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 2;
  config.warmup_days = 42;
  return config;
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/lattice_chaos_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST_F(LatticeChaosTest, RoutedPeriodsSurviveSnapshotRecovery) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("periods_snapshot");
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 95.0}};
  std::vector<double> periods_before;
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
    auto model = service.registry().Get(service.keys()[0]);
    ASSERT_TRUE(model.ok());
    periods_before = model->periods;
    EXPECT_FALSE(periods_before.empty());  // daily cycle at minimum
    ASSERT_TRUE(service.Checkpoint().ok());
  }
  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  auto model = recovered.registry().Get(recovered.keys()[0]);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->periods, periods_before);
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(LatticeChaosTest, PeriodsFaultInServiceStaysFullStrengthAcrossRecovery) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("periods_fault");
  config.snapshot_every_ticks = 0;  // journal-only recovery
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 95.0}};
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    FaultInjector::Global().Arm("selector.periods", FaultPlan::FailForever());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
    // The router degraded to the single-season path, not the ladder: the
    // refit is a full-strength success with no routed periods.
    EXPECT_EQ(service.telemetry().refits_succeeded, 1u);
    EXPECT_EQ(service.telemetry().refits_degraded, 0u);
    EXPECT_EQ(service.ForecastDegradation(service.keys()[0]),
              core::DegradationLevel::kFull);
    auto model = service.registry().Get(service.keys()[0]);
    ASSERT_TRUE(model.ok());
    EXPECT_TRUE(model->periods.empty());
    // Crash without checkpoint.
  }
  FaultInjector::Global().Reset();

  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.ForecastDegradation(recovered.keys()[0]),
            core::DegradationLevel::kFull);
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(LatticeChaosTest, TbatsFaultInServiceRidesLadderAcrossRecovery) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("tbats_fault");
  config.snapshot_every_ticks = 0;  // journal-only recovery
  config.pipeline.technique = core::Technique::kTbats;
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 95.0}};
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    // The TBATS branch is down; always_forecast walks the ladder.
    FaultInjector::Global().Arm("pipeline.tbats", FaultPlan::FailForever());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
    EXPECT_EQ(service.telemetry().refits_succeeded, 1u);
    EXPECT_EQ(service.telemetry().refits_degraded, 1u);
    EXPECT_EQ(service.ForecastDegradation(service.keys()[0]),
              core::DegradationLevel::kHesOnly);
    // Crash without checkpoint.
  }
  FaultInjector::Global().Reset();

  // The degradation tag is part of the durable record: recovery restores
  // the ladder outcome, and the next refit (fault gone) climbs back.
  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.ForecastDegradation(recovered.keys()[0]),
            core::DegradationLevel::kHesOnly);
  std::filesystem::remove_all(config.state_dir);
}

}  // namespace
}  // namespace capplan::service
