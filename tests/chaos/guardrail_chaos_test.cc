#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "service/estate_service.h"
#include "workload/scenario.h"

// Chaos scenarios for the forecast guardrails (docs/robustness.md): a
// poisoned refit whose held-out accuracy is ruined must be rejected by the
// promotion gate; a refit that *reports* clean accuracy but serves a ruined
// forecast must be promoted, caught by live scoring, and rolled back to the
// previous champion byte-for-byte within one tick; both outcomes must
// survive a crash (kPromotion/kRollback journal replay); and a drift-alarm
// storm against a series whose refits keep failing must respect the retry
// backoff and quarantine instead of hammering the pool.

namespace capplan::service {
namespace {

constexpr std::int64_t kHour = 3600;
constexpr std::int64_t kDay = 24 * kHour;

class GuardrailChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

workload::WorkloadScenario TestScenario() {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = 1;
  return scenario;
}

EstateServiceConfig FastConfig(const std::string& name) {
  EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 2;
  config.warmup_days = 42;
  config.state_dir = ::testing::TempDir() + "/guardrail_chaos_" + name;
  std::filesystem::remove_all(config.state_dir);
  config.snapshot_every_ticks = 0;  // journal-only recovery
  return config;
}

// A fit that reports clean held-out accuracy but serves a ruined forecast:
// the gate (which can only see the reported numbers) promotes it, live
// scoring catches the regression on the very next scored hour, and the
// rollback restores the previous champion's model AND cached forecast
// byte-equal — then the whole episode replays from the journal.
TEST_F(GuardrailChaosTest, PoisonedForecastRollsBackByteEqualAndReplays) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig("rollback");
  config.staleness.max_age_seconds = 2 * kHour;    // refit due at tick 3
  config.staleness.rmse_degradation_factor = 1e9;  // age-only refits
  config.guardrail.rollback_min_scored = 1;        // one bad hour suffices
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 95.0}};

  std::int64_t champion_fitted_at = 0;
  std::int64_t rollback_now = 0;
  models::Forecast champion_forecast;
  {
    EstateService service(&cluster, watches, config);
    const std::string key = EstateService::KeyFor(cluster, watches[0]);
    ASSERT_TRUE(service.Start().ok());
    ASSERT_TRUE(service.Tick().ok());  // tick 1: champion A installed
    ASSERT_TRUE(service.DrainRefits().ok());
    ASSERT_TRUE(service.Tick().ok());  // tick 2: one hour scored against A
    ASSERT_TRUE(service.DrainRefits().ok());
    auto model = service.registry().Get(key);
    ASSERT_TRUE(model.ok());
    champion_fitted_at = model->fitted_at_epoch;
    auto view = service.View();
    const auto* row = view->Find(key);
    ASSERT_NE(row, nullptr);
    ASSERT_TRUE(row->has_forecast);
    champion_forecast = row->forecast;  // what a rollback must restore

    // Tick 3: the age policy refits; the challenger's reported accuracy is
    // clean but its forecast is garbage, so the gate promotes it.
    {
      ScopedFault poison("pipeline.poison_forecast", FaultPlan::FailForever());
      ASSERT_TRUE(service.Tick().ok());
      ASSERT_TRUE(service.DrainRefits().ok());
    }
    EXPECT_EQ(service.telemetry().promotions, 2u);
    {
      auto promoted = service.registry().Get(key);
      ASSERT_TRUE(promoted.ok());
      EXPECT_EQ(promoted->generation, 2);
      auto poisoned_view = service.View();
      const auto* poisoned = poisoned_view->Find(key);
      ASSERT_NE(poisoned, nullptr);
      ASSERT_FALSE(poisoned->forecast.mean.empty());
      EXPECT_NE(poisoned->forecast.mean[0], champion_forecast.mean[0]);
    }

    // Tick 4: the first hour scored against the poisoned forecast blows the
    // live-MAPE regression gate and the rollback lands in the same tick.
    auto report = service.Tick();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->rollbacks, 1u);
    EXPECT_EQ(service.telemetry().rollbacks, 1u);
    rollback_now = service.now();
    auto restored = service.registry().Get(key);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->generation, 1);
    EXPECT_EQ(restored->fitted_at_epoch, champion_fitted_at);
    auto restored_view = service.View();
    const auto* back = restored_view->Find(key);
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->forecast.mean, champion_forecast.mean);
    EXPECT_EQ(back->forecast.lower, champion_forecast.lower);
    EXPECT_EQ(back->forecast.upper, champion_forecast.upper);
    // Crash here: the kRollback event is the journal tail.
  }

  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  const std::string key = recovered.keys()[0];
  EXPECT_EQ(recovered.now(), rollback_now);
  auto model = recovered.registry().Get(key);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->generation, 1);
  EXPECT_EQ(model->fitted_at_epoch, champion_fitted_at);
  auto view = recovered.View();
  const auto* row = view->Find(key);
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(row->has_forecast);
  EXPECT_EQ(row->forecast.mean, champion_forecast.mean);
  EXPECT_EQ(row->forecast.lower, champion_forecast.lower);
  EXPECT_EQ(row->forecast.upper, champion_forecast.upper);
  // The rollback pulled the replacement refit forward; the recovered
  // schedule keeps that urgency and the estate resumes cleanly.
  auto entry = recovered.ScheduleFor(key);
  ASSERT_TRUE(entry.ok());
  EXPECT_LE(entry->due_epoch, recovered.now() + config.tick_seconds);
  ASSERT_TRUE(recovered.Tick().ok());
  ASSERT_TRUE(recovered.DrainRefits().ok());
  std::filesystem::remove_all(config.state_dir);
}

// A challenger with ruined held-out accuracy is rejected at the gate; the
// champion is retained, the key reschedules, and the rejection (a kPromotion
// journal event) replays across a crash so the recovered schedule matches.
TEST_F(GuardrailChaosTest, RejectedChallengerSurvivesRecovery) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig("reject");
  config.staleness.max_age_seconds = 4 * kHour;  // refit due at tick 5
  config.staleness.rmse_degradation_factor = 1e9;
  config.guardrail.promotion_min_scored = 2;
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 95.0}};

  std::int64_t champion_fitted_at = 0;
  std::int64_t rescheduled_due = 0;
  std::int64_t crash_now = 0;
  {
    EstateService service(&cluster, watches, config);
    const std::string key = EstateService::KeyFor(cluster, watches[0]);
    ASSERT_TRUE(service.Start().ok());
    // Tick 1 installs the champion; ticks 2-4 accumulate scored hours so
    // the gate has live evidence when the age-policy refit lands at tick 5.
    for (int tick = 1; tick <= 4; ++tick) {
      ASSERT_TRUE(service.Tick().ok());
      ASSERT_TRUE(service.DrainRefits().ok());
    }
    auto model = service.registry().Get(key);
    ASSERT_TRUE(model.ok());
    champion_fitted_at = model->fitted_at_epoch;
    {
      ScopedFault poison("pipeline.poison_fit", FaultPlan::FailForever());
      ASSERT_TRUE(service.Tick().ok());  // tick 5: gate rejects
      ASSERT_TRUE(service.DrainRefits().ok());
    }
    EXPECT_EQ(service.telemetry().promotions_rejected, 1u);
    EXPECT_EQ(service.telemetry().promotions, 1u);
    auto entry = service.ScheduleFor(key);
    ASSERT_TRUE(entry.ok());
    rescheduled_due = entry->due_epoch;
    EXPECT_GT(rescheduled_due, service.now());
    crash_now = service.now();
  }

  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  const std::string key = recovered.keys()[0];
  EXPECT_EQ(recovered.now(), crash_now);
  auto model = recovered.registry().Get(key);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->fitted_at_epoch, champion_fitted_at);  // champion kept
  EXPECT_EQ(model->generation, 1);
  auto entry = recovered.ScheduleFor(key);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->due_epoch, rescheduled_due);  // kPromotion replayed
  std::filesystem::remove_all(config.state_dir);
}

// Drift-alarm storm discipline: a champion serving a garbage forecast keeps
// tripping the Page-Hinkley detector, but the refits it pulls forward all
// fail — the retry ladder's backoff and quarantine must bound the damage to
// exactly the failures the ladder allows, no matter how many alarms fire.
TEST_F(GuardrailChaosTest, DriftStormRespectsBackoffAndQuarantine) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig("storm");
  config.staleness.max_age_seconds = 30 * kDay;    // age never triggers here
  config.staleness.rmse_degradation_factor = 1e9;  // nor live degradation
  // No degradation ladder: a dead refit worker is an outright failure that
  // the retry ladder (backoff, then quarantine) has to absorb.
  config.always_forecast = false;
  config.retry.initial_backoff_seconds = kHour;
  config.retry.backoff_multiplier = 1.0;
  config.retry.quarantine_after_failures = 2;
  // A hair-trigger detector: any sustained error shift alarms within a
  // couple of scored hours (and re-alarms after its auto-reset).
  config.guardrail.tracker.drift.delta = 0.0;
  config.guardrail.tracker.drift.threshold = 0.01;
  config.guardrail.tracker.drift.min_samples = 2;
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 95.0}};

  EstateService service(&cluster, watches, config);
  const std::string key = EstateService::KeyFor(cluster, watches[0]);
  ASSERT_TRUE(service.Start().ok());
  // The initial fit "succeeds" with a garbage forecast: every hour scored
  // from now on is wildly wrong, so the detector alarms again and again.
  {
    ScopedFault poison("pipeline.poison_forecast", FaultPlan::FailForever());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
  }
  ASSERT_EQ(service.telemetry().refits_succeeded, 1u);

  // Every replacement refit the alarms pull forward dies on the pool.
  FaultInjector::Global().Arm("pipeline.run", FaultPlan::FailForever());
  for (int tick = 2; tick <= 12; ++tick) {
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
  }

  const auto& shard = service.telemetry().shards[0];
  // The storm raged: multiple alarms across the run...
  EXPECT_GE(shard.guardrail_drift_alarms.value(), 2u);
  // ...but only the first could pull a refit forward. While the key was
  // backing off or quarantined the alarms were absorbed.
  EXPECT_EQ(shard.guardrail_early_refits.value(), 1u);
  EXPECT_LT(shard.guardrail_early_refits.value(),
            shard.guardrail_drift_alarms.value());
  // The ladder allowed exactly two failing dispatches (initial + one retry)
  // before quarantine; eleven ticks of alarms added nothing more.
  EXPECT_EQ(service.telemetry().refits_failed, 2u);
  EXPECT_EQ(service.telemetry().refits_dispatched, 3u);
  EXPECT_EQ(service.telemetry().quarantines, 1u);
  EXPECT_TRUE(service.IsQuarantined(key));
  std::filesystem::remove_all(config.state_dir);
}

}  // namespace
}  // namespace capplan::service
