#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "core/pipeline.h"
#include "quality/sentinel.h"

// Degradation-ladder tests: fault sites force each selection stage to fail,
// and the ladder must hand back a tagged, finite forecast from the next rung
// down — the "every instance always has a forecast" property.

namespace capplan::core {
namespace {

class LadderTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

tsa::TimeSeries MakeHourlySeries(unsigned seed, std::size_t n = 1100) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (std::size_t t = 0; t < n; ++t) {
    v[t] = 60.0 + 15.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  return tsa::TimeSeries("cdbm011/cpu", 0, tsa::Frequency::kHourly, v);
}

PipelineOptions LadderOptions(Technique technique) {
  PipelineOptions opts;
  opts.technique = technique;
  opts.max_lag = 4;
  opts.n_threads = 4;
  opts.degrade_on_failure = true;
  return opts;
}

void ExpectFiniteForecast(const PipelineReport& report) {
  ASSERT_FALSE(report.forecast.mean.empty());
  for (std::size_t h = 0; h < report.forecast.mean.size(); ++h) {
    EXPECT_TRUE(std::isfinite(report.forecast.mean[h])) << "h=" << h;
    EXPECT_TRUE(std::isfinite(report.forecast.lower[h])) << "h=" << h;
    EXPECT_TRUE(std::isfinite(report.forecast.upper[h])) << "h=" << h;
  }
}

TEST_F(LadderTest, CleanSeriesStaysOnFullRung) {
  const auto series = MakeHourlySeries(1);
  auto report = Pipeline(LadderOptions(Technique::kSarimax)).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, DegradationLevel::kFull);
  EXPECT_TRUE(report->degradation_reason.empty());
}

// The acceptance invariant: enabling every robustness feature (sentinel
// repair, ladder, generous fit deadline) must not change what the selector
// picks on a clean series.
TEST_F(LadderTest, RobustnessFeaturesAreNoOpOnCleanSeries) {
  const auto series = MakeHourlySeries(2);

  PipelineOptions vanilla;
  vanilla.technique = Technique::kSarimax;
  vanilla.max_lag = 4;
  vanilla.n_threads = 4;
  auto baseline = Pipeline(vanilla).Run(series);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  quality::DataQualitySentinel sentinel;
  quality::QualityReport quality;
  auto repaired = sentinel.Repair(series, &quality);
  ASSERT_TRUE(repaired.ok());
  EXPECT_TRUE(quality.trainable);

  PipelineOptions robust = vanilla;
  robust.degrade_on_failure = true;
  robust.fit_time_budget_seconds = 3600.0;
  auto guarded = Pipeline(robust).Run(*repaired);
  ASSERT_TRUE(guarded.ok()) << guarded.status();

  EXPECT_EQ(guarded->degradation, DegradationLevel::kFull);
  EXPECT_EQ(guarded->chosen_spec, baseline->chosen_spec);
  EXPECT_DOUBLE_EQ(guarded->test_accuracy.rmse, baseline->test_accuracy.rmse);
}

TEST_F(LadderTest, SelectionFailureFallsToHesRung) {
  const auto series = MakeHourlySeries(3);
  // The first Run attempt (the full selection) dies; the HES rung's own
  // selection pass is the second call at the site and goes through.
  ScopedFault fault("pipeline.run", FaultPlan::FailN(1));
  auto report = Pipeline(LadderOptions(Technique::kSarimax)).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, DegradationLevel::kHesOnly);
  EXPECT_EQ(report->chosen_family, Technique::kHes);
  EXPECT_FALSE(report->degradation_reason.empty());
  ExpectFiniteForecast(*report);
}

TEST_F(LadderTest, GridFailureFallsToHesRung) {
  const auto series = MakeHourlySeries(4);
  ScopedFault fault("selector.grid", FaultPlan::FailForever());
  auto report = Pipeline(LadderOptions(Technique::kSarimax)).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, DegradationLevel::kHesOnly);
  ExpectFiniteForecast(*report);
}

TEST_F(LadderTest, HesFailureFallsToSesRung) {
  const auto series = MakeHourlySeries(5);
  ScopedFault grid("selector.grid", FaultPlan::FailForever());
  ScopedFault hes("pipeline.hes", FaultPlan::FailForever());
  auto report = Pipeline(LadderOptions(Technique::kSarimax)).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, DegradationLevel::kSes);
  EXPECT_NE(report->chosen_spec.find("SES"), std::string::npos);
  ExpectFiniteForecast(*report);
}

TEST_F(LadderTest, SesFailureFallsToBaselineRung) {
  const auto series = MakeHourlySeries(6);
  ScopedFault grid("selector.grid", FaultPlan::FailForever());
  ScopedFault hes("pipeline.hes", FaultPlan::FailForever());
  ScopedFault ses("pipeline.ses", FaultPlan::FailForever());
  auto report = Pipeline(LadderOptions(Technique::kSarimax)).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, DegradationLevel::kBaseline);
  EXPECT_NE(report->chosen_spec.find("naive"), std::string::npos);
  ExpectFiniteForecast(*report);
  // The seasonal-naive floor still carries the daily pattern.
  double max_err = 0.0;
  for (std::size_t h = 0; h < std::min<std::size_t>(24,
                                  report->forecast.mean.size()); ++h) {
    const double t = static_cast<double>(series.size() + h);
    const double expected = 60.0 + 15.0 * std::sin(2.0 * M_PI * t / 24.0);
    max_err = std::max(max_err,
                       std::fabs(report->forecast.mean[h] - expected));
  }
  EXPECT_LT(max_err, 10.0);
}

TEST_F(LadderTest, LadderOffFailsFast) {
  const auto series = MakeHourlySeries(7);
  ScopedFault fault("pipeline.run", FaultPlan::FailN(1));
  PipelineOptions opts = LadderOptions(Technique::kSarimax);
  opts.degrade_on_failure = false;
  EXPECT_FALSE(Pipeline(opts).Run(series).ok());
}

TEST_F(LadderTest, ExhaustedLadderReportsCause) {
  // No finite observation defeats every rung; the error names the original
  // selection failure.
  tsa::TimeSeries empty("dead/cpu", 0, tsa::Frequency::kHourly,
                        std::vector<double>(1100, std::nan("")));
  auto report = Pipeline(LadderOptions(Technique::kSarimax)).Run(empty);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("ladder"), std::string::npos);
}

TEST_F(LadderTest, ExpiredFitDeadlineDegradesToHes) {
  const auto series = MakeHourlySeries(8);
  PipelineOptions opts = LadderOptions(Technique::kSarimax);
  opts.fit_time_budget_seconds = 1e-9;  // expires before the first candidate
  auto report = Pipeline(opts).Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->degradation, DegradationLevel::kHesOnly);
  ExpectFiniteForecast(*report);
}

TEST_F(LadderTest, GenerousDeadlineSelectsIdentically) {
  const auto series = MakeHourlySeries(9);
  PipelineOptions no_budget = LadderOptions(Technique::kSarimax);
  PipelineOptions budgeted = LadderOptions(Technique::kSarimax);
  budgeted.fit_time_budget_seconds = 3600.0;
  auto a = Pipeline(no_budget).Run(series);
  auto b = Pipeline(budgeted).Run(series);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->degradation, DegradationLevel::kFull);
  EXPECT_EQ(b->degradation, DegradationLevel::kFull);
  EXPECT_EQ(a->chosen_spec, b->chosen_spec);
  EXPECT_DOUBLE_EQ(a->test_accuracy.rmse, b->test_accuracy.rmse);
}

TEST_F(LadderTest, DegradationLevelNamesStable) {
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kFull), "full");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kHesOnly), "hes");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kSes), "ses");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kBaseline), "baseline");
}

}  // namespace
}  // namespace capplan::core
