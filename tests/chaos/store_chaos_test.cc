#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "service/estate_service.h"
#include "workload/scenario.h"

// Chaos scenarios for the tiered store underneath the estate daemon: the
// segment flush dying mid-snapshot, the reopen path dying mid-recovery, and
// bit rot inside a sealed block on disk. In every case the service must keep
// serving and recover to the same estate state it would have reached on a
// healthy disk.

namespace capplan::service {
namespace {

class StoreChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

workload::WorkloadScenario TestScenario() {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = 2;
  return scenario;
}

EstateServiceConfig FastConfig(const std::string& name) {
  EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 2;
  config.warmup_days = 42;
  config.state_dir = ::testing::TempDir() + "/store_chaos_" + name;
  std::filesystem::remove_all(config.state_dir);
  return config;
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.is_open()) << path;
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

TEST_F(StoreChaosTest, SegmentFlushFaultAbsorbedAndRetriedNextSnapshot) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig("flush");
  config.snapshot_every_ticks = 1;
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  ASSERT_TRUE(service.Start().ok());

  // The segment flush dies once: the snapshot fails, the tick does not.
  FaultInjector::Global().Arm("store.flush", FaultPlan::FailN(1));
  ASSERT_TRUE(service.Tick().ok());
  EXPECT_EQ(service.telemetry().snapshot_failures, 1u);
  EXPECT_EQ(service.telemetry().snapshots_written, 0u);
  EXPECT_EQ(FaultInjector::Global().FireCount("store.flush"), 1u);

  // The disk heals; the next snapshot interval retries and lands both
  // segment files.
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().snapshots_written, 1u);
  EXPECT_TRUE(
      std::filesystem::exists(config.state_dir + "/shard_0/raw.capseg"));
  EXPECT_TRUE(
      std::filesystem::exists(config.state_dir + "/shard_0/hourly.capseg"));
  ASSERT_TRUE(service.Checkpoint().ok());

  // Recovery restarts from the retried snapshot.
  EstateService recovered(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                          config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.now(), service.now());
  const std::string& key = service.keys()[0];
  ASSERT_NE(recovered.FindHourly(key), nullptr);
  EXPECT_EQ(recovered.FindHourly(key)->size(),
            service.FindHourly(key)->size());
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(StoreChaosTest, ReopenFaultFallsBackToFullRepoll) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig("reopen");
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  ASSERT_TRUE(service.Checkpoint().ok());
  const std::string& key = service.keys()[0];
  const auto* healthy = service.FindHourly(key);
  ASSERT_NE(healthy, nullptr);
  const std::size_t healthy_size = healthy->size();
  const double healthy_last = (*healthy)[healthy_size - 1];

  // The segment reopen dies during recovery. Recovery must not fail: it
  // falls back to the full re-poll and reconstructs the identical estate.
  FaultInjector::Global().Arm("store.reopen", FaultPlan::FailN(1));
  EstateService recovered(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                          config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(FaultInjector::Global().FireCount("store.reopen"), 1u);
  EXPECT_EQ(recovered.now(), service.now());
  const auto* repolled = recovered.FindHourly(key);
  ASSERT_NE(repolled, nullptr);
  ASSERT_EQ(repolled->size(), healthy_size);
  EXPECT_DOUBLE_EQ((*repolled)[healthy_size - 1], healthy_last);
  // The re-polled estate keeps ticking.
  ASSERT_TRUE(recovered.Tick().ok());
  ASSERT_TRUE(recovered.DrainRefits().ok());
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(StoreChaosTest, CorruptSealedBlockQuarantinedWithoutSpreading) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig("bitrot");
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  ASSERT_TRUE(service.Checkpoint().ok());
  const std::string& key = service.keys()[0];
  const std::size_t hourly_size = service.FindHourly(key)->size();

  // Bit rot inside the first sealed block of raw.capseg. Walk the record
  // header (magic, meta_len, meta, meta_crc, payload_len) to land the flip
  // squarely in the compressed payload.
  const std::string raw_path = config.state_dir + "/shard_0/raw.capseg";
  std::vector<std::uint8_t> bytes = ReadFileBytes(raw_path);
  std::uint32_t meta_len = 0;
  for (int i = 0; i < 4; ++i) {
    meta_len |= static_cast<std::uint32_t>(bytes[12 + i]) << (8 * i);
  }
  const std::size_t payload_begin = 8 + 4 + 4 + meta_len + 4 + 4;
  ASSERT_LT(payload_begin + 6, bytes.size());
  bytes[payload_begin + 6] ^= 0x10;
  {
    std::ofstream f(raw_path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(f.is_open());
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }

  // Recovery still uses the segments: only the damaged block is
  // quarantined (its samples read back as NaN); every neighbouring block,
  // the hot tail and the entire hourly tier are untouched.
  EstateService recovered(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                          config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.metrics_for(key).raw_store().stats().blocks_quarantined,
            1u);
  EXPECT_EQ(
      recovered.metrics_for(key).hourly_store().stats().blocks_quarantined,
      0u);

  auto raw = recovered.metrics_for(key).Raw(key);
  ASSERT_TRUE(raw.ok());
  std::size_t nans = 0;
  for (std::size_t i = 0; i < raw->size(); ++i) {
    if (std::isnan((*raw)[i])) ++nans;
  }
  EXPECT_GT(nans, 0u);
  EXPECT_LE(nans, 512u);  // at most one seal_threshold run lost

  // The hourly tier — what the models actually read — is bit-for-bit the
  // healthy series, and the service keeps operating on it.
  const auto* hourly = recovered.FindHourly(key);
  ASSERT_NE(hourly, nullptr);
  ASSERT_EQ(hourly->size(), hourly_size);
  const auto* want = service.FindHourly(key);
  for (std::size_t i = 0; i < hourly_size; ++i) {
    ASSERT_DOUBLE_EQ((*hourly)[i], (*want)[i]) << i;
  }
  ASSERT_TRUE(recovered.Tick().ok());
  ASSERT_TRUE(recovered.DrainRefits().ok());
  std::filesystem::remove_all(config.state_dir);
}

}  // namespace
}  // namespace capplan::service
