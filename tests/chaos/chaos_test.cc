#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "obs/trace.h"
#include "service/estate_service.h"
#include "workload/scenario.h"

// Chaos scenarios: deterministic faults injected into the estate daemon's
// I/O and fit paths, with assertions on the recovery invariants — the clock
// keeps ticking, journals replay cleanly, alerts are not duplicated, and
// degraded forecasts are flagged as such.

namespace capplan::service {
namespace {

constexpr std::int64_t kHour = 3600;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

workload::WorkloadScenario TestScenario() {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = 2;
  return scenario;
}

EstateServiceConfig FastConfig() {
  EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 2;
  config.warmup_days = 42;
  return config;
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/chaos_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST_F(ChaosTest, AgentOutageMidWindowThenCatchUp) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        FastConfig());
  ASSERT_TRUE(service.Start().ok());

  // The whole monitoring plane goes dark for one poll cycle.
  FaultInjector::Global().Arm("agent.collect", FaultPlan::FailN(1));
  EXPECT_FALSE(service.Tick().ok());

  // The outage tick served nothing, but the next tick backfills the whole
  // un-ingested window: no sample is lost.
  auto report = service.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->samples_ingested, 8u);  // two hours of 15-min polls
  ASSERT_TRUE(service.DrainRefits().ok());
  const std::string& key = service.keys()[0];
  EXPECT_EQ(service.FindHourly(key)->size(), 1010u);
  EXPECT_EQ(service.telemetry().refits_succeeded, 1u);
}

TEST_F(ChaosTest, DiskErrorDuringSnapshotIsAbsorbed) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("snapshot_disk");
  config.snapshot_every_ticks = 1;
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  ASSERT_TRUE(service.Start().ok());

  FaultInjector::Global().Arm("csv.write", FaultPlan::FailN(1));
  auto report = service.Tick();  // snapshot write dies; the tick does not
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(service.telemetry().snapshot_failures, 1u);
  EXPECT_GE(service.telemetry().io_errors, 1u);
  EXPECT_EQ(service.telemetry().snapshots_written, 0u);

  // The disk heals; the next snapshot lands and recovery works off it.
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().snapshots_written, 1u);
  ASSERT_TRUE(service.Checkpoint().ok());

  EstateService recovered(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                          config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.now(), service.now());
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(ChaosTest, ExplicitCheckpointPropagatesDiskError) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("checkpoint_disk");
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());

  FaultInjector::Global().Arm("csv.write", FaultPlan::FailN(1));
  EXPECT_FALSE(service.Checkpoint().ok());  // the caller asked for durability
  EXPECT_EQ(service.telemetry().snapshot_failures, 1u);
  ASSERT_TRUE(service.Checkpoint().ok());  // site exhausted: disk healed
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(ChaosTest, PoisonedMetricStillYieldsFiniteForecast) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 0.01}},
                        FastConfig());
  // A handful of corrupted readings (1e12 "CPU%") land in the warmup data.
  FaultInjector::Global().Arm("agent.poison",
                              FaultPlan::FailAfter(100, 3));
  ASSERT_TRUE(service.Start().ok());
  FaultInjector::Global().Disarm("agent.poison");
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());

  // The refit completed (full rung or a ladder rung — never a hole) and the
  // cached forecast is finite despite the garbage in the window.
  const std::string& key = service.keys()[0];
  EXPECT_EQ(service.telemetry().refits_succeeded +
                service.telemetry().refits_failed,
            1u);
  EXPECT_EQ(service.telemetry().refits_succeeded, 1u);
  ASSERT_TRUE(service.quality_reports().count(key) > 0);
  auto tick2 = service.Tick();  // alert scan over the cached forecast
  ASSERT_TRUE(tick2.ok());
  EXPECT_GE(service.telemetry().forecast_cache_hits, 1u);
}

TEST_F(ChaosTest, QuarantineStormAndRecovery) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.always_forecast = false;  // no ladder: every fit failure is real
  config.retry.initial_backoff_seconds = kHour;
  config.retry.backoff_multiplier = 1.0;
  config.retry.quarantine_after_failures = 2;
  EstateService service(
      &cluster,
      {{0, workload::Metric::kCpu, 95.0}, {1, workload::Metric::kCpu, 95.0}},
      config);
  ASSERT_TRUE(service.Start().ok());

  // Every refit worker dies on arrival: an estate-wide fitter outage.
  FaultInjector::Global().Arm("pipeline.run", FaultPlan::FailForever());
  for (int tick = 1; tick <= 3; ++tick) {
    ASSERT_TRUE(service.Tick().ok());  // the clock never stops
    ASSERT_TRUE(service.DrainRefits().ok());
  }
  EXPECT_EQ(service.telemetry().refits_failed, 4u);  // 2 keys x 2 attempts
  EXPECT_EQ(service.telemetry().quarantines, 2u);
  for (const auto& key : service.keys()) {
    EXPECT_TRUE(service.IsQuarantined(key));
  }

  // Fitters come back; released keys refit on the next tick.
  FaultInjector::Global().Reset();
  for (const auto& key : service.keys()) {
    ASSERT_TRUE(service.ReleaseQuarantine(key).ok());
  }
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().refits_succeeded, 2u);
  for (const auto& key : service.keys()) {
    EXPECT_TRUE(service.registry().Contains(key));
  }
}

TEST_F(ChaosTest, JournalWriteFailuresCountedNotFatal) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("journal_fail");
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  ASSERT_TRUE(service.Start().ok());

  FaultInjector::Global().Arm("journal.append", FaultPlan::FailN(2));
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  ASSERT_TRUE(service.Tick().ok());
  EXPECT_EQ(service.telemetry().journal_write_failures, 2u);
  EXPECT_GE(service.telemetry().io_errors, 2u);
  EXPECT_GT(service.telemetry().journal_events, 0u);  // later appends landed
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(ChaosTest, TornJournalTailReplaysCleanlyWithoutDuplicateAlerts) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("torn");
  config.snapshot_every_ticks = 0;  // journal-only recovery
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 0.01}};

  std::int64_t healthy_now = 0;
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
    ASSERT_TRUE(service.Tick().ok());  // raises the breach alert
    ASSERT_EQ(service.ActiveAlerts().size(), 1u);
    healthy_now = service.now();

    // From here on every append tears mid-line (a dying disk before the
    // crash): the tick is still served, and the torn bytes must read back
    // as an absent tail, not as corruption.
    FaultInjector::Global().Arm("journal.torn", FaultPlan::FailForever());
    ASSERT_TRUE(service.Tick().ok());
    EXPECT_GE(service.telemetry().journal_write_failures, 1u);
    // Crash: scope exit, no checkpoint.
  }
  FaultInjector::Global().Reset();

  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  // State is exactly the last healthy tick: the torn suffix replayed as
  // nothing, and the alert raised before the crash exists exactly once.
  EXPECT_EQ(recovered.now(), healthy_now);
  EXPECT_EQ(recovered.tick_count(), 2u);
  ASSERT_EQ(recovered.ActiveAlerts().size(), 1u);
  EXPECT_TRUE(recovered.registry().Contains(recovered.keys()[0]));
  // Resuming does not re-raise the surviving alert.
  ASSERT_TRUE(recovered.Tick().ok());
  EXPECT_EQ(recovered.telemetry().alerts_raised, 0u);
  EXPECT_EQ(recovered.ActiveAlerts().size(), 1u);
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(ChaosTest, DegradedForecastFlaggedAndSurvivesRecovery) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("degraded");
  config.snapshot_every_ticks = 0;
  config.pipeline.technique = core::Technique::kSarimax;
  config.pipeline.max_lag = 4;
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 95.0}};

  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    // The SARIMAX grid stage is down; always_forecast walks the ladder.
    FaultInjector::Global().Arm("selector.grid", FaultPlan::FailForever());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
    EXPECT_EQ(service.telemetry().refits_succeeded, 1u);
    EXPECT_EQ(service.telemetry().refits_degraded, 1u);
    EXPECT_EQ(service.ForecastDegradation(service.keys()[0]),
              core::DegradationLevel::kHesOnly);
    // Crash without checkpoint.
  }
  FaultInjector::Global().Reset();

  // The degradation tag is part of the durable record: recovery restores
  // the forecast still flagged as provisional.
  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.ForecastDegradation(recovered.keys()[0]),
            core::DegradationLevel::kHesOnly);
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(ChaosTest, JournalSpanCorrelationSurvivesRecovery) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("span_corr");
  config.snapshot_every_ticks = 0;  // journal-only recovery
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 95.0}};

  obs::Tracer& tracer = obs::Tracer::Instance();
  tracer.Disable();
  tracer.Clear();
  tracer.Enable();
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
    EXPECT_EQ(service.telemetry().refits_succeeded, 1u);
    // Crash without checkpoint.
  }
  tracer.Disable();
  std::set<std::uint64_t> refit_spans;
  for (const auto& e : tracer.Drain()) {
    if (std::string(e.name) == "service.refit") refit_spans.insert(e.span_id);
  }
  ASSERT_FALSE(refit_spans.empty());

  // The on-disk fit_ok line is stamped with the worker's refit span, so the
  // logged outcome can be located in the trace timeline.
  auto journal = ReadJournal(config.state_dir + "/journal.log");
  ASSERT_TRUE(journal.ok());
  std::uint64_t fit_ok_span = 0;
  for (const auto& event : *journal) {
    if (event.kind == EventKind::kFitOk) fit_ok_span = event.span_id;
  }
  ASSERT_NE(fit_ok_span, 0u);
  EXPECT_TRUE(refit_spans.count(fit_ok_span) > 0);

  // Recovery replays the span-stamped (v2) lines cleanly and appends more
  // events on top of them without disturbing the correlation already on
  // disk.
  FaultInjector::Global().Reset();
  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_TRUE(recovered.registry().Contains(recovered.keys()[0]));
  ASSERT_TRUE(recovered.Tick().ok());
  ASSERT_TRUE(recovered.DrainRefits().ok());
  auto replayed = ReadJournal(config.state_dir + "/journal.log");
  ASSERT_TRUE(replayed.ok());
  std::uint64_t surviving_span = 0;
  for (const auto& event : *replayed) {
    if (event.kind == EventKind::kFitOk && event.span_id == fit_ok_span) {
      surviving_span = event.span_id;
    }
  }
  EXPECT_EQ(surviving_span, fit_ok_span);
  tracer.Clear();
  std::filesystem::remove_all(config.state_dir);
}

TEST_F(ChaosTest, MaintenanceWindowRepairedAndReported) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  // A 3-hour weekly maintenance window: the agent reports nothing while the
  // host reboots. Short enough for the sentinel to interpolate (paper §5.1).
  agent::FaultModel maintenance;
  maintenance.maintenance_period_seconds = 7 * 24 * kHour;
  maintenance.maintenance_start_epoch = cluster.start_epoch() + 24 * kHour;
  maintenance.maintenance_duration_seconds = 3 * kHour;
  EstateService service(&cluster,
                        {{0, workload::Metric::kCpu, 95.0, maintenance}},
                        FastConfig());
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().refits_succeeded, 1u);

  const std::string& key = service.keys()[0];
  ASSERT_TRUE(service.quality_reports().count(key) > 0);
  const auto& quality = service.quality_reports().at(key);
  EXPECT_GT(quality.missing, 0u);            // the reboot holes were seen
  EXPECT_GT(quality.short_gaps_filled, 0u);  // and bridged, not fatal
  EXPECT_TRUE(quality.trainable);
  EXPECT_EQ(service.ForecastDegradation(key), core::DegradationLevel::kFull);
}

}  // namespace
}  // namespace capplan::service
