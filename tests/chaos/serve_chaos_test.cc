#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "serve/http_client.h"
#include "serve/http_server.h"

// Chaos scenarios for the query server: torn client connections and injected
// accept/read/write faults. The invariants are that the event loop never
// wedges (a healthy request always succeeds afterwards), connections are
// fully reaped, and no file descriptors leak across a server lifetime.

namespace capplan::serve {
namespace {

std::size_t OpenFdCount() {
  std::size_t n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

HttpResponse Echo(const HttpRequest& request) {
  return HttpResponse::Json(200, "{\"path\":\"" + request.path + "\"}");
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  void ExpectHealthy(HttpServer* server) {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
    auto resp = client.Get("/ok");
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status, 200);
  }
};

TEST_F(ServeChaosTest, TornConnectionsDoNotWedgeTheLoop) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  // A crowd of clients that send half a request (or nothing) and vanish.
  for (int i = 0; i < 16; ++i) {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(client.Send("GET /torn HTTP/1.1\r\nHost:").ok());
    }
    client.Close();  // abrupt close, no complete request ever sent
  }
  // The loop must still answer a well-formed request promptly...
  ExpectHealthy(&server);
  // ...and eventually reap every torn connection (the close is observed on
  // the next poll wakeup after the client's FIN).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.Stats().open_connections > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(server.Stats().open_connections, 1u);  // at most our keep-alive
  EXPECT_EQ(server.Stats().requests_admitted, 1u);
}

TEST_F(ServeChaosTest, AcceptFaultDropsConnectionNotServer) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  FaultInjector::Global().Arm("serve.accept", FaultPlan::FailN(2));
  // The first two accepted sockets are dropped on the floor; the TCP
  // handshake still completed, so the client only notices at read time.
  for (int i = 0; i < 2; ++i) {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    auto resp = client.Get("/dropped");
    EXPECT_FALSE(resp.ok());
  }
  EXPECT_EQ(FaultInjector::Global().FireCount("serve.accept"), 2u);
  // The rejected counter is bumped just after the loop thread closes the
  // socket, so it can trail the client seeing EOF.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.Stats().connections_rejected < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.Stats().connections_rejected, 2u);
  ExpectHealthy(&server);
}

TEST_F(ServeChaosTest, ReadFaultTearsRequestButServerRecovers) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  FaultInjector::Global().Arm("serve.read", FaultPlan::FailN(1));
  HttpClient doomed;
  ASSERT_TRUE(doomed.Connect("127.0.0.1", server.port()).ok());
  auto resp = doomed.Get("/doomed");
  EXPECT_FALSE(resp.ok());  // connection was cut before any response
  EXPECT_EQ(server.Stats().read_errors, 1u);
  ExpectHealthy(&server);
}

TEST_F(ServeChaosTest, WriteFaultMidResponseClosesCleanly) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  // Let the request bytes in, then fail the response write.
  FaultInjector::Global().Arm("serve.write", FaultPlan::FailN(1));
  HttpClient doomed;
  ASSERT_TRUE(doomed.Connect("127.0.0.1", server.port()).ok());
  auto resp = doomed.Get("/doomed");
  EXPECT_FALSE(resp.ok());  // response never arrived
  EXPECT_EQ(server.Stats().write_errors, 1u);
  // The admission slot freed with the dead connection: a burst of healthy
  // requests proves neither the slot count nor the loop is wedged.
  for (int i = 0; i < 4; ++i) ExpectHealthy(&server);
  // responses_sent is incremented by the loop thread just after the final
  // write syscall, so it can trail the client observing the response.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.Stats().responses_sent < 4 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.Stats().responses_sent, 4u);
}

TEST_F(ServeChaosTest, NoFdLeakAcrossChaoticLifetime) {
  const std::size_t fds_before = OpenFdCount();
  {
    HttpServer server(Echo);
    ASSERT_TRUE(server.Start().ok());
    FaultInjector::Global().Arm("serve.read",
                                FaultPlan::WithProbability(0.3));
    FaultInjector::Global().Arm("serve.write",
                                FaultPlan::WithProbability(0.3));
    for (int i = 0; i < 32; ++i) {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) continue;
      if (i % 3 == 0) {
        // Torn mid-request.
        (void)client.Send("GET /leak HTTP/1.1\r\n");
        client.Close();
        continue;
      }
      (void)client.Get("/leak");  // may or may not survive the coin flips
    }
    FaultInjector::Global().Reset();
    ExpectHealthy(&server);
    server.Stop();
    EXPECT_EQ(server.Stats().open_connections, 0u);
  }
  EXPECT_EQ(OpenFdCount(), fds_before);
}

}  // namespace
}  // namespace capplan::serve
