// Full-stack integration: workload simulator -> monitoring agent ->
// central repository -> forecasting pipeline -> capacity planner. This is
// the paper's entire Figure 4 / Figure 5 data path on the simulated cluster.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "agent/agent.h"
#include "core/capacity.h"
#include "core/pipeline.h"
#include "repo/csv.h"
#include "repo/repository.h"
#include "tsa/interpolate.h"
#include "workload/cluster.h"

namespace capplan {
namespace {

using agent::FaultModel;
using agent::MonitoringAgent;
using core::CapacityPlanner;
using core::Pipeline;
using core::PipelineOptions;
using core::Technique;
using workload::ClusterSimulator;
using workload::Metric;
using workload::WorkloadScenario;

PipelineOptions FastOptions(Technique technique) {
  PipelineOptions opts;
  opts.technique = technique;
  opts.max_lag = 3;
  opts.n_threads = 4;
  return opts;
}

// Collects 44 days (so the 1008-hour window fits) of a metric and runs the
// pipeline on the hourly aggregation.
Result<core::PipelineReport> RunFullPath(const WorkloadScenario& scenario,
                                         int instance, Metric metric,
                                         Technique technique,
                                         FaultModel faults = {}) {
  ClusterSimulator sim(scenario, /*seed=*/99);
  MonitoringAgent agent_(&sim, faults);
  CAPPLAN_ASSIGN_OR_RETURN(tsa::TimeSeries raw,
                           agent_.CollectDays(instance, metric, 44));
  repo::MetricsRepository repository;
  const std::string key =
      repo::MetricsRepository::KeyFor(sim.InstanceName(instance), metric);
  CAPPLAN_RETURN_NOT_OK(repository.Ingest(key, raw));
  CAPPLAN_ASSIGN_OR_RETURN(tsa::TimeSeries hourly, repository.Hourly(key));
  Pipeline pipeline(FastOptions(technique));
  return pipeline.Run(hourly);
}

TEST(EndToEndTest, OlapCpuForecastIsAccurate) {
  auto report = RunFullPath(WorkloadScenario::Olap(), 0, Metric::kCpu,
                            Technique::kSarimax);
  ASSERT_TRUE(report.ok()) << report.status();
  // The OLAP workload exhibits the paper's C1 (seasonality): detected and
  // forecast with high accuracy.
  EXPECT_FALSE(report->seasons.empty());
  EXPECT_GT(report->test_accuracy.mapa, 70.0);
}

TEST(EndToEndTest, OlapIopsSeasonalityDetected) {
  auto report = RunFullPath(WorkloadScenario::Olap(), 1, Metric::kLogicalIops,
                            Technique::kSarimax);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->seasons.empty());
  EXPECT_EQ(report->seasons.front().period, 24u);
}

TEST(EndToEndTest, OlapBackupShockDetectedOnNodeOne) {
  auto report = RunFullPath(WorkloadScenario::Olap(), 0, Metric::kLogicalIops,
                            Technique::kSarimaxFftExog);
  ASSERT_TRUE(report.ok()) << report.status();
  // The midnight backup is a recurring shock on cdbm011.
  EXPECT_FALSE(report->shocks.empty());
}

TEST(EndToEndTest, OltpTrendSurvivesThePipeline) {
  auto report = RunFullPath(WorkloadScenario::Oltp(), 0, Metric::kMemory,
                            Technique::kHes);
  ASSERT_TRUE(report.ok()) << report.status();
  // Memory grows with the user base: the forecast must sit above the window
  // median (trend captured, paper challenge C2).
  EXPECT_GT(report->traits.trend_strength, 0.5);
}

TEST(EndToEndTest, AgentFaultsAreInterpolatedAway) {
  // Isolated 15-minute drops are absorbed by the hourly aggregation (the
  // bucket averages the remaining polls); to produce hourly-level gaps the
  // agent must lose whole hours, e.g. a recurring maintenance window.
  FaultModel faults;
  faults.maintenance_start_epoch = workload::kExperimentStartEpoch;
  faults.maintenance_period_seconds = 5 * 86400;
  faults.maintenance_duration_seconds = 3 * 3600;
  auto report = RunFullPath(WorkloadScenario::Olap(), 0, Metric::kCpu,
                            Technique::kSarimax, faults);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->gaps_filled, 0u);
  EXPECT_GT(report->test_accuracy.mapa, 60.0);
}

TEST(EndToEndTest, CapacityPlannerAnswersBreachQuestion) {
  auto report = RunFullPath(WorkloadScenario::Oltp(), 0, Metric::kCpu,
                            Technique::kHes);
  ASSERT_TRUE(report.ok()) << report.status();
  // A threshold just above the forecast peak is not breached; one below the
  // forecast floor is breached immediately.
  double peak = 0.0, floor_v = 1e18;
  for (double v : report->forecast.mean) {
    peak = std::max(peak, v);
    floor_v = std::min(floor_v, v);
  }
  const auto no_breach = CapacityPlanner::PredictBreach(
      report->forecast, peak * 2.0 + 100.0, report->forecast_start_epoch,
      3600);
  ASSERT_TRUE(no_breach.ok()) << no_breach.status();
  EXPECT_FALSE(no_breach->mean_breach);
  const auto breach = CapacityPlanner::PredictBreach(
      report->forecast, floor_v - 1.0, report->forecast_start_epoch, 3600);
  ASSERT_TRUE(breach.ok()) << breach.status();
  EXPECT_TRUE(breach->mean_breach);
  EXPECT_EQ(breach->steps_to_mean_breach, 1u);
}

TEST(EndToEndTest, RepositoryRoundTripPreservesForecastInput) {
  // Persist the hourly series to CSV, reload, and verify the pipeline gets
  // identical data.
  ClusterSimulator sim(WorkloadScenario::Olap(), 7);
  MonitoringAgent agent_(&sim);
  auto raw = agent_.CollectDays(0, Metric::kCpu, 44);
  ASSERT_TRUE(raw.ok());
  repo::MetricsRepository repository;
  ASSERT_TRUE(repository.Ingest("cdbm011/cpu", *raw).ok());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(repository.SaveAll(dir).ok());
  auto reloaded = repo::ReadSeriesCsv(dir + "/cdbm011_cpu.csv");
  ASSERT_TRUE(reloaded.ok());
  auto original = repository.Hourly("cdbm011/cpu");
  ASSERT_TRUE(original.ok());
  ASSERT_EQ(reloaded->size(), original->size());
  for (std::size_t i = 0; i < reloaded->size(); ++i) {
    EXPECT_DOUBLE_EQ((*reloaded)[i], (*original)[i]);
  }
}

}  // namespace
}  // namespace capplan
