// Model-health lifecycle: a model is fitted and recorded; the workload then
// changes regime; the live one-step errors trip the drift detector; the
// degraded RMSE trips the registry's staleness policy; refitting restores
// accuracy. This is the paper's Section 9 loop ("we continually assess the
// models performance ... we don't relearn unless the model becomes
// unsuitable or the system has changed significantly").

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/drift.h"
#include "models/ets.h"
#include "repo/model_store.h"
#include "tsa/metrics.h"

namespace capplan {
namespace {

// Hourly seasonal series; after `change_at`, the level jumps and the
// amplitude doubles (new application release).
std::vector<double> RegimeChangeSeries(std::size_t n, std::size_t change_at,
                                       unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    const bool after = t >= change_at;
    const double base = after ? 90.0 : 50.0;
    const double amp = after ? 20.0 : 10.0;
    y[t] = base + amp * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  return y;
}

TEST(ModelHealthTest, DriftDetectorCatchesRegimeChange) {
  const std::size_t change_at = 24 * 40;
  const auto y = RegimeChangeSeries(24 * 60, change_at, 1);
  const std::vector<double> train(y.begin(),
                                  y.begin() + static_cast<std::ptrdiff_t>(
                                                  24 * 30));
  auto model = models::EtsModel::Fit(train, models::HoltWinters(24));
  ASSERT_TRUE(model.ok());

  // Live monitoring: one-step absolute errors via repeated short forecasts
  // from the frozen model (simulating "model in production").
  core::PageHinkleyDetector detector;
  std::size_t alarm_at = 0;
  auto fc = model->Predict(y.size() - train.size());
  ASSERT_TRUE(fc.ok());
  for (std::size_t i = 0; i < fc->mean.size(); ++i) {
    const std::size_t t = train.size() + i;
    const double abs_err = std::fabs(y[t] - fc->mean[i]);
    if (detector.Update(abs_err) && alarm_at == 0) {
      alarm_at = t;
    }
  }
  ASSERT_GT(alarm_at, 0u);
  // The alarm fires after the regime change, not before.
  EXPECT_GE(alarm_at, change_at);
  EXPECT_LT(alarm_at, change_at + 24 * 8);
}

TEST(ModelHealthTest, DegradedRmseTripsStalenessPolicy) {
  const std::size_t change_at = 24 * 40;
  const auto y = RegimeChangeSeries(24 * 50, change_at, 2);
  const std::vector<double> train(y.begin(),
                                  y.begin() + static_cast<std::ptrdiff_t>(
                                                  24 * 30));
  auto model = models::EtsModel::Fit(train, models::HoltWinters(24));
  ASSERT_TRUE(model.ok());

  // Record the model with its healthy test RMSE (next day after training).
  auto fc_day = model->Predict(24);
  ASSERT_TRUE(fc_day.ok());
  const std::vector<double> day_actual(
      y.begin() + static_cast<std::ptrdiff_t>(train.size()),
      y.begin() + static_cast<std::ptrdiff_t>(train.size() + 24));
  auto healthy_rmse = tsa::Rmse(day_actual, fc_day->mean);
  ASSERT_TRUE(healthy_rmse.ok());

  repo::ModelRepository registry;
  repo::StoredModel stored;
  stored.key = "cdbm011/cpu";
  stored.technique = "HES";
  stored.spec = "HW-additive";
  stored.test_rmse = *healthy_rmse;
  stored.fitted_at_epoch = 0;
  registry.Put(stored);

  // Live RMSE over a post-change day, forecast from the stale model.
  auto fc_long = model->Predict(y.size() - train.size());
  ASSERT_TRUE(fc_long.ok());
  const std::size_t post = change_at + 24;
  std::vector<double> actual(
      y.begin() + static_cast<std::ptrdiff_t>(post),
      y.begin() + static_cast<std::ptrdiff_t>(post + 24));
  std::vector<double> predicted(
      fc_long->mean.begin() +
          static_cast<std::ptrdiff_t>(post - train.size()),
      fc_long->mean.begin() +
          static_cast<std::ptrdiff_t>(post - train.size() + 24));
  auto live_rmse = tsa::Rmse(actual, predicted);
  ASSERT_TRUE(live_rmse.ok());

  // Fresh in wall-clock terms, but the degraded RMSE forces a refit.
  EXPECT_FALSE(registry.IsStale("cdbm011/cpu", 3600, *healthy_rmse));
  EXPECT_TRUE(registry.IsStale("cdbm011/cpu", 3600, *live_rmse));

  // Refit on post-change data restores accuracy.
  const std::vector<double> retrain(
      y.begin() + static_cast<std::ptrdiff_t>(change_at),
      y.end() - 24);
  auto refitted = models::EtsModel::Fit(retrain, models::HoltWinters(24));
  ASSERT_TRUE(refitted.ok());
  auto fc_new = refitted->Predict(24);
  ASSERT_TRUE(fc_new.ok());
  const std::vector<double> tail(y.end() - 24, y.end());
  auto new_rmse = tsa::Rmse(tail, fc_new->mean);
  ASSERT_TRUE(new_rmse.ok());
  EXPECT_LT(*new_rmse, 0.5 * *live_rmse);
}

}  // namespace
}  // namespace capplan
