#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

// 42+ days of hourly data with daily seasonality, trend and optional shocks.
tsa::TimeSeries MakeHourlySeries(bool with_trend, bool with_shocks,
                                 unsigned seed, std::size_t n = 1100) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (std::size_t t = 0; t < n; ++t) {
    v[t] = 60.0 + 15.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
    if (with_trend) v[t] += 0.02 * static_cast<double>(t);
    if (with_shocks && t % 24 == 0) v[t] += 70.0;
  }
  return tsa::TimeSeries("cdbm011/cpu", 0, tsa::Frequency::kHourly, v);
}

PipelineOptions FastOptions(Technique technique) {
  PipelineOptions opts;
  opts.technique = technique;
  opts.max_lag = 4;  // keep grids small for test speed
  opts.n_threads = 4;
  return opts;
}

TEST(PipelineTest, SarimaxBranchEndToEnd) {
  const auto series = MakeHourlySeries(false, false, 1);
  Pipeline pipeline(FastOptions(Technique::kSarimax));
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->chosen_family, Technique::kSarimax);
  EXPECT_EQ(report->forecast.mean.size(), 24u);
  EXPECT_EQ(report->split.train, 984u);
  EXPECT_GT(report->candidates_evaluated, 0u);
  EXPECT_GT(report->candidates_succeeded, 0u);
  // Strong daily seasonality must be detected.
  ASSERT_FALSE(report->seasons.empty());
  EXPECT_EQ(report->seasons.front().period, 24u);
  EXPECT_GT(report->traits.seasonal_strength, 0.7);
}

TEST(PipelineTest, ForecastTracksSeasonalPattern) {
  const auto series = MakeHourlySeries(false, false, 2);
  Pipeline pipeline(FastOptions(Technique::kSarimax));
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok());
  double max_err = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    const double t = static_cast<double>(series.size() + h);
    const double expected = 60.0 + 15.0 * std::sin(2.0 * M_PI * t / 24.0);
    max_err = std::max(max_err, std::fabs(report->forecast.mean[h] - expected));
  }
  EXPECT_LT(max_err, 6.0);
}

TEST(PipelineTest, HesBranchEndToEnd) {
  const auto series = MakeHourlySeries(true, false, 3);
  Pipeline pipeline(FastOptions(Technique::kHes));
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->chosen_family, Technique::kHes);
  EXPECT_NE(report->chosen_spec.find("ETS"), std::string::npos);
  EXPECT_EQ(report->forecast.mean.size(), 24u);
}

TEST(PipelineTest, ShocksDetectedAndModelled) {
  const auto series = MakeHourlySeries(false, true, 4);
  Pipeline pipeline(FastOptions(Technique::kSarimaxFftExog));
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_FALSE(report->shocks.empty());
  // Shock phases are relative to the 1008-observation policy window, which
  // starts at original index 1100 - 1008 = 92; the midnight spike at
  // original phase 0 therefore appears at window phase (24 - 92 % 24) % 24.
  const std::size_t expected_phase = (24 - 92 % 24) % 24;
  EXPECT_EQ(report->shocks.front().phase, expected_phase);
  // The forecast must reproduce the spike: forecast step h corresponds to
  // original index series.size() + h.
  double spike_mean = 0.0, base_mean = 0.0;
  int spikes = 0, bases = 0;
  for (std::size_t h = 0; h < 24; ++h) {
    if ((series.size() + h) % 24 == 0) {
      spike_mean += report->forecast.mean[h];
      ++spikes;
    } else {
      base_mean += report->forecast.mean[h];
      ++bases;
    }
  }
  ASSERT_GT(spikes, 0);
  spike_mean /= spikes;
  base_mean /= bases;
  EXPECT_GT(spike_mean, base_mean + 30.0);
}

TEST(PipelineTest, GapsFilledBeforeModelling) {
  auto series = MakeHourlySeries(false, false, 5);
  // Punch holes in the data (agent faults).
  for (std::size_t t = 50; t < series.size(); t += 97) {
    series[t] = std::nan("");
  }
  const std::size_t n_gaps = series.CountMissing();
  Pipeline pipeline(FastOptions(Technique::kSarimax));
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->gaps_filled, n_gaps);
  EXPECT_GT(report->gaps_filled, 0u);
}

TEST(PipelineTest, AutoPicksBestOfBothBranches) {
  const auto series = MakeHourlySeries(false, false, 6);
  Pipeline pipeline(FastOptions(Technique::kAuto));
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->chosen_family == Technique::kHes ||
              report->chosen_family == Technique::kSarimaxFftExog);
  EXPECT_GT(report->test_accuracy.mapa, 80.0);
}

TEST(PipelineTest, ModelRecordedInRepository) {
  repo::ModelRepository registry;
  const auto series = MakeHourlySeries(false, false, 7);
  PipelineOptions opts = FastOptions(Technique::kSarimax);
  opts.model_repository = &registry;
  Pipeline pipeline(opts);
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(registry.Contains("cdbm011/cpu"));
  auto stored = registry.Get("cdbm011/cpu");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->technique, "SARIMAX");
  EXPECT_GT(stored->test_rmse, 0.0);
  // Fresh model, not stale; a week later it is.
  EXPECT_FALSE(registry.IsStale("cdbm011/cpu", stored->fitted_at_epoch + 60));
  EXPECT_TRUE(registry.IsStale(
      "cdbm011/cpu", stored->fitted_at_epoch + 8 * 24 * 3600));
}

TEST(PipelineTest, ShortSeriesFails) {
  tsa::TimeSeries series("m", 0, tsa::Frequency::kHourly,
                         std::vector<double>(200, 1.0));
  Pipeline pipeline(FastOptions(Technique::kSarimax));
  EXPECT_FALSE(pipeline.Run(series).ok());
}

TEST(PipelineTest, PruningStillFindsGoodModel) {
  const auto series = MakeHourlySeries(false, false, 8);
  PipelineOptions pruned_opts = FastOptions(Technique::kSarimax);
  pruned_opts.prune_with_correlogram = true;
  PipelineOptions full_opts = FastOptions(Technique::kSarimax);
  full_opts.prune_with_correlogram = false;
  auto pruned = Pipeline(pruned_opts).Run(series);
  auto full = Pipeline(full_opts).Run(series);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(full.ok());
  // Pruning explores fewer candidates without a large accuracy loss.
  EXPECT_LE(pruned->candidates_evaluated, full->candidates_evaluated);
  EXPECT_LT(pruned->test_accuracy.rmse, 2.0 * full->test_accuracy.rmse + 1.0);
}

TEST(PipelineTest, EnsembleForecastOption) {
  const auto series = MakeHourlySeries(false, false, 11);
  PipelineOptions opts = FastOptions(Technique::kSarimax);
  opts.ensemble_top_k = 3;
  Pipeline pipeline(opts);
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_NE(report->chosen_spec.find("ensemble(top-"), std::string::npos);
  EXPECT_EQ(report->forecast.mean.size(), 24u);
  // The combined forecast still tracks the pattern.
  double max_err = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    const double t = static_cast<double>(series.size() + h);
    const double expected = 60.0 + 15.0 * std::sin(2.0 * M_PI * t / 24.0);
    max_err = std::max(max_err, std::fabs(report->forecast.mean[h] -
                                          expected));
  }
  EXPECT_LT(max_err, 8.0);
}

TEST(PipelineTest, RemoveTransientsOption) {
  auto series = MakeHourlySeries(false, false, 12);
  // One-off crash spike in the training region (not recurring).
  series[500] += 400.0;
  series[501] += 350.0;
  PipelineOptions opts = FastOptions(Technique::kSarimax);
  opts.remove_transients = true;
  Pipeline pipeline(opts);
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->transient_spikes_discarded, 0u);
  // Forecast unaffected by the crash: stays near the seasonal pattern.
  EXPECT_GT(report->test_accuracy.mapa, 90.0);
}

TEST(PipelineTest, TbatsBranchEndToEnd) {
  const auto series = MakeHourlySeries(false, false, 10);
  Pipeline pipeline(FastOptions(Technique::kTbats));
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->chosen_family, Technique::kTbats);
  EXPECT_NE(report->chosen_spec.find("TBATS"), std::string::npos);
  EXPECT_EQ(report->forecast.mean.size(), 24u);
  EXPECT_GT(report->test_accuracy.mapa, 85.0);
}

TEST(PipelineTest, TrendReflectedInForecast) {
  const auto series = MakeHourlySeries(true, false, 9);
  Pipeline pipeline(FastOptions(Technique::kAuto));
  auto report = pipeline.Run(series);
  ASSERT_TRUE(report.ok());
  // The mean of the forecast day should exceed the mean of the last
  // training day's level a trend ago... simply: above the global mean.
  double fc_mean = 0.0;
  for (double v : report->forecast.mean) fc_mean += v;
  fc_mean /= static_cast<double>(report->forecast.mean.size());
  double series_mean = 0.0;
  for (double v : series.values()) series_mean += v;
  series_mean /= static_cast<double>(series.size());
  EXPECT_GT(fc_mean, series_mean);
}

}  // namespace
}  // namespace capplan::core
