// Daily and weekly forecast granularities (the other rows of Table 1):
// hourly repository data is aggregated to daily means and forecast with the
// 90/83/7 policy; weekly with the 92/88/4 policy.

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/split.h"
#include "tsa/timeseries.h"

namespace capplan::core {
namespace {

// Hourly series long enough to aggregate into `days` daily observations.
tsa::TimeSeries HourlySeries(std::size_t days, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(days * 24);
  for (std::size_t t = 0; t < v.size(); ++t) {
    const double day = static_cast<double>(t) / 24.0;
    v[t] = 100.0 + 0.5 * day  // slow growth
           + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0)
           + 6.0 * std::sin(2.0 * M_PI * day / 7.0)  // weekly cycle
           + dist(rng);
  }
  return tsa::TimeSeries("m", 0, tsa::Frequency::kHourly, v);
}

TEST(GranularityTest, DailyForecastViaAggregation) {
  const auto hourly = HourlySeries(95, 1);
  auto daily = tsa::AggregateMean(hourly, tsa::Frequency::kDaily);
  ASSERT_TRUE(daily.ok());
  ASSERT_GE(daily->size(), 90u);

  PipelineOptions opts;
  opts.technique = Technique::kHes;
  Pipeline pipeline(opts);
  auto report = pipeline.Run(*daily);
  ASSERT_TRUE(report.ok()) << report.status();
  // Table 1 daily row.
  EXPECT_EQ(report->split.observations, 90u);
  EXPECT_EQ(report->split.train, 83u);
  EXPECT_EQ(report->split.test, 7u);
  EXPECT_EQ(report->forecast.mean.size(), 7u);
  EXPECT_GT(report->test_accuracy.mapa, 90.0);
}

TEST(GranularityTest, DailySarimaxDetectsWeeklySeason) {
  const auto hourly = HourlySeries(95, 2);
  auto daily = tsa::AggregateMean(hourly, tsa::Frequency::kDaily);
  ASSERT_TRUE(daily.ok());
  PipelineOptions opts;
  opts.technique = Technique::kSarimax;
  opts.max_lag = 3;
  Pipeline pipeline(opts);
  auto report = pipeline.Run(*daily);
  ASSERT_TRUE(report.ok()) << report.status();
  // At daily granularity the dominant season is the 7-day week.
  ASSERT_FALSE(report->seasons.empty());
  EXPECT_EQ(report->seasons.front().period, 7u);
  EXPECT_EQ(report->chosen_family, Technique::kSarimax);
}

TEST(GranularityTest, WeeklyForecastPolicy) {
  // 92 weekly observations need 92*7 = 644 days of hourly data; generate
  // weekly directly instead (a slow annual-ish cycle + noise).
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(0.0, 2.0);
  std::vector<double> v(92);
  for (std::size_t w = 0; w < v.size(); ++w) {
    v[w] = 500.0 + 2.0 * static_cast<double>(w) + dist(rng);
  }
  tsa::TimeSeries weekly("m", 0, tsa::Frequency::kWeekly, v);
  PipelineOptions opts;
  opts.technique = Technique::kHes;
  Pipeline pipeline(opts);
  auto report = pipeline.Run(weekly);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->split.observations, 92u);
  EXPECT_EQ(report->split.train, 88u);
  EXPECT_EQ(report->forecast.mean.size(), 4u);
  // Trend must be extrapolated: final forecast above the last observation.
  EXPECT_GT(report->forecast.mean.back(), v[87]);
}

TEST(GranularityTest, QuarterHourlyRejectedWithGuidance) {
  tsa::TimeSeries raw("m", 0, tsa::Frequency::kQuarterHourly,
                      std::vector<double>(2000, 1.0));
  Pipeline pipeline(PipelineOptions{});
  auto report = pipeline.Run(raw);
  ASSERT_FALSE(report.ok());
  // The error explains that aggregation is required first.
  EXPECT_NE(report.status().message().find("aggregate"), std::string::npos);
}

}  // namespace
}  // namespace capplan::core
