#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace capplan {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status st;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::OutOfRange("b"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::NotFound("c"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("d"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::ComputeError("f"), StatusCode::kComputeError, "ComputeError"},
      {Status::IoError("g"), StatusCode::kIoError, "IoError"},
      {Status::Internal("h"), StatusCode::kInternal, "Internal"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.st.ok());
    EXPECT_EQ(c.st.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.st.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status st = Status::InvalidArgument("bad series length");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad series length");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("key x");
  EXPECT_EQ(os.str(), "NotFound: key x");
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::ComputeError("diverged");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kComputeError);
  EXPECT_EQ(b.message(), "diverged");
}

Status Passthrough(const Status& in) {
  CAPPLAN_RETURN_NOT_OK(in);
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Passthrough(Status::OK()).ok());
  Status err = Passthrough(Status::IoError("disk"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace capplan
