#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace capplan {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsPendingQueue) {
  // The estate service relies on this: refit jobs still queued at shutdown
  // must run (they capture only copies), not be dropped.
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    // Park the single worker so the remaining jobs pile up in the queue,
    // then destroy the pool while they are still pending.
    futures.push_back(pool.Submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); }));
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
    }
  }
  EXPECT_EQ(counter.load(), 32);
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  }
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); }).wait();
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace capplan
