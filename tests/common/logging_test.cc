#include "common/logging.h"

#include <gtest/gtest.h>

namespace capplan {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, DefaultLevelIsWarning) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (auto level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                     LogLevel::kError}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // These are dropped; the test verifies the streaming path is safe.
  CAPPLAN_LOG(kDebug) << "debug " << 1;
  CAPPLAN_LOG(kInfo) << "info " << 2.5;
  CAPPLAN_LOG(kWarning) << "warning " << "text";
  SUCCEED();
}

TEST(LoggingTest, EmittedMessagesDoNotCrash) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  CAPPLAN_LOG(kError) << "error path exercised " << 42;
  CAPPLAN_LOG(kDebug) << "debug path exercised";
  SUCCEED();
}

}  // namespace
}  // namespace capplan
