// Verifies the umbrella header is self-contained and exposes the whole
// public API surface in one include.

#include "capplan.h"

#include <gtest/gtest.h>

namespace capplan {
namespace {

TEST(UmbrellaTest, TypesVisible) {
  // One symbol per module proves the includes resolved.
  Status st = Status::OK();
  EXPECT_TRUE(st.ok());
  Result<int> r = 1;
  EXPECT_TRUE(r.ok());
  EXPECT_GT(math::NormalCdf(0.0), 0.49);
  tsa::TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  models::ArimaSpec spec{1, 0, 0, 0, 0, 0, 0};
  EXPECT_TRUE(spec.IsValid());
  models::EtsSpec ets = models::SimpleExponentialSmoothing();
  EXPECT_TRUE(ets.IsValid());
  workload::WorkloadScenario olap = workload::WorkloadScenario::Olap();
  EXPECT_EQ(olap.n_instances, 2);
  core::PipelineOptions opts;
  EXPECT_EQ(opts.technique, core::Technique::kAuto);
  repo::MetricsRepository metrics;
  EXPECT_EQ(metrics.size(), 0u);
  core::PageHinkleyDetector detector;
  EXPECT_EQ(detector.samples_seen(), 0u);
}

}  // namespace
}  // namespace capplan
