#include "common/fault.h"

#include <vector>

#include <gtest/gtest.h>

namespace capplan {
namespace {

// Every test leaves the global injector clean so unrelated suites (which
// share the process) never see an armed site.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectorTest, DisarmedSitePassesEverything) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FaultFires("journal.append"));
    EXPECT_TRUE(FaultHit("journal.append").ok());
  }
  EXPECT_EQ(FaultInjector::Global().FireCount("journal.append"), 0u);
}

TEST_F(FaultInjectorTest, SkipThenFailThenExhausted) {
  FaultPlan plan;
  plan.skip = 2;
  plan.fail = 3;
  FaultInjector::Global().Arm("test.site", plan);
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(FaultFires("test.site"));
  const std::vector<bool> expected = {false, false, true,  true,
                                      true,  false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(FaultInjector::Global().CallCount("test.site"), 8u);
  EXPECT_EQ(FaultInjector::Global().FireCount("test.site"), 3u);
}

TEST_F(FaultInjectorTest, FailForeverNeverExhausts) {
  FaultPlan plan;
  plan.fail = -1;
  FaultInjector::Global().Arm("test.site", plan);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(FaultFires("test.site"));
}

TEST_F(FaultInjectorTest, HitBuildsStatusFromPlan) {
  FaultPlan plan;
  plan.code = StatusCode::kComputeError;
  plan.message = "solver diverged";
  FaultInjector::Global().Arm("test.site", plan);
  const Status st = FaultHit("test.site");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kComputeError);
  EXPECT_NE(st.message().find("test.site"), std::string::npos);
  EXPECT_NE(st.message().find("solver diverged"), std::string::npos);
  // Exhausted now (fail defaults to 1): subsequent calls pass.
  EXPECT_TRUE(FaultHit("test.site").ok());
}

TEST_F(FaultInjectorTest, ProbabilityPlanIsDeterministicPerSeed) {
  FaultPlan plan;
  plan.probability = 0.3;
  auto run = [&](std::uint64_t seed) {
    FaultInjector::Global().Reset();
    FaultInjector::Global().set_seed(seed);
    FaultInjector::Global().Arm("test.site", plan);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(FaultFires("test.site"));
    return fired;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);  // same seed, same firing pattern
  EXPECT_NE(a, c);  // different seed, different pattern
  // The rate is in the right ballpark (deterministic, so no flake risk).
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 200 * 0.3 / 3);
  EXPECT_LT(fires, 200 * 0.3 * 3);
}

TEST_F(FaultInjectorTest, SitesAreIndependent) {
  FaultPlan plan;
  plan.fail = -1;
  FaultInjector::Global().Arm("test.a", plan);
  EXPECT_TRUE(FaultFires("test.a"));
  EXPECT_FALSE(FaultFires("test.b"));
  FaultInjector::Global().Disarm("test.a");
  EXPECT_FALSE(FaultFires("test.a"));
  // Counters survive disarm until Reset.
  EXPECT_EQ(FaultInjector::Global().CallCount("test.a"), 1u);
  FaultInjector::Global().Reset();
  EXPECT_EQ(FaultInjector::Global().CallCount("test.a"), 0u);
}

TEST_F(FaultInjectorTest, ScopedFaultDisarmsOnExit) {
  {
    ScopedFault fault("test.site", FaultPlan::FailForever());
    EXPECT_TRUE(FaultFires("test.site"));
  }
  EXPECT_FALSE(FaultFires("test.site"));
}

}  // namespace
}  // namespace capplan
