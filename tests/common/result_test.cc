#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace capplan {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err = Status::ComputeError("x");
  EXPECT_EQ(err.value_or(-1), -1);
  Result<int> ok = 7;
  EXPECT_EQ(ok.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> MaybeDouble(Result<int> in) {
  CAPPLAN_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = MaybeDouble(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = MaybeDouble(Status::OutOfRange("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, WorksWithMoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace capplan
