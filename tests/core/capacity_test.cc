#include "core/capacity.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

models::Forecast RampForecast(std::size_t h, double start, double step,
                              double band) {
  models::Forecast fc;
  fc.mean.resize(h);
  fc.lower.resize(h);
  fc.upper.resize(h);
  for (std::size_t i = 0; i < h; ++i) {
    fc.mean[i] = start + step * static_cast<double>(i);
    fc.lower[i] = fc.mean[i] - band;
    fc.upper[i] = fc.mean[i] + band;
  }
  return fc;
}

TEST(BreachTest, FindsFirstMeanBreach) {
  const auto fc = RampForecast(24, 50.0, 2.0, 5.0);
  // Mean crosses 60 at step index 5 (50 + 2*5 = 60).
  const auto b = CapacityPlanner::PredictBreach(fc, 60.0, 1000, 3600);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_TRUE(b->mean_breach);
  EXPECT_EQ(b->steps_to_mean_breach, 6u);  // 1-based
  EXPECT_EQ(b->mean_breach_epoch, 1000 + 5 * 3600);
}

TEST(BreachTest, UpperBreachEarlierThanMean) {
  const auto fc = RampForecast(24, 50.0, 2.0, 5.0);
  const auto b = CapacityPlanner::PredictBreach(fc, 60.0, 0, 3600);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_TRUE(b->upper_breach);
  // Upper = mean + 5 crosses 60 at step index 2 or 3 (50+2i+5 >= 60 -> i>=2.5).
  EXPECT_LT(b->steps_to_upper_breach, b->steps_to_mean_breach);
}

TEST(BreachTest, NoBreachWhenBelowThreshold) {
  const auto fc = RampForecast(10, 10.0, 0.1, 1.0);
  const auto b = CapacityPlanner::PredictBreach(fc, 100.0, 0, 3600);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_FALSE(b->mean_breach);
  EXPECT_FALSE(b->upper_breach);
}

TEST(BreachTest, ImmediateBreachAtStepOne) {
  const auto fc = RampForecast(10, 99.0, 1.0, 0.5);
  const auto b = CapacityPlanner::PredictBreach(fc, 90.0, 500, 60);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_TRUE(b->mean_breach);
  EXPECT_EQ(b->steps_to_mean_breach, 1u);
  EXPECT_EQ(b->mean_breach_epoch, 500);
}

TEST(BreachTest, RejectsEmptyForecast) {
  models::Forecast empty;
  const auto b = CapacityPlanner::PredictBreach(empty, 60.0, 0, 3600);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kInvalidArgument);
}

TEST(BreachTest, RejectsNonPositiveStep) {
  const auto fc = RampForecast(10, 50.0, 1.0, 2.0);
  EXPECT_EQ(CapacityPlanner::PredictBreach(fc, 60.0, 0, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CapacityPlanner::PredictBreach(fc, 60.0, 0, -3600).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BreachTest, RejectsNonFiniteThreshold) {
  const auto fc = RampForecast(10, 50.0, 1.0, 2.0);
  const double nan = std::nan("");
  EXPECT_EQ(CapacityPlanner::PredictBreach(fc, nan, 0, 3600).status().code(),
            StatusCode::kInvalidArgument);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(CapacityPlanner::PredictBreach(fc, inf, 0, 3600).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BreachTest, NonFiniteForecastIsComputeError) {
  auto fc = RampForecast(10, 50.0, 1.0, 2.0);
  fc.mean[4] = std::nan("");
  const auto b = CapacityPlanner::PredictBreach(fc, 60.0, 0, 3600);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kComputeError);

  auto fc2 = RampForecast(10, 50.0, 1.0, 2.0);
  fc2.upper[7] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(CapacityPlanner::PredictBreach(fc2, 60.0, 0, 3600).status().code(),
            StatusCode::kComputeError);
}

TEST(RecommendedCapacityTest, MarginAppliedToPeakUpper) {
  const auto fc = RampForecast(10, 10.0, 1.0, 2.0);
  // Peak upper = 10 + 9 + 2 = 21; with 20% margin -> 25.2.
  const auto with_margin = CapacityPlanner::RecommendedCapacity(fc, 0.2);
  ASSERT_TRUE(with_margin.ok()) << with_margin.status();
  EXPECT_NEAR(*with_margin, 25.2, 1e-9);
  // Negative margins clamp to zero margin.
  const auto clamped = CapacityPlanner::RecommendedCapacity(fc, -0.5);
  ASSERT_TRUE(clamped.ok()) << clamped.status();
  EXPECT_NEAR(*clamped, 21.0, 1e-9);
}

TEST(RecommendedCapacityTest, ValidatesInputs) {
  models::Forecast empty;
  EXPECT_EQ(CapacityPlanner::RecommendedCapacity(empty, 0.2).status().code(),
            StatusCode::kInvalidArgument);
  const auto fc = RampForecast(5, 10.0, 1.0, 2.0);
  EXPECT_EQ(
      CapacityPlanner::RecommendedCapacity(fc, std::nan("")).status().code(),
      StatusCode::kInvalidArgument);
  auto bad = RampForecast(5, 10.0, 1.0, 2.0);
  bad.upper[2] = std::nan("");
  EXPECT_EQ(CapacityPlanner::RecommendedCapacity(bad, 0.2).status().code(),
            StatusCode::kComputeError);
}

TEST(HeadroomTest, ReportFields) {
  tsa::TimeSeries recent("m", 0, tsa::Frequency::kHourly, {40.0, 45.0, 50.0});
  const auto fc = RampForecast(10, 50.0, 1.0, 3.0);
  auto rep = CapacityPlanner::Headroom(recent, fc, 100.0);
  ASSERT_TRUE(rep.ok());
  EXPECT_DOUBLE_EQ(rep->current_usage, 50.0);
  EXPECT_DOUBLE_EQ(rep->peak_forecast, 59.0);
  EXPECT_DOUBLE_EQ(rep->peak_upper, 62.0);
  EXPECT_NEAR(rep->headroom_fraction, 0.38, 1e-9);
}

tsa::TimeSeries GrowingHourly(double base, double growth_per_day,
                              std::size_t days) {
  std::vector<double> v(days * 24);
  for (std::size_t t = 0; t < v.size(); ++t) {
    const double day = static_cast<double>(t) / 24.0;
    v[t] = base + growth_per_day * day +
           10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0);
  }
  return tsa::TimeSeries("m", 0, tsa::Frequency::kHourly, v);
}

TEST(ProjectGrowthTest, RecoversDailyGrowth) {
  const auto hourly = GrowingHourly(100.0, 2.0, 60);
  auto proj = CapacityPlanner::ProjectGrowth(hourly, 6);
  ASSERT_TRUE(proj.ok());
  EXPECT_NEAR(proj->daily_growth, 2.0, 0.5);
  ASSERT_EQ(proj->monthly_peaks.size(), 6u);
  // Peaks grow month over month (damping flattens late months slightly).
  EXPECT_GT(proj->monthly_peaks[2], proj->monthly_peaks[0]);
  EXPECT_GT(proj->current_daily_peak, 200.0);  // base + 60 days growth + amp
}

TEST(ProjectGrowthTest, BreachMonthDetected) {
  const auto hourly = GrowingHourly(100.0, 2.0, 60);
  // Current peak ~230; with ~2/day growth (damped), +60/month: month 2-3
  // crosses 320.
  auto proj = CapacityPlanner::ProjectGrowth(hourly, 12, 320.0);
  ASSERT_TRUE(proj.ok());
  EXPECT_GE(proj->breach_month, 1u);
  EXPECT_LE(proj->breach_month, 5u);
  // A sky-high threshold is never breached.
  auto safe = CapacityPlanner::ProjectGrowth(hourly, 6, 1e9);
  ASSERT_TRUE(safe.ok());
  EXPECT_EQ(safe->breach_month, 0u);
}

TEST(ProjectGrowthTest, FlatWorkloadProjectsFlat) {
  const auto hourly = GrowingHourly(100.0, 0.0, 40);
  auto proj = CapacityPlanner::ProjectGrowth(hourly, 6);
  ASSERT_TRUE(proj.ok());
  EXPECT_NEAR(proj->daily_growth, 0.0, 0.3);
  EXPECT_NEAR(proj->monthly_peaks[5], proj->monthly_peaks[0],
              0.05 * proj->monthly_peaks[0]);
}

TEST(ProjectGrowthTest, ValidatesInputs) {
  const auto hourly = GrowingHourly(100.0, 1.0, 30);
  EXPECT_FALSE(CapacityPlanner::ProjectGrowth(hourly, 0).ok());
  EXPECT_FALSE(CapacityPlanner::ProjectGrowth(hourly, 37).ok());
  tsa::TimeSeries daily("m", 0, tsa::Frequency::kDaily,
                        std::vector<double>(100, 1.0));
  EXPECT_FALSE(CapacityPlanner::ProjectGrowth(daily, 6).ok());
  const auto tiny = GrowingHourly(100.0, 1.0, 5);
  EXPECT_FALSE(CapacityPlanner::ProjectGrowth(tiny, 6).ok());
}

TEST(HeadroomTest, ValidatesInputs) {
  tsa::TimeSeries empty;
  const auto fc = RampForecast(5, 1.0, 0.0, 0.0);
  EXPECT_FALSE(CapacityPlanner::Headroom(empty, fc, 100.0).ok());
  tsa::TimeSeries recent("m", 0, tsa::Frequency::kHourly, {1.0});
  models::Forecast empty_fc;
  EXPECT_FALSE(CapacityPlanner::Headroom(recent, empty_fc, 100.0).ok());
  EXPECT_FALSE(CapacityPlanner::Headroom(recent, fc, 0.0).ok());
  // Zero and non-finite capacities are both rejected as InvalidArgument.
  EXPECT_EQ(CapacityPlanner::Headroom(recent, fc, std::nan("")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CapacityPlanner::Headroom(
                recent, fc, std::numeric_limits<double>::infinity())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto bad = RampForecast(5, 1.0, 0.0, 0.0);
  bad.mean[1] = std::nan("");
  EXPECT_EQ(CapacityPlanner::Headroom(recent, bad, 100.0).status().code(),
            StatusCode::kComputeError);
}

TEST(ProjectGrowthTest, RejectsNonFiniteThreshold) {
  const auto hourly = GrowingHourly(100.0, 1.0, 30);
  EXPECT_EQ(
      CapacityPlanner::ProjectGrowth(hourly, 6, std::nan("")).status().code(),
      StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace capplan::core
