#include "core/ensemble.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "tsa/metrics.h"

namespace capplan::core {
namespace {

models::Forecast Flat(double mean, std::size_t h, double band = 1.0) {
  models::Forecast fc;
  fc.mean.assign(h, mean);
  fc.lower.assign(h, mean - band);
  fc.upper.assign(h, mean + band);
  return fc;
}

TEST(CombineTest, EqualWeightsAverage) {
  const auto a = Flat(10.0, 5);
  const auto b = Flat(20.0, 5);
  auto combined = CombineForecasts({&a, &b});
  ASSERT_TRUE(combined.ok());
  for (double v : combined->mean) EXPECT_DOUBLE_EQ(v, 15.0);
  EXPECT_DOUBLE_EQ(combined->lower[0], 14.0);
  EXPECT_DOUBLE_EQ(combined->upper[0], 16.0);
}

TEST(CombineTest, WeightsRespected) {
  const auto a = Flat(10.0, 3);
  const auto b = Flat(20.0, 3);
  auto combined = CombineForecasts({&a, &b}, {3.0, 1.0});
  ASSERT_TRUE(combined.ok());
  EXPECT_DOUBLE_EQ(combined->mean[0], 12.5);
}

TEST(CombineTest, ValidatesInputs) {
  const auto a = Flat(1.0, 3);
  const auto b = Flat(2.0, 4);  // mismatched horizon
  EXPECT_FALSE(CombineForecasts({}).ok());
  EXPECT_FALSE(CombineForecasts({&a, &b}).ok());
  EXPECT_FALSE(CombineForecasts({&a}, {1.0, 2.0}).ok());
  EXPECT_FALSE(CombineForecasts({&a}, {-1.0}).ok());
  EXPECT_FALSE(CombineForecasts({&a}, {0.0}).ok());
  EXPECT_FALSE(CombineForecasts({&a, nullptr}).ok());
}

EvaluatedCandidate MakeCandidate(double mean, double rmse, std::size_t h) {
  EvaluatedCandidate c;
  c.ok = true;
  c.test_forecast = Flat(mean, h);
  c.accuracy.rmse = rmse;
  return c;
}

TEST(CombineTopTest, InverseRmseWeighting) {
  // Member with rmse 1 gets 4x the weight of member with rmse 4.
  std::vector<EvaluatedCandidate> top = {MakeCandidate(10.0, 1.0, 3),
                                         MakeCandidate(20.0, 4.0, 3)};
  auto combined = CombineTopCandidates(top, /*inverse_rmse_weights=*/true);
  ASSERT_TRUE(combined.ok());
  EXPECT_NEAR(combined->mean[0], (10.0 * 1.0 + 20.0 * 0.25) / 1.25, 1e-9);
}

TEST(CombineTopTest, SkipsFailedCandidates) {
  std::vector<EvaluatedCandidate> top = {MakeCandidate(10.0, 1.0, 3)};
  EvaluatedCandidate bad;
  bad.ok = false;
  top.push_back(bad);
  auto combined = CombineTopCandidates(top, false);
  ASSERT_TRUE(combined.ok());
  EXPECT_DOUBLE_EQ(combined->mean[0], 10.0);
}

TEST(CombineTopTest, AllFailedIsError) {
  EvaluatedCandidate bad;
  bad.ok = false;
  EXPECT_FALSE(CombineTopCandidates({bad}, true).ok());
}

TEST(CombineTest, EnsembleBeatsWorstMember) {
  // Truth is a sine; member A is good, member B is biased. The combination
  // must land between them (and beat B).
  std::mt19937 rng(1);
  std::normal_distribution<double> noise(0.0, 0.1);
  const std::size_t h = 24;
  std::vector<double> truth(h);
  models::Forecast a = Flat(0.0, h), b = Flat(0.0, h);
  for (std::size_t t = 0; t < h; ++t) {
    truth[t] = std::sin(0.3 * static_cast<double>(t));
    a.mean[t] = truth[t] + noise(rng);
    b.mean[t] = truth[t] + 1.0;  // biased
  }
  auto combined = CombineForecasts({&a, &b});
  ASSERT_TRUE(combined.ok());
  auto rmse_combined = tsa::Rmse(truth, combined->mean);
  auto rmse_b = tsa::Rmse(truth, b.mean);
  ASSERT_TRUE(rmse_combined.ok());
  ASSERT_TRUE(rmse_b.ok());
  EXPECT_LT(*rmse_combined, *rmse_b);
}

}  // namespace
}  // namespace capplan::core
