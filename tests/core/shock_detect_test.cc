#include "core/shock_detect.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

// Base series: mild daily sinusoid + noise.
std::vector<double> BaseSeries(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = 100.0 + 5.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  return x;
}

void AddRecurringSpike(std::vector<double>* x, std::size_t period,
                       std::size_t phase, std::size_t duration,
                       double magnitude) {
  for (std::size_t t = phase; t < x->size(); t += period) {
    for (std::size_t d = 0; d < duration && t + d < x->size(); ++d) {
      (*x)[t + d] += magnitude;
    }
  }
}

TEST(ShockDetectorTest, FindsDailyBackupSpike) {
  auto x = BaseSeries(24 * 30, 1);
  AddRecurringSpike(&x, 24, 0, 2, 80.0);
  ShockDetector detector;
  auto shocks = detector.Detect(x);
  ASSERT_TRUE(shocks.ok());
  ASSERT_FALSE(shocks->empty());
  EXPECT_EQ(shocks->front().phase, 0u);
  EXPECT_GE(shocks->front().duration, 1u);
  EXPECT_GE(shocks->front().occurrences, 3);
  EXPECT_GT(shocks->front().magnitude, 30.0);
}

TEST(ShockDetectorTest, FindsSixHourlyBackups) {
  // Backups every 6 hours appear as four hot phases within the 24h period —
  // the paper's "4 exogenous variables".
  auto x = BaseSeries(24 * 30, 2);
  for (std::size_t phase : {0u, 6u, 12u, 18u}) {
    AddRecurringSpike(&x, 24, phase, 1, 90.0);
  }
  ShockDetector detector;
  auto shocks = detector.Detect(x);
  ASSERT_TRUE(shocks.ok());
  EXPECT_EQ(shocks->size(), 4u);
  std::set<std::size_t> phases;
  for (const auto& s : *shocks) phases.insert(s.phase);
  EXPECT_EQ(phases, (std::set<std::size_t>{0, 6, 12, 18}));
}

TEST(ShockDetectorTest, CleanSeriesHasNoShocks) {
  const auto x = BaseSeries(24 * 30, 3);
  ShockDetector detector;
  auto shocks = detector.Detect(x);
  ASSERT_TRUE(shocks.ok());
  EXPECT_TRUE(shocks->empty());
}

TEST(ShockDetectorTest, RareSpikeDiscardedAsTransient) {
  // The paper's rule: fewer than 3 occurrences is not a behaviour (e.g. a
  // one-off crash/failover) and must be discarded.
  auto x = BaseSeries(24 * 30, 4);
  x[100] += 200.0;
  x[101] += 180.0;
  ShockDetector detector;
  std::vector<std::size_t> transients;
  auto shocks = detector.Detect(x, &transients);
  ASSERT_TRUE(shocks.ok());
  EXPECT_TRUE(shocks->empty());
  EXPECT_FALSE(transients.empty());
  bool found_100 = false;
  for (std::size_t t : transients) {
    if (t == 100 || t == 101) found_100 = true;
  }
  EXPECT_TRUE(found_100);
}

TEST(ShockDetectorTest, MinOccurrencesConfigurable) {
  auto x = BaseSeries(24 * 30, 5);
  AddRecurringSpike(&x, 24, 6, 1, 100.0);
  ShockDetector::Options opts;
  opts.min_occurrences = 100;  // impossible
  ShockDetector strict(opts);
  auto shocks = strict.Detect(x);
  ASSERT_TRUE(shocks.ok());
  EXPECT_TRUE(shocks->empty());
}

TEST(ShockDetectorTest, RejectsShortSeries) {
  ShockDetector detector;
  EXPECT_FALSE(detector.Detect(std::vector<double>(30, 1.0)).ok());
}

TEST(ShockDetectorTest, MultiHourShockGetsDuration) {
  auto x = BaseSeries(24 * 30, 6);
  AddRecurringSpike(&x, 24, 7, 4, 90.0);  // the paper's 07:00 4-hour surge
  ShockDetector detector;
  auto shocks = detector.Detect(x);
  ASSERT_TRUE(shocks.ok());
  ASSERT_FALSE(shocks->empty());
  EXPECT_EQ(shocks->front().phase, 7u);
  EXPECT_GE(shocks->front().duration, 3u);
  EXPECT_LE(shocks->front().duration, 5u);
}

TEST(ShockDetectorTest, SpikeAtFirstSampleHandled) {
  // Edge case: the spike phase is the very first observation, so the first
  // period has no "before" context for the local level.
  auto x = BaseSeries(24 * 30, 20);
  AddRecurringSpike(&x, 24, 0, 1, 90.0);
  x[0] += 90.0;  // make the boundary sample itself an extra-strong spike
  ShockDetector detector;
  auto shocks = detector.Detect(x);
  ASSERT_TRUE(shocks.ok());
  ASSERT_FALSE(shocks->empty());
  EXPECT_EQ(shocks->front().phase, 0u);
}

TEST(ShockDetectorTest, SpikeAtLastSampleHandled) {
  // Edge case: the series ends mid-spike (the last observation is hot).
  // The truncated final occurrence must not crash or skew the duration.
  auto x = BaseSeries(24 * 30 + 8, 21);  // ends 8 hours into a day
  AddRecurringSpike(&x, 24, 7, 2, 90.0);  // last occurrence covers t=n-1
  ASSERT_GT(x[x.size() - 1], 140.0);  // the tail really is inside a spike
  ShockDetector detector;
  auto shocks = detector.Detect(x);
  ASSERT_TRUE(shocks.ok());
  ASSERT_FALSE(shocks->empty());
  EXPECT_EQ(shocks->front().phase, 7u);
  EXPECT_LE(shocks->front().duration, 3u);
}

TEST(ShockDetectorTest, AllTransientSeriesYieldsNoShocksButAllIndices) {
  // Several one-off spikes at unrelated phases: nothing recurs, everything
  // is a transient. Detect must return empty shocks and flag each spike.
  auto x = BaseSeries(24 * 30, 22);
  const std::vector<std::size_t> spikes = {31, 100, 205, 350, 467};
  for (std::size_t t : spikes) x[t] += 200.0;
  ShockDetector detector;
  std::vector<std::size_t> transients;
  auto shocks = detector.Detect(x, &transients);
  ASSERT_TRUE(shocks.ok());
  EXPECT_TRUE(shocks->empty());
  for (std::size_t t : spikes) {
    EXPECT_NE(std::find(transients.begin(), transients.end(), t),
              transients.end())
        << "spike at " << t << " not flagged as transient";
  }
  // RemoveTransients heals every flagged index back to its neighbourhood.
  const auto healed = ShockDetector::RemoveTransients(x, transients);
  for (std::size_t t : spikes) {
    EXPECT_LT(healed[t], 130.0) << "t=" << t;
  }
}

TEST(ShockDetectorTest, BackToBackSpikesStraddlingRecurrenceThreshold) {
  // Two adjacent phases: one spikes in every period (a behaviour), its
  // neighbour only twice (below the paper's >3 rule). The recurring phase
  // must be kept and the rare neighbour discarded — adjacency must not
  // smear the two together.
  auto x = BaseSeries(24 * 30, 23);
  AddRecurringSpike(&x, 24, 10, 1, 90.0);  // every day at phase 10
  x[11] += 90.0;                           // phase 11, only days 0 and 1
  x[24 + 11] += 90.0;
  ShockDetector detector;
  std::vector<std::size_t> transients;
  auto shocks = detector.Detect(x, &transients);
  ASSERT_TRUE(shocks.ok());
  ASSERT_FALSE(shocks->empty());
  bool has_10 = false, has_11 = false;
  for (const auto& s : *shocks) {
    for (std::size_t d = 0; d < s.duration; ++d) {
      if (s.phase + d == 10) has_10 = true;
      if (s.phase + d == 11) has_11 = true;
    }
  }
  EXPECT_TRUE(has_10);
  EXPECT_FALSE(has_11);
}

TEST(ShockDetectorTest, RecurrenceRateExactlyAtThresholdKept) {
  // A phase spiking in exactly half its periods sits on the default
  // min_recurrence_rate of 0.5; "at least this fraction" means kept.
  auto x = BaseSeries(24 * 30, 24);
  // Every second day at phase 6, starting on day 1 (day 0's phase-6 sample
  // sits in the detrending margin and would not be counted): 15 spiked
  // periods of 30 seen -> rate exactly 0.5.
  for (std::size_t t = 30; t < x.size(); t += 48) {
    x[t] += 90.0;
  }
  ShockDetector detector;
  auto shocks = detector.Detect(x);
  ASSERT_TRUE(shocks.ok());
  ASSERT_FALSE(shocks->empty());
  EXPECT_EQ(shocks->front().phase, 6u);
  EXPECT_GE(shocks->front().occurrences, 10);
}

TEST(PulseColumnsTest, TrainingWindowPattern) {
  DetectedShock s;
  s.period = 24;
  s.phase = 6;
  s.duration = 2;
  const auto cols = ShockDetector::PulseColumns({s}, 0, 48);
  ASSERT_EQ(cols.size(), 1u);
  for (std::size_t t = 0; t < 48; ++t) {
    const double expected = (t % 24 == 6 || t % 24 == 7) ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(cols[0][t], expected) << "t=" << t;
  }
}

TEST(PulseColumnsTest, FutureWindowContinuesPhase) {
  DetectedShock s;
  s.period = 24;
  s.phase = 0;
  s.duration = 1;
  // Future window starting at t = 20: the pulse fires at t = 24, i.e.
  // offset 4 into the window.
  const auto cols = ShockDetector::PulseColumns({s}, 20, 10);
  ASSERT_EQ(cols.size(), 1u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(cols[0][i], (20 + i) % 24 == 0 ? 1.0 : 0.0);
  }
}

TEST(PulseColumnsTest, MultipleShocksMultipleColumns) {
  DetectedShock a, b;
  a.period = b.period = 24;
  a.phase = 0;
  b.phase = 12;
  a.duration = b.duration = 1;
  const auto cols = ShockDetector::PulseColumns({a, b}, 0, 24);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_DOUBLE_EQ(cols[0][0], 1.0);
  EXPECT_DOUBLE_EQ(cols[1][12], 1.0);
  EXPECT_DOUBLE_EQ(cols[0][12], 0.0);
}

}  // namespace
}  // namespace capplan::core
