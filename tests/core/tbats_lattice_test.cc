// Oracle-equality suite for the TBATS option lattice (the PR 2 fast-path
// contract, extended to the multi-seasonality subsystem): with AIC pruning
// enabled — at any thread count — Select() must pick the byte-identical
// configuration the exhaustive full-budget oracle picks, because survivors
// are cold-rescored with exactly the oracle's fit and ties break in lattice
// order. Fixtures cover a synthetic daily+weekly series and the OLAP/OLTP
// workload-simulator scenarios, plus the period router's decisions.

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "agent/agent.h"
#include "core/lattice/period_router.h"
#include "core/lattice/tbats_lattice.h"
#include "repo/repository.h"
#include "workload/cluster.h"

namespace capplan::core {
namespace {

std::vector<double> SyntheticDailyWeekly(unsigned seed, std::size_t n) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> y(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double td = static_cast<double>(t);
    y[t] = 40.0 + 10.0 * std::sin(2.0 * M_PI * td / 24.0) +
           6.0 * std::sin(2.0 * M_PI * td / 168.0) + dist(rng);
  }
  return y;
}

// Hourly CPU trace from the workload simulator, via the same agent ->
// repository path the service uses.
std::vector<double> ScenarioValues(const workload::WorkloadScenario& scenario) {
  workload::ClusterSimulator sim(scenario, /*seed=*/77);
  agent::MonitoringAgent agent_(&sim);
  auto raw = agent_.CollectDays(0, workload::Metric::kCpu, 35);
  EXPECT_TRUE(raw.ok()) << raw.status();
  repo::MetricsRepository repository;
  const std::string key = repo::MetricsRepository::KeyFor(
      sim.InstanceName(0), workload::Metric::kCpu);
  EXPECT_TRUE(repository.Ingest(key, *raw).ok());
  auto hourly = repository.Hourly(key);
  EXPECT_TRUE(hourly.ok()) << hourly.status();
  return hourly->values();
}

// Reduced optimizer budget so the suite stays fast; both paths share it, so
// the equality contract is exercised at exactly these settings.
lattice::TbatsLatticeOptions TestOptions() {
  lattice::TbatsLatticeOptions opts;
  opts.model.max_harmonics = 2;
  opts.model.max_fit_iterations = 160;
  return opts;
}

// Runs the exhaustive oracle once and the pruned path at 1 and 4 threads;
// asserts every pruned run selects the byte-identical configuration with
// the identical full-budget AIC.
void ExpectPrunedMatchesOracle(const std::vector<double>& y,
                               const std::vector<double>& periods) {
  lattice::TbatsLatticeOptions oracle_opts = TestOptions();
  oracle_opts.prune = false;
  auto oracle = lattice::TbatsLattice(oracle_opts).Select(y, periods);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (std::size_t n_threads : {std::size_t{1}, std::size_t{4}}) {
    lattice::TbatsLatticeOptions opts = TestOptions();
    opts.prune = true;
    opts.n_threads = n_threads;
    auto pruned = lattice::TbatsLattice(opts).Select(y, periods);
    ASSERT_TRUE(pruned.ok()) << pruned.status();
    EXPECT_EQ(pruned->model.config().ToString(),
              oracle->model.config().ToString())
        << "thread count " << n_threads;
    EXPECT_NEAR(pruned->aic, oracle->aic, 1e-9)
        << "thread count " << n_threads;
    EXPECT_EQ(pruned->profile.enumerated, oracle->profile.enumerated);
  }
}

TEST(TbatsLatticeTest, PrunedMatchesOracleOnSyntheticDailyWeekly) {
  ExpectPrunedMatchesOracle(SyntheticDailyWeekly(11, 168 * 6), {24.0, 168.0});
}

TEST(TbatsLatticeTest, PrunedMatchesOracleOnOlapScenario) {
  const std::vector<double> y =
      ScenarioValues(workload::WorkloadScenario::Olap());
  lattice::PeriodRouter router;
  const lattice::RoutingDecision routing = router.Route(y);
  std::vector<double> periods;
  for (const auto& season : routing.seasons) {
    periods.push_back(static_cast<double>(season.period));
  }
  if (periods.empty()) periods.push_back(24.0);
  ExpectPrunedMatchesOracle(y, periods);
}

TEST(TbatsLatticeTest, PrunedMatchesOracleOnOltpScenario) {
  const std::vector<double> y =
      ScenarioValues(workload::WorkloadScenario::Oltp());
  lattice::PeriodRouter router;
  const lattice::RoutingDecision routing = router.Route(y);
  std::vector<double> periods;
  for (const auto& season : routing.seasons) {
    periods.push_back(static_cast<double>(season.period));
  }
  if (periods.empty()) periods.push_back(24.0);
  ExpectPrunedMatchesOracle(y, periods);
}

TEST(TbatsLatticeTest, EnumerationIsSharedBetweenPaths) {
  const std::vector<double> y = SyntheticDailyWeekly(13, 168 * 5);
  lattice::TbatsLatticeOptions oracle_opts = TestOptions();
  oracle_opts.prune = false;
  lattice::TbatsLatticeOptions pruned_opts = TestOptions();
  pruned_opts.prune = true;
  pruned_opts.n_threads = 4;
  const auto a =
      lattice::TbatsLattice(oracle_opts).EnumerateConfigs(y, {24.0, 168.0});
  const auto b =
      lattice::TbatsLattice(pruned_opts).EnumerateConfigs(y, {24.0, 168.0});
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString()) << "lattice index " << i;
  }
}

TEST(TbatsLatticeTest, PruningIsReportedInProfile) {
  const std::vector<double> y = SyntheticDailyWeekly(17, 168 * 5);
  lattice::TbatsLatticeOptions opts = TestOptions();
  opts.prune = true;
  opts.keep_top = 3;
  opts.n_threads = 2;
  auto sel = lattice::TbatsLattice(opts).Select(y, {24.0, 168.0});
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_GT(sel->profile.enumerated, opts.keep_top);
  EXPECT_GT(sel->profile.pruned, 0u);
  EXPECT_LE(sel->profile.rescored, opts.keep_top);
  EXPECT_EQ(sel->profile.pruned + sel->profile.rescored,
            sel->profile.enumerated);
}

TEST(PeriodRouterTest, DetectsDailyAndWeeklySeasons) {
  const std::vector<double> y = SyntheticDailyWeekly(19, 168 * 6);
  lattice::PeriodRouter router;
  const lattice::RoutingDecision routing = router.Route(y);
  EXPECT_FALSE(routing.detection_failed);
  ASSERT_GE(routing.seasons.size(), 2u);
  EXPECT_TRUE(routing.multiple_seasonality);
  bool has_daily = false, has_weekly = false;
  for (const auto& season : routing.seasons) {
    if (season.period == 24) has_daily = true;
    if (season.period >= 160 && season.period <= 176) has_weekly = true;
  }
  EXPECT_TRUE(has_daily);
  EXPECT_TRUE(has_weekly);
}

TEST(PeriodRouterTest, SingleSeasonIsNotMultiSeasonal) {
  std::mt19937 rng(23);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> y(24 * 30);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 50.0 +
           12.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  lattice::PeriodRouter router;
  const lattice::RoutingDecision routing = router.Route(y);
  EXPECT_FALSE(routing.detection_failed);
  ASSERT_EQ(routing.seasons.size(), 1u);
  EXPECT_EQ(routing.seasons[0].period, 24u);
  EXPECT_FALSE(routing.multiple_seasonality);
}

}  // namespace
}  // namespace capplan::core
