// Determinism suite for the selector's fast path: with shared-transform
// caching, warm-started refinement and early-abort pruning all enabled — at
// any thread count — Select() must pick the identical best candidate, with a
// reported RMSE within 1e-9 of the serial un-cached oracle. Fixtures cover
// synthetic seasonal data and the OLAP/OLTP workload-simulator scenarios.

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "agent/agent.h"
#include "core/candidate_gen.h"
#include "core/selector.h"
#include "repo/repository.h"
#include "workload/cluster.h"

namespace capplan::core {
namespace {

struct Data {
  std::vector<double> train, test;
};

Data Split(const std::vector<double>& y, std::size_t horizon) {
  Data d;
  d.train.assign(y.begin(), y.end() - static_cast<std::ptrdiff_t>(horizon));
  d.test.assign(y.end() - static_cast<std::ptrdiff_t>(horizon), y.end());
  return d;
}

Data SyntheticSeasonal(unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(24 * 35);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 50.0 + 12.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  return Split(y, 24);
}

// Hourly CPU trace from the workload simulator, via the same agent ->
// repository path the service uses (35 days -> 816 train + 24 test points).
Data ScenarioData(const workload::WorkloadScenario& scenario) {
  workload::ClusterSimulator sim(scenario, /*seed=*/77);
  agent::MonitoringAgent agent_(&sim);
  auto raw = agent_.CollectDays(0, workload::Metric::kCpu, 35);
  EXPECT_TRUE(raw.ok()) << raw.status();
  repo::MetricsRepository repository;
  const std::string key =
      repo::MetricsRepository::KeyFor(sim.InstanceName(0), workload::Metric::kCpu);
  EXPECT_TRUE(repository.Ingest(key, *raw).ok());
  auto hourly = repository.Hourly(key);
  EXPECT_TRUE(hourly.ok()) << hourly.status();
  return Split(hourly->values(), 24);
}

ModelSelector::Options OracleOptions() {
  ModelSelector::Options opts;
  opts.n_threads = 1;
  opts.shared_transforms = false;
  opts.warm_start = false;
  opts.early_abort = false;
  return opts;
}

ModelSelector::Options FastOptions(std::size_t n_threads) {
  ModelSelector::Options opts;
  opts.n_threads = n_threads;
  opts.shared_transforms = true;
  opts.warm_start = true;
  opts.early_abort = true;
  return opts;
}

// Runs the oracle once and the fast path at 1 and 4 threads; asserts every
// fast run selects the oracle's winner with RMSE within 1e-9.
void ExpectFastMatchesOracle(
    const Data& d, const std::vector<ModelCandidate>& candidates,
    const std::vector<std::vector<double>>& exog_train = {},
    const std::vector<std::vector<double>>& exog_test = {}) {
  auto oracle = ModelSelector(OracleOptions())
                    .Select(d.train, d.test, candidates, exog_train, exog_test);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (std::size_t n_threads : {std::size_t{1}, std::size_t{4}}) {
    auto fast = ModelSelector(FastOptions(n_threads))
                    .Select(d.train, d.test, candidates, exog_train, exog_test);
    ASSERT_TRUE(fast.ok()) << fast.status();
    EXPECT_EQ(fast->best.candidate.spec, oracle->best.candidate.spec)
        << "thread count " << n_threads;
    EXPECT_EQ(fast->best.candidate.family, oracle->best.candidate.family);
    EXPECT_EQ(fast->best.candidate.n_exog, oracle->best.candidate.n_exog);
    EXPECT_NEAR(fast->best.accuracy.rmse, oracle->best.accuracy.rmse, 1e-9)
        << "thread count " << n_threads;
  }
}

TEST(SelectorFastPathTest, MatchesOracleOnSyntheticSeasonalGrid) {
  const Data d = SyntheticSeasonal(11);
  CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 4;  // 88-candidate SARIMAX slice of the paper grid
  const auto candidates =
      CandidateGenerator(gen_opts).Generate(Technique::kSarimax);
  ExpectFastMatchesOracle(d, candidates);
}

TEST(SelectorFastPathTest, MatchesOracleOnOlapScenario) {
  const Data d = ScenarioData(workload::WorkloadScenario::Olap());
  CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 3;
  const auto candidates =
      CandidateGenerator(gen_opts).Generate(Technique::kSarimax);
  ExpectFastMatchesOracle(d, candidates);
}

TEST(SelectorFastPathTest, MatchesOracleOnOltpScenario) {
  const Data d = ScenarioData(workload::WorkloadScenario::Oltp());
  CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 3;
  const auto candidates =
      CandidateGenerator(gen_opts).Generate(Technique::kSarimax);
  ExpectFastMatchesOracle(d, candidates);
}

TEST(SelectorFastPathTest, MatchesOracleWithExogAndFourierCandidates) {
  // Pulse-driven series so the exogenous and Fourier groups are exercised
  // (each distinct (n_exog, fourier) pair is a separate shared-OLS group).
  std::mt19937 rng(13);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> y(24 * 30);
  std::vector<double> pulse(y.size(), 0.0);
  for (std::size_t t = 0; t < y.size(); ++t) {
    pulse[t] = (t % 24 == 0) ? 1.0 : 0.0;
    y[t] = 20.0 + 8.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           40.0 * pulse[t] + dist(rng);
  }
  const Data d = Split(y, 24);
  const auto pulse_split = Split(pulse, 24);

  std::vector<ModelCandidate> candidates;
  for (int p = 1; p <= 4; ++p) {
    ModelCandidate plain;
    plain.family = Technique::kArima;
    plain.spec = models::ArimaSpec{p, 0, 1, 0, 0, 0, 0};
    candidates.push_back(plain);

    ModelCandidate with_exog = plain;
    with_exog.family = Technique::kSarimaxFftExog;
    with_exog.n_exog = 1;
    candidates.push_back(with_exog);

    ModelCandidate with_fourier = plain;
    with_fourier.family = Technique::kSarimaxFftExog;
    with_fourier.fourier = {tsa::FourierSpec{24.0, 2}};
    candidates.push_back(with_fourier);

    ModelCandidate both = with_exog;
    both.fourier = {tsa::FourierSpec{24.0, 2}};
    candidates.push_back(both);
  }
  ExpectFastMatchesOracle(d, candidates, {pulse_split.train},
                          {pulse_split.test});
}

TEST(SelectorFastPathTest, EachLayerAloneMatchesOracle) {
  const Data d = SyntheticSeasonal(17);
  CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 3;
  const auto candidates =
      CandidateGenerator(gen_opts).Generate(Technique::kSarimax);
  auto oracle =
      ModelSelector(OracleOptions()).Select(d.train, d.test, candidates);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (int layer = 0; layer < 3; ++layer) {
    ModelSelector::Options opts = OracleOptions();
    opts.n_threads = 2;
    opts.shared_transforms = layer == 0;
    opts.warm_start = layer == 1;
    opts.early_abort = layer == 2;
    auto sel = ModelSelector(opts).Select(d.train, d.test, candidates);
    ASSERT_TRUE(sel.ok()) << sel.status();
    EXPECT_EQ(sel->best.candidate.spec, oracle->best.candidate.spec)
        << "layer " << layer;
    EXPECT_NEAR(sel->best.accuracy.rmse, oracle->best.accuracy.rmse, 1e-9)
        << "layer " << layer;
  }
}

TEST(SelectorFastPathTest, WarmHintDoesNotChangeSelection) {
  const Data d = SyntheticSeasonal(19);
  CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 3;
  const auto candidates =
      CandidateGenerator(gen_opts).Generate(Technique::kSarimax);
  auto plain = ModelSelector(FastOptions(2)).Select(d.train, d.test, candidates);
  ASSERT_TRUE(plain.ok()) << plain.status();

  // Hint from a plausible prior fit on the same metric (matching d/D/season
  // so it seeds the corresponding chains).
  ModelSelector::Options hinted_opts = FastOptions(2);
  hinted_opts.hint.spec = plain->best.candidate.spec;
  hinted_opts.hint.ar = {0.4, 0.1};
  hinted_opts.hint.ma = {0.2};
  auto hinted =
      ModelSelector(hinted_opts).Select(d.train, d.test, candidates);
  ASSERT_TRUE(hinted.ok()) << hinted.status();
  EXPECT_EQ(hinted->best.candidate.spec, plain->best.candidate.spec);
  EXPECT_NEAR(hinted->best.accuracy.rmse, plain->best.accuracy.rmse, 1e-9);
}

TEST(SelectorFastPathTest, PruningIsReportedAndPrunedNeverRanked) {
  const Data d = SyntheticSeasonal(23);
  CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = 6;  // enough candidates for the bound to start cutting
  const auto candidates =
      CandidateGenerator(gen_opts).Generate(Technique::kSarimax);
  ModelSelector::Options opts = FastOptions(2);
  opts.keep_top = 3;
  auto sel = ModelSelector(opts).Select(d.train, d.test, candidates);
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_GT(sel->pruned, 0u);
  EXPECT_EQ(sel->evaluated, candidates.size());
  EXPECT_LE(sel->pruned + sel->succeeded, sel->evaluated);
  for (const auto& ev : sel->top) {
    EXPECT_TRUE(ev.ok);
    EXPECT_FALSE(ev.pruned);
  }
}

}  // namespace
}  // namespace capplan::core
