#include "core/report_json.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

PipelineReport SampleReport() {
  PipelineReport r;
  r.series_name = "cdbm011/cpu";
  r.chosen_family = Technique::kSarimaxFftExog;
  r.chosen_spec = "(1,1,2)(1,1,1,24)+FFT+exog(4)";
  r.gaps_filled = 3;
  r.traits.trend_strength = 0.75;
  r.traits.seasonal_strength = 0.9;
  r.multiple_seasonality = true;
  r.recommended_d = 1;
  tsa::DetectedSeason season;
  season.period = 24;
  r.seasons.push_back(season);
  DetectedShock shock;
  shock.phase = 0;
  shock.period = 24;
  shock.duration = 2;
  shock.occurrences = 40;
  shock.magnitude = 600000.0;
  r.shocks.push_back(shock);
  r.transient_spikes_discarded = 2;
  r.test_accuracy.rmse = 8.42;
  r.test_accuracy.mape = 3.0;
  r.test_accuracy.mapa = 97.0;
  r.candidates_evaluated = 666;
  r.candidates_succeeded = 660;
  r.forecast_start_epoch = 1559520000;
  r.forecast.level = 0.95;
  r.forecast.mean = {1.5, 2.5};
  r.forecast.lower = {1.0, 2.0};
  r.forecast.upper = {2.0, 3.0};
  return r;
}

TEST(ReportJsonTest, ContainsAllFields) {
  const std::string json = ReportToJson(SampleReport());
  EXPECT_NE(json.find("\"series\":\"cdbm011/cpu\""), std::string::npos);
  EXPECT_NE(json.find("\"technique\":\"SARIMAX_FFT_EXOG\""),
            std::string::npos);
  EXPECT_NE(json.find("\"candidates_evaluated\":666"), std::string::npos);
  EXPECT_NE(json.find("\"multiple_seasonality\":true"), std::string::npos);
  EXPECT_NE(json.find("\"mean\":[1.5,2.5]"), std::string::npos);
  EXPECT_NE(json.find("\"occurrences\":40"), std::string::npos);
  EXPECT_NE(json.find("\"forecast_start_epoch\":1559520000"),
            std::string::npos);
}

TEST(ReportJsonTest, BalancedBracesAndQuotes) {
  const std::string json = ReportToJson(SampleReport());
  int depth = 0;
  int quotes = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportJsonTest, EscapesSpecialCharacters) {
  PipelineReport r = SampleReport();
  r.series_name = "weird\"name\\with\nnewline";
  const std::string json = ReportToJson(r);
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnewline"), std::string::npos);
}

TEST(ReportJsonTest, NanBecomesNull) {
  PipelineReport r = SampleReport();
  r.test_accuracy.mape = std::nan("");
  const std::string json = ReportToJson(r);
  EXPECT_NE(json.find("\"test_mape\":null"), std::string::npos);
}

TEST(ReportJsonTest, PrettyModeIndents) {
  const std::string json = ReportToJson(SampleReport(), /*pretty=*/true);
  EXPECT_NE(json.find("\n  \"series\""), std::string::npos);
}

TEST(ForecastJsonTest, RoundTripShape) {
  models::Forecast fc;
  fc.level = 0.9;
  fc.mean = {1.0, 2.0, 3.0};
  fc.lower = {0.5, 1.5, 2.5};
  fc.upper = {1.5, 2.5, 3.5};
  const std::string json = ForecastToJson(fc);
  EXPECT_EQ(json,
            "{\"level\":0.9,\"mean\":[1,2,3],\"lower\":[0.5,1.5,2.5],"
            "\"upper\":[1.5,2.5,3.5]}");
}

TEST(ForecastJsonTest, NumbersRoundTripPrecision) {
  models::Forecast fc;
  fc.level = 0.95;
  fc.mean = {52879.490000000001};
  fc.lower = {0.1};
  fc.upper = {1e-9};
  const std::string json = ForecastToJson(fc);
  EXPECT_NE(json.find("52879.49"), std::string::npos);
  EXPECT_NE(json.find("1e-09"), std::string::npos);
}

}  // namespace
}  // namespace capplan::core
