#include "core/drift.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

std::vector<double> Stream(std::size_t n, double mean, double sigma,
                           unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(mean, sigma);
  std::vector<double> out(n);
  for (auto& v : out) v = dist(rng);
  return out;
}

TEST(PageHinkleyTest, QuietStreamNoAlarm) {
  PageHinkleyDetector detector;
  bool alarmed = false;
  for (double v : Stream(2000, 1.0, 0.2, 1)) {
    alarmed = alarmed || detector.Update(v);
  }
  EXPECT_FALSE(alarmed);
}

TEST(PageHinkleyTest, DetectsMeanShift) {
  PageHinkleyDetector detector;
  // In-control phase.
  for (double v : Stream(500, 1.0, 0.2, 2)) {
    ASSERT_FALSE(detector.Update(v));
  }
  // The model degrades: errors triple.
  bool alarmed = false;
  std::size_t steps_to_alarm = 0;
  for (double v : Stream(1000, 3.0, 0.2, 3)) {
    ++steps_to_alarm;
    if (detector.Update(v)) {
      alarmed = true;
      break;
    }
  }
  EXPECT_TRUE(alarmed);
  EXPECT_LT(steps_to_alarm, 200u);
}

TEST(PageHinkleyTest, ResetsAfterAlarm) {
  PageHinkleyDetector detector;
  for (double v : Stream(500, 1.0, 0.2, 4)) detector.Update(v);
  for (double v : Stream(1000, 4.0, 0.2, 5)) {
    if (detector.Update(v)) break;
  }
  EXPECT_EQ(detector.samples_seen(), 0u);  // reset fired
}

TEST(PageHinkleyTest, MinSamplesHonoured) {
  PageHinkleyDetector::Options opts;
  opts.min_samples = 50;
  opts.threshold = 0.001;  // would alarm instantly otherwise
  PageHinkleyDetector detector(opts);
  int alarms_before_min = 0;
  auto data = Stream(49, 10.0, 0.1, 6);
  for (double v : data) {
    if (detector.Update(v)) ++alarms_before_min;
  }
  EXPECT_EQ(alarms_before_min, 0);
}

TEST(CusumTest, QuietStreamNoAlarm) {
  CusumDetector detector(0.0, 1.0);
  bool alarmed = false;
  for (double v : Stream(2000, 0.0, 1.0, 7)) {
    alarmed = alarmed || detector.Update(v);
  }
  EXPECT_FALSE(alarmed);
}

TEST(CusumTest, DetectsUpwardAndDownwardShifts) {
  CusumDetector up(0.0, 1.0);
  bool up_alarm = false;
  for (double v : Stream(300, 2.0, 1.0, 8)) {
    if (up.Update(v)) {
      up_alarm = true;
      break;
    }
  }
  EXPECT_TRUE(up_alarm);

  CusumDetector down(0.0, 1.0);
  bool down_alarm = false;
  for (double v : Stream(300, -2.0, 1.0, 9)) {
    if (down.Update(v)) {
      down_alarm = true;
      break;
    }
  }
  EXPECT_TRUE(down_alarm);
}

TEST(CusumTest, SlackSuppressesSmallShifts) {
  CusumDetector::Options opts;
  opts.k = 1.5;  // generous slack
  opts.threshold = 10.0;
  CusumDetector detector(0.0, 1.0, opts);
  bool alarmed = false;
  // A 0.5-sigma shift sits below the slack.
  for (double v : Stream(3000, 0.5, 1.0, 10)) {
    alarmed = alarmed || detector.Update(v);
  }
  EXPECT_FALSE(alarmed);
}

TEST(CusumTest, DegenerateSigmaHandled) {
  CusumDetector detector(0.0, 0.0);  // sigma clamped internally
  EXPECT_FALSE(detector.Update(0.1));
}

TEST(DetectChangesTest, FindsTheChangePointOffline) {
  std::vector<double> values = Stream(600, 1.0, 0.2, 11);
  const auto shifted = Stream(600, 3.5, 0.2, 12);
  values.insert(values.end(), shifted.begin(), shifted.end());
  const auto alarms = DetectChanges(values);
  ASSERT_FALSE(alarms.empty());
  // The first alarm lands shortly after the change at index 600.
  EXPECT_GT(alarms.front(), 580u);
  EXPECT_LT(alarms.front(), 780u);
}

TEST(DetectChangesTest, NoChangesOnStationaryStream) {
  const auto alarms = DetectChanges(Stream(2000, 5.0, 0.5, 13));
  EXPECT_TRUE(alarms.empty());
}

}  // namespace
}  // namespace capplan::core
