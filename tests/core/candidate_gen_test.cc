#include "core/candidate_gen.h"

#include <set>

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

TEST(CandidateGenTest, ArimaGridIs180PerInstance) {
  // Paper Section 6.3: "ARIMA p,d,q = 180 models per instance".
  CandidateGenerator gen;
  const auto grid = gen.Generate(Technique::kArima);
  EXPECT_EQ(grid.size(), 180u);
  EXPECT_EQ(CandidateGenerator::ExpectedCount(Technique::kArima), 180u);
}

TEST(CandidateGenTest, SarimaxGridIs660PerInstance) {
  // "SARIMAX p,d,q,P,D,Q,F = 660 models per instance".
  CandidateGenerator gen;
  const auto grid = gen.Generate(Technique::kSarimax);
  EXPECT_EQ(grid.size(), 660u);
}

TEST(CandidateGenTest, FftExogGridIs666PerInstance) {
  // "SARIMAX ... + Exogenous (4) + Fourier Terms (2) = 666 models".
  CandidateGenerator gen;
  const auto grid = gen.Generate(Technique::kSarimaxFftExog);
  EXPECT_EQ(grid.size(), 666u);
}

TEST(CandidateGenTest, TwoInstanceTotalsMatchPaper) {
  // "totalling 360 / 1320 / 1332 models" and >6000 across two experiments.
  const std::size_t two_instances =
      2 * (CandidateGenerator::ExpectedCount(Technique::kArima) +
           CandidateGenerator::ExpectedCount(Technique::kSarimax) +
           CandidateGenerator::ExpectedCount(Technique::kSarimaxFftExog));
  EXPECT_EQ(two_instances, 3012u);
  EXPECT_GT(2 * two_instances, 6000u);  // two experiments
}

TEST(CandidateGenTest, ArimaGridShape) {
  CandidateGenerator gen;
  const auto grid = gen.Generate(Technique::kArima);
  std::set<int> ps, ds, qs;
  for (const auto& c : grid) {
    ps.insert(c.spec.p);
    ds.insert(c.spec.d);
    qs.insert(c.spec.q);
    EXPECT_TRUE(c.spec.IsValid());
    EXPECT_EQ(c.spec.season, 0u);
    EXPECT_EQ(c.n_exog, 0u);
    EXPECT_TRUE(c.fourier.empty());
  }
  EXPECT_EQ(ps.size(), 30u);  // p in 1..30
  EXPECT_EQ(*ps.begin(), 1);
  EXPECT_EQ(*ps.rbegin(), 30);
  EXPECT_EQ(ds, (std::set<int>{0, 1}));
  EXPECT_EQ(qs, (std::set<int>{0, 1, 2}));
}

TEST(CandidateGenTest, SarimaxGridAllSeasonalAndValid) {
  CandidateGenerator gen;
  const auto grid = gen.Generate(Technique::kSarimax);
  for (const auto& c : grid) {
    EXPECT_TRUE(c.spec.IsValid()) << c.spec.ToString();
    EXPECT_EQ(c.spec.season, 24u);
    EXPECT_TRUE(c.spec.P > 0 || c.spec.D > 0 || c.spec.Q > 0);
  }
  // 22 distinct seasonal templates per lag.
  std::set<std::string> lag1_specs;
  for (const auto& c : grid) {
    if (c.spec.p == 1) lag1_specs.insert(c.spec.ToString());
  }
  EXPECT_EQ(lag1_specs.size(), 22u);
}

TEST(CandidateGenTest, SarimaxGridSpansPaperExampleRange) {
  // The paper quotes the range (1,0,0)(0,0,1,24) ... (1,1,2)(1,1,1,24).
  CandidateGenerator gen;
  const auto grid = gen.Generate(Technique::kSarimax);
  bool found_first = false, found_last = false;
  for (const auto& c : grid) {
    if (c.spec.ToString() == "(1,0,0)(0,0,1,24)") found_first = true;
    if (c.spec.ToString() == "(1,1,2)(1,1,1,24)") found_last = true;
  }
  EXPECT_TRUE(found_first);
  EXPECT_TRUE(found_last);
}

TEST(CandidateGenTest, FftExogGridCarriesShocksAndFourier) {
  CandidateGenerator::Options opts;
  opts.n_shock_columns = 4;
  opts.fourier_periods = {24.0, 168.0};
  CandidateGenerator gen(opts);
  const auto grid = gen.Generate(Technique::kSarimaxFftExog);
  std::size_t with_exog = 0, with_fourier = 0;
  for (const auto& c : grid) {
    if (c.n_exog > 0) ++with_exog;
    if (!c.fourier.empty()) ++with_fourier;
  }
  EXPECT_EQ(with_exog, 666u);
  EXPECT_EQ(with_fourier, 662u);  // 660 grid + the 2 Fourier variants
}

TEST(CandidateGenTest, SeasonConfigurable) {
  CandidateGenerator::Options opts;
  opts.season = 7;  // daily data
  CandidateGenerator gen(opts);
  const auto grid = gen.Generate(Technique::kSarimax);
  for (const auto& c : grid) EXPECT_EQ(c.spec.season, 7u);
}

TEST(CandidateGenTest, MaxLagScalesGrids) {
  CandidateGenerator::Options opts;
  opts.max_lag = 5;
  CandidateGenerator gen(opts);
  EXPECT_EQ(gen.Generate(Technique::kArima).size(), 30u);      // 5*6
  EXPECT_EQ(gen.Generate(Technique::kSarimax).size(), 110u);   // 5*22
  EXPECT_EQ(gen.Generate(Technique::kSarimaxFftExog).size(), 116u);
}

TEST(CandidateGenTest, PrunedKeepsOnlySignificantAndSafetyLags) {
  CandidateGenerator gen;
  const auto pruned =
      gen.GeneratePruned(Technique::kArima, {5, 24});
  std::set<int> ps;
  for (const auto& c : pruned) ps.insert(c.spec.p);
  // Significant lags 5 and 24 plus the safety net 1..3.
  EXPECT_EQ(ps, (std::set<int>{1, 2, 3, 5, 24}));
  EXPECT_EQ(pruned.size(), 5u * 6u);
}

TEST(CandidateGenTest, PruningReducesConsiderably) {
  // The paper's claim: correlogram pruning reduces "the thousands of
  // potential models considerably".
  CandidateGenerator gen;
  const auto full = gen.Generate(Technique::kSarimax);
  const auto pruned = gen.GeneratePruned(Technique::kSarimax, {1, 24});
  EXPECT_LT(pruned.size() * 5, full.size());
}

TEST(CandidateGenTest, HesFamilyHasNoGrid) {
  CandidateGenerator gen;
  EXPECT_TRUE(gen.Generate(Technique::kHes).empty());
  EXPECT_EQ(CandidateGenerator::ExpectedCount(Technique::kHes), 0u);
}

}  // namespace
}  // namespace capplan::core
