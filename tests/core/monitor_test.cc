#include "core/monitor.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

// Builds a repository with one hourly CPU-like series.
repo::MetricsRepository MakeMetrics(double base, double trend_per_hour,
                                    unsigned seed, std::size_t n = 1100) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> v(n);
  for (std::size_t t = 0; t < n; ++t) {
    v[t] = base + trend_per_hour * static_cast<double>(t) +
           8.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  tsa::TimeSeries series("cdbm011/cpu", 0, tsa::Frequency::kHourly, v);
  repo::MetricsRepository metrics;
  EXPECT_TRUE(metrics.Ingest("cdbm011/cpu", series).ok());
  return metrics;
}

PipelineOptions FastOptions() {
  PipelineOptions opts;
  opts.technique = Technique::kHes;  // fast branch for tests
  opts.n_threads = 2;
  return opts;
}

TEST(MonitorTest, FirstEvaluationRefits) {
  auto metrics = MakeMetrics(50.0, 0.0, 1);
  repo::ModelRepository registry;
  MonitoringService service(&metrics, &registry, FastOptions());
  auto results = service.Evaluate({{"cdbm011/cpu", 90.0}}, /*now=*/1100 * 3600);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_TRUE((*results)[0].status.ok());
  EXPECT_TRUE((*results)[0].refitted);
  EXPECT_FALSE((*results)[0].model_spec.empty());
  EXPECT_TRUE(registry.Contains("cdbm011/cpu"));
  EXPECT_EQ(service.cached_forecasts(), 1u);
}

TEST(MonitorTest, SecondEvaluationUsesCache) {
  auto metrics = MakeMetrics(50.0, 0.0, 2);
  repo::ModelRepository registry;
  MonitoringService service(&metrics, &registry, FastOptions());
  const std::int64_t now = 1100 * 3600;
  ASSERT_TRUE(service.Evaluate({{"cdbm011/cpu", 90.0}}, now).ok());
  auto second = service.Evaluate({{"cdbm011/cpu", 90.0}}, now + 3600);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE((*second)[0].refitted);
}

TEST(MonitorTest, StaleModelRefitted) {
  auto metrics = MakeMetrics(50.0, 0.0, 3);
  repo::ModelRepository registry;
  MonitoringService service(&metrics, &registry, FastOptions());
  const std::int64_t now = 1100 * 3600;
  ASSERT_TRUE(service.Evaluate({{"cdbm011/cpu", 90.0}}, now).ok());
  // Eight days later the one-week policy forces a refit.
  auto later = service.Evaluate({{"cdbm011/cpu", 90.0}},
                                now + 8 * 24 * 3600);
  ASSERT_TRUE(later.ok());
  EXPECT_TRUE((*later)[0].refitted);
}

TEST(MonitorTest, BreachRaisedForGrowingMetric) {
  // Strong upward trend: CPU heading past the threshold within a day.
  auto metrics = MakeMetrics(40.0, 0.04, 4);
  repo::ModelRepository registry;
  MonitoringService service(&metrics, &registry, FastOptions());
  auto results = service.Evaluate({{"cdbm011/cpu", 1.0}}, 1100 * 3600);
  ASSERT_TRUE(results.ok());
  // Threshold of 1.0 is far below current usage -> immediate breach.
  EXPECT_TRUE((*results)[0].breach.mean_breach);
  EXPECT_EQ((*results)[0].breach.steps_to_mean_breach, 1u);
}

TEST(MonitorTest, NoBreachForCalmMetric) {
  auto metrics = MakeMetrics(50.0, 0.0, 5);
  repo::ModelRepository registry;
  MonitoringService service(&metrics, &registry, FastOptions());
  auto results = service.Evaluate({{"cdbm011/cpu", 500.0}}, 1100 * 3600);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE((*results)[0].breach.mean_breach);
  EXPECT_FALSE((*results)[0].breach.upper_breach);
}

TEST(MonitorTest, UnknownKeyReportsPerWatchError) {
  auto metrics = MakeMetrics(50.0, 0.0, 6);
  repo::ModelRepository registry;
  MonitoringService service(&metrics, &registry, FastOptions());
  auto results = service.Evaluate(
      {{"cdbm011/cpu", 90.0}, {"missing/key", 1.0}}, 1100 * 3600);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
  EXPECT_TRUE((*results)[0].status.ok());
  EXPECT_FALSE((*results)[1].status.ok());
  EXPECT_EQ((*results)[1].status.code(), StatusCode::kNotFound);
}

TEST(MonitorTest, EmptyWatchListRejected) {
  auto metrics = MakeMetrics(50.0, 0.0, 7);
  repo::ModelRepository registry;
  MonitoringService service(&metrics, &registry, FastOptions());
  EXPECT_FALSE(service.Evaluate({}, 0).ok());
}

}  // namespace
}  // namespace capplan::core
