#include "core/selector.h"

#include <cmath>
#include <random>
#include <set>

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

// Seasonal series with train/test split.
struct Data {
  std::vector<double> train, test;
};

Data SeasonalData(unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(24 * 35);
  for (std::size_t t = 0; t < y.size(); ++t) {
    y[t] = 50.0 + 12.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  Data d;
  d.train.assign(y.begin(), y.end() - 24);
  d.test.assign(y.end() - 24, y.end());
  return d;
}

ModelCandidate Arima(int p, int d, int q) {
  ModelCandidate c;
  c.family = Technique::kArima;
  c.spec = models::ArimaSpec{p, d, q, 0, 0, 0, 0};
  return c;
}

ModelCandidate Sarima(int p, int d, int q, int P, int D, int Q,
                      std::size_t s) {
  ModelCandidate c;
  c.family = Technique::kSarimax;
  c.spec = models::ArimaSpec{p, d, q, P, D, Q, s};
  return c;
}

TEST(SelectorTest, PicksSeasonalModelOnSeasonalData) {
  const Data d = SeasonalData(1);
  const std::vector<ModelCandidate> candidates = {
      Arima(1, 1, 1),
      Arima(2, 0, 1),
      Sarima(1, 0, 1, 0, 1, 1, 24),
  };
  ModelSelector selector;
  auto sel = selector.Select(d.train, d.test, candidates);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->evaluated, 3u);
  EXPECT_GE(sel->succeeded, 2u);
  EXPECT_TRUE(sel->best.candidate.spec.is_seasonal());
}

TEST(SelectorTest, TopListSortedByRmse) {
  const Data d = SeasonalData(2);
  const std::vector<ModelCandidate> candidates = {
      Arima(1, 0, 0), Arima(2, 0, 0), Arima(1, 1, 0),
      Sarima(1, 0, 0, 1, 1, 0, 24), Sarima(0, 0, 0, 0, 1, 1, 24),
  };
  ModelSelector::Options opts;
  opts.keep_top = 3;
  ModelSelector selector(opts);
  auto sel = selector.Select(d.train, d.test, candidates);
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->top.size(), 3u);
  EXPECT_LE(sel->top[0].accuracy.rmse, sel->top[1].accuracy.rmse);
  EXPECT_LE(sel->top[1].accuracy.rmse, sel->top[2].accuracy.rmse);
  EXPECT_DOUBLE_EQ(sel->top[0].accuracy.rmse, sel->best.accuracy.rmse);
}

TEST(SelectorTest, FailedCandidatesDoNotAbortSelection) {
  const Data d = SeasonalData(3);
  std::vector<ModelCandidate> candidates = {
      Arima(-5, 0, 0),  // invalid spec -> fit failure
      Arima(1, 0, 0),
  };
  ModelSelector selector;
  auto sel = selector.Select(d.train, d.test, candidates);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->evaluated, 2u);
  EXPECT_EQ(sel->succeeded, 1u);
  EXPECT_EQ(sel->best.candidate.spec.p, 1);
}

TEST(SelectorTest, AllFailuresReturnError) {
  const Data d = SeasonalData(4);
  std::vector<ModelCandidate> candidates = {Arima(-1, 0, 0)};
  ModelSelector selector;
  EXPECT_FALSE(selector.Select(d.train, d.test, candidates).ok());
}

TEST(SelectorTest, EmptyInputsRejected) {
  ModelSelector selector;
  EXPECT_FALSE(selector.Select({}, {1.0}, {Arima(1, 0, 0)}).ok());
  EXPECT_FALSE(selector.Select({1.0}, {}, {Arima(1, 0, 0)}).ok());
  EXPECT_FALSE(selector.Select({1.0}, {1.0}, {}).ok());
}

TEST(SelectorTest, ExogColumnValidation) {
  const Data d = SeasonalData(5);
  ModelSelector selector;
  // Wrong train column length.
  EXPECT_FALSE(selector
                   .Select(d.train, d.test, {Arima(1, 0, 0)},
                           {std::vector<double>(5, 0.0)}, {})
                   .ok());
  // Wrong test column length.
  EXPECT_FALSE(selector
                   .Select(d.train, d.test, {Arima(1, 0, 0)},
                           {std::vector<double>(d.train.size(), 0.0)},
                           {std::vector<double>(5, 0.0)})
                   .ok());
}

TEST(SelectorTest, ExogCandidateUsesShockColumns) {
  // Series with a large recurring pulse: the exog-aware candidate should
  // beat the plain one.
  std::mt19937 rng(6);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> y(24 * 30);
  std::vector<double> pulse(y.size(), 0.0);
  for (std::size_t t = 0; t < y.size(); ++t) {
    pulse[t] = (t % 24 == 0) ? 1.0 : 0.0;
    y[t] = 20.0 + 60.0 * pulse[t] + dist(rng);
  }
  const std::size_t n_train = y.size() - 24;
  const std::vector<double> train(y.begin(), y.begin() + n_train);
  const std::vector<double> test(y.begin() + n_train, y.end());
  const std::vector<double> pulse_train(pulse.begin(),
                                        pulse.begin() + n_train);
  const std::vector<double> pulse_test(pulse.begin() + n_train, pulse.end());

  ModelCandidate plain = Arima(1, 0, 1);
  ModelCandidate with_exog = Arima(1, 0, 1);
  with_exog.family = Technique::kSarimaxFftExog;
  with_exog.n_exog = 1;

  ModelSelector selector;
  auto sel = selector.Select(train, test, {plain, with_exog}, {pulse_train},
                             {pulse_test});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->best.candidate.n_exog, 1u);
}

TEST(SelectorTest, ParallelMatchesSerial) {
  const Data d = SeasonalData(7);
  std::vector<ModelCandidate> candidates;
  for (int p = 1; p <= 4; ++p) {
    for (int q = 0; q <= 1; ++q) candidates.push_back(Arima(p, 0, q));
  }
  ModelSelector::Options serial_opts;
  serial_opts.n_threads = 1;
  ModelSelector::Options parallel_opts;
  parallel_opts.n_threads = 8;
  auto serial = ModelSelector(serial_opts).Select(d.train, d.test, candidates);
  auto parallel =
      ModelSelector(parallel_opts).Select(d.train, d.test, candidates);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(serial->best.candidate.spec, parallel->best.candidate.spec);
  EXPECT_DOUBLE_EQ(serial->best.accuracy.rmse, parallel->best.accuracy.rmse);
}

TEST(SelectorTest, EvaluateReportsAccuracyBundle) {
  const Data d = SeasonalData(8);
  auto ev = ModelSelector::Evaluate(Sarima(1, 0, 0, 0, 1, 1, 24), d.train,
                                    d.test, {}, {});
  ASSERT_TRUE(ev.ok);
  EXPECT_GT(ev.accuracy.rmse, 0.0);
  EXPECT_GT(ev.accuracy.mapa, 50.0);
  EXPECT_EQ(ev.test_forecast.mean.size(), d.test.size());
  EXPECT_TRUE(std::isfinite(ev.aic));
}

}  // namespace
}  // namespace capplan::core
