#include "core/split.h"

#include <gtest/gtest.h>

namespace capplan::core {
namespace {

TEST(SplitPolicyTest, Table1HourlyRow) {
  auto p = SplitFor(tsa::Frequency::kHourly);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->observations, 1008u);
  EXPECT_EQ(p->train, 984u);
  EXPECT_EQ(p->test, 24u);
  EXPECT_EQ(p->prediction, 24u);
}

TEST(SplitPolicyTest, Table1DailyRow) {
  auto p = SplitFor(tsa::Frequency::kDaily);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->observations, 90u);
  EXPECT_EQ(p->train, 83u);
  EXPECT_EQ(p->test, 7u);
  EXPECT_EQ(p->prediction, 7u);
}

TEST(SplitPolicyTest, Table1WeeklyRow) {
  auto p = SplitFor(tsa::Frequency::kWeekly);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->observations, 92u);
  EXPECT_EQ(p->train, 88u);
  EXPECT_EQ(p->test, 4u);
  EXPECT_EQ(p->prediction, 4u);
}

TEST(SplitPolicyTest, TrainPlusTestEqualsObservations) {
  for (auto f : {tsa::Frequency::kHourly, tsa::Frequency::kDaily,
                 tsa::Frequency::kWeekly}) {
    auto p = SplitFor(f);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->train + p->test, p->observations);
  }
}

TEST(SplitPolicyTest, UnsupportedFrequenciesFail) {
  EXPECT_FALSE(SplitFor(tsa::Frequency::kQuarterHourly).ok());
  EXPECT_FALSE(SplitFor(tsa::Frequency::kMonthly).ok());
}

TEST(ApplySplitTest, ExactLengthSeries) {
  tsa::TimeSeries ts("m", 0, tsa::Frequency::kHourly,
                     std::vector<double>(1008, 1.0));
  auto parts = ApplySplit(ts);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->first.size(), 984u);
  EXPECT_EQ(parts->second.size(), 24u);
}

TEST(ApplySplitTest, LongerSeriesUsesMostRecentWindow) {
  std::vector<double> v(1200);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  tsa::TimeSeries ts("m", 0, tsa::Frequency::kHourly, v);
  auto parts = ApplySplit(ts);
  ASSERT_TRUE(parts.ok());
  // The window is the last 1008 observations: first train value = 192.
  EXPECT_DOUBLE_EQ(parts->first[0], 192.0);
  EXPECT_DOUBLE_EQ(parts->second[23], 1199.0);
}

TEST(ApplySplitTest, ShortSeriesFails) {
  tsa::TimeSeries ts("m", 0, tsa::Frequency::kHourly,
                     std::vector<double>(500, 1.0));
  EXPECT_FALSE(ApplySplit(ts).ok());
}

TEST(TechniqueNameTest, AllNamed) {
  EXPECT_STREQ(TechniqueName(Technique::kArima), "ARIMA");
  EXPECT_STREQ(TechniqueName(Technique::kSarimax), "SARIMAX");
  EXPECT_STREQ(TechniqueName(Technique::kSarimaxFftExog),
               "SARIMAX_FFT_EXOG");
  EXPECT_STREQ(TechniqueName(Technique::kHes), "HES");
  EXPECT_STREQ(TechniqueName(Technique::kTbats), "TBATS");
  EXPECT_STREQ(TechniqueName(Technique::kAuto), "AUTO");
}

}  // namespace
}  // namespace capplan::core
