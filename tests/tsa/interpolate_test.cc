#include "tsa/interpolate.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

const double kNan = std::nan("");

TEST(InterpolateTest, FillsInteriorGap) {
  auto out = LinearInterpolate(std::vector<double>{1.0, kNan, 3.0});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[1], 2.0);
}

TEST(InterpolateTest, FillsLongGapLinearly) {
  auto out = LinearInterpolate(std::vector<double>{0.0, kNan, kNan, kNan, 4.0});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[1], 1.0);
  EXPECT_DOUBLE_EQ((*out)[2], 2.0);
  EXPECT_DOUBLE_EQ((*out)[3], 3.0);
}

TEST(InterpolateTest, LeadingTrailingFilledWithNearest) {
  auto out =
      LinearInterpolate(std::vector<double>{kNan, kNan, 5.0, 6.0, kNan});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0], 5.0);
  EXPECT_DOUBLE_EQ((*out)[1], 5.0);
  EXPECT_DOUBLE_EQ((*out)[4], 6.0);
}

TEST(InterpolateTest, NoGapsIsIdentity) {
  const std::vector<double> x{1, 2, 3};
  auto out = LinearInterpolate(x);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, x);
}

TEST(InterpolateTest, AllMissingFails) {
  EXPECT_FALSE(LinearInterpolate(std::vector<double>{kNan, kNan}).ok());
}

TEST(InterpolateTest, MultipleGaps) {
  auto out = LinearInterpolate(
      std::vector<double>{0.0, kNan, 2.0, kNan, kNan, 8.0});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[1], 1.0);
  EXPECT_DOUBLE_EQ((*out)[3], 4.0);
  EXPECT_DOUBLE_EQ((*out)[4], 6.0);
}

TEST(InterpolateTest, TimeSeriesWrapperPreservesMetadata) {
  TimeSeries ts("cdbm011/cpu", 7200, Frequency::kHourly, {1.0, kNan, 3.0});
  auto out = LinearInterpolate(ts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->name(), "cdbm011/cpu");
  EXPECT_EQ(out->start_epoch(), 7200);
  EXPECT_EQ(out->frequency(), Frequency::kHourly);
  EXPECT_FALSE(out->HasMissing());
}

TEST(MissingFractionTest, Computation) {
  EXPECT_DOUBLE_EQ(MissingFraction({1.0, kNan, 3.0, kNan}), 0.5);
  EXPECT_DOUBLE_EQ(MissingFraction({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(MissingFraction({}), 0.0);
}

}  // namespace
}  // namespace capplan::tsa
