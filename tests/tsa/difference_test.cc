#include "tsa/difference.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

TEST(DifferenceTest, FirstDifference) {
  const auto d = Difference({1, 3, 6, 10}, 1);
  EXPECT_EQ(d, (std::vector<double>{2, 3, 4}));
}

TEST(DifferenceTest, SeasonalLag) {
  const auto d = Difference({1, 2, 3, 11, 12, 13}, 3);
  EXPECT_EQ(d, (std::vector<double>{10, 10, 10}));
}

TEST(DifferenceTest, TooShortReturnsEmpty) {
  EXPECT_TRUE(Difference({1, 2}, 2).empty());
  EXPECT_TRUE(Difference({1, 2, 3}, 0).empty());
}

TEST(DifferenceTest, LinearTrendKilledByFirstDifference) {
  std::vector<double> x(20);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 5.0 + 2.0 * static_cast<double>(i);
  }
  const auto d = Difference(x, 1);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(DifferenceManyTest, CombinedOrdinaryAndSeasonal) {
  std::vector<double> x(30);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i) +
           4.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 6.0);
  }
  const auto d = DifferenceMany(x, 1, 1, 6);
  EXPECT_EQ(d.size(), x.size() - 1 - 6);
  // Trend and the period-6 cycle are both removed: residuals ~ 0.
  for (double v : d) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(UndifferenceTest, InvertsDifference) {
  const std::vector<double> x{3, 1, 4, 1, 5, 9, 2, 6};
  const auto d = Difference(x, 1);
  // Reconstruct x[1..] from d given x[0].
  const auto back = Undifference(d, {x[0]}, 1);
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], x[i + 1], 1e-12);
  }
}

TEST(UndifferenceTest, SeasonalInverse) {
  const std::vector<double> x{1, 2, 3, 4, 6, 8, 10, 12};
  const std::size_t lag = 4;
  const auto d = Difference(x, lag);
  const std::vector<double> init(x.begin(), x.begin() + 4);
  const auto back = Undifference(d, init, lag);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_NEAR(back[i], x[i + lag], 1e-12);
  }
}

class IntegrateForecastTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(IntegrateForecastTest, RoundTripsFutureValues) {
  const auto [d, D, period] = GetParam();
  // Build a deterministic "full" series, treat the head as training data and
  // verify that differencing the full series and integrating the tail
  // reproduces the true future values.
  const std::size_t n_total = 80;
  const std::size_t n_train = 60;
  std::vector<double> full(n_total);
  for (std::size_t i = 0; i < n_total; ++i) {
    full[i] = 0.3 * static_cast<double>(i) +
              5.0 * std::sin(2.0 * M_PI * static_cast<double>(i) / 8.0) +
              std::cos(0.7 * static_cast<double>(i));
  }
  const std::vector<double> train(full.begin(), full.begin() + n_train);
  const auto full_diff = DifferenceMany(full, d, D, period);
  const std::size_t consumed = n_total - full_diff.size();
  // The differenced values corresponding to the future.
  std::vector<double> future_diff(
      full_diff.begin() + static_cast<std::ptrdiff_t>(n_train - consumed),
      full_diff.end());
  const auto reconstructed =
      IntegrateForecast(train, future_diff, d, D, period);
  ASSERT_EQ(reconstructed.size(), n_total - n_train);
  for (std::size_t i = 0; i < reconstructed.size(); ++i) {
    EXPECT_NEAR(reconstructed[i], full[n_train + i], 1e-9) << "step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, IntegrateForecastTest,
    ::testing::Values(std::make_tuple(1, 0, std::size_t{0}),
                      std::make_tuple(2, 0, std::size_t{0}),
                      std::make_tuple(0, 1, std::size_t{8}),
                      std::make_tuple(1, 1, std::size_t{8}),
                      std::make_tuple(2, 1, std::size_t{4})));

TEST(IntegrateForecastTest, ZeroOrdersIsIdentity) {
  const std::vector<double> train{1, 2, 3};
  const std::vector<double> fc{4, 5};
  EXPECT_EQ(IntegrateForecast(train, fc, 0, 0, 0), fc);
}

}  // namespace
}  // namespace capplan::tsa
