#include "tsa/fourier.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

TEST(FourierTest, ColumnCount) {
  EXPECT_EQ(FourierColumnCount({{24.0, 2}}), 4u);
  EXPECT_EQ(FourierColumnCount({{24.0, 2}, {168.0, 3}}), 10u);
  EXPECT_EQ(FourierColumnCount({}), 0u);
}

TEST(FourierTest, ValuesMatchDefinition) {
  auto cols = FourierTerms({{24.0, 1}}, 0, 48);
  ASSERT_TRUE(cols.ok());
  ASSERT_EQ(cols->size(), 2u);
  for (std::size_t t = 0; t < 48; ++t) {
    const double w = 2.0 * M_PI * static_cast<double>(t) / 24.0;
    EXPECT_NEAR((*cols)[0][t], std::sin(w), 1e-12);
    EXPECT_NEAR((*cols)[1][t], std::cos(w), 1e-12);
  }
}

TEST(FourierTest, PeriodicityAtThePeriod) {
  auto cols = FourierTerms({{24.0, 2}}, 0, 96);
  ASSERT_TRUE(cols.ok());
  for (const auto& col : *cols) {
    for (std::size_t t = 0; t + 24 < col.size(); ++t) {
      EXPECT_NEAR(col[t], col[t + 24], 1e-9);
    }
  }
}

TEST(FourierTest, OffsetContinuesPhase) {
  // Columns over [0, 100) and a continuation over [60, 100) must agree.
  auto full = FourierTerms({{24.0, 2}}, 0, 100);
  auto tail = FourierTerms({{24.0, 2}}, 60, 40);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(tail.ok());
  for (std::size_t c = 0; c < full->size(); ++c) {
    for (std::size_t t = 0; t < 40; ++t) {
      EXPECT_NEAR((*full)[c][60 + t], (*tail)[c][t], 1e-12);
    }
  }
}

TEST(FourierTest, NonIntegerPeriodAccepted) {
  auto cols = FourierTerms({{24.5, 1}}, 0, 50);
  EXPECT_TRUE(cols.ok());
}

TEST(FourierTest, RejectsBadPeriods) {
  EXPECT_FALSE(FourierTerms({{1.0, 1}}, 0, 10).ok());
  EXPECT_FALSE(FourierTerms({{0.0, 1}}, 0, 10).ok());
}

TEST(FourierTest, RejectsAliasedHarmonics) {
  // 2k >= period would alias.
  EXPECT_FALSE(FourierTerms({{4.0, 2}}, 0, 10).ok());
  EXPECT_TRUE(FourierTerms({{5.0, 2}}, 0, 10).ok());
}

TEST(FourierTest, MultiplePeriodsConcatenated) {
  auto cols = FourierTerms({{24.0, 1}, {168.0, 2}}, 0, 200);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->size(), 6u);
  // First two columns follow period 24, the rest period 168.
  EXPECT_NEAR((*cols)[0][24], (*cols)[0][0], 1e-9);
  EXPECT_NEAR((*cols)[2][168], (*cols)[2][0], 1e-9);
}

TEST(FourierTermCacheTest, MissThenHitReturnsIdenticalColumns) {
  FourierTermCache cache;
  const std::vector<FourierSpec> specs = {{24.0, 2}, {168.0, 3}};
  auto first = cache.Get(specs, 0, 1008);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  auto second = cache.Get(specs, 0, 1008);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // A hit hands back the very same immutable columns.
  EXPECT_EQ(first->get(), second->get());

  auto direct = FourierTerms(specs, 0, 1008);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ((*first)->size(), direct->size());
  for (std::size_t c = 0; c < direct->size(); ++c) {
    ASSERT_EQ((**first)[c].size(), (*direct)[c].size());
    for (std::size_t i = 0; i < (*direct)[c].size(); ++i) {
      EXPECT_EQ((**first)[c][i], (*direct)[c][i]) << c << "," << i;
    }
  }
}

TEST(FourierTermCacheTest, DistinctWindowsAreDistinctEntries) {
  FourierTermCache cache;
  const std::vector<FourierSpec> specs = {{24.0, 2}};
  ASSERT_TRUE(cache.Get(specs, 0, 100).ok());
  ASSERT_TRUE(cache.Get(specs, 0, 101).ok());   // different length
  ASSERT_TRUE(cache.Get(specs, 50, 100).ok());  // different offset
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(FourierTermCacheTest, FailuresAreNotCached) {
  FourierTermCache cache;
  EXPECT_FALSE(cache.Get({{1.0, 1}}, 0, 10).ok());  // period <= 1
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

}  // namespace
}  // namespace capplan::tsa
