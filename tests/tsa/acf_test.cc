#include "tsa/acf.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

std::vector<double> WhiteNoise(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

std::vector<double> Ar1(std::size_t n, double phi, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(n, 0.0);
  for (std::size_t t = 1; t < n; ++t) x[t] = phi * x[t - 1] + dist(rng);
  return x;
}

TEST(AcfTest, LagZeroIsOne) {
  auto acf = Acf(WhiteNoise(200, 1), 10);
  ASSERT_TRUE(acf.ok());
  EXPECT_DOUBLE_EQ((*acf)[0], 1.0);
  EXPECT_EQ(acf->size(), 11u);
}

TEST(AcfTest, WhiteNoiseStaysInsideBand) {
  auto acf = Acf(WhiteNoise(2000, 7), 20);
  ASSERT_TRUE(acf.ok());
  const double band = WhiteNoiseBand(2000);
  int outside = 0;
  for (std::size_t k = 1; k <= 20; ++k) {
    if (std::fabs((*acf)[k]) > band) ++outside;
  }
  EXPECT_LE(outside, 3);  // ~5% expected outside a 95% band
}

TEST(AcfTest, Ar1AcfDecaysGeometrically) {
  auto acf = Acf(Ar1(20000, 0.7, 11), 5);
  ASSERT_TRUE(acf.ok());
  EXPECT_NEAR((*acf)[1], 0.7, 0.05);
  EXPECT_NEAR((*acf)[2], 0.49, 0.05);
  EXPECT_NEAR((*acf)[3], 0.343, 0.06);
}

TEST(AcfTest, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> x(240);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 24.0);
  }
  auto acf = Acf(x, 30);
  ASSERT_TRUE(acf.ok());
  EXPECT_GT((*acf)[24], 0.9);
  EXPECT_LT((*acf)[12], -0.9);
}

TEST(AcfTest, RejectsShortOrConstantSeries) {
  EXPECT_FALSE(Acf({1.0, 2.0}, 5).ok());
  EXPECT_FALSE(Acf(std::vector<double>(50, 3.0), 5).ok());
}

TEST(PacfTest, Ar1CutsOffAfterLagOne) {
  auto pacf = Pacf(Ar1(20000, 0.6, 3), 6);
  ASSERT_TRUE(pacf.ok());
  EXPECT_NEAR((*pacf)[0], 0.6, 0.05);
  for (std::size_t k = 1; k < 6; ++k) {
    EXPECT_LT(std::fabs((*pacf)[k]), 0.06) << "lag " << k + 1;
  }
}

TEST(PacfTest, Ar2CutsOffAfterLagTwo) {
  std::mt19937 rng(17);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(20000, 0.0);
  for (std::size_t t = 2; t < x.size(); ++t) {
    x[t] = 0.5 * x[t - 1] - 0.3 * x[t - 2] + dist(rng);
  }
  auto pacf = Pacf(x, 6);
  ASSERT_TRUE(pacf.ok());
  EXPECT_NEAR((*pacf)[1], -0.3, 0.05);
  for (std::size_t k = 2; k < 6; ++k) {
    EXPECT_LT(std::fabs((*pacf)[k]), 0.06);
  }
}

TEST(WhiteNoiseBandTest, Formula) {
  EXPECT_NEAR(WhiteNoiseBand(100), 0.196, 1e-3);
  EXPECT_DOUBLE_EQ(WhiteNoiseBand(0), 0.0);
}

TEST(SignificantLagsTest, FindsLagsOutsideBand) {
  // Correlogram with lags 2 and 5 clearly significant for n = 100.
  const std::vector<double> corr{0.05, 0.5, -0.1, 0.02, 0.4};
  const auto lags = SignificantLags(corr, 100);
  EXPECT_EQ(lags, (std::vector<std::size_t>{2, 5}));
}

TEST(LjungBoxTest, WhiteNoiseNotRejected) {
  // A 5% test rejects ~5% of white-noise draws; check that most seeds pass
  // rather than pinning one draw.
  int rejected = 0;
  for (unsigned seed = 100; seed < 110; ++seed) {
    auto lb = LjungBox(WhiteNoise(500, seed), 10);
    ASSERT_TRUE(lb.ok());
    if (lb->p_value < 0.05) ++rejected;
  }
  EXPECT_LE(rejected, 2);
}

TEST(LjungBoxTest, CorrelatedResidualsRejected) {
  auto lb = LjungBox(Ar1(500, 0.8, 29), 10);
  ASSERT_TRUE(lb.ok());
  EXPECT_LT(lb->p_value, 0.01);
  EXPECT_GT(lb->statistic, 0.0);
}

TEST(LjungBoxTest, RejectsBadLagCounts) {
  EXPECT_FALSE(LjungBox(WhiteNoise(50, 1), 0).ok());
  EXPECT_FALSE(LjungBox(WhiteNoise(50, 1), 50).ok());
}

}  // namespace
}  // namespace capplan::tsa
