#include "tsa/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

TEST(RmseTest, KnownValue) {
  auto r = Rmse({1, 2, 3}, {1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
  r = Rmse({0, 0, 0, 0}, {1, 1, 1, 1});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 1.0);
  r = Rmse({0, 0}, {3, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, std::sqrt(12.5), 1e-12);
}

TEST(RmseTest, RejectsBadInputs) {
  EXPECT_FALSE(Rmse({}, {}).ok());
  EXPECT_FALSE(Rmse({1, 2}, {1}).ok());
}

TEST(MaeTest, KnownValue) {
  auto r = Mae({1, 2, 3}, {2, 1, 5});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, (1 + 1 + 2) / 3.0, 1e-12);
}

TEST(MapeTest, KnownValue) {
  auto r = Mape({100, 200}, {110, 180});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 10.0, 1e-10);  // (10% + 10%) / 2
}

TEST(MapeTest, SkipsNearZeroActuals) {
  auto r = Mape({0.0, 100.0}, {5.0, 110.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 10.0, 1e-10);
}

TEST(MapeTest, AllZeroActualsFails) {
  EXPECT_FALSE(Mape({0.0, 0.0}, {1.0, 1.0}).ok());
}

TEST(MapaTest, ComplementOfMape) {
  auto r = Mapa({100, 100}, {90, 110});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 90.0, 1e-10);
}

TEST(MapaTest, FlooredAtZero) {
  // Catastrophic forecast: MAPE > 100 -> MAPA clamps to 0, like the paper's
  // IOPS MAPEs of 4533% mapping to 0 accuracy.
  auto r = Mapa({1.0, 1.0}, {100.0, 100.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(SmapeTest, SymmetricAndBounded) {
  auto a = Smape({100, 100}, {110, 90});
  ASSERT_TRUE(a.ok());
  auto b = Smape({110, 90}, {100, 100});
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(*a, *b, 1e-12);
  auto extreme = Smape({1, 1}, {1000, 1000});
  ASSERT_TRUE(extreme.ok());
  EXPECT_LE(*extreme, 200.0);
}

TEST(MeasureAccuracyTest, AllFieldsPopulated) {
  auto rep = MeasureAccuracy({10, 20, 30}, {11, 19, 33});
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep->rmse, 0.0);
  EXPECT_GT(rep->mae, 0.0);
  EXPECT_GT(rep->mape, 0.0);
  EXPECT_NEAR(rep->mapa, 100.0 - rep->mape, 1e-10);
  EXPECT_GT(rep->smape, 0.0);
}

TEST(MeasureAccuracyTest, DegradesGracefullyOnZeroActuals) {
  auto rep = MeasureAccuracy({0, 0}, {1, 1});
  ASSERT_TRUE(rep.ok());
  EXPECT_GT(rep->rmse, 0.0);
  EXPECT_TRUE(std::isnan(rep->mape));
}

TEST(InformationCriteriaTest, AicPenalizesParameters) {
  const double aic_small = AicFromSse(100.0, 50, 2);
  const double aic_big = AicFromSse(100.0, 50, 10);
  EXPECT_LT(aic_small, aic_big);
  EXPECT_NEAR(aic_big - aic_small, 16.0, 1e-12);
}

TEST(InformationCriteriaTest, BicPenalizesHarderForLargeN) {
  const std::size_t n = 1000;
  const double bic_gap = BicFromSse(100.0, n, 10) - BicFromSse(100.0, n, 2);
  const double aic_gap = AicFromSse(100.0, n, 10) - AicFromSse(100.0, n, 2);
  EXPECT_GT(bic_gap, aic_gap);
}

TEST(InformationCriteriaTest, LowerSseLowerAic) {
  EXPECT_LT(AicFromSse(50.0, 100, 3), AicFromSse(100.0, 100, 3));
}

}  // namespace
}  // namespace capplan::tsa
