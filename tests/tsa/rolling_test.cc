#include "tsa/rolling.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

// Naive mean forecaster for deterministic checks.
ForecastFn MeanForecaster() {
  return [](const std::vector<double>& train,
            std::size_t horizon) -> Result<std::vector<double>> {
    double mu = 0.0;
    for (double v : train) mu += v;
    mu /= static_cast<double>(train.size());
    return std::vector<double>(horizon, mu);
  };
}

// Last-value (naive) forecaster.
ForecastFn NaiveForecaster() {
  return [](const std::vector<double>& train,
            std::size_t horizon) -> Result<std::vector<double>> {
    return std::vector<double>(horizon, train.back());
  };
}

TEST(RollingTest, CountsOriginsCorrectly) {
  std::vector<double> x(200, 1.0);
  RollingOptions opts;
  opts.min_train = 100;
  opts.horizon = 10;
  opts.stride = 25;
  auto out = RollingEvaluate(x, MeanForecaster(), opts);
  ASSERT_TRUE(out.ok());
  // Origins at 100, 125, 150, 175 (190 would exceed with horizon 10? 175+10
  // = 185 <= 200, 200 would be next at 200 + 10 > 200).
  EXPECT_EQ(out->origins_attempted, 4u);
  EXPECT_EQ(out->origins_succeeded, 4u);
}

TEST(RollingTest, PerfectForecastZeroError) {
  std::vector<double> x(300, 7.5);
  auto out = RollingEvaluate(x, MeanForecaster());
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->mean_accuracy.rmse, 0.0, 1e-12);
  EXPECT_NEAR(out->mean_accuracy.mapa, 100.0, 1e-9);
}

TEST(RollingTest, RanksForecastersCorrectly) {
  // Trending series: the naive (last value) forecaster beats the global
  // mean forecaster.
  std::vector<double> x(400);
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(0.0, 0.5);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 0.5 * static_cast<double>(t) + dist(rng);
  }
  auto mean_out = RollingEvaluate(x, MeanForecaster());
  auto naive_out = RollingEvaluate(x, NaiveForecaster());
  ASSERT_TRUE(mean_out.ok());
  ASSERT_TRUE(naive_out.ok());
  EXPECT_LT(naive_out->mean_accuracy.rmse, mean_out->mean_accuracy.rmse);
}

TEST(RollingTest, MaxOriginsRespected) {
  std::vector<double> x(1000, 2.0);
  RollingOptions opts;
  opts.max_origins = 3;
  auto out = RollingEvaluate(x, MeanForecaster(), opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->origins_attempted, 3u);
}

TEST(RollingTest, FailedOriginsSkippedNotFatal) {
  std::vector<double> x(250, 1.0);
  int calls = 0;
  ForecastFn flaky = [&calls](const std::vector<double>& train,
                              std::size_t horizon)
      -> Result<std::vector<double>> {
    if (++calls % 2 == 0) return Status::ComputeError("flaky");
    return std::vector<double>(horizon, train.back());
  };
  auto out = RollingEvaluate(x, flaky);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->origins_attempted, out->origins_succeeded);
  EXPECT_GT(out->origins_succeeded, 0u);
}

TEST(RollingTest, AllFailuresIsError) {
  std::vector<double> x(250, 1.0);
  ForecastFn broken = [](const std::vector<double>&,
                         std::size_t) -> Result<std::vector<double>> {
    return Status::ComputeError("always fails");
  };
  EXPECT_FALSE(RollingEvaluate(x, broken).ok());
}

TEST(RollingTest, ValidatesInputs) {
  std::vector<double> x(50, 1.0);
  RollingOptions opts;
  opts.min_train = 100;
  EXPECT_FALSE(RollingEvaluate(x, MeanForecaster(), opts).ok());
  RollingOptions zero;
  zero.horizon = 0;
  EXPECT_FALSE(RollingEvaluate(x, MeanForecaster(), zero).ok());
}

TEST(RollingTest, RmsePerOriginExposed) {
  std::vector<double> x(300);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = static_cast<double>(t % 7);
  }
  auto out = RollingEvaluate(x, NaiveForecaster());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rmse_by_origin.size(), out->origins_succeeded);
  for (double r : out->rmse_by_origin) EXPECT_GE(r, 0.0);
}

}  // namespace
}  // namespace capplan::tsa
