#include "tsa/calendar.h"

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace capplan::tsa {
namespace {

TEST(CalendarTest, EpochZeroIsThursdayMidnight) {
  EXPECT_EQ(HourOfDay(0), 0);
  EXPECT_EQ(MinuteOfHour(0), 0);
  EXPECT_EQ(DayOfWeek(0), 3);  // Thursday
  EXPECT_FALSE(IsWeekend(0));
  const CivilDate d = ToCivilDate(0);
  EXPECT_EQ(d.year, 1970);
  EXPECT_EQ(d.month, 1);
  EXPECT_EQ(d.day, 1);
}

TEST(CalendarTest, ExperimentStartIsMonday2019) {
  const auto epoch = workload::kExperimentStartEpoch;  // 2019-06-03 00:00
  EXPECT_EQ(DayOfWeek(epoch), 0);  // Monday
  const CivilDate d = ToCivilDate(epoch);
  EXPECT_EQ(d.year, 2019);
  EXPECT_EQ(d.month, 6);
  EXPECT_EQ(d.day, 3);
  EXPECT_EQ(FormatTimestamp(epoch), "2019-06-03 00:00");
}

TEST(CalendarTest, HourAndMinuteArithmetic) {
  const std::int64_t t = 7 * 3600 + 42 * 60 + 13;
  EXPECT_EQ(HourOfDay(t), 7);
  EXPECT_EQ(MinuteOfHour(t), 42);
}

TEST(CalendarTest, WeekendDetection) {
  // 2019-06-08 is a Saturday (5 days after Monday 2019-06-03).
  const auto sat = workload::kExperimentStartEpoch + 5 * 86400;
  EXPECT_TRUE(IsWeekend(sat));
  EXPECT_TRUE(IsWeekend(sat + 86400));        // Sunday
  EXPECT_FALSE(IsWeekend(sat + 2 * 86400));   // Monday
}

TEST(CalendarTest, DaysBetween) {
  EXPECT_EQ(DaysBetween(0, 86400), 1);
  EXPECT_EQ(DaysBetween(0, 86399), 0);
  EXPECT_EQ(DaysBetween(86400, 0), -1);
  // Crossing a midnight counts even for a short span.
  EXPECT_EQ(DaysBetween(86400 - 1, 86400 + 1), 1);
}

TEST(CalendarTest, LeapYearHandled) {
  // 2020-02-29 00:00 UTC = 1582934400.
  const CivilDate d = ToCivilDate(1582934400);
  EXPECT_EQ(d.year, 2020);
  EXPECT_EQ(d.month, 2);
  EXPECT_EQ(d.day, 29);
}

TEST(CalendarTest, NegativeEpochsSane) {
  // 1969-12-31 23:00.
  const std::int64_t t = -3600;
  EXPECT_EQ(HourOfDay(t), 23);
  const CivilDate d = ToCivilDate(t);
  EXPECT_EQ(d.year, 1969);
  EXPECT_EQ(d.month, 12);
  EXPECT_EQ(d.day, 31);
}

TEST(CalendarTest, FormatDurationForms) {
  EXPECT_EQ(FormatDuration(0), "00:00");
  EXPECT_EQ(FormatDuration(3 * 3600 + 30 * 60), "03:30");
  EXPECT_EQ(FormatDuration(2 * 86400 + 7 * 3600 + 5 * 60), "2d 07:05");
  EXPECT_EQ(FormatDuration(-10), "00:00");
}

}  // namespace
}  // namespace capplan::tsa
