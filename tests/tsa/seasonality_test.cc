#include "tsa/seasonality.h"

#include <algorithm>
#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

std::vector<double> MakeSeries(std::size_t n,
                               const std::vector<std::pair<double, double>>&
                                   period_amplitudes,
                               double noise, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, noise);
  std::vector<double> x(n, 50.0);
  for (std::size_t t = 0; t < n; ++t) {
    for (const auto& [period, amp] : period_amplitudes) {
      x[t] += amp * std::sin(2.0 * M_PI * static_cast<double>(t) / period);
    }
    if (noise > 0.0) x[t] += dist(rng);
  }
  return x;
}

TEST(SeasonalityTest, DetectsDailyPeriod) {
  const auto x = MakeSeries(24 * 30, {{24.0, 10.0}}, 0.5, 1);
  auto seasons = DetectSeasonality(x);
  ASSERT_TRUE(seasons.ok());
  ASSERT_FALSE(seasons->empty());
  EXPECT_EQ(seasons->front().period, 24u);
}

TEST(SeasonalityTest, DetectsMultipleSeasonality) {
  const auto x = MakeSeries(24 * 7 * 6, {{24.0, 8.0}, {168.0, 12.0}}, 0.5, 2);
  auto seasons = DetectSeasonality(x);
  ASSERT_TRUE(seasons.ok());
  ASSERT_GE(seasons->size(), 2u);
  std::vector<std::size_t> periods;
  for (const auto& s : *seasons) periods.push_back(s.period);
  EXPECT_NE(std::find(periods.begin(), periods.end(), 24u), periods.end());
  EXPECT_NE(std::find(periods.begin(), periods.end(), 168u), periods.end());
  auto multiple = HasMultipleSeasonality(x);
  ASSERT_TRUE(multiple.ok());
  EXPECT_TRUE(*multiple);
}

TEST(SeasonalityTest, WhiteNoiseHasNoSeasons) {
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(24 * 30);
  for (auto& v : x) v = dist(rng);
  auto seasons = DetectSeasonality(x);
  ASSERT_TRUE(seasons.ok());
  EXPECT_TRUE(seasons->empty());
  auto multiple = HasMultipleSeasonality(x);
  ASSERT_TRUE(multiple.ok());
  EXPECT_FALSE(*multiple);
}

TEST(SeasonalityTest, SingleSeasonIsNotMultiple) {
  const auto x = MakeSeries(24 * 30, {{24.0, 10.0}}, 0.2, 4);
  auto multiple = HasMultipleSeasonality(x);
  ASSERT_TRUE(multiple.ok());
  EXPECT_FALSE(*multiple);
}

TEST(SeasonalityTest, HarmonicsSuppressed) {
  // A non-sinusoidal daily pattern has spectral power at 24 and its
  // harmonics 12, 8, 6...; only 24 should be reported.
  std::vector<double> x(24 * 30);
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double phase = static_cast<double>(t % 24);
    x[t] = (phase >= 8 && phase < 18) ? 100.0 : 20.0;  // square wave
  }
  auto seasons = DetectSeasonality(x);
  ASSERT_TRUE(seasons.ok());
  ASSERT_FALSE(seasons->empty());
  EXPECT_EQ(seasons->front().period, 24u);
  for (const auto& s : *seasons) {
    EXPECT_NE(s.period, 12u);
    EXPECT_NE(s.period, 8u);
    EXPECT_NE(s.period, 6u);
  }
}

TEST(SeasonalityTest, TrendDoesNotMaskSeason) {
  auto x = MakeSeries(24 * 21, {{24.0, 10.0}}, 0.5, 5);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] += 0.05 * static_cast<double>(t);
  }
  auto seasons = DetectSeasonality(x);
  ASSERT_TRUE(seasons.ok());
  ASSERT_FALSE(seasons->empty());
  EXPECT_EQ(seasons->front().period, 24u);
}

TEST(SeasonalityTest, ShortSeriesRejected) {
  EXPECT_FALSE(DetectSeasonality(std::vector<double>(10, 1.0)).ok());
}

TEST(SeasonalityTest, ReportsAcfAndPower) {
  const auto x = MakeSeries(24 * 30, {{24.0, 10.0}}, 0.3, 6);
  auto seasons = DetectSeasonality(x);
  ASSERT_TRUE(seasons.ok());
  ASSERT_FALSE(seasons->empty());
  EXPECT_GT(seasons->front().power, 0.0);
  EXPECT_GT(seasons->front().acf, 0.5);
}

TEST(SeasonalityTest, MaxPeriodsRespected) {
  const auto x = MakeSeries(24 * 7 * 8,
                            {{24.0, 8.0}, {168.0, 10.0}, {56.0, 6.0}}, 0.3, 7);
  SeasonalityOptions opts;
  opts.max_periods = 2;
  auto seasons = DetectSeasonality(x, opts);
  ASSERT_TRUE(seasons.ok());
  EXPECT_LE(seasons->size(), 2u);
}

}  // namespace
}  // namespace capplan::tsa
