#include "tsa/mstl.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

std::vector<double> DailyWeekly(unsigned seed, std::size_t n,
                                double noise_sigma = 0.5) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, noise_sigma);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double td = static_cast<double>(t);
    x[t] = 40.0 + 0.01 * td +
           10.0 * std::sin(2.0 * M_PI * td / 24.0) +
           5.0 * std::sin(2.0 * M_PI * td / 168.0) + dist(rng);
  }
  return x;
}

// The property /v1/decompose's payload contract rests on: for any input the
// published components sum back to the input exactly (float addition only).
TEST(MstlTest, AdditiveIdentityHoldsOnRandomInputs) {
  for (unsigned seed : {1u, 2u, 3u, 4u}) {
    const std::vector<double> x = DailyWeekly(seed, 24 * 28, 2.0);
    auto d = MstlDecompose(x, {24, 168});
    ASSERT_TRUE(d.ok()) << d.status();
    ASSERT_EQ(d->periods, (std::vector<std::size_t>{24, 168}));
    ASSERT_EQ(d->seasonal.size(), 2u);
    for (std::size_t t = 0; t < x.size(); ++t) {
      double sum = d->trend[t] + d->remainder[t];
      for (const auto& s : d->seasonal) sum += s[t];
      EXPECT_NEAR(sum, x[t], 1e-9) << "seed " << seed << " t=" << t;
    }
  }
}

TEST(MstlTest, SeasonalComponentsCarryTheirCycles) {
  // Golden shape check on a noiseless series: the period-24 component must
  // carry (most of) the daily amplitude and the period-168 component the
  // weekly one.
  const std::vector<double> x = DailyWeekly(0, 24 * 28, 0.0);
  auto d = MstlDecompose(x, {24, 168});
  ASSERT_TRUE(d.ok()) << d.status();
  double daily_peak = 0.0, weekly_peak = 0.0;
  for (double v : d->seasonal[0]) daily_peak = std::max(daily_peak, std::fabs(v));
  for (double v : d->seasonal[1]) weekly_peak = std::max(weekly_peak, std::fabs(v));
  EXPECT_GT(daily_peak, 7.0);
  EXPECT_LT(daily_peak, 13.0);
  EXPECT_GT(weekly_peak, 3.0);
  EXPECT_LT(weekly_peak, 8.0);
  // With no noise the residual is small relative to the signal.
  const double sigma = RobustSigma(d->remainder);
  EXPECT_LT(sigma, 1.0);
}

TEST(MstlTest, PeriodsAreDedupedAndSorted) {
  const std::vector<double> x = DailyWeekly(5, 24 * 28);
  auto d = MstlDecompose(x, {168, 24, 24});
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->periods, (std::vector<std::size_t>{24, 168}));
}

TEST(MstlTest, PeriodsWithoutTwoCyclesAreDropped) {
  const std::vector<double> x = DailyWeekly(6, 100);
  auto d = MstlDecompose(x, {24, 60});  // 2 * 60 > 100
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->periods, (std::vector<std::size_t>{24}));

  EXPECT_FALSE(MstlDecompose(x, {60}).ok());
  EXPECT_FALSE(MstlDecompose(x, {}).ok());
}

TEST(MstlTest, RobustSigmaIsScaledMad) {
  // median 3, deviations {2,1,0,1,97}, MAD 1 -> 1.4826.
  EXPECT_NEAR(RobustSigma({1.0, 2.0, 3.0, 4.0, 100.0}), 1.4826, 1e-12);
  EXPECT_DOUBLE_EQ(RobustSigma({}), 0.0);
  EXPECT_DOUBLE_EQ(RobustSigma({5.0, 5.0, 5.0}), 0.0);
}

TEST(MstlTest, FlagAnomaliesFindsInjectedSpike) {
  std::mt19937 rng(7);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> r(400);
  for (double& v : r) v = dist(rng);
  r[50] = 30.0;   // ~30 robust sigmas
  r[200] = -25.0;
  const auto flags = FlagAnomalies(r, 3.0);
  EXPECT_NE(std::find(flags.begin(), flags.end(), 50u), flags.end());
  EXPECT_NE(std::find(flags.begin(), flags.end(), 200u), flags.end());
  // A 3-sigma band on N(0,1) noise flags only a thin tail beyond the spikes.
  EXPECT_LT(flags.size(), 20u);
}

TEST(MstlTest, FlagAnomaliesEmptyWhenNoSpread) {
  EXPECT_TRUE(FlagAnomalies({2.0, 2.0, 2.0, 2.0}, 3.0).empty());
  EXPECT_TRUE(FlagAnomalies({}, 3.0).empty());
}

}  // namespace
}  // namespace capplan::tsa
