#include "tsa/decompose.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

std::vector<double> SeasonalTrendSeries(std::size_t n, std::size_t period,
                                        double trend_slope, double amp,
                                        double base = 100.0) {
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = base + trend_slope * static_cast<double>(t) +
           amp * std::sin(2.0 * M_PI * static_cast<double>(t) /
                          static_cast<double>(period));
  }
  return x;
}

TEST(MovingAverageTest, OddWindowExact) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const auto ma = CenteredMovingAverage(x, 3);
  EXPECT_TRUE(std::isnan(ma[0]));
  EXPECT_DOUBLE_EQ(ma[1], 2.0);
  EXPECT_DOUBLE_EQ(ma[2], 3.0);
  EXPECT_DOUBLE_EQ(ma[3], 4.0);
  EXPECT_TRUE(std::isnan(ma[4]));
}

TEST(MovingAverageTest, EvenWindowUses2xM) {
  // 2x4 MA of a linear series equals the series itself in the interior.
  std::vector<double> x(12);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i);
  const auto ma = CenteredMovingAverage(x, 4);
  for (std::size_t i = 2; i + 2 < x.size(); ++i) {
    EXPECT_NEAR(ma[i], x[i], 1e-12);
  }
}

TEST(MovingAverageTest, RemovesExactSeasonality) {
  const auto x = SeasonalTrendSeries(60, 6, 0.5, 10.0);
  const auto ma = CenteredMovingAverage(x, 6);
  // Interior trend estimate should be ~ linear with slope 0.5.
  for (std::size_t i = 10; i < 50; ++i) {
    EXPECT_NEAR(ma[i], 100.0 + 0.5 * static_cast<double>(i), 0.01);
  }
}

TEST(DecomposeTest, AdditiveRecoversComponents) {
  const std::size_t period = 12;
  const auto x = SeasonalTrendSeries(period * 10, period, 0.3, 8.0);
  auto dec = SeasonalDecompose(x, period, DecomposeKind::kAdditive);
  ASSERT_TRUE(dec.ok());
  // Seasonal indices reproduce the sine shape.
  for (std::size_t p = 0; p < period; ++p) {
    const double expected =
        8.0 * std::sin(2.0 * M_PI * static_cast<double>(p) /
                       static_cast<double>(period));
    EXPECT_NEAR(dec->seasonal_indices[p], expected, 0.15) << "phase " << p;
  }
  // Remainder is tiny for this noiseless series (interior only).
  for (std::size_t t = period; t + period < x.size(); ++t) {
    EXPECT_NEAR(dec->remainder[t], 0.0, 0.2);
  }
}

TEST(DecomposeTest, AdditiveIndicesSumToZero) {
  const auto x = SeasonalTrendSeries(96, 24, 0.1, 5.0);
  auto dec = SeasonalDecompose(x, 24, DecomposeKind::kAdditive);
  ASSERT_TRUE(dec.ok());
  double sum = 0.0;
  for (double v : dec->seasonal_indices) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(DecomposeTest, MultiplicativeIndicesAverageToOne) {
  std::vector<double> x(96);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 100.0 * (1.0 + 0.2 * std::sin(2.0 * M_PI *
                                         static_cast<double>(t) / 24.0));
  }
  auto dec = SeasonalDecompose(x, 24, DecomposeKind::kMultiplicative);
  ASSERT_TRUE(dec.ok());
  double sum = 0.0;
  for (double v : dec->seasonal_indices) sum += v;
  EXPECT_NEAR(sum / 24.0, 1.0, 1e-9);
}

TEST(DecomposeTest, MultiplicativeRejectsNonPositive) {
  std::vector<double> x(48, 1.0);
  x[5] = -1.0;
  EXPECT_FALSE(
      SeasonalDecompose(x, 12, DecomposeKind::kMultiplicative).ok());
}

TEST(DecomposeTest, RejectsBadPeriodOrLength) {
  const std::vector<double> x(30, 1.0);
  EXPECT_FALSE(SeasonalDecompose(x, 1, DecomposeKind::kAdditive).ok());
  EXPECT_FALSE(SeasonalDecompose(x, 20, DecomposeKind::kAdditive).ok());
}

TEST(TraitsTest, StrongSeasonalStrongTrend) {
  const auto x = SeasonalTrendSeries(24 * 14, 24, 1.0, 20.0);
  auto traits = MeasureTraits(x, 24);
  ASSERT_TRUE(traits.ok());
  EXPECT_GT(traits->seasonal_strength, 0.9);
  EXPECT_GT(traits->trend_strength, 0.9);
}

TEST(TraitsTest, PureNoiseHasWeakStructure) {
  std::mt19937 rng(5);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(24 * 14);
  for (auto& v : x) v = dist(rng);
  auto traits = MeasureTraits(x, 24);
  ASSERT_TRUE(traits.ok());
  EXPECT_LT(traits->seasonal_strength, 0.35);
  EXPECT_LT(traits->trend_strength, 0.35);
}

TEST(TraitsTest, SeasonalOnlyVsTrendOnly) {
  const auto seasonal_only = SeasonalTrendSeries(24 * 14, 24, 0.0, 20.0);
  auto t1 = MeasureTraits(seasonal_only, 24);
  ASSERT_TRUE(t1.ok());
  EXPECT_GT(t1->seasonal_strength, 0.9);

  std::vector<double> trend_only(24 * 14);
  std::mt19937 rng(6);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (std::size_t t = 0; t < trend_only.size(); ++t) {
    trend_only[t] = 0.5 * static_cast<double>(t) + dist(rng);
  }
  auto t2 = MeasureTraits(trend_only, 24);
  ASSERT_TRUE(t2.ok());
  EXPECT_GT(t2->trend_strength, 0.9);
  EXPECT_LT(t2->seasonal_strength, 0.4);
}

}  // namespace
}  // namespace capplan::tsa
