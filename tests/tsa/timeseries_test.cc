#include "tsa/timeseries.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

TimeSeries MakeHourly(std::vector<double> v, std::int64_t start = 0) {
  return TimeSeries("test", start, Frequency::kHourly, std::move(v));
}

TEST(FrequencyTest, SecondsPerStep) {
  EXPECT_EQ(FrequencySeconds(Frequency::kQuarterHourly), 900);
  EXPECT_EQ(FrequencySeconds(Frequency::kHourly), 3600);
  EXPECT_EQ(FrequencySeconds(Frequency::kDaily), 86400);
  EXPECT_EQ(FrequencySeconds(Frequency::kWeekly), 604800);
}

TEST(FrequencyTest, DefaultSeasonalPeriods) {
  EXPECT_EQ(DefaultSeasonalPeriod(Frequency::kHourly), 24u);
  EXPECT_EQ(DefaultSeasonalPeriod(Frequency::kDaily), 7u);
  EXPECT_EQ(DefaultSeasonalPeriod(Frequency::kWeekly), 52u);
  EXPECT_EQ(DefaultSeasonalPeriod(Frequency::kQuarterHourly), 96u);
}

TEST(FrequencyTest, Names) {
  EXPECT_STREQ(FrequencyName(Frequency::kHourly), "hourly");
  EXPECT_STREQ(FrequencyName(Frequency::kDaily), "daily");
}

TEST(TimeSeriesTest, TimestampArithmetic) {
  TimeSeries ts = MakeHourly({1, 2, 3}, 1000);
  EXPECT_EQ(ts.TimestampAt(0), 1000);
  EXPECT_EQ(ts.TimestampAt(2), 1000 + 2 * 3600);
  EXPECT_EQ(ts.EndEpoch(), 1000 + 3 * 3600);
}

TEST(TimeSeriesTest, MissingCount) {
  TimeSeries ts = MakeHourly({1, std::nan(""), 3, std::nan("")});
  EXPECT_EQ(ts.CountMissing(), 2u);
  EXPECT_TRUE(ts.HasMissing());
  EXPECT_FALSE(MakeHourly({1, 2}).HasMissing());
}

TEST(TimeSeriesTest, SliceKeepsTimestamps) {
  TimeSeries ts = MakeHourly({1, 2, 3, 4, 5}, 0);
  auto s = ts.Slice(2, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 2u);
  EXPECT_DOUBLE_EQ((*s)[0], 3.0);
  EXPECT_EQ(s->start_epoch(), 2 * 3600);
  EXPECT_EQ(s->frequency(), Frequency::kHourly);
}

TEST(TimeSeriesTest, SliceOutOfRangeFails) {
  TimeSeries ts = MakeHourly({1, 2, 3});
  EXPECT_FALSE(ts.Slice(2, 2).ok());
  EXPECT_TRUE(ts.Slice(0, 3).ok());
}

TEST(TimeSeriesTest, SplitAt) {
  TimeSeries ts = MakeHourly({1, 2, 3, 4, 5});
  auto parts = ts.SplitAt(3);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->first.size(), 3u);
  EXPECT_EQ(parts->second.size(), 2u);
  EXPECT_DOUBLE_EQ(parts->second[0], 4.0);
  EXPECT_EQ(parts->second.start_epoch(), 3 * 3600);
}

TEST(TimeSeriesTest, SplitBeyondEndFails) {
  EXPECT_FALSE(MakeHourly({1, 2}).SplitAt(3).ok());
}

TEST(TimeSeriesTest, PhaseAt) {
  TimeSeries ts = MakeHourly(std::vector<double>(50, 0.0), 0);
  EXPECT_EQ(ts.PhaseAt(0, 24), 0u);
  EXPECT_EQ(ts.PhaseAt(25, 24), 1u);
  // Start offset shifts the phase.
  TimeSeries shifted = MakeHourly(std::vector<double>(50, 0.0), 5 * 3600);
  EXPECT_EQ(shifted.PhaseAt(0, 24), 5u);
}

TEST(AggregateTest, QuarterHourlyToHourlyMean) {
  // 8 quarter-hour samples -> 2 hourly buckets.
  TimeSeries raw("m", 0, Frequency::kQuarterHourly,
                 {1, 2, 3, 4, 10, 10, 10, 10});
  auto hourly = AggregateMean(raw, Frequency::kHourly);
  ASSERT_TRUE(hourly.ok());
  ASSERT_EQ(hourly->size(), 2u);
  EXPECT_DOUBLE_EQ((*hourly)[0], 2.5);
  EXPECT_DOUBLE_EQ((*hourly)[1], 10.0);
  EXPECT_EQ(hourly->frequency(), Frequency::kHourly);
}

TEST(AggregateTest, PartialBucketDropped) {
  TimeSeries raw("m", 0, Frequency::kQuarterHourly, {1, 2, 3, 4, 5});
  auto hourly = AggregateMean(raw, Frequency::kHourly);
  ASSERT_TRUE(hourly.ok());
  EXPECT_EQ(hourly->size(), 1u);
}

TEST(AggregateTest, NanHandling) {
  TimeSeries raw("m", 0, Frequency::kQuarterHourly,
                 {2, std::nan(""), 4, std::nan(""), std::nan(""),
                  std::nan(""), std::nan(""), std::nan("")});
  auto hourly = AggregateMean(raw, Frequency::kHourly);
  ASSERT_TRUE(hourly.ok());
  EXPECT_DOUBLE_EQ((*hourly)[0], 3.0);      // mean of known samples
  EXPECT_TRUE(std::isnan((*hourly)[1]));    // fully missing bucket
}

TEST(AggregateTest, SumScalesPartialBuckets) {
  TimeSeries raw("m", 0, Frequency::kQuarterHourly,
                 {10, 10, std::nan(""), std::nan("")});
  auto hourly = AggregateSum(raw, Frequency::kHourly);
  ASSERT_TRUE(hourly.ok());
  // Two known samples of 10, scaled by 4/2.
  EXPECT_DOUBLE_EQ((*hourly)[0], 40.0);
}

TEST(AggregateTest, RejectsFinerTarget) {
  TimeSeries hourly("m", 0, Frequency::kHourly, {1, 2, 3});
  EXPECT_FALSE(AggregateMean(hourly, Frequency::kQuarterHourly).ok());
}

TEST(AggregateTest, HourlyToDaily) {
  std::vector<double> v(48, 1.0);
  for (int i = 24; i < 48; ++i) v[static_cast<std::size_t>(i)] = 3.0;
  TimeSeries hourly("m", 0, Frequency::kHourly, v);
  auto daily = AggregateMean(hourly, Frequency::kDaily);
  ASSERT_TRUE(daily.ok());
  ASSERT_EQ(daily->size(), 2u);
  EXPECT_DOUBLE_EQ((*daily)[0], 1.0);
  EXPECT_DOUBLE_EQ((*daily)[1], 3.0);
}

}  // namespace
}  // namespace capplan::tsa
