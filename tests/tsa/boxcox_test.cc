#include "tsa/boxcox.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

TEST(BoxCoxTest, LambdaZeroIsLog) {
  EXPECT_DOUBLE_EQ(BoxCox(std::exp(1.0), 0.0), 1.0);
  EXPECT_DOUBLE_EQ(InverseBoxCox(1.0, 0.0), std::exp(1.0));
}

TEST(BoxCoxTest, LambdaOneIsShift) {
  EXPECT_DOUBLE_EQ(BoxCox(5.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(InverseBoxCox(4.0, 1.0), 5.0);
}

class BoxCoxRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(BoxCoxRoundTripTest, InverseRecoversValue) {
  const double lambda = GetParam();
  for (double y : {0.1, 0.5, 1.0, 3.0, 42.0, 1e4}) {
    EXPECT_NEAR(InverseBoxCox(BoxCox(y, lambda), lambda), y,
                1e-9 * std::max(1.0, y))
        << "lambda=" << lambda << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, BoxCoxRoundTripTest,
                         ::testing::Values(-1.0, -0.5, 0.0, 0.25, 0.5, 1.0,
                                           1.5, 2.0));

TEST(BoxCoxTest, InverseClampsOutOfDomain) {
  // lambda = 0.5: z must be > -2; below that the inverse clamps to 0.
  EXPECT_DOUBLE_EQ(InverseBoxCox(-5.0, 0.5), 0.0);
}

TEST(BoxCoxTransformTest, VectorRoundTrip) {
  const std::vector<double> y{1.0, 2.0, 4.0, 8.0};
  auto z = BoxCoxTransform(y, 0.3);
  ASSERT_TRUE(z.ok());
  const auto back = InverseBoxCoxTransform(*z, 0.3);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(back[i], y[i], 1e-10);
  }
}

TEST(BoxCoxTransformTest, RejectsNonPositive) {
  EXPECT_FALSE(BoxCoxTransform({1.0, 0.0, 2.0}, 0.5).ok());
  EXPECT_FALSE(BoxCoxTransform({1.0, -3.0}, 0.5).ok());
}

TEST(EstimateLambdaTest, LogNormalDataPrefersLogTransform) {
  std::mt19937 rng(7);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(2000);
  for (auto& v : y) v = std::exp(dist(rng));
  auto lambda = EstimateBoxCoxLambda(y);
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(*lambda, 0.0, 0.15);
}

TEST(EstimateLambdaTest, RecoversKnownTransform) {
  // Build data whose Box-Cox transform at a known lambda is exactly normal;
  // the profile-likelihood estimate should land near that lambda. (For
  // near-constant-CV data the likelihood is flat in lambda, so we use a
  // spread wide enough to identify it.)
  std::mt19937 rng(11);
  std::normal_distribution<double> dist(5.0, 1.0);
  const double true_lambda = 0.3;
  std::vector<double> y(5000);
  for (auto& v : y) v = InverseBoxCox(dist(rng), true_lambda);
  auto lambda = EstimateBoxCoxLambda(y);
  ASSERT_TRUE(lambda.ok());
  EXPECT_NEAR(*lambda, true_lambda, 0.25);
}

TEST(EstimateLambdaTest, RejectsBadInput) {
  EXPECT_FALSE(EstimateBoxCoxLambda({1, 2, 3}).ok());  // too short
  std::vector<double> with_zero(20, 1.0);
  with_zero[3] = 0.0;
  EXPECT_FALSE(EstimateBoxCoxLambda(with_zero).ok());
}

}  // namespace
}  // namespace capplan::tsa
