#include "tsa/stationarity.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace capplan::tsa {
namespace {

std::vector<double> WhiteNoise(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(n);
  for (auto& v : x) v = dist(rng);
  return x;
}

std::vector<double> RandomWalk(std::size_t n, unsigned seed) {
  std::vector<double> x = WhiteNoise(n, seed);
  for (std::size_t t = 1; t < n; ++t) x[t] += x[t - 1];
  return x;
}

TEST(AdfTest, RejectsUnitRootForWhiteNoise) {
  auto r = AdfTest(WhiteNoise(500, 5));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reject_unit_root());
  EXPECT_LT(r->p_value, 0.05);
}

TEST(AdfTest, DoesNotRejectForRandomWalk) {
  auto r = AdfTest(RandomWalk(500, 9));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->reject_unit_root(0.01));
}

TEST(AdfTest, StationaryAr1Rejected) {
  std::mt19937 rng(13);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(800, 0.0);
  for (std::size_t t = 1; t < x.size(); ++t) {
    x[t] = 0.5 * x[t - 1] + dist(rng);
  }
  auto r = AdfTest(x);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reject_unit_root());
}

TEST(AdfTest, TrendSpecHandlesTrendStationary) {
  std::mt19937 rng(21);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(600);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 0.05 * static_cast<double>(t) + dist(rng);
  }
  auto r = AdfTest(x, TrendSpec::kConstantTrend);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reject_unit_root());
}

TEST(AdfTest, RejectsTooShortSeries) {
  EXPECT_FALSE(AdfTest(WhiteNoise(8, 1)).ok());
}

TEST(AdfTest, LagOverrideRespected) {
  auto r = AdfTest(WhiteNoise(300, 2), TrendSpec::kConstant, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->lags_used, 3u);
}

TEST(KpssTest, WhiteNoiseAcceptedAsStationary) {
  auto r = KpssTest(WhiteNoise(500, 31));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->reject_stationarity());
}

TEST(KpssTest, RandomWalkRejected) {
  auto r = KpssTest(RandomWalk(500, 37));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reject_stationarity());
}

TEST(KpssTest, TrendSpecAcceptsTrendStationary) {
  std::mt19937 rng(41);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(500);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 0.1 * static_cast<double>(t) + dist(rng);
  }
  // Level-stationarity should be rejected, trend-stationarity accepted.
  auto level = KpssTest(x, TrendSpec::kConstant);
  auto trend = KpssTest(x, TrendSpec::kConstantTrend);
  ASSERT_TRUE(level.ok());
  ASSERT_TRUE(trend.ok());
  EXPECT_TRUE(level->reject_stationarity());
  EXPECT_FALSE(trend->reject_stationarity());
}

TEST(RecommendDifferencingTest, StationaryNeedsNone) {
  auto d = RecommendDifferencing(WhiteNoise(400, 43));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 0);
}

TEST(RecommendDifferencingTest, RandomWalkNeedsOne) {
  auto d = RecommendDifferencing(RandomWalk(400, 47));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 1);
}

TEST(RecommendDifferencingTest, DoubleIntegratedNeedsTwo) {
  std::vector<double> x = RandomWalk(400, 53);
  for (std::size_t t = 1; t < x.size(); ++t) x[t] += x[t - 1];
  auto d = RecommendDifferencing(x);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 2);
}

TEST(RecommendSeasonalDifferencingTest, StrongSeasonalityNeedsOne) {
  std::vector<double> x(24 * 20);
  std::mt19937 rng(61);
  std::normal_distribution<double> dist(0.0, 0.1);
  for (std::size_t t = 0; t < x.size(); ++t) {
    x[t] = 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0) +
           dist(rng);
  }
  auto d = RecommendSeasonalDifferencing(x, 24);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 1);
}

TEST(RecommendSeasonalDifferencingTest, NoiseNeedsNone) {
  auto d = RecommendSeasonalDifferencing(WhiteNoise(24 * 20, 67), 24);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 0);
}

TEST(RecommendSeasonalDifferencingTest, ShortSeriesReturnsZero) {
  auto d = RecommendSeasonalDifferencing(WhiteNoise(30, 71), 24);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 0);
}

}  // namespace
}  // namespace capplan::tsa
