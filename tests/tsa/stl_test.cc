#include "tsa/stl.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "math/vec.h"

namespace capplan::tsa {
namespace {

TEST(LoessTest, SmoothsConstantExactly) {
  const std::vector<double> y(50, 3.0);
  const auto s = Loess(y, 11);
  for (double v : s) EXPECT_NEAR(v, 3.0, 1e-9);
}

TEST(LoessTest, ReproducesLineWithDegreeOne) {
  std::vector<double> y(60);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 2.0 + 0.5 * static_cast<double>(i);
  }
  const auto s = Loess(y, 15, 1);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(s[i], y[i], 1e-6) << "i=" << i;
  }
}

TEST(LoessTest, SmoothsNoise) {
  std::mt19937 rng(1);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = std::sin(0.05 * static_cast<double>(i)) + dist(rng);
  }
  const auto s = Loess(y, 41);
  // Smoother output has far less variance around the underlying curve.
  double raw_err = 0.0, smooth_err = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double truth = std::sin(0.05 * static_cast<double>(i));
    raw_err += (y[i] - truth) * (y[i] - truth);
    smooth_err += (s[i] - truth) * (s[i] - truth);
  }
  EXPECT_LT(smooth_err, 0.2 * raw_err);
}

TEST(LoessTest, RobustnessWeightsDownweightOutliers) {
  std::vector<double> y(40, 1.0);
  y[20] = 100.0;
  std::vector<double> rho(40, 1.0);
  rho[20] = 0.0;  // outlier fully ignored
  const auto with = Loess(y, 9, 1, rho);
  EXPECT_NEAR(with[20], 1.0, 1e-6);
  const auto without = Loess(y, 9, 1);
  EXPECT_GT(without[20], 10.0);
}

TEST(LoessTest, HandlesTinyInputs) {
  EXPECT_TRUE(Loess({}, 5).empty());
  const auto one = Loess({7.0}, 5);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0], 7.0);
}

std::vector<double> SeasonalTrendSeries(std::size_t n, std::size_t period,
                                        double slope, double amp,
                                        double noise, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, noise);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = 50.0 + slope * static_cast<double>(t) +
           amp * std::sin(2.0 * M_PI * static_cast<double>(t) /
                          static_cast<double>(period)) +
           (noise > 0 ? dist(rng) : 0.0);
  }
  return x;
}

TEST(StlTest, ComponentsSumToSeries) {
  const auto x = SeasonalTrendSeries(24 * 12, 24, 0.05, 8.0, 0.5, 2);
  auto dec = StlDecompose(x, 24);
  ASSERT_TRUE(dec.ok());
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(dec->trend[t] + dec->seasonal[t] + dec->remainder[t], x[t],
                1e-9);
  }
}

TEST(StlTest, NoNanMargins) {
  // Unlike the classical decomposition, every position has a trend value.
  const auto x = SeasonalTrendSeries(24 * 8, 24, 0.1, 5.0, 0.3, 3);
  auto dec = StlDecompose(x, 24);
  ASSERT_TRUE(dec.ok());
  for (double v : dec->trend) EXPECT_FALSE(std::isnan(v));
  for (double v : dec->remainder) EXPECT_FALSE(std::isnan(v));
}

TEST(StlTest, RecoversTrendSlope) {
  const auto x = SeasonalTrendSeries(24 * 14, 24, 0.2, 10.0, 0.5, 4);
  auto dec = StlDecompose(x, 24);
  ASSERT_TRUE(dec.ok());
  // Interior trend slope ~ 0.2 per step.
  const std::size_t a = 50, b = x.size() - 50;
  const double slope =
      (dec->trend[b] - dec->trend[a]) / static_cast<double>(b - a);
  EXPECT_NEAR(slope, 0.2, 0.03);
}

TEST(StlTest, RecoversSeasonalShape) {
  const auto x = SeasonalTrendSeries(24 * 14, 24, 0.0, 8.0, 0.3, 5);
  auto dec = StlDecompose(x, 24);
  ASSERT_TRUE(dec.ok());
  // Check the *interior* seasonal component pointwise (the loess-smoothed
  // subseries are less constrained in the edge cycles, which also pulls
  // the per-phase index means slightly toward zero).
  for (std::size_t t = 3 * 24; t + 3 * 24 < x.size(); ++t) {
    const double expected =
        8.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0);
    EXPECT_NEAR(dec->seasonal[t], expected, 1.2) << "t=" << t;
  }
  // The phase-index summary still correlates strongly with the truth.
  std::vector<double> expected_idx(24);
  for (std::size_t p = 0; p < 24; ++p) {
    expected_idx[p] = 8.0 * std::sin(2.0 * M_PI * static_cast<double>(p) /
                                     24.0);
  }
  EXPECT_GT(math::Correlation(dec->seasonal_indices, expected_idx), 0.98);
}

TEST(StlTest, SmallRemainderOnCleanData) {
  const auto x = SeasonalTrendSeries(24 * 12, 24, 0.05, 8.0, 0.0, 6);
  auto dec = StlDecompose(x, 24);
  ASSERT_TRUE(dec.ok());
  // Interior remainder is tiny (edges are less constrained).
  double max_rem = 0.0;
  for (std::size_t t = 48; t + 48 < x.size(); ++t) {
    max_rem = std::max(max_rem, std::fabs(dec->remainder[t]));
  }
  EXPECT_LT(max_rem, 1.0);
}

TEST(StlTest, EvolvingSeasonalAmplitudeTracked) {
  // Seasonal amplitude grows over time — STL follows it, the classical
  // decomposition cannot (fixed per-phase means).
  std::vector<double> x(24 * 16);
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double amp =
        4.0 + 8.0 * static_cast<double>(t) / static_cast<double>(x.size());
    x[t] = 50.0 + amp * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0);
  }
  StlOptions opts;
  opts.seasonal_span = 7;  // flexible seasonal
  auto dec = StlDecompose(x, 24, opts);
  ASSERT_TRUE(dec.ok());
  // Seasonal amplitude early vs late (use a mid-cycle phase):
  auto amplitude_near = [&](std::size_t center) {
    double max_abs = 0.0;
    for (std::size_t t = center; t < center + 24; ++t) {
      max_abs = std::max(max_abs, std::fabs(dec->seasonal[t]));
    }
    return max_abs;
  };
  const double early = amplitude_near(48);
  const double late = amplitude_near(x.size() - 96);
  EXPECT_GT(late, 1.5 * early);
}

TEST(StlTest, RobustPassShrugsOffOutliers) {
  auto x = SeasonalTrendSeries(24 * 12, 24, 0.0, 8.0, 0.3, 7);
  // A one-off crash spike (transient, not behaviour).
  x[100] += 300.0;
  StlOptions opts;
  opts.robust_iterations = 2;
  auto dec = StlDecompose(x, 24, opts);
  ASSERT_TRUE(dec.ok());
  // The spike lands in the remainder, not the trend/seasonal.
  EXPECT_GT(dec->remainder[100], 200.0);
  EXPECT_LT(std::fabs(dec->trend[100] - 50.0), 10.0);
}

TEST(StlTest, ValidatesInputs) {
  EXPECT_FALSE(StlDecompose(std::vector<double>(30, 1.0), 1).ok());
  EXPECT_FALSE(StlDecompose(std::vector<double>(30, 1.0), 24).ok());
}

}  // namespace
}  // namespace capplan::tsa
