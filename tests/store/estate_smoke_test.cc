#include <cmath>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "store/tiered_store.h"

namespace capplan::store {
namespace {

// The scaling smoke test behind the "toward 100k series" goal: a 10k-series
// synthetic estate ingests, seals, flushes to one segment file and reopens,
// and sampled windows must match the generator exactly. Runs in the ASan CI
// job, so it also shakes out lifetime bugs at estate scale.

constexpr std::size_t kSeries = 10000;
constexpr std::size_t kSamples = 48;  // two days of hourly data per series

// Deterministic sample generator standing in for 10k agents: quantized the
// way real collectors quantize (quarter units), varied per series.
double SampleFor(std::size_t series, std::size_t i) {
  const double base = static_cast<double>(series % 97);
  const double wave =
      std::round(40.0 * std::sin(static_cast<double>(i + series) / 12.0)) *
      0.25;
  return base + wave;
}

TEST(EstateSmokeTest, TenThousandSeriesSurviveSealFlushReopen) {
  TieredStoreOptions options;
  options.series.seal_threshold = 16;
  TieredStore store(options);

  for (std::size_t s = 0; s < kSeries; ++s) {
    SeriesStore& series = store.GetOrCreate(
        "inst" + std::to_string(s) + "/cpu", 0, tsa::Frequency::kHourly);
    for (std::size_t i = 0; i < kSamples; ++i) {
      series.Append(SampleFor(s, i));
    }
  }
  ASSERT_EQ(store.size(), kSeries);
  EXPECT_EQ(store.stats().blocks_sealed, kSeries * (kSamples / 16))
      << "each series seals 48/16 = 3 full blocks";

  store.SealAll();
  EXPECT_EQ(store.stats().hot_bytes, 0u);
  EXPECT_GT(store.stats().compression_ratio(), 2.0);

  const std::string path = ::testing::TempDir() + "/estate_smoke.capseg";
  ASSERT_TRUE(store.Flush(path).ok());

  TieredStore reopened(options);
  ASSERT_TRUE(reopened.Open(path).ok());
  ASSERT_EQ(reopened.size(), kSeries);

  // Spot-check: 500 pseudo-random series, one random window each, plus the
  // first and last series in full.
  std::mt19937_64 rng(2026);
  for (int check = 0; check < 500; ++check) {
    const std::size_t s = rng() % kSeries;
    const SeriesStore* series =
        reopened.Find("inst" + std::to_string(s) + "/cpu");
    ASSERT_NE(series, nullptr) << s;
    ASSERT_EQ(series->size(), kSamples);
    const std::size_t begin = rng() % kSamples;
    const std::size_t len = 1 + rng() % (kSamples - begin);
    auto window = series->ReadWindow(begin, len);
    ASSERT_TRUE(window.ok());
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_DOUBLE_EQ((*window)[i], SampleFor(s, begin + i))
          << "series " << s << " index " << begin + i;
    }
  }
  for (std::size_t s : {std::size_t{0}, kSeries - 1}) {
    auto series =
        reopened.Find("inst" + std::to_string(s) + "/cpu")->Materialize("s");
    ASSERT_TRUE(series.ok());
    for (std::size_t i = 0; i < kSamples; ++i) {
      ASSERT_DOUBLE_EQ((*series)[i], SampleFor(s, i));
    }
  }
}

}  // namespace
}  // namespace capplan::store
