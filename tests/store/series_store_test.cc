#include "store/series_store.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "common/fault.h"

namespace capplan::store {
namespace {

std::vector<double> WavyTrace(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    values.push_back(50.0 + 20.0 * std::sin(static_cast<double>(i) / 24.0) +
                     static_cast<double>(rng() % 100) * 0.25);
  }
  return values;
}

TEST(SeriesStoreTest, AppendAndMaterializeMatchesOracle) {
  SeriesStoreOptions options;
  options.seal_threshold = 64;
  SeriesStore store(1577836800, tsa::Frequency::kHourly, options);
  const std::vector<double> oracle = WavyTrace(500, 1);
  for (double v : oracle) store.Append(v);

  EXPECT_EQ(store.size(), 500u);
  EXPECT_GT(store.blocks().size(), 0u);   // sealing happened
  EXPECT_GT(store.hot_size(), 0u);        // a tail stayed hot
  EXPECT_EQ(store.start_epoch(), 1577836800);
  EXPECT_EQ(store.end_epoch(), 1577836800 + 500 * 3600);

  auto series = store.Materialize("s");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->name(), "s");
  EXPECT_EQ(series->frequency(), tsa::Frequency::kHourly);
  ASSERT_EQ(series->size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_DOUBLE_EQ((*series)[i], oracle[i]) << "at " << i;
  }
}

TEST(SeriesStoreTest, ReadWindowAcrossBlockBoundaries) {
  SeriesStoreOptions options;
  options.seal_threshold = 32;
  SeriesStore store(0, tsa::Frequency::kQuarterHourly, options);
  const std::vector<double> oracle = WavyTrace(200, 2);
  for (double v : oracle) store.Append(v);

  // Windows straddling sealed/sealed and sealed/hot boundaries.
  for (const auto& [begin, len] : std::vector<std::pair<std::size_t,
                                                        std::size_t>>{
           {0, 200}, {0, 1}, {199, 1}, {30, 5}, {28, 40}, {150, 50},
           {63, 2}, {0, 33}}) {
    auto window = store.ReadWindow(begin, len);
    ASSERT_TRUE(window.ok()) << begin << "+" << len;
    ASSERT_EQ(window->size(), len);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_DOUBLE_EQ((*window)[i], oracle[begin + i]);
    }
  }
  EXPECT_FALSE(store.ReadWindow(150, 51).ok());
  EXPECT_FALSE(store.ReadWindow(201, 1).ok());
}

TEST(SeriesStoreTest, CursorScansEverything) {
  SeriesStoreOptions options;
  options.seal_threshold = 16;
  SeriesStore store(0, tsa::Frequency::kHourly, options);
  const std::vector<double> oracle = WavyTrace(100, 3);
  for (double v : oracle) store.Append(v);

  auto cursor = store.Scan();
  double v = 0.0;
  std::size_t i = 0;
  while (cursor.Next(&v)) {
    ASSERT_LT(i, oracle.size());
    EXPECT_DOUBLE_EQ(v, oracle[i]);
    ++i;
  }
  EXPECT_TRUE(cursor.status().ok());
  EXPECT_EQ(i, oracle.size());
}

TEST(SeriesStoreTest, StatsTrackTiers) {
  StoreStats stats;
  SeriesStoreOptions options;
  options.seal_threshold = 50;
  SeriesStore store(0, tsa::Frequency::kHourly, options, &stats);
  for (double v : WavyTrace(120, 4)) store.Append(v);

  EXPECT_EQ(stats.blocks_sealed, 2u);
  EXPECT_EQ(stats.hot_bytes, 20u * 8u);
  EXPECT_EQ(stats.sealed_raw_bytes, 100u * 8u);
  EXPECT_GT(stats.sealed_bytes, 0u);
  EXPECT_LT(stats.sealed_bytes, stats.sealed_raw_bytes);
  EXPECT_GT(stats.compression_ratio(), 1.0);

  store.SealAll();
  EXPECT_EQ(stats.hot_bytes, 0u);
  EXPECT_EQ(stats.sealed_raw_bytes, 120u * 8u);
  EXPECT_EQ(store.hot_size(), 0u);
  EXPECT_EQ(store.size(), 120u);
}

TEST(SeriesStoreTest, RetentionEvictsOldestBlocks) {
  StoreStats stats;
  SeriesStoreOptions options;
  options.seal_threshold = 10;
  options.max_blocks = 3;
  SeriesStore store(0, tsa::Frequency::kHourly, options, &stats);
  for (int i = 0; i < 100; ++i) store.Append(static_cast<double>(i));

  EXPECT_LE(store.blocks().size(), 3u);
  EXPECT_GT(stats.blocks_evicted, 0u);
  // 3 blocks x 10 + the last 0..9 hot samples survive.
  EXPECT_EQ(store.size(), 30u + store.hot_size());
  // The logical start advanced past the evicted prefix.
  EXPECT_EQ(store.start_epoch(),
            static_cast<std::int64_t>(100 - store.size()) * 3600);
  // The retained suffix still reads back exactly.
  auto series = store.Materialize("s");
  ASSERT_TRUE(series.ok());
  const double first = (*series)[0];
  EXPECT_DOUBLE_EQ(first, static_cast<double>(100 - store.size()));
}

TEST(SeriesStoreTest, VersionsTrackMutations) {
  SeriesStoreOptions options;
  options.seal_threshold = 8;
  options.max_blocks = 2;
  SeriesStore store(0, tsa::Frequency::kHourly, options);
  const std::uint64_t v0 = store.version();
  store.Append(1.0);
  EXPECT_GT(store.version(), v0);
  const std::uint64_t s0 = store.structure_version();
  // Sealing alone does not change structure; eviction does.
  for (int i = 0; i < 40; ++i) store.Append(static_cast<double>(i));
  EXPECT_GT(store.structure_version(), s0);
}

TEST(SeriesStoreTest, SealFaultIsAbsorbed) {
  StoreStats stats;
  SeriesStoreOptions options;
  options.seal_threshold = 10;
  SeriesStore store(0, tsa::Frequency::kHourly, options, &stats);
  {
    // Sealing retries on every append while the backlog exceeds the
    // threshold, so a persistent failure is absorbed many times over.
    ScopedFault fault("store.seal", FaultPlan::FailForever());
    for (int i = 0; i < 25; ++i) store.Append(static_cast<double>(i));
    // Every seal attempt failed: everything stayed hot, nothing lost.
    EXPECT_EQ(store.blocks().size(), 0u);
    EXPECT_EQ(store.hot_size(), 25u);
    EXPECT_GE(stats.seal_failures, 2u);
  }
  // Next append retries the (now healthy) seal and drains the backlog.
  store.Append(25.0);
  EXPECT_GT(store.blocks().size(), 0u);
  ASSERT_EQ(store.size(), 26u);
  auto series = store.Materialize("s");
  ASSERT_TRUE(series.ok());
  for (std::size_t i = 0; i < 26; ++i) {
    EXPECT_DOUBLE_EQ((*series)[i], static_cast<double>(i));
  }
}

TEST(SeriesStoreTest, RestoreRebuildsFromParts) {
  SeriesStoreOptions options;
  options.seal_threshold = 16;
  SeriesStore original(3600, tsa::Frequency::kHourly, options);
  const std::vector<double> oracle = WavyTrace(70, 5);
  for (double v : oracle) original.Append(v);

  std::vector<double> hot;
  for (std::size_t i = original.size() - original.hot_size();
       i < original.size(); ++i) {
    auto w = original.ReadWindow(i, 1);
    ASSERT_TRUE(w.ok());
    hot.push_back((*w)[0]);
  }
  auto restored = SeriesStore::Restore(
      tsa::Frequency::kHourly, original.blocks(),
      original.end_epoch() -
          static_cast<std::int64_t>(original.hot_size()) * 3600,
      hot, options);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), original.size());
  EXPECT_EQ(restored->start_epoch(), original.start_epoch());
  auto series = restored->Materialize("s");
  ASSERT_TRUE(series.ok());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_DOUBLE_EQ((*series)[i], oracle[i]);
  }
}

TEST(SeriesStoreTest, RestoreFillsMissingBlockWithNanPlaceholder) {
  SeriesStoreOptions options;
  options.seal_threshold = 16;
  SeriesStore original(0, tsa::Frequency::kHourly, options);
  for (int i = 0; i < 64; ++i) original.Append(static_cast<double>(i));
  ASSERT_EQ(original.blocks().size(), 4u);

  // Drop block #1 (samples 16..31) as a corrupt reader would.
  std::vector<SealedBlock> blocks = original.blocks();
  blocks.erase(blocks.begin() + 1);
  StoreStats stats;
  auto restored = SeriesStore::Restore(tsa::Frequency::kHourly, blocks,
                                       64 * 3600, {}, options, &stats);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 64u);
  EXPECT_EQ(stats.blocks_quarantined, 1u);
  auto series = restored->Materialize("s");
  ASSERT_TRUE(series.ok());
  for (int i = 0; i < 64; ++i) {
    if (i >= 16 && i < 32) {
      EXPECT_TRUE(std::isnan((*series)[i])) << i;
    } else {
      EXPECT_DOUBLE_EQ((*series)[i], static_cast<double>(i)) << i;
    }
  }
}

TEST(SeriesStoreTest, RestoreRejectsOverlapsAndBadSteps) {
  SeriesStoreOptions options;
  SeriesStore original(0, tsa::Frequency::kHourly, options);
  std::vector<double> run(16, 1.0);
  std::vector<SealedBlock> blocks = {SealBlock(0, 3600, run),
                                     SealBlock(8 * 3600, 3600, run)};
  EXPECT_FALSE(SeriesStore::Restore(tsa::Frequency::kHourly, blocks, 0, {},
                                    options)
                   .ok());
  std::vector<SealedBlock> bad_step = {SealBlock(0, 900, run)};
  EXPECT_FALSE(SeriesStore::Restore(tsa::Frequency::kHourly, bad_step,
                                    16 * 900, {}, options)
                   .ok());
}

}  // namespace
}  // namespace capplan::store
