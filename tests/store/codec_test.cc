#include "store/codec.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "workload/cluster.h"
#include "workload/scenario.h"

namespace capplan::store {
namespace {

std::uint64_t Bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// Bit-exact comparison: NaN == NaN when the payloads match, +0 != -0.
void ExpectBitEqual(const std::vector<double>& got,
                    const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(Bits(got[i]), Bits(want[i])) << "at index " << i;
  }
}

void RoundTripValues(const std::vector<double>& values) {
  const std::vector<std::uint8_t> encoded = EncodeValues(values);
  auto decoded = DecodeValues(encoded.data(), encoded.size(), values.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBitEqual(*decoded, values);
}

void RoundTripTimestamps(const std::vector<std::int64_t>& ts) {
  const std::vector<std::uint8_t> encoded = EncodeTimestamps(ts);
  auto decoded = DecodeTimestamps(encoded.data(), encoded.size(), ts.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, ts);
}

TEST(CodecTest, Crc32KnownVector) {
  // The classic check value: CRC-32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, 9), 0xCBF43926u);
  // Chained updates equal one pass.
  const std::uint32_t head = Crc32(s, 4);
  EXPECT_EQ(Crc32(s + 4, 5, head), 0xCBF43926u);
}

TEST(CodecTest, EmptyAndSingle) {
  RoundTripValues({});
  RoundTripValues({42.5});
  RoundTripValues({std::nan("")});
  RoundTripValues({-std::numeric_limits<double>::infinity()});
  RoundTripTimestamps({});
  RoundTripTimestamps({1577836800});
}

TEST(CodecTest, ConstantSeries) {
  RoundTripValues(std::vector<double>(512, 17.25));
  RoundTripValues(std::vector<double>(512, 0.0));
  RoundTripValues(std::vector<double>(512, -0.0));
  // A flatline compresses to a handful of bytes regardless of length.
  const auto encoded = EncodeValues(std::vector<double>(512, 99.0));
  EXPECT_LE(encoded.size(), 16u);
}

TEST(CodecTest, AllNanGapCompressesAsConstant) {
  // A sentinel-masked outage: every sample is the canonical NaN.
  const std::vector<double> gap(512, std::nan(""));
  RoundTripValues(gap);
  EXPECT_LE(EncodeValues(gap).size(), 16u);
}

TEST(CodecTest, StepAndRampSeries) {
  std::vector<double> step;
  for (int i = 0; i < 512; ++i) step.push_back(i < 256 ? 10.0 : 250.0);
  RoundTripValues(step);
  std::vector<double> ramp;
  for (int i = 0; i < 512; ++i) ramp.push_back(static_cast<double>(i) * 3.0);
  RoundTripValues(ramp);
  // Integral series hit the int mode and beat 5x comfortably.
  EXPECT_LT(EncodeValues(ramp).size(), ramp.size() * 8 / 5);
}

TEST(CodecTest, QuarterQuantizedCpuWithGaps) {
  // Quarter-percent CPU readings (scale 2^2) with canonical-NaN holes — the
  // shape real agents produce after the sentinel masks dropped polls.
  std::mt19937_64 rng(7);
  std::vector<double> values;
  for (int i = 0; i < 1024; ++i) {
    if (rng() % 17 == 0) {
      values.push_back(std::nan(""));
    } else {
      values.push_back(static_cast<double>(rng() % 400) * 0.25);
    }
  }
  RoundTripValues(values);
  EXPECT_LT(EncodeValues(values).size(), values.size() * 8 / 4);
}

TEST(CodecTest, SpecialPatternsSurvive) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  double payload_nan;
  std::uint64_t odd = 0x7FF800000000BEEFull;  // non-canonical NaN payload
  std::memcpy(&payload_nan, &odd, sizeof(odd));
  RoundTripValues({0.0, -0.0, qnan, payload_nan,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::denorm_min(),
                   std::numeric_limits<double>::max(),
                   std::numeric_limits<double>::lowest(), 1.0, -1.0});
}

TEST(CodecTest, RandomDoublesBitExact) {
  // Adversarial input for the XOR fallback: uniformly random bit patterns
  // (skipping none — NaN payloads included).
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> values;
    const std::size_t n = 1 + rng() % 700;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t bits = rng();
      double v;
      std::memcpy(&v, &bits, sizeof(v));
      values.push_back(v);
    }
    RoundTripValues(values);
  }
}

TEST(CodecTest, RandomWalkDoubles) {
  std::mt19937_64 rng(99);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> values;
  double level = 100.0;
  for (int i = 0; i < 2048; ++i) {
    level += noise(rng);
    values.push_back(level);
  }
  RoundTripValues(values);
}

TEST(CodecTest, TimestampGrids) {
  // Regular hourly grid — the dominant case: ~1 bit per sample.
  std::vector<std::int64_t> hourly;
  for (int i = 0; i < 4096; ++i) hourly.push_back(1577836800 + i * 3600);
  RoundTripTimestamps(hourly);
  const auto encoded = EncodeTimestamps(hourly);
  EXPECT_LT(encoded.size(), hourly.size());  // far below 8 bytes each

  // Jittered grid exercises the small dod buckets.
  std::mt19937_64 rng(5);
  std::vector<std::int64_t> jitter;
  std::int64_t t = 1577836800;
  for (int i = 0; i < 1024; ++i) {
    t += 900 + static_cast<std::int64_t>(rng() % 21) - 10;
    jitter.push_back(t);
  }
  RoundTripTimestamps(jitter);

  // Fully random timestamps still round-trip via the 64-bit escape bucket.
  std::vector<std::int64_t> random_ts;
  for (int i = 0; i < 257; ++i) {
    random_ts.push_back(static_cast<std::int64_t>(rng()));
  }
  RoundTripTimestamps(random_ts);
}

TEST(CodecTest, DecodeRejectsTruncation) {
  std::vector<double> values;
  for (int i = 0; i < 64; ++i) values.push_back(std::sqrt(i));
  const auto encoded = EncodeValues(values);
  ASSERT_GT(encoded.size(), 4u);
  EXPECT_FALSE(
      DecodeValues(encoded.data(), encoded.size() / 2, values.size()).ok());
  EXPECT_FALSE(DecodeValues(encoded.data(), 0, values.size()).ok());
}

TEST(CodecTest, SimulatorTracesRoundTrip) {
  // Real OLAP / OLTP hourly traces from the cluster simulator — the data
  // the production store actually holds.
  for (const auto& scenario :
       {workload::WorkloadScenario::Olap(), workload::WorkloadScenario::Oltp()}) {
    workload::ClusterSimulator cluster(scenario, 1234, 1577836800);
    for (workload::Metric metric :
         {workload::Metric::kCpu, workload::Metric::kLogicalIops,
          workload::Metric::kMemory}) {
      std::vector<double> trace;
      for (int h = 0; h < 24 * 28; ++h) {
        trace.push_back(
            cluster.SampleAt(0, 1577836800 + h * 3600).Get(metric));
      }
      RoundTripValues(trace);
    }
  }
}

TEST(CodecTest, SealedBlockRoundTrip) {
  std::vector<double> values;
  for (int i = 0; i < 512; ++i) values.push_back(100.0 + (i % 24));
  SealedBlock block = SealBlock(1577836800, 3600, values);
  EXPECT_EQ(block.count, 512u);
  EXPECT_EQ(block.start_epoch, 1577836800);
  EXPECT_FALSE(block.quarantined);
  EXPECT_LT(block.compressed_bytes(), block.raw_bytes());
  auto decoded = DecodeBlockValues(block);
  ASSERT_TRUE(decoded.ok());
  ExpectBitEqual(*decoded, values);
}

TEST(CodecTest, CorruptBlockFailsCrc) {
  std::vector<double> values(128, 3.5);
  SealedBlock block = SealBlock(0, 900, values);
  ASSERT_FALSE(block.payload.empty());
  block.payload[block.payload.size() / 2] ^= 0x40;
  auto decoded = DecodeBlockValues(block);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kIoError);
}

TEST(CodecTest, QuarantinedBlockDecodesToNan) {
  SealedBlock block = QuarantinedBlock(7200, 3600, 16);
  EXPECT_TRUE(block.quarantined);
  auto decoded = DecodeBlockValues(block);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 16u);
  for (double v : *decoded) EXPECT_TRUE(std::isnan(v));
}

}  // namespace
}  // namespace capplan::store
