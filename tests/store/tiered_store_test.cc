#include "store/tiered_store.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "obs/metrics.h"

namespace capplan::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TieredStoreOptions SmallBlocks() {
  TieredStoreOptions options;
  options.series.seal_threshold = 16;
  return options;
}

void FillStore(TieredStore* store, std::size_t n_series, std::size_t n) {
  for (std::size_t s = 0; s < n_series; ++s) {
    SeriesStore& series = store->GetOrCreate("series/" + std::to_string(s), 0,
                                             tsa::Frequency::kHourly);
    for (std::size_t i = 0; i < n; ++i) {
      series.Append(static_cast<double>(s * 1000 + i));
    }
  }
}

TEST(TieredStoreTest, RegistryBasics) {
  TieredStore store(SmallBlocks());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Find("a"), nullptr);
  FillStore(&store, 3, 40);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store.Contains("series/1"));
  EXPECT_EQ(store.Keys().size(), 3u);
  ASSERT_NE(store.Find("series/2"), nullptr);
  EXPECT_EQ(store.Find("series/2")->size(), 40u);
  store.Erase("series/1");
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.Contains("series/1"));
  // Erase released its bytes from the accounting.
  store.Erase("series/0");
  store.Erase("series/2");
  EXPECT_EQ(store.stats().hot_bytes, 0u);
  EXPECT_EQ(store.stats().sealed_bytes, 0u);
}

TEST(TieredStoreTest, FlushOpenRoundTrip) {
  const std::string path = TempPath("tiered_roundtrip.capseg");
  TieredStore store(SmallBlocks());
  FillStore(&store, 5, 100);
  ASSERT_TRUE(store.Flush(path).ok());

  TieredStore reopened(SmallBlocks());
  ASSERT_TRUE(reopened.Open(path).ok());
  EXPECT_EQ(reopened.size(), 5u);
  for (std::size_t s = 0; s < 5; ++s) {
    const SeriesStore* series = reopened.Find("series/" + std::to_string(s));
    ASSERT_NE(series, nullptr);
    ASSERT_EQ(series->size(), 100u);
    auto values = series->ReadWindow(0, 100);
    ASSERT_TRUE(values.ok());
    for (std::size_t i = 0; i < 100; ++i) {
      EXPECT_DOUBLE_EQ((*values)[i], static_cast<double>(s * 1000 + i));
    }
  }
  // Accounting was rebuilt on reopen.
  EXPECT_GT(reopened.stats().sealed_bytes, 0u);
  EXPECT_EQ(reopened.stats().sealed_raw_bytes,
            store.stats().sealed_raw_bytes);
}

TEST(TieredStoreTest, MetricsBindAndUpdate) {
  obs::MetricsRegistry registry;
  TieredStore store(SmallBlocks());
  store.BindMetrics(&registry, "raw");
  FillStore(&store, 2, 50);
  store.SealAll();

  const obs::LabelSet labels = {{"tier", "raw"}};
  EXPECT_GT(registry.GetGauge("capplan_store_sealed_bytes", labels).value(),
            0.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("capplan_store_hot_bytes", labels).value(),
                   0.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("capplan_store_sealed_raw_bytes", labels).value(),
      100.0 * 8.0);
  EXPECT_GT(
      registry.GetGauge("capplan_store_compression_ratio", labels).value(),
      1.0);
  EXPECT_GT(
      registry.GetCounter("capplan_store_blocks_sealed_total", labels).value(),
      0u);
  EXPECT_GT(registry.GetHistogram("capplan_store_seal_ms", {}, labels).count(),
            0u);
}

TEST(TieredStoreTest, FlushFaultFailsWithoutTouchingDisk) {
  const std::string path = TempPath("tiered_fault.capseg");
  TieredStore store(SmallBlocks());
  FillStore(&store, 2, 40);
  {
    ScopedFault fault("store.flush", FaultPlan::FailN(1));
    EXPECT_FALSE(store.Flush(path).ok());
  }
  // The retry (next snapshot tick, in service terms) succeeds.
  ASSERT_TRUE(store.Flush(path).ok());
  TieredStore reopened(SmallBlocks());
  ASSERT_TRUE(reopened.Open(path).ok());
  EXPECT_EQ(reopened.size(), 2u);
}

TEST(TieredStoreTest, ReopenFaultLeavesStoreEmpty) {
  const std::string path = TempPath("tiered_reopen_fault.capseg");
  TieredStore store(SmallBlocks());
  FillStore(&store, 2, 40);
  ASSERT_TRUE(store.Flush(path).ok());

  TieredStore reopened(SmallBlocks());
  {
    ScopedFault fault("store.reopen", FaultPlan::FailN(1));
    EXPECT_FALSE(reopened.Open(path).ok());
  }
  EXPECT_EQ(reopened.size(), 0u);  // caller falls back to a full re-poll
  ASSERT_TRUE(reopened.Open(path).ok());
  EXPECT_EQ(reopened.size(), 2u);
}

TEST(TieredStoreTest, OpenReplacesPreviousContent) {
  const std::string path = TempPath("tiered_replace.capseg");
  TieredStore first(SmallBlocks());
  FillStore(&first, 1, 30);
  ASSERT_TRUE(first.Flush(path).ok());

  TieredStore store(SmallBlocks());
  store.GetOrCreate("leftover", 0, tsa::Frequency::kHourly).Append(1.0);
  ASSERT_TRUE(store.Open(path).ok());
  EXPECT_FALSE(store.Contains("leftover"));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().hot_bytes,
            store.Find("series/0")->hot_bytes());
}

}  // namespace
}  // namespace capplan::store
