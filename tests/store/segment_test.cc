#include "store/segment.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

namespace capplan::store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(f.is_open()) << path;
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(f.tellg()));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.is_open()) << path;
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

// A deterministic two-series fixture: one with sealed blocks + hot tail,
// one hot-only.
std::vector<SegmentSeries> Fixture() {
  std::vector<double> run1, run2;
  for (int i = 0; i < 32; ++i) run1.push_back(static_cast<double>(i));
  for (int i = 32; i < 64; ++i) run2.push_back(static_cast<double>(i) * 0.5);
  SegmentSeries a;
  a.key = "cdbm011/cpu";
  a.freq = tsa::Frequency::kHourly;
  a.blocks = {SealBlock(0, 3600, run1), SealBlock(32 * 3600, 3600, run2)};
  a.hot_start_epoch = 64 * 3600;
  a.hot = {7.25, 8.5, std::nan("")};
  SegmentSeries b;
  b.key = "cdbm012/memory";
  b.freq = tsa::Frequency::kQuarterHourly;
  b.hot_start_epoch = 900;
  b.hot = {100.0, 101.0};
  return {a, b};
}

TEST(SegmentTest, RoundTrip) {
  const std::string path = TempPath("roundtrip.capseg");
  ASSERT_TRUE(WriteSegmentFile(path, Fixture()).ok());

  SegmentOpenReport report;
  auto loaded = ReadSegmentFile(path, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.records_loaded, 4u);  // 2 sealed + 2 hot
  EXPECT_EQ(report.blocks_quarantined, 0u);
  EXPECT_FALSE(report.torn_tail);

  ASSERT_EQ(loaded->size(), 2u);  // sorted by key
  const SegmentSeries& a = (*loaded)[0];
  EXPECT_EQ(a.key, "cdbm011/cpu");
  EXPECT_EQ(a.freq, tsa::Frequency::kHourly);
  ASSERT_EQ(a.blocks.size(), 2u);
  EXPECT_EQ(a.blocks[0].start_epoch, 0);
  EXPECT_EQ(a.blocks[1].start_epoch, 32 * 3600);
  EXPECT_EQ(a.hot_start_epoch, 64 * 3600);
  ASSERT_EQ(a.hot.size(), 3u);
  EXPECT_DOUBLE_EQ(a.hot[0], 7.25);
  EXPECT_TRUE(std::isnan(a.hot[2]));
  auto decoded = DecodeBlockValues(a.blocks[1]);
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ((*decoded)[0], 16.0);

  const SegmentSeries& b = (*loaded)[1];
  EXPECT_EQ(b.key, "cdbm012/memory");
  EXPECT_TRUE(b.blocks.empty());
  EXPECT_EQ(b.hot, (std::vector<double>{100.0, 101.0}));
}

TEST(SegmentTest, MissingFileIsNotFound) {
  auto loaded = ReadSegmentFile(TempPath("nope.capseg"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SegmentTest, RejectsForeignFile) {
  const std::string path = TempPath("foreign.capseg");
  WriteFileBytes(path, {'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l', 'd'});
  EXPECT_FALSE(ReadSegmentFile(path).ok());
}

TEST(SegmentTest, WriteIsAtomic) {
  const std::string path = TempPath("atomic.capseg");
  ASSERT_TRUE(WriteSegmentFile(path, Fixture()).ok());
  // No .tmp residue after a successful write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SegmentTest, TornTailTruncatesAndKeepsSealedData) {
  const std::string path = TempPath("torn.capseg");
  // Write the hot-only series first so the file's final record is the hot
  // tail of the series that also has sealed blocks — the interesting crash.
  std::vector<SegmentSeries> fixture = Fixture();
  std::swap(fixture[0], fixture[1]);
  ASSERT_TRUE(WriteSegmentFile(path, fixture).ok());
  std::vector<std::uint8_t> bytes = ReadFileBytes(path);

  // Simulate a crash mid-append: read the trailer to find the index, then
  // cut the file inside the last record, losing index + trailer too.
  ASSERT_GE(bytes.size(), 12u);
  std::uint64_t index_offset = 0;
  for (int i = 0; i < 8; ++i) {
    index_offset |= static_cast<std::uint64_t>(bytes[bytes.size() - 12 + i])
                    << (8 * i);
  }
  ASSERT_LT(index_offset, bytes.size());
  bytes.resize(index_offset - 5);  // tears the final (hot) record
  WriteFileBytes(path, bytes);

  SegmentOpenReport report;
  auto loaded = ReadSegmentFile(path, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.records_loaded, 3u);  // everything before the tear

  // All sealed data survived.
  ASSERT_EQ(loaded->size(), 2u);
  const SegmentSeries& a = (*loaded)[0];
  ASSERT_EQ(a.blocks.size(), 2u);
  for (const SealedBlock& block : a.blocks) {
    EXPECT_TRUE(DecodeBlockValues(block).ok());
  }
  // The torn series lost only its hot tail; its end is the sealed end.
  EXPECT_FALSE(a.has_hot);
  EXPECT_TRUE(a.hot.empty());
  EXPECT_EQ(a.hot_start_epoch, 64 * 3600);  // synthesised from sealed end
  // The other series (written whole, earlier in the file) is untouched.
  const SegmentSeries& b = (*loaded)[1];
  EXPECT_TRUE(b.has_hot);
  EXPECT_EQ(b.hot, (std::vector<double>{100.0, 101.0}));

  // The file was physically truncated to the last whole record, so a
  // second open scans cleanly without a tear.
  EXPECT_EQ(std::filesystem::file_size(path), report.truncated_at);
  SegmentOpenReport second;
  ASSERT_TRUE(ReadSegmentFile(path, &second).ok());
  EXPECT_FALSE(second.torn_tail);
  EXPECT_EQ(second.records_loaded, 3u);
}

TEST(SegmentTest, CorruptPayloadQuarantinesOnlyThatBlock) {
  const std::string path = TempPath("corrupt.capseg");
  ASSERT_TRUE(WriteSegmentFile(path, Fixture()).ok());
  std::vector<std::uint8_t> bytes = ReadFileBytes(path);

  // First record starts after the 8-byte header:
  //   magic(4) meta_len(4) meta meta_crc(4) payload_len(4) payload ...
  std::uint32_t meta_len = 0;
  for (int i = 0; i < 4; ++i) {
    meta_len |= static_cast<std::uint32_t>(bytes[12 + i]) << (8 * i);
  }
  const std::size_t payload_begin = 8 + 4 + 4 + meta_len + 4 + 4;
  ASSERT_LT(payload_begin + 10, bytes.size());
  bytes[payload_begin + 10] ^= 0x40;  // bit rot inside block 0's payload
  WriteFileBytes(path, bytes);

  SegmentOpenReport report;
  auto loaded = ReadSegmentFile(path, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.blocks_quarantined, 1u);

  ASSERT_EQ(loaded->size(), 2u);
  const SegmentSeries& a = (*loaded)[0];
  ASSERT_EQ(a.blocks.size(), 2u);
  // Block 0 is quarantined but keeps its identity and grid slot.
  EXPECT_TRUE(a.blocks[0].quarantined);
  EXPECT_EQ(a.blocks[0].start_epoch, 0);
  EXPECT_EQ(a.blocks[0].count, 32u);
  auto nans = DecodeBlockValues(a.blocks[0]);
  ASSERT_TRUE(nans.ok());
  for (double v : *nans) EXPECT_TRUE(std::isnan(v));
  // Its neighbour and the other series are untouched.
  EXPECT_FALSE(a.blocks[1].quarantined);
  EXPECT_TRUE(DecodeBlockValues(a.blocks[1]).ok());
  EXPECT_EQ((*loaded)[1].hot.size(), 2u);
  EXPECT_EQ(a.hot.size(), 3u);
}

TEST(SegmentTest, QuarantinedPlaceholdersDoNotPersist) {
  std::vector<double> run(16, 2.0);
  SegmentSeries s;
  s.key = "k";
  s.freq = tsa::Frequency::kHourly;
  s.blocks = {QuarantinedBlock(0, 3600, 16), SealBlock(16 * 3600, 3600, run)};
  s.hot_start_epoch = 32 * 3600;
  const std::string path = TempPath("placeholder.capseg");
  ASSERT_TRUE(WriteSegmentFile(path, {s}).ok());
  auto loaded = ReadSegmentFile(path);
  ASSERT_TRUE(loaded.ok());
  // Only the healthy block was written; the hole is implicit in the grid
  // (SeriesStore::Restore re-creates the placeholder from the gap).
  ASSERT_EQ(loaded->size(), 1u);
  ASSERT_EQ((*loaded)[0].blocks.size(), 1u);
  EXPECT_EQ((*loaded)[0].blocks[0].start_epoch, 16 * 3600);
}

// Pins the on-disk byte layout. If this test fails you have changed the
// segment format: bump kVersion in segment.cc, add migration handling, and
// re-pin these constants — never re-pin silently.
TEST(SegmentTest, GoldenByteLayout) {
  std::vector<double> run;
  for (int i = 0; i < 16; ++i) run.push_back(static_cast<double>(i + 1));
  SegmentSeries s;
  s.key = "g/cpu";
  s.freq = tsa::Frequency::kHourly;
  s.blocks = {SealBlock(0, 3600, run)};
  s.hot_start_epoch = 16 * 3600;
  s.hot = {17.5};
  const std::string path = TempPath("golden.capseg");
  ASSERT_TRUE(WriteSegmentFile(path, {s}).ok());
  const std::vector<std::uint8_t> bytes = ReadFileBytes(path);

  // Header: "CSEG", version 1, flags 0.
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], 'C');
  EXPECT_EQ(bytes[1], 'S');
  EXPECT_EQ(bytes[2], 'E');
  EXPECT_EQ(bytes[3], 'G');
  EXPECT_EQ(bytes[4], 1u);
  EXPECT_EQ(bytes[5], 0u);
  // First record magic: "CREC".
  EXPECT_EQ(bytes[8], 'C');
  EXPECT_EQ(bytes[9], 'R');
  EXPECT_EQ(bytes[10], 'E');
  EXPECT_EQ(bytes[11], 'C');
  // Trailer magic: "CEND".
  EXPECT_EQ(bytes[bytes.size() - 4], 'C');
  EXPECT_EQ(bytes[bytes.size() - 3], 'E');
  EXPECT_EQ(bytes[bytes.size() - 2], 'N');
  EXPECT_EQ(bytes[bytes.size() - 1], 'D');

  // The pinned whole-file fingerprint: any codec or layout change lands
  // here.
  const std::size_t kGoldenSize = 192;
  const std::uint32_t kGoldenCrc = 1419808865u;
  EXPECT_EQ(bytes.size(), kGoldenSize);
  EXPECT_EQ(Crc32(bytes.data(), bytes.size()), kGoldenCrc)
      << "segment byte layout changed";
}

}  // namespace
}  // namespace capplan::store
