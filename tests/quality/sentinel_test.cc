#include "quality/sentinel.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace capplan::quality {
namespace {

constexpr std::int64_t kHour = 3600;
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

tsa::TimeSeries Series(std::vector<double> v) {
  return tsa::TimeSeries("db01/cpu", 0, tsa::Frequency::kHourly,
                         std::move(v));
}

// A healthy daily-pattern series long enough for any gate.
std::vector<double> CleanValues(std::size_t n = 200) {
  std::vector<double> v(n);
  for (std::size_t t = 0; t < n; ++t) {
    v[t] = 50.0 + 10.0 * std::sin(2.0 * M_PI * static_cast<double>(t) / 24.0);
  }
  return v;
}

TEST(SentinelInspectTest, PristineSeriesScoresOne) {
  DataQualitySentinel sentinel;
  const auto report = sentinel.Inspect(Series(CleanValues()));
  EXPECT_DOUBLE_EQ(report.score, 1.0);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  EXPECT_TRUE(report.trainable);
  EXPECT_EQ(report.verdict, "ok");
  EXPECT_EQ(report.n_samples, 200u);
}

TEST(SentinelInspectTest, EmptySeriesUntrainable) {
  DataQualitySentinel sentinel;
  const auto report = sentinel.Inspect(Series({}));
  EXPECT_FALSE(report.trainable);
  EXPECT_DOUBLE_EQ(report.score, 0.0);
  EXPECT_EQ(report.verdict, "empty");
}

TEST(SentinelInspectTest, ClassifiesBadValues) {
  auto v = CleanValues();
  v[10] = kNaN;
  v[11] = kNaN;
  v[20] = std::numeric_limits<double>::infinity();
  v[30] = -5.0;  // negative CPU%
  DataQualitySentinel sentinel;
  const auto report = sentinel.Inspect(Series(v));
  EXPECT_EQ(report.missing, 2u);
  EXPECT_EQ(report.non_finite, 1u);
  EXPECT_EQ(report.negatives, 1u);
  EXPECT_LT(report.score, 1.0);
  EXPECT_NE(report.verdict.find("missing=2"), std::string::npos);
  EXPECT_NE(report.verdict.find("negatives=1"), std::string::npos);
}

TEST(SentinelInspectTest, NegativesAllowedWhenMetricIsSigned) {
  auto v = CleanValues();
  v[30] = -5.0;
  SentinelOptions opts;
  opts.non_negative_metric = false;
  DataQualitySentinel sentinel(opts);
  const auto report = sentinel.Inspect(Series(v));
  EXPECT_EQ(report.negatives, 0u);
}

TEST(SentinelInspectTest, DetectsCounterReset) {
  // A monotone byte counter that wraps once mid-series.
  std::vector<double> v(100);
  for (std::size_t t = 0; t < 100; ++t) {
    v[t] = static_cast<double>(t) * 1000.0;
  }
  v[60] = 5.0;  // reset: far below v[59]
  for (std::size_t t = 61; t < 100; ++t) {
    v[t] = 5.0 + static_cast<double>(t - 60) * 1000.0;
  }
  DataQualitySentinel sentinel;
  const auto report = sentinel.Inspect(Series(v));
  EXPECT_EQ(report.counter_resets, 1u);
}

TEST(SentinelInspectTest, NoisySeriesHasNoCounterResets) {
  // Roughly half the deltas are negative: not counter-like, so dips are
  // real workload decreases, not resets.
  DataQualitySentinel sentinel;
  const auto report = sentinel.Inspect(Series(CleanValues()));
  EXPECT_EQ(report.counter_resets, 0u);
}

TEST(SentinelInspectTest, DetectsFlatline) {
  auto v = CleanValues();
  for (std::size_t t = 50; t < 90; ++t) v[t] = 42.0;  // 40 stuck samples
  DataQualitySentinel sentinel;
  const auto report = sentinel.Inspect(Series(v));
  EXPECT_EQ(report.flatline_runs, 1u);
  EXPECT_EQ(report.longest_flatline, 40u);
  EXPECT_LT(report.score, 1.0);
}

TEST(SentinelInspectTest, ShortFlatRunIsNotAFlatline) {
  auto v = CleanValues();
  for (std::size_t t = 50; t < 60; ++t) v[t] = 42.0;  // below min run of 24
  DataQualitySentinel sentinel;
  const auto report = sentinel.Inspect(Series(v));
  EXPECT_EQ(report.flatline_runs, 0u);
}

TEST(SentinelInspectTest, ShortGapVersusLongOutage) {
  auto v = CleanValues();
  for (std::size_t t = 40; t < 44; ++t) v[t] = kNaN;    // 4: short gap
  for (std::size_t t = 100; t < 120; ++t) v[t] = kNaN;  // 20: outage
  DataQualitySentinel sentinel;
  const auto report = sentinel.Inspect(Series(v));
  EXPECT_EQ(report.short_gaps_filled, 1u);
  EXPECT_EQ(report.long_outages, 1u);
  EXPECT_EQ(report.longest_gap, 20u);
  // Training is masked up to the end of the outage.
  EXPECT_EQ(report.masked_leading, 120u);
}

TEST(SentinelRepairTest, CleanSeriesIsReturnedUnchanged) {
  const auto series = Series(CleanValues());
  DataQualitySentinel sentinel;
  QualityReport report;
  auto repaired = sentinel.Repair(series, &report);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), series.size());
  EXPECT_EQ(repaired->start_epoch(), series.start_epoch());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ((*repaired)[i], series[i]) << "i=" << i;
  }
  EXPECT_TRUE(report.trainable);
}

TEST(SentinelRepairTest, ShortGapLinearlyInterpolated) {
  auto v = CleanValues();
  v[50] = 10.0;
  v[51] = kNaN;
  v[52] = kNaN;
  v[53] = kNaN;
  v[54] = 50.0;
  DataQualitySentinel sentinel;
  auto repaired = sentinel.Repair(Series(v), nullptr);
  ASSERT_TRUE(repaired.ok());
  EXPECT_DOUBLE_EQ((*repaired)[51], 20.0);
  EXPECT_DOUBLE_EQ((*repaired)[52], 30.0);
  EXPECT_DOUBLE_EQ((*repaired)[53], 40.0);
}

TEST(SentinelRepairTest, LongOutageMasksPrefix) {
  auto v = CleanValues(200);
  for (std::size_t t = 80; t < 100; ++t) v[t] = kNaN;
  DataQualitySentinel sentinel;
  QualityReport report;
  auto repaired = sentinel.Repair(Series(v), &report);
  ASSERT_TRUE(repaired.ok());
  // Only the clean suffix after the outage survives, with its timestamp.
  EXPECT_EQ(repaired->size(), 100u);
  EXPECT_EQ(repaired->start_epoch(), 100 * kHour);
  EXPECT_DOUBLE_EQ((*repaired)[0], v[100]);
  EXPECT_EQ(report.masked_leading, 100u);
  EXPECT_EQ(report.long_outages, 1u);
}

TEST(SentinelRepairTest, InvalidValuesBecomeMissing) {
  auto v = CleanValues();
  v[60] = -std::numeric_limits<double>::infinity();
  DataQualitySentinel sentinel;
  auto repaired = sentinel.Repair(Series(v), nullptr);
  ASSERT_TRUE(repaired.ok());
  // A lone bad value is a 1-long interior gap: interpolated away.
  EXPECT_TRUE(std::isfinite((*repaired)[60]));
  EXPECT_NEAR((*repaired)[60], (v[59] + v[61]) / 2.0, 1e-12);
}

TEST(SentinelRepairTest, AllMissingFails) {
  DataQualitySentinel sentinel;
  QualityReport report;
  auto repaired = sentinel.Repair(Series(std::vector<double>(50, kNaN)),
                                  &report);
  EXPECT_FALSE(repaired.ok());
  EXPECT_FALSE(report.trainable);
}

TEST(SentinelRepairTest, PreservesNormalizationCountsInReport) {
  DataQualitySentinel sentinel;
  QualityReport report;
  report.duplicates = 3;
  report.clock_skew = 2;
  report.out_of_order = 1;
  auto repaired = sentinel.Repair(Series(CleanValues()), &report);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(report.duplicates, 3u);
  EXPECT_EQ(report.clock_skew, 2u);
  EXPECT_EQ(report.out_of_order, 1u);
  EXPECT_NE(report.verdict.find("duplicates=3"), std::string::npos);
}

TEST(SentinelGateTest, LowCoverageBlocksTraining) {
  // Scattered lone gaps: interior singles are interpolated, so coverage
  // stays high — instead drop whole stretches beyond what repair bridges.
  auto v = CleanValues(100);
  for (std::size_t t = 0; t < 100; ++t) {
    if (t % 2 == 0) v[t] = kNaN;  // every other sample dropped
  }
  SentinelOptions opts;
  opts.min_coverage = 0.6;
  DataQualitySentinel sentinel(opts);
  const auto report = sentinel.Inspect(Series(v));
  EXPECT_LT(report.coverage, 0.6);
  EXPECT_FALSE(report.trainable);
}

TEST(SentinelGateTest, TooFewObservationsBlocksTraining) {
  DataQualitySentinel sentinel;  // min_observations = 24
  const auto report = sentinel.Inspect(Series(CleanValues(10)));
  EXPECT_FALSE(report.trainable);
}

TEST(NormalizeSamplesTest, PlacesWellFormedBatch) {
  std::vector<RawSample> samples;
  for (int i = 0; i < 4; ++i) {
    samples.push_back({i * kHour, static_cast<double>(i)});
  }
  QualityReport report;
  const auto series = DataQualitySentinel::NormalizeSamples(
      "k", samples, 0, tsa::Frequency::kHourly, 4, &report);
  ASSERT_EQ(series.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(series[i], static_cast<double>(i));
  }
  EXPECT_EQ(report.duplicates + report.clock_skew + report.out_of_order, 0u);
}

TEST(NormalizeSamplesTest, SnapsSkewedClocks) {
  // 90 seconds late: still the same hourly slot.
  std::vector<RawSample> samples = {{0, 1.0}, {kHour + 90, 2.0}};
  QualityReport report;
  const auto series = DataQualitySentinel::NormalizeSamples(
      "k", samples, 0, tsa::Frequency::kHourly, 2, &report);
  EXPECT_DOUBLE_EQ(series[1], 2.0);
  EXPECT_EQ(report.clock_skew, 1u);
}

TEST(NormalizeSamplesTest, FirstDeliveryWinsOnDuplicate) {
  std::vector<RawSample> samples = {{0, 1.0}, {0, 99.0}};
  QualityReport report;
  const auto series = DataQualitySentinel::NormalizeSamples(
      "k", samples, 0, tsa::Frequency::kHourly, 1, &report);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_EQ(report.duplicates, 1u);
}

TEST(NormalizeSamplesTest, CountsOutOfOrderAndDropsOutOfRange) {
  std::vector<RawSample> samples = {
      {2 * kHour, 2.0},  // arrives first
      {0, 0.0},          // behind the watermark
      {-kHour, -1.0},    // before the grid
      {9 * kHour, 9.0},  // past the grid
  };
  QualityReport report;
  const auto series = DataQualitySentinel::NormalizeSamples(
      "k", samples, 0, tsa::Frequency::kHourly, 3, &report);
  EXPECT_EQ(report.out_of_order, 2u);  // the two behind the 2h watermark
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[2], 2.0);
  EXPECT_TRUE(std::isnan(series[1]));  // empty slot
}

TEST(SummarizeIssuesTest, CompactAndEmptyWhenClean) {
  QualityReport clean;
  EXPECT_TRUE(SummarizeIssues(clean).empty());
  QualityReport dirty;
  dirty.missing = 12;
  dirty.long_outages = 1;
  EXPECT_EQ(SummarizeIssues(dirty), "missing=12;long_outages=1");
}

}  // namespace
}  // namespace capplan::quality
