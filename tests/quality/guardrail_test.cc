#include "quality/guardrail.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace capplan::quality {
namespace {

LiveAccuracyTracker::Options SmallWindow(std::size_t window) {
  LiveAccuracyTracker::Options opts;
  opts.window = window;
  return opts;
}

TEST(LiveAccuracyTrackerTest, EmptyTrackerReportsNegativeMape) {
  LiveAccuracyTracker tracker;
  EXPECT_LT(tracker.live_mape(), 0.0);
  EXPECT_EQ(tracker.window_size(), 0u);
  EXPECT_EQ(tracker.samples_scored(), 0u);
}

TEST(LiveAccuracyTrackerTest, LiveMapeIsMeanAbsolutePercentageError) {
  LiveAccuracyTracker tracker(SmallWindow(8));
  // APEs: |100-90|/100 = 0.10 and |200-240|/200 = 0.20 -> mean 0.15.
  const auto first = tracker.Score(100.0, 90.0);
  EXPECT_NEAR(first.abs_pct_error, 0.10, 1e-12);
  const auto second = tracker.Score(200.0, 240.0);
  EXPECT_NEAR(second.abs_pct_error, 0.20, 1e-12);
  EXPECT_NEAR(tracker.live_mape(), 0.15, 1e-12);
  EXPECT_EQ(tracker.window_size(), 2u);
  EXPECT_EQ(tracker.samples_scored(), 2u);
}

TEST(LiveAccuracyTrackerTest, WindowEvictsOldestErrors) {
  LiveAccuracyTracker tracker(SmallWindow(2));
  tracker.Score(100.0, 0.0);    // APE 1.0 — should age out
  tracker.Score(100.0, 90.0);   // APE 0.1
  tracker.Score(100.0, 110.0);  // APE 0.1
  EXPECT_EQ(tracker.window_size(), 2u);
  EXPECT_NEAR(tracker.live_mape(), 0.1, 1e-12);
}

TEST(LiveAccuracyTrackerTest, NonFiniteInputsAreSkippedNotScored) {
  LiveAccuracyTracker tracker(SmallWindow(4));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  tracker.Score(nan, 50.0);
  tracker.Score(50.0, nan);
  tracker.Score(inf, 50.0);
  EXPECT_EQ(tracker.samples_scored(), 0u);
  EXPECT_EQ(tracker.samples_skipped(), 3u);
  EXPECT_LT(tracker.live_mape(), 0.0);
  // A masked outage must not feed the drift detector either.
  EXPECT_EQ(tracker.detector().samples_seen(), 0u);
}

TEST(LiveAccuracyTrackerTest, NearZeroActualUsesDenominatorFloor) {
  LiveAccuracyTracker::Options opts = SmallWindow(4);
  opts.min_denominator = 1.0;
  LiveAccuracyTracker tracker(opts);
  const auto scored = tracker.Score(0.0, 3.0);
  EXPECT_NEAR(scored.abs_pct_error, 3.0, 1e-12);  // clamped, not infinite
  EXPECT_TRUE(std::isfinite(tracker.live_mape()));
}

TEST(LiveAccuracyTrackerTest, ResetBaselineClearsWindowButKeepsLifetime) {
  LiveAccuracyTracker tracker(SmallWindow(4));
  tracker.Score(100.0, 90.0);
  tracker.Score(100.0, 80.0);
  ASSERT_EQ(tracker.window_size(), 2u);
  tracker.ResetBaseline();
  EXPECT_EQ(tracker.window_size(), 0u);
  EXPECT_LT(tracker.live_mape(), 0.0);
  EXPECT_EQ(tracker.detector().samples_seen(), 0u);
  EXPECT_EQ(tracker.samples_scored(), 2u);  // lifetime counters survive
}

TEST(LiveAccuracyTrackerTest, SustainedErrorShiftRaisesDriftAlarm) {
  LiveAccuracyTracker::Options opts = SmallWindow(24);
  opts.drift.delta = 0.005;
  opts.drift.threshold = 1.0;
  opts.drift.min_samples = 10;
  LiveAccuracyTracker tracker(opts);
  // A long stretch of accurate forecasts: ~1% error, no alarm.
  for (int i = 0; i < 48; ++i) {
    const auto scored = tracker.Score(100.0, 99.0);
    ASSERT_FALSE(scored.drift_alarm);
  }
  // The workload shifts and the active forecast goes 40% wrong.
  bool alarmed = false;
  for (int i = 0; i < 48 && !alarmed; ++i) {
    alarmed = tracker.Score(140.0, 100.0).drift_alarm;
  }
  EXPECT_TRUE(alarmed);
  EXPECT_EQ(tracker.alarms(), 1u);
  // Page-Hinkley auto-reset: the detector starts a fresh baseline.
  EXPECT_EQ(tracker.detector().samples_seen(), 0u);
}

TEST(LiveAccuracyTrackerTest, StableAccurateStreamNeverAlarmsOnDefaults) {
  LiveAccuracyTracker tracker;  // production defaults
  for (int i = 0; i < 24 * 14; ++i) {
    const double noise = 0.02 * ((i % 5) - 2);  // ±4% wiggle
    EXPECT_FALSE(tracker.Score(100.0, 100.0 * (1.0 + noise)).drift_alarm);
  }
  EXPECT_EQ(tracker.alarms(), 0u);
}

}  // namespace
}  // namespace capplan::quality
