#include "workload/scenario.h"

#include <gtest/gtest.h>

namespace capplan::workload {
namespace {

TEST(OlapScenarioTest, MatchesPaperExperimentOne) {
  const auto s = WorkloadScenario::Olap();
  EXPECT_EQ(s.name, "olap");
  EXPECT_EQ(s.n_instances, 2);
  EXPECT_DOUBLE_EQ(s.base_users, 40.0);  // "40 OLAP users"
  // Simple workload: no weekly (multiple) seasonality.
  EXPECT_DOUBLE_EQ(s.weekly_amplitude, 0.0);
  // Exactly one shock: the midnight backup on node 1.
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, EventKind::kBackup);
  EXPECT_EQ(s.events[0].target_instance, 0);
  EXPECT_EQ(s.events[0].period_seconds, 24 * 3600);
}

TEST(OltpScenarioTest, MatchesPaperExperimentTwo) {
  const auto s = WorkloadScenario::Oltp();
  EXPECT_EQ(s.name, "oltp");
  // The trend driver: 50 users per day.
  EXPECT_DOUBLE_EQ(s.user_growth_per_day, 50.0);
  // Weekly second season present.
  EXPECT_GT(s.weekly_amplitude, 0.0);
  // Three events: two surges + the 6-hourly backup.
  ASSERT_EQ(s.events.size(), 3u);
  int surges = 0, backups = 0;
  for (const auto& e : s.events) {
    if (e.kind == EventKind::kUserSurge) ++surges;
    if (e.kind == EventKind::kBackup) ++backups;
  }
  EXPECT_EQ(surges, 2);
  EXPECT_EQ(backups, 1);
}

TEST(OltpScenarioTest, SurgeParametersPerPaper) {
  const auto s = WorkloadScenario::Oltp();
  // 07:00 surge of 1000 users for 4h; 09:00 surge of 1000 users for 1h.
  const ScheduledEvent* surge7 = nullptr;
  const ScheduledEvent* surge9 = nullptr;
  for (const auto& e : s.events) {
    if (e.kind != EventKind::kUserSurge) continue;
    const std::int64_t hour =
        ((e.first_start_epoch - kExperimentStartEpoch) / 3600) % 24;
    if (hour == 7) surge7 = &e;
    if (hour == 9) surge9 = &e;
  }
  ASSERT_NE(surge7, nullptr);
  ASSERT_NE(surge9, nullptr);
  EXPECT_DOUBLE_EQ(surge7->users_add, 1000.0);
  EXPECT_EQ(surge7->duration_seconds, 4 * 3600);
  EXPECT_DOUBLE_EQ(surge9->users_add, 1000.0);
  EXPECT_EQ(surge9->duration_seconds, 3600);
}

TEST(OltpScenarioTest, BackupEverySixHours) {
  const auto s = WorkloadScenario::Oltp();
  for (const auto& e : s.events) {
    if (e.kind == EventKind::kBackup) {
      EXPECT_EQ(e.period_seconds, 6 * 3600);
      // "4 exogenous variables": four occurrences per day.
      EXPECT_EQ(e.OccurrencesIn(kExperimentStartEpoch,
                                kExperimentStartEpoch + 24 * 3600),
                4);
    }
  }
}

TEST(ScenarioTest, ExperimentEpochIsMondayMidnight) {
  // 1559520000 = 2019-06-03 00:00:00 UTC, a Monday.
  EXPECT_EQ(kExperimentStartEpoch % 86400, 0);
  // Days since epoch Thursday 1970-01-01: (days + 4) % 7 == 1 for Monday.
  const std::int64_t days = kExperimentStartEpoch / 86400;
  EXPECT_EQ((days + 4) % 7, 1);
}

}  // namespace
}  // namespace capplan::workload
