#include "workload/events.h"

#include <gtest/gtest.h>

namespace capplan::workload {
namespace {

TEST(ScheduledEventTest, OneShotActivity) {
  ScheduledEvent e;
  e.first_start_epoch = 1000;
  e.period_seconds = 0;
  e.duration_seconds = 100;
  EXPECT_FALSE(e.IsActiveAt(999));
  EXPECT_TRUE(e.IsActiveAt(1000));
  EXPECT_TRUE(e.IsActiveAt(1099));
  EXPECT_FALSE(e.IsActiveAt(1100));
}

TEST(ScheduledEventTest, PeriodicActivity) {
  ScheduledEvent e;
  e.first_start_epoch = 0;
  e.period_seconds = 3600;
  e.duration_seconds = 600;
  EXPECT_TRUE(e.IsActiveAt(0));
  EXPECT_TRUE(e.IsActiveAt(599));
  EXPECT_FALSE(e.IsActiveAt(600));
  EXPECT_TRUE(e.IsActiveAt(3600));
  EXPECT_TRUE(e.IsActiveAt(2 * 3600 + 300));
  EXPECT_FALSE(e.IsActiveAt(-100));
}

TEST(ScheduledEventTest, OccurrenceCounting) {
  ScheduledEvent e;
  e.first_start_epoch = 0;
  e.period_seconds = 3600;
  e.duration_seconds = 60;
  EXPECT_EQ(e.OccurrencesIn(0, 3600 * 24), 24);
  EXPECT_EQ(e.OccurrencesIn(0, 1), 1);
  EXPECT_EQ(e.OccurrencesIn(1, 3600), 0);
  EXPECT_EQ(e.OccurrencesIn(1, 3601), 1);
  EXPECT_EQ(e.OccurrencesIn(-100, 0), 0);
}

TEST(ScheduledEventTest, OneShotOccurrences) {
  ScheduledEvent e;
  e.first_start_epoch = 500;
  e.period_seconds = 0;
  e.duration_seconds = 10;
  EXPECT_EQ(e.OccurrencesIn(0, 1000), 1);
  EXPECT_EQ(e.OccurrencesIn(501, 1000), 0);
}

TEST(MakeBackupTest, FieldsPopulated) {
  const auto e = MakeBackup(1000, 6, 1, 450000.0, 8.0, -1);
  EXPECT_EQ(e.kind, EventKind::kBackup);
  EXPECT_EQ(e.period_seconds, 6 * 3600);
  EXPECT_EQ(e.duration_seconds, 3600);
  EXPECT_DOUBLE_EQ(e.iops_add, 450000.0);
  EXPECT_DOUBLE_EQ(e.cpu_add, 8.0);
  EXPECT_EQ(e.target_instance, -1);
  // Four backups per day, the paper's exogenous variable count.
  EXPECT_EQ(e.OccurrencesIn(1000, 1000 + 24 * 3600), 4);
}

TEST(MakeDailySurgeTest, FiresAtTheRightHour) {
  const std::int64_t day0 = 0;
  const auto e = MakeDailySurge(day0, 7, 4, 1000.0);
  EXPECT_EQ(e.kind, EventKind::kUserSurge);
  EXPECT_FALSE(e.IsActiveAt(6 * 3600));
  EXPECT_TRUE(e.IsActiveAt(7 * 3600));
  EXPECT_TRUE(e.IsActiveAt(10 * 3600 + 1800));
  EXPECT_FALSE(e.IsActiveAt(11 * 3600));
  // Next day too.
  EXPECT_TRUE(e.IsActiveAt(24 * 3600 + 8 * 3600));
}

TEST(EventKindTest, Names) {
  EXPECT_STREQ(EventKindName(EventKind::kBackup), "backup");
  EXPECT_STREQ(EventKindName(EventKind::kUserSurge), "user-surge");
  EXPECT_STREQ(EventKindName(EventKind::kFailover), "failover");
}

}  // namespace
}  // namespace capplan::workload
