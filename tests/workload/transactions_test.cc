#include "workload/transactions.h"

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace capplan::workload {
namespace {

TEST(TransactionMixTest, TpchAggregates) {
  const auto mix = TransactionMix::TpchLike();
  EXPECT_EQ(mix.name, "tpch-like");
  ASSERT_EQ(mix.profiles.size(), 4u);
  // Totals calibrated to the OLAP preset: ~40.6 CPU-s, 42000 IOs, 24 MB.
  EXPECT_NEAR(mix.CpuSecondsPerUserHour(), 40.6, 0.01);
  EXPECT_NEAR(mix.LogicalIosPerUserHour(), 42000.0, 1e-9);
  EXPECT_NEAR(mix.SessionMemoryMb(), 24.0, 1e-9);
  EXPECT_NEAR(mix.CpuPercentPerUser(), 40.6 / 36.0, 1e-6);
}

TEST(TransactionMixTest, TpceAggregates) {
  const auto mix = TransactionMix::TpceLike();
  EXPECT_NEAR(mix.CpuSecondsPerUserHour(), 1.26, 0.01);
  EXPECT_NEAR(mix.LogicalIosPerUserHour(), 1800.0, 1e-9);
  EXPECT_NEAR(mix.SessionMemoryMb(), 4.0, 1e-9);
}

TEST(TransactionMixTest, OlapIsScanDominated) {
  // The heavy report query dominates OLAP IO — the paper's "high in IO and
  // execute for long periods of time" characterization.
  const auto mix = TransactionMix::TpchLike();
  double report_ios = 0.0;
  for (const auto& p : mix.profiles) {
    if (p.cls == TransactionClass::kReportQuery) {
      report_ios += p.executions_per_user_hour * p.logical_ios_per_execution;
    }
  }
  EXPECT_GT(report_ios, 0.5 * mix.LogicalIosPerUserHour());
}

TEST(TransactionMixTest, OltpIsShortTransactionDominated) {
  const auto mix = TransactionMix::TpceLike();
  for (const auto& p : mix.profiles) {
    EXPECT_LT(p.cpu_ms_per_execution, 50.0);       // all short
    EXPECT_GT(p.executions_per_user_hour, 5.0);    // all frequent
  }
}

TEST(TransactionMixTest, PerUserCostRatioMatchesWorkloadTypes) {
  // OLAP users are individually far more expensive than OLTP users.
  const auto olap = TransactionMix::TpchLike();
  const auto oltp = TransactionMix::TpceLike();
  EXPECT_GT(olap.CpuSecondsPerUserHour() / oltp.CpuSecondsPerUserHour(),
            20.0);
  EXPECT_GT(olap.LogicalIosPerUserHour() / oltp.LogicalIosPerUserHour(),
            15.0);
}

TEST(TransactionMixTest, ScenariosDeriveCostsFromMix) {
  const auto olap = WorkloadScenario::Olap();
  EXPECT_EQ(olap.mix.name, "tpch-like");
  EXPECT_DOUBLE_EQ(olap.cpu_per_user, olap.mix.CpuPercentPerUser());
  EXPECT_DOUBLE_EQ(olap.iops_per_user, olap.mix.LogicalIosPerUserHour());
  EXPECT_DOUBLE_EQ(olap.memory_per_user, olap.mix.SessionMemoryMb());

  const auto oltp = WorkloadScenario::Oltp();
  EXPECT_EQ(oltp.mix.name, "tpce-like");
  EXPECT_DOUBLE_EQ(oltp.iops_per_user, 1800.0);
}

TEST(TransactionClassTest, Names) {
  EXPECT_STREQ(TransactionClassName(TransactionClass::kReportQuery),
               "report-query");
  EXPECT_STREQ(TransactionClassName(TransactionClass::kBulkLoad),
               "bulk-load");
  EXPECT_STREQ(TransactionClassName(TransactionClass::kPointSelect),
               "point-select");
}

}  // namespace
}  // namespace capplan::workload
