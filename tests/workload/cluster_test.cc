#include "workload/cluster.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace capplan::workload {
namespace {

ClusterSimulator MakeOlap(std::uint64_t seed = 42) {
  return ClusterSimulator(WorkloadScenario::Olap(), seed);
}

ClusterSimulator MakeOltp(std::uint64_t seed = 42) {
  return ClusterSimulator(WorkloadScenario::Oltp(), seed);
}

TEST(ClusterTest, InstanceNamesMatchPaper) {
  const auto sim = MakeOlap();
  EXPECT_EQ(sim.InstanceName(0), "cdbm011");
  EXPECT_EQ(sim.InstanceName(1), "cdbm012");
}

TEST(ClusterTest, SamplesAreDeterministic) {
  const auto sim1 = MakeOlap(7);
  const auto sim2 = MakeOlap(7);
  const std::int64_t t = kExperimentStartEpoch + 12345 * 60;
  const auto a = sim1.SampleAt(0, t);
  const auto b = sim2.SampleAt(0, t);
  EXPECT_DOUBLE_EQ(a.cpu_pct, b.cpu_pct);
  EXPECT_DOUBLE_EQ(a.memory_mb, b.memory_mb);
  EXPECT_DOUBLE_EQ(a.logical_iops, b.logical_iops);
}

TEST(ClusterTest, DifferentSeedsDiffer) {
  const auto sim1 = MakeOlap(1);
  const auto sim2 = MakeOlap(2);
  const std::int64_t t = kExperimentStartEpoch + 7200;
  EXPECT_NE(sim1.SampleAt(0, t).cpu_pct, sim2.SampleAt(0, t).cpu_pct);
}

TEST(ClusterTest, MetricsInPhysicalRanges) {
  const auto sim = MakeOltp();
  for (int day = 0; day < 30; day += 3) {
    for (int hour = 0; hour < 24; hour += 5) {
      const std::int64_t t =
          kExperimentStartEpoch + day * 86400 + hour * 3600;
      for (int inst = 0; inst < 2; ++inst) {
        const auto s = sim.SampleAt(inst, t);
        EXPECT_GE(s.cpu_pct, 0.0);
        EXPECT_LE(s.cpu_pct, 100.0);
        EXPECT_GE(s.memory_mb, 0.0);
        EXPECT_GE(s.logical_iops, 0.0);
      }
    }
  }
}

TEST(ClusterTest, DailySeasonalityPresent) {
  const auto sim = MakeOlap();
  // Midday activity beats 3am activity.
  const std::int64_t day = kExperimentStartEpoch + 10 * 86400;
  EXPECT_GT(sim.ActivityAt(day + 13 * 3600), sim.ActivityAt(day + 3 * 3600));
}

TEST(ClusterTest, OltpUserGrowthTrend) {
  const auto sim = MakeOltp();
  const double u0 = sim.UsersAt(kExperimentStartEpoch + 12 * 3600);
  const double u10 = sim.UsersAt(kExperimentStartEpoch + 10 * 86400 +
                                 12 * 3600);
  // ~50 users/day growth.
  EXPECT_NEAR(u10 - u0, 500.0, 50.0);
}

TEST(ClusterTest, OltpSurgeVisibleInUserCount) {
  const auto sim = MakeOltp();
  const std::int64_t day = kExperimentStartEpoch + 5 * 86400;
  const double before = sim.UsersAt(day + 6 * 3600);
  const double during7 = sim.UsersAt(day + 8 * 3600);   // 07:00-11:00 surge
  const double during9 = sim.UsersAt(day + 9 * 3600 + 1800);  // both surges
  // Tolerance covers the underlying +50 users/day growth accrued between
  // the comparison instants (a few users over a couple of hours).
  EXPECT_NEAR(during7 - before, 1000.0, 10.0);
  EXPECT_NEAR(during9 - before, 2000.0, 10.0);
}

TEST(ClusterTest, OlapBackupOnlyOnNodeOne) {
  const auto sim = MakeOlap();
  // Average IOPS at 00:30 (backup window) across many days, per instance.
  double iops0 = 0.0, iops1 = 0.0, base0 = 0.0;
  const int days = 20;
  for (int d = 0; d < days; ++d) {
    const std::int64_t t = kExperimentStartEpoch + d * 86400 + 1800;
    const std::int64_t tb = kExperimentStartEpoch + d * 86400 + 12 * 3600;
    iops0 += sim.SampleAt(0, t).logical_iops;
    iops1 += sim.SampleAt(1, t).logical_iops;
    base0 += sim.SampleAt(0, tb).logical_iops;
  }
  iops0 /= days;
  iops1 /= days;
  base0 /= days;
  // Node 1 midnight IOPS are boosted by the backup; node 2's are not.
  EXPECT_GT(iops0, iops1 + 300000.0);
  (void)base0;
}

TEST(ClusterTest, OltpBackupSpikesEverySixHours) {
  const auto sim = MakeOltp();
  const std::int64_t day = kExperimentStartEpoch + 8 * 86400;
  // 00:30 is inside a backup window, 01:30 outside (1h duration).
  const double inside = sim.SampleAt(1, day + 1800).logical_iops;
  const double outside = sim.SampleAt(1, day + 3600 + 1800).logical_iops;
  EXPECT_GT(inside, outside + 200000.0);
}

TEST(ClusterTest, LoadBalancedWithSkew) {
  const auto sim = MakeOltp();
  const std::int64_t t = kExperimentStartEpoch + 3 * 86400 + 14 * 3600;
  const auto s0 = sim.SampleAt(0, t);
  const auto s1 = sim.SampleAt(1, t);
  // Both instances carry comparable load (within ~40%), neither is idle.
  EXPECT_GT(s1.logical_iops, 0.5 * s0.logical_iops);
  EXPECT_LT(s1.logical_iops, 1.5 * s0.logical_iops);
}

TEST(ClusterTest, WeekendDipOnlyInOltp) {
  const auto oltp = MakeOltp();
  // Day 0 is Monday; day 5 is Saturday.
  const std::int64_t mon = kExperimentStartEpoch + 13 * 3600;
  const std::int64_t sat = kExperimentStartEpoch + 5 * 86400 + 13 * 3600;
  EXPECT_GT(oltp.ActivityAt(mon), oltp.ActivityAt(sat));
  const auto olap = MakeOlap();
  EXPECT_NEAR(olap.ActivityAt(mon), olap.ActivityAt(sat), 1e-12);
}

TEST(ClusterTest, OlapIopsMagnitudeMatchesPaperScale) {
  // The paper reports peaks of ~2.3 million logical IOPS/hour.
  const auto sim = MakeOlap();
  double peak = 0.0;
  for (int d = 25; d < 30; ++d) {
    for (int h = 0; h < 24; ++h) {
      const std::int64_t t = kExperimentStartEpoch + d * 86400 + h * 3600;
      peak = std::max(peak, sim.SampleAt(1, t).logical_iops);
    }
  }
  EXPECT_GT(peak, 1.0e6);
  EXPECT_LT(peak, 6.0e6);
}

TEST(ClusterTest, FailoverShiftsLoadToSurvivor) {
  auto scenario = WorkloadScenario::Oltp();
  const std::int64_t failover_start = kExperimentStartEpoch + 10 * 86400;
  scenario.events.push_back(
      MakeFailover(failover_start, /*duration_hours=*/4,
                   /*target_instance=*/0));
  ClusterSimulator sim(scenario, 42);
  ClusterSimulator healthy(WorkloadScenario::Oltp(), 42);

  const std::int64_t during = failover_start + 2 * 3600;
  const std::int64_t after = failover_start + 6 * 3600;
  // Downed instance reports only residual load.
  EXPECT_LT(sim.SampleAt(0, during).cpu_pct, 3.0);
  EXPECT_DOUBLE_EQ(sim.SampleAt(0, during).logical_iops, 0.0);
  // Survivor absorbs (roughly doubles vs the healthy cluster).
  const double survivor = sim.SampleAt(1, during).logical_iops;
  const double normal = healthy.SampleAt(1, during).logical_iops;
  EXPECT_GT(survivor, 1.6 * normal);
  // Back to normal after the failover window.
  EXPECT_NEAR(sim.SampleAt(0, after).cpu_pct,
              healthy.SampleAt(0, after).cpu_pct, 1e-9);
}

TEST(ClusterTest, RecurringFailoverIsPeriodic) {
  auto scenario = WorkloadScenario::Olap();
  scenario.events.push_back(MakeFailover(kExperimentStartEpoch, 1, 1,
                                         /*period_seconds=*/7 * 86400));
  ClusterSimulator sim(scenario, 1);
  // Active in week 0 and week 2 at the same offset.
  EXPECT_DOUBLE_EQ(sim.SampleAt(1, kExperimentStartEpoch + 1800).logical_iops,
                   0.0);
  EXPECT_DOUBLE_EQ(
      sim.SampleAt(1, kExperimentStartEpoch + 14 * 86400 + 1800).logical_iops,
      0.0);
  EXPECT_GT(
      sim.SampleAt(1, kExperimentStartEpoch + 86400 + 1800).logical_iops,
      0.0);
}

TEST(MetricTest, NamesAndAccessors) {
  EXPECT_STREQ(MetricName(Metric::kCpu), "cpu");
  EXPECT_STREQ(MetricName(Metric::kMemory), "memory");
  EXPECT_STREQ(MetricName(Metric::kLogicalIops), "logical_iops");
  MetricSample s;
  s.cpu_pct = 1.0;
  s.memory_mb = 2.0;
  s.logical_iops = 3.0;
  EXPECT_DOUBLE_EQ(s.Get(Metric::kCpu), 1.0);
  EXPECT_DOUBLE_EQ(s.Get(Metric::kMemory), 2.0);
  EXPECT_DOUBLE_EQ(s.Get(Metric::kLogicalIops), 3.0);
}

}  // namespace
}  // namespace capplan::workload
