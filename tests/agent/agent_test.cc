#include "agent/agent.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::agent {
namespace {

using workload::ClusterSimulator;
using workload::kExperimentStartEpoch;
using workload::Metric;
using workload::WorkloadScenario;

TEST(FaultModelTest, NoFaultsByDefault) {
  FaultModel f;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(f.IsDropped(0, kExperimentStartEpoch + i * 900));
  }
}

TEST(FaultModelTest, DropProbabilityApproximatelyRespected) {
  FaultModel f;
  f.drop_probability = 0.2;
  f.seed = 9;
  int dropped = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (f.IsDropped(0, i * 900)) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / n, 0.2, 0.02);
}

TEST(FaultModelTest, MaintenanceWindowDropsEverything) {
  FaultModel f;
  f.maintenance_start_epoch = 1000;
  f.maintenance_period_seconds = 86400;
  f.maintenance_duration_seconds = 3600;
  EXPECT_TRUE(f.IsDropped(0, 1000));
  EXPECT_TRUE(f.IsDropped(0, 1000 + 3599));
  EXPECT_FALSE(f.IsDropped(0, 1000 + 3600));
  EXPECT_TRUE(f.IsDropped(0, 1000 + 86400 + 10));
}

TEST(FaultModelTest, Deterministic) {
  FaultModel a, b;
  a.drop_probability = b.drop_probability = 0.3;
  a.seed = b.seed = 5;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.IsDropped(1, i * 900), b.IsDropped(1, i * 900));
  }
}

TEST(AgentTest, CollectsQuarterHourlySamples) {
  ClusterSimulator sim(WorkloadScenario::Olap(), 3);
  MonitoringAgent agent(&sim);
  auto ts = agent.Collect(0, Metric::kCpu, kExperimentStartEpoch, 96);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->size(), 96u);
  EXPECT_EQ(ts->frequency(), tsa::Frequency::kQuarterHourly);
  EXPECT_EQ(ts->name(), "cdbm011/cpu");
  EXPECT_FALSE(ts->HasMissing());
}

TEST(AgentTest, CollectDaysProducesFullTrace) {
  ClusterSimulator sim(WorkloadScenario::Oltp(), 3);
  MonitoringAgent agent(&sim);
  auto ts = agent.CollectDays(1, Metric::kLogicalIops, 30);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->size(), 96u * 30u);  // 96 polls/day
}

TEST(AgentTest, FaultsBecomeNan) {
  ClusterSimulator sim(WorkloadScenario::Olap(), 3);
  FaultModel faults;
  faults.drop_probability = 0.5;
  faults.seed = 11;
  MonitoringAgent agent(&sim, faults);
  auto ts = agent.Collect(0, Metric::kMemory, kExperimentStartEpoch, 400);
  ASSERT_TRUE(ts.ok());
  const std::size_t missing = ts->CountMissing();
  EXPECT_GT(missing, 120u);
  EXPECT_LT(missing, 280u);
}

TEST(AgentTest, ValidatesArguments) {
  ClusterSimulator sim(WorkloadScenario::Olap(), 3);
  MonitoringAgent agent(&sim);
  EXPECT_FALSE(agent.Collect(-1, Metric::kCpu, 0, 10).ok());
  EXPECT_FALSE(agent.Collect(5, Metric::kCpu, 0, 10).ok());
  MonitoringAgent bad_interval(&sim, {}, 1234);
  EXPECT_FALSE(bad_interval.Collect(0, Metric::kCpu, 0, 10).ok());
  MonitoringAgent no_cluster(nullptr);
  EXPECT_FALSE(no_cluster.Collect(0, Metric::kCpu, 0, 10).ok());
}

TEST(AgentTest, HourlyPollingSupported) {
  ClusterSimulator sim(WorkloadScenario::Olap(), 3);
  MonitoringAgent agent(&sim, {}, 3600);
  auto ts = agent.Collect(0, Metric::kCpu, kExperimentStartEpoch, 48);
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->frequency(), tsa::Frequency::kHourly);
}

}  // namespace
}  // namespace capplan::agent
