#include "service/estate_service.h"

#include <cmath>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "workload/scenario.h"

namespace capplan::service {
namespace {

constexpr std::int64_t kHour = 3600;
constexpr std::int64_t kDay = 24 * kHour;

workload::WorkloadScenario TestScenario() {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = 2;
  return scenario;
}

// Fast config: HES branch only, small pool, hourly ticks.
EstateServiceConfig FastConfig() {
  EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 2;
  config.warmup_days = 42;  // exactly the 1008-hour Table-1 window
  return config;
}

std::string FreshStateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/estate_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(EstateServiceTest, StartBackfillsWarmupAndSchedulesEveryWatch) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(
      &cluster,
      {{0, workload::Metric::kCpu, 95.0}, {1, workload::Metric::kCpu, 95.0}},
      FastConfig());
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.now(), cluster.start_epoch() + 42 * kDay);
  ASSERT_EQ(service.keys().size(), 2u);
  for (const auto& key : service.keys()) {
    const auto* hourly = service.FindHourly(key);
    ASSERT_NE(hourly, nullptr);
    EXPECT_EQ(hourly->size(), 1008u);
    auto entry = service.ScheduleFor(key);
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->due_epoch, service.now());
  }
  EXPECT_FALSE(service.Start().ok());  // double start rejected
}

TEST(EstateServiceTest, TickRequiresStart) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        FastConfig());
  EXPECT_FALSE(service.Tick().ok());
}

TEST(EstateServiceTest, BadTickCadenceRejected) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.tick_seconds = 1800;  // not a whole hour
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  EXPECT_FALSE(service.Start().ok());
}

TEST(EstateServiceTest, FirstTickIngestsAndFitsEveryWatch) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(
      &cluster,
      {{0, workload::Metric::kCpu, 95.0}, {1, workload::Metric::kLogicalIops, 1e12}},
      FastConfig());
  ASSERT_TRUE(service.Start().ok());

  auto report = service.Tick();
  ASSERT_TRUE(report.ok());
  // One hour of 15-minute polls for two watches.
  EXPECT_EQ(report->samples_ingested, 8u);
  EXPECT_EQ(report->refits_dispatched, 2u);
  ASSERT_TRUE(service.DrainRefits().ok());

  EXPECT_EQ(service.telemetry().refits_succeeded, 2u);
  EXPECT_EQ(service.telemetry().refits_failed, 0u);
  for (const auto& key : service.keys()) {
    EXPECT_EQ(service.FindHourly(key)->size(), 1009u);
    ASSERT_TRUE(service.registry().Contains(key));
    auto model = service.registry().Get(key);
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(model->fitted_at_epoch, service.now());
    // Next refit is due one staleness period after the fit.
    auto entry = service.ScheduleFor(key);
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->due_epoch,
              model->fitted_at_epoch +
                  service.registry().policy().max_age_seconds);
  }
}

TEST(EstateServiceTest, RefitsFollowTheAgePolicy) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.staleness.max_age_seconds = 2 * kHour;
  config.staleness.rmse_degradation_factor = 1e9;  // age only
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  ASSERT_TRUE(service.Start().ok());
  // Fits at ticks 1 (initial), 3 and 5 (age expiry): never in between.
  for (int tick = 1; tick <= 6; ++tick) {
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
  }
  EXPECT_EQ(service.telemetry().refits_dispatched, 3u);
  EXPECT_EQ(service.telemetry().refits_succeeded, 3u);
}

TEST(EstateServiceTest, DegradationPullsTheRefitForward) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.staleness.max_age_seconds = 30 * kDay;  // age never expires here
  // Any nonzero live RMSE counts as degraded.
  config.staleness.rmse_degradation_factor = 1e-12;
  config.degradation_min_points = 4;
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().refits_dispatched, 1u);
  // The degradation check waits for enough forecast-vs-actual overlap, then
  // pulls the (age-wise distant) refit forward.
  for (int tick = 2; tick <= 7; ++tick) {
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
  }
  EXPECT_GE(service.telemetry().refits_dispatched, 2u);
}

TEST(EstateServiceTest, FailingSeriesBacksOffThenQuarantines) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.retry.initial_backoff_seconds = kHour;
  config.retry.backoff_multiplier = 1.0;
  config.retry.quarantine_after_failures = 2;
  // Watch 1's agent drops every poll: an all-NaN series the pipeline cannot
  // interpolate, so every refit fails while watch 0 stays healthy.
  agent::FaultModel dead;
  dead.drop_probability = 1.0;
  EstateService service(&cluster,
                        {{0, workload::Metric::kCpu, 95.0},
                         {1, workload::Metric::kCpu, 95.0, dead}},
                        config);
  const std::string bad_key = service.keys()[1];
  ASSERT_TRUE(service.Start().ok());

  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().refits_failed, 1u);
  EXPECT_FALSE(service.IsQuarantined(bad_key));
  auto entry = service.ScheduleFor(bad_key);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->consecutive_failures, 1);
  EXPECT_EQ(entry->due_epoch, service.now() + kHour);  // backed off

  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().refits_failed, 2u);
  EXPECT_TRUE(service.IsQuarantined(bad_key));
  EXPECT_EQ(service.telemetry().quarantines, 1u);

  // The healthy watch was unaffected throughout.
  EXPECT_EQ(service.telemetry().refits_succeeded, 1u);
  EXPECT_TRUE(service.registry().Contains(service.keys()[0]));

  // Quarantined keys are out of the rotation until released.
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().refits_failed, 2u);
  ASSERT_TRUE(service.ReleaseQuarantine(bad_key).ok());
  EXPECT_FALSE(service.IsQuarantined(bad_key));
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().refits_failed, 3u);
}

TEST(EstateServiceTest, BreachAlertRaisedFromCachedForecast) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  // Threshold far below any CPU value: the first cached forecast breaches.
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 0.01}},
                        FastConfig());
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  auto report = service.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->alerts_raised, 1u);
  auto alerts = service.ActiveAlerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].key, service.keys()[0]);
  EXPECT_FALSE(alerts[0].upper_only);
  EXPECT_GE(alerts[0].predicted_breach_epoch, service.now());
  // Subsequent ticks keep the alert active without re-raising it.
  ASSERT_TRUE(service.Tick().ok());
  EXPECT_EQ(service.telemetry().alerts_raised, 1u);
  EXPECT_GE(service.telemetry().forecast_cache_hits, 2u);
  // No refit happened besides the initial one: the cache carried the feed.
  EXPECT_EQ(service.telemetry().refits_dispatched, 1u);
}

TEST(EstateServiceTest, RecoversFromJournalAfterCrash) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("journal_only");
  config.snapshot_every_ticks = 0;  // journal-only recovery
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 0.01}};

  std::int64_t now = 0;
  std::int64_t fitted_at = 0;
  std::string spec;
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
    ASSERT_TRUE(service.Tick().ok());  // raises the breach alert
    ASSERT_EQ(service.ActiveAlerts().size(), 1u);
    now = service.now();
    auto model = service.registry().Get(service.keys()[0]);
    ASSERT_TRUE(model.ok());
    fitted_at = model->fitted_at_epoch;
    spec = model->spec;
    // Crash: scope exit with no checkpoint — only the journal survives.
  }

  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.now(), now);
  EXPECT_EQ(recovered.tick_count(), 2u);
  const std::string key = recovered.keys()[0];
  ASSERT_TRUE(recovered.registry().Contains(key));
  auto model = recovered.registry().Get(key);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->fitted_at_epoch, fitted_at);
  EXPECT_EQ(model->spec, spec);
  auto entry = recovered.ScheduleFor(key);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->due_epoch,
            fitted_at + config.staleness.max_age_seconds);
  ASSERT_EQ(recovered.ActiveAlerts().size(), 1u);
  // The metric history was rebuilt up to the recovered cursor.
  EXPECT_EQ(recovered.FindHourly(key)->size(), 1010u);
  // The cached forecast survived: the next tick serves alerts from it
  // without dispatching a refit.
  ASSERT_TRUE(recovered.Tick().ok());
  EXPECT_EQ(recovered.telemetry().refits_dispatched, 0u);
  EXPECT_GE(recovered.telemetry().forecast_cache_hits, 1u);
  std::filesystem::remove_all(config.state_dir);
}

TEST(EstateServiceTest, RecoversFromSnapshotPlusJournalSuffix) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("snapshot");
  config.snapshot_every_ticks = 2;
  const std::vector<WatchConfig> watches = {{0, workload::Metric::kCpu, 0.01}};

  std::int64_t now = 0;
  {
    EstateService service(&cluster, watches, config);
    ASSERT_TRUE(service.Start().ok());
    // Three ticks: the snapshot lands at tick 2, tick 3 is journal suffix.
    for (int tick = 1; tick <= 3; ++tick) {
      ASSERT_TRUE(service.Tick().ok());
      ASSERT_TRUE(service.DrainRefits().ok());
    }
    EXPECT_EQ(service.telemetry().snapshots_written, 1u);
    now = service.now();
  }

  EstateService recovered(&cluster, watches, config);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.now(), now);
  EXPECT_EQ(recovered.tick_count(), 3u);
  EXPECT_TRUE(recovered.registry().Contains(recovered.keys()[0]));
  ASSERT_EQ(recovered.ActiveAlerts().size(), 1u);
  EXPECT_EQ(recovered.FindHourly(recovered.keys()[0])->size(),
            1011u);
  std::filesystem::remove_all(config.state_dir);
}

TEST(EstateServiceTest, RecoverWithoutStateFails) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.state_dir = FreshStateDir("empty");
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  EXPECT_FALSE(service.Recover().ok());  // nothing journalled yet
  std::filesystem::remove_all(config.state_dir);

  auto ephemeral = FastConfig();
  EstateService no_dir(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                       ephemeral);
  EXPECT_FALSE(no_dir.Recover().ok());  // no state_dir configured
}

TEST(EstateServiceTest, TelemetryJsonIsWellFormed) {
  ServiceTelemetry telemetry;
  telemetry.ticks = 3;
  telemetry.refits_succeeded = 2;
  telemetry.fit_stage.Record(12.5);
  telemetry.fit_stage.Record(7.5);
  const std::string json = TelemetryToJson(telemetry);
  EXPECT_NE(json.find("\"ticks\":3"), std::string::npos);
  EXPECT_NE(json.find("\"refits_succeeded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"fit\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_ms\":10"), std::string::npos);
}

TEST(EstateServiceTest, TelemetryJsonGoldenFieldsAreByteStable) {
  // The registry migration must be invisible to anything parsing the
  // telemetry JSON: the counter block is pinned byte for byte, and the
  // pre-migration stage fields keep their exact order with the new
  // histogram-derived fields (min/p50/p99) strictly appended.
  ServiceTelemetry telemetry;
  telemetry.ticks = 3;
  telemetry.refits_succeeded = 2;
  telemetry.fit_stage.Record(12.5);
  telemetry.fit_stage.Record(7.5);
  const std::string json = TelemetryToJson(telemetry);
  const std::string golden_counters =
      "{\"ticks\":3,\"polls\":0,\"samples_ingested\":0,\"hourly_points\":0,"
      "\"refits_dispatched\":0,\"refits_succeeded\":2,\"refits_failed\":0,"
      "\"refits_deferred\":0,\"refits_degraded\":0,\"quality_gated\":0,"
      "\"quarantines\":0,\"alerts_raised\":0,\"alerts_cleared\":0,"
      "\"forecast_cache_hits\":0,\"forecast_exhausted_ticks\":0,"
      "\"journal_events\":0,\"snapshots_written\":0,\"io_errors\":0,"
      "\"journal_write_failures\":0,\"snapshot_failures\":0,\"stages\":{";
  EXPECT_EQ(json.substr(0, golden_counters.size()), golden_counters);
  EXPECT_NE(
      json.find("\"fit\":{\"count\":2,\"total_ms\":20,\"mean_ms\":10,"
                "\"max_ms\":12.5,\"min_ms\":7.5,\"p50_ms\":10,"
                "\"p99_ms\":12.45}"),
      std::string::npos)
      << json;
}

TEST(EstateServiceTest, TelemetryJsonAppendsGuardrailAndHealthAfterShards) {
  // The guardrail and health summaries ride strictly after the shards array
  // so the frozen counter prefix (tested above) is untouched.
  ServiceTelemetry telemetry;
  const std::string json = TelemetryToJson(telemetry);
  const auto shards_pos = json.find("\"shards\":[");
  const auto guardrail_pos = json.find("\"guardrail\":{");
  const auto health_pos = json.find("\"health\":{");
  ASSERT_NE(shards_pos, std::string::npos) << json;
  ASSERT_NE(guardrail_pos, std::string::npos) << json;
  ASSERT_NE(health_pos, std::string::npos) << json;
  EXPECT_LT(shards_pos, guardrail_pos);
  EXPECT_LT(guardrail_pos, health_pos);
  EXPECT_NE(json.find("\"promotions\":0"), std::string::npos);
  EXPECT_NE(json.find("\"promotions_rejected\":0"), std::string::npos);
  EXPECT_NE(json.find("\"rollbacks\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tick_overruns\":0"), std::string::npos);
}

TEST(EstateServiceTest, LiveScoringTracksForecastAccuracy) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        FastConfig());
  ASSERT_TRUE(service.Start().ok());
  const std::string key = service.keys()[0];
  EXPECT_LT(service.LiveMapeFor(key), 0.0);  // nothing scored before a fit
  EXPECT_LT(service.LiveMapeFor("no/such/key"), 0.0);

  for (int tick = 1; tick <= 5; ++tick) {
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
  }
  // Hours arriving after the initial fit were scored against the cached
  // forecast: the rolling live MAPE (percent) is populated and finite.
  const double live = service.LiveMapeFor(key);
  EXPECT_GE(live, 0.0);
  EXPECT_TRUE(std::isfinite(live));
  ASSERT_EQ(service.telemetry().shards.size(), 1u);
  EXPECT_GE(service.telemetry().shards[0].guardrail_scored.value(), 3u);
  // The initial fit was a promotion (generation 1, no gate to clear).
  EXPECT_EQ(service.telemetry().promotions, 1u);
  auto model = service.registry().Get(key);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->generation, 1);
  EXPECT_GT(model->promoted_at_epoch, 0);
  // An accurate steady-state stream keeps the estate healthy.
  EXPECT_EQ(service.ShardHealthState(0), HealthState::kHealthy);
  EXPECT_EQ(service.OverallHealth(), HealthState::kHealthy);
}

TEST(EstateServiceTest, PromotionGateRejectsRegressedChallenger) {
  const auto scenario = TestScenario();
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig();
  config.staleness.max_age_seconds = 4 * kHour;     // refit due at tick 5
  config.staleness.rmse_degradation_factor = 1e9;   // age-only refits
  config.guardrail.promotion_min_scored = 2;
  EstateService service(&cluster, {{0, workload::Metric::kCpu, 95.0}},
                        config);
  const std::string key = service.keys()[0];
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  auto champion = service.registry().Get(key);
  ASSERT_TRUE(champion.ok());
  const std::int64_t champion_fitted_at = champion->fitted_at_epoch;

  // Ticks 2-4 accumulate scored hours against the champion's forecast; the
  // age policy refits at tick 5, but the challenger's held-out MAPE is
  // poisoned sky-high, so the gate holds.
  for (int tick = 2; tick <= 4; ++tick) {
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
  }
  ASSERT_GE(service.LiveMapeFor(key), 0.0);
  {
    ScopedFault poison("pipeline.poison_fit", FaultPlan::FailForever());
    ASSERT_TRUE(service.Tick().ok());
    ASSERT_TRUE(service.DrainRefits().ok());
  }
  EXPECT_EQ(service.telemetry().promotions_rejected, 1u);
  EXPECT_EQ(service.telemetry().promotions, 1u);  // only the initial fit
  EXPECT_EQ(service.telemetry().rollbacks, 0u);
  auto kept = service.registry().Get(key);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->fitted_at_epoch, champion_fitted_at);  // champion retained
  EXPECT_EQ(kept->generation, 1);
  // The rejection still reschedules the key: it is not stuck.
  auto entry = service.ScheduleFor(key);
  ASSERT_TRUE(entry.ok());
  EXPECT_GT(entry->due_epoch, service.now());
}

}  // namespace
}  // namespace capplan::service
