#include "service/shard.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/estate_service.h"
#include "service/telemetry.h"
#include "workload/scenario.h"

// The sharded estate: consistent key routing, per-shard tick/refit
// scheduling, batched refit queues, and the coordinator invariants that keep
// a sharded service indistinguishable from the unsharded one at the API.

namespace capplan::service {
namespace {

constexpr std::int64_t kHour = 3600;

// ---------------------------------------------------------------------------
// Routing: ShardHash / ShardOf are pure functions of (key, n_shards).

TEST(ShardRoutingTest, FnvGoldensArePinned) {
  // FNV-1a 64 reference vectors. These are load-bearing: per-shard segment
  // directories and schedule routing assume the mapping never changes
  // across builds, platforms or restarts.
  EXPECT_EQ(ShardHash(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(ShardHash("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(ShardRoutingTest, ShardOfIsDeterministicAndInRange) {
  const std::vector<std::string> keys = {"cdbm011/cpu", "cdbm012/cpu",
                                         "cdbm011/memory", "x", ""};
  for (const auto& key : keys) {
    // 0 and 1 shards both mean "the only shard".
    EXPECT_EQ(ShardOf(key, 0), 0u);
    EXPECT_EQ(ShardOf(key, 1), 0u);
    for (std::size_t n : {2u, 4u, 7u, 16u}) {
      const std::size_t shard = ShardOf(key, n);
      EXPECT_LT(shard, n);
      EXPECT_EQ(shard, ShardOf(key, n)) << "routing must be stable";
    }
  }
}

TEST(ShardRoutingTest, ManyKeysSpreadAcrossAllShards) {
  const std::size_t n_shards = 4;
  std::vector<std::size_t> counts(n_shards, 0);
  for (int i = 0; i < 256; ++i) {
    std::ostringstream key;
    key << "cdbm" << i << "/cpu";
    ++counts[ShardOf(key.str(), n_shards)];
  }
  for (std::size_t shard = 0; shard < n_shards; ++shard) {
    EXPECT_GT(counts[shard], 0u) << "shard " << shard << " got no keys";
  }
}

// ---------------------------------------------------------------------------
// Sharded service behaviour.

workload::WorkloadScenario TestScenario(int n_instances) {
  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = n_instances;
  return scenario;
}

std::vector<WatchConfig> CpuWatches(int n_instances, double threshold) {
  std::vector<WatchConfig> watches;
  for (int i = 0; i < n_instances; ++i) {
    watches.emplace_back(i, workload::Metric::kCpu, threshold);
  }
  return watches;
}

// Fast config: HES branch only, hourly ticks.
EstateServiceConfig FastConfig(std::size_t n_shards) {
  EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 2;
  config.warmup_days = 42;
  config.n_shards = n_shards;
  return config;
}

TEST(ShardedEstateServiceTest, ShardsPartitionTheWatchSet) {
  const auto scenario = TestScenario(8);
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(&cluster, CpuWatches(8, 95.0), FastConfig(4));
  ASSERT_EQ(service.n_shards(), 4u);
  ASSERT_TRUE(service.Start().ok());

  // Every key lands on exactly one shard, the shard the router names.
  std::set<std::string> seen;
  for (std::size_t shard = 0; shard < service.n_shards(); ++shard) {
    for (const auto& key : service.ShardKeys(shard)) {
      EXPECT_EQ(service.ShardOfKey(key), shard);
      EXPECT_TRUE(seen.insert(key).second) << key << " owned twice";
    }
  }
  EXPECT_EQ(seen.size(), service.keys().size());
  EXPECT_EQ(service.series_count(), service.keys().size());
  EXPECT_EQ(service.schedule_size(), service.keys().size());

  // Per-key storage and schedule routing agree with the partition.
  for (const auto& key : service.keys()) {
    EXPECT_NE(service.FindHourly(key), nullptr) << key;
    EXPECT_TRUE(service.ScheduleFor(key).ok()) << key;
  }
}

TEST(ShardedEstateServiceTest, UnshardedConfigKeepsSingleShard) {
  const auto scenario = TestScenario(2);
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(&cluster, CpuWatches(2, 95.0), FastConfig(0));
  EXPECT_EQ(service.n_shards(), 1u);
  ASSERT_TRUE(service.Start().ok());
  EXPECT_EQ(service.ShardKeys(0).size(), service.keys().size());
}

// The sharded estate must produce bit-for-bit the forecasts of the
// unsharded one: sharding changes who runs the work, never the work.
TEST(ShardedEstateServiceTest, ShardedMatchesUnshardedForecasts) {
  const auto scenario = TestScenario(6);
  workload::ClusterSimulator cluster(scenario, 7);
  const auto watches = CpuWatches(6, 95.0);

  EstateService solo(&cluster, watches, FastConfig(1));
  EstateService sharded(&cluster, watches, FastConfig(4));
  for (EstateService* svc : {&solo, &sharded}) {
    ASSERT_TRUE(svc->Start().ok());
    ASSERT_TRUE(svc->RunTicks(2).ok());
    ASSERT_TRUE(svc->DrainRefits().ok());
  }

  auto want = solo.View();
  auto got = sharded.View();
  ASSERT_EQ(want->instances.size(), got->instances.size());
  for (const auto& key : solo.keys()) {
    const auto* a = want->Find(key);
    const auto* b = got->Find(key);
    ASSERT_NE(a, nullptr) << key;
    ASSERT_NE(b, nullptr) << key;
    ASSERT_TRUE(a->has_forecast) << key;
    ASSERT_TRUE(b->has_forecast) << key;
    EXPECT_EQ(a->spec, b->spec) << key;
    ASSERT_EQ(a->forecast.mean.size(), b->forecast.mean.size());
    for (std::size_t h = 0; h < a->forecast.mean.size(); ++h) {
      EXPECT_EQ(a->forecast.mean[h], b->forecast.mean[h]) << key << " h=" << h;
      EXPECT_EQ(a->forecast.lower[h], b->forecast.lower[h]);
      EXPECT_EQ(a->forecast.upper[h], b->forecast.upper[h]);
    }
  }
}

// Batch size must not change results either: a batch of 8 and eight solo
// jobs run the identical pipeline per series.
TEST(ShardedEstateServiceTest, BatchedRefitMatchesSoloRefit) {
  const auto scenario = TestScenario(6);
  workload::ClusterSimulator cluster(scenario, 7);
  const auto watches = CpuWatches(6, 95.0);

  auto solo_config = FastConfig(2);
  solo_config.refit_batch_size = 1;
  auto batched_config = FastConfig(2);
  batched_config.refit_batch_size = 8;

  EstateService solo(&cluster, watches, solo_config);
  EstateService batched(&cluster, watches, batched_config);
  for (EstateService* svc : {&solo, &batched}) {
    ASSERT_TRUE(svc->Start().ok());
    ASSERT_TRUE(svc->Tick().ok());
    ASSERT_TRUE(svc->DrainRefits().ok());
  }

  // Solo dispatch needed one job per series; batching folded each shard's
  // due set into far fewer pool jobs.
  const auto& solo_t = solo.telemetry();
  const auto& batched_t = batched.telemetry();
  std::uint64_t solo_batches = 0, batched_batches = 0;
  for (const auto& st : solo_t.shards) solo_batches += st.refit_batches;
  for (const auto& st : batched_t.shards) batched_batches += st.refit_batches;
  EXPECT_EQ(solo_batches, 6u);
  EXPECT_LT(batched_batches, solo_batches);

  auto want = solo.View();
  auto got = batched.View();
  for (const auto& key : solo.keys()) {
    const auto* a = want->Find(key);
    const auto* b = got->Find(key);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(a->has_forecast);
    ASSERT_TRUE(b->has_forecast);
    ASSERT_EQ(a->forecast.mean.size(), b->forecast.mean.size());
    for (std::size_t h = 0; h < a->forecast.mean.size(); ++h) {
      EXPECT_EQ(a->forecast.mean[h], b->forecast.mean[h]) << key << " h=" << h;
    }
  }
}

TEST(ShardedEstateServiceTest, PerShardMetricsAndJsonExported) {
  const auto scenario = TestScenario(8);
  workload::ClusterSimulator cluster(scenario, 7);
  EstateService service(&cluster, CpuWatches(8, 95.0), FastConfig(4));
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());

  const std::string path = ::testing::TempDir() + "/shard_metrics.prom";
  ASSERT_TRUE(service.WritePrometheus(path).ok());
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open());
  std::stringstream text;
  text << f.rdbuf();
  const std::string prom = text.str();
  EXPECT_NE(prom.find("capplan_shard_ticks_total"), std::string::npos);
  EXPECT_NE(prom.find("capplan_shard_refit_batches_total"), std::string::npos);
  EXPECT_NE(prom.find("capplan_shard_queue_enqueued_total"),
            std::string::npos);
  // Every shard label is present, including the last.
  for (int shard = 0; shard < 4; ++shard) {
    std::ostringstream label;
    label << "shard=\"" << shard << "\"";
    EXPECT_NE(prom.find(label.str()), std::string::npos) << label.str();
  }
  std::filesystem::remove(path);

  // The JSON telemetry grew a per-shard array after the frozen prefix.
  const std::string json = TelemetryToJson(service.telemetry());
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"refit_batch\""), std::string::npos);

  // Shard counters reconcile with the estate totals.
  std::uint64_t shard_samples = 0, shard_dispatched = 0;
  for (const auto& st : service.telemetry().shards) {
    shard_samples += st.samples_ingested;
    shard_dispatched += st.refits_dispatched;
    EXPECT_EQ(st.queue_enqueued.value(), st.queue_drained.value());
  }
  EXPECT_EQ(shard_samples, service.telemetry().samples_ingested.value());
  EXPECT_EQ(shard_dispatched, service.telemetry().refits_dispatched.value());
}

// max_batches_per_shard_tick is the overload valve: overflow stays queued
// (still in flight in the scheduler, so never re-taken) and drains on the
// following ticks.
TEST(ShardedEstateServiceTest, MaxBatchesPerTickShedsOverload) {
  const auto scenario = TestScenario(3);
  workload::ClusterSimulator cluster(scenario, 7);
  auto config = FastConfig(1);
  config.refit_batch_size = 1;
  config.max_batches_per_shard_tick = 1;
  EstateService service(&cluster, CpuWatches(3, 95.0), config);
  ASSERT_TRUE(service.Start().ok());

  // All 3 initial fits come due on the first tick; only one batch may go.
  auto report = service.Tick();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->refit_batches, 1u);
  EXPECT_EQ(report->refits_dispatched, 1u);
  EXPECT_EQ(service.RefitQueueDepth(), 2u);
  const auto& st = service.telemetry().shards[0];
  EXPECT_EQ(st.queue_enqueued.value(), 3u);
  EXPECT_EQ(st.queue_drained.value(), 1u);

  // Two more ticks drain the backlog one batch at a time.
  ASSERT_TRUE(service.Tick().ok());
  EXPECT_EQ(service.RefitQueueDepth(), 1u);
  ASSERT_TRUE(service.Tick().ok());
  EXPECT_EQ(service.RefitQueueDepth(), 0u);
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(st.queue_enqueued.value(), st.queue_drained.value());
  EXPECT_EQ(service.telemetry().refits_succeeded.value(), 3u);
  for (const auto& key : service.keys()) {
    EXPECT_NE(service.View()->Find(key), nullptr);
  }
}

// A moderate end-to-end smoke across 8 shards: the name keys into the
// sanitizer jobs' -R filters ("EstateSmoke").
TEST(ShardedEstateServiceTest, EstateSmokeEightShards) {
  const auto scenario = TestScenario(48);
  workload::ClusterSimulator cluster(scenario, 7);
  std::vector<WatchConfig> watches;
  for (int i = 0; i < 48; ++i) {
    watches.emplace_back(i, workload::Metric::kCpu, 120.0);
    watches.emplace_back(i, workload::Metric::kMemory, 1e12);
  }
  auto config = FastConfig(8);
  config.refit_batch_size = 8;
  EstateService service(&cluster, std::move(watches), config);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_EQ(service.series_count(), 96u);

  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());
  EXPECT_EQ(service.telemetry().refits_succeeded.value(), 96u);
  EXPECT_EQ(service.RefitQueueDepth(), 0u);

  // Batching really amortized: 96 series fit in far fewer pool jobs.
  std::uint64_t batches = 0, series = 0, ticks = 0;
  for (const auto& st : service.telemetry().shards) {
    batches += st.refit_batches;
    series += st.batch_series;
    ticks += st.ticks;
  }
  EXPECT_EQ(series, 96u);
  EXPECT_LE(batches, 8u * 2u);  // ceil(12/8) = 2 batches per shard
  EXPECT_EQ(ticks, 8u);         // one shard tick job each

  auto view = service.View();
  ASSERT_EQ(view->instances.size(), 96u);
  for (const auto& row : view->instances) {
    EXPECT_TRUE(row.has_forecast) << row.key;
  }
}

}  // namespace
}  // namespace capplan::service
