#include "service/scheduler.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace capplan::service {
namespace {

TEST(RetryPolicyTest, BackoffProgressionIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 100;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_seconds = 1000;
  EXPECT_EQ(policy.BackoffFor(1), 100);
  EXPECT_EQ(policy.BackoffFor(2), 300);
  EXPECT_EQ(policy.BackoffFor(3), 900);
  EXPECT_EQ(policy.BackoffFor(4), 1000);  // capped
  EXPECT_EQ(policy.BackoffFor(9), 1000);
}

TEST(RetryPolicyTest, JitterDisabledByDefault) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 100;
  policy.backoff_multiplier = 3.0;
  policy.max_backoff_seconds = 1000;
  for (int f = 1; f <= 5; ++f) {
    EXPECT_EQ(policy.JitteredBackoffFor("any/key", f), policy.BackoffFor(f));
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 1 << 20;
  policy.backoff_jitter = 0.25;
  for (int f = 1; f <= 6; ++f) {
    const std::int64_t base = policy.BackoffFor(f);
    const std::int64_t jittered = policy.JitteredBackoffFor("db01/cpu", f);
    // Same (seed, key, failures) -> same delay, every time.
    EXPECT_EQ(jittered, policy.JitteredBackoffFor("db01/cpu", f));
    EXPECT_GE(jittered, static_cast<std::int64_t>(0.74 * base));
    EXPECT_LE(jittered,
              std::min(static_cast<std::int64_t>(1.26 * base),
                       policy.max_backoff_seconds));
  }
}

TEST(RetryPolicyTest, JitterDecorrelatesKeys) {
  // The point of jitter: two keys quarantined by the same estate-wide
  // outage must not retry at the same instant.
  RetryPolicy policy;
  policy.initial_backoff_seconds = 100000;
  policy.backoff_jitter = 0.5;
  bool any_differ = false;
  for (int f = 1; f <= 4 && !any_differ; ++f) {
    any_differ = policy.JitteredBackoffFor("db01/cpu", f) !=
                 policy.JitteredBackoffFor("db02/cpu", f);
  }
  EXPECT_TRUE(any_differ);

  // A different seed reshuffles the schedule, deterministically.
  RetryPolicy reseeded = policy;
  reseeded.jitter_seed = policy.jitter_seed + 1;
  bool seed_matters = false;
  for (int f = 1; f <= 4 && !seed_matters; ++f) {
    seed_matters = policy.JitteredBackoffFor("db01/cpu", f) !=
                   reseeded.JitteredBackoffFor("db01/cpu", f);
  }
  EXPECT_TRUE(seed_matters);
}

TEST(RetrainSchedulerTest, JitteredFailureRescheduleIsReproducible) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 10000;
  policy.backoff_jitter = 0.3;
  policy.quarantine_after_failures = 10;
  auto run = [&policy] {
    RetrainScheduler sched(policy);
    sched.ScheduleAt("a", 0);
    sched.TakeDue(0);
    sched.OnFailure("a", 0);
    return sched.Get("a")->due_epoch;
  };
  const std::int64_t first = run();
  EXPECT_EQ(first, run());  // bit-identical across scheduler instances
  EXPECT_GE(first, 7000);
  EXPECT_LE(first, 13000);
  // The jitter actually does something for this key somewhere on the ladder.
  bool any_jittered = false;
  for (int f = 1; f <= 5 && !any_jittered; ++f) {
    any_jittered =
        policy.JitteredBackoffFor("a", f) != policy.BackoffFor(f);
  }
  EXPECT_TRUE(any_jittered);
}

TEST(RetrainSchedulerTest, TakeDueReturnsDueKeysInOrder) {
  RetrainScheduler sched;
  sched.ScheduleAt("b", 200);
  sched.ScheduleAt("a", 100);
  sched.ScheduleAt("c", 900);
  auto due = sched.TakeDue(500);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], "a");
  EXPECT_EQ(due[1], "b");
  // "c" is not due yet.
  EXPECT_TRUE(sched.TakeDue(500).empty());
  auto later = sched.TakeDue(900);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0], "c");
}

TEST(RetrainSchedulerTest, InFlightKeysAreNotReDispatched) {
  RetrainScheduler sched;
  sched.ScheduleAt("a", 100);
  ASSERT_EQ(sched.TakeDue(100).size(), 1u);
  // Still due by time, but in flight: not returned again.
  EXPECT_TRUE(sched.TakeDue(100).empty());
  EXPECT_TRUE(sched.TakeDue(10000).empty());
  sched.OnSuccess("a", 5000);
  EXPECT_TRUE(sched.TakeDue(4999).empty());
  EXPECT_EQ(sched.TakeDue(5000).size(), 1u);
}

TEST(RetrainSchedulerTest, EntryKeepsDueTimeWhileInFlight) {
  // Crash-safety: a key taken for dispatch keeps its due time until an
  // outcome is reported, so a snapshot taken mid-flight re-dispatches it.
  RetrainScheduler sched;
  sched.ScheduleAt("a", 100);
  ASSERT_EQ(sched.TakeDue(100).size(), 1u);
  auto entry = sched.Get("a");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->due_epoch, 100);
  EXPECT_TRUE(entry->in_flight);
}

TEST(RetrainSchedulerTest, PullForwardOnlyMovesEarlier) {
  RetrainScheduler sched;
  sched.ScheduleAt("a", 500);
  sched.PullForward("a", 800);  // later: ignored
  EXPECT_EQ(sched.Get("a")->due_epoch, 500);
  sched.PullForward("a", 200);  // earlier: applied
  EXPECT_EQ(sched.Get("a")->due_epoch, 200);
  auto due = sched.TakeDue(200);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], "a");
  // The stale heap copy at 500 must not re-dispatch the key.
  sched.OnSuccess("a", 10000);
  EXPECT_TRUE(sched.TakeDue(500).empty());
}

TEST(RetrainSchedulerTest, FailuresBackOffThenQuarantine) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 1000;
  policy.quarantine_after_failures = 3;
  RetrainScheduler sched(policy);
  sched.ScheduleAt("a", 0);

  ASSERT_EQ(sched.TakeDue(0).size(), 1u);
  EXPECT_FALSE(sched.OnFailure("a", 0));
  EXPECT_EQ(sched.Get("a")->due_epoch, 10);  // 0 + initial backoff

  ASSERT_EQ(sched.TakeDue(10).size(), 1u);
  EXPECT_FALSE(sched.OnFailure("a", 10));
  EXPECT_EQ(sched.Get("a")->due_epoch, 30);  // 10 + 10*2

  ASSERT_EQ(sched.TakeDue(30).size(), 1u);
  EXPECT_TRUE(sched.OnFailure("a", 30));  // third failure quarantines
  EXPECT_TRUE(sched.IsQuarantined("a"));
  EXPECT_TRUE(sched.TakeDue(1000000).empty());
  ASSERT_EQ(sched.QuarantinedKeys().size(), 1u);
}

TEST(RetrainSchedulerTest, SuccessResetsFailureCount) {
  RetryPolicy policy;
  policy.quarantine_after_failures = 2;
  policy.initial_backoff_seconds = 10;
  RetrainScheduler sched(policy);
  sched.ScheduleAt("a", 0);
  ASSERT_EQ(sched.TakeDue(0).size(), 1u);
  EXPECT_FALSE(sched.OnFailure("a", 0));
  ASSERT_EQ(sched.TakeDue(10).size(), 1u);
  sched.OnSuccess("a", 20);
  EXPECT_EQ(sched.Get("a")->consecutive_failures, 0);
  // The reset means the next failure starts the ladder over.
  ASSERT_EQ(sched.TakeDue(20).size(), 1u);
  EXPECT_FALSE(sched.OnFailure("a", 20));
}

TEST(RetrainSchedulerTest, ReleaseRequiresQuarantine) {
  RetryPolicy policy;
  policy.quarantine_after_failures = 1;
  RetrainScheduler sched(policy);
  sched.ScheduleAt("a", 0);
  EXPECT_FALSE(sched.Release("a", 5).ok());       // not quarantined
  EXPECT_FALSE(sched.Release("missing", 5).ok());  // unknown
  ASSERT_EQ(sched.TakeDue(0).size(), 1u);
  EXPECT_TRUE(sched.OnFailure("a", 0));
  ASSERT_TRUE(sched.Release("a", 5).ok());
  EXPECT_FALSE(sched.IsQuarantined("a"));
  EXPECT_EQ(sched.Get("a")->consecutive_failures, 0);
  EXPECT_EQ(sched.TakeDue(5).size(), 1u);
}

TEST(RetrainSchedulerTest, DeferPreservesFailureCount) {
  RetryPolicy policy;
  policy.quarantine_after_failures = 5;
  policy.initial_backoff_seconds = 10;
  RetrainScheduler sched(policy);
  sched.ScheduleAt("a", 0);
  ASSERT_EQ(sched.TakeDue(0).size(), 1u);
  EXPECT_FALSE(sched.OnFailure("a", 0));
  ASSERT_EQ(sched.TakeDue(10).size(), 1u);
  sched.Defer("a", 50);
  EXPECT_EQ(sched.Get("a")->consecutive_failures, 1);
  EXPECT_FALSE(sched.Get("a")->in_flight);
  EXPECT_EQ(sched.Get("a")->due_epoch, 50);
}

TEST(RetrainSchedulerTest, SaveLoadRoundTrip) {
  RetryPolicy policy;
  policy.quarantine_after_failures = 1;
  RetrainScheduler sched(policy);
  sched.ScheduleAt("healthy", 700);
  sched.ScheduleAt("failing", 0);
  ASSERT_EQ(sched.TakeDue(0).size(), 1u);
  EXPECT_TRUE(sched.OnFailure("failing", 0));

  const std::string path = ::testing::TempDir() + "/sched_roundtrip.csv";
  ASSERT_TRUE(sched.Save(path).ok());

  RetrainScheduler loaded(policy);
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.Get("healthy")->due_epoch, 700);
  EXPECT_TRUE(loaded.IsQuarantined("failing"));
  EXPECT_EQ(loaded.Get("failing")->consecutive_failures, 1);
  // The quarantined key must not come back via the rebuilt heap.
  auto due = loaded.TakeDue(10000);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], "healthy");
  std::remove(path.c_str());
}

TEST(RetrainSchedulerTest, RestoreClearsInFlight) {
  RetrainScheduler sched;
  ScheduleEntry entry;
  entry.key = "a";
  entry.due_epoch = 42;
  entry.in_flight = true;  // e.g. crashed mid-dispatch
  sched.Restore(entry);
  EXPECT_FALSE(sched.Get("a")->in_flight);
  EXPECT_EQ(sched.TakeDue(42).size(), 1u);
}

}  // namespace
}  // namespace capplan::service
