#include "service/journal.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace capplan::service {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(JournalEventTest, SerializeParseRoundTripAllKinds) {
  const std::vector<JournalEvent> events = {
      {1000, EventKind::kTick, "", {}},
      {1001,
       EventKind::kFitOk,
       "cdbm011/cpu",
       {"HES", "ETS(A,Ad,A)[24]", "1.5", "3.2", "900", "1000", "3600", "0.95",
        "1;2;3", "0.5;1.5;2.5", "1.5;2.5;3.5"}},
      {1002, EventKind::kFitFail, "cdbm012/io", {"2", "5000", "fit blew up"}},
      {1003, EventKind::kQuarantine, "cdbm012/io", {}},
      {1004, EventKind::kRelease, "cdbm012/io", {}},
      {1005, EventKind::kAlert, "cdbm011/cpu", {"mean", "9999"}},
      {1006, EventKind::kAlertClear, "cdbm011/cpu", {}},
      {1007, EventKind::kSnapshot, "", {}},
  };
  for (const auto& event : events) {
    auto parsed = JournalEvent::Parse(event.Serialize());
    ASSERT_TRUE(parsed.ok()) << event.Serialize();
    EXPECT_EQ(parsed->epoch, event.epoch);
    EXPECT_EQ(parsed->kind, event.kind);
    EXPECT_EQ(parsed->key, event.key);
    EXPECT_EQ(parsed->fields, event.fields);
  }
}

TEST(JournalEventTest, SeparatorCharactersAreSanitized) {
  JournalEvent event{7, EventKind::kFitFail, "a|b", {"line1\nline2"}};
  const std::string line = event.Serialize();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto parsed = JournalEvent::Parse(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->key, "a/b");
  ASSERT_EQ(parsed->fields.size(), 1u);
  EXPECT_EQ(parsed->fields[0], "line1/line2");
}

TEST(JournalEventTest, MalformedLinesRejected) {
  EXPECT_FALSE(JournalEvent::Parse("").ok());
  EXPECT_FALSE(JournalEvent::Parse("v1|123").ok());           // too short
  EXPECT_FALSE(JournalEvent::Parse("v2|123|tick|").ok());     // bad version
  EXPECT_FALSE(JournalEvent::Parse("v1|xyz|tick|").ok());     // bad epoch
  EXPECT_FALSE(JournalEvent::Parse("v1|123|frobnicate|").ok());  // bad kind
}

TEST(EventJournalTest, AppendThenReadBack) {
  const std::string path = TempPath("journal_roundtrip.log");
  std::remove(path.c_str());
  {
    auto journal = EventJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append({1, EventKind::kTick, "", {}}).ok());
    ASSERT_TRUE(
        journal->Append({2, EventKind::kAlert, "k", {"mean", "77"}}).ok());
  }
  // Reopening appends rather than truncating.
  {
    auto journal = EventJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append({3, EventKind::kTick, "", {}}).ok());
  }
  auto events = ReadJournal(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 3u);
  EXPECT_EQ((*events)[0].epoch, 1);
  EXPECT_EQ((*events)[1].kind, EventKind::kAlert);
  EXPECT_EQ((*events)[1].fields[1], "77");
  EXPECT_EQ((*events)[2].epoch, 3);
  std::remove(path.c_str());
}

TEST(EventJournalTest, MissingFileReadsEmpty) {
  auto events = ReadJournal(TempPath("no_such_journal.log"));
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

TEST(EventJournalTest, TornFinalLineIsTolerated) {
  const std::string path = TempPath("journal_torn.log");
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << JournalEvent{1, EventKind::kTick, "", {}}.Serialize() << "\n";
    out << JournalEvent{2, EventKind::kTick, "", {}}.Serialize() << "\n";
    out << "v1|3|ti";  // crash mid-append: no newline, truncated kind
  }
  auto events = ReadJournal(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[1].epoch, 2);
  std::remove(path.c_str());
}

TEST(EventJournalTest, MalformedInteriorLineIsAnError) {
  const std::string path = TempPath("journal_garbage.log");
  std::remove(path.c_str());
  {
    std::ofstream out(path);
    out << "this is not a journal\n";
    out << JournalEvent{1, EventKind::kTick, "", {}}.Serialize() << "\n";
  }
  EXPECT_FALSE(ReadJournal(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace capplan::service
