#include "service/health.h"

#include <string>

#include <gtest/gtest.h>

namespace capplan::service {
namespace {

HealthPolicy TestPolicy() {
  HealthPolicy p;
  p.window_ticks = 4;
  p.degraded_queue_depth = 8;
  p.critical_queue_depth = 32;
  p.degraded_quarantined = 1;
  p.critical_quarantined = 4;
  p.degraded_overruns = 1;
  p.critical_overruns = 3;
  p.degraded_rollbacks = 1;
  p.critical_rollbacks = 3;
  p.degraded_io_errors = 1;
  p.critical_io_errors = 4;
  p.recover_ticks = 2;
  return p;
}

TEST(ShardHealthTest, NominalSignalsStayHealthy) {
  ShardHealth health(TestPolicy());
  HealthSignals calm;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(health.Evaluate(calm), HealthState::kHealthy);
  }
  EXPECT_STREQ(health.reason(), "nominal");
  EXPECT_EQ(health.transitions(), 0u);
}

TEST(ShardHealthTest, QueueDepthEscalatesImmediately) {
  ShardHealth health(TestPolicy());
  HealthSignals signals;
  signals.refit_queue_depth = 8;
  EXPECT_EQ(health.Evaluate(signals), HealthState::kDegraded);
  EXPECT_EQ(std::string(health.reason()), "refit queue depth");
  signals.refit_queue_depth = 32;
  EXPECT_EQ(health.Evaluate(signals), HealthState::kCritical);
  EXPECT_EQ(health.transitions(), 2u);
}

TEST(ShardHealthTest, RecoveryIsHystereticOneLevelPerStreak) {
  ShardHealth health(TestPolicy());
  HealthSignals signals;
  signals.refit_queue_depth = 32;
  ASSERT_EQ(health.Evaluate(signals), HealthState::kCritical);
  // Calm signals: recover_ticks=2 evaluations per step down.
  signals.refit_queue_depth = 0;
  EXPECT_EQ(health.Evaluate(signals), HealthState::kCritical);  // calm 1
  EXPECT_EQ(health.Evaluate(signals), HealthState::kDegraded);  // calm 2
  EXPECT_EQ(health.Evaluate(signals), HealthState::kDegraded);
  EXPECT_EQ(health.Evaluate(signals), HealthState::kHealthy);
  EXPECT_STREQ(health.reason(), "nominal");
}

TEST(ShardHealthTest, EscalationBreaksTheRecoveryStreak) {
  ShardHealth health(TestPolicy());
  HealthSignals bad;
  bad.refit_queue_depth = 8;
  ASSERT_EQ(health.Evaluate(bad), HealthState::kDegraded);
  HealthSignals calm;
  EXPECT_EQ(health.Evaluate(calm), HealthState::kDegraded);  // calm 1 of 2
  EXPECT_EQ(health.Evaluate(bad), HealthState::kDegraded);   // streak broken
  EXPECT_EQ(health.Evaluate(calm), HealthState::kDegraded);  // calm 1 again
  EXPECT_EQ(health.Evaluate(calm), HealthState::kHealthy);
}

TEST(ShardHealthTest, CumulativeCountersAreWindowedSoIncidentsAgeOut) {
  ShardHealth health(TestPolicy());
  HealthSignals signals;
  health.Evaluate(signals);  // baseline sample: counters start at zero
  // One burst of 2 overruns: degraded (>= 1 within the window) but not
  // critical (< 3).
  signals.tick_overruns = 2;
  EXPECT_EQ(health.Evaluate(signals), HealthState::kDegraded);
  EXPECT_EQ(std::string(health.reason()), "tick deadline overruns");
  // The counter never resets (it is cumulative), but with no *new*
  // overruns the windowed delta decays to zero and the machine recovers.
  HealthState last = HealthState::kDegraded;
  for (int i = 0; i < 10; ++i) last = health.Evaluate(signals);
  EXPECT_EQ(last, HealthState::kHealthy);
}

TEST(ShardHealthTest, RollbackStormGoesCritical) {
  ShardHealth health(TestPolicy());
  HealthSignals signals;
  health.Evaluate(signals);  // baseline sample: counters start at zero
  signals.rollbacks = 3;     // 3 rollbacks inside one window
  EXPECT_EQ(health.Evaluate(signals), HealthState::kCritical);
  EXPECT_EQ(std::string(health.reason()), "rollback storm");
}

TEST(ShardHealthTest, QuarantineAndIoSignalsArgueToo) {
  ShardHealth health(TestPolicy());
  HealthSignals signals;
  signals.quarantined_keys = 4;
  EXPECT_EQ(health.Evaluate(signals), HealthState::kCritical);
  EXPECT_EQ(std::string(health.reason()), "quarantined keys");

  ShardHealth io_health(TestPolicy());
  HealthSignals io;
  io_health.Evaluate(io);  // baseline sample: counters start at zero
  io.io_errors = 1;
  EXPECT_EQ(io_health.Evaluate(io), HealthState::kDegraded);
  EXPECT_EQ(std::string(io_health.reason()), "journal/store I/O errors");
}

TEST(ShardHealthTest, WorstSignalWins) {
  ShardHealth health(TestPolicy());
  HealthSignals signals;
  signals.refit_queue_depth = 8;  // argues degraded
  signals.quarantined_keys = 4;   // argues critical
  EXPECT_EQ(health.Evaluate(signals), HealthState::kCritical);
  EXPECT_EQ(std::string(health.reason()), "quarantined keys");
}

TEST(ShardHealthTest, StateNames) {
  EXPECT_STREQ(HealthStateName(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(HealthStateName(HealthState::kCritical), "critical");
}

}  // namespace
}  // namespace capplan::service
