#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/estate_view.h"

namespace capplan::serve {
namespace {

std::shared_ptr<EstateView> MakeView(std::vector<std::string> keys) {
  auto view = std::make_shared<EstateView>();
  for (auto& key : keys) {
    InstanceStatus s;
    s.key = std::move(key);
    view->instances.push_back(std::move(s));
  }
  return view;
}

TEST(EstateViewTest, FindBinarySearches) {
  auto view = MakeView({"a/cpu", "b/cpu", "b/memory", "c/iops"});
  ASSERT_NE(view->Find("b/memory"), nullptr);
  EXPECT_EQ(view->Find("b/memory")->key, "b/memory");
  EXPECT_EQ(view->Find("a/cpu")->key, "a/cpu");
  EXPECT_EQ(view->Find("c/iops")->key, "c/iops");
  EXPECT_EQ(view->Find("b/mem"), nullptr);
  EXPECT_EQ(view->Find("z/cpu"), nullptr);
  EXPECT_EQ(view->Find(""), nullptr);
}

TEST(ViewChannelTest, EmptyBeforeFirstPublish) {
  ViewChannel channel;
  EXPECT_EQ(channel.Get(), nullptr);
  EXPECT_EQ(channel.swaps(), 0u);
}

TEST(ViewChannelTest, PublishStampsStrictlyIncreasingVersions) {
  ViewChannel channel;
  channel.Publish(MakeView({"a/cpu"}));
  auto v1 = channel.Get();
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  channel.Publish(MakeView({"a/cpu", "b/cpu"}));
  auto v2 = channel.Get();
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(channel.swaps(), 2u);
  // The old view is still alive and unchanged for holders of v1.
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->instances.size(), 1u);
}

TEST(ViewChannelTest, ReadersNeverSeeTornViews) {
  // One writer republishing while many readers load: every loaded view must
  // be internally consistent (version == instance count encodes that here).
  ViewChannel channel;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<bool> torn{false};

  // Encode the soon-to-be-assigned version in the payload: Publish stamps
  // version = swaps + 1, so row count and epochs must match the version.
  const auto publish_next = [&channel] {
    auto view = std::make_shared<EstateView>();
    const std::uint64_t next = channel.swaps() + 1;
    for (std::uint64_t k = 0; k < next % 8 + 1; ++k) {
      InstanceStatus s;
      s.key = std::to_string(k);
      s.forecast_start_epoch = static_cast<std::int64_t>(next);
      view->instances.push_back(std::move(s));
    }
    channel.Publish(std::move(view));
  };
  publish_next();  // seed view so readers have something to load

  std::thread writer([&] {
    // Don't start republishing until the readers are demonstrably running,
    // or the whole publish burst can finish before the first Get().
    while (reads.load() == 0) {
      std::this_thread::yield();
    }
    for (int i = 1; i < 2000; ++i) publish_next();
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto view = channel.Get();
        if (view == nullptr) continue;
        reads.fetch_add(1);
        const std::uint64_t want = view->version % 8 + 1;
        if (view->instances.size() != want) torn.store(true);
        for (const auto& s : view->instances) {
          if (s.forecast_start_epoch !=
              static_cast<std::int64_t>(view->version)) {
            torn.store(true);
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(channel.swaps(), 2000u);
}

}  // namespace
}  // namespace capplan::serve
