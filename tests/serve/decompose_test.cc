// /v1/decompose endpoint tests: error map, selector-periods vs live-detection
// routing, anomaly flags, and the reconstruction property — the published
// trend + seasonal components + residual must sum back to the published
// history within float tolerance.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/estate_view.h"
#include "serve/handlers.h"
#include "serve/http.h"

namespace capplan::serve {
namespace {

HttpRequest Get(const std::string& target) {
  RequestParser p;
  const std::string raw = "GET " + target + " HTTP/1.1\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  EXPECT_EQ(p.state(), RequestParser::State::kComplete) << target;
  return p.TakeRequest();
}

std::vector<double> DailyWeeklyHistory(unsigned seed, std::size_t n,
                                       double spike_at_100 = 0.0) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 0.5);
  std::vector<double> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double td = static_cast<double>(t);
    x[t] = 50.0 + 10.0 * std::sin(2.0 * M_PI * td / 24.0) +
           4.0 * std::sin(2.0 * M_PI * td / 168.0) + dist(rng);
  }
  if (spike_at_100 != 0.0 && n > 100) x[100] += spike_at_100;
  return x;
}

// Parses the first "<name>":[...] flat number array after `from`; returns
// the position just past it through `next` when non-null.
std::vector<double> ExtractArray(const std::string& body,
                                 const std::string& name,
                                 std::size_t from = 0,
                                 std::size_t* next = nullptr) {
  const std::string needle = "\"" + name + "\":[";
  const std::size_t pos = body.find(needle, from);
  EXPECT_NE(pos, std::string::npos) << name;
  std::vector<double> out;
  if (pos == std::string::npos) return out;
  std::size_t i = pos + needle.size();
  while (i < body.size() && body[i] != ']') {
    char* end = nullptr;
    out.push_back(std::strtod(body.c_str() + i, &end));
    i = static_cast<std::size_t>(end - body.c_str());
    if (i < body.size() && body[i] == ',') ++i;
  }
  if (next != nullptr) *next = i;
  return out;
}

std::shared_ptr<EstateView> MakeView() {
  auto view = std::make_shared<EstateView>();
  view->now_epoch = 2000000;
  view->tick = 3;

  // Routed series: the selector stamped {24, 168} at fit time.
  InstanceStatus routed;
  routed.key = "cdbm011/cpu";
  routed.instance = "cdbm011";
  routed.metric = "cpu";
  routed.periods = {24.0, 168.0};
  routed.history = DailyWeeklyHistory(11, 336);
  routed.history_start_epoch = 2000000 - 336 * 3600;

  // No selector periods (e.g. HES champion): live detection must route.
  InstanceStatus detected;
  detected.key = "cdbm012/cpu";
  detected.instance = "cdbm012";
  detected.metric = "cpu";
  detected.history = DailyWeeklyHistory(13, 336, /*spike_at_100=*/25.0);
  detected.history_start_epoch = 2000000 - 336 * 3600;

  // Watched but no history published yet.
  InstanceStatus bare;
  bare.key = "cdbm013/memory";
  bare.instance = "cdbm013";
  bare.metric = "memory";

  view->instances = {routed, detected, bare};
  std::sort(view->instances.begin(), view->instances.end(),
            [](const InstanceStatus& a, const InstanceStatus& b) {
              return a.key < b.key;
            });
  return view;
}

class DecomposeTest : public ::testing::Test {
 protected:
  DecomposeTest()
      : registry_(std::make_shared<obs::MetricsRegistry>()),
        handler_(&channel_, registry_) {
    channel_.Publish(MakeView());
  }

  ViewChannel channel_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  EstateQueryHandler handler_;
};

TEST_F(DecomposeTest, MissingKeyIs400) {
  EXPECT_EQ(handler_.Handle(Get("/v1/decompose")).status, 400);
  EXPECT_EQ(handler_.Handle(Get("/v1/decompose?key=")).status, 400);
}

TEST_F(DecomposeTest, UnknownKeyIs404) {
  EXPECT_EQ(handler_.Handle(Get("/v1/decompose?key=nope/cpu")).status, 404);
}

TEST_F(DecomposeTest, BadBandIs400) {
  EXPECT_EQ(
      handler_.Handle(Get("/v1/decompose?key=cdbm011/cpu&band=-1")).status,
      400);
  EXPECT_EQ(
      handler_.Handle(Get("/v1/decompose?key=cdbm011/cpu&band=abc")).status,
      400);
}

TEST_F(DecomposeTest, NoHistoryIs422) {
  const HttpResponse resp =
      handler_.Handle(Get("/v1/decompose?key=cdbm013/memory"));
  EXPECT_EQ(resp.status, 422);
  EXPECT_NE(resp.body.find("FailedPrecondition"), std::string::npos);
}

TEST_F(DecomposeTest, ComponentsReconstructHistoryWithinTolerance) {
  const HttpResponse resp =
      handler_.Handle(Get("/v1/decompose?key=cdbm011/cpu"));
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"periods_source\":\"selector\""),
            std::string::npos);

  const std::vector<double> periods = ExtractArray(resp.body, "periods");
  ASSERT_EQ(periods, (std::vector<double>{24.0, 168.0}));
  const std::vector<double> trend = ExtractArray(resp.body, "trend");
  const std::vector<double> residual = ExtractArray(resp.body, "residual");
  std::size_t cursor = 0;
  std::vector<std::vector<double>> seasonal;
  for (std::size_t i = 0; i < periods.size(); ++i) {
    seasonal.push_back(ExtractArray(resp.body, "values", cursor, &cursor));
  }

  const std::vector<double> history = DailyWeeklyHistory(11, 336);
  ASSERT_EQ(trend.size(), history.size());
  ASSERT_EQ(residual.size(), history.size());
  for (std::size_t t = 0; t < history.size(); ++t) {
    double sum = trend[t] + residual[t];
    for (const auto& s : seasonal) {
      ASSERT_EQ(s.size(), history.size());
      sum += s[t];
    }
    // The components are exact in double; only the JSON round-trip (which
    // is shortest-round-trip formatted) sits between us and the input.
    EXPECT_NEAR(sum, history[t], 1e-9) << "t=" << t;
  }
}

TEST_F(DecomposeTest, FallsBackToLiveDetectionAndFlagsSpike) {
  const HttpResponse resp =
      handler_.Handle(Get("/v1/decompose?key=cdbm012/cpu"));
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_NE(resp.body.find("\"periods_source\":\"detected\""),
            std::string::npos);
  const std::vector<double> periods = ExtractArray(resp.body, "periods");
  EXPECT_NE(std::find(periods.begin(), periods.end(), 24.0), periods.end());

  // The +25 spike injected at t=100 lands in the residual and crosses the
  // 3-sigma robust band.
  const std::vector<double> anomalies = ExtractArray(resp.body, "anomalies");
  EXPECT_NE(std::find(anomalies.begin(), anomalies.end(), 100.0),
            anomalies.end());
}

TEST_F(DecomposeTest, AnswersAreServedFromTheAnswerCache) {
  const HttpResponse first =
      handler_.Handle(Get("/v1/decompose?key=cdbm011/cpu"));
  ASSERT_EQ(first.status, 200);
  const HttpResponse second =
      handler_.Handle(Get("/v1/decompose?key=cdbm011/cpu"));
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(first.body, second.body);
  EXPECT_FALSE(EstateQueryHandler::CacheExempt("/v1/decompose"));
}

}  // namespace
}  // namespace capplan::serve
