#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/answer_cache.h"

namespace capplan::serve {
namespace {

HttpResponse Resp(const std::string& body) {
  return HttpResponse::Json(200, body);
}

TEST(AnswerCacheTest, MissThenHit) {
  AnswerCache cache;
  EXPECT_FALSE(cache.Get("k", 1, 0.0).has_value());
  cache.Put("k", 1, 0.0, Resp("a"));
  auto hit = cache.Get("k", 1, 1.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, "a");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(AnswerCacheTest, ViewSwapInvalidates) {
  AnswerCache cache;
  cache.Put("k", 1, 0.0, Resp("old"));
  // Same key, newer view version: the stale entry is dropped, not served.
  EXPECT_FALSE(cache.Get("k", 2, 0.1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  cache.Put("k", 2, 0.2, Resp("new"));
  ASSERT_TRUE(cache.Get("k", 2, 0.3).has_value());
  EXPECT_EQ(cache.Get("k", 2, 0.3)->body, "new");
}

TEST(AnswerCacheTest, TtlExpires) {
  AnswerCache::Options options;
  options.ttl_seconds = 5.0;
  AnswerCache cache(options);
  cache.Put("k", 1, 100.0, Resp("a"));
  EXPECT_TRUE(cache.Get("k", 1, 104.9).has_value());
  EXPECT_FALSE(cache.Get("k", 1, 105.1).has_value());
  EXPECT_EQ(cache.size(), 0u);  // expired entries are reaped on lookup
}

TEST(AnswerCacheTest, LruEvictsOldest) {
  AnswerCache::Options options;
  options.capacity = 3;
  AnswerCache cache(options);
  cache.Put("a", 1, 0.0, Resp("a"));
  cache.Put("b", 1, 0.0, Resp("b"));
  cache.Put("c", 1, 0.0, Resp("c"));
  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_TRUE(cache.Get("a", 1, 0.1).has_value());
  cache.Put("d", 1, 0.2, Resp("d"));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Get("b", 1, 0.3).has_value());
  EXPECT_TRUE(cache.Get("a", 1, 0.3).has_value());
  EXPECT_TRUE(cache.Get("c", 1, 0.3).has_value());
  EXPECT_TRUE(cache.Get("d", 1, 0.3).has_value());
}

TEST(AnswerCacheTest, PutUpdatesExistingEntry) {
  AnswerCache cache;
  cache.Put("k", 1, 0.0, Resp("v1"));
  cache.Put("k", 1, 1.0, Resp("v2"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("k", 1, 1.5)->body, "v2");
}

TEST(AnswerCacheTest, ZeroCapacityDisables) {
  AnswerCache::Options options;
  options.capacity = 0;
  AnswerCache cache(options);
  cache.Put("k", 1, 0.0, Resp("a"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("k", 1, 0.1).has_value());
}

TEST(AnswerCacheTest, RegistersMetricsWhenWired) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  AnswerCache cache(AnswerCache::Options(), registry);
  cache.Put("k", 1, 0.0, Resp("a"));
  (void)cache.Get("k", 1, 0.1);   // hit
  (void)cache.Get("x", 1, 0.1);   // miss
  const auto snapshot = registry->Collect();
  bool saw_hits = false;
  bool saw_misses = false;
  for (const auto& m : snapshot.samples) {
    if (m.name == "capplan_serve_cache_hits_total") {
      saw_hits = true;
      EXPECT_DOUBLE_EQ(m.value, 1.0);
    }
    if (m.name == "capplan_serve_cache_misses_total") {
      saw_misses = true;
      EXPECT_DOUBLE_EQ(m.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_hits);
  EXPECT_TRUE(saw_misses);
}

}  // namespace
}  // namespace capplan::serve
