// End-to-end: a real EstateService feeding a real HttpServer through the
// ViewChannel, queried by real sockets. Covers the two acceptance bars for
// the serving layer: (a) /v1/breach answers agree exactly with a direct
// CapacityPlanner::PredictBreach on the same published view, and (b) many
// concurrent clients stay consistent while the service keeps swapping views
// (run under TSan in CI).
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/capacity.h"
#include "obs/event_log.h"
#include "obs/trace.h"
#include "serve/handlers.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "service/estate_service.h"
#include "service/journal.h"
#include "workload/scenario.h"

namespace capplan::serve {
namespace {

using service::EstateService;
using service::EstateServiceConfig;

EstateServiceConfig FastConfig() {
  EstateServiceConfig config;
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 2;
  config.warmup_days = 42;
  return config;
}

class ServeE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = workload::WorkloadScenario::Olap();
    scenario.n_instances = 2;
    cluster_ = std::make_unique<workload::ClusterSimulator>(scenario, 7);
    service_ = std::make_unique<EstateService>(
        cluster_.get(),
        std::vector<service::WatchConfig>{{0, workload::Metric::kCpu, 95.0},
                                          {1, workload::Metric::kCpu, 95.0}},
        FastConfig());
    ASSERT_TRUE(service_->Start().ok());
    ASSERT_TRUE(service_->Tick().ok());
    ASSERT_TRUE(service_->DrainRefits().ok());  // forecasts now cached

    handler_ = std::make_unique<EstateQueryHandler>(service_->view_channel());
    server_ = std::make_unique<HttpServer>(
        [this](const HttpRequest& request) {
          return handler_->Handle(request);
        },
        ServerConfig());
    ASSERT_TRUE(server_->Start().ok());
  }

  static HttpServerConfig ServerConfig() {
    HttpServerConfig config;
    config.worker_threads = 4;
    return config;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<workload::ClusterSimulator> cluster_;
  std::unique_ptr<EstateService> service_;
  std::unique_ptr<EstateQueryHandler> handler_;
  std::unique_ptr<HttpServer> server_;
};

// Extracts the value of `"field":<value>` from a flat JSON body.
std::string JsonField(const std::string& body, const std::string& field) {
  const std::string needle = "\"" + field + "\":";
  const std::size_t pos = body.find(needle);
  if (pos == std::string::npos) return "";
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  while (end < body.size() && body[end] != ',' && body[end] != '}') ++end;
  return body.substr(begin, end - begin);
}

TEST_F(ServeE2eTest, BreachEndpointMatchesDirectPlannerCall) {
  const auto view = service_->View();
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->instances.size(), 2u);
  for (const auto& row : view->instances) {
    ASSERT_TRUE(row.has_forecast) << row.key;
    const auto direct = core::CapacityPlanner::PredictBreach(
        row.forecast, row.threshold, row.forecast_start_epoch,
        row.forecast_step_seconds);
    ASSERT_TRUE(direct.ok()) << direct.status();

    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    auto resp = client.Get("/v1/breach?instance=" + row.instance +
                           "&metric=" + row.metric);
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->status, 200) << resp->body;

    EXPECT_EQ(JsonField(resp->body, "mean_breach"),
              direct->mean_breach ? "true" : "false");
    EXPECT_EQ(JsonField(resp->body, "steps_to_mean_breach"),
              std::to_string(direct->steps_to_mean_breach));
    EXPECT_EQ(JsonField(resp->body, "mean_breach_epoch"),
              std::to_string(direct->mean_breach_epoch));
    EXPECT_EQ(JsonField(resp->body, "upper_breach"),
              direct->upper_breach ? "true" : "false");
    EXPECT_EQ(JsonField(resp->body, "steps_to_upper_breach"),
              std::to_string(direct->steps_to_upper_breach));
    EXPECT_EQ(JsonField(resp->body, "upper_breach_epoch"),
              std::to_string(direct->upper_breach_epoch));
    EXPECT_EQ(JsonField(resp->body, "view_version"),
              std::to_string(view->version));
  }
}

TEST_F(ServeE2eTest, EstateSummaryReflectsServiceState) {
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto resp = client.Get("/v1/estate");
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->status, 200);
  for (const auto& key : service_->keys()) {
    EXPECT_NE(resp->body.find("\"key\":\"" + key + "\""), std::string::npos)
        << resp->body;
  }
  EXPECT_EQ(JsonField(resp->body, "now_epoch"),
            std::to_string(service_->now()));
}

TEST_F(ServeE2eTest, ConcurrentClientsSurviveViewSwaps) {
  const std::vector<std::string> keys = service_->keys();
  ASSERT_FALSE(keys.empty());
  std::vector<std::string> targets;
  for (const auto& key : keys) {
    const std::size_t slash = key.find('/');
    const std::string qs =
        "instance=" + key.substr(0, slash) + "&metric=" + key.substr(slash + 1);
    targets.push_back("/v1/forecast?" + qs);
    targets.push_back("/v1/breach?" + qs);
    targets.push_back("/v1/headroom?" + qs + "&capacity=200");
  }
  targets.push_back("/v1/estate");
  targets.push_back("/healthz");

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 50;
  std::atomic<int> bad{0};
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<bool> swapping{true};

  // Writer: keep the service ticking so views swap under the readers.
  std::thread ticker([this, &swapping] {
    while (swapping.load()) {
      ASSERT_TRUE(service_->Tick().ok());
      ASSERT_TRUE(service_->DrainRefits().ok());
    }
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([this, &targets, &bad, &ok_count, t] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        bad.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const std::string& target = targets[(t + i) % targets.size()];
        auto resp = client.Get(target);
        if (!resp.ok() || resp->status != 200) {
          bad.fetch_add(1);
          return;
        }
        // Every /v1 answer must come from some fully published view.
        if (target.rfind("/v1/", 0) == 0) {
          const std::string version = JsonField(resp->body, "view_version");
          if (version.empty() && target != "/v1/estate") {
            bad.fetch_add(1);
            return;
          }
        }
        ok_count.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  swapping.store(false);
  ticker.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(ok_count.load(),
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  EXPECT_GT(service_->view_channel()->swaps(), 1u);
}

// Acceptance bar for the flight recorder: a wide event served over the
// socket by /v1/debug/events carries the same span id the journal stamped
// on the corresponding refit, so an operator can pivot from a slow request
// to the exact durable journal line (and trace span) that produced it.
TEST(FlightRecorderE2eTest, DebugEventsCorrelateWithJournalSpans) {
  obs::Tracer::Instance().Disable();
  obs::Tracer::Instance().Clear();
  obs::Tracer::Instance().Enable();
  obs::EventLog::Instance().Disable();
  obs::EventLog::Instance().Clear();
  obs::EventLog::Instance().Enable();

  const std::string state_dir =
      ::testing::TempDir() + "/flight_recorder_e2e_state";
  std::filesystem::remove_all(state_dir);

  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = 2;
  workload::ClusterSimulator cluster(scenario, 7);
  EstateServiceConfig config = FastConfig();
  config.state_dir = state_dir;
  EstateService service(
      &cluster,
      std::vector<service::WatchConfig>{{0, workload::Metric::kCpu, 95.0},
                                        {1, workload::Metric::kCpu, 95.0}},
      config);
  ASSERT_TRUE(service.Start().ok());
  ASSERT_TRUE(service.Tick().ok());
  ASSERT_TRUE(service.DrainRefits().ok());

  EstateQueryHandler::Options options;
  options.slos = service.slos();
  EstateQueryHandler handler(service.view_channel(),
                             std::make_shared<obs::MetricsRegistry>(),
                             options);
  HttpServerConfig server_config;
  server_config.worker_threads = 2;
  HttpServer server(
      [&handler](const HttpRequest& request) {
        return handler.Handle(request);
      },
      server_config);
  ASSERT_TRUE(server.Start().ok());

  // The journal's fit lines carry the refit worker's span id (v2 layout).
  auto journal = service::ReadJournal(state_dir + "/journal.log");
  ASSERT_TRUE(journal.ok()) << journal.status();
  std::map<std::string, std::set<std::uint64_t>> journal_spans;
  for (const service::JournalEvent& ev : *journal) {
    if (ev.kind == service::EventKind::kFitOk) {
      journal_spans[ev.key].insert(ev.span_id);
    }
  }
  ASSERT_FALSE(journal_spans.empty());

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (const auto& key : service.keys()) {
    SCOPED_TRACE(key);
    auto resp = client.Get("/v1/debug/events?key=" + key + "&kind=refit");
    ASSERT_TRUE(resp.ok()) << resp.status();
    ASSERT_EQ(resp->status, 200) << resp->body;
    ASSERT_NE(JsonField(resp->body, "matched"), "0") << resp->body;
    // JsonField finds the first (newest) event's stamps.
    const std::string span_text = JsonField(resp->body, "span_id");
    ASSERT_FALSE(span_text.empty());
    const std::uint64_t span_id = std::stoull(span_text);
    EXPECT_NE(span_id, 0u);
    ASSERT_TRUE(journal_spans.count(key)) << "no journalled fit for " << key;
    EXPECT_TRUE(journal_spans[key].count(span_id))
        << "wide-event span " << span_id
        << " not found among journal fit spans for " << key;
    // The refit was journalled, so its wide event carries a journal seq.
    EXPECT_NE(JsonField(resp->body, "journal_seq"), "0");
  }

  // The service-wired SLO set is reachable over the same socket.
  auto slo_resp = client.Get("/v1/slo");
  ASSERT_TRUE(slo_resp.ok()) << slo_resp.status();
  ASSERT_EQ(slo_resp->status, 200);
  EXPECT_NE(slo_resp->body.find("\"name\":\"forecast_accuracy\""),
            std::string::npos);
  EXPECT_NE(slo_resp->body.find("\"name\":\"serve_latency\""),
            std::string::npos);

  server.Stop();
  obs::EventLog::Instance().Disable();
  obs::EventLog::Instance().Clear();
  obs::Tracer::Instance().Disable();
  obs::Tracer::Instance().Clear();
  std::filesystem::remove_all(state_dir);
}

}  // namespace
}  // namespace capplan::serve
