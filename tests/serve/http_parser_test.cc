#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http.h"

namespace capplan::serve {
namespace {

using State = RequestParser::State;

State FeedAll(RequestParser* p, const std::string& bytes) {
  return p->Feed(bytes.data(), bytes.size());
}

// Byte-at-a-time feeding must land in exactly the same state as one big
// feed — the event loop delivers arbitrary fragmentation.
State FeedByByte(RequestParser* p, const std::string& bytes) {
  State s = p->state();
  for (char c : bytes) s = p->Feed(&c, 1);
  return s;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  RequestParser p;
  ASSERT_EQ(FeedAll(&p, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            State::kComplete);
  HttpRequest req = p.TakeRequest();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_TRUE(req.query.empty());
  EXPECT_EQ(req.version_minor, 1);
  EXPECT_TRUE(req.keep_alive);
  ASSERT_NE(req.FindHeader("host"), nullptr);
  EXPECT_EQ(*req.FindHeader("host"), "x");
}

TEST(HttpParserTest, ByteAtATimeMatchesBulk) {
  const std::string raw =
      "GET /v1/forecast?instance=cdbm011&metric=cpu&horizon=24 HTTP/1.1\r\n"
      "Host: localhost\r\nAccept: */*\r\n\r\n";
  RequestParser bulk;
  RequestParser dribble;
  ASSERT_EQ(FeedAll(&bulk, raw), State::kComplete);
  ASSERT_EQ(FeedByByte(&dribble, raw), State::kComplete);
  const HttpRequest a = bulk.TakeRequest();
  const HttpRequest b = dribble.TakeRequest();
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.headers, b.headers);
}

TEST(HttpParserTest, QueryDecodedAndSorted) {
  RequestParser p;
  ASSERT_EQ(FeedAll(&p,
                    "GET /v1/x?zeta=3&alpha=a%20b&mid=c+d HTTP/1.1\r\n\r\n"),
            State::kComplete);
  HttpRequest req = p.TakeRequest();
  ASSERT_EQ(req.query.size(), 3u);
  EXPECT_EQ(req.query["alpha"], "a b");
  EXPECT_EQ(req.query["mid"], "c d");
  EXPECT_EQ(req.query["zeta"], "3");
  // std::map iterates sorted — the answer cache relies on this canon.
  EXPECT_EQ(req.query.begin()->first, "alpha");
}

TEST(HttpParserTest, PostBodyByContentLength) {
  RequestParser p;
  ASSERT_EQ(FeedAll(&p,
                    "POST /v1/x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            State::kComplete);
  HttpRequest req = p.TakeRequest();
  EXPECT_EQ(req.body, "hello");
}

TEST(HttpParserTest, PipelinedKeepAliveSurfacesBoth) {
  RequestParser p;
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(FeedAll(&p, two), State::kComplete);
  HttpRequest first = p.TakeRequest();
  EXPECT_EQ(first.path, "/a");
  EXPECT_TRUE(first.keep_alive);
  // TakeRequest re-parses the buffered tail immediately.
  ASSERT_EQ(p.state(), State::kComplete);
  HttpRequest second = p.TakeRequest();
  EXPECT_EQ(second.path, "/b");
  EXPECT_FALSE(second.keep_alive);
  EXPECT_EQ(p.state(), State::kNeedMore);
  EXPECT_EQ(p.buffered_bytes(), 0u);
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  RequestParser p;
  ASSERT_EQ(FeedAll(&p, "GET / HTTP/1.0\r\n\r\n"), State::kComplete);
  EXPECT_FALSE(p.TakeRequest().keep_alive);
  RequestParser q;
  ASSERT_EQ(FeedAll(&q, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"),
            State::kComplete);
  EXPECT_TRUE(q.TakeRequest().keep_alive);
}

TEST(HttpParserTest, TruncatedRequestStaysIncomplete) {
  const std::vector<std::string> prefixes = {
      "GET",
      "GET /v1/forecast HTTP/1.1",
      "GET /v1/forecast HTTP/1.1\r\nHost: x",
      "GET /v1/forecast HTTP/1.1\r\nHost: x\r\n",
      "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal",  // truncated body
  };
  for (const std::string& prefix : prefixes) {
    RequestParser p;
    EXPECT_EQ(FeedAll(&p, prefix), State::kNeedMore) << prefix;
  }
}

struct MalformedCase {
  const char* name;
  std::string raw;
  int expected_status;
};

class HttpParserMalformedTest
    : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(HttpParserMalformedTest, RejectsWithMappedStatus) {
  const MalformedCase& c = GetParam();
  RequestParser p;
  EXPECT_EQ(FeedAll(&p, c.raw), State::kError) << c.name;
  EXPECT_EQ(p.error_status(), c.expected_status) << c.name;
  EXPECT_FALSE(p.error().empty());
  // Byte-at-a-time delivery reaches the same verdict.
  RequestParser dribble;
  EXPECT_EQ(FeedByByte(&dribble, c.raw), State::kError) << c.name;
  EXPECT_EQ(dribble.error_status(), c.expected_status) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, HttpParserMalformedTest,
    ::testing::Values(
        MalformedCase{"bare_lf_line", "GET / HTTP/1.1\nHost: x\r\n\r\n", 400},
        MalformedCase{"missing_target", "GET HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"relative_target", "GET v1/x HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"lowercase_method", "get / HTTP/1.1\r\n\r\n", 400},
        MalformedCase{"bad_protocol", "GET / HTCPCP/1.0\r\n\r\n", 400},
        MalformedCase{"http2_version", "GET / HTTP/2.0\r\n\r\n", 505},
        MalformedCase{"header_no_colon", "GET / HTTP/1.1\r\nHost\r\n\r\n",
                      400},
        MalformedCase{"header_space_in_name",
                      "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},
        MalformedCase{"negative_content_length",
                      "POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400},
        MalformedCase{"non_numeric_content_length",
                      "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400},
        MalformedCase{"chunked_unsupported",
                      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                      501},
        MalformedCase{"null_byte_in_line", std::string("GET /\0 HTTP/1.1",
                                                       15) +
                                               "\r\n\r\n",
                      400}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

TEST(HttpParserTest, OversizedRequestLineIs414) {
  ParserLimits limits;
  limits.max_request_line = 64;
  RequestParser p(limits);
  const std::string line =
      "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(FeedAll(&p, line), State::kError);
  EXPECT_EQ(p.error_status(), 414);
}

TEST(HttpParserTest, OversizedRequestLineCaughtWithoutTerminator) {
  // An attacker streaming an endless first line must be cut off at the
  // limit, not buffered until memory runs out.
  ParserLimits limits;
  limits.max_request_line = 64;
  RequestParser p(limits);
  const std::string endless(1024, 'a');  // no CRLF anywhere
  EXPECT_EQ(FeedAll(&p, endless), State::kError);
  EXPECT_EQ(p.error_status(), 414);
}

TEST(HttpParserTest, OversizedHeadersAre431) {
  ParserLimits limits;
  limits.max_header_bytes = 128;
  RequestParser p(limits);
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 16; ++i) {
    raw += "X-Pad-" + std::to_string(i) + ": " + std::string(32, 'y') +
           "\r\n";
  }
  raw += "\r\n";
  EXPECT_EQ(FeedAll(&p, raw), State::kError);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  ParserLimits limits;
  limits.max_body_bytes = 16;
  RequestParser p(limits);
  EXPECT_EQ(FeedAll(&p, "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n"),
            State::kError);
  EXPECT_EQ(p.error_status(), 413);
}

TEST(HttpParserTest, UnknownMethodIs501) {
  RequestParser p;
  EXPECT_EQ(FeedAll(&p, "BREW /coffee HTTP/1.1\r\n\r\n"), State::kError);
  EXPECT_EQ(p.error_status(), 501);
}

TEST(HttpParserTest, UrlDecodeKeepsInvalidEscapes) {
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a%2Gb"), "a%2Gb");  // invalid hex kept verbatim
  EXPECT_EQ(UrlDecode("a%2"), "a%2");      // truncated escape kept verbatim
  EXPECT_EQ(UrlDecode("%41%42"), "AB");
}

TEST(HttpSerializeTest, ResponseWireFormat) {
  HttpResponse resp = HttpResponse::Json(200, "{\"ok\":true}");
  const std::string wire = SerializeResponse(resp, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 11), "{\"ok\":true}");
}

TEST(HttpSerializeTest, HeadOmitsBodyKeepsLength) {
  HttpResponse resp = HttpResponse::Json(200, "{\"ok\":true}");
  const std::string wire =
      SerializeResponse(resp, /*keep_alive=*/false, /*head_only=*/true);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 4), "\r\n\r\n");  // no body bytes
}

TEST(HttpSerializeTest, ExtraHeadersIncluded) {
  HttpResponse resp = HttpResponse::Json(429, "{}");
  resp.headers.emplace_back("Retry-After", "1");
  const std::string wire = SerializeResponse(resp, true);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
}

}  // namespace
}  // namespace capplan::serve
