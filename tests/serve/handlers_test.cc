#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/capacity.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/estate_view.h"
#include "serve/handlers.h"
#include "serve/http.h"

namespace capplan::serve {
namespace {

HttpRequest Get(const std::string& target) {
  RequestParser p;
  const std::string raw = "GET " + target + " HTTP/1.1\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  EXPECT_EQ(p.state(), RequestParser::State::kComplete) << target;
  return p.TakeRequest();
}

// A GET negotiating the OpenMetrics exposition, the way a Prometheus
// server with exemplar support scrapes.
HttpRequest GetOpenMetrics(const std::string& target) {
  RequestParser p;
  const std::string raw =
      "GET " + target +
      " HTTP/1.1\r\n"
      "Accept: application/openmetrics-text;version=1.0.0,text/plain\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  EXPECT_EQ(p.state(), RequestParser::State::kComplete) << target;
  return p.TakeRequest();
}

std::shared_ptr<EstateView> MakeEstate() {
  auto view = std::make_shared<EstateView>();
  view->now_epoch = 1000000;
  view->tick = 7;

  InstanceStatus ready;
  ready.key = "cdbm011/cpu";
  ready.instance = "cdbm011";
  ready.metric = "cpu";
  ready.threshold = 80.0;
  ready.has_forecast = true;
  for (int i = 0; i < 24; ++i) {
    ready.forecast.mean.push_back(50.0 + 2.0 * i);  // crosses 80 at i=15
    ready.forecast.lower.push_back(45.0 + 2.0 * i);
    ready.forecast.upper.push_back(55.0 + 2.0 * i);
  }
  ready.forecast.level = 0.95;
  ready.forecast_start_epoch = 1000000;
  ready.forecast_step_seconds = 3600;
  ready.spec = "HES a=0.1";
  for (int i = 0; i < 8; ++i) ready.recent.push_back(40.0 + i);
  ready.recent_start_epoch = 1000000 - 8 * 3600;

  InstanceStatus pending;  // watched but no forecast cached yet
  pending.key = "cdbm012/memory";
  pending.instance = "cdbm012";
  pending.metric = "memory";
  pending.threshold = 90.0;

  InstanceStatus poisoned;  // forecast exists but carries a NaN
  poisoned.key = "cdbm013/cpu";
  poisoned.instance = "cdbm013";
  poisoned.metric = "cpu";
  poisoned.threshold = 80.0;
  poisoned.has_forecast = true;
  poisoned.forecast.mean = {1.0, std::nan(""), 3.0};
  poisoned.forecast.lower = {0.0, 0.0, 0.0};
  poisoned.forecast.upper = {2.0, 3.0, 4.0};
  poisoned.forecast_start_epoch = 1000000;
  for (int i = 0; i < 4; ++i) poisoned.recent.push_back(1.0);
  poisoned.recent_start_epoch = 1000000 - 4 * 3600;

  view->instances = {ready, pending, poisoned};
  std::sort(view->instances.begin(), view->instances.end(),
            [](const InstanceStatus& a, const InstanceStatus& b) {
              return a.key < b.key;
            });
  return view;
}

class HandlersTest : public ::testing::Test {
 protected:
  HandlersTest()
      : registry_(std::make_shared<obs::MetricsRegistry>()),
        handler_(&channel_, registry_) {}

  void PublishEstate() { channel_.Publish(MakeEstate()); }

  ViewChannel channel_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  EstateQueryHandler handler_;
};

TEST_F(HandlersTest, HealthzBeforeAndAfterFirstView) {
  EXPECT_EQ(handler_.Handle(Get("/healthz")).status, 503);
  PublishEstate();
  const HttpResponse ok = handler_.Handle(Get("/healthz"));
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "ok\n");
}

TEST_F(HandlersTest, UnknownPathIs404) {
  PublishEstate();
  EXPECT_EQ(handler_.Handle(Get("/nope")).status, 404);
  EXPECT_EQ(handler_.Handle(Get("/v1/nope")).status, 404);
}

TEST_F(HandlersTest, NonGetIs405WithAllow) {
  PublishEstate();
  RequestParser p;
  const std::string raw = "POST /v1/estate HTTP/1.1\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  ASSERT_EQ(p.state(), RequestParser::State::kComplete);
  const HttpResponse resp = handler_.Handle(p.TakeRequest());
  EXPECT_EQ(resp.status, 405);
  bool has_allow = false;
  for (const auto& [k, v] : resp.headers) {
    if (k == "Allow") {
      has_allow = true;
      EXPECT_EQ(v, "GET, HEAD");
    }
  }
  EXPECT_TRUE(has_allow);
}

TEST_F(HandlersTest, V1BeforeFirstViewIs503WithRetryAfter) {
  const HttpResponse resp = handler_.Handle(Get("/v1/estate"));
  EXPECT_EQ(resp.status, 503);
  bool has_retry = false;
  for (const auto& [k, v] : resp.headers) {
    if (k == "Retry-After") has_retry = true;
  }
  EXPECT_TRUE(has_retry);
}

TEST_F(HandlersTest, EstateSummaryListsAllWatches) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(Get("/v1/estate"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"cdbm011/cpu\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"cdbm012/memory\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"cdbm013/cpu\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"tick\":7"), std::string::npos);
}

TEST_F(HandlersTest, ForecastEndpoint) {
  PublishEstate();
  const HttpResponse resp =
      handler_.Handle(Get("/v1/forecast?instance=cdbm011&metric=cpu"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"key\":\"cdbm011/cpu\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"start_epoch\":1000000"), std::string::npos);
  EXPECT_NE(resp.body.find("\"mean\":[50,52"), std::string::npos);
}

TEST_F(HandlersTest, ForecastHorizonTruncates) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(
      Get("/v1/forecast?instance=cdbm011&metric=cpu&horizon=2"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"mean\":[50,52]"), std::string::npos);
  EXPECT_EQ(handler_
                .Handle(Get(
                    "/v1/forecast?instance=cdbm011&metric=cpu&horizon=0"))
                .status,
            400);
  EXPECT_EQ(handler_
                .Handle(Get(
                    "/v1/forecast?instance=cdbm011&metric=cpu&horizon=x"))
                .status,
            400);
}

TEST_F(HandlersTest, MissingParamsAre400UnknownKeyIs404) {
  PublishEstate();
  EXPECT_EQ(handler_.Handle(Get("/v1/forecast")).status, 400);
  EXPECT_EQ(handler_.Handle(Get("/v1/forecast?instance=cdbm011")).status,
            400);
  EXPECT_EQ(
      handler_.Handle(Get("/v1/forecast?instance=nope&metric=cpu")).status,
      404);
}

TEST_F(HandlersTest, ForecastPendingInstanceIs503) {
  PublishEstate();
  const HttpResponse resp =
      handler_.Handle(Get("/v1/forecast?instance=cdbm012&metric=memory"));
  EXPECT_EQ(resp.status, 503);
}

TEST_F(HandlersTest, BreachUsesConfiguredThreshold) {
  PublishEstate();
  const HttpResponse resp =
      handler_.Handle(Get("/v1/breach?instance=cdbm011&metric=cpu"));
  ASSERT_EQ(resp.status, 200);
  // Configured threshold 80: mean 50+2i crosses at i=15 -> step 16.
  EXPECT_NE(resp.body.find("\"mean_breach\":true"), std::string::npos);
  EXPECT_NE(resp.body.find("\"steps_to_mean_breach\":16"), std::string::npos);
  EXPECT_NE(resp.body.find("\"threshold\":80"), std::string::npos);
}

TEST_F(HandlersTest, BreachThresholdOverride) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(
      Get("/v1/breach?instance=cdbm011&metric=cpu&threshold=1000"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"mean_breach\":false"), std::string::npos);
  EXPECT_EQ(
      handler_
          .Handle(Get("/v1/breach?instance=cdbm011&metric=cpu&threshold=x"))
          .status,
      400);
  // "nan" as a threshold is rejected at parse time (400), before it could
  // reach the planner.
  EXPECT_EQ(
      handler_
          .Handle(Get("/v1/breach?instance=cdbm011&metric=cpu&threshold=nan"))
          .status,
      400);
}

TEST_F(HandlersTest, NaNForecastMapsTo422) {
  PublishEstate();
  const HttpResponse resp =
      handler_.Handle(Get("/v1/breach?instance=cdbm013&metric=cpu"));
  EXPECT_EQ(resp.status, 422);
  EXPECT_NE(resp.body.find("\"code\":\"ComputeError\""), std::string::npos);
}

TEST_F(HandlersTest, HeadroomEndpoint) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(
      Get("/v1/headroom?instance=cdbm011&metric=cpu&capacity=200"));
  ASSERT_EQ(resp.status, 200);
  // Last recent value 47; peak upper 55+2*23=101 -> headroom (200-101)/200.
  EXPECT_NE(resp.body.find("\"current_usage\":47"), std::string::npos);
  EXPECT_NE(resp.body.find("\"peak_upper\":101"), std::string::npos);
  EXPECT_NE(resp.body.find("\"headroom_fraction\":0.495"), std::string::npos);
}

TEST_F(HandlersTest, ZeroCapacityMapsTo422) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(
      Get("/v1/headroom?instance=cdbm011&metric=cpu&capacity=0"));
  EXPECT_EQ(resp.status, 422);
  EXPECT_NE(resp.body.find("\"code\":\"InvalidArgument\""),
            std::string::npos);
  // Missing capacity is a 400 (malformed request, not planner rejection).
  EXPECT_EQ(
      handler_.Handle(Get("/v1/headroom?instance=cdbm011&metric=cpu")).status,
      400);
}

TEST_F(HandlersTest, AnswersAreCachedPerViewVersion) {
  PublishEstate();
  const std::string target = "/v1/forecast?instance=cdbm011&metric=cpu";
  ASSERT_EQ(handler_.Handle(Get(target)).status, 200);
  ASSERT_EQ(handler_.Handle(Get(target)).status, 200);
  EXPECT_EQ(handler_.cache().hits(), 1u);
  // Equivalent spelling (reordered params) hits the same cache entry.
  ASSERT_EQ(
      handler_.Handle(Get("/v1/forecast?metric=cpu&instance=cdbm011")).status,
      200);
  EXPECT_EQ(handler_.cache().hits(), 2u);
  // A view swap invalidates: next lookup is a miss.
  PublishEstate();
  ASSERT_EQ(handler_.Handle(Get(target)).status, 200);
  EXPECT_EQ(handler_.cache().hits(), 2u);
  EXPECT_GE(handler_.cache().misses(), 2u);
}

TEST_F(HandlersTest, ErrorsAreNotCached) {
  PublishEstate();
  EXPECT_EQ(handler_.Handle(Get("/v1/forecast?instance=nope&metric=cpu"))
                .status,
            404);
  EXPECT_EQ(handler_.Handle(Get("/v1/forecast?instance=nope&metric=cpu"))
                .status,
            404);
  EXPECT_EQ(handler_.cache().hits(), 0u);
}

TEST_F(HandlersTest, MetricsEndpointExposesPrometheusText) {
  PublishEstate();
  ASSERT_EQ(handler_.Handle(Get("/v1/estate")).status, 200);
  const HttpResponse resp = handler_.Handle(Get("/metrics"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(resp.body.find("capplan_serve_endpoint_requests_total"),
            std::string::npos);
  EXPECT_NE(resp.body.find("capplan_serve_cache_misses_total"),
            std::string::npos);
}

TEST_F(HandlersTest, MetricsWithoutRegistryIs404) {
  ViewChannel channel;
  EstateQueryHandler bare(&channel);
  EXPECT_EQ(bare.Handle(Get("/metrics")).status, 404);
}

std::shared_ptr<EstateView> WithShardHealth(std::vector<int> states) {
  auto view = MakeEstate();
  for (std::size_t i = 0; i < states.size(); ++i) {
    ShardHealthStatus hs;
    hs.shard = i;
    hs.state = states[i];
    hs.state_name = states[i] == 0   ? "healthy"
                    : states[i] == 1 ? "degraded"
                                     : "critical";
    hs.reason = states[i] == 0 ? "nominal" : "refit queue depth";
    hs.refit_queue_depth = states[i] == 0 ? 0 : 200;
    if (hs.state > view->overall_health) view->overall_health = hs.state;
    view->shard_health.push_back(std::move(hs));
  }
  return view;
}

// Liveness vs readiness: /healthz answers "is the process serving a view",
// /healthz?deep=1 additionally folds in the per-shard health machines.
TEST_F(HandlersTest, DeepHealthzTable) {
  struct Case {
    const char* name;
    std::vector<int> states;  // per-shard health; empty = hand-built view
    int want_status;
  };
  const Case cases[] = {
      {"all healthy", {0, 0}, 200},
      {"degraded is still ready", {0, 1}, 200},
      {"one critical shard fails readiness", {0, 2}, 503},
      {"all critical", {2, 2, 2}, 503},
      {"no shard health published (hand-built view)", {}, 200},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    channel_.Publish(WithShardHealth(c.states));
    const HttpResponse deep = handler_.Handle(Get("/healthz?deep=1"));
    EXPECT_EQ(deep.status, c.want_status);
    if (c.want_status == 200) {
      EXPECT_EQ(deep.body, "ok\n");
    } else {
      EXPECT_NE(deep.body.find("critical"), std::string::npos);
    }
    // Plain liveness never deepens, whatever the shards say.
    const HttpResponse shallow = handler_.Handle(Get("/healthz"));
    EXPECT_EQ(shallow.status, 200);
    EXPECT_EQ(shallow.body, "ok\n");
  }
}

TEST_F(HandlersTest, DeepHealthzCarriesRetryAfter) {
  channel_.Publish(WithShardHealth({2}));
  const HttpResponse resp = handler_.Handle(Get("/healthz?deep=1"));
  ASSERT_EQ(resp.status, 503);
  bool has_retry = false;
  for (const auto& [k, v] : resp.headers) {
    if (k == "Retry-After") has_retry = true;
  }
  EXPECT_TRUE(has_retry);
}

TEST_F(HandlersTest, HealthEndpointReportsPerShardState) {
  channel_.Publish(WithShardHealth({0, 2}));
  const HttpResponse resp = handler_.Handle(Get("/v1/health"));
  ASSERT_EQ(resp.status, 200);  // diagnostics stay reachable when critical
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_NE(resp.body.find("\"overall\":\"critical\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"shards\":["), std::string::npos);
  EXPECT_NE(resp.body.find("\"refit_queue_depth\":200"), std::string::npos);
  EXPECT_NE(resp.body.find("refit queue depth"), std::string::npos);
}

TEST_F(HandlersTest, HealthEndpointOnHealthyEstate) {
  channel_.Publish(WithShardHealth({0}));
  const HttpResponse resp = handler_.Handle(Get("/v1/health"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"overall\":\"healthy\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"state\":\"healthy\""), std::string::npos);
}

TEST_F(HandlersTest, HealthEndpointBeforeFirstViewIs503) {
  EXPECT_EQ(handler_.Handle(Get("/v1/health")).status, 503);
}

// ---------------------------------------------------------------------------
// Flight-recorder surface: /v1/slo, /v1/debug/*, cache exemption.

TEST(CacheExemptTest, ClassifiesTheLiveStateEndpoints) {
  EXPECT_TRUE(EstateQueryHandler::CacheExempt("/metrics"));
  EXPECT_TRUE(EstateQueryHandler::CacheExempt("/v1/slo"));
  EXPECT_TRUE(EstateQueryHandler::CacheExempt("/v1/debug/events"));
  EXPECT_TRUE(EstateQueryHandler::CacheExempt("/v1/debug/slow"));
  EXPECT_FALSE(EstateQueryHandler::CacheExempt("/v1/estate"));
  EXPECT_FALSE(EstateQueryHandler::CacheExempt("/v1/forecast"));
  EXPECT_FALSE(EstateQueryHandler::CacheExempt("/healthz"));
}

TEST_F(HandlersTest, SloEndpointWithoutTrackersIs404) {
  // Routes before the view gate, so the answer is the same either way.
  EXPECT_EQ(handler_.Handle(Get("/v1/slo")).status, 404);
  PublishEstate();
  const HttpResponse resp = handler_.Handle(Get("/v1/slo"));
  EXPECT_EQ(resp.status, 404);
  EXPECT_NE(resp.body.find("no SLO trackers wired"), std::string::npos);
}

obs::WideEvent DebugEvent(obs::WideEventKind kind, const char* key, int shard,
                          double dur_ms, const char* outcome) {
  obs::WideEvent ev;
  ev.kind = kind;
  ev.set_key(key);
  ev.shard = shard;
  ev.dur_ns = static_cast<std::uint64_t>(dur_ms * 1e6);
  ev.outcome = outcome;
  return ev;
}

long MatchedCount(const std::string& body) {
  const std::size_t pos = body.find("\"matched\":");
  EXPECT_NE(pos, std::string::npos) << body;
  if (pos == std::string::npos) return -1;
  return std::strtol(body.c_str() + pos + 10, nullptr, 10);
}

// The recorder is process-global: start and finish each test disabled and
// empty so neighbours see a clean ring.
class DebugHandlersTest : public HandlersTest {
 protected:
  void SetUp() override {
    obs::EventLog::Instance().Disable();
    obs::EventLog::Instance().Clear();
  }
  void TearDown() override {
    obs::EventLog::Instance().Disable();
    obs::EventLog::Instance().Clear();
  }
};

TEST_F(DebugHandlersTest, DebugEventsServeWithoutViewOrRecorder) {
  // No view published and the recorder disabled: still a 200 with an empty
  // ring, because the debug surface bypasses the view gate entirely.
  const HttpResponse resp = handler_.Handle(Get("/v1/debug/events"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_NE(resp.body.find("\"enabled\":false"), std::string::npos);
  EXPECT_NE(resp.body.find("\"buffered\":0"), std::string::npos);
  EXPECT_EQ(MatchedCount(resp.body), 0);
  EXPECT_NE(resp.body.find("\"events\":[]"), std::string::npos);
}

TEST_F(DebugHandlersTest, EventFilterTable) {
  obs::EventLog& log = obs::EventLog::Instance();
  log.Enable();
  log.Emit(DebugEvent(obs::WideEventKind::kRefit, "db1/cpu", 0, 1000.0, "ok"));
  log.Emit(
      DebugEvent(obs::WideEventKind::kRefit, "db2/cpu", 1, 2.0, "error"));
  log.Emit(DebugEvent(obs::WideEventKind::kPromotion, "db1/cpu", 0, 1.0,
                      "promoted"));
  log.Emit(DebugEvent(obs::WideEventKind::kTickOverrun, "shard.tick", 1,
                      5000.0, "overrun"));
  // Every debug request emits its own http_request event afterwards; the
  // filters below are chosen so those never match (different key/kind/shard,
  // "ok" outcome, sub-second duration).
  struct Case {
    const char* name;
    const char* target;
    long want_matched;
  };
  const Case cases[] = {
      {"by key", "/v1/debug/events?key=db1/cpu", 2},
      {"by shard", "/v1/debug/events?shard=1", 2},
      {"by kind", "/v1/debug/events?kind=refit", 2},
      {"by outcome", "/v1/debug/events?outcome=error", 1},
      {"by min duration", "/v1/debug/events?min_duration_ms=500", 2},
      {"kind and shard", "/v1/debug/events?kind=refit&shard=1", 1},
      {"key with limit", "/v1/debug/events?key=db1/cpu&limit=1", 1},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const HttpResponse resp = handler_.Handle(Get(c.target));
    ASSERT_EQ(resp.status, 200);
    EXPECT_EQ(MatchedCount(resp.body), c.want_matched) << resp.body;
  }
  // Newest-first: with limit=1 the key filter returns the promotion, which
  // was emitted after the refit for the same key.
  const HttpResponse newest =
      handler_.Handle(Get("/v1/debug/events?key=db1/cpu&limit=1"));
  EXPECT_NE(newest.body.find("\"kind\":\"promotion\""), std::string::npos);
}

TEST_F(DebugHandlersTest, BadFilterParamsAreUniform400) {
  const char* bad[] = {
      "shard=-1",          "shard=x",  "kind=nope", "min_duration_ms=-1",
      "min_duration_ms=x", "limit=0",  "limit=1001", "limit=x",
      "frobnicate=1",
  };
  for (const char* endpoint : {"/v1/debug/events", "/v1/debug/slow"}) {
    for (const char* query : bad) {
      SCOPED_TRACE(std::string(endpoint) + "?" + query);
      const HttpResponse resp =
          handler_.Handle(Get(std::string(endpoint) + "?" + query));
      EXPECT_EQ(resp.status, 400);
      EXPECT_EQ(resp.content_type, "application/json");
      EXPECT_NE(resp.body.find("\"code\":\"InvalidArgument\""),
                std::string::npos);
    }
  }
}

TEST_F(DebugHandlersTest, SlowEndpointOrdersByDurationDesc) {
  obs::EventLog& log = obs::EventLog::Instance();
  log.Enable();
  log.Emit(DebugEvent(obs::WideEventKind::kRefit, "a", 0, 5.0, "ok"));
  log.Emit(DebugEvent(obs::WideEventKind::kRefit, "b", 0, 50.0, "ok"));
  log.Emit(DebugEvent(obs::WideEventKind::kRefit, "c", 0, 1.0, "ok"));
  const HttpResponse resp = handler_.Handle(Get("/v1/debug/slow?kind=refit"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(MatchedCount(resp.body), 3);
  const std::size_t pb = resp.body.find("\"key\":\"b\"");
  const std::size_t pa = resp.body.find("\"key\":\"a\"");
  const std::size_t pc = resp.body.find("\"key\":\"c\"");
  ASSERT_NE(pb, std::string::npos);
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pc, std::string::npos);
  EXPECT_LT(pb, pa);
  EXPECT_LT(pa, pc);
  // The limit keeps only the slowest.
  const HttpResponse top =
      handler_.Handle(Get("/v1/debug/slow?kind=refit&limit=2"));
  EXPECT_EQ(MatchedCount(top.body), 2);
  EXPECT_NE(top.body.find("\"key\":\"b\""), std::string::npos);
  EXPECT_EQ(top.body.find("\"key\":\"c\""), std::string::npos);
}

// Handler wired the way the daemon wires it: registry + SLO trackers.
class SloHandlersTest : public ::testing::Test {
 protected:
  SloHandlersTest() : registry_(std::make_shared<obs::MetricsRegistry>()) {
    slos_ = std::make_shared<obs::SloSet>();
    obs::SloTracker::Options accuracy;
    accuracy.objective = 0.9;
    slos_->Add("forecast_accuracy", accuracy);
    slos_->Add("serve_latency", obs::SloTracker::Options());
    EstateQueryHandler::Options options;
    options.slos = slos_;
    handler_ = std::make_unique<EstateQueryHandler>(&channel_, registry_,
                                                    options);
  }
  void SetUp() override {
    obs::EventLog::Instance().Disable();
    obs::EventLog::Instance().Clear();
  }
  void TearDown() override {
    obs::EventLog::Instance().Disable();
    obs::EventLog::Instance().Clear();
  }

  ViewChannel channel_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  std::shared_ptr<obs::SloSet> slos_;
  std::unique_ptr<EstateQueryHandler> handler_;
};

TEST_F(SloHandlersTest, SloEndpointListsTrackersBeforeAnyView) {
  for (int i = 0; i < 9; ++i) {
    slos_->Find("forecast_accuracy")->Record(true, 100.0);
  }
  slos_->Find("forecast_accuracy")->Record(false, 100.0);
  const HttpResponse resp = handler_->Handle(Get("/v1/slo"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_NE(resp.body.find("\"name\":\"forecast_accuracy\""),
            std::string::npos);
  EXPECT_NE(resp.body.find("\"name\":\"serve_latency\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"objective\":0.9"), std::string::npos);
  EXPECT_NE(resp.body.find("\"bad_events\":1"), std::string::npos);
  EXPECT_NE(resp.body.find("\"fast_burn\":"), std::string::npos);
}

TEST_F(SloHandlersTest, EveryRenderedRequestFeedsTheLatencySlo) {
  channel_.Publish(MakeEstate());
  ASSERT_EQ(handler_->Handle(Get("/v1/estate")).status, 200);
  const obs::SloTracker::Burn burn =
      slos_->Find("serve_latency")->Evaluate(0.0);
  EXPECT_GE(burn.total_events, 1u);
}

TEST_F(SloHandlersTest, CacheExemptEndpointsBypassTheAnswerCache) {
  channel_.Publish(MakeEstate());
  for (const char* target : {"/metrics", "/v1/slo", "/v1/debug/events"}) {
    SCOPED_TRACE(target);
    ASSERT_EQ(handler_->Handle(Get(target)).status, 200);
    ASSERT_EQ(handler_->Handle(Get(target)).status, 200);
  }
  // Repeated scrapes of live-state endpoints never touch the answer cache.
  EXPECT_EQ(handler_->cache().hits(), 0u);
  EXPECT_EQ(handler_->cache().misses(), 0u);
  // Sanity: a cacheable endpoint still caches under the same handler.
  ASSERT_EQ(handler_->Handle(Get("/v1/estate")).status, 200);
  ASSERT_EQ(handler_->Handle(Get("/v1/estate")).status, 200);
  EXPECT_EQ(handler_->cache().hits(), 1u);
}

TEST_F(SloHandlersTest, MetricsScrapeCarriesSloFamilyAndExemplars) {
  obs::EventLog::Instance().Enable();
  channel_.Publish(MakeEstate());
  ASSERT_EQ(handler_->Handle(Get("/v1/estate")).status, 200);
  const HttpResponse resp = handler_->Handle(GetOpenMetrics("/metrics"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type,
            "application/openmetrics-text; version=1.0.0; charset=utf-8");
  EXPECT_NE(resp.body.find("capplan_slo_fast_burn_ratio"), std::string::npos);
  EXPECT_NE(resp.body.find("slo=\"serve_latency\""), std::string::npos);
  EXPECT_NE(resp.body.find("capplan_obs_events_dropped_total"),
            std::string::npos);
  EXPECT_NE(resp.body.find("capplan_obs_trace_dropped_total"),
            std::string::npos);
  // The /v1/estate request above left an exemplar on its latency bucket,
  // and the OpenMetrics exposition is terminated by `# EOF`.
  EXPECT_NE(resp.body.find("# {span_id=\""), std::string::npos);
  ASSERT_GE(resp.body.size(), 6u);
  EXPECT_EQ(resp.body.substr(resp.body.size() - 6), "# EOF\n");
}

TEST_F(SloHandlersTest, PlainScrapeStaysExemplarFreePrometheus004) {
  // Without OpenMetrics negotiation the scrape must stay parseable by a
  // vanilla Prometheus 0.0.4 text parser, which rejects exemplar tokens.
  obs::EventLog::Instance().Enable();
  channel_.Publish(MakeEstate());
  ASSERT_EQ(handler_->Handle(Get("/v1/estate")).status, 200);
  const HttpResponse resp = handler_->Handle(Get("/metrics"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(resp.body.find(" # {"), std::string::npos);
  EXPECT_EQ(resp.body.find("# EOF"), std::string::npos);
}

}  // namespace
}  // namespace capplan::serve
