#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/capacity.h"
#include "obs/metrics.h"
#include "serve/estate_view.h"
#include "serve/handlers.h"
#include "serve/http.h"

namespace capplan::serve {
namespace {

HttpRequest Get(const std::string& target) {
  RequestParser p;
  const std::string raw = "GET " + target + " HTTP/1.1\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  EXPECT_EQ(p.state(), RequestParser::State::kComplete) << target;
  return p.TakeRequest();
}

std::shared_ptr<EstateView> MakeEstate() {
  auto view = std::make_shared<EstateView>();
  view->now_epoch = 1000000;
  view->tick = 7;

  InstanceStatus ready;
  ready.key = "cdbm011/cpu";
  ready.instance = "cdbm011";
  ready.metric = "cpu";
  ready.threshold = 80.0;
  ready.has_forecast = true;
  for (int i = 0; i < 24; ++i) {
    ready.forecast.mean.push_back(50.0 + 2.0 * i);  // crosses 80 at i=15
    ready.forecast.lower.push_back(45.0 + 2.0 * i);
    ready.forecast.upper.push_back(55.0 + 2.0 * i);
  }
  ready.forecast.level = 0.95;
  ready.forecast_start_epoch = 1000000;
  ready.forecast_step_seconds = 3600;
  ready.spec = "HES a=0.1";
  for (int i = 0; i < 8; ++i) ready.recent.push_back(40.0 + i);
  ready.recent_start_epoch = 1000000 - 8 * 3600;

  InstanceStatus pending;  // watched but no forecast cached yet
  pending.key = "cdbm012/memory";
  pending.instance = "cdbm012";
  pending.metric = "memory";
  pending.threshold = 90.0;

  InstanceStatus poisoned;  // forecast exists but carries a NaN
  poisoned.key = "cdbm013/cpu";
  poisoned.instance = "cdbm013";
  poisoned.metric = "cpu";
  poisoned.threshold = 80.0;
  poisoned.has_forecast = true;
  poisoned.forecast.mean = {1.0, std::nan(""), 3.0};
  poisoned.forecast.lower = {0.0, 0.0, 0.0};
  poisoned.forecast.upper = {2.0, 3.0, 4.0};
  poisoned.forecast_start_epoch = 1000000;
  for (int i = 0; i < 4; ++i) poisoned.recent.push_back(1.0);
  poisoned.recent_start_epoch = 1000000 - 4 * 3600;

  view->instances = {ready, pending, poisoned};
  std::sort(view->instances.begin(), view->instances.end(),
            [](const InstanceStatus& a, const InstanceStatus& b) {
              return a.key < b.key;
            });
  return view;
}

class HandlersTest : public ::testing::Test {
 protected:
  HandlersTest()
      : registry_(std::make_shared<obs::MetricsRegistry>()),
        handler_(&channel_, registry_) {}

  void PublishEstate() { channel_.Publish(MakeEstate()); }

  ViewChannel channel_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  EstateQueryHandler handler_;
};

TEST_F(HandlersTest, HealthzBeforeAndAfterFirstView) {
  EXPECT_EQ(handler_.Handle(Get("/healthz")).status, 503);
  PublishEstate();
  const HttpResponse ok = handler_.Handle(Get("/healthz"));
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(ok.body, "ok\n");
}

TEST_F(HandlersTest, UnknownPathIs404) {
  PublishEstate();
  EXPECT_EQ(handler_.Handle(Get("/nope")).status, 404);
  EXPECT_EQ(handler_.Handle(Get("/v1/nope")).status, 404);
}

TEST_F(HandlersTest, NonGetIs405WithAllow) {
  PublishEstate();
  RequestParser p;
  const std::string raw = "POST /v1/estate HTTP/1.1\r\n\r\n";
  p.Feed(raw.data(), raw.size());
  ASSERT_EQ(p.state(), RequestParser::State::kComplete);
  const HttpResponse resp = handler_.Handle(p.TakeRequest());
  EXPECT_EQ(resp.status, 405);
  bool has_allow = false;
  for (const auto& [k, v] : resp.headers) {
    if (k == "Allow") {
      has_allow = true;
      EXPECT_EQ(v, "GET, HEAD");
    }
  }
  EXPECT_TRUE(has_allow);
}

TEST_F(HandlersTest, V1BeforeFirstViewIs503WithRetryAfter) {
  const HttpResponse resp = handler_.Handle(Get("/v1/estate"));
  EXPECT_EQ(resp.status, 503);
  bool has_retry = false;
  for (const auto& [k, v] : resp.headers) {
    if (k == "Retry-After") has_retry = true;
  }
  EXPECT_TRUE(has_retry);
}

TEST_F(HandlersTest, EstateSummaryListsAllWatches) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(Get("/v1/estate"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"cdbm011/cpu\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"cdbm012/memory\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"cdbm013/cpu\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"tick\":7"), std::string::npos);
}

TEST_F(HandlersTest, ForecastEndpoint) {
  PublishEstate();
  const HttpResponse resp =
      handler_.Handle(Get("/v1/forecast?instance=cdbm011&metric=cpu"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"key\":\"cdbm011/cpu\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"start_epoch\":1000000"), std::string::npos);
  EXPECT_NE(resp.body.find("\"mean\":[50,52"), std::string::npos);
}

TEST_F(HandlersTest, ForecastHorizonTruncates) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(
      Get("/v1/forecast?instance=cdbm011&metric=cpu&horizon=2"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"mean\":[50,52]"), std::string::npos);
  EXPECT_EQ(handler_
                .Handle(Get(
                    "/v1/forecast?instance=cdbm011&metric=cpu&horizon=0"))
                .status,
            400);
  EXPECT_EQ(handler_
                .Handle(Get(
                    "/v1/forecast?instance=cdbm011&metric=cpu&horizon=x"))
                .status,
            400);
}

TEST_F(HandlersTest, MissingParamsAre400UnknownKeyIs404) {
  PublishEstate();
  EXPECT_EQ(handler_.Handle(Get("/v1/forecast")).status, 400);
  EXPECT_EQ(handler_.Handle(Get("/v1/forecast?instance=cdbm011")).status,
            400);
  EXPECT_EQ(
      handler_.Handle(Get("/v1/forecast?instance=nope&metric=cpu")).status,
      404);
}

TEST_F(HandlersTest, ForecastPendingInstanceIs503) {
  PublishEstate();
  const HttpResponse resp =
      handler_.Handle(Get("/v1/forecast?instance=cdbm012&metric=memory"));
  EXPECT_EQ(resp.status, 503);
}

TEST_F(HandlersTest, BreachUsesConfiguredThreshold) {
  PublishEstate();
  const HttpResponse resp =
      handler_.Handle(Get("/v1/breach?instance=cdbm011&metric=cpu"));
  ASSERT_EQ(resp.status, 200);
  // Configured threshold 80: mean 50+2i crosses at i=15 -> step 16.
  EXPECT_NE(resp.body.find("\"mean_breach\":true"), std::string::npos);
  EXPECT_NE(resp.body.find("\"steps_to_mean_breach\":16"), std::string::npos);
  EXPECT_NE(resp.body.find("\"threshold\":80"), std::string::npos);
}

TEST_F(HandlersTest, BreachThresholdOverride) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(
      Get("/v1/breach?instance=cdbm011&metric=cpu&threshold=1000"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"mean_breach\":false"), std::string::npos);
  EXPECT_EQ(
      handler_
          .Handle(Get("/v1/breach?instance=cdbm011&metric=cpu&threshold=x"))
          .status,
      400);
  // "nan" as a threshold is rejected at parse time (400), before it could
  // reach the planner.
  EXPECT_EQ(
      handler_
          .Handle(Get("/v1/breach?instance=cdbm011&metric=cpu&threshold=nan"))
          .status,
      400);
}

TEST_F(HandlersTest, NaNForecastMapsTo422) {
  PublishEstate();
  const HttpResponse resp =
      handler_.Handle(Get("/v1/breach?instance=cdbm013&metric=cpu"));
  EXPECT_EQ(resp.status, 422);
  EXPECT_NE(resp.body.find("\"code\":\"ComputeError\""), std::string::npos);
}

TEST_F(HandlersTest, HeadroomEndpoint) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(
      Get("/v1/headroom?instance=cdbm011&metric=cpu&capacity=200"));
  ASSERT_EQ(resp.status, 200);
  // Last recent value 47; peak upper 55+2*23=101 -> headroom (200-101)/200.
  EXPECT_NE(resp.body.find("\"current_usage\":47"), std::string::npos);
  EXPECT_NE(resp.body.find("\"peak_upper\":101"), std::string::npos);
  EXPECT_NE(resp.body.find("\"headroom_fraction\":0.495"), std::string::npos);
}

TEST_F(HandlersTest, ZeroCapacityMapsTo422) {
  PublishEstate();
  const HttpResponse resp = handler_.Handle(
      Get("/v1/headroom?instance=cdbm011&metric=cpu&capacity=0"));
  EXPECT_EQ(resp.status, 422);
  EXPECT_NE(resp.body.find("\"code\":\"InvalidArgument\""),
            std::string::npos);
  // Missing capacity is a 400 (malformed request, not planner rejection).
  EXPECT_EQ(
      handler_.Handle(Get("/v1/headroom?instance=cdbm011&metric=cpu")).status,
      400);
}

TEST_F(HandlersTest, AnswersAreCachedPerViewVersion) {
  PublishEstate();
  const std::string target = "/v1/forecast?instance=cdbm011&metric=cpu";
  ASSERT_EQ(handler_.Handle(Get(target)).status, 200);
  ASSERT_EQ(handler_.Handle(Get(target)).status, 200);
  EXPECT_EQ(handler_.cache().hits(), 1u);
  // Equivalent spelling (reordered params) hits the same cache entry.
  ASSERT_EQ(
      handler_.Handle(Get("/v1/forecast?metric=cpu&instance=cdbm011")).status,
      200);
  EXPECT_EQ(handler_.cache().hits(), 2u);
  // A view swap invalidates: next lookup is a miss.
  PublishEstate();
  ASSERT_EQ(handler_.Handle(Get(target)).status, 200);
  EXPECT_EQ(handler_.cache().hits(), 2u);
  EXPECT_GE(handler_.cache().misses(), 2u);
}

TEST_F(HandlersTest, ErrorsAreNotCached) {
  PublishEstate();
  EXPECT_EQ(handler_.Handle(Get("/v1/forecast?instance=nope&metric=cpu"))
                .status,
            404);
  EXPECT_EQ(handler_.Handle(Get("/v1/forecast?instance=nope&metric=cpu"))
                .status,
            404);
  EXPECT_EQ(handler_.cache().hits(), 0u);
}

TEST_F(HandlersTest, MetricsEndpointExposesPrometheusText) {
  PublishEstate();
  ASSERT_EQ(handler_.Handle(Get("/v1/estate")).status, 200);
  const HttpResponse resp = handler_.Handle(Get("/metrics"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(resp.body.find("capplan_serve_endpoint_requests_total"),
            std::string::npos);
  EXPECT_NE(resp.body.find("capplan_serve_cache_misses_total"),
            std::string::npos);
}

TEST_F(HandlersTest, MetricsWithoutRegistryIs404) {
  ViewChannel channel;
  EstateQueryHandler bare(&channel);
  EXPECT_EQ(bare.Handle(Get("/metrics")).status, 404);
}

std::shared_ptr<EstateView> WithShardHealth(std::vector<int> states) {
  auto view = MakeEstate();
  for (std::size_t i = 0; i < states.size(); ++i) {
    ShardHealthStatus hs;
    hs.shard = i;
    hs.state = states[i];
    hs.state_name = states[i] == 0   ? "healthy"
                    : states[i] == 1 ? "degraded"
                                     : "critical";
    hs.reason = states[i] == 0 ? "nominal" : "refit queue depth";
    hs.refit_queue_depth = states[i] == 0 ? 0 : 200;
    if (hs.state > view->overall_health) view->overall_health = hs.state;
    view->shard_health.push_back(std::move(hs));
  }
  return view;
}

// Liveness vs readiness: /healthz answers "is the process serving a view",
// /healthz?deep=1 additionally folds in the per-shard health machines.
TEST_F(HandlersTest, DeepHealthzTable) {
  struct Case {
    const char* name;
    std::vector<int> states;  // per-shard health; empty = hand-built view
    int want_status;
  };
  const Case cases[] = {
      {"all healthy", {0, 0}, 200},
      {"degraded is still ready", {0, 1}, 200},
      {"one critical shard fails readiness", {0, 2}, 503},
      {"all critical", {2, 2, 2}, 503},
      {"no shard health published (hand-built view)", {}, 200},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    channel_.Publish(WithShardHealth(c.states));
    const HttpResponse deep = handler_.Handle(Get("/healthz?deep=1"));
    EXPECT_EQ(deep.status, c.want_status);
    if (c.want_status == 200) {
      EXPECT_EQ(deep.body, "ok\n");
    } else {
      EXPECT_NE(deep.body.find("critical"), std::string::npos);
    }
    // Plain liveness never deepens, whatever the shards say.
    const HttpResponse shallow = handler_.Handle(Get("/healthz"));
    EXPECT_EQ(shallow.status, 200);
    EXPECT_EQ(shallow.body, "ok\n");
  }
}

TEST_F(HandlersTest, DeepHealthzCarriesRetryAfter) {
  channel_.Publish(WithShardHealth({2}));
  const HttpResponse resp = handler_.Handle(Get("/healthz?deep=1"));
  ASSERT_EQ(resp.status, 503);
  bool has_retry = false;
  for (const auto& [k, v] : resp.headers) {
    if (k == "Retry-After") has_retry = true;
  }
  EXPECT_TRUE(has_retry);
}

TEST_F(HandlersTest, HealthEndpointReportsPerShardState) {
  channel_.Publish(WithShardHealth({0, 2}));
  const HttpResponse resp = handler_.Handle(Get("/v1/health"));
  ASSERT_EQ(resp.status, 200);  // diagnostics stay reachable when critical
  EXPECT_EQ(resp.content_type, "application/json");
  EXPECT_NE(resp.body.find("\"overall\":\"critical\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"shards\":["), std::string::npos);
  EXPECT_NE(resp.body.find("\"refit_queue_depth\":200"), std::string::npos);
  EXPECT_NE(resp.body.find("refit queue depth"), std::string::npos);
}

TEST_F(HandlersTest, HealthEndpointOnHealthyEstate) {
  channel_.Publish(WithShardHealth({0}));
  const HttpResponse resp = handler_.Handle(Get("/v1/health"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"overall\":\"healthy\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"state\":\"healthy\""), std::string::npos);
}

TEST_F(HandlersTest, HealthEndpointBeforeFirstViewIs503) {
  EXPECT_EQ(handler_.Handle(Get("/v1/health")).status, 503);
}

}  // namespace
}  // namespace capplan::serve
