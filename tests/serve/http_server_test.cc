#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http_client.h"
#include "serve/http_server.h"

namespace capplan::serve {
namespace {

HttpResponse Echo(const HttpRequest& request) {
  return HttpResponse::Json(200, "{\"path\":\"" + request.path + "\"}");
}

TEST(HttpServerTest, BindsEphemeralLoopbackPort) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, TwoServersNeverCollide) {
  HttpServer a(Echo);
  HttpServer b(Echo);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), b.port());
}

TEST(HttpServerTest, ServesSimpleGet) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto resp = client.Get("/hello");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "{\"path\":\"/hello\"}");
  ASSERT_NE(resp->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*resp->FindHeader("content-type"), "application/json");
}

TEST(HttpServerTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 20; ++i) {
    auto resp = client.Get("/r" + std::to_string(i));
    ASSERT_TRUE(resp.ok()) << i << ": " << resp.status();
    EXPECT_EQ(resp->status, 200);
  }
  const HttpServerStats stats = server.Stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests_admitted, 20u);
}

TEST(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // Two requests in one write; responses must come back in order.
  ASSERT_TRUE(client
                  .Send("GET /one HTTP/1.1\r\n\r\n"
                        "GET /two HTTP/1.1\r\nConnection: close\r\n\r\n")
                  .ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->body, "{\"path\":\"/one\"}");
  auto second = client.ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->body, "{\"path\":\"/two\"}");
  ASSERT_NE(second->FindHeader("connection"), nullptr);
  EXPECT_EQ(*second->FindHeader("connection"), "close");
}

TEST(HttpServerTest, HeadGetsHeadersWithoutBody) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Send("HEAD /h HTTP/1.1\r\nConnection: close\r\n\r\n")
                  .ok());
  // The response advertises the full Content-Length but sends no body; the
  // connection then closes, which ReadResponse would flag if it were
  // waiting on body bytes that never come. Read the header block manually.
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(client.fd(), buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_NE(raw.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Content-Length: 13\r\n"), std::string::npos);
  EXPECT_EQ(raw.find("{\"path\""), std::string::npos);  // no body bytes
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Send("GET noslash HTTP/1.1\r\n\r\n").ok());
  auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 400);
  ASSERT_NE(resp->FindHeader("connection"), nullptr);
  EXPECT_EQ(*resp->FindHeader("connection"), "close");
  EXPECT_EQ(server.Stats().parse_errors, 1u);
}

TEST(HttpServerTest, OversizedRequestLineGets414) {
  HttpServerConfig config;
  config.limits.max_request_line = 128;
  HttpServer server(Echo, config);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(
      client.Send("GET /" + std::string(4096, 'a') + " HTTP/1.1\r\n\r\n")
          .ok());
  auto resp = client.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 414);
}

TEST(HttpServerTest, SlowClientReadDeadlineCloses) {
  HttpServerConfig config;
  config.read_deadline_ms = 100;
  HttpServer server(Echo, config);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // Send half a request, then stall past the deadline.
  ASSERT_TRUE(client.Send("GET /slow HTTP/1.1\r\n").ok());
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.Stats().deadline_closes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.Stats().deadline_closes, 1u);
  EXPECT_EQ(server.Stats().open_connections, 0u);
}

TEST(HttpServerTest, AdmissionControlReturns429WithRetryAfter) {
  std::atomic<int> release{0};
  HttpServerConfig config;
  config.max_inflight = 2;
  config.worker_threads = 4;
  config.retry_after_seconds = 3;
  HttpServer server(
      [&release](const HttpRequest& request) {
        if (request.path == "/block") {
          while (release.load() == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        return HttpResponse::Json(200, "{}");
      },
      config);
  ASSERT_TRUE(server.Start().ok());

  // Fill both admission slots with blocked handlers.
  std::vector<std::unique_ptr<HttpClient>> blockers;
  for (int i = 0; i < 2; ++i) {
    auto c = std::make_unique<HttpClient>();
    ASSERT_TRUE(c->Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(c->Send("GET /block HTTP/1.1\r\n\r\n").ok());
    blockers.push_back(std::move(c));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.Stats().requests_admitted < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.Stats().requests_admitted, 2u);

  // The next request must be shed with 429 + Retry-After, never queued.
  HttpClient extra;
  ASSERT_TRUE(extra.Connect("127.0.0.1", server.port()).ok());
  auto throttled = extra.Get("/fast");
  ASSERT_TRUE(throttled.ok()) << throttled.status();
  EXPECT_EQ(throttled->status, 429);
  ASSERT_NE(throttled->FindHeader("retry-after"), nullptr);
  EXPECT_EQ(*throttled->FindHeader("retry-after"), "3");
  EXPECT_EQ(server.Stats().throttled, 1u);

  // Releasing the blockers frees the slots; the same connection is usable
  // again (429 keeps keep-alive connections open).
  release.store(1);
  for (auto& c : blockers) {
    auto resp = c->ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_EQ(resp->status, 200);
  }
  auto ok = extra.Get("/fast");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(server.Stats().peak_inflight, 2u);
}

TEST(HttpServerTest, GracefulShutdownFlushesInflight) {
  std::atomic<int> entered{0};
  HttpServerConfig config;
  config.stop_grace_ms = 3000;
  HttpServer server(
      [&entered](const HttpRequest&) {
        entered.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return HttpResponse::Json(200, "{\"done\":true}");
      },
      config);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Send("GET /work HTTP/1.1\r\n\r\n").ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (entered.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(entered.load(), 1);
  // Stop while the handler is mid-flight: the response must still arrive.
  std::thread stopper([&server] { server.Stop(); });
  auto resp = client.ReadResponse();
  stopper.join();
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "{\"done\":true}");
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  HttpServer server(Echo);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // second stop is a no-op
  // A stopped server can be started again on a fresh port.
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto resp = client.Get("/again");
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, 200);
  server.Stop();
}

TEST(HttpServerTest, RegistryMirrorsCounters) {
  auto registry = std::make_shared<obs::MetricsRegistry>();
  HttpServerConfig config;
  config.registry = registry;
  HttpServer server(Echo, config);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Get("/m").ok());
  server.Stop();
  double requests = -1.0;
  for (const auto& m : registry->Collect().samples) {
    if (m.name == "capplan_serve_requests_total") requests = m.value;
  }
  EXPECT_DOUBLE_EQ(requests, 1.0);
}

}  // namespace
}  // namespace capplan::serve
