#include "repo/repository.h"

#include <cmath>

#include <gtest/gtest.h>

#include "repo/csv.h"

namespace capplan::repo {
namespace {

tsa::TimeSeries QuarterHourly(std::vector<double> v) {
  return tsa::TimeSeries("raw", 0, tsa::Frequency::kQuarterHourly,
                         std::move(v));
}

TEST(RepositoryTest, KeyFormat) {
  EXPECT_EQ(MetricsRepository::KeyFor("cdbm011", workload::Metric::kCpu),
            "cdbm011/cpu");
  EXPECT_EQ(
      MetricsRepository::KeyFor("cdbm012", workload::Metric::kLogicalIops),
      "cdbm012/logical_iops");
}

TEST(RepositoryTest, IngestAggregatesToHourly) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4, 8, 8, 8, 8})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  ASSERT_EQ(hourly->size(), 2u);
  EXPECT_DOUBLE_EQ((*hourly)[0], 2.5);
  EXPECT_DOUBLE_EQ((*hourly)[1], 8.0);
  // Raw preserved as-is.
  auto raw = repo.Raw("k");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 8u);
}

TEST(RepositoryTest, HourlyInputStoredAsIs) {
  MetricsRepository repo;
  tsa::TimeSeries hourly("h", 0, tsa::Frequency::kHourly, {5, 6, 7});
  ASSERT_TRUE(repo.Ingest("k", hourly).ok());
  auto out = repo.Hourly("k");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(RepositoryTest, MissingKeyNotFound) {
  MetricsRepository repo;
  EXPECT_FALSE(repo.Hourly("missing").ok());
  EXPECT_EQ(repo.Hourly("missing").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(repo.Contains("missing"));
}

TEST(RepositoryTest, KeysSortedAndCounted) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("b", QuarterHourly({1, 2, 3, 4})).ok());
  ASSERT_TRUE(repo.Ingest("a", QuarterHourly({1, 2, 3, 4})).ok());
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.Keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(repo.Contains("a"));
}

TEST(RepositoryTest, ReingestReplaces) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 1, 1, 1})).ok());
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({9, 9, 9, 9})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  EXPECT_DOUBLE_EQ((*hourly)[0], 9.0);
}

TEST(RepositoryTest, RejectsEmptyInputs) {
  MetricsRepository repo;
  EXPECT_FALSE(repo.Ingest("", QuarterHourly({1, 2, 3, 4})).ok());
  EXPECT_FALSE(repo.Ingest("k", QuarterHourly({})).ok());
}

TEST(RepositoryTest, NanGapsSurviveAggregation) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest(
      "k", QuarterHourly({std::nan(""), std::nan(""), std::nan(""),
                          std::nan(""), 2.0, 2.0, 2.0, 2.0})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  EXPECT_TRUE(std::isnan((*hourly)[0]));
  EXPECT_DOUBLE_EQ((*hourly)[1], 2.0);
}

TEST(RepositoryTest, SaveAllWritesFiles) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("inst/cpu", QuarterHourly({1, 2, 3, 4})).ok());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(repo.SaveAll(dir).ok());
  auto back = ReadSeriesCsv(dir + "/inst_cpu.csv");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
}

}  // namespace
}  // namespace capplan::repo
