#include "repo/repository.h"

#include <cmath>

#include <gtest/gtest.h>

#include "repo/csv.h"

namespace capplan::repo {
namespace {

tsa::TimeSeries QuarterHourly(std::vector<double> v) {
  return tsa::TimeSeries("raw", 0, tsa::Frequency::kQuarterHourly,
                         std::move(v));
}

TEST(RepositoryTest, KeyFormat) {
  EXPECT_EQ(MetricsRepository::KeyFor("cdbm011", workload::Metric::kCpu),
            "cdbm011/cpu");
  EXPECT_EQ(
      MetricsRepository::KeyFor("cdbm012", workload::Metric::kLogicalIops),
      "cdbm012/logical_iops");
}

TEST(RepositoryTest, IngestAggregatesToHourly) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4, 8, 8, 8, 8})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  ASSERT_EQ(hourly->size(), 2u);
  EXPECT_DOUBLE_EQ((*hourly)[0], 2.5);
  EXPECT_DOUBLE_EQ((*hourly)[1], 8.0);
  // Raw preserved as-is.
  auto raw = repo.Raw("k");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 8u);
}

TEST(RepositoryTest, HourlyInputStoredAsIs) {
  MetricsRepository repo;
  tsa::TimeSeries hourly("h", 0, tsa::Frequency::kHourly, {5, 6, 7});
  ASSERT_TRUE(repo.Ingest("k", hourly).ok());
  auto out = repo.Hourly("k");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(RepositoryTest, MissingKeyNotFound) {
  MetricsRepository repo;
  EXPECT_FALSE(repo.Hourly("missing").ok());
  EXPECT_EQ(repo.Hourly("missing").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(repo.Contains("missing"));
}

TEST(RepositoryTest, KeysSortedAndCounted) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("b", QuarterHourly({1, 2, 3, 4})).ok());
  ASSERT_TRUE(repo.Ingest("a", QuarterHourly({1, 2, 3, 4})).ok());
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.Keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(repo.Contains("a"));
}

TEST(RepositoryTest, ReingestReplaces) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 1, 1, 1})).ok());
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({9, 9, 9, 9})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  EXPECT_DOUBLE_EQ((*hourly)[0], 9.0);
}

TEST(RepositoryTest, RejectsEmptyInputs) {
  MetricsRepository repo;
  EXPECT_FALSE(repo.Ingest("", QuarterHourly({1, 2, 3, 4})).ok());
  EXPECT_FALSE(repo.Ingest("k", QuarterHourly({})).ok());
}

TEST(RepositoryTest, NanGapsSurviveAggregation) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest(
      "k", QuarterHourly({std::nan(""), std::nan(""), std::nan(""),
                          std::nan(""), 2.0, 2.0, 2.0, 2.0})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  EXPECT_TRUE(std::isnan((*hourly)[0]));
  EXPECT_DOUBLE_EQ((*hourly)[1], 2.0);
}

TEST(RepositoryTest, AppendExtendsHourlyIncrementally) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4})).ok());
  // Half an hour more: no new complete bucket yet.
  tsa::TimeSeries half("raw", 4 * 900, tsa::Frequency::kQuarterHourly,
                       {8, 8});
  ASSERT_TRUE(repo.Append("k", half).ok());
  EXPECT_EQ(repo.Hourly("k")->size(), 1u);
  EXPECT_EQ(repo.Raw("k")->size(), 6u);
  // The other half completes the bucket.
  tsa::TimeSeries rest("raw", 6 * 900, tsa::Frequency::kQuarterHourly,
                       {8, 8});
  ASSERT_TRUE(repo.Append("k", rest).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_EQ(hourly->size(), 2u);
  EXPECT_DOUBLE_EQ((*hourly)[0], 2.5);
  EXPECT_DOUBLE_EQ((*hourly)[1], 8.0);
}

TEST(RepositoryTest, AppendMatchesBulkIngest) {
  // Chunked appends must agree with a one-shot ingest of the same trace,
  // NaN buckets included.
  std::vector<double> trace;
  for (int i = 0; i < 16; ++i) {
    trace.push_back(i % 5 == 0 ? std::nan("") : static_cast<double>(i));
  }
  MetricsRepository bulk;
  ASSERT_TRUE(bulk.Ingest("k", QuarterHourly(trace)).ok());
  MetricsRepository chunked;
  for (std::size_t at = 0; at < trace.size(); at += 2) {
    tsa::TimeSeries chunk("raw", static_cast<std::int64_t>(at) * 900,
                          tsa::Frequency::kQuarterHourly,
                          {trace[at], trace[at + 1]});
    ASSERT_TRUE(chunked.Append("k", chunk).ok());
  }
  auto expected = bulk.Hourly("k");
  auto actual = chunked.Hourly("k");
  ASSERT_EQ(actual->size(), expected->size());
  for (std::size_t i = 0; i < expected->size(); ++i) {
    if (std::isnan((*expected)[i])) {
      EXPECT_TRUE(std::isnan((*actual)[i]));
    } else {
      EXPECT_DOUBLE_EQ((*actual)[i], (*expected)[i]);
    }
  }
}

TEST(RepositoryTest, AppendRejectsGapsAndMismatchedFrequency) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4})).ok());
  // Gap: starts one poll past the stored end.
  tsa::TimeSeries gap("raw", 5 * 900, tsa::Frequency::kQuarterHourly, {7});
  EXPECT_FALSE(repo.Append("k", gap).ok());
  // Wrong frequency.
  tsa::TimeSeries hourly("raw", 4 * 900, tsa::Frequency::kHourly, {7});
  EXPECT_FALSE(repo.Append("k", hourly).ok());
  // Empty chunk.
  EXPECT_FALSE(repo.Append("k", QuarterHourly({})).ok());
}

TEST(RepositoryTest, FindHourlyBorrowsWithoutCopy) {
  MetricsRepository repo;
  EXPECT_EQ(repo.FindHourly("missing"), nullptr);
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4})).ok());
  const auto* view = repo.FindHourly("k");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->size(), 1u);
  EXPECT_DOUBLE_EQ((*view)[0], 2.5);
}

TEST(RepositoryTest, SaveAllWritesFiles) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("inst/cpu", QuarterHourly({1, 2, 3, 4})).ok());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(repo.SaveAll(dir).ok());
  auto back = ReadSeriesCsv(dir + "/inst_cpu.csv");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
}

}  // namespace
}  // namespace capplan::repo
