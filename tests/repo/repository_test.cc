#include "repo/repository.h"

#include <cmath>
#include <fstream>

#include <gtest/gtest.h>

#include "repo/csv.h"

namespace capplan::repo {
namespace {

tsa::TimeSeries QuarterHourly(std::vector<double> v) {
  return tsa::TimeSeries("raw", 0, tsa::Frequency::kQuarterHourly,
                         std::move(v));
}

TEST(RepositoryTest, KeyFormat) {
  EXPECT_EQ(MetricsRepository::KeyFor("cdbm011", workload::Metric::kCpu),
            "cdbm011/cpu");
  EXPECT_EQ(
      MetricsRepository::KeyFor("cdbm012", workload::Metric::kLogicalIops),
      "cdbm012/logical_iops");
}

TEST(RepositoryTest, IngestAggregatesToHourly) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4, 8, 8, 8, 8})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  ASSERT_EQ(hourly->size(), 2u);
  EXPECT_DOUBLE_EQ((*hourly)[0], 2.5);
  EXPECT_DOUBLE_EQ((*hourly)[1], 8.0);
  // Raw preserved as-is.
  auto raw = repo.Raw("k");
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 8u);
}

TEST(RepositoryTest, HourlyInputStoredAsIs) {
  MetricsRepository repo;
  tsa::TimeSeries hourly("h", 0, tsa::Frequency::kHourly, {5, 6, 7});
  ASSERT_TRUE(repo.Ingest("k", hourly).ok());
  auto out = repo.Hourly("k");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
}

TEST(RepositoryTest, MissingKeyNotFound) {
  MetricsRepository repo;
  EXPECT_FALSE(repo.Hourly("missing").ok());
  EXPECT_EQ(repo.Hourly("missing").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(repo.Contains("missing"));
}

TEST(RepositoryTest, KeysSortedAndCounted) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("b", QuarterHourly({1, 2, 3, 4})).ok());
  ASSERT_TRUE(repo.Ingest("a", QuarterHourly({1, 2, 3, 4})).ok());
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.Keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(repo.Contains("a"));
}

TEST(RepositoryTest, ReingestReplaces) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 1, 1, 1})).ok());
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({9, 9, 9, 9})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  EXPECT_DOUBLE_EQ((*hourly)[0], 9.0);
}

TEST(RepositoryTest, RejectsEmptyInputs) {
  MetricsRepository repo;
  EXPECT_FALSE(repo.Ingest("", QuarterHourly({1, 2, 3, 4})).ok());
  EXPECT_FALSE(repo.Ingest("k", QuarterHourly({})).ok());
}

TEST(RepositoryTest, NanGapsSurviveAggregation) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest(
      "k", QuarterHourly({std::nan(""), std::nan(""), std::nan(""),
                          std::nan(""), 2.0, 2.0, 2.0, 2.0})).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_TRUE(hourly.ok());
  EXPECT_TRUE(std::isnan((*hourly)[0]));
  EXPECT_DOUBLE_EQ((*hourly)[1], 2.0);
}

TEST(RepositoryTest, AppendExtendsHourlyIncrementally) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4})).ok());
  // Half an hour more: no new complete bucket yet.
  tsa::TimeSeries half("raw", 4 * 900, tsa::Frequency::kQuarterHourly,
                       {8, 8});
  ASSERT_TRUE(repo.Append("k", half).ok());
  EXPECT_EQ(repo.Hourly("k")->size(), 1u);
  EXPECT_EQ(repo.Raw("k")->size(), 6u);
  // The other half completes the bucket.
  tsa::TimeSeries rest("raw", 6 * 900, tsa::Frequency::kQuarterHourly,
                       {8, 8});
  ASSERT_TRUE(repo.Append("k", rest).ok());
  auto hourly = repo.Hourly("k");
  ASSERT_EQ(hourly->size(), 2u);
  EXPECT_DOUBLE_EQ((*hourly)[0], 2.5);
  EXPECT_DOUBLE_EQ((*hourly)[1], 8.0);
}

TEST(RepositoryTest, AppendMatchesBulkIngest) {
  // Chunked appends must agree with a one-shot ingest of the same trace,
  // NaN buckets included.
  std::vector<double> trace;
  for (int i = 0; i < 16; ++i) {
    trace.push_back(i % 5 == 0 ? std::nan("") : static_cast<double>(i));
  }
  MetricsRepository bulk;
  ASSERT_TRUE(bulk.Ingest("k", QuarterHourly(trace)).ok());
  MetricsRepository chunked;
  for (std::size_t at = 0; at < trace.size(); at += 2) {
    tsa::TimeSeries chunk("raw", static_cast<std::int64_t>(at) * 900,
                          tsa::Frequency::kQuarterHourly,
                          {trace[at], trace[at + 1]});
    ASSERT_TRUE(chunked.Append("k", chunk).ok());
  }
  auto expected = bulk.Hourly("k");
  auto actual = chunked.Hourly("k");
  ASSERT_EQ(actual->size(), expected->size());
  for (std::size_t i = 0; i < expected->size(); ++i) {
    if (std::isnan((*expected)[i])) {
      EXPECT_TRUE(std::isnan((*actual)[i]));
    } else {
      EXPECT_DOUBLE_EQ((*actual)[i], (*expected)[i]);
    }
  }
}

TEST(RepositoryTest, AppendRejectsGapsAndMismatchedFrequency) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4})).ok());
  // Gap: starts one poll past the stored end.
  tsa::TimeSeries gap("raw", 5 * 900, tsa::Frequency::kQuarterHourly, {7});
  EXPECT_FALSE(repo.Append("k", gap).ok());
  // Wrong frequency.
  tsa::TimeSeries hourly("raw", 4 * 900, tsa::Frequency::kHourly, {7});
  EXPECT_FALSE(repo.Append("k", hourly).ok());
  // Empty chunk.
  EXPECT_FALSE(repo.Append("k", QuarterHourly({})).ok());
}

TEST(RepositoryTest, FindHourlyBorrowsWithoutCopy) {
  MetricsRepository repo;
  EXPECT_EQ(repo.FindHourly("missing"), nullptr);
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4})).ok());
  const auto* view = repo.FindHourly("k");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->size(), 1u);
  EXPECT_DOUBLE_EQ((*view)[0], 2.5);
}

TEST(RepositoryTest, SaveAllWritesFiles) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("inst/cpu", QuarterHourly({1, 2, 3, 4})).ok());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(repo.SaveAll(dir).ok());
  auto back = ReadSeriesCsv(dir + "/inst_cpu.csv");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
}

TEST(RepositoryTest, SaveAllNamesFailingKeyOnUnwritableDir) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("inst/cpu", QuarterHourly({1, 2, 3, 4})).ok());
  // A regular file where the directory should be: every write under it
  // fails, regardless of the uid running the test.
  const std::string blocked = ::testing::TempDir() + "/saveall_blocked";
  { std::ofstream f(blocked); ASSERT_TRUE(f.is_open()); }
  const Status status = repo.SaveAll(blocked);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // The typed error names the key whose write failed, not just the errno.
  EXPECT_NE(status.message().find("inst/cpu"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("SaveAll"), std::string::npos);
}

// The FindHourly lifetime contract (see repository.h): the borrow is
// tick-scoped and ANY mutation under the key invalidates it. The regression
// here is the service tick path — Append then FindHourly again — which must
// observe the appended data through a fresh borrow with no dangling reads
// (ASan runs this suite in CI).
TEST(RepositoryTest, FindHourlyBorrowInvalidatedByMutation) {
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({1, 2, 3, 4})).ok());
  const auto* before = repo.FindHourly("k");
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->size(), 1u);

  // Mutation #1: Append completes a new hourly bucket.
  tsa::TimeSeries next("raw", 4 * 900, tsa::Frequency::kQuarterHourly,
                       {8, 8, 8, 8});
  ASSERT_TRUE(repo.Append("k", next).ok());
  const auto* after_append = repo.FindHourly("k");
  ASSERT_NE(after_append, nullptr);
  ASSERT_EQ(after_append->size(), 2u);
  EXPECT_DOUBLE_EQ((*after_append)[0], 2.5);
  EXPECT_DOUBLE_EQ((*after_append)[1], 8.0);

  // Mutation #2: re-Ingest replaces the series outright; the fresh borrow
  // sees the replacement even though the lengths collide.
  ASSERT_TRUE(repo.Ingest("k", QuarterHourly({4, 4, 4, 4, 6, 6, 6, 6})).ok());
  const auto* after_ingest = repo.FindHourly("k");
  ASSERT_NE(after_ingest, nullptr);
  ASSERT_EQ(after_ingest->size(), 2u);
  EXPECT_DOUBLE_EQ((*after_ingest)[0], 4.0);
  EXPECT_DOUBLE_EQ((*after_ingest)[1], 6.0);

  // Mutation #3: EvictViews drops the cache; the next borrow rebuilds from
  // the compressed tier and still agrees.
  repo.EvictViews();
  const auto* rebuilt = repo.FindHourly("k");
  ASSERT_NE(rebuilt, nullptr);
  ASSERT_EQ(rebuilt->size(), 2u);
  EXPECT_DOUBLE_EQ((*rebuilt)[1], 6.0);
}

TEST(RepositoryTest, FindHourlyBorrowSurvivesOtherKeyMutations) {
  // Mutations under other keys do not move the view's map node; long tick
  // loops that interleave keys stay valid (documented, and pinned here so a
  // container change that breaks node stability fails loudly under ASan).
  MetricsRepository repo;
  ASSERT_TRUE(repo.Ingest("a", QuarterHourly({1, 2, 3, 4})).ok());
  const auto* view = repo.FindHourly("a");
  ASSERT_NE(view, nullptr);
  for (int i = 0; i < 16; ++i) {
    std::string key = "b";
    key += std::to_string(i);
    ASSERT_TRUE(repo.Ingest(key, QuarterHourly({5, 5, 5, 5})).ok());
  }
  EXPECT_DOUBLE_EQ((*view)[0], 2.5);
}

TEST(RepositoryTest, HourlyTailReturnsRecentWindow) {
  MetricsRepository repo;
  std::vector<double> trace;
  for (int i = 0; i < 24; ++i) trace.push_back(static_cast<double>(i));
  ASSERT_TRUE(
      repo.Ingest("k", tsa::TimeSeries("h", 0, tsa::Frequency::kHourly, trace))
          .ok());
  auto tail = repo.HourlyTail("k", 6);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 6u);
  EXPECT_DOUBLE_EQ((*tail)[0], 18.0);
  EXPECT_EQ(tail->start_epoch(), 18 * 3600);
  // Longer than the series: the whole series comes back.
  auto all = repo.HourlyTail("k", 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 24u);
  EXPECT_FALSE(repo.HourlyTail("missing", 3).ok());
}

TEST(RepositoryTest, SegmentsRoundTripBothTiers) {
  MetricsRepository repo;
  std::vector<double> quarters;
  for (int i = 0; i < 48; ++i) {
    quarters.push_back(i % 7 == 0 ? std::nan("")
                                  : std::round(4.0 * std::sin(i / 3.0)) / 4.0);
  }
  ASSERT_TRUE(repo.Ingest("inst/cpu", QuarterHourly(quarters)).ok());
  ASSERT_TRUE(
      repo.Ingest("inst/mem",
                  tsa::TimeSeries("h", 0, tsa::Frequency::kHourly, {7, 8, 9}))
          .ok());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(repo.SaveSegments(dir).ok());

  MetricsRepository restored;
  ASSERT_TRUE(restored.LoadSegments(dir).ok());
  EXPECT_EQ(restored.Keys(), repo.Keys());
  for (const std::string& key : repo.Keys()) {
    auto want_raw = repo.Raw(key);
    auto got_raw = restored.Raw(key);
    ASSERT_TRUE(want_raw.ok() && got_raw.ok()) << key;
    ASSERT_EQ(got_raw->size(), want_raw->size()) << key;
    EXPECT_EQ(got_raw->start_epoch(), want_raw->start_epoch());
    EXPECT_EQ(got_raw->frequency(), want_raw->frequency());
    auto want_hourly = repo.Hourly(key);
    auto got_hourly = restored.Hourly(key);
    ASSERT_TRUE(want_hourly.ok() && got_hourly.ok()) << key;
    ASSERT_EQ(got_hourly->size(), want_hourly->size()) << key;
    for (std::size_t i = 0; i < want_hourly->size(); ++i) {
      if (std::isnan((*want_hourly)[i])) {
        EXPECT_TRUE(std::isnan((*got_hourly)[i])) << key << " " << i;
      } else {
        EXPECT_DOUBLE_EQ((*got_hourly)[i], (*want_hourly)[i]) << key;
      }
    }
    EXPECT_EQ(*restored.RawEndEpoch(key), *repo.RawEndEpoch(key));
  }
  // The restored repository keeps ingesting from where the segments end.
  tsa::TimeSeries more("raw", *restored.RawEndEpoch("inst/cpu"),
                       tsa::Frequency::kQuarterHourly, {1, 1, 1, 1});
  ASSERT_TRUE(restored.Append("inst/cpu", more).ok());
  EXPECT_EQ(restored.Hourly("inst/cpu")->size(),
            repo.Hourly("inst/cpu")->size() + 1);
}

}  // namespace
}  // namespace capplan::repo
