#include "repo/model_store.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/split.h"

namespace capplan::repo {
namespace {

StoredModel MakeModel(const std::string& key, double rmse,
                      std::int64_t fitted_at) {
  StoredModel m;
  m.key = key;
  m.technique = "SARIMAX_FFT_EXOG";
  m.spec = "(1,1,2)(1,1,1,24)";
  m.test_rmse = rmse;
  m.test_mape = 12.5;
  m.fitted_at_epoch = fitted_at;
  return m;
}

TEST(ModelRepositoryTest, PutAndGet) {
  ModelRepository repo;
  repo.Put(MakeModel("cdbm011/cpu", 8.42, 1000));
  auto m = repo.Get("cdbm011/cpu");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->spec, "(1,1,2)(1,1,1,24)");
  EXPECT_DOUBLE_EQ(m->test_rmse, 8.42);
  EXPECT_TRUE(repo.Contains("cdbm011/cpu"));
  EXPECT_FALSE(repo.Get("other").ok());
}

TEST(ModelRepositoryTest, PutReplaces) {
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 0));
  repo.Put(MakeModel("k", 5.0, 1));
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_DOUBLE_EQ(repo.Get("k")->test_rmse, 5.0);
}

TEST(StalenessTest, MissingModelIsStale) {
  ModelRepository repo;
  EXPECT_TRUE(repo.IsStale("absent", 0));
}

TEST(StalenessTest, FreshModelNotStale) {
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 1000));
  EXPECT_FALSE(repo.IsStale("k", 1000 + 3600));
}

TEST(StalenessTest, OneWeekAgeTriggersRetrain) {
  // The paper's policy: "used for a period of one week".
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 0));
  const std::int64_t week = 7 * 24 * 3600;
  EXPECT_FALSE(repo.IsStale("k", week - 1));
  EXPECT_TRUE(repo.IsStale("k", week + 1));
}

TEST(StalenessTest, RmseDegradationTriggersRetrain) {
  // "or until the model's RMSE drops to a point where it is rendered
  // useless".
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 1000));
  EXPECT_FALSE(repo.IsStale("k", 2000, 15.0));
  EXPECT_TRUE(repo.IsStale("k", 2000, 25.0));  // 2.5x the stored RMSE
}

TEST(StalenessTest, UnknownCurrentRmseIgnored) {
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 1000));
  EXPECT_FALSE(repo.IsStale("k", 2000, -1.0));
}

TEST(StalenessTest, CustomPolicy) {
  StalenessPolicy policy;
  policy.max_age_seconds = 100;
  policy.rmse_degradation_factor = 1.1;
  ModelRepository repo(policy);
  repo.Put(MakeModel("k", 10.0, 0));
  EXPECT_TRUE(repo.IsStale("k", 101));
  EXPECT_TRUE(repo.IsStale("k", 50, 11.5));
  EXPECT_FALSE(repo.IsStale("k", 50, 10.5));
}

TEST(ModelRepositoryTest, SaveLoadRoundTrip) {
  ModelRepository repo;
  repo.Put(MakeModel("cdbm011/cpu", 8.42, 1559520000));
  repo.Put(MakeModel("cdbm012/logical_iops", 52879.49, 1559520001));
  const std::string path = ::testing::TempDir() + "/models.csv";
  ASSERT_TRUE(repo.Save(path).ok());

  ModelRepository loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  auto m = loaded.Get("cdbm012/logical_iops");
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->test_rmse, 52879.49);
  EXPECT_EQ(m->fitted_at_epoch, 1559520001);
  EXPECT_EQ(m->technique, "SARIMAX_FFT_EXOG");
}

TEST(ModelRepositoryTest, CoefficientsSurviveSaveLoad) {
  // Warm-start hints: the dense winner coefficients must round-trip at full
  // double precision (the selector seeds simplex vertices from them).
  ModelRepository repo;
  StoredModel m = MakeModel("cdbm011/cpu", 8.42, 1559520000);
  m.ar_coef = {0.123456789012345678, -0.5, 1e-17};
  m.ma_coef = {0.25};
  repo.Put(m);
  repo.Put(MakeModel("cdbm012/cpu", 9.0, 1559520001));  // no coefficients
  const std::string path = ::testing::TempDir() + "/models_coef.csv";
  ASSERT_TRUE(repo.Save(path).ok());

  ModelRepository loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  auto got = loaded.Get("cdbm011/cpu");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->ar_coef.size(), 3u);
  EXPECT_DOUBLE_EQ(got->ar_coef[0], 0.123456789012345678);
  EXPECT_DOUBLE_EQ(got->ar_coef[1], -0.5);
  EXPECT_DOUBLE_EQ(got->ar_coef[2], 1e-17);
  ASSERT_EQ(got->ma_coef.size(), 1u);
  EXPECT_DOUBLE_EQ(got->ma_coef[0], 0.25);
  auto plain = loaded.Get("cdbm012/cpu");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->ar_coef.empty());
  EXPECT_TRUE(plain->ma_coef.empty());
}

TEST(ModelRepositoryTest, CoefficientEncodingRoundTrip) {
  EXPECT_EQ(EncodeCoefficients({}), "");
  const std::vector<double> v = {0.5, -1.25, 3.0};
  auto back = DecodeCoefficients(EncodeCoefficients(v));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, v);
  EXPECT_FALSE(DecodeCoefficients("0.5;abc").ok());
}

TEST(ModelRepositoryTest, LoadsLegacySixColumnFiles) {
  // Pre-coefficient files (6-column header) still load; hints stay empty.
  const std::string path = ::testing::TempDir() + "/models_legacy.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "key,technique,spec,test_rmse,test_mape,fitted_at_epoch\n"
        "cdbm011/cpu,SARIMAX,\"(1,1,1)(0,1,1,24)\",8.5,12.0,1559520000\n",
        f);
    std::fclose(f);
  }
  ModelRepository repo;
  ASSERT_TRUE(repo.Load(path).ok());
  auto m = repo.Get("cdbm011/cpu");
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->test_rmse, 8.5);
  EXPECT_TRUE(m->ar_coef.empty());
  EXPECT_TRUE(m->ma_coef.empty());
}

TEST(ModelRepositoryTest, LoadMissingFileFails) {
  ModelRepository repo;
  EXPECT_FALSE(repo.Load("/no/such/file.csv").ok());
}

TEST(ChampionChallengerTest, PromoteAssignsGenerationsAndKeepsLineage) {
  ModelRepository repo;
  StoredModel first = MakeModel("k", 10.0, 100);
  repo.Promote(first);
  EXPECT_EQ(repo.Get("k")->generation, 1);
  EXPECT_FALSE(repo.HasPrevious("k"));  // a first champion has no lineage

  StoredModel second = MakeModel("k", 8.0, 200);
  repo.Promote(second);
  EXPECT_EQ(repo.Get("k")->generation, 2);
  ASSERT_TRUE(repo.HasPrevious("k"));
  auto prev = repo.GetPrevious("k");
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(prev->generation, 1);
  EXPECT_DOUBLE_EQ(prev->test_rmse, 10.0);
}

TEST(ChampionChallengerTest, ExplicitGenerationIsPreservedOnReplay) {
  ModelRepository repo;
  StoredModel replayed = MakeModel("k", 10.0, 100);
  replayed.generation = 7;  // a journalled promotion carries its number
  repo.Promote(replayed);
  EXPECT_EQ(repo.Get("k")->generation, 7);
}

TEST(ChampionChallengerTest, RollbackRestoresPreviousAndClearsSlot) {
  ModelRepository repo;
  repo.Promote(MakeModel("k", 10.0, 100));
  repo.Promote(MakeModel("k", 8.0, 200));
  auto restored = repo.Rollback("k");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->generation, 1);
  EXPECT_DOUBLE_EQ(repo.Get("k")->test_rmse, 10.0);
  // The discarded model is exactly what went bad — it must never be rolled
  // back *to*; a second rollback needs a new promotion first.
  EXPECT_FALSE(repo.HasPrevious("k"));
  EXPECT_FALSE(repo.Rollback("k").ok());
}

TEST(ChampionChallengerTest, RollbackWithoutLineageIsNotFound) {
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 100));  // Put is lineage-neutral
  EXPECT_FALSE(repo.Rollback("k").ok());
}

TEST(ChampionChallengerTest, ReinstateInstallsChampionAndClearsSlot) {
  ModelRepository repo;
  repo.Promote(MakeModel("k", 10.0, 100));
  repo.Promote(MakeModel("k", 8.0, 200));
  StoredModel journalled = MakeModel("k", 10.0, 100);
  journalled.generation = 1;
  repo.Reinstate(journalled);
  EXPECT_EQ(repo.Get("k")->generation, 1);
  EXPECT_FALSE(repo.HasPrevious("k"));
}

TEST(ChampionChallengerTest, UpdateLiveMapeTravelsWithTheDemotedChampion) {
  ModelRepository repo;
  repo.Promote(MakeModel("k", 10.0, 100));
  repo.UpdateLiveMape("k", 4.25);
  repo.Promote(MakeModel("k", 8.0, 200));
  auto prev = repo.GetPrevious("k");
  ASSERT_TRUE(prev.ok());
  EXPECT_DOUBLE_EQ(prev->live_mape, 4.25);
  repo.UpdateLiveMape("absent", 1.0);  // no-op, must not crash
}

TEST(ModelRepositoryTest, LineageColumnsSurviveSaveLoad) {
  ModelRepository repo;
  StoredModel m = MakeModel("cdbm011/cpu", 8.42, 1559520000);
  m.generation = 3;
  m.promoted_at_epoch = 1559520777;
  m.live_mape = 6.125;
  repo.Put(m);
  const std::string path = ::testing::TempDir() + "/models_lineage.csv";
  ASSERT_TRUE(repo.Save(path).ok());

  ModelRepository loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  auto got = loaded.Get("cdbm011/cpu");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->generation, 3);
  EXPECT_EQ(got->promoted_at_epoch, 1559520777);
  EXPECT_DOUBLE_EQ(got->live_mape, 6.125);
}

TEST(ModelRepositoryTest, LoadsLegacyEightColumnFiles) {
  // Pre-lineage files (8-column header, with coefficients) still load;
  // models come back with no generation and a never-scored live MAPE.
  const std::string path = ::testing::TempDir() + "/models_legacy8.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "key,technique,spec,test_rmse,test_mape,fitted_at_epoch,"
        "ar_coef,ma_coef\n"
        "cdbm011/cpu,SARIMAX,\"(1,1,1)(0,1,1,24)\",8.5,12.0,1559520000,"
        "0.5;-0.25,0.125\n",
        f);
    std::fclose(f);
  }
  ModelRepository repo;
  ASSERT_TRUE(repo.Load(path).ok());
  auto m = repo.Get("cdbm011/cpu");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->ar_coef, (std::vector<double>{0.5, -0.25}));
  EXPECT_EQ(m->generation, 0);
  EXPECT_EQ(m->promoted_at_epoch, 0);
  EXPECT_LT(m->live_mape, 0.0);
}

TEST(ModelRepositoryTest, KeysListing) {
  ModelRepository repo;
  repo.Put(MakeModel("b", 1.0, 0));
  repo.Put(MakeModel("a", 1.0, 0));
  EXPECT_EQ(repo.Keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(ModelRepositoryTest, PeriodsSurviveSaveLoad) {
  // Selection-time seasonal periods (docs/selection.md) round-trip through
  // the registry CSV so /v1/decompose can reuse the selector's routing
  // after a restart instead of re-detecting.
  ModelRepository repo;
  StoredModel m = MakeModel("cdbm011/cpu", 8.42, 1559520000);
  m.technique = "TBATS";
  m.spec = "TBATS(boxcox=n,trend=y,damped=n,arma=(0,0),seasons={24:2,168:1})";
  m.periods = {24.0, 168.0};
  repo.Put(m);
  repo.Put(MakeModel("cdbm012/cpu", 9.0, 1559520001));  // no periods
  const std::string path = ::testing::TempDir() + "/models_periods.csv";
  ASSERT_TRUE(repo.Save(path).ok());

  ModelRepository loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  auto got = loaded.Get("cdbm011/cpu");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->technique, "TBATS");
  EXPECT_EQ(got->periods, (std::vector<double>{24.0, 168.0}));
  auto plain = loaded.Get("cdbm012/cpu");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->periods.empty());
}

TEST(ModelRepositoryTest, LoadsLegacyElevenColumnFiles) {
  // Pre-periods files (11-column header, with lineage) still load; periods
  // stay empty until the next refit re-routes the series.
  const std::string path = ::testing::TempDir() + "/models_legacy11.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "key,technique,spec,test_rmse,test_mape,fitted_at_epoch,"
        "ar_coef,ma_coef,generation,promoted_at_epoch,live_mape\n"
        "cdbm011/cpu,SARIMAX,\"(1,1,1)(0,1,1,24)\",8.5,12.0,1559520000,"
        "0.5;-0.25,0.125,3,1559520777,6.125\n",
        f);
    std::fclose(f);
  }
  ModelRepository repo;
  ASSERT_TRUE(repo.Load(path).ok());
  auto m = repo.Get("cdbm011/cpu");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->generation, 3);
  EXPECT_DOUBLE_EQ(m->live_mape, 6.125);
  EXPECT_TRUE(m->periods.empty());
}

TEST(ModelRepositoryTest, UnknownTechniqueDegradesToRowError) {
  // A registry written by a newer build (or a hand-edited row) must not
  // abort the whole load: the bad row is skipped with a per-row error and
  // every parseable row still lands.
  const std::string path = ::testing::TempDir() + "/models_mixed.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "key,technique,spec,test_rmse,test_mape,fitted_at_epoch,"
        "ar_coef,ma_coef,generation,promoted_at_epoch,live_mape,periods\n"
        "cdbm011/cpu,SARIMAX,\"(1,1,1)(0,1,1,24)\",8.5,12.0,1559520000,"
        ",,1,1559520000,-1,\n"
        "cdbm012/cpu,FANCY_ML,transformer-v2,4.2,6.0,1559520001,"
        ",,1,1559520001,-1,\n"
        "cdbm013/cpu,TBATS,\"TBATS(boxcox=n,trend=y,damped=n,arma=(1,0),"
        "seasons={24:2,168:1})\",7.5,11.0,1559520002,"
        ",,2,1559520002,-1,24;168\n",
        f);
    std::fclose(f);
  }
  ModelRepository repo;
  ModelRepository::LoadReport report;
  ASSERT_TRUE(repo.Load(path, &report).ok());
  EXPECT_EQ(report.loaded, 2u);
  ASSERT_EQ(report.row_errors.size(), 1u);
  EXPECT_NE(report.row_errors[0].find("FANCY_ML"), std::string::npos);
  EXPECT_NE(report.row_errors[0].find("cdbm012/cpu"), std::string::npos);
  EXPECT_TRUE(repo.Contains("cdbm011/cpu"));
  EXPECT_FALSE(repo.Contains("cdbm012/cpu"));
  auto tbats = repo.Get("cdbm013/cpu");
  ASSERT_TRUE(tbats.ok());
  EXPECT_EQ(tbats->periods, (std::vector<double>{24.0, 168.0}));
}

TEST(ModelRepositoryTest, KnownTechniqueListMatchesCoreNames) {
  // IsKnownTechnique is duplicated below the core layer on purpose (repo
  // cannot depend on core); this pins the two lists together.
  using core::Technique;
  for (Technique t :
       {Technique::kArima, Technique::kSarimax, Technique::kSarimaxFftExog,
        Technique::kHes, Technique::kTbats, Technique::kBaseline,
        Technique::kAuto}) {
    EXPECT_TRUE(IsKnownTechnique(core::TechniqueName(t)))
        << core::TechniqueName(t);
  }
  EXPECT_FALSE(IsKnownTechnique("FANCY_ML"));
  EXPECT_FALSE(IsKnownTechnique(""));
  EXPECT_FALSE(IsKnownTechnique("tbats"));  // case-sensitive on purpose
}

}  // namespace
}  // namespace capplan::repo
