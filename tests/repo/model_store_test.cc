#include "repo/model_store.h"

#include <gtest/gtest.h>

namespace capplan::repo {
namespace {

StoredModel MakeModel(const std::string& key, double rmse,
                      std::int64_t fitted_at) {
  StoredModel m;
  m.key = key;
  m.technique = "SARIMAX_FFT_EXOG";
  m.spec = "(1,1,2)(1,1,1,24)";
  m.test_rmse = rmse;
  m.test_mape = 12.5;
  m.fitted_at_epoch = fitted_at;
  return m;
}

TEST(ModelRepositoryTest, PutAndGet) {
  ModelRepository repo;
  repo.Put(MakeModel("cdbm011/cpu", 8.42, 1000));
  auto m = repo.Get("cdbm011/cpu");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->spec, "(1,1,2)(1,1,1,24)");
  EXPECT_DOUBLE_EQ(m->test_rmse, 8.42);
  EXPECT_TRUE(repo.Contains("cdbm011/cpu"));
  EXPECT_FALSE(repo.Get("other").ok());
}

TEST(ModelRepositoryTest, PutReplaces) {
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 0));
  repo.Put(MakeModel("k", 5.0, 1));
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_DOUBLE_EQ(repo.Get("k")->test_rmse, 5.0);
}

TEST(StalenessTest, MissingModelIsStale) {
  ModelRepository repo;
  EXPECT_TRUE(repo.IsStale("absent", 0));
}

TEST(StalenessTest, FreshModelNotStale) {
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 1000));
  EXPECT_FALSE(repo.IsStale("k", 1000 + 3600));
}

TEST(StalenessTest, OneWeekAgeTriggersRetrain) {
  // The paper's policy: "used for a period of one week".
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 0));
  const std::int64_t week = 7 * 24 * 3600;
  EXPECT_FALSE(repo.IsStale("k", week - 1));
  EXPECT_TRUE(repo.IsStale("k", week + 1));
}

TEST(StalenessTest, RmseDegradationTriggersRetrain) {
  // "or until the model's RMSE drops to a point where it is rendered
  // useless".
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 1000));
  EXPECT_FALSE(repo.IsStale("k", 2000, 15.0));
  EXPECT_TRUE(repo.IsStale("k", 2000, 25.0));  // 2.5x the stored RMSE
}

TEST(StalenessTest, UnknownCurrentRmseIgnored) {
  ModelRepository repo;
  repo.Put(MakeModel("k", 10.0, 1000));
  EXPECT_FALSE(repo.IsStale("k", 2000, -1.0));
}

TEST(StalenessTest, CustomPolicy) {
  StalenessPolicy policy;
  policy.max_age_seconds = 100;
  policy.rmse_degradation_factor = 1.1;
  ModelRepository repo(policy);
  repo.Put(MakeModel("k", 10.0, 0));
  EXPECT_TRUE(repo.IsStale("k", 101));
  EXPECT_TRUE(repo.IsStale("k", 50, 11.5));
  EXPECT_FALSE(repo.IsStale("k", 50, 10.5));
}

TEST(ModelRepositoryTest, SaveLoadRoundTrip) {
  ModelRepository repo;
  repo.Put(MakeModel("cdbm011/cpu", 8.42, 1559520000));
  repo.Put(MakeModel("cdbm012/logical_iops", 52879.49, 1559520001));
  const std::string path = ::testing::TempDir() + "/models.csv";
  ASSERT_TRUE(repo.Save(path).ok());

  ModelRepository loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  auto m = loaded.Get("cdbm012/logical_iops");
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->test_rmse, 52879.49);
  EXPECT_EQ(m->fitted_at_epoch, 1559520001);
  EXPECT_EQ(m->technique, "SARIMAX_FFT_EXOG");
}

TEST(ModelRepositoryTest, LoadMissingFileFails) {
  ModelRepository repo;
  EXPECT_FALSE(repo.Load("/no/such/file.csv").ok());
}

TEST(ModelRepositoryTest, KeysListing) {
  ModelRepository repo;
  repo.Put(MakeModel("b", 1.0, 0));
  repo.Put(MakeModel("a", 1.0, 0));
  EXPECT_EQ(repo.Keys(), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace capplan::repo
