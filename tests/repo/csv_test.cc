#include "repo/csv.h"

#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace capplan::repo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTripSimpleTable) {
  CsvTable t;
  t.header = {"a", "b"};
  t.rows = {{"1", "x"}, {"2", "y"}};
  const std::string path = TempPath("simple.csv");
  ASSERT_TRUE(WriteCsv(path, t).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->header, t.header);
  EXPECT_EQ(back->rows, t.rows);
}

TEST(CsvTest, QuotedFieldsRoundTrip) {
  CsvTable t;
  t.header = {"name", "value"};
  t.rows = {{"has,comma", "has\"quote"}, {"plain", "also plain"}};
  const std::string path = TempPath("quoted.csv");
  ASSERT_TRUE(WriteCsv(path, t).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows[0][0], "has,comma");
  EXPECT_EQ(back->rows[0][1], "has\"quote");
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path/file.csv").ok());
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvTable t;
  t.header = {"a"};
  EXPECT_FALSE(WriteCsv("/nonexistent/dir/file.csv", t).ok());
}

TEST(SeriesCsvTest, RoundTripPreservesEverything) {
  tsa::TimeSeries ts("cdbm011/cpu", 1559520000, tsa::Frequency::kHourly,
                     {1.5, 2.25, std::nan(""), 4.0});
  const std::string path = TempPath("series.csv");
  ASSERT_TRUE(WriteSeriesCsv(path, ts).ok());
  auto back = ReadSeriesCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "cdbm011/cpu");
  EXPECT_EQ(back->start_epoch(), 1559520000);
  EXPECT_EQ(back->frequency(), tsa::Frequency::kHourly);
  ASSERT_EQ(back->size(), 4u);
  EXPECT_DOUBLE_EQ((*back)[0], 1.5);
  EXPECT_DOUBLE_EQ((*back)[1], 2.25);
  EXPECT_TRUE(std::isnan((*back)[2]));
  EXPECT_DOUBLE_EQ((*back)[3], 4.0);
}

TEST(SeriesCsvTest, FullPrecisionRoundTrip) {
  const double v = 52879.490000000001;
  tsa::TimeSeries ts("m", 0, tsa::Frequency::kDaily, {v});
  const std::string path = TempPath("precision.csv");
  ASSERT_TRUE(WriteSeriesCsv(path, ts).ok());
  auto back = ReadSeriesCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ((*back)[0], v);
}

TEST(SeriesCsvTest, NameWithCommaSurvives) {
  tsa::TimeSeries ts("weird,name", 10, tsa::Frequency::kWeekly, {1.0});
  const std::string path = TempPath("comma_name.csv");
  ASSERT_TRUE(WriteSeriesCsv(path, ts).ok());
  auto back = ReadSeriesCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "weird,name");
}

TEST(SeriesCsvTest, ReadRejectsGarbage) {
  const std::string path = TempPath("garbage.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not,a,series\n1,2,3\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadSeriesCsv(path).ok());
}

}  // namespace
}  // namespace capplan::repo
