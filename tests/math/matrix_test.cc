#include "math/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::math {
namespace {

TEST(MatrixTest, IdentityAndIndexing) {
  Matrix m = Matrix::Identity(3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(MatrixTest, FromRowsAndTranspose) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::Identity(2);
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 2.0);
  Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  Matrix s = a.ScaledBy(0.5);
  EXPECT_DOUBLE_EQ(s(1, 0), 1.5);
}

TEST(MatrixTest, ApplyMatchesManualProduct) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<double> v{1, 0, -1};
  const std::vector<double> out = a.Apply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(MatrixTest, RowColExtraction) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(a.Row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(a.Col(0), (std::vector<double>{1, 3}));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix a = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
}

TEST(LeastSquaresTest, ExactSquareSystem) {
  Matrix a = Matrix::FromRows({{2, 0}, {0, 3}});
  auto x = SolveLeastSquares(a, {4, 9});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(LeastSquaresTest, OverdeterminedLineFit) {
  // Fit y = 2x + 1 with noiseless data.
  Matrix a(5, 2);
  std::vector<double> b(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
    b[i] = 1.0 + 2.0 * i;
  }
  auto x = SolveLeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 2.0, 1e-10);
}

TEST(LeastSquaresTest, MinimizesResidualOnInconsistentSystem) {
  Matrix a = Matrix::FromRows({{1.0}, {1.0}});
  auto x = SolveLeastSquares(a, {0.0, 2.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);  // the mean minimizes SSE
}

TEST(LeastSquaresTest, RejectsRankDeficient) {
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  auto x = SolveLeastSquares(a, {1, 2, 3});
  EXPECT_FALSE(x.ok());
}

TEST(LeastSquaresTest, RejectsUnderdetermined) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});
  auto x = SolveLeastSquares(a, {1});
  EXPECT_FALSE(x.ok());
}

TEST(LeastSquaresTest, RejectsSizeMismatch) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  auto x = SolveLeastSquares(a, {1, 2, 3});
  EXPECT_FALSE(x.ok());
}

TEST(CholeskyTest, FactorOfSpdMatrix) {
  Matrix s = Matrix::FromRows({{4, 2}, {2, 3}});
  auto l = CholeskyFactor(s);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(CholeskyTest, SolveRoundTrip) {
  Matrix s = Matrix::FromRows({{4, 2}, {2, 3}});
  const std::vector<double> x_true{1.0, -2.0};
  const std::vector<double> b = s.Apply(x_true);
  auto x = SolveCholesky(s, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], -2.0, 1e-10);
}

TEST(CholeskyTest, RejectsNonSpd) {
  Matrix s = Matrix::FromRows({{1, 2}, {2, 1}});  // indefinite
  EXPECT_FALSE(CholeskyFactor(s).ok());
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix s(2, 3);
  EXPECT_FALSE(CholeskyFactor(s).ok());
}

TEST(InverseTest, InverseTimesSelfIsIdentity) {
  Matrix a = Matrix::FromRows({{4, 7}, {2, 6}});
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  Matrix prod = a * *inv;
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-10);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-10);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-10);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-10);
}

TEST(InverseTest, RejectsSingular) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  EXPECT_FALSE(Inverse(a).ok());
}

}  // namespace
}  // namespace capplan::math
