#include "math/polynomial.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::math {
namespace {

TEST(PolyTest, Multiply) {
  // (1 + x)(1 - x) = 1 - x^2.
  const auto prod = PolyMultiply({1, 1}, {1, -1});
  EXPECT_EQ(prod, (std::vector<double>{1, 0, -1}));
}

TEST(PolyTest, MultiplyEmpty) {
  EXPECT_TRUE(PolyMultiply({}, {1, 2}).empty());
}

TEST(PolyTest, ArPolynomialSignConvention) {
  // phi = {0.5, -0.3} -> 1 - 0.5B + 0.3B^2.
  EXPECT_EQ(ArPolynomial({0.5, -0.3}), (std::vector<double>{1, -0.5, 0.3}));
}

TEST(PolyTest, MaPolynomialSignConvention) {
  EXPECT_EQ(MaPolynomial({0.4}), (std::vector<double>{1, 0.4}));
}

TEST(PolyTest, SeasonalPolynomials) {
  const auto sar = SeasonalArPolynomial({0.5}, 4);
  EXPECT_EQ(sar, (std::vector<double>{1, 0, 0, 0, -0.5}));
  const auto sma = SeasonalMaPolynomial({0.2, 0.1}, 3);
  ASSERT_EQ(sma.size(), 7u);
  EXPECT_DOUBLE_EQ(sma[3], 0.2);
  EXPECT_DOUBLE_EQ(sma[6], 0.1);
}

TEST(PolyTest, DifferencePolynomial) {
  // (1-B): {1,-1}; (1-B)^2: {1,-2,1}.
  EXPECT_EQ(DifferencePolynomial(1, 0, 0), (std::vector<double>{1, -1}));
  EXPECT_EQ(DifferencePolynomial(2, 0, 0), (std::vector<double>{1, -2, 1}));
  // (1-B)(1-B^4).
  const auto d = DifferencePolynomial(1, 1, 4);
  ASSERT_EQ(d.size(), 6u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], -1.0);
  EXPECT_DOUBLE_EQ(d[4], -1.0);
  EXPECT_DOUBLE_EQ(d[5], 1.0);
}

TEST(PolyTest, CoefficientRoundTrip) {
  const std::vector<double> phi{0.5, -0.2};
  EXPECT_EQ(ArCoefficientsFromPolynomial(ArPolynomial(phi)), phi);
  const std::vector<double> theta{0.3, 0.1};
  EXPECT_EQ(MaCoefficientsFromPolynomial(MaPolynomial(theta)), theta);
}

TEST(PsiWeightsTest, PureArExponentialDecay) {
  // AR(1) with phi=0.5: psi_j = 0.5^j.
  const auto psi = PsiWeights({0.5}, {}, 6);
  for (std::size_t j = 0; j < psi.size(); ++j) {
    EXPECT_NEAR(psi[j], std::pow(0.5, static_cast<double>(j)), 1e-12);
  }
}

TEST(PsiWeightsTest, PureMaTruncates) {
  // MA(2): psi = {1, theta1, theta2, 0, 0, ...}.
  const auto psi = PsiWeights({}, {0.4, 0.2}, 5);
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  EXPECT_DOUBLE_EQ(psi[1], 0.4);
  EXPECT_DOUBLE_EQ(psi[2], 0.2);
  EXPECT_DOUBLE_EQ(psi[3], 0.0);
  EXPECT_DOUBLE_EQ(psi[4], 0.0);
}

TEST(PsiWeightsTest, Arma11KnownForm) {
  // ARMA(1,1): psi_1 = phi + theta; psi_j = phi^{j-1}(phi + theta).
  const double phi = 0.6, theta = 0.3;
  const auto psi = PsiWeights({phi}, {theta}, 5);
  EXPECT_NEAR(psi[1], phi + theta, 1e-12);
  EXPECT_NEAR(psi[2], phi * (phi + theta), 1e-12);
  EXPECT_NEAR(psi[3], phi * phi * (phi + theta), 1e-12);
}

TEST(StationaryTransformTest, OutputAlwaysStationary) {
  // Any unconstrained vector must map to a stationary phi.
  const std::vector<std::vector<double>> inputs = {
      {0.0}, {5.0}, {-5.0}, {2.0, -3.0}, {1.0, 1.0, 1.0}, {10.0, -10.0, 4.0, 0.1},
  };
  for (const auto& u : inputs) {
    const auto phi = StationaryFromUnconstrained(u);
    EXPECT_TRUE(IsStationary(phi));
  }
}

TEST(StationaryTransformTest, RoundTrip) {
  const std::vector<double> u{0.3, -0.7, 1.2};
  const auto phi = StationaryFromUnconstrained(u);
  const auto u2 = UnconstrainedFromStationary(phi);
  ASSERT_EQ(u2.size(), u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(u2[i], u[i], 1e-8);
  }
}

TEST(IsStationaryTest, KnownCases) {
  EXPECT_TRUE(IsStationary({0.5}));
  EXPECT_FALSE(IsStationary({1.0}));
  EXPECT_FALSE(IsStationary({1.2}));
  EXPECT_TRUE(IsStationary({0.5, -0.3}));
  // AR(2) with phi1 + phi2 >= 1 is non-stationary.
  EXPECT_FALSE(IsStationary({0.7, 0.4}));
  EXPECT_TRUE(IsStationary({}));
}

TEST(IsStationaryTest, BoundaryOfAr2Triangle) {
  // The AR(2) stationarity region: phi2 < 1 + phi1, phi2 < 1 - phi1,
  // phi2 > -1.
  EXPECT_TRUE(IsStationary({0.0, 0.99}));
  EXPECT_FALSE(IsStationary({0.0, 1.01}));
  EXPECT_TRUE(IsStationary({0.0, -0.99}));
  EXPECT_FALSE(IsStationary({0.0, -1.01}));
}

}  // namespace
}  // namespace capplan::math
