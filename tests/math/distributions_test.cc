#include "math/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::math {
namespace {

TEST(NormalTest, PdfAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145707, 1e-10);
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.841344746068543), 1.0, 1e-8);
}

TEST(NormalTest, QuantileCdfRoundTrip) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalTest, QuantileEdgeCases) {
  EXPECT_TRUE(std::isinf(NormalQuantile(0.0)));
  EXPECT_TRUE(std::isinf(NormalQuantile(1.0)));
  EXPECT_LT(NormalQuantile(0.0), 0.0);
  EXPECT_GT(NormalQuantile(1.0), 0.0);
}

TEST(LogGammaTest, MatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-8);
}

TEST(LogGammaTest, HalfIntegerValue) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(3.14159265358979323846), 1e-10);
}

TEST(StudentTTest, CdfSymmetry) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(StudentTCdf(1.5, 7.0) + StudentTCdf(-1.5, 7.0), 1.0, 1e-10);
}

TEST(StudentTTest, KnownCriticalValue) {
  // t_{0.975, 10} = 2.228138852
  EXPECT_NEAR(StudentTQuantile(0.975, 10.0), 2.228138852, 1e-6);
}

TEST(StudentTTest, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(StudentTQuantile(0.975, 1e6), NormalQuantile(0.975), 1e-3);
}

TEST(StudentTTest, QuantileCdfRoundTrip) {
  for (double nu : {3.0, 10.0, 30.0}) {
    for (double p : {0.05, 0.5, 0.9}) {
      EXPECT_NEAR(StudentTCdf(StudentTQuantile(p, nu), nu), p, 1e-8);
    }
  }
}

TEST(ChiSquaredTest, KnownValues) {
  // chi2 CDF(k=2) is 1 - exp(-x/2).
  EXPECT_NEAR(ChiSquaredCdf(2.0, 2.0), 1.0 - std::exp(-1.0), 1e-10);
  // 95th percentile of chi2(1) is 3.841458821.
  EXPECT_NEAR(ChiSquaredCdf(3.841458821, 1.0), 0.95, 1e-7);
  // 95th percentile of chi2(10) is 18.307038.
  EXPECT_NEAR(ChiSquaredCdf(18.307038, 10.0), 0.95, 1e-6);
}

TEST(ChiSquaredTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquaredCdf(-1.0, 3.0), 0.0);
  EXPECT_NEAR(ChiSquaredCdf(1000.0, 3.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, MatchesExponentialCdf) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(IncompleteBetaTest, BoundsAndSymmetry) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(1.0, 2.0, 3.0), 1.0);
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  const double v = RegularizedIncompleteBeta(0.3, 2.0, 5.0);
  const double w = RegularizedIncompleteBeta(0.7, 5.0, 2.0);
  EXPECT_NEAR(v, 1.0 - w, 1e-10);
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.42, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(x, 1.0, 1.0), x, 1e-10);
  }
}

}  // namespace
}  // namespace capplan::math
