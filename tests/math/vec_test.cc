#include "math/vec.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::math {
namespace {

TEST(VecTest, SumAndMean) {
  EXPECT_DOUBLE_EQ(Sum({1, 2, 3, 4}), 10.0);
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(VecTest, VarianceSampleAndPopulation) {
  const std::vector<double> x{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(Variance(x, /*sample=*/false), 4.0, 1e-12);
  EXPECT_NEAR(Variance(x, /*sample=*/true), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
}

TEST(VecTest, StdDevIsSqrtOfVariance) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  EXPECT_NEAR(StdDev(x) * StdDev(x), Variance(x), 1e-12);
}

TEST(VecTest, MinMax) {
  const std::vector<double> x{3, -1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(Min(x), -1.0);
  EXPECT_DOUBLE_EQ(Max(x), 5.0);
}

TEST(VecTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

TEST(VecTest, QuantileEndpointsAndMiddle) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(x, 0.25), 2.0);
}

TEST(VecTest, QuantileInterpolates) {
  const std::vector<double> x{0, 10};
  EXPECT_DOUBLE_EQ(Quantile(x, 0.3), 3.0);
}

TEST(VecTest, CorrelationPerfectAndAnti) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(Correlation(x, y), 1.0, 1e-12);
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(Correlation(x, z), -1.0, 1e-12);
}

TEST(VecTest, CorrelationOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(Correlation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(VecTest, ElementwiseOps) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, 5, 6};
  EXPECT_EQ(Add(x, y), (std::vector<double>{5, 7, 9}));
  EXPECT_EQ(Subtract(y, x), (std::vector<double>{3, 3, 3}));
  EXPECT_EQ(Scale(x, 2.0), (std::vector<double>{2, 4, 6}));
  EXPECT_DOUBLE_EQ(Dot(x, y), 32.0);
}

TEST(VecTest, DemeanCentersSeries) {
  const std::vector<double> d = Demean({1, 2, 3});
  EXPECT_NEAR(Sum(d), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(d[0], -1.0);
}

TEST(VecTest, Arange) {
  const std::vector<double> a = Arange(1.0, 0.5, 4);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[3], 2.5);
}

}  // namespace
}  // namespace capplan::math
