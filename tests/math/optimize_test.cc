#include "math/optimize.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace capplan::math {
namespace {

TEST(NelderMeadTest, MinimizesQuadratic1D) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  auto out = NelderMead(f, {0.0});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->x[0], 3.0, 1e-5);
  EXPECT_TRUE(out->converged);
}

TEST(NelderMeadTest, MinimizesQuadratic3D) {
  auto f = [](const std::vector<double>& x) {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      s += (i + 1) * d * d;
    }
    return s;
  };
  auto out = NelderMead(f, {5.0, 5.0, 5.0});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->x[0], 0.0, 1e-4);
  EXPECT_NEAR(out->x[1], 1.0, 1e-4);
  EXPECT_NEAR(out->x[2], 2.0, 1e-4);
}

TEST(NelderMeadTest, RosenbrockConverges) {
  auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_iterations = 5000;
  opt.restarts = 2;
  auto out = NelderMead(f, {-1.2, 1.0}, opt);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->x[0], 1.0, 1e-3);
  EXPECT_NEAR(out->x[1], 1.0, 1e-3);
}

TEST(NelderMeadTest, HandlesInfiniteRegions) {
  // Constrained region via +inf outside |x| < 2.
  auto f = [](const std::vector<double>& x) {
    if (std::fabs(x[0]) >= 2.0) {
      return std::numeric_limits<double>::infinity();
    }
    return (x[0] - 1.5) * (x[0] - 1.5);
  };
  auto out = NelderMead(f, {0.0});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->x[0], 1.5, 1e-4);
}

TEST(NelderMeadTest, NanTreatedAsInfinity) {
  auto f = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::nan("");
    return (x[0] - 0.5) * (x[0] - 0.5);
  };
  auto out = NelderMead(f, {1.0});
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->x[0], 0.5, 1e-4);
}

TEST(NelderMeadTest, RejectsEmptyStart) {
  auto f = [](const std::vector<double>&) { return 0.0; };
  EXPECT_FALSE(NelderMead(f, {}).ok());
}

TEST(NelderMeadTest, RejectsInfiniteStart) {
  auto f = [](const std::vector<double>&) {
    return std::numeric_limits<double>::infinity();
  };
  EXPECT_FALSE(NelderMead(f, {0.0}).ok());
}

TEST(NelderMeadTest, RestartsImproveMultimodal) {
  // Double well with the deeper minimum at x = 2.
  auto f = [](const std::vector<double>& x) {
    const double v = x[0];
    return 0.1 * (v + 2.0) * (v + 2.0) * (v - 2.0) * (v - 2.0) - 0.5 * v;
  };
  NelderMeadOptions opt;
  opt.restarts = 5;
  opt.initial_step = 2.0;
  auto out = NelderMead(f, {-2.0}, opt);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->x[0], 0.0);  // escaped the shallow well
}

TEST(NelderMeadTest, SeedPointNearOptimumWins) {
  // A shifted quadratic with the start far away: the injected seed vertex
  // sits on the optimum, so the simplex collapses onto it.
  auto f = [](const std::vector<double>& x) {
    const double a = x[0] - 4.0, b = x[1] + 2.0;
    return a * a + 3.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_iterations = 400;
  opt.seed_points = {{4.0, -2.0}};
  auto out = NelderMead(f, {50.0, 50.0}, opt);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->x[0], 4.0, 1e-4);
  EXPECT_NEAR(out->x[1], -2.0, 1e-4);
}

TEST(NelderMeadTest, MalformedSeedPointsIgnored) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  NelderMeadOptions opt;
  opt.seed_points = {{1.0, 2.0},  // wrong dimension
                     {0.0}};      // coincides with x0
  auto out = NelderMead(f, {0.0}, opt);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->x[0], 3.0, 1e-5);
}

TEST(NelderMeadTest, RelativeFToleranceStopsEarly) {
  auto f = [](const std::vector<double>& x) {
    return 1.0 + (x[0] - 3.0) * (x[0] - 3.0);
  };
  NelderMeadOptions strict;
  auto baseline = NelderMead(f, {0.0}, strict);
  ASSERT_TRUE(baseline.ok());

  // A loose relative tolerance converges in strictly fewer iterations and
  // still lands near the optimum (f_best ~ 1, so the spread threshold is
  // about 1e-2 instead of the absolute 1e-9).
  NelderMeadOptions loose = strict;
  loose.f_tolerance_relative = 1e-2;
  auto out = NelderMead(f, {0.0}, loose);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->converged);
  EXPECT_LT(out->iterations, baseline->iterations);
  EXPECT_NEAR(out->x[0], 3.0, 0.5);
}

TEST(GoldenSectionTest, FindsMinimum) {
  auto f = [](double x) { return (x - 1.7) * (x - 1.7) + 3.0; };
  EXPECT_NEAR(GoldenSectionMinimize(f, -10.0, 10.0), 1.7, 1e-6);
}

TEST(GoldenSectionTest, RespectsBounds) {
  // Minimum outside the bracket; should return the boundary region.
  auto f = [](double x) { return x; };
  EXPECT_NEAR(GoldenSectionMinimize(f, 2.0, 5.0), 2.0, 1e-5);
}

}  // namespace
}  // namespace capplan::math
