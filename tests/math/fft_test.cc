#include "math/fft.h"

#include <cmath>

#include <gtest/gtest.h>

namespace capplan::math {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Naive O(n^2) DFT reference.
std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> s{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(j * k) /
                         static_cast<double>(n);
      s += x[j] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = s;
  }
  return out;
}

std::vector<std::complex<double>> RealToComplex(
    const std::vector<double>& x) {
  std::vector<std::complex<double>> cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = {x[i], 0.0};
  return cx;
}

void ExpectClose(const std::vector<std::complex<double>>& a,
                 const std::vector<std::complex<double>>& b, double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), tol) << "index " << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), tol) << "index " << i;
  }
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  const auto spec = Fft(x);
  for (const auto& v : spec) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ConstantSignalConcentratesAtDc) {
  std::vector<std::complex<double>> x(16, {2.0, 0.0});
  const auto spec = Fft(x);
  EXPECT_NEAR(spec[0].real(), 32.0, 1e-10);
  for (std::size_t k = 1; k < spec.size(); ++k) {
    EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-10);
  }
}

// Parameterized agreement with the naive DFT across lengths, including
// non-powers of two (exercising the Bluestein path).
class FftAgreementTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftAgreementTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.7 * static_cast<double>(i)) +
           0.3 * std::cos(2.1 * static_cast<double>(i)) +
           0.01 * static_cast<double>(i);
  }
  const auto fast = FftReal(x);
  const auto slow = NaiveDft(RealToComplex(x));
  ExpectClose(fast, slow, 1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftAgreementTest,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 24, 31,
                                           60, 64, 100, 168, 256, 720));

class FftRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTripTest, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  std::vector<std::complex<double>> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = {std::cos(0.3 * static_cast<double>(i)),
            std::sin(1.1 * static_cast<double>(i))};
  }
  const auto back = InverseFft(Fft(x));
  ExpectClose(back, x, 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTripTest,
                         ::testing::Values(1, 2, 3, 8, 17, 48, 100, 255, 256));

TEST(PeriodogramTest, DetectsSinePeriod) {
  const std::size_t n = 240;
  const std::size_t period = 24;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 5.0 + std::sin(2.0 * kPi * static_cast<double>(i) /
                          static_cast<double>(period));
  }
  const auto pgram = Periodogram(x);
  ASSERT_EQ(pgram.size(), n / 2);
  // Peak should be at k = n / period = 10, i.e. index 9.
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < pgram.size(); ++i) {
    if (pgram[i] > pgram[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, 9u);
}

TEST(PeriodogramTest, MeanRemovedSoDcAbsent) {
  // Large mean must not leak into low frequencies.
  std::vector<double> x(64, 1000.0);
  x[10] += 1.0;  // tiny blip
  const auto pgram = Periodogram(x);
  double total = 0.0;
  for (double v : pgram) total += v;
  EXPECT_LT(total, 10.0);
}

TEST(PeriodogramTest, ParsevalHolds) {
  std::vector<double> x(128);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(0.4 * static_cast<double>(i)) +
           0.5 * std::cos(0.9 * static_cast<double>(i));
  }
  // Sum over all bins of |X_k|^2/n equals sum of x^2 (on demeaned x).
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double ss = 0.0;
  for (double v : x) ss += (v - mean) * (v - mean);
  std::vector<double> centered(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) centered[i] = x[i] - mean;
  const auto spec = FftReal(centered);
  double spec_ss = 0.0;
  for (const auto& v : spec) spec_ss += std::norm(v);
  spec_ss /= static_cast<double>(x.size());
  EXPECT_NEAR(spec_ss, ss, 1e-8);
}

TEST(PeriodogramTest, TooShortReturnsEmpty) {
  EXPECT_TRUE(Periodogram({1.0}).empty());
  EXPECT_TRUE(Periodogram({}).empty());
}

}  // namespace
}  // namespace capplan::math
