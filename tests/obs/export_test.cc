#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace capplan::obs {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Prometheus exposition.

TEST(PrometheusTest, RegistryRoundTripsThroughTheTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("jobs_total", {}, "jobs processed").Inc(42);
  registry.GetGauge("queue_depth").Set(3.5);
  Histogram h = registry.GetHistogram("wait_ms", {1.0, 10.0}, {},
                                      "time spent queued");
  h.Observe(0.5);
  h.Observe(0.75);
  h.Observe(4.0);
  h.Observe(25.0);  // exact binary fractions: the sum round-trips exactly

  const std::string text = ToPrometheusText(registry.Collect());
  auto parsed = ParsePrometheusText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  // Family metadata survives.
  std::map<std::string, std::string> types;
  std::map<std::string, std::string> helps;
  for (const auto& f : parsed->families) {
    types[f.name] = f.type;
    helps[f.name] = f.help;
  }
  EXPECT_EQ(types["jobs_total"], "counter");
  EXPECT_EQ(types["queue_depth"], "gauge");
  EXPECT_EQ(types["wait_ms"], "histogram");
  EXPECT_EQ(helps["jobs_total"], "jobs processed");
  EXPECT_EQ(helps["wait_ms"], "time spent queued");

  // Values survive, histograms as cumulative buckets ending at +Inf.
  std::map<std::string, double> values;
  std::map<std::string, double> le;  // le label -> cumulative count
  for (const auto& s : parsed->samples) {
    if (s.name == "wait_ms_bucket") {
      ASSERT_EQ(s.labels.size(), 1u);
      EXPECT_EQ(s.labels[0].first, "le");
      le[s.labels[0].second] = s.value;
    } else {
      values[s.name] = s.value;
    }
  }
  EXPECT_DOUBLE_EQ(values["jobs_total"], 42.0);
  EXPECT_DOUBLE_EQ(values["queue_depth"], 3.5);
  EXPECT_DOUBLE_EQ(values["wait_ms_sum"], 30.25);
  EXPECT_DOUBLE_EQ(values["wait_ms_count"], 4.0);
  ASSERT_EQ(le.size(), 3u);
  EXPECT_DOUBLE_EQ(le["1"], 2.0);
  EXPECT_DOUBLE_EQ(le["10"], 3.0);
  EXPECT_DOUBLE_EQ(le["+Inf"], 4.0);
}

TEST(PrometheusTest, LabelValuesRoundTripThroughEscaping) {
  MetricsRegistry registry;
  const std::string awkward = "a\"b\\c\nd";
  registry.GetCounter("odd_total", {{"stage", awkward}}).Inc();
  auto parsed = ParsePrometheusText(ToPrometheusText(registry.Collect()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->samples.size(), 1u);
  ASSERT_EQ(parsed->samples[0].labels.size(), 1u);
  EXPECT_EQ(parsed->samples[0].labels[0].second, awkward);
}

TEST(PrometheusTest, NonFiniteValuesUseTheSpecSpelling) {
  MetricsRegistry registry;
  registry.GetGauge("pos").Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("neg").Set(-std::numeric_limits<double>::infinity());
  const std::string text = ToPrometheusText(registry.Collect());
  EXPECT_NE(text.find("neg -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("pos +Inf\n"), std::string::npos);
  auto parsed = ParsePrometheusText(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::isinf(parsed->samples[0].value));
  EXPECT_TRUE(std::isinf(parsed->samples[1].value));
}

TEST(PrometheusTest, ParserRejectsMalformedLines) {
  EXPECT_FALSE(ParsePrometheusText("just_a_name_no_value\n").ok());
  EXPECT_FALSE(ParsePrometheusText("metric notanumber\n").ok());
  EXPECT_FALSE(ParsePrometheusText("metric{unclosed=\"v\n").ok());
  EXPECT_FALSE(ParsePrometheusText("metric{k=unquoted} 1\n").ok());
  EXPECT_FALSE(ParsePrometheusText("metric 1 trailing\n").ok());
  // Unknown comments are legal and skipped.
  EXPECT_TRUE(ParsePrometheusText("# EOF\nok_total 1\n").ok());
}

TEST(PrometheusTest, ExemplarsRoundTripThroughTheTextFormat) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("serve_ms", {1.0, 10.0}, {},
                                      "request latency");
  h.Observe(0.25);                               // no exemplar on this bucket
  h.ObserveWithExemplar(2.5, /*span_id=*/12, /*event_id=*/7);
  h.ObserveWithExemplar(50.0, /*span_id=*/98, /*event_id=*/0);

  const std::string text =
      ToPrometheusText(registry.Collect(), ExpositionFormat::kOpenMetrics);
  // OpenMetrics exemplar syntax: `... # {label="v",...} value`, and the
  // exposition is terminated by the mandatory `# EOF`.
  EXPECT_NE(text.find("# {span_id=\"12\",event_id=\"7\"} 2.5"),
            std::string::npos)
      << text;
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n") << text;

  auto parsed = ParsePrometheusText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  int with_exemplar = 0;
  for (const auto& s : parsed->samples) {
    if (s.name != "serve_ms_bucket") {
      EXPECT_FALSE(s.has_exemplar) << s.name;
      continue;
    }
    ASSERT_EQ(s.labels.size(), 1u);
    const std::string& le = s.labels[0].second;
    if (le == "1") {
      EXPECT_FALSE(s.has_exemplar);  // plain observation left no exemplar
    } else if (le == "10") {
      ASSERT_TRUE(s.has_exemplar);
      ++with_exemplar;
      EXPECT_DOUBLE_EQ(s.exemplar.value, 2.5);
      ASSERT_EQ(s.exemplar.labels.size(), 2u);
      EXPECT_EQ(s.exemplar.labels[0].first, "span_id");
      EXPECT_EQ(s.exemplar.labels[0].second, "12");
      EXPECT_EQ(s.exemplar.labels[1].first, "event_id");
      EXPECT_EQ(s.exemplar.labels[1].second, "7");
    } else if (le == "+Inf") {
      ASSERT_TRUE(s.has_exemplar);
      ++with_exemplar;
      EXPECT_DOUBLE_EQ(s.exemplar.value, 50.0);
      EXPECT_EQ(s.exemplar.labels[0].second, "98");
    }
  }
  EXPECT_EQ(with_exemplar, 2);
}

TEST(PrometheusTest, Prometheus004FormatOmitsExemplars) {
  // The 0.0.4 text grammar allows only a timestamp after the value; a
  // vanilla Prometheus scraper fails the whole scrape on an exemplar token,
  // so the default format (the /metrics endpoint without OpenMetrics
  // negotiation, and the textfile-collector export) must never emit one.
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("serve_ms", {1.0}, {}, "latency");
  h.ObserveWithExemplar(0.5, /*span_id=*/3, /*event_id=*/4);
  const std::string text = ToPrometheusText(registry.Collect());
  EXPECT_EQ(text.find(" # {"), std::string::npos) << text;
  EXPECT_EQ(text.find("# EOF"), std::string::npos) << text;
}

TEST(PrometheusTest, LastExemplarPerBucketWins) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("fit_ms", {100.0}, {}, "fit latency");
  h.ObserveWithExemplar(10.0, 1, 1);
  h.ObserveWithExemplar(20.0, 2, 2);  // same bucket: overwrites the slot
  auto parsed = ParsePrometheusText(
      ToPrometheusText(registry.Collect(), ExpositionFormat::kOpenMetrics));
  ASSERT_TRUE(parsed.ok());
  for (const auto& s : parsed->samples) {
    if (s.name == "fit_ms_bucket" && s.labels[0].second == "100") {
      ASSERT_TRUE(s.has_exemplar);
      EXPECT_DOUBLE_EQ(s.exemplar.value, 20.0);
      EXPECT_EQ(s.exemplar.labels[0].second, "2");
    }
  }
}

TEST(PrometheusTest, ParserRejectsMalformedExemplars) {
  EXPECT_FALSE(ParsePrometheusText("m_bucket{le=\"1\"} 1 # {x=\"1\"\n").ok());
  EXPECT_FALSE(
      ParsePrometheusText("m_bucket{le=\"1\"} 1 # {x=\"1\"} nan-ish\n").ok());
  EXPECT_FALSE(ParsePrometheusText("m_bucket{le=\"1\"} 1 # junk\n").ok());
}

TEST(PrometheusTest, WriteIsAtomicAndLeavesNoTempFile) {
  MetricsRegistry registry;
  registry.GetCounter("written_total").Inc(7);
  const std::string path = TempPath("metrics.prom");
  ASSERT_TRUE(WritePrometheusFile(registry.Collect(), path).ok());
  EXPECT_EQ(Slurp(path), ToPrometheusText(registry.Collect()));
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Chrome trace JSON: a minimal JSON reader plus a schema check of the trace
// event format (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& At(const std::string& key) const { return object.at(key); }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = Value(out);
    Skip();
    return ok && pos_ == text_.size();
  }

 private:
  void Skip() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Value(JsonValue* out) {
    Skip();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object(out);
      case '[':
        return Array(out);
      case '"':
        out->kind = JsonValue::kString;
        return String(&out->str);
      case 't':
        out->kind = JsonValue::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::kBool;
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number(out);
    }
  }
  bool Object(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    Skip();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      Skip();
      std::string key;
      if (!String(&key)) return false;
      Skip();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      if (!Value(&out->object[key])) return false;
      Skip();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Array(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    Skip();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      out->array.emplace_back();
      if (!Value(&out->array.back())) return false;
      Skip();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char n = text_[pos_++];
        switch (n) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          default:
            out->push_back(n);  // \" \\ \/ — good enough for the checker
        }
        continue;
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// Schema check for one complete ("X") trace event object.
void ExpectValidTraceEvent(const JsonValue& e) {
  ASSERT_EQ(e.kind, JsonValue::kObject);
  ASSERT_TRUE(e.Has("name"));
  EXPECT_EQ(e.At("name").kind, JsonValue::kString);
  EXPECT_FALSE(e.At("name").str.empty());
  ASSERT_TRUE(e.Has("cat"));
  EXPECT_EQ(e.At("cat").kind, JsonValue::kString);
  ASSERT_TRUE(e.Has("ph"));
  EXPECT_EQ(e.At("ph").str, "X");
  ASSERT_TRUE(e.Has("ts"));
  EXPECT_EQ(e.At("ts").kind, JsonValue::kNumber);
  EXPECT_GE(e.At("ts").number, 0.0);
  ASSERT_TRUE(e.Has("dur"));
  EXPECT_GE(e.At("dur").number, 0.0);
  ASSERT_TRUE(e.Has("pid"));
  EXPECT_EQ(e.At("pid").number, 1.0);
  ASSERT_TRUE(e.Has("tid"));
  EXPECT_EQ(e.At("tid").kind, JsonValue::kNumber);
  ASSERT_TRUE(e.Has("args"));
  const JsonValue& args = e.At("args");
  ASSERT_EQ(args.kind, JsonValue::kObject);
  ASSERT_TRUE(args.Has("span_id"));
  EXPECT_EQ(args.At("span_id").kind, JsonValue::kNumber);
  ASSERT_TRUE(args.Has("parent_id"));
  EXPECT_EQ(args.At("parent_id").kind, JsonValue::kNumber);
}

std::vector<TraceEvent> SampleEvents() {
  TraceEvent outer;
  outer.name = "service.tick";
  outer.category = "service";
  outer.start_ns = 5'000'000;
  outer.dur_ns = 3'000'000;
  outer.span_id = 1;
  outer.tid = 1;
  TraceEvent inner;
  inner.name = "selector.candidate";
  inner.category = "selector";
  inner.tag = "pruned";
  inner.start_ns = 6'000'000;
  inner.dur_ns = 500'000;
  inner.span_id = 2;
  inner.parent_id = 1;
  inner.tid = 2;
  return {outer, inner};
}

TEST(ChromeTraceTest, EmitsSchemaValidCompleteEvents) {
  const std::string json = ToChromeTraceJson(SampleEvents());
  JsonValue root;
  ASSERT_TRUE(JsonReader(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_TRUE(root.Has("traceEvents"));
  EXPECT_EQ(root.At("displayTimeUnit").str, "ms");
  const JsonValue& events = root.At("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  ASSERT_EQ(events.array.size(), 2u);
  for (const JsonValue& e : events.array) ExpectValidTraceEvent(e);

  // Timestamps are rebased to the earliest event and scaled to µs.
  EXPECT_DOUBLE_EQ(events.array[0].At("ts").number, 0.0);
  EXPECT_DOUBLE_EQ(events.array[0].At("dur").number, 3000.0);
  EXPECT_DOUBLE_EQ(events.array[1].At("ts").number, 1000.0);
  EXPECT_DOUBLE_EQ(events.array[1].At("dur").number, 500.0);
  // The span/parent correlation ids ride in args; tags only when set.
  EXPECT_DOUBLE_EQ(events.array[1].At("args").At("parent_id").number, 1.0);
  EXPECT_EQ(events.array[1].At("args").At("tag").str, "pruned");
  EXPECT_FALSE(events.array[0].At("args").Has("tag"));
}

TEST(ChromeTraceTest, EmptyTimelineIsStillValidJson) {
  JsonValue root;
  ASSERT_TRUE(JsonReader(ToChromeTraceJson({})).Parse(&root));
  EXPECT_TRUE(root.At("traceEvents").array.empty());
}

TEST(ChromeTraceTest, LiveTracerDumpPassesTheSchemaCheck) {
  Tracer& tracer = Tracer::Instance();
  tracer.Disable();
  tracer.Clear();
  tracer.Enable();
  {
    TraceSpan tick("service.tick", "service");
    TraceSpan fit("pipeline.run", "pipeline");
    fit.set_tag("degraded");
  }
  tracer.Disable();
  const std::string path = TempPath("trace.json");
  ASSERT_TRUE(WriteChromeTraceFile(tracer.Drain(), path).ok());
  JsonValue root;
  ASSERT_TRUE(JsonReader(Slurp(path)).Parse(&root));
  const JsonValue& events = root.At("traceEvents");
  ASSERT_EQ(events.array.size(), 2u);
  for (const JsonValue& e : events.array) ExpectValidTraceEvent(e);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace capplan::obs
