#include "obs/metrics.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace capplan::obs {
namespace {

TEST(MetricNameTest, AcceptsCatalogueStyleNames) {
  EXPECT_TRUE(IsValidMetricName("capplan_ticks_total"));
  EXPECT_TRUE(IsValidMetricName("capplan_stage_latency_ms"));
  EXPECT_TRUE(IsValidMetricName("a"));
  EXPECT_TRUE(IsValidMetricName("x9_y2"));
}

TEST(MetricNameTest, RejectsNonCatalogueNames) {
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(IsValidMetricName("_starts_with_underscore"));
  EXPECT_FALSE(IsValidMetricName("CamelCase"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("double__underscore"));
  EXPECT_FALSE(IsValidMetricName("trailing_"));
}

TEST(CounterTest, DetachedHandleIsANoOp) {
  Counter c;
  c.Inc();
  c += 7;
  ++c;
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(c), 0u);
}

TEST(CounterTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("requests_total");
  Counter b = registry.GetCounter("requests_total");
  a.Inc(3);
  b.Inc(2);
  EXPECT_EQ(a.value(), 5u);  // both handles share the cell
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(CounterTest, IntegerOperatorsMutateTheCell) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("ops_total");
  ++c;
  c += 4;
  EXPECT_EQ(c.value(), 5u);
  c = 2;  // assignment resets (used by recovery replay)
  EXPECT_EQ(static_cast<std::uint64_t>(c), 2u);
}

TEST(CounterTest, LabelOrderDoesNotSplitTheSeries) {
  MetricsRegistry registry;
  Counter a = registry.GetCounter("fits_total",
                                  {{"rung", "ses"}, {"stage", "fit"}});
  Counter b = registry.GetCounter("fits_total",
                                  {{"stage", "fit"}, {"rung", "ses"}});
  a.Inc();
  b.Inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge g = registry.GetGauge("in_flight_refits");
  g.Set(3.0);
  g.Add(2.0);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  Gauge detached;
  detached.Set(9.0);
  EXPECT_DOUBLE_EQ(detached.value(), 0.0);
}

TEST(HistogramTest, TracksCountSumAndExtrema) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("fit_ms", {10.0, 20.0});
  h.Observe(2.0);
  h.Observe(8.0);
  h.Observe(15.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 25.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 15.0);
}

TEST(HistogramTest, EmptyHistogramReadsAsZero) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("idle_ms", {1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, IgnoresNaNObservations) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("clean_ms", {1.0});
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(0.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);
}

TEST(HistogramTest, QuantileInterpolatesInsideTheCoveringBucket) {
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("lat_ms", {10.0, 20.0});
  // Four observations in [2, 8] plus one at 15: the p50 target falls 2.5/4
  // of the way through the first bucket, whose edges clamp to [2, 10].
  for (double v : {2.0, 4.0, 6.0, 8.0}) h.Observe(v);
  h.Observe(15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0 + 0.625 * (10.0 - 2.0));
  // The top quantile clamps to the observed maximum, not the bucket bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
}

TEST(HistogramTest, MatchesTheTelemetryGoldenValues) {
  // The default latency layout puts 7.5 in (5, 10] and 12.5 in (10, 25];
  // these are the exact values the ServiceTelemetry JSON golden test pins.
  MetricsRegistry registry;
  Histogram h = registry.GetHistogram("stage_ms");
  h.Observe(12.5);
  h.Observe(7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 12.45);
  EXPECT_DOUBLE_EQ(h.min(), 7.5);
  EXPECT_DOUBLE_EQ(h.max(), 12.5);
}

TEST(HistogramTest, EmptyBoundsSelectDefaultLatencyLayout) {
  MetricsRegistry registry;
  registry.GetHistogram("default_ms").Observe(3.0);
  MetricsSnapshot snap = registry.Collect();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].bounds, DefaultLatencyBucketsMs());
  // Per-bucket counts carry one extra +Inf bucket.
  EXPECT_EQ(snap.samples[0].bucket_counts.size(),
            DefaultLatencyBucketsMs().size() + 1);
}

TEST(RegistryTest, CollectSnapshotsEveryKind) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("events_total", {}, "events seen");
  Gauge g = registry.GetGauge("level");
  Histogram h = registry.GetHistogram("wait_ms", {1.0, 2.0});
  c.Inc(4);
  g.Set(2.5);
  h.Observe(0.5);
  h.Observe(5.0);

  MetricsSnapshot snap = registry.Collect();
  ASSERT_EQ(snap.samples.size(), 3u);  // sorted by name
  EXPECT_EQ(snap.samples[0].name, "events_total");
  EXPECT_EQ(snap.samples[0].type, MetricType::kCounter);
  EXPECT_EQ(snap.samples[0].help, "events seen");
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 4.0);
  EXPECT_EQ(snap.samples[1].name, "level");
  EXPECT_DOUBLE_EQ(snap.samples[1].value, 2.5);
  EXPECT_EQ(snap.samples[2].name, "wait_ms");
  EXPECT_EQ(snap.samples[2].type, MetricType::kHistogram);
  EXPECT_EQ(snap.samples[2].count, 2u);
  EXPECT_DOUBLE_EQ(snap.samples[2].sum, 5.5);
  const std::vector<std::uint64_t> expected = {1, 0, 1};  // (..1], (1,2], +Inf
  EXPECT_EQ(snap.samples[2].bucket_counts, expected);
}

// The hot-path contract: handles recorded from ThreadPool workers while the
// driver thread registers new series and scrapes. Run under TSan in CI.
TEST(RegistryTest, ConcurrentRecordingKeepsExactTotals) {
  MetricsRegistry registry;
  Counter c = registry.GetCounter("hammer_total");
  Histogram h = registry.GetHistogram("hammer_ms", {1.0, 10.0, 100.0});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](std::size_t t) {
    // Workers also re-register (idempotent) and collect mid-hammer.
    Counter mine = registry.GetCounter("hammer_total");
    for (std::size_t i = 0; i < kPerThread; ++i) {
      mine.Inc();
      h.Observe(static_cast<double>((t * kPerThread + i) % 200));
      if (i % 4096 == 0) (void)registry.Collect();
    }
  });
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 199.0);
}

}  // namespace
}  // namespace capplan::obs
