#include "obs/event_log.h"

#include <atomic>
#include <cstring>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace capplan::obs {
namespace {

// The EventLog is a process-wide singleton; every test starts from a known
// state and leaves the recorder disabled and empty for its neighbours.
class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EventLog::Instance().Disable();
    EventLog::Instance().Clear();
  }
  void TearDown() override {
    EventLog::Instance().Disable();
    EventLog::Instance().Clear();
    EventLog::Instance().SetClockForTest(nullptr);
  }
};

WideEvent Event(WideEventKind kind, const char* key) {
  WideEvent ev;
  ev.kind = kind;
  ev.set_key(key);
  return ev;
}

TEST_F(EventLogTest, DisabledEmitIsANoOp) {
  EventLog& log = EventLog::Instance();
  EXPECT_EQ(log.Emit(Event(WideEventKind::kRefit, "k")), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST_F(EventLogTest, EmitAssignsMonotoneIdsAndFillsThreadId) {
  EventLog& log = EventLog::Instance();
  log.Enable();
  const std::uint64_t a = log.Emit(Event(WideEventKind::kRefit, "a"));
  const std::uint64_t b = log.Emit(Event(WideEventKind::kPromotion, "b"));
  ASSERT_GT(a, 0u);
  EXPECT_GT(b, a);
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].id, a);
  EXPECT_EQ(events[1].id, b);
  EXPECT_GT(events[0].tid, 0u);
  EXPECT_STREQ(events[0].key, "a");
}

TEST_F(EventLogTest, EmitStampsEnclosingTraceSpanWhenUnset) {
  Tracer::Instance().Enable();
  EventLog& log = EventLog::Instance();
  log.Enable();
  {
    TraceSpan span("test.work", "test");
    log.Emit(Event(WideEventKind::kRefit, "implicit"));
    WideEvent explicit_ev = Event(WideEventKind::kRefit, "explicit");
    explicit_ev.span_id = 777;
    log.Emit(explicit_ev);
    const auto events = log.Snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].span_id, span.id());
    EXPECT_EQ(events[1].span_id, 777u);
  }
  Tracer::Instance().Disable();
  Tracer::Instance().Clear();
}

TEST_F(EventLogTest, KeyTruncatesAtCapacityWithNulTermination) {
  EventLog& log = EventLog::Instance();
  log.Enable();
  const std::string longest(200, 'x');
  log.Emit(Event(WideEventKind::kHttpRequest, longest.c_str()));
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].key), WideEvent::kKeyCapacity - 1);
}

TEST_F(EventLogTest, AttrsCapAtMaxAttrs) {
  WideEvent ev = Event(WideEventKind::kRefit, "k");
  for (int i = 0; i < 10; ++i) ev.AddAttr("a", static_cast<double>(i));
  EXPECT_EQ(ev.n_attrs, WideEvent::kMaxAttrs);
  EXPECT_EQ(ev.attrs[WideEvent::kMaxAttrs - 1].value,
            static_cast<double>(WideEvent::kMaxAttrs - 1));
}

TEST_F(EventLogTest, FullRingOverwritesOldestAndCountsDrops) {
  EventLog& log = EventLog::Instance();
  log.Enable(/*events_per_thread=*/4);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(log.Emit(Event(WideEventKind::kRefit, "k")));
  }
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first unwrap: the survivors are the last four emitted, in order.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].id, ids[6 + i]);
  }
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_GE(log.total_dropped(), 6u);
}

TEST_F(EventLogTest, SnapshotIsNonDestructiveDrainClears) {
  EventLog& log = EventLog::Instance();
  log.Enable();
  log.Emit(Event(WideEventKind::kStoreSeal, "k"));
  EXPECT_EQ(log.Snapshot().size(), 1u);
  EXPECT_EQ(log.Snapshot().size(), 1u);  // still there
  EXPECT_EQ(log.Drain().size(), 1u);
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST_F(EventLogTest, TotalDroppedSurvivesDrain) {
  EventLog& log = EventLog::Instance();
  log.Enable(/*events_per_thread=*/2);
  for (int i = 0; i < 5; ++i) log.Emit(Event(WideEventKind::kRefit, "k"));
  EXPECT_EQ(log.dropped(), 3u);
  const std::uint64_t total_before = log.total_dropped();
  (void)log.Drain();
  EXPECT_EQ(log.dropped(), 0u);  // per-drain counter reset
  EXPECT_EQ(log.total_dropped(), total_before);  // cumulative keeps going
}

TEST_F(EventLogTest, KindNamesRoundTrip) {
  const WideEventKind kinds[] = {
      WideEventKind::kHttpRequest, WideEventKind::kRefit,
      WideEventKind::kPromotion,   WideEventKind::kRollback,
      WideEventKind::kQualityRepair, WideEventKind::kTickOverrun,
      WideEventKind::kStoreSeal,   WideEventKind::kStoreFlush,
  };
  for (const WideEventKind kind : kinds) {
    WideEventKind parsed;
    ASSERT_TRUE(WideEventKindFromName(WideEventKindName(kind), &parsed))
        << WideEventKindName(kind);
    EXPECT_EQ(parsed, kind);
  }
  WideEventKind unused;
  EXPECT_FALSE(WideEventKindFromName("nope", &unused));
  EXPECT_FALSE(WideEventKindFromName("", &unused));
}

TEST_F(EventLogTest, InjectedClockDrivesTimestamps) {
  EventLog& log = EventLog::Instance();
  log.SetClockForTest(+[]() -> std::uint64_t { return 123456789ull; });
  EXPECT_EQ(log.NowNs(), 123456789ull);
  log.SetClockForTest(nullptr);
  EXPECT_GT(log.NowNs(), 0u);
}

TEST_F(EventLogTest, ScopeStampsDurationAndEmitsOnce) {
  EventLog& log = EventLog::Instance();
  log.Enable();
  std::uint64_t id = 0;
  {
    WideEventScope scope(WideEventKind::kStoreFlush);
    scope.event().set_key("scoped");
    scope.event().outcome = "error";
    id = scope.End();
    // The destructor must not double-emit after an explicit End().
  }
  ASSERT_GT(id, 0u);
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, id);
  EXPECT_STREQ(events[0].key, "scoped");
  EXPECT_STREQ(events[0].outcome, "error");
  EXPECT_GT(events[0].start_ns, 0u);
}

// Hammer for TSan: many pool threads emitting concurrently with snapshot
// readers and a drain. The assertions are deliberately coarse (no lost
// ids among survivors + drop accounting consistent); the point is that
// TSan sees concurrent Emit/Snapshot/Drain on shared rings.
TEST_F(EventLogTest, ConcurrentEmitSnapshotDrainFromThreadPool) {
  EventLog& log = EventLog::Instance();
  log.Enable(/*events_per_thread=*/256);
  constexpr int kJobs = 32;
  constexpr int kEventsPerJob = 200;

  ThreadPool pool(8);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto snap = log.Snapshot();
      for (const WideEvent& e : snap) {
        ASSERT_GT(e.id, 0u);
      }
    }
  });

  std::vector<std::future<void>> jobs;
  for (int j = 0; j < kJobs; ++j) {
    jobs.push_back(pool.Submit([&log, j] {
      for (int i = 0; i < kEventsPerJob; ++i) {
        WideEvent ev;
        ev.kind = WideEventKind::kRefit;
        ev.set_key(("job/" + std::to_string(j)).c_str());
        ev.AddAttr("i", static_cast<double>(i));
        log.Emit(ev);
      }
    }));
  }
  for (auto& f : jobs) f.get();
  stop.store(true);
  reader.join();

  const auto events = log.Drain();
  std::set<std::uint64_t> ids;
  for (const WideEvent& e : events) ids.insert(e.id);
  EXPECT_EQ(ids.size(), events.size());  // ids unique across all rings
  EXPECT_EQ(events.size() + log.total_dropped(),
            static_cast<std::size_t>(kJobs) * kEventsPerJob);
}

}  // namespace
}  // namespace capplan::obs
