#include "obs/trace.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace capplan::obs {
namespace {

// Deterministic monotonic clock: every read advances 1 microsecond, so a
// span's duration equals 1000 ns times the clock reads between open and
// close.
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t FakeNow() { return g_fake_now.fetch_add(1000) + 1000; }

// The Tracer is a process-global singleton; every test starts from a
// disabled tracer with empty rings and the fake clock, and leaves it that
// way for unrelated suites in the same binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Instance().Disable();
    Tracer::Instance().Clear();
    g_fake_now.store(0);
    Tracer::Instance().SetClockForTest(&FakeNow);
  }
  void TearDown() override {
    Tracer::Instance().Disable();
    Tracer::Instance().Clear();
    Tracer::Instance().SetClockForTest(nullptr);
  }
};

TEST_F(TraceTest, DisabledSpansCostNothingAndRecordNothing) {
  {
    TraceSpan span("test.noop", "test");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(CurrentSpanId(), 0u);
  }
  EXPECT_TRUE(Tracer::Instance().Drain().empty());
}

TEST_F(TraceTest, RecordsACompleteEventWithDuration) {
  Tracer::Instance().Enable();
  std::uint64_t id = 0;
  {
    TraceSpan span("test.unit", "test");
    id = span.id();
    EXPECT_NE(id, 0u);
    EXPECT_EQ(CurrentSpanId(), id);
  }
  EXPECT_EQ(CurrentSpanId(), 0u);
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.unit");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_EQ(events[0].tag, nullptr);
  EXPECT_EQ(events[0].span_id, id);
  EXPECT_EQ(events[0].parent_id, 0u);
  // Exactly two clock reads: open and close.
  EXPECT_EQ(events[0].dur_ns, 1000u);
  EXPECT_NE(events[0].tid, 0u);
}

TEST_F(TraceTest, NestedSpansChainParentIds) {
  Tracer::Instance().Enable();
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    TraceSpan outer("test.outer", "test");
    outer_id = outer.id();
    {
      TraceSpan inner("test.inner", "test");
      inner_id = inner.id();
      EXPECT_EQ(CurrentSpanId(), inner_id);
    }
    EXPECT_EQ(CurrentSpanId(), outer_id);
  }
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_EQ(events[0].span_id, outer_id);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[1].span_id, inner_id);
  EXPECT_EQ(events[1].parent_id, outer_id);
}

TEST_F(TraceTest, EndClosesEarlyAndIsIdempotent) {
  Tracer::Instance().Enable();
  {
    TraceSpan span("test.staged", "test");
    span.End();
    EXPECT_EQ(CurrentSpanId(), 0u);  // popped at End, not at scope exit
    span.End();                      // no-op
  }  // destructor: also a no-op
  EXPECT_EQ(Tracer::Instance().Drain().size(), 1u);
}

TEST_F(TraceTest, TagAnnotatesTheEvent) {
  Tracer::Instance().Enable();
  {
    TraceSpan span("test.tagged", "test");
    span.set_tag("pruned");
  }
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].tag, "pruned");
}

TEST_F(TraceTest, SpanOpenAcrossDisableStillRecords) {
  Tracer::Instance().Enable();
  {
    TraceSpan span("test.straddle", "test");
    Tracer::Instance().Disable();
  }
  // The open half already happened; a hole in the timeline helps nobody.
  EXPECT_EQ(Tracer::Instance().Drain().size(), 1u);
}

TEST_F(TraceTest, DrainClearsAndSecondDrainIsEmpty) {
  Tracer::Instance().Enable();
  { TraceSpan span("test.once", "test"); }
  EXPECT_EQ(Tracer::Instance().Drain().size(), 1u);
  EXPECT_TRUE(Tracer::Instance().Drain().empty());
}

TEST_F(TraceTest, FullRingOverwritesOldestAndCountsDrops) {
  // The ring capacity is latched when a thread's ring is first created, so
  // the capped recording runs on a fresh thread.
  Tracer::Instance().Enable(/*events_per_thread=*/4);
  std::thread recorder([] {
    for (int i = 0; i < 6; ++i) {
      TraceSpan span("test.ring", "test");
    }
  });
  recorder.join();
  EXPECT_EQ(Tracer::Instance().dropped(), 2u);
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, oldest-first.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].span_id, events[i - 1].span_id);
  }
  EXPECT_EQ(Tracer::Instance().dropped(), 0u);  // reset by the drain
}

TEST_F(TraceTest, DrainCollectsSpansFromPoolWorkers) {
  Tracer::Instance().Enable();
  constexpr std::size_t kTasks = 16;
  {
    ThreadPool pool(4);
    pool.ParallelFor(kTasks, [](std::size_t) {
      TraceSpan span("test.worker", "test");
    });
  }  // pool threads exit; their rings must still drain
  std::vector<TraceEvent> events = Tracer::Instance().Drain();
  ASSERT_EQ(events.size(), kTasks);
  std::set<std::uint64_t> ids;
  for (const TraceEvent& e : events) {
    ids.insert(e.span_id);
    EXPECT_STREQ(e.name, "test.worker");
  }
  EXPECT_EQ(ids.size(), kTasks);  // span ids are globally unique
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);  // one timeline
  }
}

}  // namespace
}  // namespace capplan::obs
