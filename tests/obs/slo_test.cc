#include "obs/slo.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace capplan::obs {
namespace {

SloTracker::Options Opts(double objective, double fast, double slow) {
  SloTracker::Options o;
  o.objective = objective;
  o.fast_window_seconds = fast;
  o.slow_window_seconds = slow;
  return o;
}

TEST(SloTrackerTest, EmptyTrackerReportsZeroBurn) {
  SloTracker slo(Opts(0.99, 300.0, 3600.0));
  const SloTracker::Burn burn = slo.Evaluate(1e9);
  EXPECT_EQ(burn.fast_burn, 0.0);
  EXPECT_EQ(burn.slow_burn, 0.0);
  EXPECT_EQ(burn.fast_events, 0u);
  EXPECT_EQ(burn.slow_events, 0u);
  EXPECT_EQ(burn.total_events, 0u);
  EXPECT_EQ(burn.bad_events, 0u);
}

TEST(SloTrackerTest, BurnIsOneAtExactBudgetRate) {
  // Objective 0.9 leaves a 10% error budget; 1 bad in 10 burns at rate 1.
  SloTracker slo(Opts(0.9, 300.0, 3600.0));
  for (int i = 0; i < 9; ++i) slo.Record(true, 100.0);
  slo.Record(false, 100.0);
  const SloTracker::Burn burn = slo.Evaluate(100.0);
  EXPECT_DOUBLE_EQ(burn.fast_bad_ratio, 0.1);
  EXPECT_DOUBLE_EQ(burn.fast_burn, 1.0);
  EXPECT_DOUBLE_EQ(burn.slow_burn, 1.0);
  EXPECT_EQ(burn.total_events, 10u);
  EXPECT_EQ(burn.bad_events, 1u);
}

TEST(SloTrackerTest, FastWindowAgesOutWhileSlowRetains) {
  // slow 6400s / 64 buckets = 100s buckets; fast window is one bucket.
  SloTracker slo(Opts(0.9, 100.0, 6400.0));
  slo.Record(false, 50.0);   // bucket 0
  slo.Record(true, 150.0);   // bucket 1
  const SloTracker::Burn burn = slo.Evaluate(150.0);
  EXPECT_EQ(burn.fast_events, 1u);           // only bucket 1
  EXPECT_DOUBLE_EQ(burn.fast_burn, 0.0);     // and it was good
  EXPECT_EQ(burn.slow_events, 2u);           // slow still sees the bad one
  EXPECT_DOUBLE_EQ(burn.slow_bad_ratio, 0.5);
  EXPECT_DOUBLE_EQ(burn.slow_burn, 5.0);     // 0.5 / 0.1 budget
}

TEST(SloTrackerTest, EventsBeyondSlowWindowExpire) {
  SloTracker slo(Opts(0.9, 100.0, 6400.0));
  slo.Record(false, 50.0);  // bucket 0
  // One full ring later the bad bucket has aged out of the slow window.
  slo.Record(true, 50.0 + 64.0 * 100.0);
  const SloTracker::Burn burn = slo.Evaluate(50.0 + 64.0 * 100.0);
  EXPECT_EQ(burn.slow_events, 1u);
  EXPECT_DOUBLE_EQ(burn.slow_burn, 0.0);
  // Lifetime counters are not windowed.
  EXPECT_EQ(burn.total_events, 2u);
  EXPECT_EQ(burn.bad_events, 1u);
}

TEST(SloTrackerTest, EvaluateClampsEarlierClockToNewestEvent) {
  // A reader on a different clock origin (steady clock vs estate epoch)
  // passes a `now` far behind the recorded times; it must still see the
  // windows as of the newest event instead of an empty ring.
  SloTracker slo(Opts(0.9, 300.0, 3600.0));
  slo.Record(false, 100000.0);
  const SloTracker::Burn burn = slo.Evaluate(5.0);
  EXPECT_EQ(burn.fast_events, 1u);
  EXPECT_DOUBLE_EQ(burn.fast_burn, 10.0);  // 1.0 bad ratio / 0.1 budget
}

TEST(SloTrackerTest, EvaluateTreatsFarAheadClockAsOriginMismatch) {
  // The serve path evaluates the forecast-accuracy tracker with its steady
  // clock while the recorder stamped events with the estate epoch. When the
  // reader's `now` is so far ahead of the newest event that every bucket
  // would age out (more than a slow window), it is an origin mismatch, not
  // idle time: evaluate as of the last event instead of reporting zero burn.
  SloTracker slo(Opts(0.9, 300.0, 3600.0));
  slo.Record(false, 100.0);
  const SloTracker::Burn burn = slo.Evaluate(1e9);
  EXPECT_EQ(burn.fast_events, 1u);
  EXPECT_DOUBLE_EQ(burn.fast_burn, 10.0);  // 1.0 bad ratio / 0.1 budget
  // A gap within the slow window is honest idle time: the fast window ages
  // the event out while the slow window still holds it.
  const SloTracker::Burn idle = slo.Evaluate(500.0);
  EXPECT_EQ(idle.fast_events, 0u);
  EXPECT_EQ(idle.slow_events, 1u);
}

TEST(SloTrackerTest, OptionSanitization) {
  {
    SloTracker slo(Opts(1.5, -10.0, 1.0));
    EXPECT_DOUBLE_EQ(slo.options().objective, 0.99);
    EXPECT_DOUBLE_EQ(slo.options().fast_window_seconds, 300.0);
    // slow < fast is raised to fast.
    EXPECT_DOUBLE_EQ(slo.options().slow_window_seconds, 300.0);
  }
  {
    SloTracker slo(Opts(0.0, 0.0, 0.0));
    EXPECT_DOUBLE_EQ(slo.options().objective, 0.99);
    EXPECT_DOUBLE_EQ(slo.options().fast_window_seconds, 300.0);
    EXPECT_DOUBLE_EQ(slo.options().slow_window_seconds, 300.0);
  }
}

TEST(SloSetTest, AddIsIdempotentByName) {
  SloSet set;
  SloTracker* a = set.Add("serve_latency", Opts(0.99, 300.0, 3600.0));
  SloTracker* again = set.Add("serve_latency", Opts(0.5, 1.0, 2.0));
  EXPECT_EQ(a, again);
  // The original options win; the second Add is ignored.
  EXPECT_DOUBLE_EQ(a->options().objective, 0.99);
}

TEST(SloSetTest, FindReturnsNullForUnknownName) {
  SloSet set;
  set.Add("forecast_accuracy", Opts(0.9, 100.0, 6400.0));
  EXPECT_NE(set.Find("forecast_accuracy"), nullptr);
  EXPECT_EQ(set.Find("nope"), nullptr);
}

TEST(SloSetTest, SnapshotIsSortedByName) {
  SloSet set;
  set.Add("zeta", Opts(0.99, 300.0, 3600.0));
  set.Add("alpha", Opts(0.9, 100.0, 6400.0));
  set.Find("zeta")->Record(false, 10.0);
  const std::vector<SloSet::Entry> snap = set.Snapshot(10.0);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "zeta");
  EXPECT_EQ(snap[1].burn.bad_events, 1u);
}

TEST(SloSetTest, ExportSloMetricsWritesLabelledFamily) {
  SloSet set;
  SloTracker* slo = set.Add("serve_latency", Opts(0.9, 300.0, 3600.0));
  for (int i = 0; i < 9; ++i) slo->Record(true, 100.0);
  slo->Record(false, 100.0);

  auto registry = std::make_shared<MetricsRegistry>();
  ExportSloMetrics(set, registry.get(), 100.0);

  bool saw_objective = false, saw_fast = false, saw_slow = false,
       saw_events = false, saw_bad = false;
  for (const MetricSample& sample : registry->Collect().samples) {
    if (sample.name.rfind("capplan_slo_", 0) != 0) continue;
    ASSERT_EQ(sample.labels.size(), 1u) << sample.name;
    EXPECT_EQ(sample.labels[0].first, "slo");
    EXPECT_EQ(sample.labels[0].second, "serve_latency");
    if (sample.name == "capplan_slo_objective_ratio") {
      saw_objective = true;
      EXPECT_DOUBLE_EQ(sample.value, 0.9);
    } else if (sample.name == "capplan_slo_fast_burn_ratio") {
      saw_fast = true;
      EXPECT_DOUBLE_EQ(sample.value, 1.0);
    } else if (sample.name == "capplan_slo_slow_burn_ratio") {
      saw_slow = true;
      EXPECT_DOUBLE_EQ(sample.value, 1.0);
    } else if (sample.name == "capplan_slo_events_total") {
      saw_events = true;
      EXPECT_DOUBLE_EQ(sample.value, 10.0);
    } else if (sample.name == "capplan_slo_bad_events_total") {
      saw_bad = true;
      EXPECT_DOUBLE_EQ(sample.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_objective && saw_fast && saw_slow && saw_events && saw_bad);
}

TEST(SloSetTest, ExportIsRefreshableAcrossScrapes) {
  SloSet set;
  SloTracker* slo = set.Add("forecast_accuracy", Opts(0.9, 300.0, 3600.0));
  auto registry = std::make_shared<MetricsRegistry>();
  slo->Record(true, 1.0);
  ExportSloMetrics(set, registry.get(), 1.0);
  slo->Record(false, 2.0);
  ExportSloMetrics(set, registry.get(), 2.0);
  for (const MetricSample& sample : registry->Collect().samples) {
    if (sample.name == "capplan_slo_events_total") {
      EXPECT_DOUBLE_EQ(sample.value, 2.0);
    } else if (sample.name == "capplan_slo_bad_events_total") {
      EXPECT_DOUBLE_EQ(sample.value, 1.0);
    }
  }
}

}  // namespace
}  // namespace capplan::obs
