// Experiment-One-style capacity planning on the OLAP workload: forecast
// logical IOPS for both cluster instances, then answer the sizing question
// "what IOPS capacity should this cluster be provisioned with?" — the
// paper's medium/long-term use case (Section 8: "do I need to find extra
// capacity for my estate?").

#include <cstdio>

#include "agent/agent.h"
#include "core/capacity.h"
#include "core/pipeline.h"
#include "repo/repository.h"
#include "workload/cluster.h"

int main() {
  using namespace capplan;

  workload::ClusterSimulator cluster(workload::WorkloadScenario::Olap(), 11);
  agent::MonitoringAgent agent(&cluster);
  repo::MetricsRepository repository;
  repo::ModelRepository registry;

  core::PipelineOptions options;
  options.technique = core::Technique::kSarimaxFftExog;
  options.max_lag = 8;
  options.model_repository = &registry;
  core::Pipeline pipeline(options);

  double cluster_recommended = 0.0;
  for (int inst = 0; inst < cluster.n_instances(); ++inst) {
    auto raw =
        agent.CollectDays(inst, workload::Metric::kLogicalIops, 44);
    if (!raw.ok()) continue;
    const std::string key = repo::MetricsRepository::KeyFor(
        cluster.InstanceName(inst), workload::Metric::kLogicalIops);
    if (!repository.Ingest(key, *raw).ok()) continue;
    auto hourly = repository.Hourly(key);
    if (!hourly.ok()) continue;

    auto report = pipeline.Run(*hourly);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", key.c_str(),
                   report.status().ToString().c_str());
      continue;
    }
    std::printf("--- %s ---\n", key.c_str());
    std::printf("model: %s %s | test MAPA %.1f%%\n",
                core::TechniqueName(report->chosen_family),
                report->chosen_spec.c_str(), report->test_accuracy.mapa);
    if (!report->shocks.empty()) {
      std::printf("recurring shocks accounted for: %zu "
                  "(e.g. the midnight backup)\n",
                  report->shocks.size());
    }
    // Provision so even the 95% upper bound keeps 20% headroom.
    const auto capacity =
        core::CapacityPlanner::RecommendedCapacity(report->forecast, 0.2);
    if (!capacity.ok()) {
      std::fprintf(stderr, "%s: %s\n", key.c_str(),
                   capacity.status().ToString().c_str());
      continue;
    }
    const double recommended = *capacity;
    std::printf("recommended IOPS capacity (20%% headroom over the upper "
                "forecast bound): %.3g IO/h\n\n",
                recommended);
    cluster_recommended += recommended;
  }
  std::printf("cluster-wide recommended capacity: %.3g logical IO/h\n",
              cluster_recommended);

  // The model registry now holds one entry per instance with the one-week
  // staleness policy the paper prescribes.
  std::printf("models recorded in the central repository: %zu\n",
              registry.size());
  return 0;
}
