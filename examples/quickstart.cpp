// Quickstart: forecast a database metric in ~30 lines.
//
// 1. Simulate a clustered database running an OLAP workload (stand-in for a
//    real monitored system).
// 2. Poll it with the monitoring agent and aggregate to hourly values.
// 3. Run the automated Figure-4 pipeline (kAuto: tries both HES and
//    SARIMAX families and keeps the best test-RMSE model).
// 4. Print the chosen model and the next 24 hours with error bars.

#include <cstdio>

#include "agent/agent.h"
#include "core/pipeline.h"
#include "repo/repository.h"
#include "workload/cluster.h"

int main() {
  using namespace capplan;

  // A two-node cluster running the OLAP preset (40 users, daily pattern,
  // nightly backup). Seed makes the run reproducible.
  workload::ClusterSimulator cluster(workload::WorkloadScenario::Olap(),
                                     /*seed=*/7);

  // The agent polls every 15 minutes; the repository aggregates hourly.
  agent::MonitoringAgent agent(&cluster);
  auto raw = agent.CollectDays(/*instance=*/0, workload::Metric::kCpu,
                               /*days=*/44);
  if (!raw.ok()) {
    std::fprintf(stderr, "collect: %s\n", raw.status().ToString().c_str());
    return 1;
  }
  repo::MetricsRepository repository;
  if (auto st = repository.Ingest("cdbm011/cpu", *raw); !st.ok()) {
    std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
    return 1;
  }
  auto hourly = repository.Hourly("cdbm011/cpu");
  if (!hourly.ok()) return 1;

  // Automated model selection + forecast.
  core::PipelineOptions options;
  options.technique = core::Technique::kAuto;
  options.max_lag = 8;  // modest grid for a quick start
  core::Pipeline pipeline(options);
  auto report = pipeline.Run(*hourly);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("chosen model:   %s %s\n",
              core::TechniqueName(report->chosen_family),
              report->chosen_spec.c_str());
  std::printf("test accuracy:  RMSE %.3f | MAPE %.2f%% | MAPA %.2f%%\n",
              report->test_accuracy.rmse, report->test_accuracy.mape,
              report->test_accuracy.mapa);
  std::printf("\nnext 24 hours of CPU%% (mean [lower, upper] @95%%):\n");
  for (std::size_t h = 0; h < report->forecast.mean.size(); ++h) {
    std::printf("  +%2zuh  %6.2f  [%6.2f, %6.2f]\n", h + 1,
                report->forecast.mean[h], report->forecast.lower[h],
                report->forecast.upper[h]);
  }
  return 0;
}
