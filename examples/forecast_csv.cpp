// Forecast a metric trace stored in a CSV file — the entry point for using
// the library on real monitoring exports rather than the simulator.
//
// Usage:
//   forecast_csv [path.csv]
//
// The file must be in the library's series format (see
// repo::WriteSeriesCsv): a "# name,start_epoch,frequency" metadata line
// followed by epoch,value rows. When invoked with no argument, the program
// first writes a demo trace from the simulator and then forecasts it, so it
// is runnable out of the box.

#include <cstdio>
#include <string>

#include "agent/agent.h"
#include "core/pipeline.h"
#include "repo/csv.h"
#include "repo/repository.h"
#include "workload/cluster.h"

int main(int argc, char** argv) {
  using namespace capplan;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Produce a demo trace: 44 days of hourly CPU from the OLTP preset.
    path = "demo_trace.csv";
    workload::ClusterSimulator cluster(workload::WorkloadScenario::Oltp(),
                                       99);
    agent::MonitoringAgent agent(&cluster);
    auto raw = agent.CollectDays(0, workload::Metric::kCpu, 44);
    if (!raw.ok()) {
      std::fprintf(stderr, "demo collect failed: %s\n",
                   raw.status().ToString().c_str());
      return 1;
    }
    repo::MetricsRepository repository;
    if (!repository.Ingest("demo/cpu", *raw).ok()) return 1;
    auto hourly = repository.Hourly("demo/cpu");
    if (!hourly.ok()) return 1;
    if (auto st = repo::WriteSeriesCsv(path, *hourly); !st.ok()) {
      std::fprintf(stderr, "demo write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote demo trace to %s\n", path.c_str());
  }

  auto series = repo::ReadSeriesCsv(path);
  if (!series.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 series.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded '%s': %zu %s observations (%zu missing)\n",
              series->name().c_str(), series->size(),
              tsa::FrequencyName(series->frequency()),
              series->CountMissing());

  core::PipelineOptions options;
  options.technique = core::Technique::kAuto;
  options.max_lag = 8;
  core::Pipeline pipeline(options);
  auto report = pipeline.Run(*series);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("model: %s %s | test RMSE %.4g | MAPA %.1f%%\n",
              core::TechniqueName(report->chosen_family),
              report->chosen_spec.c_str(), report->test_accuracy.rmse,
              report->test_accuracy.mapa);
  std::printf("forecast (%zu steps):\nstep,mean,lower,upper\n",
              report->forecast.mean.size());
  for (std::size_t h = 0; h < report->forecast.mean.size(); ++h) {
    std::printf("%zu,%.4f,%.4f,%.4f\n", h + 1, report->forecast.mean[h],
                report->forecast.lower[h], report->forecast.upper[h]);
  }
  return 0;
}
