// Experiment-Two-style forecasting on the complicated OLTP workload:
// trend (+50 users/day), multiple seasonality (daily + weekly + surge
// windows) and 6-hourly backup shocks. Demonstrates the full SARIMAX +
// Fourier + exogenous machinery and the ">3 occurrences is a behaviour"
// shock rule.

#include <cstdio>

#include "agent/agent.h"
#include "core/pipeline.h"
#include "repo/repository.h"
#include "tsa/seasonality.h"
#include "workload/cluster.h"

int main() {
  using namespace capplan;

  workload::ClusterSimulator cluster(workload::WorkloadScenario::Oltp(), 23);
  // Include some agent unreliability: 2% of polls are lost and repaired by
  // linear interpolation in the pipeline.
  agent::FaultModel faults;
  faults.drop_probability = 0.02;
  agent::MonitoringAgent agent(&cluster, faults);
  repo::MetricsRepository repository;

  auto raw = agent.CollectDays(0, workload::Metric::kLogicalIops, 44);
  if (!raw.ok()) return 1;
  std::printf("agent collected %zu polls (%zu lost to faults)\n",
              raw->size(), raw->CountMissing());
  if (!repository.Ingest("cdbm011/logical_iops", *raw).ok()) return 1;
  auto hourly = repository.Hourly("cdbm011/logical_iops");
  if (!hourly.ok()) return 1;

  core::PipelineOptions options;
  options.technique = core::Technique::kSarimaxFftExog;
  options.max_lag = 8;
  core::Pipeline pipeline(options);
  auto report = pipeline.Run(*hourly);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n=== data understanding ===\n");
  std::printf("gaps filled by interpolation: %zu\n", report->gaps_filled);
  std::printf("trend strength: %.2f | seasonal strength: %.2f\n",
              report->traits.trend_strength,
              report->traits.seasonal_strength);
  std::printf("detected seasons:");
  for (const auto& s : report->seasons) std::printf(" %zuh", s.period);
  std::printf("%s\n",
              report->multiple_seasonality
                  ? "  -> multiple seasonality: Fourier terms enabled"
                  : "");
  std::printf("recommended differencing d = %d\n", report->recommended_d);
  std::printf("recurring shocks (>=3 occurrences): %zu | "
              "transient spikes discarded: %zu\n",
              report->shocks.size(), report->transient_spikes_discarded);

  std::printf("\n=== selection ===\n");
  std::printf("evaluated %zu candidates (%zu fitted)\n",
              report->candidates_evaluated, report->candidates_succeeded);
  std::printf("winner: %s | test RMSE %.4g | MAPA %.1f%%\n",
              report->chosen_spec.c_str(), report->test_accuracy.rmse,
              report->test_accuracy.mapa);

  std::printf("\n=== 24h logical-IOPS forecast ===\n");
  for (std::size_t h = 0; h < report->forecast.mean.size(); ++h) {
    std::printf("  +%2zuh  %12.0f  [%12.0f, %12.0f]\n", h + 1,
                report->forecast.mean[h], report->forecast.lower[h],
                report->forecast.upper[h]);
  }
  return 0;
}
