// Proactive monitoring across a whole estate — the production use case of
// paper Section 8 / Figure 8: for every (instance, metric) of a cluster,
// keep a model in the central registry (refitting when the one-week
// staleness policy demands), and raise early warnings when a forecast
// predicts a threshold breach ("advise through a prediction that there is
// likely to be an issue soon").

#include <cstdio>
#include <string>
#include <vector>

#include "agent/agent.h"
#include "core/capacity.h"
#include "core/pipeline.h"
#include "repo/model_store.h"
#include "repo/repository.h"
#include "workload/cluster.h"

int main() {
  using namespace capplan;

  // The growing OLTP estate is the interesting monitoring target.
  workload::ClusterSimulator cluster(workload::WorkloadScenario::Oltp(), 31);
  agent::MonitoringAgent agent(&cluster);
  repo::MetricsRepository metrics;
  repo::ModelRepository registry;

  core::PipelineOptions options;
  options.technique = core::Technique::kAuto;
  options.max_lag = 6;
  options.model_repository = &registry;
  core::Pipeline pipeline(options);

  struct Watch {
    workload::Metric metric;
    double threshold;
    const char* unit;
  };
  const std::vector<Watch> watches = {
      {workload::Metric::kCpu, 85.0, "%"},
      {workload::Metric::kMemory, 16384.0, "MB"},
  };

  int warnings = 0;
  for (int inst = 0; inst < cluster.n_instances(); ++inst) {
    for (const auto& watch : watches) {
      auto raw = agent.CollectDays(inst, watch.metric, 44);
      if (!raw.ok()) continue;
      const std::string key = repo::MetricsRepository::KeyFor(
          cluster.InstanceName(inst), watch.metric);
      if (!metrics.Ingest(key, *raw).ok()) continue;
      auto hourly = metrics.Hourly(key);
      if (!hourly.ok()) continue;

      // Staleness gate: refit only when the registry says so (always true
      // on the first pass; on a real estate this loop runs periodically).
      if (!registry.IsStale(key, hourly->EndEpoch())) {
        std::printf("%-24s model still fresh, skipping refit\n",
                    key.c_str());
        continue;
      }
      auto report = pipeline.Run(*hourly);
      if (!report.ok()) {
        std::fprintf(stderr, "%s: %s\n", key.c_str(),
                     report.status().ToString().c_str());
        continue;
      }
      const auto breach = core::CapacityPlanner::PredictBreach(
          report->forecast, watch.threshold, report->forecast_start_epoch,
          3600);
      if (!breach.ok()) {
        std::fprintf(stderr, "%s: %s\n", key.c_str(),
                     breach.status().ToString().c_str());
        continue;
      }
      std::printf("%-24s model %-28s MAPA %5.1f%%  ", key.c_str(),
                  report->chosen_spec.c_str(), report->test_accuracy.mapa);
      if (breach->mean_breach) {
        std::printf("ALERT: expected to cross %.5g%s in %zu h\n",
                    watch.threshold, watch.unit,
                    breach->steps_to_mean_breach);
        ++warnings;
      } else if (breach->upper_breach) {
        std::printf("WARN: upper bound crosses %.5g%s in %zu h\n",
                    watch.threshold, watch.unit,
                    breach->steps_to_upper_breach);
        ++warnings;
      } else {
        std::printf("ok (no breach within 24 h)\n");
      }
    }
  }
  std::printf("\n%d early warning(s) raised; %zu model(s) in the registry\n",
              warnings, registry.size());
  // Persist the registry like the paper's central repository does.
  const std::string path = "capacity_monitor_models.csv";
  if (registry.Save(path).ok()) {
    std::printf("model registry persisted to %s\n", path.c_str());
  }
  return 0;
}
