// Estate planning service demo: the paper's production operating mode
// (Sections 5.1, 8) run end to end as a simulated-clock daemon.
//
// A 20-instance OLAP estate is watched on all three metrics (60 series).
// Agents poll every 15 minutes, the repository aggregates hourly, and each
// series' model lives one week or until its RMSE degrades. The run covers
// three simulated weeks, is killed mid-way (scope exit, no checkpoint), and
// recovered from the append-only journal + latest snapshot — the schedule,
// registry, cached forecasts and alert state all survive. Exits non-zero if
// any invariant is violated.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "serve/handlers.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "service/estate_service.h"
#include "workload/scenario.h"

using namespace capplan;

namespace {

constexpr std::int64_t kHour = 3600;
constexpr std::int64_t kDay = 24 * kHour;

int Fail(const std::string& what) {
  std::printf("FAILED: %s\n", what.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // --serve: after the simulated run, stand up the HTTP query server over
  // the service's published view and exercise it with a live client.
  bool serve_demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--serve") serve_demo = true;
  }

  // Tracing stays on for the whole run: every tick, ingest, refit and alert
  // scan lands in the per-thread ring buffers, dumped to a Chrome-trace file
  // at the end (open it in chrome://tracing or https://ui.perfetto.dev).
  obs::Tracer::Instance().Enable();

  auto scenario = workload::WorkloadScenario::Olap();
  scenario.n_instances = 20;
  workload::ClusterSimulator cluster(scenario, 7);

  // Every (instance, metric) pair in the estate. Generous thresholds so the
  // alert feed stays quiet except where the workload genuinely trends up.
  std::vector<service::WatchConfig> watches;
  for (int instance = 0; instance < scenario.n_instances; ++instance) {
    watches.push_back({instance, workload::Metric::kCpu, 90.0});
    watches.push_back({instance, workload::Metric::kMemory, 16384.0});
    watches.push_back({instance, workload::Metric::kLogicalIops, 5e9});
  }

  service::EstateServiceConfig config;
  config.tick_seconds = 6 * kHour;  // four scheduler cycles per day
  config.pipeline.technique = core::Technique::kHes;
  config.fit_threads = 4;
  config.warmup_days = 42;  // Table-1 hourly window available immediately
  config.snapshot_every_ticks = 16;
  config.n_shards = 4;        // consistent-hash partition, batched refits
  config.refit_batch_size = 8;
  config.state_dir = (std::filesystem::temp_directory_path() /
                      "capplan_estate_service").string();
  std::filesystem::remove_all(config.state_dir);

  const int ticks_per_week = static_cast<int>(7 * kDay / config.tick_seconds);
  const int first_leg = 2 * ticks_per_week;   // weeks 1-2, then "crash"
  const int second_leg = ticks_per_week;      // week 3 after recovery

  std::printf("estate: %d instances x 3 metrics = %zu series on %zu shards\n",
              scenario.n_instances, watches.size(), config.n_shards);
  std::printf("cadence: poll %llds, tick %lldh, model max age %lldd\n\n",
              static_cast<long long>(config.poll_seconds),
              static_cast<long long>(config.tick_seconds / kHour),
              static_cast<long long>(
                  config.staleness.max_age_seconds / kDay));

  std::int64_t crash_now = 0;
  std::uint64_t crash_ticks = 0;
  {
    service::EstateService svc(&cluster, watches, config);
    if (auto s = svc.Start(); !s.ok()) return Fail(s.ToString());
    std::printf("[leg 1] warmup backfilled %zu series, first fits due now\n",
                svc.series_count());
    for (int tick = 1; tick <= first_leg; ++tick) {
      auto report = svc.Tick();
      if (!report.ok()) return Fail(report.status().ToString());
      if (report->refits_dispatched > 0 || report->alerts_raised > 0) {
        std::printf(
            "  day %3lld  %2zu refits dispatched, %zu alerts raised\n",
            static_cast<long long>((report->now_epoch -
                                    cluster.start_epoch()) / kDay),
            report->refits_dispatched, report->alerts_raised);
      }
    }
    if (auto s = svc.DrainRefits(); !s.ok()) return Fail(s.ToString());

    const auto& t = svc.telemetry();
    std::printf("[leg 1] %llu ticks, %llu fits ok / %llu failed, "
                "%llu alerts; fit ms min %.0f / p50 %.0f / mean %.0f / "
                "p99 %.0f\n",
                static_cast<unsigned long long>(t.ticks),
                static_cast<unsigned long long>(t.refits_succeeded),
                static_cast<unsigned long long>(t.refits_failed),
                static_cast<unsigned long long>(t.alerts_raised),
                t.fit_stage.min_ms(), t.fit_stage.p50_ms(),
                t.fit_stage.mean_ms(), t.fit_stage.p99_ms());

    // Refits only per staleness policy: two weeks = the initial fit plus at
    // most two age-driven rounds (degradation may add a handful, never a
    // refit-per-tick storm).
    if (t.refits_dispatched < watches.size()) {
      return Fail("not every series got its initial fit");
    }
    if (t.refits_dispatched > 4 * watches.size()) {
      return Fail("refit storm: staleness policy not limiting refits");
    }
    if (svc.registry().size() != watches.size()) {
      return Fail("registry incomplete before crash");
    }
    crash_now = svc.now();
    crash_ticks = svc.tick_count();
    std::printf("[crash] killing the service at day %lld "
                "(no checkpoint)\n\n",
                static_cast<long long>((crash_now - cluster.start_epoch()) /
                                       kDay));
    // Scope exit without Checkpoint(): only journal + periodic snapshots
    // survive, exactly like a process kill.
  }

  service::EstateService svc(&cluster, watches, config);
  if (auto s = svc.Recover(); !s.ok()) return Fail(s.ToString());
  std::printf("[recover] clock=%lld ticks=%llu registry=%zu schedule=%zu\n",
              static_cast<long long>(svc.now()),
              static_cast<unsigned long long>(svc.tick_count()),
              svc.registry().size(), svc.schedule_size());
  if (svc.now() != crash_now) return Fail("recovered clock drifted");
  if (svc.tick_count() != crash_ticks) return Fail("recovered tick count");
  if (svc.registry().size() != watches.size()) {
    return Fail("registry lost models in recovery");
  }
  if (svc.schedule_size() != watches.size()) {
    return Fail("schedule lost entries in recovery");
  }

  for (int tick = 1; tick <= second_leg; ++tick) {
    auto report = svc.Tick();
    if (!report.ok()) return Fail(report.status().ToString());
    if (tick == 1) {
      // Every model crossed its age limit during the outage, so this tick
      // redispatched the whole estate. Let those fits land before advancing
      // the clock further, or the simulated week outruns real fit latency
      // and the cached-forecast feed is never exercised.
      if (auto s = svc.DrainRefits(); !s.ok()) return Fail(s.ToString());
    }
  }
  if (auto s = svc.DrainRefits(); !s.ok()) return Fail(s.ToString());
  if (auto s = svc.Checkpoint(); !s.ok()) return Fail(s.ToString());

  const auto& t = svc.telemetry();
  const std::int64_t days =
      (svc.now() - cluster.start_epoch() - 42 * kDay) / kDay;
  std::printf("[leg 2] ran to day %lld of service time\n",
              static_cast<long long>(days + 14));
  if (days < 7) return Fail("second leg too short");
  // Week 3 crosses every model's one-week age limit exactly once.
  if (t.refits_succeeded < watches.size()) {
    return Fail("age-driven refits missing after recovery");
  }
  if (t.refits_succeeded > 3 * watches.size()) {
    return Fail("refit storm after recovery");
  }
  if (t.forecast_cache_hits == 0) {
    return Fail("alert feed never used a cached forecast");
  }

  std::printf("\ntelemetry (post-recovery service):\n%s\n",
              service::TelemetryToJson(t, /*pretty=*/true).c_str());
  std::printf("\nactive alerts: %zu\n", svc.ActiveAlerts().size());
  for (const auto& alert : svc.ActiveAlerts()) {
    std::printf("  %-28s breach predicted %+lld h (%s bound)\n",
                alert.key.c_str(),
                static_cast<long long>(
                    (alert.predicted_breach_epoch - svc.now()) / kHour),
                alert.upper_only ? "upper" : "mean");
  }

  if (serve_demo) {
    // The serving layer reads the same snapshot the alert feed was built
    // from: an ephemeral-port server (no fixed-port collisions) plus one
    // real client round trip per endpoint family.
    serve::EstateQueryHandler handler(svc.view_channel());
    serve::HttpServer server([&handler](const serve::HttpRequest& request) {
      return handler.Handle(request);
    });
    if (auto s = server.Start(); !s.ok()) return Fail(s.ToString());
    std::printf("\n[serve] capacity query server on 127.0.0.1:%d\n",
                server.port());
    serve::HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      return Fail("serve: client connect failed");
    }
    auto estate = client.Get("/v1/estate");
    if (!estate.ok() || estate->status != 200) {
      return Fail("serve: GET /v1/estate failed");
    }
    std::printf("[serve] GET /v1/estate -> 200 (%zu bytes, %zu instances)\n",
                estate->body.size(), watches.size());
    const std::string& key = svc.keys().front();
    const std::size_t slash = key.find('/');
    const std::string breach_target = "/v1/breach?instance=" +
                                      key.substr(0, slash) +
                                      "&metric=" + key.substr(slash + 1);
    auto breach = client.Get(breach_target);
    if (!breach.ok() || breach->status != 200) {
      return Fail("serve: GET " + breach_target + " failed");
    }
    std::printf("[serve] GET %s ->\n  %s\n", breach_target.c_str(),
                breach->body.c_str());
    // Interpretable decomposition of the same series: trend + one component
    // per routed (or live-detected) seasonal period + residual.
    const std::string decompose_target = "/v1/decompose?key=" + key;
    auto decompose = client.Get(decompose_target);
    if (!decompose.ok() || decompose->status != 200) {
      return Fail("serve: GET " + decompose_target + " failed");
    }
    const std::size_t source = decompose->body.find("\"periods_source\"");
    std::printf("[serve] GET %s -> 200 (%zu bytes, %s)\n",
                decompose_target.c_str(), decompose->body.size(),
                source == std::string::npos
                    ? "?"
                    : decompose->body.substr(source, 28).c_str());
    server.Stop();
  }

  // Observability artifacts: a Prometheus scrape file of the telemetry
  // registry and the full Chrome-trace timeline of the run.
  const std::string scrape = config.state_dir + "/metrics.prom";
  const std::string trace = config.state_dir + "/trace.json";
  if (auto s = svc.WritePrometheus(scrape); !s.ok()) return Fail(s.ToString());
  if (auto s = svc.DumpTrace(trace); !s.ok()) return Fail(s.ToString());
  std::printf("\nwrote %s (%ju bytes) and %s (%ju bytes)\n", scrape.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(scrape)),
              trace.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(trace)));

  std::printf("\nestate service demo OK\n");
  std::filesystem::remove_all(config.state_dir);
  return 0;
}
