// Long-term capacity planning and machine-readable reporting — the paper's
// migration use case ("If I need to migrate to a new platform ... what
// resource capacity do I need in the next 6 months to a year?", Section 8).
//
// Simulates 90 days of the growing OLTP estate, projects per-metric monthly
// peak demand a year ahead, reports the month each threshold would be
// breached, and emits the short-term pipeline report as JSON for dashboard
// integration.

#include <cstdio>

#include "agent/agent.h"
#include "core/capacity.h"
#include "core/pipeline.h"
#include "core/report_json.h"
#include "repo/repository.h"
#include "workload/cluster.h"

int main() {
  using namespace capplan;

  workload::ClusterSimulator cluster(workload::WorkloadScenario::Oltp(), 55);
  agent::MonitoringAgent agent(&cluster);
  repo::MetricsRepository metrics;

  struct Plan {
    workload::Metric metric;
    double capacity;
    const char* unit;
  };
  const Plan plans[] = {
      {workload::Metric::kCpu, 95.0, "%"},
      {workload::Metric::kMemory, 32768.0, "MB"},
      {workload::Metric::kLogicalIops, 2.0e7, "IO/h"},
  };

  std::printf("=== 12-month growth projection (instance cdbm011) ===\n\n");
  for (const auto& plan : plans) {
    auto raw = agent.CollectDays(0, plan.metric, 90);
    if (!raw.ok()) continue;
    const std::string key = repo::MetricsRepository::KeyFor(
        "cdbm011", plan.metric);
    if (!metrics.Ingest(key, *raw).ok()) continue;
    auto hourly = metrics.Hourly(key);
    if (!hourly.ok()) continue;
    auto proj =
        core::CapacityPlanner::ProjectGrowth(*hourly, 12, plan.capacity);
    if (!proj.ok()) {
      std::fprintf(stderr, "%s: %s\n", key.c_str(),
                   proj.status().ToString().c_str());
      continue;
    }
    std::printf("--- %s (capacity %.4g%s) ---\n", key.c_str(), plan.capacity,
                plan.unit);
    std::printf("current daily peak: %.4g | fitted growth: %.3g/day\n",
                proj->current_daily_peak, proj->daily_growth);
    std::printf("projected monthly peaks:");
    for (std::size_t m = 0; m < proj->monthly_peaks.size(); ++m) {
      std::printf(" %.4g", proj->monthly_peaks[m]);
    }
    std::printf("\n");
    if (proj->breach_month > 0) {
      std::printf("capacity exhausted in month %zu -> provision before "
                  "then\n\n",
                  proj->breach_month);
    } else {
      std::printf("capacity sufficient for the full 12-month horizon\n\n");
    }
  }

  // Short-term pipeline report as JSON (dashboard integration surface).
  auto hourly = metrics.Hourly("cdbm011/cpu");
  if (hourly.ok()) {
    core::PipelineOptions opts;
    opts.technique = core::Technique::kHes;  // quick
    core::Pipeline pipeline(opts);
    auto report = pipeline.Run(*hourly);
    if (report.ok()) {
      std::printf("=== pipeline report (JSON) ===\n%s\n",
                  core::ReportToJson(*report, /*pretty=*/true).c_str());
    }
  }
  return 0;
}
