#ifndef CAPPLAN_OBS_TRACE_H_
#define CAPPLAN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace capplan::obs {

// Low-overhead tracing for answering "where did this refit spend its 40
// seconds?". RAII TraceSpans record complete events into per-thread ring
// buffers; the global Tracer drains every ring into one timeline that the
// Chrome-trace exporter (obs/export.h) turns into a chrome://tracing /
// Perfetto flame view of a whole service run.
//
// Cost model: with tracing disabled a span is one relaxed atomic load and a
// branch (safe to leave in per-candidate grid loops); enabled it is two
// monotonic clock reads plus a ~64-byte ring write behind an uncontended
// per-thread mutex — O(100ns). Rings are fixed-capacity and overwrite their
// oldest events when full (dropped() counts the overwrites).

// Injectable monotonic clock (nanoseconds) so tests see deterministic
// timestamps/durations. nullptr restores the steady_clock default.
using TraceClockFn = std::uint64_t (*)();

struct TraceEvent {
  const char* name = "";      // static string: span site, e.g. "service.tick"
  const char* category = "";  // static string: subsystem, e.g. "service"
  const char* tag = nullptr;  // optional static annotation ("pruned", "ok")
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t span_id = 0;    // unique per span, 1-based
  std::uint64_t parent_id = 0;  // enclosing span on the same thread, 0 = root
  std::uint32_t tid = 0;        // small per-thread id, stable within a run
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 8192;

  static Tracer& Instance();

  // Starts recording. `events_per_thread` caps each thread's ring; rings
  // grow lazily up to the cap, so idle threads cost nothing.
  void Enable(std::size_t events_per_thread = kDefaultRingCapacity);
  // Stops recording. Events already buffered stay until Drain()/Clear().
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Collects and clears every thread's buffered events, sorted by start
  // time. Safe to call while other threads keep recording.
  std::vector<TraceEvent> Drain();
  void Clear() { (void)Drain(); }

  // Events overwritten because a ring was full, since the last Drain.
  std::uint64_t dropped() const;
  // Overwrites since process start (never reset by Drain) — backs the
  // capplan_obs_trace_dropped_total metric.
  std::uint64_t total_dropped() const {
    return total_dropped_.load(std::memory_order_relaxed);
  }

  void SetClockForTest(TraceClockFn fn);
  std::uint64_t NowNs() const;

 private:
  friend class TraceSpan;
  struct Ring {
    std::mutex mu;
    std::vector<TraceEvent> events;  // circular once size() == capacity
    std::size_t capacity = kDefaultRingCapacity;
    std::size_t next = 0;  // overwrite cursor once full
    std::uint64_t dropped = 0;
  };

  Tracer() = default;
  void Record(const TraceEvent& event);
  Ring* ThisThreadRing();
  std::uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_id_{0};
  std::atomic<std::uint64_t> total_dropped_{0};
  std::atomic<TraceClockFn> clock_{nullptr};
  std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};

  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

// Innermost active span id on the calling thread (0 when none). Journal
// events are stamped with this so a failure in the event log can be located
// in the trace timeline.
std::uint64_t CurrentSpanId();

// RAII span: construction opens it (when tracing is enabled), destruction
// records the complete event. Name/category/tag must be static strings —
// spans never allocate.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "task");
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Annotates the event, e.g. the prune/ok/error outcome of a candidate.
  void set_tag(const char* tag) { tag_ = tag; }
  // Closes the span now instead of at scope exit (the destructor becomes a
  // no-op). For back-to-back stages inside one scope.
  void End();
  // 0 when tracing was disabled at construction.
  std::uint64_t id() const { return id_; }

 private:
  const char* name_;
  const char* category_;
  const char* tag_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_id_ = 0;
};

}  // namespace capplan::obs

#endif  // CAPPLAN_OBS_TRACE_H_
