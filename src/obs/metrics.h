#ifndef CAPPLAN_OBS_METRICS_H_
#define CAPPLAN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace capplan::obs {

// Thread-safe metrics registry for the always-on service surface. The
// paper's deployment (Section 8) is an estate-wide daemon; these are the
// primitives a standard monitoring stack scrapes from it:
//
//   * Counter   — monotone event count (registered names end in `_total`)
//   * Gauge     — instantaneous level (in-flight refits, active alerts)
//   * Histogram — fixed-bucket latency/size distribution with p50/p90/p99
//                 estimated by linear interpolation inside the bucket
//
// Registration (name + label set -> cell) takes a mutex; the returned
// handles are plain pointers into node-stable storage, so the hot path is
// lock-free relaxed atomics. Handles stay valid for the registry's lifetime
// and may be used concurrently from any thread (ThreadPool workers record
// fit latencies while the driver thread serves a scrape).

// Metric names are snake_case with a unit suffix, lint-enforced by
// tools/check_metrics.py against the catalogue in docs/observability.md:
// counters end in `_total`; histograms and timing gauges carry `_ms`,
// `_seconds`, `_bytes` or `_ratio`.
bool IsValidMetricName(const std::string& name);

// One metric label set, e.g. {{"stage","fit"},{"rung","ses"}}. Kept sorted
// by key so equal sets compare equal regardless of construction order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class CounterCell {
 public:
  void Inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class GaugeCell {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// The last observation that landed in a histogram bucket, with the ids
// needed to pivot from a latency spike to the trace span and wide event
// that caused it (OpenMetrics exemplar).
struct Exemplar {
  bool valid = false;
  double value = 0.0;
  std::uint64_t span_id = 0;
  std::uint64_t event_id = 0;
};

class HistogramCell {
 public:
  // `bounds` are ascending bucket upper limits; an implicit +Inf bucket is
  // appended. An empty vector gets the default latency layout.
  explicit HistogramCell(std::vector<double> bounds);

  void Observe(double v);
  // Observe() plus exemplar capture: the bucket the observation lands in
  // remembers (v, span_id, event_id) as its exposition exemplar. Lock-free
  // (per-bucket seqlock); a writer claims the slot with a CAS, and one that
  // loses the claim drops its exemplar — some recent observation wins, and
  // the published triple is always from a single observation.
  void ObserveWithExemplar(double v, std::uint64_t span_id,
                           std::uint64_t event_id);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Exact observed extrema (0 when empty) — the histogram keeps them so the
  // percentile interpolation can clamp to the real observed range.
  double Min() const;
  double Max() const;
  // q in [0,1]; linear interpolation inside the covering bucket, clamped to
  // the observed [min, max]. Returns 0 for an empty histogram.
  double Quantile(double q) const;
  // Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket.
  std::vector<std::uint64_t> BucketCounts() const;
  // Per-bucket exemplars, parallel to BucketCounts(); entries are invalid
  // for buckets that never saw an ObserveWithExemplar.
  std::vector<Exemplar> Exemplars() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  // Seqlock-protected exemplar slot: a writer claims the slot by CASing the
  // sequence from even to odd (so writers never interleave), and readers
  // retry until they see the same even sequence on both sides of the data
  // loads, so the (value, span, event) triple is always mutually consistent.
  struct ExemplarSlot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<double> value{0.0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> event_id{0};
  };

  std::size_t BucketIndex(double v) const;

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::vector<ExemplarSlot> exemplars_;              // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// Cheap copyable handles. A default-constructed handle is detached and all
// operations on it are no-ops (reads return 0), so structs of handles can be
// declared before the registry binds them.
class Counter {
 public:
  Counter() = default;
  explicit Counter(CounterCell* cell) : cell_(cell) {}
  void Inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->Inc(n);
  }
  std::uint64_t value() const { return cell_ == nullptr ? 0 : cell_->Value(); }
  // Drop-in replacements for the plain-integer counters this API replaced
  // (ServiceTelemetry predates the registry): ++, += and assignment mutate
  // the underlying cell, and the handle converts to its current value.
  Counter& operator++() {
    Inc();
    return *this;
  }
  Counter& operator+=(std::uint64_t n) {
    Inc(n);
    return *this;
  }
  Counter& operator=(std::uint64_t n) {
    if (cell_ != nullptr) cell_->Set(n);
    return *this;
  }
  operator std::uint64_t() const { return value(); }  // NOLINT(runtime/explicit)

 private:
  CounterCell* cell_ = nullptr;
};

inline std::ostream& operator<<(std::ostream& os, const Counter& c) {
  return os << c.value();
}

class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(GaugeCell* cell) : cell_(cell) {}
  void Set(double v) {
    if (cell_ != nullptr) cell_->Set(v);
  }
  void Add(double d) {
    if (cell_ != nullptr) cell_->Add(d);
  }
  double value() const { return cell_ == nullptr ? 0.0 : cell_->Value(); }

 private:
  GaugeCell* cell_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(HistogramCell* cell) : cell_(cell) {}
  void Observe(double v) {
    if (cell_ != nullptr) cell_->Observe(v);
  }
  void ObserveWithExemplar(double v, std::uint64_t span_id,
                           std::uint64_t event_id) {
    if (cell_ != nullptr) cell_->ObserveWithExemplar(v, span_id, event_id);
  }
  std::uint64_t count() const { return cell_ == nullptr ? 0 : cell_->Count(); }
  double sum() const { return cell_ == nullptr ? 0.0 : cell_->Sum(); }
  double min() const { return cell_ == nullptr ? 0.0 : cell_->Min(); }
  double max() const { return cell_ == nullptr ? 0.0 : cell_->Max(); }
  double quantile(double q) const {
    return cell_ == nullptr ? 0.0 : cell_->Quantile(q);
  }

 private:
  HistogramCell* cell_ = nullptr;
};

// Default bucket upper bounds (milliseconds) for stage/fit latencies: the
// paper's grid fits range from milliseconds (HES) to tens of seconds (the
// 660-candidate SARIMAX grid), so the layout spans 0.25 ms .. 60 s.
std::vector<double> DefaultLatencyBucketsMs();

enum class MetricType { kCounter, kGauge, kHistogram };

// Point-in-time view of one metric (one label set), for the exporters.
struct MetricSample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  LabelSet labels;
  double value = 0.0;  // counter/gauge
  // Histogram only.
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // per-bucket, +Inf last
  std::vector<Exemplar> exemplars;           // parallel to bucket_counts
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, labels)
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration is idempotent: the same (name, labels) returns a handle to
  // the same cell. `help` is kept from the first registration.
  Counter GetCounter(const std::string& name, const LabelSet& labels = {},
                     const std::string& help = "");
  Gauge GetGauge(const std::string& name, const LabelSet& labels = {},
                 const std::string& help = "");
  // Empty `bounds` selects DefaultLatencyBucketsMs(). Bounds are fixed at
  // first registration; later calls for the same metric ignore them.
  Histogram GetHistogram(const std::string& name,
                         const std::vector<double>& bounds = {},
                         const LabelSet& labels = {},
                         const std::string& help = "");

  // Consistent-enough snapshot for a scrape (counters are relaxed atomics;
  // a scrape concurrent with updates may be one event behind per cell).
  MetricsSnapshot Collect() const;

  std::size_t size() const;

 private:
  struct Entry {
    MetricType type;
    std::string help;
    std::unique_ptr<CounterCell> counter;
    std::unique_ptr<GaugeCell> gauge;
    std::unique_ptr<HistogramCell> histogram;
  };
  using Key = std::pair<std::string, LabelSet>;

  static LabelSet Sorted(LabelSet labels);

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
};

}  // namespace capplan::obs

#endif  // CAPPLAN_OBS_METRICS_H_
