#include "obs/trace.h"

#include <algorithm>
#include <chrono>

namespace capplan::obs {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint32_t> g_next_tid{0};

std::uint32_t ThisThreadTid() {
  thread_local const std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

// Innermost open span per thread; spans nest strictly (RAII), so a plain
// stack of ids is enough to give children their parent.
struct SpanStack {
  std::vector<std::uint64_t> ids;
};

SpanStack& ThisThreadSpans() {
  thread_local SpanStack stack;
  return stack;
}

}  // namespace

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all threads
  return *tracer;
}

void Tracer::Enable(std::size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  ring_capacity_.store(events_per_thread, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::SetClockForTest(TraceClockFn fn) {
  clock_.store(fn, std::memory_order_relaxed);
}

std::uint64_t Tracer::NowNs() const {
  const TraceClockFn fn = clock_.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : SteadyNowNs();
}

Tracer::Ring* Tracer::ThisThreadRing() {
  // The thread_local shared_ptr keeps the ring alive while its thread
  // runs; the registry copy keeps buffered events reachable after thread
  // exit (selector ThreadPools are short-lived) until the next Drain.
  thread_local std::shared_ptr<Ring> ring;
  if (ring == nullptr) {
    ring = std::make_shared<Ring>();
    ring->capacity = ring_capacity_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings_.push_back(ring);
  }
  return ring.get();
}

void Tracer::Record(const TraceEvent& event) {
  Ring* ring = ThisThreadRing();
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(event);
    return;
  }
  ring->events[ring->next] = event;
  ring->next = (ring->next + 1) % ring->capacity;
  ++ring->dropped;
  total_dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
    // Rings whose thread has exited (registry holds the only reference)
    // are flushed below and then forgotten so dead threads don't leak.
    std::erase_if(rings_, [](const std::shared_ptr<Ring>& r) {
      return r.use_count() <= 2;  // `rings_` copy + local `rings` copy
    });
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    // Oldest-first: the tail [next, end) precedes [0, next) once wrapped.
    for (std::size_t i = ring->next; i < ring->events.size(); ++i) {
      out.push_back(ring->events[i]);
    }
    for (std::size_t i = 0; i < ring->next; ++i) {
      out.push_back(ring->events[i]);
    }
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

std::uint64_t CurrentSpanId() {
  const SpanStack& stack = ThisThreadSpans();
  return stack.ids.empty() ? 0 : stack.ids.back();
}

TraceSpan::TraceSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  Tracer& tracer = Tracer::Instance();
  if (!tracer.enabled()) return;
  id_ = tracer.NextSpanId();
  parent_id_ = CurrentSpanId();
  ThisThreadSpans().ids.push_back(id_);
  start_ns_ = tracer.NowNs();
}

TraceSpan::~TraceSpan() { End(); }

void TraceSpan::End() {
  if (id_ == 0) return;
  Tracer& tracer = Tracer::Instance();
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.tag = tag_;
  event.start_ns = start_ns_;
  const std::uint64_t end_ns = tracer.NowNs();
  event.dur_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  event.span_id = id_;
  event.parent_id = parent_id_;
  event.tid = ThisThreadTid();
  SpanStack& stack = ThisThreadSpans();
  if (!stack.ids.empty() && stack.ids.back() == id_) stack.ids.pop_back();
  id_ = 0;  // the destructor (or a second End) becomes a no-op
  // Record even if tracing was disabled mid-span: the open event is more
  // useful than a hole in the timeline.
  tracer.Record(event);
}

}  // namespace capplan::obs
