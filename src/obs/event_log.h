#ifndef CAPPLAN_OBS_EVENT_LOG_H_
#define CAPPLAN_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace capplan::obs {

// Flight recorder: one *wide event* per unit of work, kept in bounded
// per-thread rings. Where a TraceSpan answers "where did the time go inside
// this operation?", a wide event answers "which operations happened, to
// which key, with what outcome?" — one self-contained record per HTTP
// request, refit, promotion/rollback, quality repair, tick overrun or store
// seal/flush, carrying the ids (span, journal seq) needed to pivot into the
// trace timeline and the journal. The /v1/debug/* handlers serve a merged
// snapshot of the rings, so the last few thousand units of work are always
// queryable on-box without any external pipeline.
//
// Cost model matches obs::Tracer: disabled emission is one relaxed load and
// a branch; enabled it is one ~160-byte ring write behind an uncontended
// per-thread mutex. Rings overwrite their oldest events when full;
// dropped()/total_dropped() count the overwrites.

enum class WideEventKind : std::uint8_t {
  kHttpRequest = 0,
  kRefit,
  kPromotion,
  kRollback,
  kQualityRepair,
  kTickOverrun,
  kStoreSeal,
  kStoreFlush,
};

// Stable lowercase names ("http_request", "refit", ...) used by the JSON
// debug surface and its ?kind= filter.
const char* WideEventKindName(WideEventKind kind);
bool WideEventKindFromName(std::string_view name, WideEventKind* out);

struct WideEvent {
  static constexpr std::size_t kKeyCapacity = 64;  // incl. NUL, truncating
  static constexpr std::size_t kMaxAttrs = 6;

  struct Attr {
    const char* name = "";  // static string
    double value = 0.0;
  };

  std::uint64_t id = 0;  // assigned by Emit(), 1-based, monotone
  WideEventKind kind = WideEventKind::kHttpRequest;
  char key[kKeyCapacity] = {};  // "<instance>/<metric>" or request path
  std::int32_t shard = -1;      // -1 when not shard-scoped
  std::uint64_t span_id = 0;    // enclosing trace span, 0 = none
  std::uint64_t journal_seq = 0;  // journal append seq, 0 = not journalled
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  const char* outcome = "ok";  // static string: "ok", "error", "rejected"...
  std::uint32_t tid = 0;
  std::uint8_t n_attrs = 0;
  Attr attrs[kMaxAttrs] = {};

  void set_key(std::string_view k) {
    const std::size_t n = k.size() < kKeyCapacity - 1 ? k.size()
                                                      : kKeyCapacity - 1;
    std::memcpy(key, k.data(), n);
    key[n] = '\0';
  }
  void AddAttr(const char* name, double value) {
    if (n_attrs < kMaxAttrs) attrs[n_attrs++] = {name, value};
  }
};

// Injectable monotonic clock (nanoseconds); nullptr restores steady_clock.
using EventClockFn = std::uint64_t (*)();

class EventLog {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 4096;

  static EventLog& Instance();

  void Enable(std::size_t events_per_thread = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Records `event` (filling id, tid, and span_id when unset) into the
  // calling thread's ring. Returns the assigned event id, 0 when disabled.
  std::uint64_t Emit(WideEvent event);

  // Merged copy of every ring, oldest first, rings left intact — the debug
  // handlers must not consume the recorder. Safe during concurrent Emits.
  std::vector<WideEvent> Snapshot() const;

  // Collects and clears every ring (same contract as Tracer::Drain).
  std::vector<WideEvent> Drain();
  void Clear() { (void)Drain(); }

  // Events overwritten because a ring was full: since the last Drain, and
  // cumulatively since process start (the `_total` metric source).
  std::uint64_t dropped() const;
  std::uint64_t total_dropped() const {
    return total_dropped_.load(std::memory_order_relaxed);
  }

  void SetClockForTest(EventClockFn fn);
  std::uint64_t NowNs() const;

 private:
  struct Ring {
    std::mutex mu;
    std::vector<WideEvent> events;  // circular once size() == capacity
    std::size_t capacity = kDefaultRingCapacity;
    std::size_t next = 0;  // overwrite cursor once full
    std::uint64_t dropped = 0;
  };

  EventLog() = default;
  Ring* ThisThreadRing();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> total_dropped_{0};
  std::atomic<EventClockFn> clock_{nullptr};
  std::atomic<std::size_t> ring_capacity_{kDefaultRingCapacity};

  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
};

// RAII emitter for call sites that do not already measure their duration:
// construction stamps start_ns, End()/destruction stamps dur_ns and emits.
// Mutate event() freely in between (key, outcome, attrs).
class WideEventScope {
 public:
  explicit WideEventScope(WideEventKind kind);
  ~WideEventScope() { End(); }

  WideEventScope(const WideEventScope&) = delete;
  WideEventScope& operator=(const WideEventScope&) = delete;

  WideEvent& event() { return event_; }
  // Emits now (the destructor becomes a no-op). Returns the event id.
  std::uint64_t End();

 private:
  WideEvent event_;
  bool armed_ = false;
};

}  // namespace capplan::obs

#endif  // CAPPLAN_OBS_EVENT_LOG_H_
