#include "obs/event_log.h"

#include <algorithm>
#include <chrono>

#include "obs/trace.h"

namespace capplan::obs {

namespace {

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint32_t> g_next_tid{0};

std::uint32_t ThisThreadTid() {
  thread_local const std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

}  // namespace

const char* WideEventKindName(WideEventKind kind) {
  switch (kind) {
    case WideEventKind::kHttpRequest:
      return "http_request";
    case WideEventKind::kRefit:
      return "refit";
    case WideEventKind::kPromotion:
      return "promotion";
    case WideEventKind::kRollback:
      return "rollback";
    case WideEventKind::kQualityRepair:
      return "quality_repair";
    case WideEventKind::kTickOverrun:
      return "tick_overrun";
    case WideEventKind::kStoreSeal:
      return "store_seal";
    case WideEventKind::kStoreFlush:
      return "store_flush";
  }
  return "unknown";
}

bool WideEventKindFromName(std::string_view name, WideEventKind* out) {
  static constexpr WideEventKind kAll[] = {
      WideEventKind::kHttpRequest,  WideEventKind::kRefit,
      WideEventKind::kPromotion,    WideEventKind::kRollback,
      WideEventKind::kQualityRepair, WideEventKind::kTickOverrun,
      WideEventKind::kStoreSeal,    WideEventKind::kStoreFlush,
  };
  for (WideEventKind k : kAll) {
    if (name == WideEventKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

EventLog& EventLog::Instance() {
  static EventLog* log = new EventLog();  // leaked: outlives all threads
  return *log;
}

void EventLog::Enable(std::size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  ring_capacity_.store(events_per_thread, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void EventLog::Disable() {
  enabled_.store(false, std::memory_order_release);
}

void EventLog::SetClockForTest(EventClockFn fn) {
  clock_.store(fn, std::memory_order_relaxed);
}

std::uint64_t EventLog::NowNs() const {
  const EventClockFn fn = clock_.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : SteadyNowNs();
}

EventLog::Ring* EventLog::ThisThreadRing() {
  // Same lifetime scheme as Tracer: the thread_local shared_ptr keeps the
  // ring alive while its thread runs, the registry copy keeps buffered
  // events reachable after thread exit until the next Drain.
  thread_local std::shared_ptr<Ring> ring;
  if (ring == nullptr) {
    ring = std::make_shared<Ring>();
    ring->capacity = ring_capacity_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings_.push_back(ring);
  }
  return ring.get();
}

std::uint64_t EventLog::Emit(WideEvent event) {
  if (!enabled()) return 0;
  event.id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (event.tid == 0) event.tid = ThisThreadTid();
  if (event.span_id == 0) event.span_id = CurrentSpanId();
  Ring* ring = ThisThreadRing();
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(event);
    return event.id;
  }
  ring->events[ring->next] = event;
  ring->next = (ring->next + 1) % ring->capacity;
  ++ring->dropped;
  total_dropped_.fetch_add(1, std::memory_order_relaxed);
  return event.id;
}

std::vector<WideEvent> EventLog::Snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::vector<WideEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    for (std::size_t i = ring->next; i < ring->events.size(); ++i) {
      out.push_back(ring->events[i]);
    }
    for (std::size_t i = 0; i < ring->next; ++i) {
      out.push_back(ring->events[i]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const WideEvent& a, const WideEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::vector<WideEvent> EventLog::Drain() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
    std::erase_if(rings_, [](const std::shared_ptr<Ring>& r) {
      return r.use_count() <= 2;  // `rings_` copy + local `rings` copy
    });
  }
  std::vector<WideEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    for (std::size_t i = ring->next; i < ring->events.size(); ++i) {
      out.push_back(ring->events[i]);
    }
    for (std::size_t i = 0; i < ring->next; ++i) {
      out.push_back(ring->events[i]);
    }
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const WideEvent& a, const WideEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

WideEventScope::WideEventScope(WideEventKind kind) {
  event_.kind = kind;
  EventLog& log = EventLog::Instance();
  if (!log.enabled()) return;
  armed_ = true;
  event_.start_ns = log.NowNs();
}

std::uint64_t WideEventScope::End() {
  if (!armed_) return 0;
  armed_ = false;
  EventLog& log = EventLog::Instance();
  const std::uint64_t end_ns = log.NowNs();
  event_.dur_ns = end_ns >= event_.start_ns ? end_ns - event_.start_ns : 0;
  return log.Emit(event_);
}

}  // namespace capplan::obs
