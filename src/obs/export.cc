#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/json_writer.h"

namespace capplan::obs {

namespace {

// Prometheus value formatting: shortest round-trip decimal, integral values
// without an exponent, infinities spelled per the exposition format.
std::string FormatPromValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int prec = 1; prec < 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendLabelValue(std::string* out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// Renders `{k1="v1",k2="v2"}`; `extra` appends one more pair (used for
// histogram `le`). Empty label sets render as nothing.
std::string RenderLabels(const LabelSet& labels, const char* extra_key = nullptr,
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    AppendLabelValue(&out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    AppendLabelValue(&out, extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

Status AtomicWrite(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (!out.is_open()) {
      return Status::IoError("cannot open for write: " + tmp);
    }
    out << content;
    out.flush();
    if (!out.good()) {
      return Status::IoError("short write: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot,
                             ExpositionFormat format) {
  const bool with_exemplars = format == ExpositionFormat::kOpenMetrics;
  std::string out;
  std::string last_family;
  for (const MetricSample& s : snapshot.samples) {
    if (s.name != last_family) {
      last_family = s.name;
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " " + s.help + "\n";
      }
      out += "# TYPE " + s.name + " ";
      out += TypeName(s.type);
      out += '\n';
    }
    switch (s.type) {
      case MetricType::kCounter:
      case MetricType::kGauge:
        out += s.name + RenderLabels(s.labels) + " " + FormatPromValue(s.value) +
               "\n";
        break;
      case MetricType::kHistogram: {
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          cum += s.bucket_counts[i];
          const std::string le =
              i < s.bounds.size() ? FormatPromValue(s.bounds[i]) : "+Inf";
          out += s.name + "_bucket" + RenderLabels(s.labels, "le", le) + " " +
                 std::to_string(cum);
          if (with_exemplars && i < s.exemplars.size() && s.exemplars[i].valid) {
            const Exemplar& e = s.exemplars[i];
            out += " # {span_id=\"" + std::to_string(e.span_id) +
                   "\",event_id=\"" + std::to_string(e.event_id) + "\"} " +
                   FormatPromValue(e.value);
          }
          out += "\n";
        }
        out += s.name + "_sum" + RenderLabels(s.labels) + " " +
               FormatPromValue(s.sum) + "\n";
        out += s.name + "_count" + RenderLabels(s.labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  if (format == ExpositionFormat::kOpenMetrics) out += "# EOF\n";
  return out;
}

Status WritePrometheusFile(const MetricsSnapshot& snapshot,
                           const std::string& path) {
  return AtomicWrite(path, ToPrometheusText(snapshot));
}

namespace {

// Parses a `{k="v",...}` block starting at *pos (which must point at the
// opening brace); advances *pos past the closing brace.
bool ParseLabelBlock(const std::string& line, std::size_t* pos,
                     LabelSet* labels) {
  std::size_t i = *pos + 1;
  while (i < line.size() && line[i] != '}') {
    std::size_t eq = line.find('=', i);
    if (eq == std::string::npos || eq + 1 >= line.size() ||
        line[eq + 1] != '"') {
      return false;
    }
    std::string key = line.substr(i, eq - i);
    std::string value;
    std::size_t j = eq + 2;
    bool closed = false;
    while (j < line.size()) {
      char c = line[j];
      if (c == '\\' && j + 1 < line.size()) {
        char n = line[j + 1];
        value += n == 'n' ? '\n' : n;
        j += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++j;
        break;
      }
      value += c;
      ++j;
    }
    if (!closed) return false;
    labels->emplace_back(std::move(key), std::move(value));
    if (j < line.size() && line[j] == ',') ++j;
    i = j;
  }
  if (i >= line.size() || line[i] != '}') return false;
  *pos = i + 1;
  return true;
}

bool ParseValueToken(const std::string& token, double* out) {
  if (token == "+Inf" || token == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' && end != token.c_str();
}

// Parses `name{k="v",...} value [# {k="v",...} value]`, leaving `labels`
// empty when there is no label block. The optional `#` suffix is an
// OpenMetrics exemplar (no timestamp support). Returns false on malformed
// input.
bool ParseSampleLine(const std::string& line, PrometheusSample* out) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  if (i == 0) return false;
  out->name = line.substr(0, i);
  out->labels.clear();
  out->has_exemplar = false;
  out->exemplar = PrometheusExemplar{};
  if (i < line.size() && line[i] == '{') {
    if (!ParseLabelBlock(line, &i, &out->labels)) return false;
  }
  while (i < line.size() && line[i] == ' ') ++i;
  std::size_t vend = i;
  while (vend < line.size() && line[vend] != ' ') ++vend;
  if (vend == i) return false;
  if (!ParseValueToken(line.substr(i, vend - i), &out->value)) return false;
  i = vend;
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size()) return true;
  if (line[i] != '#') return false;
  ++i;
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size() || line[i] != '{') return false;
  if (!ParseLabelBlock(line, &i, &out->exemplar.labels)) return false;
  while (i < line.size() && line[i] == ' ') ++i;
  vend = i;
  while (vend < line.size() && line[vend] != ' ') ++vend;
  if (vend == i) return false;
  if (!ParseValueToken(line.substr(i, vend - i), &out->exemplar.value)) {
    return false;
  }
  i = vend;
  while (i < line.size() && line[i] == ' ') ++i;
  if (i != line.size()) return false;
  out->has_exemplar = true;
  return true;
}

}  // namespace

Result<PrometheusText> ParsePrometheusText(const std::string& text) {
  PrometheusText parsed;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, name;
      meta >> hash >> kind >> name;
      if (kind == "HELP" || kind == "TYPE") {
        PrometheusFamily* family = nullptr;
        for (auto& f : parsed.families) {
          if (f.name == name) family = &f;
        }
        if (family == nullptr) {
          parsed.families.push_back({name, "", "untyped"});
          family = &parsed.families.back();
        }
        std::string rest;
        std::getline(meta, rest);
        while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
        if (kind == "HELP") {
          family->help = rest;
        } else {
          family->type = rest;
        }
      }
      continue;  // other comments are legal and ignored
    }
    PrometheusSample sample;
    if (!ParseSampleLine(line, &sample)) {
      return Status::InvalidArgument("malformed exposition line " +
                                     std::to_string(line_no) + ": " + line);
    }
    parsed.samples.push_back(std::move(sample));
  }
  return parsed;
}

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::uint64_t base_ns = std::numeric_limits<std::uint64_t>::max();
  for (const TraceEvent& e : events) base_ns = std::min(base_ns, e.start_ns);
  if (events.empty()) base_ns = 0;

  JsonWriter w(/*pretty=*/false);
  w.BeginObject();
  w.BeginArray("traceEvents");
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.String("name", e.name);
    w.String("cat", e.category);
    w.String("ph", "X");
    w.Number("ts", static_cast<double>(e.start_ns - base_ns) / 1000.0);
    w.Number("dur", static_cast<double>(e.dur_ns) / 1000.0);
    w.Integer("pid", 1);
    w.Integer("tid", static_cast<long long>(e.tid));
    w.Key("args");
    w.BeginObject();
    w.Integer("span_id", static_cast<long long>(e.span_id));
    w.Integer("parent_id", static_cast<long long>(e.parent_id));
    if (e.tag != nullptr) w.String("tag", e.tag);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.String("displayTimeUnit", "ms");
  w.EndObject();
  return w.Take();
}

Status WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                            const std::string& path) {
  return AtomicWrite(path, ToChromeTraceJson(events));
}

}  // namespace capplan::obs
