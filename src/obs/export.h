#ifndef CAPPLAN_OBS_EXPORT_H_
#define CAPPLAN_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace capplan::obs {

// Serializers from the in-memory registry/tracer state to the two formats
// standard tooling consumes: Prometheus text exposition (node-exporter style
// scrape file) and the Chrome trace event format (chrome://tracing,
// Perfetto). File writers go through a tmp-file + rename so a scraper never
// reads a half-written exposition.

// ---------------------------------------------------------------------------
// Prometheus text exposition format.

// Which exposition dialect to render. The two differ in exemplar support:
// the Prometheus 0.0.4 text grammar allows only an optional timestamp after
// a sample value, so a vanilla scraper errors on an exemplar token and
// fails the whole scrape — exemplars may be emitted only in the OpenMetrics
// dialect a scraper explicitly asks for via `Accept`.
enum class ExpositionFormat {
  // `text/plain; version=0.0.4` — what a vanilla Prometheus scraper and
  // the node-exporter textfile collector consume. No exemplars.
  kPrometheus004,
  // `application/openmetrics-text` — buckets that captured an exemplar
  // carry it after the sample value, and the exposition is terminated by
  // the mandatory `# EOF` line:
  //
  //   name_bucket{le="5"} 3 # {span_id="12",event_id="7"} 2.25
  kOpenMetrics,
};

// Renders `# HELP` / `# TYPE` headers plus one line per series. Histograms
// expand to cumulative `<name>_bucket{le="..."}` series (ending in
// le="+Inf"), `<name>_sum` and `<name>_count`. Samples are emitted in
// snapshot order (sorted by name, then labels).
std::string ToPrometheusText(
    const MetricsSnapshot& snapshot,
    ExpositionFormat format = ExpositionFormat::kPrometheus004);

// Atomically replaces `path` with the rendered exposition, in the 0.0.4
// dialect: the file is meant for the node-exporter textfile collector,
// which speaks only the plain-text grammar.
Status WritePrometheusFile(const MetricsSnapshot& snapshot,
                           const std::string& path);

// An OpenMetrics exemplar attached to one scraped sample line.
struct PrometheusExemplar {
  LabelSet labels;  // e.g. {{"span_id","12"},{"event_id","7"}}
  double value = 0.0;
};

// One scraped series, e.g. {"fit_latency_ms_bucket", {{"le","0.5"}}, 3}.
struct PrometheusSample {
  std::string name;
  LabelSet labels;
  double value = 0.0;
  bool has_exemplar = false;
  PrometheusExemplar exemplar;
};

// `# HELP` / `# TYPE` metadata for one metric family.
struct PrometheusFamily {
  std::string name;
  std::string help;
  std::string type;  // "counter" | "gauge" | "histogram" | "untyped"
};

struct PrometheusText {
  std::vector<PrometheusFamily> families;
  std::vector<PrometheusSample> samples;
};

// Minimal parser for the exposition format — enough for round-trip tests
// and for external checkers to validate a scrape file. Rejects malformed
// sample lines, unbalanced label quoting, and non-numeric values. Accepts
// "+Inf"/"-Inf"/"NaN" values per the format spec.
Result<PrometheusText> ParsePrometheusText(const std::string& text);

// ---------------------------------------------------------------------------
// Chrome trace event format (the JSON consumed by chrome://tracing and
// https://ui.perfetto.dev).

// Renders complete ("ph":"X") events. Timestamps are rebased so the
// earliest event starts at ts=0 and converted to microseconds; span/parent
// ids and tags ride in "args" so the flame view can be correlated with
// journal events.
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

// Atomically replaces `path` with the rendered trace.
Status WriteChromeTraceFile(const std::vector<TraceEvent>& events,
                            const std::string& path);

}  // namespace capplan::obs

#endif  // CAPPLAN_OBS_EXPORT_H_
