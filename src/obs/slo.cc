#include "obs/slo.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace capplan::obs {

SloTracker::SloTracker(Options options) : options_(options) {
  if (!(options_.objective > 0.0) || !(options_.objective < 1.0)) {
    options_.objective = 0.99;
  }
  if (!(options_.fast_window_seconds > 0.0)) {
    options_.fast_window_seconds = 300.0;
  }
  if (options_.slow_window_seconds < options_.fast_window_seconds) {
    options_.slow_window_seconds = options_.fast_window_seconds;
  }
  bucket_width_ = options_.slow_window_seconds / static_cast<double>(kBuckets);
}

void SloTracker::Record(bool good, double now_seconds) {
  const std::int64_t index =
      static_cast<std::int64_t>(std::floor(now_seconds / bucket_width_));
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = buckets_[static_cast<std::size_t>(
      ((index % kBuckets) + kBuckets) % kBuckets)];
  if (b.index != index) {
    b.index = index;
    b.good = 0;
    b.bad = 0;
  }
  if (good) {
    ++b.good;
  } else {
    ++b.bad;
    ++bad_events_;
  }
  ++total_events_;
  last_record_time_ = std::max(last_record_time_, now_seconds);
  any_recorded_ = true;
}

SloTracker::Burn SloTracker::Evaluate(double now_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  Burn out;
  out.total_events = total_events_;
  out.bad_events = bad_events_;
  if (!any_recorded_) return out;
  // Readers on a different clock origin (the handler's steady clock vs the
  // estate epoch) see the windows as of the newest event. A reader behind
  // the recorder is advanced to the newest event; a reader so far ahead
  // that every bucket would age out (more than a slow window past the
  // newest event — an origin mismatch, not honest idle time) is pulled back
  // to the newest event too, so a mismatched clock cannot silently zero an
  // active burn. Within a slow window of the last event the gap is treated
  // as real elapsed time and buckets age out normally.
  double now = std::max(now_seconds, last_record_time_);
  if (now - last_record_time_ > options_.slow_window_seconds) {
    now = last_record_time_;
  }
  const std::int64_t now_index =
      static_cast<std::int64_t>(std::floor(now / bucket_width_));
  const std::int64_t fast_buckets = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(options_.fast_window_seconds / bucket_width_)));
  std::uint64_t fast_good = 0, fast_bad = 0, slow_good = 0, slow_bad = 0;
  for (const Bucket& b : buckets_) {
    if (b.index < 0) continue;
    const std::int64_t age = now_index - b.index;
    if (age < 0 || age >= static_cast<std::int64_t>(kBuckets)) continue;
    slow_good += b.good;
    slow_bad += b.bad;
    if (age < fast_buckets) {
      fast_good += b.good;
      fast_bad += b.bad;
    }
  }
  out.fast_events = fast_good + fast_bad;
  out.slow_events = slow_good + slow_bad;
  const double budget = std::max(1.0 - options_.objective, 1e-9);
  if (out.fast_events > 0) {
    out.fast_bad_ratio =
        static_cast<double>(fast_bad) / static_cast<double>(out.fast_events);
    out.fast_burn = out.fast_bad_ratio / budget;
  }
  if (out.slow_events > 0) {
    out.slow_bad_ratio =
        static_cast<double>(slow_bad) / static_cast<double>(out.slow_events);
    out.slow_burn = out.slow_bad_ratio / budget;
  }
  return out;
}

SloTracker* SloSet::Add(std::string name, SloTracker::Options options) {
  for (auto& [existing, tracker] : slos_) {
    if (existing == name) return tracker.get();
  }
  slos_.emplace_back(std::move(name), std::make_unique<SloTracker>(options));
  return slos_.back().second.get();
}

SloTracker* SloSet::Find(std::string_view name) const {
  for (const auto& [existing, tracker] : slos_) {
    if (existing == name) return tracker.get();
  }
  return nullptr;
}

std::vector<SloSet::Entry> SloSet::Snapshot(double now_seconds) const {
  std::vector<Entry> out;
  out.reserve(slos_.size());
  for (const auto& [name, tracker] : slos_) {
    out.push_back({name, tracker->options(), tracker->Evaluate(now_seconds)});
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

void ExportSloMetrics(const SloSet& slos, MetricsRegistry* registry,
                      double now_seconds) {
  if (registry == nullptr) return;
  for (const SloSet::Entry& e : slos.Snapshot(now_seconds)) {
    const LabelSet labels = {{"slo", e.name}};
    registry
        ->GetGauge("capplan_slo_objective_ratio", labels,
                   "Targeted good-event fraction per SLO")
        .Set(e.options.objective);
    registry
        ->GetGauge("capplan_slo_fast_burn_ratio", labels,
                   "Error-budget burn rate over the fast window")
        .Set(e.burn.fast_burn);
    registry
        ->GetGauge("capplan_slo_slow_burn_ratio", labels,
                   "Error-budget burn rate over the slow window")
        .Set(e.burn.slow_burn);
    Counter events = registry->GetCounter(
        "capplan_slo_events_total", labels, "Events recorded against the SLO");
    events = e.burn.total_events;
    Counter bad = registry->GetCounter("capplan_slo_bad_events_total", labels,
                                       "Events that violated the SLO");
    bad = e.burn.bad_events;
  }
}

}  // namespace capplan::obs
