#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace capplan::obs {

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (name.front() < 'a' || name.front() > 'z') return false;
  for (char c : name) {
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  if (name.find("__") != std::string::npos) return false;
  return !HasSuffix(name, "_");
}

std::vector<double> DefaultLatencyBucketsMs() {
  return {0.25, 0.5,  1.0,   2.5,   5.0,   10.0,   25.0,    50.0,  100.0,
          250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0};
}

HistogramCell::HistogramCell(std::vector<double> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBucketsMs() : std::move(bounds)),
      buckets_(bounds_.size() + 1),
      exemplars_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

std::size_t HistogramCell::BucketIndex(double v) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void HistogramCell::Observe(double v) {
  if (std::isnan(v)) return;
  const std::size_t idx = BucketIndex(v);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void HistogramCell::ObserveWithExemplar(double v, std::uint64_t span_id,
                                        std::uint64_t event_id) {
  if (std::isnan(v)) return;
  Observe(v);
  ExemplarSlot& slot = exemplars_[BucketIndex(v)];
  // Claim the slot by flipping seq even -> odd with a CAS so two writers
  // can never interleave their field stores. Losing the race just drops
  // this exemplar — the slot only promises *some* recent observation. The
  // acquire on success keeps the field stores below from moving above the
  // claim; the release store publishes them with the new even seq.
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if (seq % 2 != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    return;
  }
  slot.value.store(v, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.event_id.store(event_id, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
}

std::vector<Exemplar> HistogramCell::Exemplars() const {
  std::vector<Exemplar> out(exemplars_.size());
  for (std::size_t i = 0; i < exemplars_.size(); ++i) {
    const ExemplarSlot& slot = exemplars_[i];
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0) break;       // never written
      if (s1 % 2 != 0) continue;  // writer in flight
      Exemplar e;
      e.valid = true;
      e.value = slot.value.load(std::memory_order_relaxed);
      e.span_id = slot.span_id.load(std::memory_order_relaxed);
      e.event_id = slot.event_id.load(std::memory_order_relaxed);
      // Standard seqlock validation: the fence orders the relaxed data
      // loads above before the re-read of seq (a plain acquire load would
      // not), so an unchanged sequence proves the triple was not torn.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) == s1) {
        out[i] = e;
        break;
      }
    }
  }
  return out;
}

double HistogramCell::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double HistogramCell::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double HistogramCell::Quantile(double q) const {
  const std::uint64_t n = Count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double lo_seen = Min();
  const double hi_seen = Max();
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= target) {
      // Interpolate inside this bucket, clamping its edges to the observed
      // extrema so sparse tails don't inflate the estimate.
      double lo = i == 0 ? lo_seen : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : hi_seen;
      lo = std::max(lo, lo_seen);
      hi = std::min(hi, hi_seen);
      if (hi < lo) hi = lo;
      const double frac = std::max(target - cum, 0.0) / in_bucket;
      return std::clamp(lo + frac * (hi - lo), lo_seen, hi_seen);
    }
    cum += in_bucket;
  }
  return hi_seen;
}

std::vector<std::uint64_t> HistogramCell::BucketCounts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

LabelSet MetricsRegistry::Sorted(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Counter MetricsRegistry::GetCounter(const std::string& name,
                                    const LabelSet& labels,
                                    const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[{name, Sorted(labels)}];
  if (e.counter == nullptr) {
    e.type = MetricType::kCounter;
    e.help = help;
    e.counter = std::make_unique<CounterCell>();
  }
  return Counter(e.counter.get());
}

Gauge MetricsRegistry::GetGauge(const std::string& name,
                                const LabelSet& labels,
                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[{name, Sorted(labels)}];
  if (e.gauge == nullptr) {
    e.type = MetricType::kGauge;
    e.help = help;
    e.gauge = std::make_unique<GaugeCell>();
  }
  return Gauge(e.gauge.get());
}

Histogram MetricsRegistry::GetHistogram(const std::string& name,
                                        const std::vector<double>& bounds,
                                        const LabelSet& labels,
                                        const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[{name, Sorted(labels)}];
  if (e.histogram == nullptr) {
    e.type = MetricType::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<HistogramCell>(bounds);
  }
  return Histogram(e.histogram.get());
}

MetricsSnapshot MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.help = entry.help;
    s.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        s.value = static_cast<double>(entry.counter->Value());
        break;
      case MetricType::kGauge:
        s.value = entry.gauge->Value();
        break;
      case MetricType::kHistogram:
        s.bounds = entry.histogram->bounds();
        s.bucket_counts = entry.histogram->BucketCounts();
        s.exemplars = entry.histogram->Exemplars();
        s.count = entry.histogram->Count();
        s.sum = entry.histogram->Sum();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace capplan::obs
