#ifndef CAPPLAN_OBS_SLO_H_
#define CAPPLAN_OBS_SLO_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace capplan::obs {

class MetricsRegistry;

// Multi-window SLO burn-rate tracking (the Google SRE workbook alerting
// shape). Each tracker counts good/bad events into fixed-width time buckets
// and reports, over a fast and a slow window, the fraction of bad events
// divided by the error budget (1 - objective):
//
//   burn == 1   the budget is being consumed exactly at the sustainable rate
//   burn >> 1   at this rate the budget exhausts `burn` times too fast
//
// Alerting on *both* windows exceeding a threshold is what makes the signal
// robust: the fast window gives responsiveness, the slow window stops a
// brief blip from paging. The estate wires two SLOs: a serve-latency SLO
// (request answered under the threshold) and a forecast-accuracy SLO (live
// scored point within the APE tolerance) — the latter also feeds the
// per-shard health state machine.
//
// Time is supplied by the caller (seconds, any monotone-ish origin: steady
// clock for serving, estate epoch for scoring). Evaluate() clamps its `now`
// into [last event, last event + slow window]: a reader behind the recorder
// and a reader more than a slow window ahead of it (a clock-origin
// mismatch in either direction) both see the state "as of the last event"
// instead of an empty window; gaps within a slow window are honest idle
// time and age buckets out normally.
class SloTracker {
 public:
  struct Options {
    double objective = 0.99;             // targeted good fraction, (0,1)
    double fast_window_seconds = 300.0;  // responsiveness window
    double slow_window_seconds = 3600.0;  // sustained-burn window
  };

  struct Burn {
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    double fast_bad_ratio = 0.0;
    double slow_bad_ratio = 0.0;
    std::uint64_t fast_events = 0;
    std::uint64_t slow_events = 0;
    std::uint64_t total_events = 0;  // lifetime
    std::uint64_t bad_events = 0;    // lifetime
  };

  explicit SloTracker(Options options);

  void Record(bool good, double now_seconds);
  Burn Evaluate(double now_seconds) const;

  const Options& options() const { return options_; }

 private:
  static constexpr std::size_t kBuckets = 64;

  struct Bucket {
    std::int64_t index = -1;  // absolute bucket number, -1 = never used
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
  };

  Options options_;
  double bucket_width_;

  mutable std::mutex mu_;
  Bucket buckets_[kBuckets];
  double last_record_time_ = 0.0;
  bool any_recorded_ = false;
  std::uint64_t total_events_ = 0;
  std::uint64_t bad_events_ = 0;
};

// Named collection of SLO trackers shared between the estate service (which
// records accuracy events) and the query handler (which records latency
// events and serves /v1/slo). Add() all trackers at construction time; the
// trackers themselves are internally synchronized.
class SloSet {
 public:
  SloTracker* Add(std::string name, SloTracker::Options options);
  SloTracker* Find(std::string_view name) const;

  struct Entry {
    std::string name;
    SloTracker::Options options;
    SloTracker::Burn burn;
  };
  // Evaluates every tracker at `now_seconds` (each clamps to its own last
  // event), sorted by name.
  std::vector<Entry> Snapshot(double now_seconds) const;

 private:
  std::vector<std::pair<std::string, std::unique_ptr<SloTracker>>> slos_;
};

// Refreshes the capplan_slo_* gauge/counter family in `registry` from a
// snapshot of `slos` — called just before each scrape/export so the burn
// rates are current.
void ExportSloMetrics(const SloSet& slos, MetricsRegistry* registry,
                      double now_seconds);

}  // namespace capplan::obs

#endif  // CAPPLAN_OBS_SLO_H_
