#ifndef CAPPLAN_REPO_CSV_H_
#define CAPPLAN_REPO_CSV_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tsa/timeseries.h"

namespace capplan::repo {

// Minimal CSV support for persisting traces and results. Values are written
// with full double precision; NaN round-trips as the literal "nan".

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

// Writes `table` to `path`, overwriting. Fields containing commas, quotes
// or newlines are quoted.
Status WriteCsv(const std::string& path, const CsvTable& table);

// Reads a CSV written by WriteCsv (handles quoted fields).
Result<CsvTable> ReadCsv(const std::string& path);

// TimeSeries round-trip: columns epoch,value plus metadata in the header
// comment line "# name,start_epoch,frequency".
Status WriteSeriesCsv(const std::string& path, const tsa::TimeSeries& series);
Result<tsa::TimeSeries> ReadSeriesCsv(const std::string& path);

}  // namespace capplan::repo

#endif  // CAPPLAN_REPO_CSV_H_
