#include "repo/model_store.h"

#include <cstdio>

#include "repo/csv.h"

namespace capplan::repo {

void ModelRepository::Put(const StoredModel& model) {
  models_[model.key] = model;
}

Result<StoredModel> ModelRepository::Get(const std::string& key) const {
  auto it = models_.find(key);
  if (it == models_.end()) {
    return Status::NotFound("ModelRepository: no model for " + key);
  }
  return it->second;
}

bool ModelRepository::Contains(const std::string& key) const {
  return models_.count(key) > 0;
}

std::vector<std::string> ModelRepository::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(models_.size());
  for (const auto& [k, _] : models_) keys.push_back(k);
  return keys;
}

bool ModelRepository::IsStale(const std::string& key, std::int64_t now_epoch,
                              double current_rmse) const {
  auto it = models_.find(key);
  if (it == models_.end()) return true;
  const StoredModel& m = it->second;
  if (now_epoch - m.fitted_at_epoch > policy_.max_age_seconds) return true;
  if (current_rmse >= 0.0 && m.test_rmse > 0.0 &&
      current_rmse > policy_.rmse_degradation_factor * m.test_rmse) {
    return true;
  }
  return false;
}

Status ModelRepository::Save(const std::string& path) const {
  CsvTable table;
  table.header = {"key",       "technique",      "spec",
                  "test_rmse", "test_mape",      "fitted_at_epoch"};
  for (const auto& [_, m] : models_) {
    char rmse[40], mape[40];
    std::snprintf(rmse, sizeof(rmse), "%.17g", m.test_rmse);
    std::snprintf(mape, sizeof(mape), "%.17g", m.test_mape);
    table.rows.push_back({m.key, m.technique, m.spec, rmse, mape,
                          std::to_string(m.fitted_at_epoch)});
  }
  return WriteCsv(path, table);
}

Status ModelRepository::Load(const std::string& path) {
  CAPPLAN_ASSIGN_OR_RETURN(CsvTable table, ReadCsv(path));
  if (table.header.size() != 6) {
    return Status::IoError("ModelRepository::Load: unexpected column count");
  }
  for (const auto& row : table.rows) {
    if (row.size() != 6) {
      return Status::IoError("ModelRepository::Load: malformed row");
    }
    StoredModel m;
    m.key = row[0];
    m.technique = row[1];
    m.spec = row[2];
    m.test_rmse = std::stod(row[3]);
    m.test_mape = std::stod(row[4]);
    m.fitted_at_epoch = std::stoll(row[5]);
    models_[m.key] = m;
  }
  return Status::OK();
}

}  // namespace capplan::repo
