#include "repo/model_store.h"

#include <cstdio>
#include <utility>

#include "common/fault.h"
#include "repo/csv.h"

namespace capplan::repo {

void ModelRepository::Put(const StoredModel& model) {
  models_[model.key] = model;
}

void ModelRepository::Promote(StoredModel model) {
  auto it = models_.find(model.key);
  if (model.generation <= 0) {
    model.generation = it == models_.end() ? 1 : it->second.generation + 1;
  }
  if (it != models_.end()) {
    previous_[model.key] = it->second;
  }
  models_[model.key] = std::move(model);
}

Result<StoredModel> ModelRepository::Rollback(const std::string& key) {
  auto prev = previous_.find(key);
  if (prev == previous_.end()) {
    return Status::NotFound("ModelRepository: no rollback lineage for " + key);
  }
  StoredModel restored = std::move(prev->second);
  previous_.erase(prev);
  models_[key] = restored;
  return restored;
}

void ModelRepository::Reinstate(const StoredModel& model) {
  models_[model.key] = model;
  previous_.erase(model.key);
}

bool ModelRepository::HasPrevious(const std::string& key) const {
  return previous_.count(key) > 0;
}

Result<StoredModel> ModelRepository::GetPrevious(const std::string& key) const {
  auto it = previous_.find(key);
  if (it == previous_.end()) {
    return Status::NotFound("ModelRepository: no rollback lineage for " + key);
  }
  return it->second;
}

void ModelRepository::UpdateLiveMape(const std::string& key, double live_mape) {
  auto it = models_.find(key);
  if (it != models_.end()) it->second.live_mape = live_mape;
}

Result<StoredModel> ModelRepository::Get(const std::string& key) const {
  auto it = models_.find(key);
  if (it == models_.end()) {
    return Status::NotFound("ModelRepository: no model for " + key);
  }
  return it->second;
}

bool ModelRepository::Contains(const std::string& key) const {
  return models_.count(key) > 0;
}

std::vector<std::string> ModelRepository::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(models_.size());
  for (const auto& [k, _] : models_) keys.push_back(k);
  return keys;
}

bool ModelRepository::IsStale(const std::string& key, std::int64_t now_epoch,
                              double current_rmse) const {
  auto it = models_.find(key);
  if (it == models_.end()) return true;
  const StoredModel& m = it->second;
  if (now_epoch - m.fitted_at_epoch > policy_.max_age_seconds) return true;
  if (current_rmse >= 0.0 && m.test_rmse > 0.0 &&
      current_rmse > policy_.rmse_degradation_factor * m.test_rmse) {
    return true;
  }
  return false;
}

std::string EncodeCoefficients(const std::vector<double>& coef) {
  std::string out;
  char buf[40];
  for (std::size_t i = 0; i < coef.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", coef[i]);
    if (i > 0) out += ';';
    out += buf;
  }
  return out;
}

Result<std::vector<double>> DecodeCoefficients(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    try {
      out.push_back(std::stod(text.substr(pos, end - pos)));
    } catch (const std::exception&) {
      return Status::IoError("DecodeCoefficients: bad number in: " + text);
    }
    pos = end + 1;
  }
  return out;
}

bool IsKnownTechnique(const std::string& technique) {
  return technique == "ARIMA" || technique == "SARIMAX" ||
         technique == "SARIMAX_FFT_EXOG" || technique == "HES" ||
         technique == "TBATS" || technique == "BASELINE" ||
         technique == "AUTO";
}

Status ModelRepository::Save(const std::string& path) const {
  CAPPLAN_RETURN_NOT_OK(FaultHit("model_store.save"));
  CsvTable table;
  table.header = {"key",       "technique", "spec",    "test_rmse",
                  "test_mape", "fitted_at_epoch",      "ar_coef", "ma_coef",
                  "generation", "promoted_at_epoch",   "live_mape",
                  "periods"};
  for (const auto& [_, m] : models_) {
    char rmse[40], mape[40], live[40];
    std::snprintf(rmse, sizeof(rmse), "%.17g", m.test_rmse);
    std::snprintf(mape, sizeof(mape), "%.17g", m.test_mape);
    std::snprintf(live, sizeof(live), "%.17g", m.live_mape);
    table.rows.push_back({m.key, m.technique, m.spec, rmse, mape,
                          std::to_string(m.fitted_at_epoch),
                          EncodeCoefficients(m.ar_coef),
                          EncodeCoefficients(m.ma_coef),
                          std::to_string(m.generation),
                          std::to_string(m.promoted_at_epoch), live,
                          EncodeCoefficients(m.periods)});
  }
  return WriteCsv(path, table);
}

namespace {

// Parses one registry row (any of the tolerated layouts). Errors are
// per-row: the caller skips the row and keeps loading.
Result<StoredModel> ParseModelRow(const std::vector<std::string>& row) {
  StoredModel m;
  m.key = row[0];
  m.technique = row[1];
  m.spec = row[2];
  if (!IsKnownTechnique(m.technique)) {
    return Status::IoError("unknown technique '" + m.technique +
                           "' for key " + m.key);
  }
  try {
    m.test_rmse = std::stod(row[3]);
    m.test_mape = std::stod(row[4]);
    m.fitted_at_epoch = std::stoll(row[5]);
  } catch (const std::exception&) {
    return Status::IoError("bad number for key " + m.key);
  }
  if (row.size() >= 8) {
    CAPPLAN_ASSIGN_OR_RETURN(m.ar_coef, DecodeCoefficients(row[6]));
    CAPPLAN_ASSIGN_OR_RETURN(m.ma_coef, DecodeCoefficients(row[7]));
  }
  if (row.size() >= 11) {
    try {
      m.generation = std::stoi(row[8]);
      m.promoted_at_epoch = std::stoll(row[9]);
      m.live_mape = std::stod(row[10]);
    } catch (const std::exception&) {
      return Status::IoError("bad lineage for key " + m.key);
    }
  }
  if (row.size() >= 12) {
    CAPPLAN_ASSIGN_OR_RETURN(m.periods, DecodeCoefficients(row[11]));
  }
  return m;
}

}  // namespace

Status ModelRepository::Load(const std::string& path, LoadReport* report) {
  CAPPLAN_ASSIGN_OR_RETURN(CsvTable table, ReadCsv(path));
  // 6 columns = the pre-coefficient layout, 8 = pre-lineage, 11 =
  // pre-periods; all tolerated so existing registry files keep loading
  // (their models simply carry no warm-start hint / lineage / periods).
  if (table.header.size() != 6 && table.header.size() != 8 &&
      table.header.size() != 11 && table.header.size() != 12) {
    return Status::IoError("ModelRepository::Load: unexpected column count");
  }
  for (const auto& row : table.rows) {
    auto parsed = [&]() -> Result<StoredModel> {
      if (row.size() != table.header.size()) {
        return Status::IoError("malformed row (" +
                               std::to_string(row.size()) + " columns)" +
                               (row.empty() ? "" : " near key " + row[0]));
      }
      return ParseModelRow(row);
    }();
    if (!parsed.ok()) {
      if (report != nullptr) {
        report->row_errors.push_back(parsed.status().ToString());
      }
      continue;
    }
    models_[parsed->key] = std::move(*parsed);
    if (report != nullptr) ++report->loaded;
  }
  return Status::OK();
}

}  // namespace capplan::repo
