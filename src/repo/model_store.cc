#include "repo/model_store.h"

#include <cstdio>

#include "common/fault.h"
#include "repo/csv.h"

namespace capplan::repo {

void ModelRepository::Put(const StoredModel& model) {
  models_[model.key] = model;
}

Result<StoredModel> ModelRepository::Get(const std::string& key) const {
  auto it = models_.find(key);
  if (it == models_.end()) {
    return Status::NotFound("ModelRepository: no model for " + key);
  }
  return it->second;
}

bool ModelRepository::Contains(const std::string& key) const {
  return models_.count(key) > 0;
}

std::vector<std::string> ModelRepository::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(models_.size());
  for (const auto& [k, _] : models_) keys.push_back(k);
  return keys;
}

bool ModelRepository::IsStale(const std::string& key, std::int64_t now_epoch,
                              double current_rmse) const {
  auto it = models_.find(key);
  if (it == models_.end()) return true;
  const StoredModel& m = it->second;
  if (now_epoch - m.fitted_at_epoch > policy_.max_age_seconds) return true;
  if (current_rmse >= 0.0 && m.test_rmse > 0.0 &&
      current_rmse > policy_.rmse_degradation_factor * m.test_rmse) {
    return true;
  }
  return false;
}

std::string EncodeCoefficients(const std::vector<double>& coef) {
  std::string out;
  char buf[40];
  for (std::size_t i = 0; i < coef.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", coef[i]);
    if (i > 0) out += ';';
    out += buf;
  }
  return out;
}

Result<std::vector<double>> DecodeCoefficients(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(';', pos);
    if (end == std::string::npos) end = text.size();
    try {
      out.push_back(std::stod(text.substr(pos, end - pos)));
    } catch (const std::exception&) {
      return Status::IoError("DecodeCoefficients: bad number in: " + text);
    }
    pos = end + 1;
  }
  return out;
}

Status ModelRepository::Save(const std::string& path) const {
  CAPPLAN_RETURN_NOT_OK(FaultHit("model_store.save"));
  CsvTable table;
  table.header = {"key",       "technique", "spec",    "test_rmse",
                  "test_mape", "fitted_at_epoch",      "ar_coef", "ma_coef"};
  for (const auto& [_, m] : models_) {
    char rmse[40], mape[40];
    std::snprintf(rmse, sizeof(rmse), "%.17g", m.test_rmse);
    std::snprintf(mape, sizeof(mape), "%.17g", m.test_mape);
    table.rows.push_back({m.key, m.technique, m.spec, rmse, mape,
                          std::to_string(m.fitted_at_epoch),
                          EncodeCoefficients(m.ar_coef),
                          EncodeCoefficients(m.ma_coef)});
  }
  return WriteCsv(path, table);
}

Status ModelRepository::Load(const std::string& path) {
  CAPPLAN_ASSIGN_OR_RETURN(CsvTable table, ReadCsv(path));
  // 6 columns = the pre-coefficient layout; tolerated so existing registry
  // files keep loading (their models simply carry no warm-start hint).
  if (table.header.size() != 6 && table.header.size() != 8) {
    return Status::IoError("ModelRepository::Load: unexpected column count");
  }
  for (const auto& row : table.rows) {
    if (row.size() != table.header.size()) {
      return Status::IoError("ModelRepository::Load: malformed row");
    }
    StoredModel m;
    m.key = row[0];
    m.technique = row[1];
    m.spec = row[2];
    try {
      m.test_rmse = std::stod(row[3]);
      m.test_mape = std::stod(row[4]);
      m.fitted_at_epoch = std::stoll(row[5]);
    } catch (const std::exception&) {
      return Status::IoError("ModelRepository::Load: bad number for key " +
                             m.key);
    }
    if (row.size() == 8) {
      CAPPLAN_ASSIGN_OR_RETURN(m.ar_coef, DecodeCoefficients(row[6]));
      CAPPLAN_ASSIGN_OR_RETURN(m.ma_coef, DecodeCoefficients(row[7]));
    }
    models_[m.key] = m;
  }
  return Status::OK();
}

}  // namespace capplan::repo
