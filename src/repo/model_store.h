#ifndef CAPPLAN_REPO_MODEL_STORE_H_
#define CAPPLAN_REPO_MODEL_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace capplan::repo {

// Metadata of a selected forecasting model, persisted in the central
// repository. "That model is then stored in a central repository and used
// for a period of one week or until the model's RMSE drops to a point where
// it is rendered useless" (paper Section 5.1).
struct StoredModel {
  std::string key;        // workload series key, e.g. "cdbm011/cpu"
  std::string technique;  // "ARIMA", "SARIMAX", "SARIMAX_FFT_EXOG", "HES"...
  std::string spec;       // order string, e.g. "(1,1,2)(1,1,1,24)"
  double test_rmse = 0.0;
  double test_mape = 0.0;
  std::int64_t fitted_at_epoch = 0;
  // Dense converged coefficients of the fitted (S)ARIMA(X) error model
  // (index i -> lag i+1); empty for non-ARIMA techniques. A refit of the
  // same series seeds its grid search from these (the selector's warm-start
  // hint), so they persist alongside the accuracy metadata.
  std::vector<double> ar_coef;
  std::vector<double> ma_coef;
  // Seasonal periods the selection subsystem detected for this series (in
  // observations, strongest first; ';'-joined in the CSV). Empty for
  // single-season series and for rows loaded from pre-periods registries.
  std::vector<double> periods;
  // Champion/challenger lineage. `generation` counts promotions for the key
  // (1 = first champion; 0 = pre-lineage row, e.g. a legacy CSV load);
  // `promoted_at_epoch` is when this model became champion; `live_mape` is
  // the champion's last observed rolling live MAPE in percent (negative =
  // never scored) — carried on the demoted model so a rollback knows the
  // accuracy bar the restored champion used to clear.
  int generation = 0;
  std::int64_t promoted_at_epoch = 0;
  double live_mape = -1.0;
};

// ';'-joined full-precision encoding of a coefficient vector, used for the
// ar_coef/ma_coef/periods CSV columns ("" = empty vector).
std::string EncodeCoefficients(const std::vector<double>& coef);
Result<std::vector<double>> DecodeCoefficients(const std::string& text);

// Technique strings the repository accepts in a registry row. Kept in sync
// with core::TechniqueName by tests/repo/model_store_test.cc (the repo layer
// sits below core, so the list is spelled out here rather than included).
// A row with any other string — e.g. one written by a future version — is
// skipped as a per-row load error instead of aborting the whole load.
bool IsKnownTechnique(const std::string& technique);

// Staleness policy parameters.
struct StalenessPolicy {
  // Retrain after this long regardless of accuracy (paper: one week).
  std::int64_t max_age_seconds = 7 * 24 * 3600;
  // Retrain when the live RMSE exceeds the stored test RMSE by this factor.
  double rmse_degradation_factor = 2.0;
};

class ModelRepository {
 public:
  explicit ModelRepository(StalenessPolicy policy = {}) : policy_(policy) {}

  // Inserts or replaces the model for its key. Lineage-neutral: the
  // rollback slot is untouched and no generation number is assigned — used
  // for raw loads and journal replay of pre-lineage events. New champions
  // go through Promote().
  void Put(const StoredModel& model);

  // Installs `model` as the champion for its key, demoting the current
  // champion (if any) into the key's single rollback slot. When
  // model.generation <= 0 the next generation number is assigned
  // (champion's + 1, or 1); a caller replaying a journalled promotion sets
  // it explicitly and it is preserved.
  void Promote(StoredModel model);

  // Restores the rollback slot's model as champion, discarding the current
  // one. The slot is cleared — the discarded model is exactly what went
  // bad, so it must never be rolled back *to*; a second rollback needs a
  // new promotion first. NotFound when the slot is empty.
  Result<StoredModel> Rollback(const std::string& key);

  // Reinstalls `model` as champion and clears the rollback slot — the
  // replay-side twin of Rollback(), driven by the journalled kRollback
  // payload instead of in-memory lineage.
  void Reinstate(const StoredModel& model);

  bool HasPrevious(const std::string& key) const;
  Result<StoredModel> GetPrevious(const std::string& key) const;

  // Records the champion's current rolling live MAPE (percent) so a later
  // demotion carries it into the rollback slot. No-op for unknown keys.
  void UpdateLiveMape(const std::string& key, double live_mape);

  Result<StoredModel> Get(const std::string& key) const;
  bool Contains(const std::string& key) const;
  std::vector<std::string> Keys() const;
  std::size_t size() const { return models_.size(); }

  // True when the stored model for `key` should be refitted: it is missing,
  // older than the policy's max age, or `current_rmse` (the RMSE observed on
  // fresh data; pass a negative value when unknown) has degraded past the
  // policy factor.
  bool IsStale(const std::string& key, std::int64_t now_epoch,
               double current_rmse = -1.0) const;

  const StalenessPolicy& policy() const { return policy_; }

  // Outcome of a Load(): how many rows installed, and one message per row
  // that was skipped (malformed numbers, wrong width, unknown technique).
  struct LoadReport {
    std::size_t loaded = 0;
    std::vector<std::string> row_errors;
  };

  // CSV persistence of the registry. Load degrades per row: a malformed or
  // unknown-technique row is recorded in `report` (when given) and skipped,
  // so one bad row — including one written by a future version with a new
  // technique — cannot take out every other model. Only file-level problems
  // (unreadable file, unexpected header) fail the whole load.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path) { return Load(path, nullptr); }
  Status Load(const std::string& path, LoadReport* report);

 private:
  StalenessPolicy policy_;
  std::map<std::string, StoredModel> models_;
  // One generation of rollback lineage per key: the champion each key had
  // before its latest promotion. Deliberately not persisted in Save() —
  // promotions replay from the journal, and docs/robustness.md documents
  // that a freshly recovered estate has no rollback target until its next
  // promotion.
  std::map<std::string, StoredModel> previous_;
};

}  // namespace capplan::repo

#endif  // CAPPLAN_REPO_MODEL_STORE_H_
