#ifndef CAPPLAN_REPO_MODEL_STORE_H_
#define CAPPLAN_REPO_MODEL_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace capplan::repo {

// Metadata of a selected forecasting model, persisted in the central
// repository. "That model is then stored in a central repository and used
// for a period of one week or until the model's RMSE drops to a point where
// it is rendered useless" (paper Section 5.1).
struct StoredModel {
  std::string key;        // workload series key, e.g. "cdbm011/cpu"
  std::string technique;  // "ARIMA", "SARIMAX", "SARIMAX_FFT_EXOG", "HES"...
  std::string spec;       // order string, e.g. "(1,1,2)(1,1,1,24)"
  double test_rmse = 0.0;
  double test_mape = 0.0;
  std::int64_t fitted_at_epoch = 0;
  // Dense converged coefficients of the fitted (S)ARIMA(X) error model
  // (index i -> lag i+1); empty for non-ARIMA techniques. A refit of the
  // same series seeds its grid search from these (the selector's warm-start
  // hint), so they persist alongside the accuracy metadata.
  std::vector<double> ar_coef;
  std::vector<double> ma_coef;
};

// ';'-joined full-precision encoding of a coefficient vector, used for the
// ar_coef/ma_coef CSV columns ("" = empty vector).
std::string EncodeCoefficients(const std::vector<double>& coef);
Result<std::vector<double>> DecodeCoefficients(const std::string& text);

// Staleness policy parameters.
struct StalenessPolicy {
  // Retrain after this long regardless of accuracy (paper: one week).
  std::int64_t max_age_seconds = 7 * 24 * 3600;
  // Retrain when the live RMSE exceeds the stored test RMSE by this factor.
  double rmse_degradation_factor = 2.0;
};

class ModelRepository {
 public:
  explicit ModelRepository(StalenessPolicy policy = {}) : policy_(policy) {}

  // Inserts or replaces the model for its key.
  void Put(const StoredModel& model);

  Result<StoredModel> Get(const std::string& key) const;
  bool Contains(const std::string& key) const;
  std::vector<std::string> Keys() const;
  std::size_t size() const { return models_.size(); }

  // True when the stored model for `key` should be refitted: it is missing,
  // older than the policy's max age, or `current_rmse` (the RMSE observed on
  // fresh data; pass a negative value when unknown) has degraded past the
  // policy factor.
  bool IsStale(const std::string& key, std::int64_t now_epoch,
               double current_rmse = -1.0) const;

  const StalenessPolicy& policy() const { return policy_; }

  // CSV persistence of the registry.
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  StalenessPolicy policy_;
  std::map<std::string, StoredModel> models_;
};

}  // namespace capplan::repo

#endif  // CAPPLAN_REPO_MODEL_STORE_H_
