#ifndef CAPPLAN_REPO_REPOSITORY_H_
#define CAPPLAN_REPO_REPOSITORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "store/tiered_store.h"
#include "tsa/timeseries.h"
#include "workload/cluster.h"

namespace capplan::repo {

// The central metrics repository: agents push raw quarter-hourly traces,
// the repository aggregates them to hourly values ("the values from the
// metrics are then stored, centrally, in a repository where they are
// aggregated into hourly values", paper Section 5.1), and the modelling
// pipeline reads the hourly series back out.
//
// Since PR 6 the repository is backed by two tiered compressed stores
// (store/tiered_store.h) — one per tier, raw and hourly — instead of plain
// std::map<key, TimeSeries>. Each series keeps its newest samples in an
// uncompressed hot ring and seals older runs into gorilla-compressed
// blocks, which is what lets the estate scale toward 100k series. The
// public API and its semantics are unchanged; reads decompress on demand
// through a per-key materialized view cache (see FindHourly).
class MetricsRepository {
 public:
  struct Options {
    store::SeriesStoreOptions raw_store;
    store::SeriesStoreOptions hourly_store;
  };

  MetricsRepository() = default;
  explicit MetricsRepository(Options options);

  // Registers the capplan_store_* metric family for both tiers
  // (labels {tier="raw"} / {tier="hourly"}), plus any `extra_labels` — the
  // sharded estate service passes {{"shard", "i"}} so each shard's
  // repository keeps its own gauge cells. Call once, before traffic.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const obs::LabelSet& extra_labels = {});

  // Canonical key for an (instance, metric) pair: "cdbm011/cpu".
  static std::string KeyFor(const std::string& instance,
                            workload::Metric metric);

  // Stores a raw trace and its hourly aggregation under `key`. Raw data
  // finer than hourly is mean-aggregated; hourly input is stored as-is.
  // Replaces any previous series under the key.
  Status Ingest(const std::string& key, const tsa::TimeSeries& raw);

  // Appends `chunk` to the raw trace under `key` and extends the hourly
  // aggregation incrementally (only newly completed hourly buckets are
  // computed) — the continuous-ingest path of the service layer. The chunk
  // must match the stored frequency and start exactly where the stored raw
  // trace ends; an unknown key behaves like Ingest.
  Status Append(const std::string& key, const tsa::TimeSeries& chunk);

  // Hourly series for `key` (aggregated at ingest time), as a copy.
  Result<tsa::TimeSeries> Hourly(const std::string& key) const;

  // Borrowed view of the hourly series, or nullptr when absent (or when a
  // sealed block fails to decode) — the service layer's per-tick hot path,
  // which must not copy whole series.
  //
  // Lifetime contract: the pointer is a tick-scoped borrow. It is
  // invalidated by ANY subsequent mutation of the repository under the same
  // key — Ingest, Append, LoadSegments, EvictViews — because those rebuild
  // or patch the materialized view behind it. Callers must re-fetch after
  // every mutation and must not cache the pointer across ticks. (The view
  // lives in a std::map node, so mutations under *other* keys do not move
  // it, but code must not rely on that.)
  //
  // Cost: the first call per key decompresses the hourly tier into a cached
  // view; subsequent calls after an Append patch only the new tail, so the
  // per-tick steady state is O(new samples), not O(series length).
  const tsa::TimeSeries* FindHourly(const std::string& key) const;

  // Last `n` hourly samples for `key` (the whole series when shorter) — the
  // serving layer's recent-window view, served from the same cache as
  // FindHourly. The returned series is a copy with timestamps preserved.
  Result<tsa::TimeSeries> HourlyTail(const std::string& key,
                                     std::size_t n) const;

  // The raw trace as ingested (decompressed copy).
  Result<tsa::TimeSeries> Raw(const std::string& key) const;

  // End epoch of the raw trace under `key` — the service recovery path
  // uses this to re-poll only the missing suffix after a segment reopen.
  Result<std::int64_t> RawEndEpoch(const std::string& key) const;

  std::vector<std::string> Keys() const;
  bool Contains(const std::string& key) const;
  std::size_t size() const { return hourly_.size(); }

  // Persists every hourly series to `<dir>/<sanitized key>.csv` — the
  // import/export format. Fails with kIoError naming the offending key.
  Status SaveAll(const std::string& dir) const;

  // Persists both tiers to `<dir>/raw.capseg` + `<dir>/hourly.capseg`
  // (store/segment.h) — the snapshot format the service restarts from.
  Status SaveSegments(const std::string& dir) const;

  // Replaces the in-memory state from segment files written by
  // SaveSegments. Missing/corrupt records degrade per the segment-format
  // rules (quarantined blocks read back as NaN). Series names are restored
  // as their keys — which is what the agents name them anyway.
  Status LoadSegments(const std::string& dir);

  // Drops every cached materialized view (memory pressure / tests). Views
  // rebuild lazily on the next FindHourly.
  void EvictViews() const { views_.clear(); }

  // Drops every series from both tiers (the recovery fallback when a
  // segment reopen leaves unusable state).
  void Clear();

  // Tier accessors for accounting, benchmarks and tests.
  const store::TieredStore& raw_store() const { return raw_; }
  const store::TieredStore& hourly_store() const { return hourly_; }
  store::TieredStore& raw_store() { return raw_; }
  store::TieredStore& hourly_store() { return hourly_; }

 private:
  struct View {
    tsa::TimeSeries series;
    std::uint64_t version = 0;
    std::uint64_t structure_version = 0;
  };

  // Replaces the series under `key` in both tiers with fresh stores.
  void Replace(const std::string& key, const tsa::TimeSeries& raw,
               const tsa::TimeSeries& hourly);
  // The cached materialized hourly view, built or patched as needed.
  Result<const tsa::TimeSeries*> ViewFor(const std::string& key) const;
  const std::string& NameFor(const std::string& key) const;

  Options options_;
  store::TieredStore raw_{store::TieredStoreOptions{}};
  store::TieredStore hourly_{store::TieredStoreOptions{}};
  std::map<std::string, std::string> names_;  // key -> series name
  mutable std::map<std::string, View> views_;
};

}  // namespace capplan::repo

#endif  // CAPPLAN_REPO_REPOSITORY_H_
