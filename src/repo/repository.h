#ifndef CAPPLAN_REPO_REPOSITORY_H_
#define CAPPLAN_REPO_REPOSITORY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "tsa/timeseries.h"
#include "workload/cluster.h"

namespace capplan::repo {

// The central metrics repository: agents push raw quarter-hourly traces,
// the repository aggregates them to hourly values ("the values from the
// metrics are then stored, centrally, in a repository where they are
// aggregated into hourly values", paper Section 5.1), and the modelling
// pipeline reads the hourly series back out.
class MetricsRepository {
 public:
  MetricsRepository() = default;

  // Canonical key for an (instance, metric) pair: "cdbm011/cpu".
  static std::string KeyFor(const std::string& instance,
                            workload::Metric metric);

  // Stores a raw trace and its hourly aggregation under `key`. Raw data
  // finer than hourly is mean-aggregated; hourly input is stored as-is.
  Status Ingest(const std::string& key, const tsa::TimeSeries& raw);

  // Appends `chunk` to the raw trace under `key` and extends the hourly
  // aggregation incrementally (only newly completed hourly buckets are
  // computed) — the continuous-ingest path of the service layer. The chunk
  // must match the stored frequency and start exactly where the stored raw
  // trace ends; an unknown key behaves like Ingest.
  Status Append(const std::string& key, const tsa::TimeSeries& chunk);

  // Hourly series for `key` (aggregated at ingest time).
  Result<tsa::TimeSeries> Hourly(const std::string& key) const;

  // Borrowed view of the hourly series, or nullptr when absent — the
  // service layer's per-tick hot path, which must not copy whole series.
  // The pointer is invalidated by Ingest/Append on the same key.
  const tsa::TimeSeries* FindHourly(const std::string& key) const;

  // The raw trace as ingested.
  Result<tsa::TimeSeries> Raw(const std::string& key) const;

  std::vector<std::string> Keys() const;
  bool Contains(const std::string& key) const;
  std::size_t size() const { return hourly_.size(); }

  // Persists every hourly series to `<dir>/<sanitized key>.csv`.
  Status SaveAll(const std::string& dir) const;

 private:
  std::map<std::string, tsa::TimeSeries> raw_;
  std::map<std::string, tsa::TimeSeries> hourly_;
};

}  // namespace capplan::repo

#endif  // CAPPLAN_REPO_REPOSITORY_H_
