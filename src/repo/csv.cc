#include "repo/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fault.h"

namespace capplan::repo {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// Splits one CSV record (already newline-free except inside quotes is not
// supported for simplicity; WriteCsv never emits embedded newlines from this
// library's own data).
std::vector<std::string> SplitRecord(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Status WriteCsv(const std::string& path, const CsvTable& table) {
  CAPPLAN_RETURN_NOT_OK(FaultHit("csv.write"));
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("WriteCsv: cannot open " + path);
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << QuoteField(row[i]);
    }
    out << '\n';
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  out.flush();
  if (!out) {
    return Status::IoError("WriteCsv: write failed for " + path);
  }
  return Status::OK();
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("ReadCsv: cannot open " + path);
  }
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') continue;  // comment lines handled by callers
    if (first) {
      table.header = SplitRecord(line);
      first = false;
    } else {
      table.rows.push_back(SplitRecord(line));
    }
  }
  return table;
}

Status WriteSeriesCsv(const std::string& path,
                      const tsa::TimeSeries& series) {
  CAPPLAN_RETURN_NOT_OK(FaultHit("csv.write_series"));
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("WriteSeriesCsv: cannot open " + path);
  }
  out << "# " << QuoteField(series.name()) << "," << series.start_epoch()
      << "," << static_cast<int>(series.frequency()) << "\n";
  out << "epoch,value\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out << series.TimestampAt(i) << "," << FormatDouble(series[i]) << "\n";
  }
  out.flush();
  if (!out) {
    return Status::IoError("WriteSeriesCsv: write failed for " + path);
  }
  return Status::OK();
}

Result<tsa::TimeSeries> ReadSeriesCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("ReadSeriesCsv: cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line.size() < 3 || line[0] != '#') {
    return Status::IoError("ReadSeriesCsv: missing metadata line");
  }
  const std::vector<std::string> meta = SplitRecord(line.substr(2));
  if (meta.size() != 3) {
    return Status::IoError("ReadSeriesCsv: malformed metadata line");
  }
  const std::string name = meta[0];
  const std::int64_t start_epoch = std::stoll(meta[1]);
  const int freq_int = std::stoi(meta[2]);
  if (freq_int < 0 || freq_int > static_cast<int>(tsa::Frequency::kMonthly)) {
    return Status::IoError("ReadSeriesCsv: bad frequency code");
  }
  // Skip the column header.
  if (!std::getline(in, line)) {
    return Status::IoError("ReadSeriesCsv: truncated file");
  }
  std::vector<double> values;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitRecord(line);
    if (fields.size() != 2) {
      return Status::IoError("ReadSeriesCsv: malformed data row");
    }
    if (fields[1] == "nan") {
      values.push_back(std::nan(""));
    } else {
      values.push_back(std::stod(fields[1]));
    }
  }
  return tsa::TimeSeries(name, start_epoch,
                         static_cast<tsa::Frequency>(freq_int),
                         std::move(values));
}

}  // namespace capplan::repo
