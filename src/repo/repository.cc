#include "repo/repository.h"

#include <cmath>

#include "repo/csv.h"

namespace capplan::repo {

std::string MetricsRepository::KeyFor(const std::string& instance,
                                      workload::Metric metric) {
  return instance + "/" + workload::MetricName(metric);
}

Status MetricsRepository::Ingest(const std::string& key,
                                 const tsa::TimeSeries& raw) {
  if (key.empty()) {
    return Status::InvalidArgument("MetricsRepository: empty key");
  }
  if (raw.empty()) {
    return Status::InvalidArgument("MetricsRepository: empty series");
  }
  tsa::TimeSeries hourly;
  if (raw.frequency() == tsa::Frequency::kQuarterHourly) {
    CAPPLAN_ASSIGN_OR_RETURN(hourly,
                             tsa::AggregateMean(raw, tsa::Frequency::kHourly));
  } else {
    hourly = raw;
  }
  raw_[key] = raw;
  hourly_[key] = std::move(hourly);
  return Status::OK();
}

Status MetricsRepository::Append(const std::string& key,
                                 const tsa::TimeSeries& chunk) {
  if (chunk.empty()) {
    return Status::InvalidArgument("MetricsRepository: empty chunk");
  }
  auto it = raw_.find(key);
  if (it == raw_.end()) return Ingest(key, chunk);
  tsa::TimeSeries& raw = it->second;
  if (chunk.frequency() != raw.frequency()) {
    return Status::InvalidArgument(
        "MetricsRepository::Append: frequency mismatch for " + key);
  }
  if (chunk.start_epoch() != raw.EndEpoch()) {
    return Status::InvalidArgument(
        "MetricsRepository::Append: non-contiguous chunk for " + key +
        " (expected start " + std::to_string(raw.EndEpoch()) + ", got " +
        std::to_string(chunk.start_epoch()) + ")");
  }
  for (double v : chunk.values()) raw.Append(v);
  tsa::TimeSeries& hourly = hourly_.at(key);
  if (raw.frequency() != tsa::Frequency::kQuarterHourly) {
    // Ingest stored hourly-or-coarser data as-is; keep mirroring it.
    for (double v : chunk.values()) hourly.Append(v);
    return Status::OK();
  }
  // Fold newly completed hourly buckets of the quarter-hourly trace.
  const std::size_t k = static_cast<std::size_t>(
      tsa::FrequencySeconds(tsa::Frequency::kHourly) /
      tsa::FrequencySeconds(raw.frequency()));
  std::size_t consumed = hourly.size() * k;
  while (raw.size() - consumed >= k) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = consumed; i < consumed + k; ++i) {
      if (!std::isnan(raw[i])) {
        sum += raw[i];
        ++n;
      }
    }
    hourly.Append(n > 0 ? sum / static_cast<double>(n) : std::nan(""));
    consumed += k;
  }
  return Status::OK();
}

Result<tsa::TimeSeries> MetricsRepository::Hourly(
    const std::string& key) const {
  auto it = hourly_.find(key);
  if (it == hourly_.end()) {
    return Status::NotFound("MetricsRepository: no series for " + key);
  }
  return it->second;
}

const tsa::TimeSeries* MetricsRepository::FindHourly(
    const std::string& key) const {
  auto it = hourly_.find(key);
  return it == hourly_.end() ? nullptr : &it->second;
}

Result<tsa::TimeSeries> MetricsRepository::Raw(const std::string& key) const {
  auto it = raw_.find(key);
  if (it == raw_.end()) {
    return Status::NotFound("MetricsRepository: no raw series for " + key);
  }
  return it->second;
}

std::vector<std::string> MetricsRepository::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(hourly_.size());
  for (const auto& [k, _] : hourly_) keys.push_back(k);
  return keys;
}

bool MetricsRepository::Contains(const std::string& key) const {
  return hourly_.count(key) > 0;
}

Status MetricsRepository::SaveAll(const std::string& dir) const {
  for (const auto& [key, series] : hourly_) {
    std::string fname = key;
    for (char& c : fname) {
      if (c == '/') c = '_';
    }
    CAPPLAN_RETURN_NOT_OK(WriteSeriesCsv(dir + "/" + fname + ".csv", series));
  }
  return Status::OK();
}

}  // namespace capplan::repo
