#include "repo/repository.h"

#include "repo/csv.h"

namespace capplan::repo {

std::string MetricsRepository::KeyFor(const std::string& instance,
                                      workload::Metric metric) {
  return instance + "/" + workload::MetricName(metric);
}

Status MetricsRepository::Ingest(const std::string& key,
                                 const tsa::TimeSeries& raw) {
  if (key.empty()) {
    return Status::InvalidArgument("MetricsRepository: empty key");
  }
  if (raw.empty()) {
    return Status::InvalidArgument("MetricsRepository: empty series");
  }
  tsa::TimeSeries hourly;
  if (raw.frequency() == tsa::Frequency::kQuarterHourly) {
    CAPPLAN_ASSIGN_OR_RETURN(hourly,
                             tsa::AggregateMean(raw, tsa::Frequency::kHourly));
  } else {
    hourly = raw;
  }
  raw_[key] = raw;
  hourly_[key] = std::move(hourly);
  return Status::OK();
}

Result<tsa::TimeSeries> MetricsRepository::Hourly(
    const std::string& key) const {
  auto it = hourly_.find(key);
  if (it == hourly_.end()) {
    return Status::NotFound("MetricsRepository: no series for " + key);
  }
  return it->second;
}

Result<tsa::TimeSeries> MetricsRepository::Raw(const std::string& key) const {
  auto it = raw_.find(key);
  if (it == raw_.end()) {
    return Status::NotFound("MetricsRepository: no raw series for " + key);
  }
  return it->second;
}

std::vector<std::string> MetricsRepository::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(hourly_.size());
  for (const auto& [k, _] : hourly_) keys.push_back(k);
  return keys;
}

bool MetricsRepository::Contains(const std::string& key) const {
  return hourly_.count(key) > 0;
}

Status MetricsRepository::SaveAll(const std::string& dir) const {
  for (const auto& [key, series] : hourly_) {
    std::string fname = key;
    for (char& c : fname) {
      if (c == '/') c = '_';
    }
    CAPPLAN_RETURN_NOT_OK(WriteSeriesCsv(dir + "/" + fname + ".csv", series));
  }
  return Status::OK();
}

}  // namespace capplan::repo
