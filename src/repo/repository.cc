#include "repo/repository.h"

#include <cmath>
#include <utility>

#include "repo/csv.h"

namespace capplan::repo {

MetricsRepository::MetricsRepository(Options options)
    : options_(options),
      raw_(store::TieredStoreOptions{options.raw_store}),
      hourly_(store::TieredStoreOptions{options.hourly_store}) {}

void MetricsRepository::BindMetrics(obs::MetricsRegistry* registry,
                                    const obs::LabelSet& extra_labels) {
  raw_.BindMetrics(registry, "raw", extra_labels);
  hourly_.BindMetrics(registry, "hourly", extra_labels);
}

std::string MetricsRepository::KeyFor(const std::string& instance,
                                      workload::Metric metric) {
  return instance + "/" + workload::MetricName(metric);
}

const std::string& MetricsRepository::NameFor(const std::string& key) const {
  auto it = names_.find(key);
  return it == names_.end() ? key : it->second;
}

void MetricsRepository::Replace(const std::string& key,
                                const tsa::TimeSeries& raw,
                                const tsa::TimeSeries& hourly) {
  raw_.Erase(key);
  hourly_.Erase(key);
  store::SeriesStore& rs =
      raw_.GetOrCreate(key, raw.start_epoch(), raw.frequency());
  for (double v : raw.values()) rs.Append(v);
  store::SeriesStore& hs =
      hourly_.GetOrCreate(key, hourly.start_epoch(), hourly.frequency());
  for (double v : hourly.values()) hs.Append(v);
  names_[key] = raw.name();
  // A fresh store restarts its version clock, so a stale cached view could
  // alias the new numbers — drop it explicitly.
  views_.erase(key);
  raw_.UpdateGauges();
  hourly_.UpdateGauges();
}

Status MetricsRepository::Ingest(const std::string& key,
                                 const tsa::TimeSeries& raw) {
  if (key.empty()) {
    return Status::InvalidArgument("MetricsRepository: empty key");
  }
  if (raw.empty()) {
    return Status::InvalidArgument("MetricsRepository: empty series");
  }
  tsa::TimeSeries hourly;
  if (raw.frequency() == tsa::Frequency::kQuarterHourly) {
    CAPPLAN_ASSIGN_OR_RETURN(hourly,
                             tsa::AggregateMean(raw, tsa::Frequency::kHourly));
  } else {
    hourly = raw;
  }
  Replace(key, raw, hourly);
  return Status::OK();
}

Status MetricsRepository::Append(const std::string& key,
                                 const tsa::TimeSeries& chunk) {
  if (chunk.empty()) {
    return Status::InvalidArgument("MetricsRepository: empty chunk");
  }
  store::SeriesStore* raw = raw_.Find(key);
  if (raw == nullptr) return Ingest(key, chunk);
  if (chunk.frequency() != raw->frequency()) {
    return Status::InvalidArgument(
        "MetricsRepository::Append: frequency mismatch for " + key);
  }
  if (chunk.start_epoch() != raw->end_epoch()) {
    return Status::InvalidArgument(
        "MetricsRepository::Append: non-contiguous chunk for " + key +
        " (expected start " + std::to_string(raw->end_epoch()) + ", got " +
        std::to_string(chunk.start_epoch()) + ")");
  }
  for (double v : chunk.values()) raw->Append(v);
  store::SeriesStore& hourly = *hourly_.Find(key);
  if (raw->frequency() != tsa::Frequency::kQuarterHourly) {
    // Ingest stored hourly-or-coarser data as-is; keep mirroring it.
    for (double v : chunk.values()) hourly.Append(v);
  } else {
    // Fold newly completed hourly buckets of the quarter-hourly trace.
    const std::size_t k = static_cast<std::size_t>(
        tsa::FrequencySeconds(tsa::Frequency::kHourly) /
        tsa::FrequencySeconds(raw->frequency()));
    std::size_t consumed = hourly.size() * k;
    while (raw->size() - consumed >= k) {
      CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> bucket,
                               raw->ReadWindow(consumed, k));
      double sum = 0.0;
      std::size_t n = 0;
      for (double v : bucket) {
        if (!std::isnan(v)) {
          sum += v;
          ++n;
        }
      }
      hourly.Append(n > 0 ? sum / static_cast<double>(n) : std::nan(""));
      consumed += k;
    }
  }
  raw_.UpdateGauges();
  hourly_.UpdateGauges();
  return Status::OK();
}

Result<const tsa::TimeSeries*> MetricsRepository::ViewFor(
    const std::string& key) const {
  const store::SeriesStore* s = hourly_.Find(key);
  if (s == nullptr) {
    views_.erase(key);
    return Status::NotFound("MetricsRepository: no series for " + key);
  }
  auto it = views_.find(key);
  if (it != views_.end() &&
      it->second.structure_version == s->structure_version()) {
    View& view = it->second;
    if (view.version == s->version()) return &view.series;
    // Same structure, newer version: only a tail was appended — patch it
    // instead of re-decompressing the whole series.
    const std::size_t have = view.series.size();
    CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> tail,
                             s->ReadWindow(have, s->size() - have));
    for (double v : tail) view.series.Append(v);
    view.version = s->version();
    return &view.series;
  }
  CAPPLAN_ASSIGN_OR_RETURN(tsa::TimeSeries series,
                           s->Materialize(NameFor(key)));
  View& view = views_[key];
  view.series = std::move(series);
  view.version = s->version();
  view.structure_version = s->structure_version();
  return &view.series;
}

Result<tsa::TimeSeries> MetricsRepository::Hourly(
    const std::string& key) const {
  CAPPLAN_ASSIGN_OR_RETURN(const tsa::TimeSeries* view, ViewFor(key));
  return *view;
}

const tsa::TimeSeries* MetricsRepository::FindHourly(
    const std::string& key) const {
  Result<const tsa::TimeSeries*> view = ViewFor(key);
  return view.ok() ? view.value() : nullptr;
}

Result<tsa::TimeSeries> MetricsRepository::HourlyTail(const std::string& key,
                                                      std::size_t n) const {
  CAPPLAN_ASSIGN_OR_RETURN(const tsa::TimeSeries* view, ViewFor(key));
  if (n >= view->size()) return *view;
  return view->Slice(view->size() - n, n);
}

Result<tsa::TimeSeries> MetricsRepository::Raw(const std::string& key) const {
  const store::SeriesStore* s = raw_.Find(key);
  if (s == nullptr) {
    return Status::NotFound("MetricsRepository: no raw series for " + key);
  }
  return s->Materialize(NameFor(key));
}

Result<std::int64_t> MetricsRepository::RawEndEpoch(
    const std::string& key) const {
  const store::SeriesStore* s = raw_.Find(key);
  if (s == nullptr) {
    return Status::NotFound("MetricsRepository: no raw series for " + key);
  }
  return s->end_epoch();
}

std::vector<std::string> MetricsRepository::Keys() const {
  return hourly_.Keys();
}

bool MetricsRepository::Contains(const std::string& key) const {
  return hourly_.Contains(key);
}

Status MetricsRepository::SaveAll(const std::string& dir) const {
  for (const std::string& key : hourly_.Keys()) {
    CAPPLAN_ASSIGN_OR_RETURN(tsa::TimeSeries series, Hourly(key));
    std::string fname = key;
    for (char& c : fname) {
      if (c == '/') c = '_';
    }
    Status written = WriteSeriesCsv(dir + "/" + fname + ".csv", series);
    if (!written.ok()) {
      return Status::IoError("MetricsRepository::SaveAll: key '" + key +
                             "': " + written.message());
    }
  }
  return Status::OK();
}

Status MetricsRepository::SaveSegments(const std::string& dir) const {
  CAPPLAN_RETURN_NOT_OK(raw_.Flush(dir + "/raw.capseg"));
  CAPPLAN_RETURN_NOT_OK(hourly_.Flush(dir + "/hourly.capseg"));
  return Status::OK();
}

void MetricsRepository::Clear() {
  raw_.Clear();
  hourly_.Clear();
  names_.clear();
  views_.clear();
}

Status MetricsRepository::LoadSegments(const std::string& dir) {
  views_.clear();
  names_.clear();
  CAPPLAN_RETURN_NOT_OK(raw_.Open(dir + "/raw.capseg"));
  CAPPLAN_RETURN_NOT_OK(hourly_.Open(dir + "/hourly.capseg"));
  return Status::OK();
}

}  // namespace capplan::repo
