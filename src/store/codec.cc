#include "store/codec.h"

#include <array>
#include <cmath>
#include <cstring>
#include <limits>

#include "store/bitstream.h"

namespace capplan::store {

namespace {

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double BitsToDouble(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^
         -static_cast<std::int64_t>(z & 1);
}

// Gorilla-style variable-width buckets for a zigzagged delta-of-delta.
// Control prefixes: 0 | 10 | 110 | 1110 | ... | 1111111, one bucket per
// payload width below. The 16/20-bit rungs matter for high-volume counters
// (logical IOPS swings six figures per hour); without them every such delta
// pays the full 32-bit bucket.
constexpr int kDodWidths[] = {7, 9, 12, 16, 20, 32, 64};
constexpr int kDodLevels = 7;

void WriteDod(BitWriter* w, std::int64_t dod) {
  if (dod == 0) {
    w->WriteBit(false);
    return;
  }
  const std::uint64_t z = ZigZag(dod);
  for (int level = 0; level < kDodLevels; ++level) {
    const int width = kDodWidths[level];
    if (width == 64 || z < (1ull << width)) {
      // level+1 ones, then a zero terminator (omitted on the last level).
      for (int i = 0; i <= level; ++i) w->WriteBit(true);
      if (level + 1 < kDodLevels) w->WriteBit(false);
      w->WriteBits(z, width);
      return;
    }
  }
}

bool ReadDod(BitReader* r, std::int64_t* out) {
  bool bit = false;
  if (!r->ReadBit(&bit)) return false;
  if (!bit) {
    *out = 0;
    return true;
  }
  int level = 0;
  for (; level + 1 < kDodLevels; ++level) {
    if (!r->ReadBit(&bit)) return false;
    if (!bit) break;
  }
  std::uint64_t z = 0;
  if (!r->ReadBits(kDodWidths[level], &z)) return false;
  *out = UnZigZag(z);
  return true;
}

// Value-stream header. Mode lives in the low nibble of byte 0; bit 7 flags
// a presence bitmap (kInt blocks with canonical-NaN gaps). kInt is followed
// by one scale byte s: stored integers are value * 2^s.
constexpr std::uint8_t kModeConst = 0;
constexpr std::uint8_t kModeInt = 1;
constexpr std::uint8_t kModeXor = 2;
constexpr std::uint8_t kGapsFlag = 0x80;
constexpr int kMaxIntScale = 6;

const std::uint64_t kCanonicalNanBits =
    DoubleBits(std::numeric_limits<double>::quiet_NaN());

bool IsCanonicalNan(double v) { return DoubleBits(v) == kCanonicalNanBits; }

// True when v * 2^scale is an integer that reconstructs bit-exactly.
bool ScaledIntegral(double v, int scale, std::int64_t* out) {
  const double scaled = std::ldexp(v, scale);
  if (!(std::fabs(scaled) <= 9.007199254740992e15)) return false;  // 2^53
  const double rounded = std::nearbyint(scaled);
  if (rounded != scaled) return false;
  const auto m = static_cast<std::int64_t>(rounded);
  if (DoubleBits(std::ldexp(static_cast<double>(m), -scale)) != DoubleBits(v)) {
    return false;
  }
  *out = m;
  return true;
}

// Finds the smallest scale (0..kMaxIntScale) that makes every finite sample
// integral; NaN samples must be canonical to ride the presence bitmap.
bool PlanIntMode(const std::vector<double>& values, int* scale_out,
                 bool* has_gaps) {
  bool gaps = false;
  for (double v : values) {
    if (std::isnan(v)) {
      if (!IsCanonicalNan(v)) return false;  // exact payload needs kXor
      gaps = true;
    } else if (std::isinf(v)) {
      return false;
    }
  }
  for (int scale = 0; scale <= kMaxIntScale; ++scale) {
    bool ok = true;
    std::int64_t unused;
    for (double v : values) {
      if (!std::isnan(v) && !ScaledIntegral(v, scale, &unused)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      *scale_out = scale;
      *has_gaps = gaps;
      return true;
    }
  }
  return false;
}

std::vector<std::uint8_t> EncodeInt(const std::vector<double>& values,
                                    int scale, bool has_gaps) {
  BitWriter w;
  std::int64_t prev = 0;
  std::int64_t prev_delta = 0;
  bool first = true;
  for (double v : values) {
    if (has_gaps) {
      const bool present = !std::isnan(v);
      w.WriteBit(present);
      if (!present) continue;
    }
    std::int64_t m = 0;
    (void)ScaledIntegral(v, scale, &m);
    if (first) {
      w.WriteBits(static_cast<std::uint64_t>(m), 64);
      prev = m;
      first = false;
      continue;
    }
    const std::int64_t delta = m - prev;
    WriteDod(&w, delta - prev_delta);
    prev_delta = delta;
    prev = m;
  }
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(kModeInt |
                                          (has_gaps ? kGapsFlag : 0)));
  out.push_back(static_cast<std::uint8_t>(scale));
  const auto& bits = w.bytes();
  out.insert(out.end(), bits.begin(), bits.end());
  return out;
}

Result<std::vector<double>> DecodeInt(const std::uint8_t* data,
                                      std::size_t size, std::size_t count,
                                      bool has_gaps) {
  if (size < 2) return Status::IoError("codec: truncated int header");
  const int scale = data[1];
  if (scale > kMaxIntScale) {
    return Status::IoError("codec: bad int scale " + std::to_string(scale));
  }
  BitReader r(data + 2, size - 2);
  std::vector<double> out;
  out.reserve(count);
  std::int64_t prev = 0;
  std::int64_t prev_delta = 0;
  bool first = true;
  for (std::size_t i = 0; i < count; ++i) {
    if (has_gaps) {
      bool present = false;
      if (!r.ReadBit(&present)) {
        return Status::IoError("codec: truncated int presence stream");
      }
      if (!present) {
        out.push_back(std::numeric_limits<double>::quiet_NaN());
        continue;
      }
    }
    if (first) {
      std::uint64_t raw = 0;
      if (!r.ReadBits(64, &raw)) {
        return Status::IoError("codec: truncated int stream");
      }
      prev = static_cast<std::int64_t>(raw);
      first = false;
    } else {
      std::int64_t dod = 0;
      if (!ReadDod(&r, &dod)) {
        return Status::IoError("codec: truncated int stream");
      }
      prev_delta += dod;
      prev += prev_delta;
    }
    out.push_back(std::ldexp(static_cast<double>(prev), -scale));
  }
  return out;
}

std::vector<std::uint8_t> EncodeXor(const std::vector<double>& values) {
  BitWriter w;
  std::uint64_t prev = 0;
  int prev_leading = -1;   // -1: no reusable window yet
  int prev_sigbits = 0;
  bool first = true;
  for (double v : values) {
    const std::uint64_t bits = DoubleBits(v);
    if (first) {
      w.WriteBits(bits, 64);
      prev = bits;
      first = false;
      continue;
    }
    const std::uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      w.WriteBit(false);
      continue;
    }
    w.WriteBit(true);
    int leading = 0;
    std::uint64_t probe = x;
    while ((probe & (1ull << 63)) == 0) {
      ++leading;
      probe <<= 1;
    }
    if (leading > 31) leading = 31;  // 5-bit field
    int trailing = 0;
    probe = x;
    while ((probe & 1u) == 0) {
      ++trailing;
      probe >>= 1;
    }
    const int sigbits = 64 - leading - trailing;
    const int prev_trailing =
        prev_leading >= 0 ? 64 - prev_leading - prev_sigbits : 0;
    if (prev_leading >= 0 && leading >= prev_leading &&
        trailing >= prev_trailing) {
      // Fits the previous window: control '0' + the window's bits.
      w.WriteBit(false);
      w.WriteBits(x >> prev_trailing, prev_sigbits);
    } else {
      w.WriteBit(true);
      w.WriteBits(static_cast<std::uint64_t>(leading), 5);
      w.WriteBits(static_cast<std::uint64_t>(sigbits - 1), 6);
      w.WriteBits(x >> trailing, sigbits);
      prev_leading = leading;
      prev_sigbits = sigbits;
    }
  }
  std::vector<std::uint8_t> out;
  out.push_back(kModeXor);
  const auto& bits = w.bytes();
  out.insert(out.end(), bits.begin(), bits.end());
  return out;
}

Result<std::vector<double>> DecodeXor(const std::uint8_t* data,
                                      std::size_t size, std::size_t count) {
  BitReader r(data + 1, size - 1);
  std::vector<double> out;
  out.reserve(count);
  std::uint64_t prev = 0;
  int win_leading = 0;
  int win_sigbits = 0;
  bool have_window = false;
  for (std::size_t i = 0; i < count; ++i) {
    if (i == 0) {
      if (!r.ReadBits(64, &prev)) {
        return Status::IoError("codec: truncated xor stream");
      }
      out.push_back(BitsToDouble(prev));
      continue;
    }
    bool changed = false;
    if (!r.ReadBit(&changed)) {
      return Status::IoError("codec: truncated xor stream");
    }
    if (!changed) {
      out.push_back(BitsToDouble(prev));
      continue;
    }
    bool new_window = false;
    if (!r.ReadBit(&new_window)) {
      return Status::IoError("codec: truncated xor stream");
    }
    if (new_window) {
      std::uint64_t leading = 0, sigbits = 0;
      if (!r.ReadBits(5, &leading) || !r.ReadBits(6, &sigbits)) {
        return Status::IoError("codec: truncated xor stream");
      }
      win_leading = static_cast<int>(leading);
      win_sigbits = static_cast<int>(sigbits) + 1;
      have_window = true;
    } else if (!have_window) {
      return Status::IoError("codec: xor window reuse before definition");
    }
    std::uint64_t mantissa = 0;
    if (!r.ReadBits(win_sigbits, &mantissa)) {
      return Status::IoError("codec: truncated xor stream");
    }
    const int trailing = 64 - win_leading - win_sigbits;
    prev ^= mantissa << trailing;
    out.push_back(BitsToDouble(prev));
  }
  return out;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> EncodeTimestamps(
    const std::vector<std::int64_t>& timestamps) {
  BitWriter w;
  std::int64_t prev = 0;
  std::int64_t prev_delta = 0;
  for (std::size_t i = 0; i < timestamps.size(); ++i) {
    if (i == 0) {
      w.WriteBits(static_cast<std::uint64_t>(timestamps[0]), 64);
      prev = timestamps[0];
      continue;
    }
    const std::int64_t delta = timestamps[i] - prev;
    WriteDod(&w, delta - prev_delta);
    prev_delta = delta;
    prev = timestamps[i];
  }
  return w.TakeBytes();
}

Result<std::vector<std::int64_t>> DecodeTimestamps(const std::uint8_t* data,
                                                   std::size_t size,
                                                   std::size_t count) {
  std::vector<std::int64_t> out;
  if (count == 0) return out;
  BitReader r(data, size);
  out.reserve(count);
  std::uint64_t first = 0;
  if (!r.ReadBits(64, &first)) {
    return Status::IoError("codec: truncated timestamp stream");
  }
  std::int64_t prev = static_cast<std::int64_t>(first);
  std::int64_t prev_delta = 0;
  out.push_back(prev);
  for (std::size_t i = 1; i < count; ++i) {
    std::int64_t dod = 0;
    if (!ReadDod(&r, &dod)) {
      return Status::IoError("codec: truncated timestamp stream");
    }
    prev_delta += dod;
    prev += prev_delta;
    out.push_back(prev);
  }
  return out;
}

std::vector<std::uint8_t> EncodeValues(const std::vector<double>& values) {
  if (values.empty()) return {};

  // kConst: one shared bit pattern (flatlines, all-NaN outage masks).
  const std::uint64_t first_bits = DoubleBits(values[0]);
  bool all_same = true;
  for (double v : values) {
    if (DoubleBits(v) != first_bits) {
      all_same = false;
      break;
    }
  }
  if (all_same) {
    std::vector<std::uint8_t> out(1 + 8);
    out[0] = kModeConst;
    for (int i = 0; i < 8; ++i) {
      out[1 + i] = static_cast<std::uint8_t>(first_bits >> (8 * i));
    }
    return out;
  }

  int scale = 0;
  bool has_gaps = false;
  std::vector<std::uint8_t> best = EncodeXor(values);
  if (PlanIntMode(values, &scale, &has_gaps)) {
    std::vector<std::uint8_t> as_int = EncodeInt(values, scale, has_gaps);
    if (as_int.size() < best.size()) best = std::move(as_int);
  }
  return best;
}

Result<std::vector<double>> DecodeValues(const std::uint8_t* data,
                                         std::size_t size,
                                         std::size_t count) {
  if (count == 0) return std::vector<double>{};
  if (size == 0) return Status::IoError("codec: empty value stream");
  const std::uint8_t mode = data[0] & 0x0F;
  const bool has_gaps = (data[0] & kGapsFlag) != 0;
  switch (mode) {
    case kModeConst: {
      if (size < 9) return Status::IoError("codec: truncated const block");
      std::uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<std::uint64_t>(data[1 + i]) << (8 * i);
      }
      return std::vector<double>(count, BitsToDouble(bits));
    }
    case kModeInt:
      return DecodeInt(data, size, count, has_gaps);
    case kModeXor:
      return DecodeXor(data, size, count);
    default:
      return Status::IoError("codec: unknown value mode " +
                             std::to_string(mode));
  }
}

SealedBlock SealBlock(std::int64_t start_epoch, std::int64_t step_seconds,
                      const std::vector<double>& values) {
  SealedBlock block;
  block.start_epoch = start_epoch;
  block.step_seconds = step_seconds;
  block.count = static_cast<std::uint32_t>(values.size());

  std::vector<std::int64_t> timestamps(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    timestamps[i] = start_epoch + static_cast<std::int64_t>(i) * step_seconds;
  }
  const std::vector<std::uint8_t> ts = EncodeTimestamps(timestamps);
  const std::vector<std::uint8_t> vals = EncodeValues(values);

  block.payload.reserve(4 + ts.size() + vals.size());
  const auto ts_len = static_cast<std::uint32_t>(ts.size());
  for (int i = 0; i < 4; ++i) {
    block.payload.push_back(static_cast<std::uint8_t>(ts_len >> (8 * i)));
  }
  block.payload.insert(block.payload.end(), ts.begin(), ts.end());
  block.payload.insert(block.payload.end(), vals.begin(), vals.end());
  block.crc = Crc32(block.payload.data(), block.payload.size());
  return block;
}

SealedBlock QuarantinedBlock(std::int64_t start_epoch,
                             std::int64_t step_seconds, std::uint32_t count) {
  SealedBlock block;
  block.start_epoch = start_epoch;
  block.step_seconds = step_seconds;
  block.count = count;
  block.quarantined = true;
  return block;
}

Result<std::vector<double>> DecodeBlockValues(const SealedBlock& block) {
  if (block.quarantined) {
    return std::vector<double>(block.count,
                               std::numeric_limits<double>::quiet_NaN());
  }
  if (Crc32(block.payload.data(), block.payload.size()) != block.crc) {
    return Status::IoError("store: block CRC mismatch at epoch " +
                           std::to_string(block.start_epoch));
  }
  if (block.payload.size() < 4) {
    return Status::IoError("store: truncated block payload");
  }
  std::uint32_t ts_len = 0;
  for (int i = 0; i < 4; ++i) {
    ts_len |= static_cast<std::uint32_t>(block.payload[i]) << (8 * i);
  }
  if (4 + static_cast<std::size_t>(ts_len) > block.payload.size()) {
    return Status::IoError("store: bad timestamp stream length");
  }
  CAPPLAN_ASSIGN_OR_RETURN(
      std::vector<std::int64_t> timestamps,
      DecodeTimestamps(block.payload.data() + 4, ts_len, block.count));
  if (!timestamps.empty() && timestamps[0] != block.start_epoch) {
    return Status::IoError("store: block timestamp stream disagrees with "
                           "header start epoch");
  }
  const std::uint8_t* values = block.payload.data() + 4 + ts_len;
  const std::size_t values_len = block.payload.size() - 4 - ts_len;
  return DecodeValues(values, values_len, block.count);
}

}  // namespace capplan::store
