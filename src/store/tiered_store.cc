#include "store/tiered_store.h"

#include <chrono>
#include <utility>

#include "common/fault.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace capplan::store {

TieredStore::TieredStore(TieredStoreOptions options)
    : options_(options) {}

void TieredStore::BindMetrics(obs::MetricsRegistry* registry,
                              const std::string& tier,
                              const obs::LabelSet& extra_labels) {
  if (registry == nullptr) return;
  obs::LabelSet labels = {{"tier", tier}};
  labels.insert(labels.end(), extra_labels.begin(), extra_labels.end());
  hot_bytes_ = registry->GetGauge(
      "capplan_store_hot_bytes", labels,
      "Uncompressed sample bytes resident in hot ring buffers.");
  sealed_bytes_ = registry->GetGauge(
      "capplan_store_sealed_bytes", labels,
      "Compressed payload bytes resident in sealed blocks.");
  sealed_raw_bytes_ = registry->GetGauge(
      "capplan_store_sealed_raw_bytes", labels,
      "Uncompressed equivalent (8 bytes/sample) of the sealed tier.");
  compression_ratio_ = registry->GetGauge(
      "capplan_store_compression_ratio", labels,
      "Sealed-tier compression ratio: raw bytes over compressed bytes.");
  blocks_sealed_ = registry->GetCounter(
      "capplan_store_blocks_sealed_total", labels,
      "Hot runs compressed into immutable sealed blocks.");
  blocks_evicted_ = registry->GetCounter(
      "capplan_store_blocks_evicted_total", labels,
      "Sealed blocks dropped by per-series retention.");
  blocks_quarantined_ = registry->GetCounter(
      "capplan_store_blocks_quarantined_total", labels,
      "Blocks whose payload failed its CRC; samples read back as NaN.");
  seal_failures_ = registry->GetCounter(
      "capplan_store_seal_failures_total", labels,
      "Seal attempts that failed and were absorbed (samples stayed hot).");
  stats_->seal_ms = registry->GetHistogram(
      "capplan_store_seal_ms", {}, labels,
      "Latency of compressing one hot run into a sealed block.");
  flush_ms_ = registry->GetHistogram(
      "capplan_store_flush_ms", {}, labels,
      "Latency of persisting the tier to its segment file.");
  open_ms_ = registry->GetHistogram(
      "capplan_store_open_ms", {}, labels,
      "Latency of reopening the tier from its segment file.");
  metrics_bound_ = true;
  UpdateGauges();
}

void TieredStore::UpdateGauges() {
  if (!metrics_bound_) return;
  hot_bytes_.Set(static_cast<double>(stats_->hot_bytes));
  sealed_bytes_.Set(static_cast<double>(stats_->sealed_bytes));
  sealed_raw_bytes_.Set(static_cast<double>(stats_->sealed_raw_bytes));
  compression_ratio_.Set(stats_->compression_ratio());
  blocks_sealed_ = stats_->blocks_sealed;
  blocks_evicted_ = stats_->blocks_evicted;
  blocks_quarantined_ = stats_->blocks_quarantined;
  seal_failures_ = stats_->seal_failures;
}

SeriesStore& TieredStore::GetOrCreate(const std::string& key,
                                      std::int64_t start_epoch,
                                      tsa::Frequency freq) {
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_
             .emplace(key, SeriesStore(start_epoch, freq, options_.series,
                                       stats_.get()))
             .first;
  }
  return it->second;
}

SeriesStore* TieredStore::Find(const std::string& key) {
  auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

const SeriesStore* TieredStore::Find(const std::string& key) const {
  auto it = series_.find(key);
  return it == series_.end() ? nullptr : &it->second;
}

void TieredStore::Erase(const std::string& key) {
  auto it = series_.find(key);
  if (it == series_.end()) return;
  const SeriesStore& s = it->second;
  stats_->hot_bytes -= s.hot_bytes();
  for (const SealedBlock& b : s.blocks()) {
    stats_->sealed_bytes -= b.compressed_bytes();
    stats_->sealed_raw_bytes -= b.raw_bytes();
  }
  series_.erase(it);
  UpdateGauges();
}

void TieredStore::Clear() {
  series_.clear();
  stats_->hot_bytes = 0;
  stats_->sealed_bytes = 0;
  stats_->sealed_raw_bytes = 0;
  UpdateGauges();
}

std::vector<std::string> TieredStore::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(series_.size());
  for (const auto& [key, unused] : series_) keys.push_back(key);
  return keys;
}

void TieredStore::SealAll() {
  for (auto& [key, s] : series_) s.SealAll();
  UpdateGauges();
}

Status TieredStore::Flush(const std::string& path) const {
  obs::TraceSpan span("store.flush", "store");
  CAPPLAN_RETURN_NOT_OK(FaultHit("store.flush"));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<SegmentSeries> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) {
    SegmentSeries entry;
    entry.key = key;
    entry.freq = s.frequency();
    entry.blocks = s.blocks();
    entry.hot_start_epoch =
        s.end_epoch() -
        static_cast<std::int64_t>(s.hot_size()) * s.step_seconds();
    entry.hot.reserve(s.hot_size());
    SeriesStore::Cursor cursor = s.Scan(s.size() - s.hot_size());
    double v = 0.0;
    while (cursor.Next(&v)) entry.hot.push_back(v);
    if (entry.hot.size() != s.hot_size()) {
      return Status::Internal("store: hot cursor ended early on flush");
    }
    out.push_back(std::move(entry));
  }
  CAPPLAN_RETURN_NOT_OK(WriteSegmentFile(path, out));
  const double flush_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  flush_ms_.Observe(flush_ms);
  obs::EventLog& events = obs::EventLog::Instance();
  if (events.enabled()) {
    obs::WideEvent ev;
    ev.kind = obs::WideEventKind::kStoreFlush;
    ev.set_key(path);
    ev.span_id = span.id();
    ev.dur_ns = static_cast<std::uint64_t>(flush_ms * 1e6);
    ev.start_ns = events.NowNs() > ev.dur_ns ? events.NowNs() - ev.dur_ns : 0;
    ev.AddAttr("series", static_cast<double>(out.size()));
    events.Emit(ev);
  }
  return Status::OK();
}

Status TieredStore::Open(const std::string& path) {
  obs::TraceSpan span("store.reopen", "store");
  Clear();
  CAPPLAN_RETURN_NOT_OK(FaultHit("store.reopen"));
  const auto t0 = std::chrono::steady_clock::now();
  SegmentOpenReport report;
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<SegmentSeries> loaded,
                           ReadSegmentFile(path, &report));
  stats_->blocks_quarantined += report.blocks_quarantined;
  for (SegmentSeries& entry : loaded) {
    CAPPLAN_ASSIGN_OR_RETURN(
        SeriesStore restored,
        SeriesStore::Restore(entry.freq, std::move(entry.blocks),
                             entry.hot_start_epoch, std::move(entry.hot),
                             options_.series, stats_.get()));
    series_.emplace(std::move(entry.key), std::move(restored));
  }
  open_ms_.Observe(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  UpdateGauges();
  return Status::OK();
}

}  // namespace capplan::store
