#include "store/series_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/fault.h"
#include "obs/event_log.h"
#include "obs/trace.h"

namespace capplan::store {

namespace {

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

SeriesStore::HotRing::HotRing(std::size_t capacity)
    : data_(NextPow2(std::max<std::size_t>(capacity, 8))) {}

void SeriesStore::HotRing::PushBack(double v) {
  if (size_ == data_.size()) Grow();
  data_[(head_ + size_) & (data_.size() - 1)] = v;
  ++size_;
}

void SeriesStore::HotRing::DropFront(std::size_t n) {
  head_ = (head_ + n) & (data_.size() - 1);
  size_ -= n;
}

void SeriesStore::HotRing::Grow() {
  std::vector<double> bigger(data_.size() * 2);
  for (std::size_t i = 0; i < size_; ++i) bigger[i] = At(i);
  data_ = std::move(bigger);
  head_ = 0;
}

SeriesStore::SeriesStore(std::int64_t start_epoch, tsa::Frequency freq,
                         SeriesStoreOptions options, StoreStats* stats)
    : base_epoch_(start_epoch),
      step_seconds_(tsa::FrequencySeconds(freq)),
      freq_(freq),
      options_(options),
      stats_(stats),
      // Twice the seal threshold: one block's worth of headroom so an
      // absorbed seal failure does not force an immediate reallocation.
      hot_(std::max<std::size_t>(options.seal_threshold, 1) * 2) {
  if (options_.seal_threshold == 0) options_.seal_threshold = 512;
}

void SeriesStore::Append(double value) {
  hot_.PushBack(value);
  if (stats_ != nullptr) stats_->hot_bytes += sizeof(double);
  ++version_;
  MaybeSeal();
}

void SeriesStore::MaybeSeal() {
  while (hot_.size() >= options_.seal_threshold) {
    if (!SealFront(options_.seal_threshold).ok()) {
      if (stats_ != nullptr) ++stats_->seal_failures;
      return;  // samples stay hot; the next append retries
    }
    EvictForRetention();
  }
}

Status SeriesStore::SealFront(std::size_t n) {
  obs::TraceSpan span("store.seal", "store");
  CAPPLAN_RETURN_NOT_OK(FaultHit("store.seal"));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<double> run(n);
  for (std::size_t i = 0; i < n; ++i) run[i] = hot_.At(i);
  const std::int64_t block_start =
      start_epoch() + static_cast<std::int64_t>(sealed_count_) * step_seconds_;
  SealedBlock block = SealBlock(block_start, step_seconds_, run);
  hot_.DropFront(n);
  sealed_count_ += n;
  if (stats_ != nullptr) {
    stats_->hot_bytes -= n * sizeof(double);
    stats_->sealed_bytes += block.compressed_bytes();
    stats_->sealed_raw_bytes += block.raw_bytes();
    ++stats_->blocks_sealed;
    stats_->seal_ms.Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  obs::EventLog& events = obs::EventLog::Instance();
  if (events.enabled()) {
    obs::WideEvent ev;
    ev.kind = obs::WideEventKind::kStoreSeal;
    ev.set_key("store.seal");
    ev.span_id = span.id();
    ev.dur_ns = static_cast<std::uint64_t>(
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ev.start_ns = events.NowNs() > ev.dur_ns ? events.NowNs() - ev.dur_ns : 0;
    ev.AddAttr("samples", static_cast<double>(n));
    ev.AddAttr("compressed_bytes",
               static_cast<double>(block.compressed_bytes()));
    events.Emit(ev);
  }
  blocks_.push_back(std::move(block));
  return Status::OK();
}

void SeriesStore::EvictForRetention() {
  if (options_.max_blocks == 0) return;
  while (blocks_.size() > options_.max_blocks) {
    const SealedBlock& oldest = blocks_.front();
    if (stats_ != nullptr) {
      stats_->sealed_bytes -= oldest.compressed_bytes();
      stats_->sealed_raw_bytes -= oldest.raw_bytes();
      ++stats_->blocks_evicted;
    }
    dropped_ += oldest.count;
    sealed_count_ -= oldest.count;
    blocks_.erase(blocks_.begin());
    ++structure_version_;
    ++version_;
  }
}

void SeriesStore::SealAll() {
  while (hot_.size() > 0) {
    const std::size_t n = std::min(hot_.size(), options_.seal_threshold);
    if (!SealFront(n).ok()) {
      if (stats_ != nullptr) ++stats_->seal_failures;
      return;
    }
    EvictForRetention();
  }
}

std::size_t SeriesStore::sealed_bytes() const {
  std::size_t total = 0;
  for (const SealedBlock& b : blocks_) total += b.compressed_bytes();
  return total;
}

SeriesStore::Cursor::Cursor(const SeriesStore* store, std::size_t begin)
    : store_(store), index_(begin) {}

bool SeriesStore::Cursor::Next(double* value) {
  if (!status_.ok()) return false;
  if (index_ >= store_->size()) return false;
  // Past the sealed region: read straight from the hot ring.
  if (index_ >= store_->sealed_count_) {
    *value = store_->hot_.At(index_ - store_->sealed_count_);
    ++index_;
    return true;
  }
  // Advance to the block covering index_, decoding it on entry.
  while (true) {
    const SealedBlock& b = store_->blocks_[block_];
    if (index_ < block_first_ + b.count) {
      if (decoded_.empty()) {
        auto run = DecodeBlockValues(b);
        if (!run.ok()) {
          status_ = run.status();
          return false;
        }
        decoded_ = std::move(run).value();
      }
      *value = decoded_[index_ - block_first_];
      ++index_;
      return true;
    }
    block_first_ += b.count;
    ++block_;
    decoded_.clear();
  }
}

Result<std::vector<double>> SeriesStore::ReadWindow(std::size_t begin,
                                                    std::size_t len) const {
  if (begin + len > size()) {
    return Status::OutOfRange(
        "store: window [" + std::to_string(begin) + ", " +
        std::to_string(begin + len) + ") exceeds series size " +
        std::to_string(size()));
  }
  std::vector<double> out;
  out.reserve(len);
  Cursor cursor = Scan(begin);
  double v = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    if (!cursor.Next(&v)) {
      return cursor.status().ok()
                 ? Status::Internal("store: cursor ended early")
                 : cursor.status();
    }
    out.push_back(v);
  }
  return out;
}

Result<tsa::TimeSeries> SeriesStore::Materialize(
    const std::string& name) const {
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> values, ReadWindow(0, size()));
  return tsa::TimeSeries(name, start_epoch(), freq_, std::move(values));
}

Result<SeriesStore> SeriesStore::Restore(tsa::Frequency freq,
                                         std::vector<SealedBlock> blocks,
                                         std::int64_t hot_start_epoch,
                                         std::vector<double> hot,
                                         SeriesStoreOptions options,
                                         StoreStats* stats) {
  const std::int64_t step = tsa::FrequencySeconds(freq);
  std::sort(blocks.begin(), blocks.end(),
            [](const SealedBlock& a, const SealedBlock& b) {
              return a.start_epoch < b.start_epoch;
            });
  const std::int64_t start =
      blocks.empty() ? hot_start_epoch : blocks.front().start_epoch;
  SeriesStore store(start, freq, options, stats);

  // Re-admit the sealed blocks, filling any hole (a neighbour lost to
  // corruption) with a quarantined NaN placeholder so indices stay aligned
  // with the grid.
  std::int64_t expect = start;
  std::vector<SealedBlock> restored;
  for (SealedBlock& b : blocks) {
    if (b.step_seconds != step) {
      return Status::IoError("store: block step mismatch on restore");
    }
    if (b.start_epoch < expect ||
        (b.start_epoch - expect) % step != 0) {
      return Status::IoError("store: overlapping blocks on restore");
    }
    if (b.start_epoch > expect) {
      const auto missing =
          static_cast<std::uint32_t>((b.start_epoch - expect) / step);
      restored.push_back(QuarantinedBlock(expect, step, missing));
      if (stats != nullptr) ++stats->blocks_quarantined;
    }
    expect = b.start_epoch + static_cast<std::int64_t>(b.count) * step;
    restored.push_back(std::move(b));
  }
  if (!restored.empty() && hot_start_epoch != expect) {
    if (hot_start_epoch < expect ||
        (hot_start_epoch - expect) % step != 0) {
      return Status::IoError("store: hot tail misaligned on restore");
    }
    if (!hot.empty() || hot_start_epoch > expect) {
      const auto missing =
          static_cast<std::uint32_t>((hot_start_epoch - expect) / step);
      if (missing > 0) {
        restored.push_back(QuarantinedBlock(expect, step, missing));
        if (stats != nullptr) ++stats->blocks_quarantined;
      }
    }
  }
  for (SealedBlock& b : restored) {
    store.sealed_count_ += b.count;
    if (stats != nullptr) {
      stats->sealed_bytes += b.compressed_bytes();
      stats->sealed_raw_bytes += b.raw_bytes();
    }
    store.blocks_.push_back(std::move(b));
  }
  for (double v : hot) {
    store.hot_.PushBack(v);
    if (stats != nullptr) stats->hot_bytes += sizeof(double);
  }
  store.version_ = 1;
  store.structure_version_ = 1;
  return store;
}

}  // namespace capplan::store
