#ifndef CAPPLAN_STORE_SEGMENT_H_
#define CAPPLAN_STORE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "store/codec.h"
#include "tsa/timeseries.h"

namespace capplan::store {

// On-disk segment format (.capseg) — the persistence layer under
// TieredStore. One file holds every series of a tier: an append-only run of
// self-checking records followed by an index footer, written atomically
// (tmp + rename) so a crash leaves either the old file or the new one.
//
//   header   : "CSEG" | u16 version | u16 flags
//   records  : repeated —
//     u32 "CREC"
//     u32 meta_len   | meta bytes | u32 meta_crc   (CRC-32 of meta)
//     u32 payload_len| payload    | u32 payload_crc(CRC-32 of payload)
//   footer   : u32 "CIDX" | u32 n_records
//              n_records x { u64 offset | u32 total_len }
//              u32 index_crc | u64 index_offset | u32 "CEND"
//
//   meta     : u8 kind (0 sealed block, 1 hot tail) | u8 frequency
//              u16 key_len | key | i64 start_epoch | i64 step_seconds
//              u32 count
//   payload  : sealed — the block's codec payload (codec.h);
//              hot    — count raw little-endian doubles.
//
// All integers are little-endian. Reopen is crash-safe:
//   * a valid trailer lets the reader walk the index directly;
//   * without one (crash mid-write of an appended tail) the reader scans
//     records sequentially and truncates the torn tail at the last whole
//     record, losing only what was mid-write;
//   * a record whose payload fails its CRC (bit rot, injected corruption)
//     is quarantined alone: its identity survives via the meta, its samples
//     come back as NaN, and every other record still loads.

// One series' persisted state.
struct SegmentSeries {
  std::string key;
  tsa::Frequency freq = tsa::Frequency::kHourly;
  std::vector<SealedBlock> blocks;
  std::int64_t hot_start_epoch = 0;  // end of the sealed region
  std::vector<double> hot;
  // Whether a hot record was actually read back. A crash can tear the hot
  // record off the tail; the reader then synthesizes hot_start_epoch from
  // the sealed blocks so the series still restores (sans its hot tail).
  bool has_hot = false;
};

struct SegmentOpenReport {
  std::size_t records_loaded = 0;
  std::size_t blocks_quarantined = 0;  // payload CRC mismatches
  bool torn_tail = false;
  std::uint64_t truncated_at = 0;  // file offset of the torn tail, if any
};

// Writes the segment atomically (tmp file + rename).
Status WriteSegmentFile(const std::string& path,
                        const std::vector<SegmentSeries>& series);

// Reads a segment back, applying the recovery rules above. When a torn
// tail is found the file is also physically truncated to the last whole
// record so a later appender starts from a clean boundary.
Result<std::vector<SegmentSeries>> ReadSegmentFile(
    const std::string& path, SegmentOpenReport* report = nullptr);

}  // namespace capplan::store

#endif  // CAPPLAN_STORE_SEGMENT_H_
