#ifndef CAPPLAN_STORE_CODEC_H_
#define CAPPLAN_STORE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace capplan::store {

// Block codecs for the tiered time-series store: lossless compression of a
// sealed run of samples, netdata-dbengine / Facebook-Gorilla style. Both
// codecs are bit-exact — every decoded 64-bit pattern (including NaN
// payloads, infinities and signed zeros) equals its input, so a compressed
// series is indistinguishable from the raw vector it replaced.
//
// Timestamps use delta-of-delta: a regular grid (the normal case — the
// repository stores fixed-frequency series) costs one bit per sample after
// the first two.
//
// Values pick the cheapest of three modes per block:
//   * kConst — every sample shares one bit pattern (flatlines, all-NaN
//     outage gaps masked by the quality sentinel): one 8-byte literal.
//   * kInt   — every finite sample is integral after scaling by 2^s
//     (counter-style metrics, quarter-percent CPU readings): zigzag
//     delta-of-delta over the scaled integers, the big win on real
//     monitoring traces. An optional presence bitmap admits canonical-NaN
//     gaps inside an otherwise integral block.
//   * kXor   — Gorilla XOR float compression, the general fallback: works
//     on any doubles, guarantees correctness rather than a ratio.

// CRC-32 (IEEE 802.3, reflected). `seed` chains incremental updates.
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

// --- Timestamp codec -------------------------------------------------------

// Delta-of-delta encoding of an arbitrary int64 timestamp sequence.
std::vector<std::uint8_t> EncodeTimestamps(
    const std::vector<std::int64_t>& timestamps);

// Decodes exactly `count` timestamps; fails on a truncated stream.
Result<std::vector<std::int64_t>> DecodeTimestamps(const std::uint8_t* data,
                                                   std::size_t size,
                                                   std::size_t count);

// --- Value codec -----------------------------------------------------------

// Compresses `values` losslessly; the empty vector encodes to empty bytes.
std::vector<std::uint8_t> EncodeValues(const std::vector<double>& values);

// Decodes exactly `count` values; fails on truncation or a corrupt header.
Result<std::vector<double>> DecodeValues(const std::uint8_t* data,
                                         std::size_t size, std::size_t count);

// --- Sealed block ----------------------------------------------------------

// One immutable compressed run of a regular-grid series. The payload holds
// the timestamp stream (redundant for a regular grid but self-describing —
// a block can be validated without its series context) followed by the
// value stream; `crc` covers the whole payload.
struct SealedBlock {
  std::int64_t start_epoch = 0;
  std::int64_t step_seconds = 0;
  std::uint32_t count = 0;
  std::uint32_t crc = 0;
  // A block whose payload failed its CRC (injected corruption, torn disk
  // write). It keeps its place in the series so neighbours stay aligned;
  // its samples materialize as NaN — the same masked-gap convention the
  // quality sentinel uses for outages.
  bool quarantined = false;
  std::vector<std::uint8_t> payload;

  // Uncompressed footprint of the samples this block replaces.
  std::size_t raw_bytes() const { return static_cast<std::size_t>(count) * 8; }
  std::size_t compressed_bytes() const { return payload.size(); }
};

// Compresses `values` (sampled at start_epoch, start_epoch + step, ...)
// into an immutable block.
SealedBlock SealBlock(std::int64_t start_epoch, std::int64_t step_seconds,
                      const std::vector<double>& values);

// A placeholder for a block lost to corruption: right shape, no payload,
// decodes to NaN.
SealedBlock QuarantinedBlock(std::int64_t start_epoch,
                             std::int64_t step_seconds, std::uint32_t count);

// Decompresses a block. Verifies the CRC first and fails with kIoError on a
// mismatch (the caller quarantines). A quarantined block decodes to NaNs.
Result<std::vector<double>> DecodeBlockValues(const SealedBlock& block);

}  // namespace capplan::store

#endif  // CAPPLAN_STORE_CODEC_H_
