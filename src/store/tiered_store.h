#ifndef CAPPLAN_STORE_TIERED_STORE_H_
#define CAPPLAN_STORE_TIERED_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "store/segment.h"
#include "store/series_store.h"

namespace capplan::store {

struct TieredStoreOptions {
  SeriesStoreOptions series;
};

// Many SeriesStores under one roof: the storage engine one tier of the
// metrics repository runs on (the repository keeps two — raw and hourly).
// Owns the global accounting (StoreStats) for the capplan_store_* metric
// family, and the segment-file persistence:
//
//   hot ring  --seal-->  sealed blocks  --flush-->  segment file
//      ^                                               |
//      +---------------- reopen <----------------------+
//
// Like the repository it backs, a TieredStore is single-writer: the service
// driver thread owns all mutation. Readers get materialized copies.
class TieredStore {
 public:
  explicit TieredStore(TieredStoreOptions options = {});

  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;
  // Movable: the stats block lives behind a unique_ptr, so the SeriesStore
  // back-pointers into it stay valid across a move.
  TieredStore(TieredStore&&) = default;
  TieredStore& operator=(TieredStore&&) = default;

  // Registers the capplan_store_* family in `registry`, labelled with this
  // store's tier name ("raw", "hourly") plus any `extra_labels` — a sharded
  // owner passes {{"shard", "3"}} so each shard's store keeps distinct
  // gauge cells instead of clobbering one shared series. Call once, before
  // traffic; unbound stores skip all metric work.
  void BindMetrics(obs::MetricsRegistry* registry, const std::string& tier,
                   const obs::LabelSet& extra_labels = {});

  // The series under `key`, created at (start_epoch, freq) if absent.
  SeriesStore& GetOrCreate(const std::string& key, std::int64_t start_epoch,
                           tsa::Frequency freq);
  SeriesStore* Find(const std::string& key);
  const SeriesStore* Find(const std::string& key) const;
  // Drops a series (Ingest-replaces-series path). No-op when absent.
  void Erase(const std::string& key);
  void Clear();

  bool Contains(const std::string& key) const {
    return series_.count(key) > 0;
  }
  std::size_t size() const { return series_.size(); }
  std::vector<std::string> Keys() const;

  // Seals every hot sample everywhere (at-rest footprint measurement).
  void SealAll();

  // Persists every series to one segment file, atomically. Fault site
  // "store.flush"; span store.flush; latency into capplan_store_flush_ms.
  Status Flush(const std::string& path) const;

  // Replaces the in-memory state with the segment file's content. Fault
  // site "store.reopen"; span store.reopen; corrupted blocks are
  // quarantined individually (NaN gaps), a torn tail is truncated. The
  // store is left empty when the file is missing or unreadable.
  Status Open(const std::string& path);

  const StoreStats& stats() const { return *stats_; }
  // Pushes the current stats into the bound gauges/counters (no-op when
  // unbound). Mutating entry points call this themselves.
  void UpdateGauges();

 private:
  TieredStoreOptions options_;
  std::map<std::string, SeriesStore> series_;
  std::unique_ptr<StoreStats> stats_ = std::make_unique<StoreStats>();

  bool metrics_bound_ = false;
  obs::Gauge hot_bytes_;
  obs::Gauge sealed_bytes_;
  obs::Gauge sealed_raw_bytes_;
  obs::Gauge compression_ratio_;
  obs::Counter blocks_sealed_;
  obs::Counter blocks_evicted_;
  obs::Counter blocks_quarantined_;
  obs::Counter seal_failures_;
  mutable obs::Histogram flush_ms_;  // Flush() is logically const
  obs::Histogram open_ms_;
};

}  // namespace capplan::store

#endif  // CAPPLAN_STORE_TIERED_STORE_H_
