#ifndef CAPPLAN_STORE_SERIES_STORE_H_
#define CAPPLAN_STORE_SERIES_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "store/codec.h"
#include "tsa/timeseries.h"

namespace capplan::store {

// Aggregate accounting shared by every series of one TieredStore tier.
// Plain integers: the store (like MetricsRepository before it) is owned and
// mutated by one thread; TieredStore::UpdateGauges() mirrors the numbers
// into the obs registry for scraping.
struct StoreStats {
  std::uint64_t hot_bytes = 0;         // uncompressed samples in hot rings
  std::uint64_t sealed_bytes = 0;      // compressed payload bytes at rest
  std::uint64_t sealed_raw_bytes = 0;  // 8 * samples sealed (the baseline)
  std::uint64_t blocks_sealed = 0;
  std::uint64_t blocks_evicted = 0;
  std::uint64_t blocks_quarantined = 0;
  std::uint64_t seal_failures = 0;  // absorbed (samples stayed hot)

  // Sealed-tier compression ratio; 1.0 until something seals.
  double compression_ratio() const {
    return sealed_bytes == 0
               ? 1.0
               : static_cast<double>(sealed_raw_bytes) /
                     static_cast<double>(sealed_bytes);
  }

  // Latency sinks bound by TieredStore::BindMetrics (detached no-ops
  // otherwise, so standalone stores cost nothing).
  obs::Histogram seal_ms;
};

struct SeriesStoreOptions {
  // Samples per sealed block: once the hot ring holds this many, the oldest
  // seal_threshold samples compress into one immutable block.
  std::size_t seal_threshold = 512;
  // Retention: keep at most this many sealed blocks per series, evicting the
  // oldest (the series' logical start advances). 0 = keep everything — the
  // repository default, since the modelling pipeline owns windowing.
  std::size_t max_blocks = 0;
};

// One series of the tiered store: a fixed-capacity hot ring buffer holding
// the newest samples uncompressed, in front of a list of immutable sealed
// blocks (codec.h). Appends land in the ring; a full ring seals its oldest
// run into a block. Reads materialize any window back into doubles,
// decoding only the blocks the window covers.
//
// The grid is regular: sample i lives at start_epoch() + i * step_seconds().
class SeriesStore {
 public:
  SeriesStore(std::int64_t start_epoch, tsa::Frequency freq,
              SeriesStoreOptions options = {}, StoreStats* stats = nullptr);

  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;
  SeriesStore(SeriesStore&&) = default;
  SeriesStore& operator=(SeriesStore&&) = default;

  // Appends the next grid sample. A seal that fails (fault injection, or a
  // future disk-backed tier) is absorbed: the samples stay hot and sealing
  // retries on the next append.
  void Append(double value);

  // Retained samples (evicted history excluded).
  std::size_t size() const { return sealed_count_ + hot_.size(); }
  bool empty() const { return size() == 0; }

  // Epoch of the first retained sample; advances when retention evicts.
  std::int64_t start_epoch() const {
    return base_epoch_ + static_cast<std::int64_t>(dropped_) * step_seconds_;
  }
  std::int64_t step_seconds() const { return step_seconds_; }
  tsa::Frequency frequency() const { return freq_; }
  std::int64_t end_epoch() const {
    return start_epoch() + static_cast<std::int64_t>(size()) * step_seconds_;
  }

  // Bumped by every mutation that adds samples; repository-level view
  // caches use it to detect staleness cheaply.
  std::uint64_t version() const { return version_; }
  // Bumped when the retained range itself changes shape (eviction, restore)
  // — an appended-tail patch of a cached view is no longer sound.
  std::uint64_t structure_version() const { return structure_version_; }

  // Samples [begin, begin + len) of the retained range.
  Result<std::vector<double>> ReadWindow(std::size_t begin,
                                         std::size_t len) const;

  // The whole retained series as an uncompressed TimeSeries.
  Result<tsa::TimeSeries> Materialize(const std::string& name) const;

  // Forward scan over the retained samples, decoding one block at a time —
  // the read path for window materialization without whole-series cost.
  class Cursor {
   public:
    // False at end; fails sticky on a corrupt block (NaN is returned for
    // quarantined blocks, not errors).
    bool Next(double* value);
    const Status& status() const { return status_; }

   private:
    friend class SeriesStore;
    Cursor(const SeriesStore* store, std::size_t begin);
    const SeriesStore* store_;
    std::size_t index_;       // next retained index to yield
    std::size_t block_ = 0;   // current block position
    std::size_t block_first_ = 0;  // retained index of block_[0]
    std::vector<double> decoded_;
    Status status_;
  };
  Cursor Scan(std::size_t begin = 0) const { return Cursor(this, begin); }

  // Compresses every hot sample into (possibly short) blocks — used before
  // measuring at-rest footprint and by tests; the service keeps its tail
  // hot instead.
  void SealAll();

  const std::vector<SealedBlock>& blocks() const { return blocks_; }
  std::size_t hot_size() const { return hot_.size(); }
  std::size_t hot_bytes() const { return hot_.size() * sizeof(double); }
  std::size_t sealed_bytes() const;

  const SeriesStoreOptions& options() const { return options_; }

  // Rebuilds a store from persisted parts (segment reopen). Blocks must be
  // sorted by start_epoch; gaps between them (a quarantined neighbour that
  // was dropped entirely) are filled with NaN placeholder blocks so the
  // grid stays aligned. `hot` continues where the last block ends.
  static Result<SeriesStore> Restore(tsa::Frequency freq,
                                     std::vector<SealedBlock> blocks,
                                     std::int64_t hot_start_epoch,
                                     std::vector<double> hot,
                                     SeriesStoreOptions options = {},
                                     StoreStats* stats = nullptr);

 private:
  // The ring backing the hot tier: contiguous power-of-two storage, wraps,
  // grows only when sealing is failing and samples must not be dropped.
  class HotRing {
   public:
    explicit HotRing(std::size_t capacity);
    void PushBack(double v);
    void DropFront(std::size_t n);
    double At(std::size_t i) const {
      return data_[(head_ + i) & (data_.size() - 1)];
    }
    std::size_t size() const { return size_; }

   private:
    void Grow();
    std::vector<double> data_;  // power-of-two capacity
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  void MaybeSeal();
  Status SealFront(std::size_t n);
  void EvictForRetention();

  std::int64_t base_epoch_;
  std::int64_t step_seconds_;
  tsa::Frequency freq_;
  SeriesStoreOptions options_;
  StoreStats* stats_;  // may be null (standalone store)

  std::vector<SealedBlock> blocks_;
  std::size_t sealed_count_ = 0;  // samples across blocks_
  std::size_t dropped_ = 0;       // samples evicted from the front
  HotRing hot_;
  std::uint64_t version_ = 0;
  std::uint64_t structure_version_ = 0;
};

}  // namespace capplan::store

#endif  // CAPPLAN_STORE_SERIES_STORE_H_
