#ifndef CAPPLAN_STORE_BITSTREAM_H_
#define CAPPLAN_STORE_BITSTREAM_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace capplan::store {

// Bit-granular append/read primitives for the block codecs (codec.h). Bits
// are packed MSB-first inside each byte so a stream reads back in exactly
// the order it was written regardless of word size or host endianness.

class BitWriter {
 public:
  void WriteBit(bool bit) {
    if (nbits_ % 8 == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= static_cast<std::uint8_t>(0x80u >> (nbits_ % 8));
    ++nbits_;
  }

  // Writes the low `count` bits of `value`, most significant first.
  // count must be in [0, 64].
  void WriteBits(std::uint64_t value, int count) {
    for (int i = count - 1; i >= 0; --i) {
      WriteBit(((value >> i) & 1u) != 0);
    }
  }

  std::size_t bit_count() const { return nbits_; }

  // The stream so far, zero-padded to a whole byte.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t nbits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size_bytes)
      : data_(data), nbits_(size_bytes * 8) {}

  // False once the stream is exhausted (a decode overrun, since the codecs
  // know their counts up front).
  bool ReadBit(bool* out) {
    if (pos_ >= nbits_) return false;
    *out = (data_[pos_ / 8] & (0x80u >> (pos_ % 8))) != 0;
    ++pos_;
    return true;
  }

  bool ReadBits(int count, std::uint64_t* out) {
    std::uint64_t v = 0;
    bool bit = false;
    for (int i = 0; i < count; ++i) {
      if (!ReadBit(&bit)) return false;
      v = (v << 1) | (bit ? 1u : 0u);
    }
    *out = v;
    return true;
  }

  std::size_t bits_left() const { return nbits_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t nbits_;
  std::size_t pos_ = 0;
};

}  // namespace capplan::store

#endif  // CAPPLAN_STORE_BITSTREAM_H_
