#include "store/segment.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

namespace capplan::store {

namespace {

constexpr std::uint32_t kHeaderMagic = 0x47455343;   // "CSEG"
constexpr std::uint32_t kRecordMagic = 0x43455243;   // "CREC"
constexpr std::uint32_t kIndexMagic = 0x58444943;    // "CIDX"
constexpr std::uint32_t kTrailerMagic = 0x444E4543;  // "CEND"
constexpr std::uint16_t kVersion = 1;

constexpr std::uint8_t kKindSealed = 0;
constexpr std::uint8_t kKindHot = 1;

void PutU16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

// Bounds-checked little-endian reads over the mapped file bytes.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, std::size_t pos = 0)
      : data_(data), size_(size), pos_(pos) {}

  bool U16(std::uint16_t* v) {
    if (pos_ + 2 > size_) return false;
    *v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool U32(std::uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool U64(std::uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool I64(std::int64_t* v) {
    std::uint64_t u = 0;
    if (!U64(&u)) return false;
    *v = static_cast<std::int64_t>(u);
    return true;
  }
  bool Bytes(std::size_t n, const std::uint8_t** out) {
    if (pos_ + n > size_) return false;
    *out = data_ + pos_;
    pos_ += n;
    return true;
  }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_;
};

std::string EncodeMeta(std::uint8_t kind, tsa::Frequency freq,
                       const std::string& key, std::int64_t start_epoch,
                       std::int64_t step_seconds, std::uint32_t count) {
  std::string meta;
  meta.push_back(static_cast<char>(kind));
  meta.push_back(static_cast<char>(freq));
  PutU16(&meta, static_cast<std::uint16_t>(key.size()));
  meta.append(key);
  PutI64(&meta, start_epoch);
  PutI64(&meta, step_seconds);
  PutU32(&meta, count);
  return meta;
}

void AppendRecord(std::string* out, const std::string& meta,
                  const std::string& payload,
                  std::vector<std::pair<std::uint64_t, std::uint32_t>>* index) {
  const std::uint64_t offset = out->size();
  PutU32(out, kRecordMagic);
  PutU32(out, static_cast<std::uint32_t>(meta.size()));
  out->append(meta);
  PutU32(out, Crc32(meta.data(), meta.size()));
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  out->append(payload);
  PutU32(out, Crc32(payload.data(), payload.size()));
  index->push_back(
      {offset, static_cast<std::uint32_t>(out->size() - offset)});
}

struct ParsedRecord {
  std::uint8_t kind = 0;
  tsa::Frequency freq = tsa::Frequency::kHourly;
  std::string key;
  std::int64_t start_epoch = 0;
  std::int64_t step_seconds = 0;
  std::uint32_t count = 0;
  const std::uint8_t* payload = nullptr;
  std::uint32_t payload_len = 0;
  bool payload_ok = false;  // payload CRC verdict
};

enum class RecordParse { kOk, kTorn, kBadMeta };

// Parses one record at reader position. kTorn: the bytes end mid-record
// (crash tail). kBadMeta: a structurally complete record whose meta fails
// its CRC — unrecoverable identity, treated like a torn tail by callers
// because the following offsets can no longer be trusted without an index.
RecordParse ParseRecord(ByteReader* r, ParsedRecord* rec) {
  std::uint32_t magic = 0;
  if (!r->U32(&magic)) return RecordParse::kTorn;
  if (magic != kRecordMagic) return RecordParse::kTorn;
  std::uint32_t meta_len = 0;
  if (!r->U32(&meta_len)) return RecordParse::kTorn;
  const std::uint8_t* meta = nullptr;
  if (meta_len > r->remaining() || !r->Bytes(meta_len, &meta)) {
    return RecordParse::kTorn;
  }
  std::uint32_t meta_crc = 0;
  if (!r->U32(&meta_crc)) return RecordParse::kTorn;
  std::uint32_t payload_len = 0;
  if (!r->U32(&payload_len)) return RecordParse::kTorn;
  const std::uint8_t* payload = nullptr;
  if (payload_len > r->remaining() || !r->Bytes(payload_len, &payload)) {
    return RecordParse::kTorn;
  }
  std::uint32_t payload_crc = 0;
  if (!r->U32(&payload_crc)) return RecordParse::kTorn;

  if (Crc32(meta, meta_len) != meta_crc) return RecordParse::kBadMeta;

  ByteReader mr(meta, meta_len);
  std::uint16_t key_len = 0;
  std::uint8_t kind_byte = 0, freq_byte = 0;
  const std::uint8_t* kind_ptr = nullptr;
  if (!mr.Bytes(1, &kind_ptr)) return RecordParse::kBadMeta;
  kind_byte = *kind_ptr;
  const std::uint8_t* freq_ptr = nullptr;
  if (!mr.Bytes(1, &freq_ptr)) return RecordParse::kBadMeta;
  freq_byte = *freq_ptr;
  if (!mr.U16(&key_len)) return RecordParse::kBadMeta;
  const std::uint8_t* key = nullptr;
  if (!mr.Bytes(key_len, &key)) return RecordParse::kBadMeta;
  if (!mr.I64(&rec->start_epoch) || !mr.I64(&rec->step_seconds) ||
      !mr.U32(&rec->count)) {
    return RecordParse::kBadMeta;
  }
  if (freq_byte > static_cast<std::uint8_t>(tsa::Frequency::kMonthly)) {
    return RecordParse::kBadMeta;
  }
  rec->kind = kind_byte;
  rec->freq = static_cast<tsa::Frequency>(freq_byte);
  rec->key.assign(reinterpret_cast<const char*>(key), key_len);
  rec->payload = payload;
  rec->payload_len = payload_len;
  rec->payload_ok = Crc32(payload, payload_len) == payload_crc;
  return RecordParse::kOk;
}

}  // namespace

Status WriteSegmentFile(const std::string& path,
                        const std::vector<SegmentSeries>& series) {
  std::string out;
  PutU32(&out, kHeaderMagic);
  PutU16(&out, kVersion);
  PutU16(&out, 0);  // flags

  std::vector<std::pair<std::uint64_t, std::uint32_t>> index;
  for (const SegmentSeries& s : series) {
    for (const SealedBlock& b : s.blocks) {
      if (b.quarantined) continue;  // placeholders do not persist
      std::string payload(b.payload.begin(), b.payload.end());
      AppendRecord(&out,
                   EncodeMeta(kKindSealed, s.freq, s.key, b.start_epoch,
                              b.step_seconds, b.count),
                   payload, &index);
    }
    std::string hot_payload;
    hot_payload.reserve(s.hot.size() * 8);
    for (double v : s.hot) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, sizeof bits);
      PutU64(&hot_payload, bits);
    }
    AppendRecord(&out,
                 EncodeMeta(kKindHot, s.freq, s.key, s.hot_start_epoch,
                            tsa::FrequencySeconds(s.freq),
                            static_cast<std::uint32_t>(s.hot.size())),
                 hot_payload, &index);
  }

  const std::uint64_t index_offset = out.size();
  PutU32(&out, kIndexMagic);
  PutU32(&out, static_cast<std::uint32_t>(index.size()));
  std::string entries;
  for (const auto& [offset, len] : index) {
    PutU64(&entries, offset);
    PutU32(&entries, len);
  }
  out.append(entries);
  PutU32(&out, Crc32(entries.data(), entries.size()));
  PutU64(&out, index_offset);
  PutU32(&out, kTrailerMagic);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f.is_open()) {
      return Status::IoError("store: cannot open " + tmp + " for writing");
    }
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    if (!f.good()) return Status::IoError("store: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("store: rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<std::vector<SegmentSeries>> ReadSegmentFile(const std::string& path,
                                                   SegmentOpenReport* report) {
  SegmentOpenReport local;
  if (report == nullptr) report = &local;
  *report = SegmentOpenReport{};

  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f.is_open()) {
    return Status::NotFound("store: no segment file at " + path);
  }
  const auto size = static_cast<std::size_t>(f.tellg());
  std::vector<std::uint8_t> bytes(size);
  f.seekg(0);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(size));
  if (!f.good() && size > 0) {
    return Status::IoError("store: cannot read " + path);
  }

  ByteReader header(bytes.data(), size);
  std::uint32_t magic = 0;
  std::uint16_t version = 0, flags = 0;
  if (!header.U32(&magic) || magic != kHeaderMagic) {
    return Status::IoError("store: " + path + " is not a segment file");
  }
  if (!header.U16(&version) || !header.U16(&flags)) {
    return Status::IoError("store: truncated segment header in " + path);
  }
  if (version != kVersion) {
    return Status::IoError("store: unsupported segment version " +
                           std::to_string(version));
  }

  // Fast path: a valid trailer yields the exact record offsets.
  std::vector<std::uint64_t> offsets;
  bool have_index = false;
  if (size >= header.pos() + 12) {
    ByteReader tail(bytes.data(), size, size - 12);
    std::uint64_t index_offset = 0;
    std::uint32_t trailer = 0;
    if (tail.U64(&index_offset) && tail.U32(&trailer) &&
        trailer == kTrailerMagic && index_offset >= header.pos() &&
        index_offset < size) {
      ByteReader idx(bytes.data(), size, index_offset);
      std::uint32_t idx_magic = 0, n_records = 0;
      if (idx.U32(&idx_magic) && idx_magic == kIndexMagic &&
          idx.U32(&n_records) &&
          n_records <= (size - idx.pos()) / 12) {
        const std::uint8_t* entries = nullptr;
        std::uint32_t idx_crc = 0;
        if (idx.Bytes(static_cast<std::size_t>(n_records) * 12, &entries) &&
            idx.U32(&idx_crc) &&
            Crc32(entries, static_cast<std::size_t>(n_records) * 12) ==
                idx_crc) {
          have_index = true;
          ByteReader er(entries, static_cast<std::size_t>(n_records) * 12);
          for (std::uint32_t i = 0; i < n_records; ++i) {
            std::uint64_t offset = 0;
            std::uint32_t len = 0;
            (void)er.U64(&offset);
            (void)er.U32(&len);
            offsets.push_back(offset);
          }
        }
      }
    }
  }

  std::map<std::string, SegmentSeries> series;
  auto admit = [&](const ParsedRecord& rec) {
    SegmentSeries& s = series[rec.key];
    s.key = rec.key;
    s.freq = rec.freq;
    if (rec.kind == kKindHot) {
      s.has_hot = true;
      s.hot_start_epoch = rec.start_epoch;
      s.hot.clear();
      s.hot.reserve(rec.count);
      ByteReader pr(rec.payload, rec.payload_len);
      for (std::uint32_t i = 0; i < rec.count; ++i) {
        std::uint64_t bits = 0;
        if (!pr.U64(&bits)) break;
        double v;
        std::memcpy(&v, &bits, sizeof v);
        s.hot.push_back(v);
      }
    } else {
      SealedBlock block;
      block.start_epoch = rec.start_epoch;
      block.step_seconds = rec.step_seconds;
      block.count = rec.count;
      if (rec.payload_ok) {
        block.payload.assign(rec.payload, rec.payload + rec.payload_len);
        block.crc = Crc32(block.payload.data(), block.payload.size());
      } else {
        block.quarantined = true;
        ++report->blocks_quarantined;
      }
      s.blocks.push_back(std::move(block));
    }
    ++report->records_loaded;
  };

  if (have_index) {
    for (std::uint64_t offset : offsets) {
      ByteReader r(bytes.data(), size, static_cast<std::size_t>(offset));
      ParsedRecord rec;
      if (ParseRecord(&r, &rec) != RecordParse::kOk) {
        // The index vouched for this offset; a broken record here means
        // in-place corruption of meta — quarantine by omission.
        ++report->blocks_quarantined;
        continue;
      }
      admit(rec);
    }
  } else {
    // No trusted index (torn mid-write): sequential scan, stop at the tear.
    ByteReader r(bytes.data(), size, header.pos());
    while (r.remaining() > 0) {
      const std::size_t record_start = r.pos();
      // The index footer of a whole file also ends a scan.
      ByteReader peek(bytes.data(), size, record_start);
      std::uint32_t next_magic = 0;
      if (peek.U32(&next_magic) && next_magic == kIndexMagic) break;
      ParsedRecord rec;
      const RecordParse verdict = ParseRecord(&r, &rec);
      if (verdict != RecordParse::kOk) {
        report->torn_tail = true;
        report->truncated_at = record_start;
        std::error_code ec;
        std::filesystem::resize_file(path, record_start, ec);
        break;  // truncation best-effort; the data before it is intact
      }
      admit(rec);
    }
  }

  std::vector<SegmentSeries> out;
  out.reserve(series.size());
  for (auto& [key, s] : series) {
    if (!s.has_hot) {
      // The hot record was torn off the tail: the series ends where its
      // last sealed block does.
      s.hot_start_epoch = 0;
      for (const SealedBlock& b : s.blocks) {
        const std::int64_t block_end =
            b.start_epoch + static_cast<std::int64_t>(b.count) * b.step_seconds;
        s.hot_start_epoch = std::max(s.hot_start_epoch, block_end);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace capplan::store
