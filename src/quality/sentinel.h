#ifndef CAPPLAN_QUALITY_SENTINEL_H_
#define CAPPLAN_QUALITY_SENTINEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "tsa/timeseries.h"

namespace capplan::quality {

// Validation pass between ingest and the forecasting pipeline. The paper
// survives dirty production data through ad-hoc rules (agent gaps are
// interpolated, crashed systems discarded, Section 5.1); the sentinel makes
// that an explicit stage: every raw series is classified, repaired where the
// repair is safe, and scored, and the score gates whether the series may
// enter the full model-selection grid or must take a degraded rung of the
// forecast ladder.

// One raw agent sample as delivered — possibly out of order, duplicated, or
// with a skewed clock. NormalizeSamples() turns a batch of these into a
// regular grid before any value-level checks run.
struct RawSample {
  std::int64_t epoch = 0;
  double value = 0.0;
};

struct SentinelOptions {
  // Gap handling (paper Section 5.1): runs of at most this many consecutive
  // missing observations are linearly interpolated; longer runs are outages
  // and are masked from training instead of being bridged by a fiction.
  std::size_t short_gap_max = 6;
  // A run of at least this many bit-identical values is a flatline (stuck
  // agent or frozen host, not a real workload).
  std::size_t flatline_min_run = 24;
  // Counter-reset detection applies when at least this fraction of deltas
  // is non-negative (counter-like series); a negative delta on such a
  // series is a reset, not a real decrease.
  double counter_monotone_fraction = 0.95;
  // Trainability gate for the full selection grid.
  double min_score = 0.5;
  double min_coverage = 0.6;   // finite fraction after repair
  std::size_t min_observations = 24;
  // Values below zero are invalid for capacity metrics (CPU %, IOPS, GB).
  bool non_negative_metric = true;
};

// What the sentinel found in one series. Counts refer to raw observations
// unless stated otherwise.
struct QualityReport {
  std::string key;
  std::size_t n_samples = 0;

  // Grid normalization (NormalizeSamples only).
  std::size_t out_of_order = 0;   // samples arriving behind an earlier epoch
  std::size_t duplicates = 0;     // second+ delivery for an occupied slot
  std::size_t clock_skew = 0;     // off-grid epochs snapped to a slot

  // Value-level classification.
  std::size_t missing = 0;        // NaN observations before repair
  std::size_t non_finite = 0;     // +-inf
  std::size_t negatives = 0;      // negative values on a non-negative metric
  std::size_t counter_resets = 0; // negative deltas on a counter-like series
  std::size_t flatline_runs = 0;
  std::size_t longest_flatline = 0;
  std::size_t short_gaps_filled = 0;  // gap runs interpolated by Repair
  std::size_t long_outages = 0;       // gap runs masked from training
  std::size_t longest_gap = 0;
  std::size_t masked_leading = 0;     // observations dropped before training

  double coverage = 1.0;  // finite fraction after repair
  double score = 1.0;     // [0, 1]; 1 = pristine
  bool trainable = true;  // may enter the full selection grid
  std::string verdict;    // short human-readable summary ("ok", or issues)
};

// ';'-joined compact form of the issue counters (for journals/telemetry)
// e.g. "missing=12;long_outages=1". Empty for a pristine series.
std::string SummarizeIssues(const QualityReport& report);

class DataQualitySentinel {
 public:
  DataQualitySentinel() : DataQualitySentinel(SentinelOptions()) {}
  explicit DataQualitySentinel(SentinelOptions options) : options_(options) {}

  // Classifies `series` without modifying it: fills every count, computes
  // the score, and decides trainability.
  QualityReport Inspect(const tsa::TimeSeries& series) const;

  // Inspect + repair: invalid values (non-finite, negative, counter resets)
  // become missing; short gap runs are linearly interpolated; everything up
  // to the end of the last *interior* long outage is masked (the returned
  // series is the clean suffix). Remaining leading/trailing gaps are left
  // as NaN for the pipeline's interpolation stage. Fails only when nothing
  // usable remains.
  Result<tsa::TimeSeries> Repair(const tsa::TimeSeries& series,
                                 QualityReport* report) const;

  // Places raw samples onto a regular grid of `n_slots` observations
  // starting at `start_epoch`: epochs are snapped to the nearest slot
  // (clock skew), later deliveries for an occupied slot are dropped
  // (duplicates), samples before `start_epoch` or beyond the grid are
  // dropped (out of order / overflow), and empty slots are NaN.
  static tsa::TimeSeries NormalizeSamples(const std::string& name,
                                          std::vector<RawSample> samples,
                                          std::int64_t start_epoch,
                                          tsa::Frequency freq,
                                          std::size_t n_slots,
                                          QualityReport* report);

  const SentinelOptions& options() const { return options_; }

 private:
  SentinelOptions options_;
};

}  // namespace capplan::quality

#endif  // CAPPLAN_QUALITY_SENTINEL_H_
