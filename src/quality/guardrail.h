#ifndef CAPPLAN_QUALITY_GUARDRAIL_H_
#define CAPPLAN_QUALITY_GUARDRAIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/drift.h"

namespace capplan::quality {

// Live forecast-accuracy guardrail. The paper retires a stored model only
// "when its RMSE drops to a point where it is rendered useless" (§5.1, §9);
// this tracker closes that loop continuously instead of waiting for the
// weekly staleness window: every arriving hourly actual is scored against
// the active cached forecast, the absolute percentage errors feed a rolling
// live-MAPE window plus a Page-Hinkley change detector
// (core::PageHinkleyDetector), and a sustained error shift surfaces as a
// drift alarm that the estate service turns into an early refit.
//
// One tracker per watched series, owned by the series' shard and mutated
// only by that shard's tick job or the driver thread — the same
// single-writer rule as the rest of the shard state, so scoring adds no
// locks to the ingest hot path.
class LiveAccuracyTracker {
 public:
  struct Options {
    // Rolling window (scored points) behind live_mape().
    std::size_t window = 24;
    // Denominator floor for the percentage error: |actual| below this is
    // clamped so near-zero actuals cannot blow the MAPE up to infinity.
    double min_denominator = 1e-6;
    // Change detection over the APE stream. The defaults only alarm on a
    // sustained shift after a day of evidence — a single bad hour must not
    // thunder the refit queues.
    core::PageHinkleyDetector::Options drift;
  };

  // What scoring one actual produced.
  struct ScoreResult {
    double abs_pct_error = 0.0;  // |actual - predicted| / max(|actual|, eps)
    bool drift_alarm = false;    // Page-Hinkley signalled a sustained shift
  };

  LiveAccuracyTracker() : LiveAccuracyTracker(Options()) {}
  explicit LiveAccuracyTracker(Options options);

  // Scores one (actual, predicted) pair. Non-finite inputs are ignored
  // (counted, but they touch neither the window nor the detector — a masked
  // outage must not look like model drift).
  ScoreResult Score(double actual, double predicted);

  // Clears the rolling window and the drift detector — called when the
  // forecast under watch changes (promotion or rollback), so the new
  // champion is judged only on its own errors. Lifetime counters
  // (samples_scored, alarms) survive.
  void ResetBaseline();

  // Rolling mean absolute percentage error over the window, as a fraction
  // (0.12 = 12%). Negative while the window is empty.
  double live_mape() const;
  // Scored points currently in the window.
  std::size_t window_size() const { return window_count_; }

  // Lifetime stats (survive ResetBaseline).
  std::uint64_t samples_scored() const { return samples_scored_; }
  std::uint64_t samples_skipped() const { return samples_skipped_; }
  std::uint64_t alarms() const { return alarms_; }

  // The wired drift detector, for telemetry (samples_seen, statistic).
  const core::PageHinkleyDetector& detector() const { return detector_; }

 private:
  Options options_;
  core::PageHinkleyDetector detector_;

  // Fixed ring over the last `window` APEs with a running sum, so live_mape
  // is O(1) per sample on the ingest path.
  std::vector<double> ring_;
  std::size_t ring_next_ = 0;
  std::size_t window_count_ = 0;
  double window_sum_ = 0.0;

  std::uint64_t samples_scored_ = 0;
  std::uint64_t samples_skipped_ = 0;
  std::uint64_t alarms_ = 0;
};

}  // namespace capplan::quality

#endif  // CAPPLAN_QUALITY_GUARDRAIL_H_
