#include "quality/guardrail.h"

#include <algorithm>
#include <cmath>

namespace capplan::quality {

LiveAccuracyTracker::LiveAccuracyTracker(Options options)
    : options_(options), detector_(options.drift) {
  if (options_.window == 0) options_.window = 1;
  if (!(options_.min_denominator > 0.0)) options_.min_denominator = 1e-6;
  ring_.assign(options_.window, 0.0);
}

LiveAccuracyTracker::ScoreResult LiveAccuracyTracker::Score(double actual,
                                                            double predicted) {
  ScoreResult result;
  if (!std::isfinite(actual) || !std::isfinite(predicted)) {
    ++samples_skipped_;
    return result;
  }
  const double denom = std::max(std::abs(actual), options_.min_denominator);
  result.abs_pct_error = std::abs(actual - predicted) / denom;
  ++samples_scored_;

  // Rolling window: evict the slot being overwritten, add the new APE.
  if (window_count_ == options_.window) {
    window_sum_ -= ring_[ring_next_];
  } else {
    ++window_count_;
  }
  ring_[ring_next_] = result.abs_pct_error;
  window_sum_ += result.abs_pct_error;
  ring_next_ = (ring_next_ + 1) % options_.window;
  // Periodically rebuild the sum from the ring so float drift from the
  // subtract-on-evict update cannot accumulate without bound.
  if ((samples_scored_ & 0x3FF) == 0) {
    double sum = 0.0;
    for (std::size_t i = 0; i < window_count_; ++i) sum += ring_[i];
    window_sum_ = sum;
  }

  result.drift_alarm = detector_.Update(result.abs_pct_error);
  if (result.drift_alarm) ++alarms_;
  return result;
}

void LiveAccuracyTracker::ResetBaseline() {
  detector_.Reset();
  ring_.assign(options_.window, 0.0);
  ring_next_ = 0;
  window_count_ = 0;
  window_sum_ = 0.0;
}

double LiveAccuracyTracker::live_mape() const {
  if (window_count_ == 0) return -1.0;
  return window_sum_ / static_cast<double>(window_count_);
}

}  // namespace capplan::quality
