#include "quality/sentinel.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.h"

namespace capplan::quality {

namespace {

// Everything Analyze() derives in one pass; Inspect and Repair share it so
// the report a caller journals always matches the repair actually applied.
struct Analysis {
  QualityReport report;
  // Per-observation validity after classification: false for NaN, +-inf,
  // negative-on-non-negative-metric and counter-reset observations.
  std::vector<bool> valid;
  // First observation of the clean training suffix (end of the last
  // interior long outage; 0 when there is none).
  std::size_t suffix_begin = 0;
};

void AppendIssue(std::string* out, const char* name, std::size_t count) {
  if (count == 0) return;
  if (!out->empty()) *out += ';';
  *out += name;
  *out += '=';
  *out += std::to_string(count);
}

Analysis Analyze(const tsa::TimeSeries& series,
                 const SentinelOptions& options) {
  Analysis a;
  QualityReport& r = a.report;
  r.key = series.name();
  const std::size_t n = series.size();
  r.n_samples = n;
  a.valid.assign(n, false);
  if (n == 0) {
    r.coverage = 0.0;
    r.score = 0.0;
    r.trainable = false;
    r.verdict = "empty";
    return a;
  }

  // Value classification.
  for (std::size_t i = 0; i < n; ++i) {
    const double v = series[i];
    if (std::isnan(v)) {
      ++r.missing;
    } else if (!std::isfinite(v)) {
      ++r.non_finite;
    } else if (options.non_negative_metric && v < 0.0) {
      ++r.negatives;
    } else {
      a.valid[i] = true;
    }
  }

  // Counter resets: when nearly every consecutive finite delta is
  // non-negative the series is counter-like, and the rare negative deltas
  // are resets — the post-reset observation is not comparable to its
  // neighbours and is treated as invalid.
  {
    std::size_t n_deltas = 0, n_nonneg = 0;
    std::vector<std::size_t> reset_at;
    double prev = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < n; ++i) {
      if (!a.valid[i]) continue;
      const double v = series[i];
      if (!std::isnan(prev)) {
        ++n_deltas;
        if (v >= prev) {
          ++n_nonneg;
        } else {
          reset_at.push_back(i);
        }
      }
      prev = v;
    }
    if (n_deltas >= 8 && !reset_at.empty() &&
        static_cast<double>(n_nonneg) / static_cast<double>(n_deltas) >=
            options.counter_monotone_fraction) {
      r.counter_resets = reset_at.size();
      for (std::size_t i : reset_at) a.valid[i] = false;
    }
  }

  // Flatlines: runs of bit-identical valid values.
  {
    std::size_t run = 0;
    double run_value = 0.0;
    auto close_run = [&] {
      if (run >= options.flatline_min_run) {
        ++r.flatline_runs;
        r.longest_flatline = std::max(r.longest_flatline, run);
      }
      run = 0;
    };
    for (std::size_t i = 0; i < n; ++i) {
      if (a.valid[i] && run > 0 && series[i] == run_value) {
        ++run;
        continue;
      }
      close_run();
      if (a.valid[i]) {
        run = 1;
        run_value = series[i];
      }
    }
    close_run();
  }

  // Gap runs over the invalid observations. Interior short runs are
  // repairable by interpolation; longer runs are outages. The training
  // suffix starts after the last interior long outage.
  {
    std::size_t i = 0;
    while (i < n) {
      if (a.valid[i]) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < n && !a.valid[j]) ++j;
      const std::size_t len = j - i;
      r.longest_gap = std::max(r.longest_gap, len);
      const bool interior = i > 0 && j < n;
      if (len > options.short_gap_max) {
        ++r.long_outages;
        if (interior || i == 0) {
          // Everything up to the end of this outage is masked from
          // training (a trailing outage cannot be masked: it is the live
          // edge, and the series is simply stale).
          if (j < n) a.suffix_begin = j;
        }
      } else if (interior) {
        ++r.short_gaps_filled;
      }
      i = j;
    }
  }
  r.masked_leading = a.suffix_begin;

  // Coverage over the unmasked suffix.
  const std::size_t suffix_len = n - a.suffix_begin;
  std::size_t suffix_valid = 0;
  for (std::size_t i = a.suffix_begin; i < n; ++i) {
    if (a.valid[i]) ++suffix_valid;
  }
  r.coverage = suffix_len == 0
                   ? 0.0
                   : static_cast<double>(suffix_valid) /
                         static_cast<double>(suffix_len);

  // Score: corrupt values weigh heaviest, then dropped polls, then
  // flatlined stretches; each outage breaks continuity on top.
  const double n_d = static_cast<double>(n);
  double penalty = 0.0;
  penalty += 2.0 *
             static_cast<double>(r.non_finite + r.negatives +
                                 r.counter_resets) /
             n_d;
  penalty += 1.0 * static_cast<double>(r.missing) / n_d;
  penalty += 0.5 * static_cast<double>(r.longest_flatline) / n_d;
  penalty += 0.15 * static_cast<double>(r.long_outages);
  r.score = std::clamp(1.0 - penalty, 0.0, 1.0);

  r.trainable = r.score >= options.min_score &&
                r.coverage >= options.min_coverage &&
                suffix_valid >= options.min_observations;
  r.verdict = SummarizeIssues(r);
  if (r.verdict.empty()) r.verdict = "ok";
  return a;
}

}  // namespace

std::string SummarizeIssues(const QualityReport& r) {
  std::string out;
  AppendIssue(&out, "out_of_order", r.out_of_order);
  AppendIssue(&out, "duplicates", r.duplicates);
  AppendIssue(&out, "clock_skew", r.clock_skew);
  AppendIssue(&out, "missing", r.missing);
  AppendIssue(&out, "non_finite", r.non_finite);
  AppendIssue(&out, "negatives", r.negatives);
  AppendIssue(&out, "counter_resets", r.counter_resets);
  AppendIssue(&out, "flatline_runs", r.flatline_runs);
  AppendIssue(&out, "long_outages", r.long_outages);
  AppendIssue(&out, "masked", r.masked_leading);
  return out;
}

QualityReport DataQualitySentinel::Inspect(
    const tsa::TimeSeries& series) const {
  return Analyze(series, options_).report;
}

Result<tsa::TimeSeries> DataQualitySentinel::Repair(
    const tsa::TimeSeries& series, QualityReport* report) const {
  obs::TraceSpan span("sentinel.repair", "quality");
  Analysis a = Analyze(series, options_);
  // Preserve grid-normalization counts a caller may have accumulated on the
  // report before handing it in.
  if (report != nullptr) {
    const std::size_t out_of_order = report->out_of_order;
    const std::size_t duplicates = report->duplicates;
    const std::size_t clock_skew = report->clock_skew;
    *report = a.report;
    report->out_of_order = out_of_order;
    report->duplicates = duplicates;
    report->clock_skew = clock_skew;
    std::string verdict = SummarizeIssues(*report);
    report->verdict = verdict.empty() ? "ok" : verdict;
  }
  const std::size_t n = series.size();
  std::size_t usable = 0;
  for (std::size_t i = a.suffix_begin; i < n; ++i) {
    if (a.valid[i]) ++usable;
  }
  if (usable == 0) {
    return Status::ComputeError("sentinel: no usable observation in " +
                                series.name());
  }

  // Invalid values become missing, then the clean suffix is cut.
  const std::size_t len = n - a.suffix_begin;
  std::vector<double> values(len);
  for (std::size_t i = 0; i < len; ++i) {
    const std::size_t src = a.suffix_begin + i;
    values[i] = a.valid[src] ? series[src]
                             : std::numeric_limits<double>::quiet_NaN();
  }

  // Interpolate interior short gap runs; longer runs and edge runs are left
  // for the pipeline's interpolation stage (which extends nearest values).
  std::size_t i = 0;
  while (i < len) {
    if (!std::isnan(values[i])) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < len && std::isnan(values[j])) ++j;
    const bool interior = i > 0 && j < len;
    if (interior && j - i <= options_.short_gap_max) {
      const double lo = values[i - 1];
      const double hi = values[j];
      const double steps = static_cast<double>(j - i + 1);
      for (std::size_t k = i; k < j; ++k) {
        const double t = static_cast<double>(k - i + 1) / steps;
        values[k] = lo + t * (hi - lo);
      }
    }
    i = j;
  }

  return tsa::TimeSeries(series.name(),
                         series.TimestampAt(a.suffix_begin),
                         series.frequency(), std::move(values));
}

tsa::TimeSeries DataQualitySentinel::NormalizeSamples(
    const std::string& name, std::vector<RawSample> samples,
    std::int64_t start_epoch, tsa::Frequency freq, std::size_t n_slots,
    QualityReport* report) {
  const std::int64_t step = tsa::FrequencySeconds(freq);
  std::vector<double> values(n_slots,
                             std::numeric_limits<double>::quiet_NaN());
  std::vector<bool> occupied(n_slots, false);
  std::int64_t watermark = std::numeric_limits<std::int64_t>::min();
  for (const RawSample& s : samples) {
    if (report != nullptr && s.epoch < watermark) ++report->out_of_order;
    watermark = std::max(watermark, s.epoch);
    const std::int64_t offset = s.epoch - start_epoch;
    // Nearest slot; half-step skew still lands somewhere deterministic.
    const std::int64_t slot =
        offset >= 0 ? (offset + step / 2) / step : -1;
    if (slot < 0 || slot >= static_cast<std::int64_t>(n_slots)) continue;
    if (report != nullptr && offset != slot * step) ++report->clock_skew;
    const std::size_t idx = static_cast<std::size_t>(slot);
    if (occupied[idx]) {
      if (report != nullptr) ++report->duplicates;
      continue;  // first delivery wins
    }
    occupied[idx] = true;
    values[idx] = s.value;
  }
  return tsa::TimeSeries(name, start_epoch, freq, std::move(values));
}

}  // namespace capplan::quality
