#include "tsa/rolling.h"

#include <cmath>

namespace capplan::tsa {

Result<RollingOutcome> RollingEvaluate(const std::vector<double>& x,
                                       const ForecastFn& forecast,
                                       const RollingOptions& options) {
  if (options.horizon == 0 || options.stride == 0) {
    return Status::InvalidArgument("RollingEvaluate: zero horizon/stride");
  }
  if (x.size() < options.min_train + options.horizon) {
    return Status::InvalidArgument(
        "RollingEvaluate: series too short for one origin");
  }
  RollingOutcome out;
  double sum_rmse = 0.0, sum_mae = 0.0, sum_mape = 0.0, sum_smape = 0.0;
  std::size_t mape_count = 0;
  for (std::size_t origin = options.min_train;
       origin + options.horizon <= x.size(); origin += options.stride) {
    if (options.max_origins > 0 &&
        out.origins_attempted >= options.max_origins) {
      break;
    }
    ++out.origins_attempted;
    const std::vector<double> train(x.begin(),
                                    x.begin() +
                                        static_cast<std::ptrdiff_t>(origin));
    const std::vector<double> actual(
        x.begin() + static_cast<std::ptrdiff_t>(origin),
        x.begin() + static_cast<std::ptrdiff_t>(origin + options.horizon));
    auto fc = forecast(train, options.horizon);
    if (!fc.ok() || fc->size() != options.horizon) continue;
    auto acc = MeasureAccuracy(actual, *fc);
    if (!acc.ok()) continue;
    ++out.origins_succeeded;
    out.rmse_by_origin.push_back(acc->rmse);
    sum_rmse += acc->rmse;
    sum_mae += acc->mae;
    sum_smape += std::isnan(acc->smape) ? 0.0 : acc->smape;
    if (!std::isnan(acc->mape)) {
      sum_mape += acc->mape;
      ++mape_count;
    }
  }
  if (out.origins_succeeded == 0) {
    return Status::ComputeError("RollingEvaluate: every origin failed");
  }
  const double n = static_cast<double>(out.origins_succeeded);
  out.mean_accuracy.rmse = sum_rmse / n;
  out.mean_accuracy.mae = sum_mae / n;
  out.mean_accuracy.smape = sum_smape / n;
  if (mape_count > 0) {
    out.mean_accuracy.mape = sum_mape / static_cast<double>(mape_count);
    out.mean_accuracy.mapa =
        std::fmax(0.0, 100.0 - out.mean_accuracy.mape);
  } else {
    out.mean_accuracy.mape = std::nan("");
    out.mean_accuracy.mapa = std::nan("");
  }
  return out;
}

}  // namespace capplan::tsa
