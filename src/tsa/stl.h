#ifndef CAPPLAN_TSA_STL_H_
#define CAPPLAN_TSA_STL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "tsa/decompose.h"

namespace capplan::tsa {

// STL: Seasonal-Trend decomposition using LOESS (Cleveland et al. 1990).
// Unlike the classical moving-average decomposition (tsa/decompose.h), STL
// allows the seasonal pattern to evolve over time, handles outliers through
// robustness iterations, and leaves no NaN margins — which matters for the
// growing, shock-laden workloads of the paper's Experiment Two.

// Locally weighted regression smoother (tricube weights, degree 0/1/2).
// Smooths y at every position using the `span` nearest neighbours,
// optionally weighted by `robustness_weights` (same length as y; empty =
// uniform). span is clamped to [2, y.size()].
std::vector<double> Loess(const std::vector<double>& y, std::size_t span,
                          int degree = 1,
                          const std::vector<double>& robustness_weights = {});

struct StlOptions {
  // Seasonal smoother span in *cycles* (odd, >= 7 recommended). Larger =
  // more rigid seasonal pattern; values >= number of cycles give an almost
  // periodic seasonal like the classical method.
  std::size_t seasonal_span = 11;
  // Trend smoother span in observations; 0 = default 1.5 * period /
  // (1 - 1.5/seasonal_span), rounded up to odd.
  std::size_t trend_span = 0;
  int inner_iterations = 2;
  int robust_iterations = 1;  // 0 disables robustness weighting
};

// Additive STL decomposition of x with the given period. Requires
// period >= 2 and at least two full periods.
Result<Decomposition> StlDecompose(const std::vector<double>& x,
                                   std::size_t period,
                                   const StlOptions& options = {});

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_STL_H_
