#ifndef CAPPLAN_TSA_BOXCOX_H_
#define CAPPLAN_TSA_BOXCOX_H_

#include <vector>

#include "common/result.h"

namespace capplan::tsa {

// Box-Cox variance-stabilizing transform (used by TBATS, paper Section 4.3):
//   y(lambda) = (y^lambda - 1) / lambda   for lambda != 0
//   y(lambda) = log(y)                    for lambda == 0
// Requires strictly positive data.

// Transforms one value; y must be > 0.
double BoxCox(double y, double lambda);

// Inverse transform of one value.
double InverseBoxCox(double z, double lambda);

// Transforms a whole series; fails on non-positive values.
Result<std::vector<double>> BoxCoxTransform(const std::vector<double>& y,
                                            double lambda);

std::vector<double> InverseBoxCoxTransform(const std::vector<double>& z,
                                           double lambda);

// Profile-log-likelihood estimate of lambda over [lo, hi] by golden-section
// search (the classic Box-Cox normality objective). Fails on non-positive
// data or fewer than 8 observations.
Result<double> EstimateBoxCoxLambda(const std::vector<double>& y,
                                    double lo = -1.0, double hi = 2.0);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_BOXCOX_H_
