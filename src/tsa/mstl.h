#ifndef CAPPLAN_TSA_MSTL_H_
#define CAPPLAN_TSA_MSTL_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "tsa/stl.h"

namespace capplan::tsa {

// MSTL: multi-seasonal STL (Bandara, Hyndman & Bergmeir 2021 style) —
// sequential STL passes extract one seasonal component per period, shortest
// first, each pass decomposing the series with the previously extracted
// seasonals removed. The additive identity holds exactly:
//
//   x[t] = trend[t] + sum_i seasonal[i][t] + remainder[t]
//
// which is what makes the /v1/decompose endpoint's components reconstruct
// the input bit-for-bit (up to float addition order).

struct MultiDecomposition {
  std::vector<std::size_t> periods;            // ascending, as decomposed
  std::vector<std::vector<double>> seasonal;   // one component per period
  std::vector<double> trend;
  std::vector<double> remainder;
};

struct MstlOptions {
  StlOptions stl;
};

// Decomposes x over the given periods (deduplicated and sorted ascending
// internally). Periods without two full cycles in x are dropped; failing
// when none remain. An empty period list is invalid.
Result<MultiDecomposition> MstlDecompose(const std::vector<double>& x,
                                         std::vector<std::size_t> periods,
                                         const MstlOptions& options = {});

// Robust residual sigma: 1.4826 x median absolute deviation around the
// median. Returns 0 for an empty input.
double RobustSigma(const std::vector<double>& residuals);

// Indices where |residual - median| exceeds `band` robust sigmas — the
// anomaly flags /v1/decompose publishes. Empty when sigma is 0.
std::vector<std::size_t> FlagAnomalies(const std::vector<double>& residuals,
                                       double band = 3.0);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_MSTL_H_
