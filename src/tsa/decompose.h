#ifndef CAPPLAN_TSA_DECOMPOSE_H_
#define CAPPLAN_TSA_DECOMPOSE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace capplan::tsa {

// Classical seasonal decomposition (the statsmodels.tsa.seasonal-style
// decomposition shown in paper Figure 1b): trend via centered moving
// average, seasonal via per-phase means of the detrended series, remainder
// as what is left.

enum class DecomposeKind {
  kAdditive,        // x = trend + seasonal + remainder
  kMultiplicative,  // x = trend * seasonal * remainder (x must be > 0)
};

struct Decomposition {
  // All four share the input's length. Trend and remainder carry NaN in the
  // half-window margins where the centered MA is undefined.
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> remainder;
  // One seasonal value per phase 0..period-1 (mean-adjusted).
  std::vector<double> seasonal_indices;
};

// Requires period >= 2 and at least two full periods of data.
Result<Decomposition> SeasonalDecompose(const std::vector<double>& x,
                                        std::size_t period,
                                        DecomposeKind kind);

// Centered moving average of window `period`; for even periods uses the
// standard 2x(period) average. Entries within half a window of either edge
// are NaN.
std::vector<double> CenteredMovingAverage(const std::vector<double>& x,
                                          std::size_t period);

// Strength of trend and seasonality in [0, 1] (Hyndman & Athanasopoulos
// "Forecasting: Principles and Practice" Section 6.7), computed from an
// additive decomposition. Used by the pipeline to describe workload traits.
struct SeriesTraits {
  double trend_strength = 0.0;
  double seasonal_strength = 0.0;
};
Result<SeriesTraits> MeasureTraits(const std::vector<double>& x,
                                   std::size_t period);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_DECOMPOSE_H_
