#include "tsa/decompose.h"

#include <algorithm>
#include <cmath>

#include "math/vec.h"

namespace capplan::tsa {

std::vector<double> CenteredMovingAverage(const std::vector<double>& x,
                                          std::size_t period) {
  const std::size_t n = x.size();
  std::vector<double> out(n, std::nan(""));
  if (period < 2 || n < period + 1) return out;
  if (period % 2 == 1) {
    const std::size_t half = period / 2;
    for (std::size_t t = half; t + half < n; ++t) {
      double s = 0.0;
      for (std::size_t j = t - half; j <= t + half; ++j) s += x[j];
      out[t] = s / static_cast<double>(period);
    }
  } else {
    // 2 x m MA: average of two adjacent m-windows, weights 0.5 at the ends.
    const std::size_t half = period / 2;
    for (std::size_t t = half; t + half < n; ++t) {
      double s = 0.5 * x[t - half] + 0.5 * x[t + half];
      for (std::size_t j = t - half + 1; j < t + half; ++j) s += x[j];
      out[t] = s / static_cast<double>(period);
    }
  }
  return out;
}

Result<Decomposition> SeasonalDecompose(const std::vector<double>& x,
                                        std::size_t period,
                                        DecomposeKind kind) {
  const std::size_t n = x.size();
  if (period < 2) {
    return Status::InvalidArgument("SeasonalDecompose: period must be >= 2");
  }
  if (n < 2 * period) {
    return Status::InvalidArgument(
        "SeasonalDecompose: need at least two full periods");
  }
  if (kind == DecomposeKind::kMultiplicative) {
    for (double v : x) {
      if (v <= 0.0) {
        return Status::InvalidArgument(
            "SeasonalDecompose: multiplicative requires positive data");
      }
    }
  }

  Decomposition dec;
  dec.trend = CenteredMovingAverage(x, period);

  // Detrend.
  std::vector<double> detrended(n, std::nan(""));
  for (std::size_t t = 0; t < n; ++t) {
    if (std::isnan(dec.trend[t])) continue;
    detrended[t] = kind == DecomposeKind::kAdditive ? x[t] - dec.trend[t]
                                                    : x[t] / dec.trend[t];
  }

  // Per-phase means of the detrended series.
  std::vector<double> phase_sum(period, 0.0);
  std::vector<std::size_t> phase_count(period, 0);
  for (std::size_t t = 0; t < n; ++t) {
    if (std::isnan(detrended[t])) continue;
    phase_sum[t % period] += detrended[t];
    ++phase_count[t % period];
  }
  dec.seasonal_indices.assign(period, 0.0);
  for (std::size_t p = 0; p < period; ++p) {
    if (phase_count[p] == 0) {
      return Status::ComputeError("SeasonalDecompose: empty phase bucket");
    }
    dec.seasonal_indices[p] =
        phase_sum[p] / static_cast<double>(phase_count[p]);
  }
  // Normalize: additive indices sum to zero; multiplicative average to one.
  if (kind == DecomposeKind::kAdditive) {
    const double mu = math::Mean(dec.seasonal_indices);
    for (double& v : dec.seasonal_indices) v -= mu;
  } else {
    const double mu = math::Mean(dec.seasonal_indices);
    if (mu <= 0.0) {
      return Status::ComputeError("SeasonalDecompose: degenerate indices");
    }
    for (double& v : dec.seasonal_indices) v /= mu;
  }

  dec.seasonal.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    dec.seasonal[t] = dec.seasonal_indices[t % period];
  }
  dec.remainder.assign(n, std::nan(""));
  for (std::size_t t = 0; t < n; ++t) {
    if (std::isnan(dec.trend[t])) continue;
    dec.remainder[t] = kind == DecomposeKind::kAdditive
                           ? x[t] - dec.trend[t] - dec.seasonal[t]
                           : x[t] / (dec.trend[t] * dec.seasonal[t]);
  }
  return dec;
}

Result<SeriesTraits> MeasureTraits(const std::vector<double>& x,
                                   std::size_t period) {
  CAPPLAN_ASSIGN_OR_RETURN(
      Decomposition dec,
      SeasonalDecompose(x, period, DecomposeKind::kAdditive));
  std::vector<double> rem, detrended, deseasonalized;
  for (std::size_t t = 0; t < x.size(); ++t) {
    if (std::isnan(dec.remainder[t])) continue;
    rem.push_back(dec.remainder[t]);
    detrended.push_back(dec.seasonal[t] + dec.remainder[t]);
    deseasonalized.push_back(dec.trend[t] + dec.remainder[t]);
  }
  if (rem.size() < 3) {
    return Status::ComputeError("MeasureTraits: too few interior points");
  }
  const double var_rem = math::Variance(rem);
  const double var_detr = math::Variance(detrended);
  const double var_deseas = math::Variance(deseasonalized);
  SeriesTraits traits;
  traits.seasonal_strength =
      var_detr > 0.0 ? std::max(0.0, 1.0 - var_rem / var_detr) : 0.0;
  traits.trend_strength =
      var_deseas > 0.0 ? std::max(0.0, 1.0 - var_rem / var_deseas) : 0.0;
  return traits;
}

}  // namespace capplan::tsa
